module phocus

go 1.22
