// Package bench holds the repository-level benchmark suite: one testing.B
// benchmark per paper table/figure (each drives the corresponding
// experiment at a reduced scale; run `go run ./cmd/phocus-bench -scale 1`
// for paper-sized datasets) plus micro-benchmarks of the core operations
// whose costs the paper's complexity analysis discusses.
package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"testing"

	"phocus/internal/celf"
	"phocus/internal/dataset"
	"phocus/internal/experiments"
	"phocus/internal/lsh"
	"phocus/internal/par"
	"phocus/internal/phocus"
	"phocus/internal/sparsify"
)

// benchCfg keeps per-iteration work small enough for `go test -bench`.
func benchCfg() experiments.Config {
	return experiments.Config{Scale: 0.02, Seed: 0}
}

func benchmarkExperiment(b *testing.B, name string) {
	run := experiments.Find(name)
	if run == nil {
		b.Fatalf("experiment %q not registered", name)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := run(benchCfg(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Datasets(b *testing.B) { benchmarkExperiment(b, "table2") }
func BenchmarkFig5a(b *testing.B)          { benchmarkExperiment(b, "fig5a") }
func BenchmarkFig5b(b *testing.B)          { benchmarkExperiment(b, "fig5b") }
func BenchmarkFig5c(b *testing.B)          { benchmarkExperiment(b, "fig5c") }
func BenchmarkFig5d(b *testing.B)          { benchmarkExperiment(b, "fig5d") }
func BenchmarkFig5e(b *testing.B)          { benchmarkExperiment(b, "fig5e") }
func BenchmarkFig5f(b *testing.B)          { benchmarkExperiment(b, "fig5f") }
func BenchmarkFig5g(b *testing.B)          { benchmarkExperiment(b, "fig5g") }
func BenchmarkFig5h(b *testing.B)          { benchmarkExperiment(b, "fig5h") }
func BenchmarkSmallBudget(b *testing.B)    { benchmarkExperiment(b, "smallbudget") }
func BenchmarkJudgments(b *testing.B)      { benchmarkExperiment(b, "judgments") }
func BenchmarkOnlineBound(b *testing.B)    { benchmarkExperiment(b, "onlinebound") }
func BenchmarkTauSweep(b *testing.B)       { benchmarkExperiment(b, "tau") }
func BenchmarkAblationUCvsCB(b *testing.B) { benchmarkExperiment(b, "ablation") }
func BenchmarkCompression(b *testing.B)    { benchmarkExperiment(b, "compression") }
func BenchmarkStreaming(b *testing.B)      { benchmarkExperiment(b, "streaming") }
func BenchmarkCaching(b *testing.B)        { benchmarkExperiment(b, "caching") }
func BenchmarkDynamic(b *testing.B)        { benchmarkExperiment(b, "dynamic") }
func BenchmarkScaling(b *testing.B)        { benchmarkExperiment(b, "scaling") }
func BenchmarkVariance(b *testing.B)       { benchmarkExperiment(b, "variance") }

// ---- micro-benchmarks of the core operations ----

func benchInstance(b *testing.B, photos int) *dataset.Dataset {
	b.Helper()
	ds, err := dataset.GeneratePublic(dataset.PublicSpec{
		Name: "bench", NumPhotos: photos, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := ds.SetBudget(0.2 * ds.Instance.TotalCost()); err != nil {
		b.Fatal(err)
	}
	return ds
}

// kernelInstance returns a finalized view of inst with a freshly compiled
// gain kernel attached — the "compiled" side of the jagged-vs-kernel
// micro-benchmark pairs below.
func kernelInstance(b *testing.B, inst *par.Instance) *par.Instance {
	b.Helper()
	twin := &par.Instance{
		Cost:     inst.Cost,
		Retained: inst.Retained,
		Budget:   inst.Budget,
		Subsets:  inst.Subsets,
	}
	if err := twin.Finalize(); err != nil {
		b.Fatal(err)
	}
	if err := twin.AttachKernel(par.CompileKernel(twin)); err != nil {
		b.Fatal(err)
	}
	return twin
}

// BenchmarkEvaluatorGain measures one marginal-gain evaluation, the cost
// unit of the paper's Ω(B·n⁴) vs O(B·n) comparison — on the jagged
// reference path and on the compiled kernel, side by side. The kernel path
// is the one every Prepare-built pipeline runs.
func BenchmarkEvaluatorGain(b *testing.B) {
	ds := benchInstance(b, 1000)
	variants := []struct {
		name string
		inst *par.Instance
	}{
		{"jagged", ds.Instance},
		{"kernel", kernelInstance(b, ds.Instance)},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			e := par.NewEvaluator(v.inst)
			rng := rand.New(rand.NewSource(1))
			for p := 0; p < 50; p++ {
				e.Add(par.PhotoID(rng.Intn(1000)))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Gain(par.PhotoID(i % 1000))
			}
		})
	}
}

// BenchmarkLazyGreedy solves P-1K-sized instances end to end with CELF,
// jagged vs compiled kernel. Both sub-benchmarks must select the same
// photos at the same score — the kernel only changes how fast gains are
// computed, never what they are — which the benchmark asserts outside the
// timed region.
func BenchmarkLazyGreedy(b *testing.B) {
	ds := benchInstance(b, 1000)
	jagged := ds.Instance
	kernel := kernelInstance(b, ds.Instance)
	want, _, err := celf.LazyGreedy(jagged, celf.CB)
	if err != nil {
		b.Fatal(err)
	}
	variants := []struct {
		name string
		inst *par.Instance
	}{
		{"jagged", jagged},
		{"kernel", kernel},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sol, _, err := celf.LazyGreedy(v.inst, celf.CB)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if sol.Score != want.Score || len(sol.Photos) != len(want.Photos) {
					b.Fatalf("%s: solution changed: score %v/%d photos, want %v/%d",
						v.name, sol.Score, len(sol.Photos), want.Score, len(want.Photos))
				}
				for j := range sol.Photos {
					if sol.Photos[j] != want.Photos[j] {
						b.Fatalf("%s: selection diverged at %d", v.name, j)
					}
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkEagerGreedy is the non-lazy ablation counterpart.
func BenchmarkEagerGreedy(b *testing.B) {
	ds := benchInstance(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := celf.EagerGreedy(ds.Instance, celf.CB); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveWorkers runs the full Algorithm 1 solver at increasing
// worker-pool sizes on the same instance; the sub-benchmark ratios are the
// parallel speedup of concurrent UC/CB plus batched gain recomputation.
func BenchmarkSolveWorkers(b *testing.B) {
	ds := benchInstance(b, 1000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := celf.Solver{Workers: workers}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Solve(ds.Instance); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSparsifyExactWorkers fans the all-pairs sparsifier over the
// worker pool; per-subset independence makes this close to embarrassingly
// parallel.
func BenchmarkSparsifyExactWorkers(b *testing.B) {
	ds := benchInstance(b, 1000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sparsify.ExactWorkers(ds.Instance, 0.75, workers, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSparsifyExact measures all-pairs τ-sparsification.
func BenchmarkSparsifyExact(b *testing.B) {
	ds := benchInstance(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sparsify.Exact(ds.Instance, 0.75); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSparsifyLSH measures SimHash-based sparsification of the same
// instance; the gap versus BenchmarkSparsifyExact is the paper's "roughly
// linear time" claim in action.
func BenchmarkSparsifyLSH(b *testing.B) {
	ds := benchInstance(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := sparsify.WithLSH(rng, ds.Instance, ds.CtxVectors, 0.75); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedSweep measures the staged engine's reason to exist: a
// budget sweep that re-prepares for every budget (cold — what one-shot
// Solve calls amount to) versus one that prepares once and reuses the
// Prepared across budgets (warm — what the server's prepared-instance
// cache buys). The per-sweep gap is the τ-sparsification cost paid once
// instead of once per budget; warm should run at least 2× faster.
func BenchmarkPreparedSweep(b *testing.B) {
	ds := benchInstance(b, 1000)
	total := ds.Instance.TotalCost()
	fracs := []float64{0.01, 0.02, 0.04, 0.06}
	ctx := context.Background()
	prep := phocus.PrepareOptions{Tau: 0.75}
	run := func(b *testing.B, p *phocus.Prepared, frac float64) {
		b.Helper()
		if _, err := p.Run(ctx, phocus.RunOptions{Budget: frac * total, SkipBound: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, frac := range fracs {
				p, err := phocus.Prepare(ctx, ds, prep)
				if err != nil {
					b.Fatal(err)
				}
				run(b, p, frac)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		p, err := phocus.Prepare(ctx, ds, prep)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, frac := range fracs {
				run(b, p, frac)
			}
		}
	})
}

// BenchmarkSnapshotP100K measures the warm-restart trade of the persistent
// snapshot format on the P-100K public dataset at the bench suite's reduced
// scale: "coldprepare" re-runs the full Prepare stage (finalize +
// τ-sparsify + kernel compile), "decode" rebuilds the Prepared from the
// encoded snapshot bytes (every section checksum-verified — this is the CPU
// cost a warm restart pays per cached instance), and "load" is the same
// through a file read. The coldprepare/decode ratio is the headline
// recorded in BENCH_snapshot.json (≥ 10×, and it grows with instance size:
// Prepare's similarity work is superlinear, the decode one linear verified
// pass); "load" additionally includes storage I/O and tracks the disk, not
// the codec. Workers are pinned to 1 on every path so the ratio compares
// algorithmic work, not pool sizes.
func BenchmarkSnapshotP100K(b *testing.B) {
	spec := dataset.PublicSpecs(0.05)[4] // P-100K shape, 5000 photos
	ds, err := dataset.GeneratePublic(spec)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	opts := phocus.PrepareOptions{Tau: 0.4, Workers: 1, InstanceDigest: "bench-snapshot"}

	// coldprepare runs before any other Prepare in this benchmark so its
	// first iteration pays the fresh-heap cost a real process restart pays
	// (a pre-grown heap flatters Prepare's slab allocations considerably).
	var p *phocus.Prepared
	b.Run("coldprepare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q, err := phocus.Prepare(ctx, ds, opts)
			if err != nil {
				b.Fatal(err)
			}
			p = q
		}
	})
	if p == nil { // coldprepare filtered out of the run
		var err error
		if p, err = phocus.Prepare(ctx, ds, opts); err != nil {
			b.Fatal(err)
		}
	}
	store, err := phocus.OpenSnapshotStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	path, size, err := store.Save(p)
	if err != nil {
		b.Fatal(err)
	}
	buf, err := phocus.EncodeSnapshot(p)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(size)
		for i := 0; i < b.N; i++ {
			q, err := phocus.DecodeSnapshot(buf)
			if err != nil {
				b.Fatal(err)
			}
			if q.NumPhotos() != p.NumPhotos() {
				b.Fatalf("decoded %d photos, want %d", q.NumPhotos(), p.NumPhotos())
			}
		}
	})
	b.Run("load", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(size)
		for i := 0; i < b.N; i++ {
			if _, err := phocus.LoadSnapshot(path); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchChurn builds a valid churn batch against a freshly prepared inst:
// nRemove removals (never retained photos, never the last live relevance
// mass of a subset) and nAdd added photos with memberships and explicit
// similarity rows. Same construction as the engine's differential tests,
// sized here to the 1% churn rate the delta path is designed around.
func benchChurn(rng *rand.Rand, inst *par.Instance, nRemove, nAdd int) *phocus.Delta {
	d := &phocus.Delta{}
	n := inst.NumPhotos()
	pending := map[par.PhotoID]bool{}

	liveMass := make([]int, len(inst.Subsets))
	for qi := range inst.Subsets {
		q := &inst.Subsets[qi]
		for mi := range q.Members {
			if q.Relevance[mi] > 0 {
				liveMass[qi]++
			}
		}
	}
	for tries := 0; len(d.Remove) < nRemove && tries < 50*nRemove; tries++ {
		p := par.PhotoID(rng.Intn(n))
		if pending[p] || inst.IsRetained(p) {
			continue
		}
		ok := true
		for _, oc := range inst.Occurrences(p) {
			if inst.Subsets[oc.Subset].Relevance[oc.Index] > 0 && liveMass[oc.Subset] < 2 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, oc := range inst.Occurrences(p) {
			if inst.Subsets[oc.Subset].Relevance[oc.Index] > 0 {
				liveMass[oc.Subset]--
			}
		}
		pending[p] = true
		d.Remove = append(d.Remove, p)
	}

	addedTo := map[int][]par.PhotoID{}
	for i := 0; i < nAdd; i++ {
		photo := par.PhotoID(n + i)
		ap := phocus.DeltaPhoto{Cost: 0.5 + 2*rng.Float64()}
		nq := 1 + rng.Intn(3)
		if nq > len(inst.Subsets) {
			nq = len(inst.Subsets)
		}
		qs := rng.Perm(len(inst.Subsets))[:nq]
		sort.Ints(qs)
		for _, qi := range qs {
			m := phocus.DeltaMembership{Subset: qi, Relevance: 0.1 + rng.Float64()}
			q := &inst.Subsets[qi]
			for _, p := range q.Members {
				if pending[p] {
					continue
				}
				if rng.Float64() < 0.5 {
					m.Neighbors = append(m.Neighbors, phocus.DeltaNeighbor{Photo: p, Sim: 0.05 + 0.9*rng.Float64()})
				}
			}
			for _, p := range addedTo[qi] {
				if rng.Float64() < 0.5 {
					m.Neighbors = append(m.Neighbors, phocus.DeltaNeighbor{Photo: p, Sim: 0.05 + 0.9*rng.Float64()})
				}
			}
			addedTo[qi] = append(addedTo[qi], photo)
			ap.Memberships = append(ap.Memberships, m)
		}
		d.Add = append(d.Add, ap)
	}
	return d
}

// BenchmarkDeltaVsColdPrepare measures the churn-maintenance trade on the
// P-100K public dataset at the bench suite's reduced scale: one 1% churn
// batch (25 removals + 25 additions against 5000 photos) applied in place
// through Prepared.ApplyDelta ("applydelta") versus re-running the full
// Prepare stage — finalize + τ-sparsify + kernel compile — on the merged
// post-churn instance ("coldprepare"). The coldprepare/applydelta ratio is
// the delta path's ≥10× headline recorded in BENCH_delta.json; it grows
// with instance size because Prepare's similarity work is superlinear while
// an apply touches only the churned photos' rows. Each applydelta iteration
// starts from a freshly decoded pre-churn snapshot (outside the timer) so
// the timed region is exactly one apply. Both paths must produce
// bit-identical Run selections — churn maintenance changes how fast the
// post-churn instance is reached, never what it solves to — asserted
// outside the timed regions. Workers are pinned to 1 on every path so the
// ratio compares algorithmic work, not pool sizes.
func BenchmarkDeltaVsColdPrepare(b *testing.B) {
	spec := dataset.PublicSpecs(0.05)[4] // P-100K shape, 5000 photos
	ds, err := dataset.GeneratePublic(spec)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	opts := phocus.PrepareOptions{Tau: 0.4, Workers: 1, InstanceDigest: "bench-delta"}
	rng := rand.New(rand.NewSource(17))
	d := benchChurn(rng, ds.Instance, 25, 25)
	merged, _, err := phocus.MergeDelta(ds.Instance, nil, d)
	if err != nil {
		b.Fatal(err)
	}

	// coldprepare runs before any other Prepare in this benchmark so its
	// first iteration pays the fresh-heap cost the re-prepare alternative
	// would pay in production (see BenchmarkSnapshotP100K).
	var cold *phocus.Prepared
	b.Run("coldprepare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q, err := phocus.Prepare(ctx, &dataset.Dataset{Instance: merged}, opts)
			if err != nil {
				b.Fatal(err)
			}
			cold = q
		}
	})
	if cold == nil { // coldprepare filtered out of the run
		if cold, err = phocus.Prepare(ctx, &dataset.Dataset{Instance: merged}, opts); err != nil {
			b.Fatal(err)
		}
	}

	pre, err := phocus.Prepare(ctx, ds, opts)
	if err != nil {
		b.Fatal(err)
	}
	buf, err := phocus.EncodeSnapshot(pre)
	if err != nil {
		b.Fatal(err)
	}
	var live *phocus.Prepared
	apply := func(b *testing.B) *phocus.Prepared {
		b.Helper()
		q, err := phocus.DecodeSnapshot(buf)
		if err != nil {
			b.Fatal(err)
		}
		return q
	}
	b.Run("applydelta", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			q := apply(b)
			b.StartTimer()
			stats, err := q.ApplyDelta(ctx, d)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if stats.NewFingerprint == stats.OldFingerprint {
				b.Fatal("fingerprint did not evolve")
			}
			b.StartTimer()
			live = q
		}
	})
	if live == nil { // applydelta filtered out of the run
		live = apply(b)
		if _, err := live.ApplyDelta(ctx, d); err != nil {
			b.Fatal(err)
		}
	}

	// Differential gate, outside all timing: identical selections at 1% churn.
	runOpts := phocus.RunOptions{Budget: 0.3 * merged.TotalCost(), Workers: 1, SkipBound: true}
	rl, err := live.Run(ctx, runOpts)
	if err != nil {
		b.Fatal(err)
	}
	rc, err := cold.Run(ctx, runOpts)
	if err != nil {
		b.Fatal(err)
	}
	if rl.Solution.Score != rc.Solution.Score || len(rl.Solution.Photos) != len(rc.Solution.Photos) {
		b.Fatalf("post-churn solutions diverged: applydelta %v/%d photos, coldprepare %v/%d",
			rl.Solution.Score, len(rl.Solution.Photos), rc.Solution.Score, len(rc.Solution.Photos))
	}
	for i := range rl.Solution.Photos {
		if rl.Solution.Photos[i] != rc.Solution.Photos[i] {
			b.Fatalf("post-churn selection diverged at %d", i)
		}
	}
}

// BenchmarkSimHashSignature measures signature computation for one
// 32-dimensional embedding.
func BenchmarkSimHashSignature(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	h := lsh.New(rng, 32, 16, 8)
	ds := benchInstance(b, 100)
	v := ds.Global[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Signature(v)
	}
}

// BenchmarkOnlineBoundP1K measures the a-posteriori certificate pass.
func BenchmarkOnlineBoundP1K(b *testing.B) {
	ds := benchInstance(b, 1000)
	var s celf.Solver
	sol, err := s.Solve(ds.Instance)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		celf.OnlineBound(ds.Instance, sol.Photos)
	}
}

// BenchmarkKernelV2 is the Kernel v2 acceptance matrix: snapshot load
// read-decode vs mmap, end-to-end CELF across quantization × row blocking,
// and the allocation-free warm RunInto — all at the P-100K bench shape.
// Selection identity across the matrix is asserted outside the timed
// regions (the tuned kernels must never change which photos win), so the
// timings compare equal work.
func BenchmarkKernelV2(b *testing.B) {
	spec := dataset.PublicSpecs(0.05)[4] // P-100K shape, 5000 photos
	ds, err := dataset.GeneratePublic(spec)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	opts := phocus.PrepareOptions{Tau: 0.4, Workers: 1, InstanceDigest: "bench-kernelv2"}
	p, err := phocus.Prepare(ctx, ds, opts)
	if err != nil {
		b.Fatal(err)
	}
	store, err := phocus.OpenSnapshotStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	path, size, err := store.Save(p)
	if err != nil {
		b.Fatal(err)
	}

	budget := 0.3 * ds.Instance.TotalCost()
	ropts := phocus.RunOptions{Budget: budget, Workers: 1, SkipBound: true}
	ref, err := p.Run(ctx, ropts)
	if err != nil {
		b.Fatal(err)
	}

	// Snapshot load: the heap path re-reads, checksums and decodes into
	// fresh slabs every iteration; the mmap path maps, checksums and builds
	// typed views over the page cache. Each mapped iteration releases its
	// mapping so iterations stay identical.
	b.Run("load=read", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(size)
		for i := 0; i < b.N; i++ {
			if _, err := phocus.LoadSnapshot(path); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("load=mmap", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(size)
		for i := 0; i < b.N; i++ {
			q, err := phocus.LoadSnapshotMapped(path)
			if err != nil {
				b.Fatal(err)
			}
			q.ReleaseMapping()
		}
	})

	// End-to-end CELF across the tuning matrix. Tune mutates only the
	// derived kernel, so one Prepared serves every cell; the selection
	// assert runs before the timer starts.
	for _, tn := range []struct {
		quantize string
		block    bool
	}{
		{"f64", false},
		{"f64", true},
		{"f32", false},
		{"f32", true},
	} {
		name := fmt.Sprintf("celf/quant=%s/block=%v", tn.quantize, tn.block)
		b.Run(name, func(b *testing.B) {
			if err := p.Tune(tn.quantize, tn.block); err != nil {
				b.Fatal(err)
			}
			// A silent audit fallback would make this cell re-measure f64;
			// fail instead so the matrix never reports stale labels.
			want, err := par.ParseQuantMode(tn.quantize)
			if err != nil {
				b.Fatal(err)
			}
			if got := p.TunedQuantization(); got != want {
				b.Fatalf("tune fell back: engaged %v, want %v", got, want)
			}
			if got := p.TunedBlocked(); got != tn.block {
				b.Fatalf("tune fell back: blocked=%v, want %v", got, tn.block)
			}
			var res phocus.Result
			if err := p.RunInto(ctx, ropts, &res); err != nil {
				b.Fatal(err)
			}
			if res.Solution.Score != ref.Solution.Score ||
				len(res.Solution.Photos) != len(ref.Solution.Photos) {
				b.Fatalf("tuned selection diverged: %v/%d vs %v/%d",
					res.Solution.Score, len(res.Solution.Photos),
					ref.Solution.Score, len(ref.Solution.Photos))
			}
			for i := range res.Solution.Photos {
				if res.Solution.Photos[i] != ref.Solution.Photos[i] {
					b.Fatalf("tuned selection diverged at %d", i)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.RunInto(ctx, ropts, &res); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	if err := p.Tune("", false); err != nil {
		b.Fatal(err)
	}

	// The allocation-free gate: a warm RunInto must report 0 allocs/op.
	b.Run("allocs", func(b *testing.B) {
		var res phocus.Result
		if err := p.RunInto(ctx, ropts, &res); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := p.RunInto(ctx, ropts, &res); err != nil {
				b.Fatal(err)
			}
		}
	})
}
