package obs

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"
)

// TraceStore retains recent span timelines keyed by request (or job) ID so
// GET /jobs/{id}/trace can replay a request's stage breakdown after the
// fact. Spans flow in two ways: any Span ended under a context carrying the
// store (WithTraceStore) records itself automatically, and lifecycle code
// that knows a stage's duration without running inside it (queue wait,
// enqueue) appends directly with Add.
//
// The store is a bounded LRU over trace IDs: when a new ID would exceed the
// capacity, the least-recently-touched timeline is dropped whole. Within
// one timeline the span count is also capped so a pathological retry loop
// cannot grow without bound. All methods are safe for concurrent use.
type TraceStore struct {
	capacity int
	maxSpans int

	mu     sync.Mutex
	order  *list.List // of string (trace ID), front = most recent
	traces map[string]*traceEntry
}

type traceEntry struct {
	elem  *list.Element
	spans []SpanRecord
	drops int
}

// SpanRecord is one recorded stage of a trace.
type SpanRecord struct {
	// Name is the stage ("decode", "queue-wait", "run", ...).
	Name string `json:"name"`
	// SpanID / ParentID reconstruct the stage tree ("" = synthetic or root).
	SpanID   string `json:"span_id,omitempty"`
	ParentID string `json:"parent_id,omitempty"`
	// Start and DurationMS place the stage on the timeline.
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	// Attrs carries the span's extra attributes rendered as strings.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Trace is one retrievable timeline.
type Trace struct {
	ID string `json:"id"`
	// Spans are in recording order (completion order for real spans).
	Spans []SpanRecord `json:"spans"`
	// Dropped counts spans discarded by the per-trace cap.
	Dropped int `json:"dropped,omitempty"`
}

// DefaultTraceCapacity bounds retained trace IDs when callers pass ≤ 0.
const DefaultTraceCapacity = 1024

// maxSpansPerTrace caps one timeline's length.
const maxSpansPerTrace = 256

// NewTraceStore returns a store retaining up to capacity trace IDs
// (DefaultTraceCapacity when capacity ≤ 0).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceStore{
		capacity: capacity,
		maxSpans: maxSpansPerTrace,
		order:    list.New(),
		traces:   make(map[string]*traceEntry),
	}
}

// Add appends one span record to the timeline of id (creating it, evicting
// the oldest timeline over capacity). Empty IDs are ignored.
func (s *TraceStore) Add(id string, rec SpanRecord) {
	if id == "" || s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.traces[id]
	if e == nil {
		for len(s.traces) >= s.capacity {
			oldest := s.order.Back()
			if oldest == nil {
				break
			}
			delete(s.traces, oldest.Value.(string))
			s.order.Remove(oldest)
		}
		e = &traceEntry{elem: s.order.PushFront(id)}
		s.traces[id] = e
	} else {
		s.order.MoveToFront(e.elem)
	}
	if len(e.spans) >= s.maxSpans {
		e.drops++
		return
	}
	e.spans = append(e.spans, rec)
}

// Get returns the timeline of id, or ok=false when it was never recorded
// (or already evicted).
func (s *TraceStore) Get(id string) (Trace, bool) {
	if s == nil {
		return Trace{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.traces[id]
	if e == nil {
		return Trace{}, false
	}
	s.order.MoveToFront(e.elem)
	return Trace{
		ID:      id,
		Spans:   append([]SpanRecord(nil), e.spans...),
		Dropped: e.drops,
	}, true
}

// Len returns the number of retained timelines.
func (s *TraceStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.traces)
}

type traceStoreKey struct{}

// WithTraceStore attaches the store to ctx: every Span ended under the
// context records itself into the timeline of the context's request ID.
func WithTraceStore(ctx context.Context, s *TraceStore) context.Context {
	return context.WithValue(ctx, traceStoreKey{}, s)
}

// traceStoreFrom returns the store attached to ctx, or nil.
func traceStoreFrom(ctx context.Context) *TraceStore {
	s, _ := ctx.Value(traceStoreKey{}).(*TraceStore)
	return s
}

// renderAttrs turns a Span.End attribute list (alternating key/value) into
// the string map SpanRecord carries; odd tails are kept under "extra".
func renderAttrs(attrs []any) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, (len(attrs)+1)/2)
	for i := 0; i+1 < len(attrs); i += 2 {
		m[fmt.Sprint(attrs[i])] = fmt.Sprint(attrs[i+1])
	}
	if len(attrs)%2 != 0 {
		m["extra"] = fmt.Sprint(attrs[len(attrs)-1])
	}
	return m
}
