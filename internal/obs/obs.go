// Package obs is the stdlib-only observability layer shared by
// phocus-server and phocus-bench: a concurrent metrics Registry (counters,
// gauges, and fixed-bucket latency histograms with p50/p95/p99 summaries)
// with Prometheus-text and JSON exposition, plus lightweight span-style
// stage tracing (Span) that emits structured slog events carrying a
// per-request ID and parent/child nesting.
//
// The package deliberately holds no global state: callers construct a
// Registry and thread it (and the request ID, via context) through the code
// they instrument, mirroring the observer-hook style of celf.Observer.
package obs
