package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"time"
)

type ctxKey int

const (
	reqIDKey ctxKey = iota
	loggerKey
	spanKey
)

// NewRequestID returns a fresh 16-hex-character request ID.
func NewRequestID() string { return randomHex(8) }

func randomHex(n int) string {
	buf := make([]byte, n)
	if _, err := rand.Read(buf); err != nil {
		// crypto/rand never fails on supported platforms; degrade loudly
		// rather than crash a request path.
		return "rand-err"
	}
	return hex.EncodeToString(buf)
}

// WithRequestID attaches a request ID to the context; every Span started
// under it carries the ID on its log events.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey, id)
}

// RequestID returns the request ID attached to ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey).(string)
	return id
}

// WithLogger attaches the logger Spans under this context will emit to.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, loggerKey, l)
}

// Logger returns the logger attached to ctx, or slog.Default().
func Logger(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(loggerKey).(*slog.Logger); ok && l != nil {
		return l
	}
	return slog.Default()
}

// Span is one timed stage of a request. Spans nest: starting a span under a
// context that already carries one records the parent's ID, so the log
// stream reconstructs the stage tree of each request.
type Span struct {
	name   string
	id     string
	parent string
	reqID  string
	logger *slog.Logger
	trace  *TraceStore
	start  time.Time
}

// StartSpan begins a span and returns a derived context carrying it (so
// child spans nest under it). The span logs nothing until End.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := ""
	if p, ok := ctx.Value(spanKey).(*Span); ok && p != nil {
		parent = p.id
	}
	s := &Span{
		name:   name,
		id:     randomHex(4),
		parent: parent,
		reqID:  RequestID(ctx),
		logger: Logger(ctx),
		trace:  traceStoreFrom(ctx),
		start:  time.Now(),
	}
	return context.WithValue(ctx, spanKey, s), s
}

// Name returns the span's stage name.
func (s *Span) Name() string { return s.name }

// ID returns the span's ID.
func (s *Span) ID() string { return s.id }

// End emits the span's structured log event — name, req_id, span_id,
// parent_id, duration, plus any extra attrs — and returns the duration.
// When the span's context carried a TraceStore (WithTraceStore) the span is
// also recorded into the request's retrievable timeline.
func (s *Span) End(attrs ...any) time.Duration {
	d := time.Since(s.start)
	if s.trace != nil {
		s.trace.Add(s.reqID, SpanRecord{
			Name:       s.name,
			SpanID:     s.id,
			ParentID:   s.parent,
			Start:      s.start,
			DurationMS: float64(d.Microseconds()) / 1000,
			Attrs:      renderAttrs(attrs),
		})
	}
	args := make([]any, 0, 10+len(attrs))
	args = append(args,
		"span", s.name,
		"req_id", s.reqID,
		"span_id", s.id,
		"parent_id", s.parent,
		"duration", d.Round(time.Microsecond),
	)
	args = append(args, attrs...)
	s.logger.Info("span", args...)
	return d
}
