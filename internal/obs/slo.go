package obs

import (
	"math"
	"sync"
	"time"
)

// SLO objective evaluation. An SLOTracker owns a set of named sliding-window
// series (latency histograms and bad/total rates) plus the objectives
// defined over them, and renders each objective's health as ok / warn /
// breach using the two-window burn-rate scheme from SRE practice:
//
//   - the measured value (a latency quantile, or a bad-event fraction) is
//     computed over a short horizon and a long horizon;
//   - burn = value / threshold for each horizon (how fast the objective's
//     budget is being consumed; 1.0 = exactly at the objective);
//   - breach  when both horizons burn ≥ 1 — the violation is sustained;
//     warn    when exactly one does — a fresh spike (short only) or a
//             recovering incident (long only);
//     ok      otherwise, including when a horizon has no samples yet.
//
// Requiring both horizons to agree before "breach" is what keeps the signal
// actionable: a single slow request cannot page, and a resolved incident
// decays to warn as soon as the short window clears.

// Series names shared between the server, the job service and /slo, so
// every producer and every objective agree on what they are measuring.
const (
	SLOSolveLatency = "solve_latency_seconds" // sync+async solve stage latency
	SLOHTTPLatency  = "http_latency_seconds"  // whole-request HTTP latency
	SLOJobWait      = "job_wait_seconds"      // async job submit → start
	SLORejectRate   = "http_429_rate"         // 429s per admission-controlled request
)

// SLOStatus is an objective's health verdict.
type SLOStatus string

const (
	SLOOK     SLOStatus = "ok"
	SLOWarn   SLOStatus = "warn"
	SLOBreach SLOStatus = "breach"
)

// sloKind distinguishes the two objective shapes.
type sloKind string

const (
	kindLatency sloKind = "latency"
	kindRate    sloKind = "rate"
)

// sloObjective is one registered objective.
type sloObjective struct {
	name      string
	kind      sloKind
	source    string  // series name
	quantile  float64 // latency objectives only
	threshold float64 // seconds (latency) or fraction (rate)
}

// WindowEval is the measured state of one objective over one horizon.
type WindowEval struct {
	// HorizonSeconds is the evaluation window length.
	HorizonSeconds float64 `json:"horizon_seconds"`
	// Value is the measured quantile (seconds) or bad fraction; omitted
	// when the horizon holds no samples.
	Value float64 `json:"value"`
	// BurnRate is Value/threshold (0 with no samples).
	BurnRate float64 `json:"burn_rate"`
	// Samples is the number of observations in the horizon.
	Samples int64 `json:"samples"`
}

// ObjectiveStatus is one objective's rendered health, the unit of GET /slo.
type ObjectiveStatus struct {
	Name      string     `json:"name"`
	Kind      string     `json:"kind"`
	Source    string     `json:"source"`
	Quantile  float64    `json:"quantile,omitempty"`
	Threshold float64    `json:"threshold"`
	Short     WindowEval `json:"short_window"`
	Long      WindowEval `json:"long_window"`
	Status    SLOStatus  `json:"status"`
}

// SLOReport is the GET /slo payload.
type SLOReport struct {
	// Status is the worst objective status (ok < warn < breach).
	Status     SLOStatus         `json:"status"`
	Objectives []ObjectiveStatus `json:"objectives"`
}

// SLOTrackerOptions shape a tracker's ring geometry.
type SLOTrackerOptions struct {
	// WindowDur is one ring slot's duration (default 30s).
	WindowDur time.Duration
	// NumWindows is the ring length; the long horizon (default 20 → 10m
	// with the default WindowDur).
	NumWindows int
	// ShortWindows is the short horizon in slots (default 4 → 2m).
	ShortWindows int
	// Buckets configures latency series bounds (nil = DefBuckets).
	Buckets []float64
}

// SLOTracker owns windowed series and the objectives evaluated over them.
// All methods are safe for concurrent use; producers grab a series handle
// once and Observe lock-free of the tracker afterwards.
type SLOTracker struct {
	opts SLOTrackerOptions

	mu         sync.Mutex
	hists      map[string]*WindowedHistogram
	rates      map[string]*WindowedRate
	objectives []sloObjective
}

// NewSLOTracker returns a tracker with the given ring geometry.
func NewSLOTracker(opts SLOTrackerOptions) *SLOTracker {
	if opts.WindowDur <= 0 {
		opts.WindowDur = 30 * time.Second
	}
	if opts.NumWindows <= 0 {
		opts.NumWindows = 20
	}
	if opts.ShortWindows <= 0 || opts.ShortWindows > opts.NumWindows {
		opts.ShortWindows = 4
		if opts.ShortWindows > opts.NumWindows {
			opts.ShortWindows = opts.NumWindows
		}
	}
	return &SLOTracker{
		opts:  opts,
		hists: make(map[string]*WindowedHistogram),
		rates: make(map[string]*WindowedRate),
	}
}

// setClock substitutes the time source of every existing series (tests
// only; create the series before calling).
func (t *SLOTracker) setClock(now windowClock) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, h := range t.hists {
		h.setClock(now)
	}
	for _, r := range t.rates {
		r.setClock(now)
	}
}

// Latency returns (creating on first use) the windowed latency series with
// the given name.
func (t *SLOTracker) Latency(name string) *WindowedHistogram {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.hists[name]
	if h == nil {
		h = NewWindowedHistogram(t.opts.Buckets, t.opts.WindowDur, t.opts.NumWindows)
		t.hists[name] = h
	}
	return h
}

// Rate returns (creating on first use) the windowed rate series with the
// given name.
func (t *SLOTracker) Rate(name string) *WindowedRate {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.rates[name]
	if r == nil {
		r = NewWindowedRate(t.opts.WindowDur, t.opts.NumWindows)
		t.rates[name] = r
	}
	return r
}

// AddLatencyObjective registers "quantile q of series source stays under
// threshold". Threshold must be positive.
func (t *SLOTracker) AddLatencyObjective(name, source string, q float64, threshold time.Duration) {
	if threshold <= 0 || q <= 0 || q > 1 {
		panic("obs: AddLatencyObjective needs threshold > 0 and q in (0,1]")
	}
	t.Latency(source) // materialize so /slo shows the objective before traffic
	t.mu.Lock()
	defer t.mu.Unlock()
	t.objectives = append(t.objectives, sloObjective{
		name: name, kind: kindLatency, source: source,
		quantile: q, threshold: threshold.Seconds(),
	})
}

// AddRateObjective registers "the bad fraction of series source stays under
// threshold" (a fraction in (0,1]).
func (t *SLOTracker) AddRateObjective(name, source string, threshold float64) {
	if threshold <= 0 || threshold > 1 {
		panic("obs: AddRateObjective needs threshold in (0,1]")
	}
	t.Rate(source)
	t.mu.Lock()
	defer t.mu.Unlock()
	t.objectives = append(t.objectives, sloObjective{
		name: name, kind: kindRate, source: source, threshold: threshold,
	})
}

// evalWindow measures one objective over one horizon.
func (t *SLOTracker) evalWindow(o sloObjective, horizon time.Duration) WindowEval {
	ev := WindowEval{HorizonSeconds: horizon.Seconds()}
	var value float64
	switch o.kind {
	case kindLatency:
		v := t.Latency(o.source).Merged(horizon)
		ev.Samples = v.Count()
		value = v.Quantile(o.quantile)
	case kindRate:
		value, ev.Samples = t.Rate(o.source).Rate(horizon)
	}
	if ev.Samples == 0 || math.IsNaN(value) {
		return ev
	}
	ev.Value = value
	ev.BurnRate = value / o.threshold
	return ev
}

// Report evaluates every objective. Objectives are reported in registration
// order; the report's Status is the worst objective's.
func (t *SLOTracker) Report() SLOReport {
	t.mu.Lock()
	objectives := append([]sloObjective(nil), t.objectives...)
	short := time.Duration(t.opts.ShortWindows) * t.opts.WindowDur
	long := time.Duration(t.opts.NumWindows) * t.opts.WindowDur
	t.mu.Unlock()

	rep := SLOReport{Status: SLOOK, Objectives: make([]ObjectiveStatus, 0, len(objectives))}
	for _, o := range objectives {
		st := ObjectiveStatus{
			Name: o.name, Kind: string(o.kind), Source: o.source,
			Quantile: o.quantile, Threshold: o.threshold,
			Short: t.evalWindow(o, short),
			Long:  t.evalWindow(o, long),
		}
		shortHot := st.Short.Samples > 0 && st.Short.BurnRate >= 1
		longHot := st.Long.Samples > 0 && st.Long.BurnRate >= 1
		switch {
		case shortHot && longHot:
			st.Status = SLOBreach
		case shortHot || longHot:
			st.Status = SLOWarn
		default:
			st.Status = SLOOK
		}
		if sloRank(st.Status) > sloRank(rep.Status) {
			rep.Status = st.Status
		}
		rep.Objectives = append(rep.Objectives, st)
	}
	return rep
}

// sloRank orders statuses for worst-of aggregation.
func sloRank(s SLOStatus) int {
	switch s {
	case SLOBreach:
		return 2
	case SLOWarn:
		return 1
	}
	return 0
}

// Export evaluates every objective and mirrors the verdicts into reg so
// /metrics carries the SLO state next to the raw series:
//
//	phocus_slo_status{objective}             0 ok, 1 warn, 2 breach
//	phocus_slo_burn_rate{objective,window}   value/threshold per horizon
//
// It returns the report it rendered, so /slo and /metrics agree.
func (t *SLOTracker) Export(reg *Registry) SLOReport {
	rep := t.Report()
	for _, o := range rep.Objectives {
		reg.Gauge("phocus_slo_status", "objective", o.Name).Set(float64(sloRank(o.Status)))
		reg.Gauge("phocus_slo_burn_rate", "objective", o.Name, "window", "short").Set(o.Short.BurnRate)
		reg.Gauge("phocus_slo_burn_rate", "objective", o.Name, "window", "long").Set(o.Long.BurnRate)
	}
	return rep
}
