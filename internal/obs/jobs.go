package obs

import "time"

// Job-service metric vocabulary. The async job layer (internal/jobs) is
// instrumented entirely through these helpers so phocus-server's dashboards
// see queue pressure and job outcomes next to the solve metrics:
//
//	phocus_jobs_enqueued_total            admitted submissions
//	phocus_jobs_rejected_total            submissions refused by admission control (429)
//	phocus_jobs_completed_total           jobs reaching state done
//	phocus_jobs_failed_total              jobs reaching state failed
//	phocus_jobs_canceled_total            jobs reaching state canceled
//	phocus_jobs_retried_total             transient-failure retries
//	phocus_jobs_requeued_total            running jobs checkpointed back to queued
//	phocus_jobs_deferred_total            SubmitAt admissions (retention reruns included)
//	phocus_jobs_deferred                  gauge: jobs waiting out a NotBefore deadline
//	phocus_jobs_wal_corrupt_total         WAL records skipped during replay
//	phocus_jobs_queue_depth               gauge: queued jobs
//	phocus_jobs_queue_bytes               gauge: queued payload bytes
//	phocus_jobs_running                   gauge: jobs currently executing
//	phocus_jobs_wait_seconds              histogram: submit → start
//	phocus_jobs_run_seconds               histogram: start → terminal

// RecordJobEnqueued counts one admitted submission and refreshes the queue
// gauges.
func RecordJobEnqueued(reg *Registry, depth int, bytes int64) {
	reg.Counter("phocus_jobs_enqueued_total").Inc()
	SetJobQueueGauges(reg, depth, bytes)
}

// RecordJobRejected counts one submission refused by admission control.
func RecordJobRejected(reg *Registry) {
	reg.Counter("phocus_jobs_rejected_total").Inc()
}

// RecordJobStart observes the queue wait of a job entering execution.
func RecordJobStart(reg *Registry, wait time.Duration) {
	reg.Histogram("phocus_jobs_wait_seconds", DefBuckets).Observe(wait.Seconds())
}

// RecordJobDone counts a terminal transition ("done", "failed" or
// "canceled") and observes the run time.
func RecordJobDone(reg *Registry, state string, run time.Duration) {
	switch state {
	case "done":
		reg.Counter("phocus_jobs_completed_total").Inc()
	case "failed":
		reg.Counter("phocus_jobs_failed_total").Inc()
	case "canceled":
		reg.Counter("phocus_jobs_canceled_total").Inc()
	}
	reg.Histogram("phocus_jobs_run_seconds", DefBuckets).Observe(run.Seconds())
}

// RecordJobRetried counts one transient-failure retry.
func RecordJobRetried(reg *Registry) {
	reg.Counter("phocus_jobs_retried_total").Inc()
}

// RecordJobRequeued counts running jobs checkpointed back to queued
// (shutdown drain or crash replay).
func RecordJobRequeued(reg *Registry, n int64) {
	if n > 0 {
		reg.Counter("phocus_jobs_requeued_total").Add(n)
	}
}

// RecordJobWALCorrupt counts WAL records skipped during replay.
func RecordJobWALCorrupt(reg *Registry, n int64) {
	if n > 0 {
		reg.Counter("phocus_jobs_wal_corrupt_total").Add(n)
	}
}

// SetJobQueueGauges refreshes the queue pressure gauges.
func SetJobQueueGauges(reg *Registry, depth int, bytes int64) {
	reg.Gauge("phocus_jobs_queue_depth").Set(float64(depth))
	reg.Gauge("phocus_jobs_queue_bytes").Set(float64(bytes))
}

// SetJobsRunning refreshes the running-jobs gauge.
func SetJobsRunning(reg *Registry, n int64) {
	reg.Gauge("phocus_jobs_running").Set(float64(n))
}

// RecordJobDeferred counts one SubmitAt admission and refreshes the
// pending-deferral gauge (phocus_jobs_deferred_total / phocus_jobs_deferred).
func RecordJobDeferred(reg *Registry, pending int) {
	reg.Counter("phocus_jobs_deferred_total").Inc()
	SetJobsDeferred(reg, pending)
}

// SetJobsDeferred refreshes the gauge of jobs still waiting out a NotBefore
// deadline.
func SetJobsDeferred(reg *Registry, n int) {
	reg.Gauge("phocus_jobs_deferred").Set(float64(n))
}
