package obs

import "time"

// Delta-maintenance metric vocabulary. The churn path (Prepared.ApplyDelta
// behind POST /instances/{fp}/delta and kind=session jobs) reports through
// these helpers so dashboards see incremental updates next to the solve and
// snapshot series:
//
//	phocus_delta_apply_total           delta batches applied
//	phocus_delta_photos_added_total    photos added across all batches
//	phocus_delta_photos_removed_total  photos retired (husked) across all batches
//	phocus_delta_apply_seconds         apply latency histogram (compaction included)
//	phocus_delta_compactions_total     kernel compactions triggered by applies
//	phocus_delta_live_fraction         gauge: live-entry fraction after the last apply

// RecordDeltaApply records one applied delta batch.
func RecordDeltaApply(reg *Registry, added, removed int, elapsed time.Duration) {
	reg.Counter("phocus_delta_apply_total").Inc()
	if added > 0 {
		reg.Counter("phocus_delta_photos_added_total").Add(int64(added))
	}
	if removed > 0 {
		reg.Counter("phocus_delta_photos_removed_total").Add(int64(removed))
	}
	reg.Histogram("phocus_delta_apply_seconds", DefBuckets).Observe(elapsed.Seconds())
}

// RecordDeltaCompaction counts one kernel compaction triggered by an apply.
func RecordDeltaCompaction(reg *Registry) {
	reg.Counter("phocus_delta_compactions_total").Inc()
}

// SetDeltaLiveFraction refreshes the live-entry fraction gauge.
func SetDeltaLiveFraction(reg *Registry, f float64) {
	reg.Gauge("phocus_delta_live_fraction").Set(f)
}
