package obs

import (
	"math"
	"sort"
	"sync"
	"time"
)

// The sliding-window primitives below are the SLO engine's data plane. The
// cumulative Registry histograms answer "what happened since boot"; SLOs
// need "what happened in the last N minutes", so WindowedHistogram and
// WindowedRate keep a ring of fixed-duration windows and merge the live
// ones on read. Writes touch exactly one window (the current one), reads
// merge at most the ring length — both O(buckets), no per-sample storage.

// windowClock is the injectable time source; tests substitute a fake so
// rotation is deterministic.
type windowClock func() time.Time

// histWindow is one time slice of a WindowedHistogram.
type histWindow struct {
	start  time.Time // zero = never used
	counts []int64
	sum    float64
	count  int64
}

// WindowedHistogram buckets observations like Histogram but into a ring of
// fixed-duration windows, so quantiles can be computed over a recent
// horizon instead of process lifetime. All methods are safe for concurrent
// use.
type WindowedHistogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; +Inf bucket implicit
	dur    time.Duration
	wins   []histWindow // ring; wins[cur] is the open window
	cur    int
	now    windowClock
}

// NewWindowedHistogram returns a histogram of n windows of dur each (so the
// longest queryable horizon is n*dur). buckets nil means DefBuckets.
func NewWindowedHistogram(buckets []float64, dur time.Duration, n int) *WindowedHistogram {
	if dur <= 0 || n < 1 {
		panic("obs: NewWindowedHistogram needs dur > 0, n ≥ 1")
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	h := &WindowedHistogram{
		bounds: bounds,
		dur:    dur,
		wins:   make([]histWindow, n),
		now:    time.Now,
	}
	for i := range h.wins {
		h.wins[i].counts = make([]int64, len(bounds)+1)
	}
	return h
}

// setClock substitutes the time source (tests only).
func (h *WindowedHistogram) setClock(now windowClock) {
	h.mu.Lock()
	h.now = now
	h.mu.Unlock()
}

// rotateLocked advances the ring so wins[cur] covers now. A long idle gap
// clears every stale window it skipped over.
func (h *WindowedHistogram) rotateLocked(now time.Time) {
	w := &h.wins[h.cur]
	if w.start.IsZero() {
		w.start = now.Truncate(h.dur)
		return
	}
	for !now.Before(w.start.Add(h.dur)) {
		h.cur = (h.cur + 1) % len(h.wins)
		next := &h.wins[h.cur]
		start := w.start.Add(h.dur)
		// Skip whole empty periods in one hop instead of looping per window.
		if now.Sub(start) >= time.Duration(len(h.wins))*h.dur {
			start = now.Truncate(h.dur)
		}
		next.start = start
		next.sum, next.count = 0, 0
		for i := range next.counts {
			next.counts[i] = 0
		}
		w = next
	}
}

// Observe records one sample into the current window.
func (h *WindowedHistogram) Observe(v float64) {
	h.mu.Lock()
	h.rotateLocked(h.now())
	w := &h.wins[h.cur]
	w.counts[sort.SearchFloat64s(h.bounds, v)]++
	w.sum += v
	w.count++
	h.mu.Unlock()
}

// HistogramView is an immutable merged snapshot of one or more windows;
// Quantile runs the same interpolation as Histogram.Quantile.
type HistogramView struct {
	bounds []float64
	counts []int64
	sum    float64
	count  int64
}

// Count returns the merged observation count.
func (v *HistogramView) Count() int64 { return v.count }

// Sum returns the merged value sum.
func (v *HistogramView) Sum() float64 { return v.sum }

// Quantile estimates the q-quantile of the merged windows; NaN when empty.
func (v *HistogramView) Quantile(q float64) float64 {
	h := Histogram{bounds: v.bounds, counts: v.counts, sum: v.sum, count: v.count}
	return h.quantileLocked(q)
}

// Merged returns a snapshot of every window that started within horizon of
// now (the open window always qualifies once it has samples).
func (h *WindowedHistogram) Merged(horizon time.Duration) *HistogramView {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	h.rotateLocked(now)
	v := &HistogramView{
		bounds: h.bounds,
		counts: make([]int64, len(h.bounds)+1),
	}
	cutoff := now.Add(-horizon)
	for i := range h.wins {
		w := &h.wins[i]
		if w.start.IsZero() || w.count == 0 || w.start.Add(h.dur).Before(cutoff) {
			continue
		}
		for j, c := range w.counts {
			v.counts[j] += c
		}
		v.sum += w.sum
		v.count += w.count
	}
	return v
}

// rateWindow is one time slice of a WindowedRate.
type rateWindow struct {
	start time.Time
	bad   int64
	total int64
}

// WindowedRate tracks a bad/total ratio (e.g. 429s per request) over the
// same ring-of-windows scheme as WindowedHistogram. All methods are safe
// for concurrent use.
type WindowedRate struct {
	mu   sync.Mutex
	dur  time.Duration
	wins []rateWindow
	cur  int
	now  windowClock
}

// NewWindowedRate returns a rate tracker of n windows of dur each.
func NewWindowedRate(dur time.Duration, n int) *WindowedRate {
	if dur <= 0 || n < 1 {
		panic("obs: NewWindowedRate needs dur > 0, n ≥ 1")
	}
	return &WindowedRate{dur: dur, wins: make([]rateWindow, n), now: time.Now}
}

// setClock substitutes the time source (tests only).
func (r *WindowedRate) setClock(now windowClock) {
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

func (r *WindowedRate) rotateLocked(now time.Time) {
	w := &r.wins[r.cur]
	if w.start.IsZero() {
		w.start = now.Truncate(r.dur)
		return
	}
	for !now.Before(w.start.Add(r.dur)) {
		r.cur = (r.cur + 1) % len(r.wins)
		next := &r.wins[r.cur]
		start := w.start.Add(r.dur)
		if now.Sub(start) >= time.Duration(len(r.wins))*r.dur {
			start = now.Truncate(r.dur)
		}
		next.start = start
		next.bad, next.total = 0, 0
		w = next
	}
}

// Observe records one event; bad marks it as counting against the SLO.
func (r *WindowedRate) Observe(bad bool) {
	r.mu.Lock()
	r.rotateLocked(r.now())
	w := &r.wins[r.cur]
	w.total++
	if bad {
		w.bad++
	}
	r.mu.Unlock()
}

// Rate returns the bad fraction and total event count over the horizon.
// With no events the fraction is NaN.
func (r *WindowedRate) Rate(horizon time.Duration) (frac float64, total int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	r.rotateLocked(now)
	cutoff := now.Add(-horizon)
	var bad int64
	for i := range r.wins {
		w := &r.wins[i]
		if w.start.IsZero() || w.total == 0 || w.start.Add(r.dur).Before(cutoff) {
			continue
		}
		bad += w.bad
		total += w.total
	}
	if total == 0 {
		return math.NaN(), 0
	}
	return float64(bad) / float64(total), total
}
