package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "route", "/solve")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same name+labels returns the same handle, regardless of pair order.
	c2 := r.Counter("requests_total", "route", "/solve")
	if c2 != c {
		t.Error("second lookup returned a different counter")
	}
	m := r.Counter("multi_total", "a", "1", "b", "2")
	m2 := r.Counter("multi_total", "b", "2", "a", "1")
	if m != m2 {
		t.Error("label order split the series")
	}
	// Different labels are different series.
	if r.Counter("requests_total", "route", "/healthz") == c {
		t.Error("different labels returned the same counter")
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) did not panic")
		}
	}()
	NewRegistry().Counter("x_total").Add(-1)
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("utilization")
	g.Set(0.5)
	g.Add(0.25)
	g.Add(-0.5)
	if got := g.Value(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("gauge = %g, want 0.25", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", []float64{0.1, 0.2, 0.5, 1})
	// 100 samples uniform in (0, 1]: quantiles should land near their rank.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if s := h.Sum(); math.Abs(s-50.5) > 1e-9 {
		t.Errorf("sum = %g, want 50.5", s)
	}
	for _, tc := range []struct{ q, want, tol float64 }{
		{0.50, 0.5, 0.05},
		{0.95, 0.95, 0.05},
		{0.99, 0.99, 0.05},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > tc.tol {
			t.Errorf("p%.0f = %g, want ≈%g", tc.q*100, got, tc.want)
		}
	}
	// Overflow samples clamp to the highest finite bound.
	h2 := r.Histogram("big_seconds", []float64{1, 2})
	h2.Observe(50)
	if got := h2.Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile = %g, want highest bound 2", got)
	}
	// Empty histogram: NaN.
	h3 := r.Histogram("empty_seconds", nil)
	if got := h3.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile = %g, want NaN", got)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	r := NewRegistry()

	// Empty histogram: every q is NaN, including the extremes.
	empty := r.Histogram("edge_empty", []float64{1, 2})
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); !math.IsNaN(got) {
			t.Errorf("empty Quantile(%g) = %g, want NaN", q, got)
		}
	}

	// q=0 and q=1 bracket the populated buckets; out-of-range q clamps.
	h := r.Histogram("edge_range", []float64{1, 2, 4})
	h.Observe(1.5)
	h.Observe(1.5)
	h.Observe(3)
	if got := h.Quantile(0); got < 1 || got > 2 {
		t.Errorf("Quantile(0) = %g, want within the first populated bucket (1,2]", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Errorf("Quantile(1) = %g, want upper bound 4 of the last populated bucket", got)
	}
	if got, clamped := h.Quantile(-3), h.Quantile(0); got != clamped {
		t.Errorf("Quantile(-3) = %g, want clamp to Quantile(0) = %g", got, clamped)
	}
	if got, clamped := h.Quantile(7), h.Quantile(1); got != clamped {
		t.Errorf("Quantile(7) = %g, want clamp to Quantile(1) = %g", got, clamped)
	}

	// All mass in the +Inf overflow bucket: every quantile clamps to the
	// highest finite bound instead of inventing an infinite latency.
	over := r.Histogram("edge_overflow", []float64{1, 2})
	for i := 0; i < 10; i++ {
		over.Observe(1e9)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := over.Quantile(q); got != 2 {
			t.Errorf("all-overflow Quantile(%g) = %g, want 2", q, got)
		}
	}

	// A single sample answers every quantile from its own bucket.
	one := r.Histogram("edge_single", []float64{1, 2})
	one.Observe(0.5)
	for _, q := range []float64{0, 0.5, 1} {
		if got := one.Quantile(q); got < 0 || got > 1 {
			t.Errorf("single-sample Quantile(%g) = %g, want in [0,1]", q, got)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("solve_total", "algo", "PHOcus").Add(3)
	r.Counter("solve_total", "algo", "exact").Inc()
	r.Gauge("score").Set(13.25)
	h := r.Histogram("latency_seconds", []float64{0.5, 1})
	h.Observe(0.3)
	h.Observe(0.7)
	h.Observe(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE solve_total counter",
		`solve_total{algo="PHOcus"} 3`,
		`solve_total{algo="exact"} 1`,
		"# TYPE score gauge",
		"score 13.25",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.5"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The counter TYPE line must appear exactly once for the family.
	if strings.Count(out, "# TYPE solve_total counter") != 1 {
		t.Errorf("duplicated TYPE line:\n%s", out)
	}
	// Deterministic: a second render is byte-identical.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("exposition is not deterministic")
	}
}

func TestSnapshotAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total").Add(7)
	r.Gauge("ratio").Set(0.9)
	h := r.Histogram("lat_seconds", []float64{1, 2})
	h.Observe(0.5)

	snap := r.Snapshot()
	if got := snap["runs_total"]; got != int64(7) {
		t.Errorf("snapshot counter = %v", got)
	}
	if got := snap["ratio"]; got != 0.9 {
		t.Errorf("snapshot gauge = %v", got)
	}
	hs, ok := snap["lat_seconds"].(HistogramSnapshot)
	if !ok || hs.Count != 1 {
		t.Errorf("snapshot histogram = %#v", snap["lat_seconds"])
	}

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"runs_total": 7`, `"ratio": 0.9`, `"p50"`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("JSON missing %q:\n%s", want, sb.String())
		}
	}
}

// TestConcurrentHammer drives the registry from 12 goroutines — creations,
// updates, and expositions interleaved — and checks the totals. Run under
// -race this is the registry's thread-safety gate.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const goroutines = 12
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Counter("hammer_total", "worker", string(rune('a'+g%4))).Inc()
				r.Gauge("hammer_gauge").Set(float64(i))
				r.Histogram("hammer_seconds", DefBuckets).Observe(float64(i%100) / 100)
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Errorf("WritePrometheus: %v", err)
					}
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	var total int64
	for _, w := range []string{"a", "b", "c", "d"} {
		total += r.Counter("hammer_total", "worker", w).Value()
	}
	if total != goroutines*perG {
		t.Errorf("counter total = %d, want %d", total, goroutines*perG)
	}
	if got := r.Histogram("hammer_seconds", nil).Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestRecordSolve(t *testing.T) {
	r := NewRegistry()
	RecordSolve(r, "PHOcus", 4, 5000, 1234, 5678, 250*time.Millisecond)
	RecordSolve(r, "PHOcus", 4, 5000, 1000, 2000, 100*time.Millisecond)
	RecordSolve(r, "Brute-Force", 0, 10, 0, 0, time.Second)
	if got := r.Counter("phocus_solve_total", "algo", "PHOcus", "workers", "4").Value(); got != 2 {
		t.Errorf("solve_total{PHOcus,workers=4} = %d, want 2", got)
	}
	// workers ≤ 0 is recorded under the sequential label "1".
	if got := r.Counter("phocus_solve_total", "algo", "Brute-Force", "workers", "1").Value(); got != 1 {
		t.Errorf("solve_total{Brute-Force,workers=1} = %d, want 1", got)
	}
	if got := r.Counter("phocus_solver_gain_evals_total", "algo", "PHOcus").Value(); got != 2234 {
		t.Errorf("gain_evals_total = %d, want 2234", got)
	}
	if got := r.Histogram("phocus_solve_instance_photos", nil).Count(); got != 3 {
		t.Errorf("instance_photos count = %d, want 3", got)
	}
	// Brute-Force reported no gain evals: no zero-valued series created.
	if _, ok := r.Snapshot()[`phocus_solver_gain_evals_total{algo="Brute-Force"}`]; ok {
		t.Error("zero-valued gain-eval series should not exist")
	}
}

func TestSumCountersAndHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "code", "200").Add(3)
	r.Counter("requests_total", "code", "500").Add(2)
	r.Counter("other_total").Add(100)
	if got := r.SumCounters("requests_total"); got != 5 {
		t.Errorf("SumCounters(requests_total) = %d, want 5", got)
	}
	if got := r.SumCounters("missing_total"); got != 0 {
		t.Errorf("SumCounters(missing_total) = %d, want 0", got)
	}

	r.Histogram("latency_seconds", DefBuckets, "algo", "a").Observe(0.5)
	r.Histogram("latency_seconds", DefBuckets, "algo", "a").Observe(1.5)
	r.Histogram("latency_seconds", DefBuckets, "algo", "b").Observe(2)
	r.Histogram("unrelated_seconds", DefBuckets).Observe(9)
	count, sum := r.SumHistograms("latency_seconds")
	if count != 3 || sum != 4 {
		t.Errorf("SumHistograms(latency_seconds) = (%d, %g), want (3, 4)", count, sum)
	}
	count, sum = r.SumHistograms("missing_seconds")
	if count != 0 || sum != 0 {
		t.Errorf("SumHistograms(missing_seconds) = (%d, %g), want (0, 0)", count, sum)
	}
}

func TestRecordKernelBuild(t *testing.T) {
	r := NewRegistry()
	RecordKernelBuild(r, 50*time.Millisecond)
	RecordKernelBuild(r, 150*time.Millisecond)
	h := r.Histogram("phocus_kernel_build_seconds", nil)
	if got := h.Count(); got != 2 {
		t.Errorf("kernel build count = %d, want 2", got)
	}
	if got := h.Sum(); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("kernel build sum = %g, want 0.2", got)
	}
}
