package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Registry holds named metrics. All methods are safe for concurrent use;
// metric handles returned by Counter/Gauge/Histogram are stable, so hot
// paths can look them up once and update lock-free afterwards.
//
// Metric names should follow Prometheus conventions (snake_case, counters
// ending in _total, durations in seconds). Labels are passed as alternating
// key/value pairs and become part of the metric identity.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name   string
	labels string
	v      atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d, which must be non-negative.
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("obs: negative Add(%d) on counter %s", d, c.name))
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	name   string
	labels string
	bits   atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d (d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into fixed buckets (cumulative-style on
// export, like Prometheus) and tracks sum and count for averages.
type Histogram struct {
	name   string
	labels string

	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; the +Inf bucket is implicit
	counts []int64   // len(bounds)+1; counts[i] observations in (bounds[i-1], bounds[i]]
	sum    float64
	count  int64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// within the bucket containing the target rank. Samples landing in the +Inf
// bucket are reported as the highest finite bound. Returns NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	var cum int64
	for i, c := range h.counts {
		cum += c
		// Empty buckets never answer a quantile: a boundary rank (q=0, or a
		// rank landing exactly on a cumulative count) skips ahead to the
		// first populated bucket instead of reporting an empty bound.
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i == len(h.bounds) { // +Inf bucket
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + frac*(hi-lo)
	}
	return h.bounds[len(h.bounds)-1]
}

// DefBuckets are latency buckets in seconds, spanning sub-millisecond
// request overheads to minute-scale exact solves.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// SizeBuckets are decade buckets for instance sizes (photo counts).
var SizeBuckets = []float64{10, 100, 1_000, 10_000, 100_000, 1_000_000}

// RatioBuckets cover [0, 1] quantities such as budget utilization.
var RatioBuckets = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}

// ExpBuckets returns n exponentially spaced bucket bounds starting at start
// and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Counter returns (creating on first use) the counter with the given name
// and label pairs.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	labels := renderLabels(labelPairs)
	key := name + labels
	r.mu.RLock()
	c := r.counters[key]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[key]; c == nil {
		c = &Counter{name: name, labels: labels}
		r.counters[key] = c
	}
	return c
}

// Gauge returns (creating on first use) the gauge with the given name and
// label pairs.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	labels := renderLabels(labelPairs)
	key := name + labels
	r.mu.RLock()
	g := r.gauges[key]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[key]; g == nil {
		g = &Gauge{name: name, labels: labels}
		r.gauges[key] = g
	}
	return g
}

// Histogram returns (creating on first use) the histogram with the given
// name and label pairs. buckets configures the upper bounds on first
// creation (nil means DefBuckets) and is ignored when the histogram already
// exists, so every series of one family shares one layout.
func (r *Registry) Histogram(name string, buckets []float64, labelPairs ...string) *Histogram {
	labels := renderLabels(labelPairs)
	key := name + labels
	r.mu.RLock()
	h := r.hists[key]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[key]; h == nil {
		h = &Histogram{
			name:   name,
			labels: labels,
			bounds: bounds,
			counts: make([]int64, len(bounds)+1),
		}
		r.hists[key] = h
	}
	return h
}

// SumCounters returns the summed value of every counter series with the
// given name, across all label sets. Summaries (phocus-bench's end-of-run
// report) use it to aggregate families like
// phocus_solver_gain_evals_total{algo} without enumerating label values.
func (r *Registry) SumCounters(name string) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for _, c := range r.counters {
		if c.name == name {
			total += c.Value()
		}
	}
	return total
}

// SumHistograms returns the combined observation count and value sum of
// every histogram series with the given name, across all label sets.
func (r *Registry) SumHistograms(name string) (count int64, sum float64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, h := range r.hists {
		if h.name != name {
			continue
		}
		h.mu.Lock()
		count += h.count
		sum += h.sum
		h.mu.Unlock()
	}
	return count, sum
}

// renderLabels turns alternating key/value pairs into the canonical
// `{k="v",...}` form, sorted by key so label order never splits a series.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label pairs %q", pairs))
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", p.k, p.v)
	}
	sb.WriteByte('}')
	return sb.String()
}

// WritePrometheus emits every metric in the Prometheus text exposition
// format (counters, gauges, and histograms with cumulative _bucket series),
// sorted by name then labels for deterministic output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.RUnlock()

	sort.Slice(counters, func(i, j int) bool {
		return counters[i].name+counters[i].labels < counters[j].name+counters[j].labels
	})
	sort.Slice(gauges, func(i, j int) bool {
		return gauges[i].name+gauges[i].labels < gauges[j].name+gauges[j].labels
	})
	sort.Slice(hists, func(i, j int) bool {
		return hists[i].name+hists[i].labels < hists[j].name+hists[j].labels
	})

	var err error
	pr := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	lastType := ""
	typeLine := func(name, typ string) {
		if name != lastType {
			pr("# TYPE %s %s\n", name, typ)
			lastType = name
		}
	}
	for _, c := range counters {
		typeLine(c.name, "counter")
		pr("%s%s %d\n", c.name, c.labels, c.Value())
	}
	for _, g := range gauges {
		typeLine(g.name, "gauge")
		pr("%s%s %v\n", g.name, g.labels, g.Value())
	}
	for _, h := range hists {
		typeLine(h.name, "histogram")
		h.mu.Lock()
		var cum int64
		for i, b := range h.bounds {
			cum += h.counts[i]
			pr("%s_bucket%s %d\n", h.name, mergeLabel(h.labels, "le", formatBound(b)), cum)
		}
		pr("%s_bucket%s %d\n", h.name, mergeLabel(h.labels, "le", "+Inf"), h.count)
		pr("%s_sum%s %v\n", h.name, h.labels, h.sum)
		pr("%s_count%s %d\n", h.name, h.labels, h.count)
		h.mu.Unlock()
	}
	return err
}

// mergeLabel splices an extra label into an already-rendered label block.
func mergeLabel(labels, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// formatBound renders a bucket bound the way Prometheus clients do:
// decimal, no exponent, no trailing zeros.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'f', -1, 64)
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot returns all metrics as a flat map keyed by `name{labels}`:
// counters as int64, gauges as float64, histograms as HistogramSnapshot.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists))
	for k, c := range r.counters {
		out[k] = c.Value()
	}
	for k, g := range r.gauges {
		out[k] = g.Value()
	}
	for k, h := range r.hists {
		h.mu.Lock()
		s := HistogramSnapshot{
			Count: h.count,
			Sum:   h.sum,
			P50:   sanitize(h.quantileLocked(0.50)),
			P95:   sanitize(h.quantileLocked(0.95)),
			P99:   sanitize(h.quantileLocked(0.99)),
		}
		h.mu.Unlock()
		out[k] = s
	}
	return out
}

// sanitize maps NaN (empty histogram) to 0 so snapshots stay JSON-encodable.
func sanitize(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// WriteJSON emits the Snapshot as indented JSON — the /debug/vars payload.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
