package obs

import "time"

// RecordSolve records one solver run under the metric vocabulary shared by
// phocus-server and phocus-bench, so paper experiments and live traffic
// read on the same dashboards:
//
//	phocus_solve_total{algo}             runs per algorithm
//	phocus_solve_seconds{algo}           solve latency histogram
//	phocus_solve_instance_photos         instance-size histogram
//	phocus_solver_gain_evals_total{algo} marginal-gain evaluations
//	phocus_solver_pq_pops_total{algo}    lazy-evaluation PQ probes
//
// gainEvals and pqPops may be zero for solvers that do not report them.
func RecordSolve(reg *Registry, algo string, photos int, gainEvals, pqPops int64, elapsed time.Duration) {
	reg.Counter("phocus_solve_total", "algo", algo).Inc()
	reg.Histogram("phocus_solve_seconds", DefBuckets, "algo", algo).Observe(elapsed.Seconds())
	reg.Histogram("phocus_solve_instance_photos", SizeBuckets).Observe(float64(photos))
	if gainEvals > 0 {
		reg.Counter("phocus_solver_gain_evals_total", "algo", algo).Add(gainEvals)
	}
	if pqPops > 0 {
		reg.Counter("phocus_solver_pq_pops_total", "algo", algo).Add(pqPops)
	}
}
