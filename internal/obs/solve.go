package obs

import (
	"strconv"
	"time"
)

// RecordSolve records one solver run under the metric vocabulary shared by
// phocus-server and phocus-bench, so paper experiments and live traffic
// read on the same dashboards:
//
//	phocus_solve_total{algo,workers}     runs per algorithm and pool size
//	phocus_solve_seconds{algo,workers}   solve latency histogram
//	phocus_solve_instance_photos         instance-size histogram
//	phocus_solver_gain_evals_total{algo} marginal-gain evaluations
//	phocus_solver_pq_pops_total{algo}    lazy-evaluation PQ probes
//
// workers is the solve pipeline's worker-pool size; labelling latency by it
// is what makes parallel speedups visible on /metrics (values ≤ 0 are
// recorded as 1, the sequential path). gainEvals and pqPops may be zero for
// solvers that do not report them.
func RecordSolve(reg *Registry, algo string, workers, photos int, gainEvals, pqPops int64, elapsed time.Duration) {
	if workers <= 0 {
		workers = 1
	}
	w := strconv.Itoa(workers)
	reg.Counter("phocus_solve_total", "algo", algo, "workers", w).Inc()
	reg.Histogram("phocus_solve_seconds", DefBuckets, "algo", algo, "workers", w).Observe(elapsed.Seconds())
	reg.Histogram("phocus_solve_instance_photos", SizeBuckets).Observe(float64(photos))
	if gainEvals > 0 {
		reg.Counter("phocus_solver_gain_evals_total", "algo", algo).Add(gainEvals)
	}
	if pqPops > 0 {
		reg.Counter("phocus_solver_pq_pops_total", "algo", algo).Add(pqPops)
	}
}

// RecordKernelBuild records one compiled-gain-kernel build during Prepare:
//
//	phocus_kernel_build_seconds  kernel compilation latency histogram
func RecordKernelBuild(reg *Registry, elapsed time.Duration) {
	reg.Histogram("phocus_kernel_build_seconds", DefBuckets).Observe(elapsed.Seconds())
}

// RecordPrepareCache records one prepared-instance cache probe:
//
//	phocus_prepare_cache_hits_total    probes answered from cache
//	phocus_prepare_cache_misses_total  probes that had to Prepare
func RecordPrepareCache(reg *Registry, hit bool) {
	if hit {
		reg.Counter("phocus_prepare_cache_hits_total").Inc()
	} else {
		reg.Counter("phocus_prepare_cache_misses_total").Inc()
	}
}

// RecordPrepareCacheEvictions records entries evicted by a cache insert:
//
//	phocus_prepare_cache_evictions_total
func RecordPrepareCacheEvictions(reg *Registry, evicted int64) {
	if evicted > 0 {
		reg.Counter("phocus_prepare_cache_evictions_total").Add(evicted)
	}
}

// RecordSolveCanceled records one solve stopped mid-run by context
// cancellation (client disconnect or -solve-timeout):
//
//	phocus_solve_canceled_total{algo}
func RecordSolveCanceled(reg *Registry, algo string) {
	reg.Counter("phocus_solve_canceled_total", "algo", algo).Inc()
}
