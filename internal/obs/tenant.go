package obs

import "time"

// Tenant-scoped serving metrics. The tenant label MUST come through a
// fleet.LabelGuard (or an equivalent cardinality bound) — these helpers
// record whatever label they are handed.

// RecordTenantRequest counts one admitted tenant-keyed request on the
// given endpoint ("solve", "jobs", "delta") and its handling latency.
func RecordTenantRequest(reg *Registry, tenant, endpoint string, elapsed time.Duration) {
	reg.Counter("phocus_tenant_requests_total", "tenant", tenant, "endpoint", endpoint).Inc()
	reg.Histogram("phocus_tenant_request_seconds", DefBuckets, "tenant", tenant).Observe(elapsed.Seconds())
}

// RecordTenantThrottled counts one request rejected (429) by the tenant's
// admission quota.
func RecordTenantThrottled(reg *Registry, tenant string) {
	reg.Counter("phocus_tenant_throttled_total", "tenant", tenant).Inc()
}

// RecordTenantMisrouted counts one tenant-keyed request that reached a
// shard that does not own the tenant (answered 421). A nonzero rate means
// a client or router holds a stale shard map.
func RecordTenantMisrouted(reg *Registry, tenant string) {
	reg.Counter("phocus_tenant_misrouted_total", "tenant", tenant).Inc()
}

// SetTenantsTracked publishes how many tenant quota buckets the shard
// currently tracks.
func SetTenantsTracked(reg *Registry, n int) {
	reg.Gauge("phocus_tenants_tracked").Set(float64(n))
}
