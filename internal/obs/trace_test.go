package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"testing"
	"time"
)

func TestTraceStoreSpanRecording(t *testing.T) {
	ts := NewTraceStore(8)
	ctx := WithLogger(context.Background(), slog.New(slog.NewTextHandler(io.Discard, nil)))
	ctx = WithRequestID(ctx, "req1")
	ctx = WithTraceStore(ctx, ts)

	ctx, outer := StartSpan(ctx, "solve")
	_, inner := StartSpan(ctx, "sparsify")
	inner.End("pairs", 7)
	outer.End()

	tr, ok := ts.Get("req1")
	if !ok {
		t.Fatal("trace req1 not found")
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(tr.Spans))
	}
	// Completion order: inner first, carrying the parent link and attrs.
	if tr.Spans[0].Name != "sparsify" || tr.Spans[0].ParentID != outer.ID() {
		t.Errorf("inner span = %+v", tr.Spans[0])
	}
	if tr.Spans[0].Attrs["pairs"] != "7" {
		t.Errorf("inner attrs = %v, want pairs=7", tr.Spans[0].Attrs)
	}
	if tr.Spans[1].Name != "solve" || tr.Spans[1].ParentID != "" {
		t.Errorf("outer span = %+v", tr.Spans[1])
	}
	if tr.Spans[0].DurationMS < 0 {
		t.Errorf("negative duration %v", tr.Spans[0].DurationMS)
	}
}

func TestTraceStoreNoStoreNoRequestID(t *testing.T) {
	// Spans without a store, and spans with a store but no request ID, must
	// be inert (no panic, nothing recorded).
	ctx := WithLogger(context.Background(), slog.New(slog.NewTextHandler(io.Discard, nil)))
	_, s := StartSpan(ctx, "orphan")
	s.End()

	ts := NewTraceStore(4)
	_, s2 := StartSpan(WithTraceStore(ctx, ts), "anon")
	s2.End()
	if ts.Len() != 0 {
		t.Errorf("store retained %d traces, want 0", ts.Len())
	}
}

func TestTraceStoreLRUEviction(t *testing.T) {
	ts := NewTraceStore(3)
	for i := 0; i < 3; i++ {
		ts.Add(fmt.Sprintf("t%d", i), SpanRecord{Name: "run"})
	}
	// Touch t0 so t1 becomes the LRU victim.
	if _, ok := ts.Get("t0"); !ok {
		t.Fatal("t0 missing before eviction")
	}
	ts.Add("t3", SpanRecord{Name: "run"})
	if _, ok := ts.Get("t1"); ok {
		t.Error("t1 survived past capacity, want LRU eviction")
	}
	for _, id := range []string{"t0", "t2", "t3"} {
		if _, ok := ts.Get(id); !ok {
			t.Errorf("%s evicted, want retained", id)
		}
	}
	if ts.Len() != 3 {
		t.Errorf("len = %d, want 3", ts.Len())
	}
}

func TestTraceStorePerTraceCap(t *testing.T) {
	ts := NewTraceStore(2)
	for i := 0; i < maxSpansPerTrace+10; i++ {
		ts.Add("big", SpanRecord{Name: "retry", Start: time.Now()})
	}
	tr, _ := ts.Get("big")
	if len(tr.Spans) != maxSpansPerTrace {
		t.Errorf("spans = %d, want capped at %d", len(tr.Spans), maxSpansPerTrace)
	}
	if tr.Dropped != 10 {
		t.Errorf("dropped = %d, want 10", tr.Dropped)
	}
}

func TestTraceStoreConcurrent(t *testing.T) {
	ts := NewTraceStore(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("req%d", g%4)
			for i := 0; i < 500; i++ {
				ts.Add(id, SpanRecord{Name: "stage"})
				if i%32 == 0 {
					ts.Get(id)
				}
			}
		}(g)
	}
	wg.Wait()
	if ts.Len() != 4 {
		t.Errorf("len = %d, want 4", ts.Len())
	}
}

func TestRenderAttrs(t *testing.T) {
	if m := renderAttrs(nil); m != nil {
		t.Errorf("nil attrs = %v", m)
	}
	m := renderAttrs([]any{"k", 1, "s", "v", "odd"})
	if m["k"] != "1" || m["s"] != "v" || m["extra"] != "odd" {
		t.Errorf("attrs = %v", m)
	}
}
