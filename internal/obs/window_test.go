package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded settable clock for window-rotation tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestWindowedHistogramMergeHorizons(t *testing.T) {
	clk := newFakeClock()
	h := NewWindowedHistogram([]float64{1, 10, 100}, time.Minute, 10)
	h.setClock(clk.Now)

	// Minute 0: fast samples. Minute 5: slow samples.
	h.Observe(0.5)
	h.Observe(0.5)
	clk.Advance(5 * time.Minute)
	h.Observe(50)
	h.Observe(50)

	// A 2-minute horizon only sees the slow burst.
	short := h.Merged(2 * time.Minute)
	if short.Count() != 2 {
		t.Fatalf("short count = %d, want 2", short.Count())
	}
	if q := short.Quantile(0.5); q < 10 || q > 100 {
		t.Errorf("short p50 = %v, want in (10,100]", q)
	}
	// The full horizon sees both.
	long := h.Merged(10 * time.Minute)
	if long.Count() != 4 {
		t.Fatalf("long count = %d, want 4", long.Count())
	}
	if s := long.Sum(); s != 101 {
		t.Errorf("long sum = %v, want 101", s)
	}
	// Advancing past the ring length expires everything (a window ending
	// exactly on the cutoff still counts, so go strictly past it).
	clk.Advance(12 * time.Minute)
	if c := h.Merged(10 * time.Minute).Count(); c != 0 {
		t.Errorf("expired count = %d, want 0", c)
	}
}

func TestWindowedHistogramRingReuse(t *testing.T) {
	clk := newFakeClock()
	h := NewWindowedHistogram([]float64{1}, time.Minute, 3)
	h.setClock(clk.Now)
	// Wrap the 3-slot ring twice; old windows must be cleared on reuse.
	for i := 0; i < 6; i++ {
		h.Observe(0.5)
		clk.Advance(time.Minute)
	}
	// The final advance opened a fresh (empty) current window, reusing the
	// oldest slot — so two populated windows remain live in the ring.
	v := h.Merged(3 * time.Minute)
	if v.Count() != 2 {
		t.Fatalf("count after wrap = %d, want 2 (ring reuses the oldest slot)", v.Count())
	}
}

func TestWindowedHistogramIdleGap(t *testing.T) {
	clk := newFakeClock()
	h := NewWindowedHistogram([]float64{1}, time.Minute, 4)
	h.setClock(clk.Now)
	h.Observe(0.5)
	// A gap far longer than the ring must not loop per skipped window and
	// must leave only the fresh sample visible.
	clk.Advance(24 * time.Hour)
	h.Observe(0.5)
	if c := h.Merged(4 * time.Minute).Count(); c != 1 {
		t.Errorf("count after idle gap = %d, want 1", c)
	}
}

func TestWindowedRate(t *testing.T) {
	clk := newFakeClock()
	r := NewWindowedRate(time.Minute, 10)
	r.setClock(clk.Now)

	frac, total := r.Rate(10 * time.Minute)
	if !math.IsNaN(frac) || total != 0 {
		t.Fatalf("empty rate = %v/%d, want NaN/0", frac, total)
	}
	// Minute 0: 1 bad of 4. Minute 5: 0 bad of 4.
	for i := 0; i < 4; i++ {
		r.Observe(i == 0)
	}
	clk.Advance(5 * time.Minute)
	for i := 0; i < 4; i++ {
		r.Observe(false)
	}
	if frac, total = r.Rate(2 * time.Minute); frac != 0 || total != 4 {
		t.Errorf("short rate = %v/%d, want 0/4", frac, total)
	}
	if frac, total = r.Rate(10 * time.Minute); frac != 0.125 || total != 8 {
		t.Errorf("long rate = %v/%d, want 0.125/8", frac, total)
	}
}

// TestWindowedHistogramConcurrentObserve hammers Observe and Merged from
// many goroutines (run under -race in CI) across live window rotations and
// checks no samples are lost or double-counted at the end.
func TestWindowedHistogramConcurrentObserve(t *testing.T) {
	h := NewWindowedHistogram(DefBuckets, 50*time.Millisecond, 64)
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(float64(i%100) / 1000)
				if i%64 == 0 {
					v := h.Merged(time.Hour)
					if v.Count() < 0 {
						t.Error("negative merged count")
					}
					_ = v.Quantile(0.95)
				}
			}
		}(g)
	}
	wg.Wait()
	v := h.Merged(time.Hour)
	if v.Count() != goroutines*perG {
		t.Fatalf("merged count = %d, want %d", v.Count(), goroutines*perG)
	}
}

func TestWindowedRateConcurrentObserve(t *testing.T) {
	r := NewWindowedRate(50*time.Millisecond, 64)
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				r.Observe(i%4 == 0)
				if i%128 == 0 {
					r.Rate(time.Hour)
				}
			}
		}()
	}
	wg.Wait()
	frac, total := r.Rate(time.Hour)
	if total != goroutines*perG {
		t.Fatalf("total = %d, want %d", total, goroutines*perG)
	}
	if frac != 0.25 {
		t.Errorf("bad fraction = %v, want 0.25", frac)
	}
}
