package obs

import "time"

// Prepared-snapshot metric vocabulary. The warm-restart path (snapshot
// store + cache warm-fill in phocus-server) is instrumented through these
// helpers so restarts' cold/warm behaviour shows up next to the prepare-
// cache metrics:
//
//	phocus_snapshot_load_total     snapshots decoded and admitted (warm-fill
//	                               and lazy loads alike)
//	phocus_snapshot_write_total    snapshots persisted after a cold Prepare
//	phocus_snapshot_corrupt_total  snapshots that failed verification and
//	                               were quarantined
//	phocus_snapshot_load_seconds   decode latency histogram
//	phocus_snapshot_bytes_written  cumulative snapshot bytes persisted

// RecordSnapshotLoad records one successful snapshot load.
func RecordSnapshotLoad(reg *Registry, elapsed time.Duration) {
	reg.Counter("phocus_snapshot_load_total").Inc()
	reg.Histogram("phocus_snapshot_load_seconds", DefBuckets).Observe(elapsed.Seconds())
}

// RecordSnapshotWrite records one snapshot persisted to the store.
func RecordSnapshotWrite(reg *Registry, bytes int64) {
	reg.Counter("phocus_snapshot_write_total").Inc()
	if bytes > 0 {
		reg.Counter("phocus_snapshot_bytes_written").Add(bytes)
	}
}

// RecordSnapshotMmapLoad records one snapshot load served through the mmap
// path (counted alongside the plain load counter, never instead of it):
//
//	phocus_snapshot_mmap_loads_total
func RecordSnapshotMmapLoad(reg *Registry) {
	reg.Counter("phocus_snapshot_mmap_loads_total").Inc()
}

// RecordKernelQuantized records one prepared instance whose solve kernel came
// up quantized (at cold Prepare or after tuning a loaded snapshot):
//
//	phocus_kernel_quantized_total
func RecordKernelQuantized(reg *Registry) {
	reg.Counter("phocus_kernel_quantized_total").Inc()
}

// SetPreparedMmapBytes exports the prepare cache's mmap-backed residency —
// page-cache bytes, deliberately excluded from the cache's heap byte bound:
//
//	phocus_prepared_mmap_bytes
func SetPreparedMmapBytes(reg *Registry, bytes int64) {
	reg.Gauge("phocus_prepared_mmap_bytes").Set(float64(bytes))
}

// RecordSnapshotCorrupt records one snapshot rejected by verification and
// quarantined.
func RecordSnapshotCorrupt(reg *Registry) {
	reg.Counter("phocus_snapshot_corrupt_total").Inc()
}

// RecordSnapshotTempSwept counts orphaned snapshot temp files deleted
// during the store's warm-fill scan (crash between temp-write and rename).
func RecordSnapshotTempSwept(reg *Registry, n int64) {
	if n > 0 {
		reg.Counter("phocus_snapshot_temp_swept_total").Add(n)
	}
}

// RecordJobTempSwept counts orphaned compaction-snapshot temp files deleted
// during a jobs-store replay (crash between temp-write and rename).
func RecordJobTempSwept(reg *Registry, n int64) {
	if n > 0 {
		reg.Counter("phocus_jobs_temp_swept_total").Add(n)
	}
}
