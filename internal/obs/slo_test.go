package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// newTestTracker returns a tracker with 1-minute windows (short horizon 2m,
// long 10m) on a fake clock.
func newTestTracker() (*SLOTracker, *fakeClock) {
	t := NewSLOTracker(SLOTrackerOptions{
		WindowDur: time.Minute, NumWindows: 10, ShortWindows: 2,
	})
	clk := newFakeClock()
	t.Latency(SLOSolveLatency)
	t.Rate(SLORejectRate)
	t.setClock(clk.Now)
	return t, clk
}

func TestSLONoTrafficIsOK(t *testing.T) {
	tr, _ := newTestTracker()
	tr.AddLatencyObjective("solve_p95", SLOSolveLatency, 0.95, 500*time.Millisecond)
	tr.AddRateObjective("reject_rate", SLORejectRate, 0.05)
	rep := tr.Report()
	if rep.Status != SLOOK {
		t.Fatalf("status with no traffic = %q, want ok", rep.Status)
	}
	if len(rep.Objectives) != 2 {
		t.Fatalf("objectives = %d, want 2", len(rep.Objectives))
	}
	for _, o := range rep.Objectives {
		if o.Status != SLOOK || o.Short.Samples != 0 || o.Long.Samples != 0 {
			t.Errorf("objective %s = %+v, want ok with no samples", o.Name, o)
		}
	}
}

func TestSLOLatencyBurnTransitions(t *testing.T) {
	tr, clk := newTestTracker()
	tr.AddLatencyObjective("solve_p95", SLOSolveLatency, 0.95, 100*time.Millisecond)
	lat := tr.Latency(SLOSolveLatency)

	// Healthy traffic: well under the threshold → ok.
	for i := 0; i < 20; i++ {
		lat.Observe(0.010)
	}
	if rep := tr.Report(); rep.Status != SLOOK {
		t.Fatalf("healthy status = %q, want ok", rep.Status)
	}

	// A slow burst now: the short window burns but the long window (which
	// still holds mostly healthy samples) does not → warn... unless the
	// burst dominates the whole horizon too. Seed enough old healthy
	// samples across older windows first.
	clk.Advance(5 * time.Minute)
	for i := 0; i < 200; i++ {
		lat.Observe(0.010)
	}
	clk.Advance(4 * time.Minute)
	for i := 0; i < 10; i++ {
		lat.Observe(1.0) // 10 slow of 210 total: long p95 stays healthy
	}
	rep := tr.Report()
	if got := rep.Objectives[0].Status; got != SLOWarn {
		t.Fatalf("fresh-spike status = %q, want warn (short=%+v long=%+v)",
			got, rep.Objectives[0].Short, rep.Objectives[0].Long)
	}

	// Sustained slowness: old healthy samples age out, slow ones dominate
	// both horizons → breach.
	clk.Advance(9 * time.Minute)
	for i := 0; i < 50; i++ {
		lat.Observe(1.0)
	}
	rep = tr.Report()
	o := rep.Objectives[0]
	if o.Status != SLOBreach {
		t.Fatalf("sustained status = %q, want breach (short=%+v long=%+v)", o.Status, o.Short, o.Long)
	}
	if o.Short.BurnRate < 1 || o.Long.BurnRate < 1 {
		t.Errorf("breach burn rates = %v/%v, want both ≥ 1", o.Short.BurnRate, o.Long.BurnRate)
	}
	if rep.Status != SLOBreach {
		t.Errorf("report status = %q, want breach", rep.Status)
	}

	// Recovery: the short window clears while the long one still remembers
	// the incident → back to warn, then ok once everything ages out. The
	// half-minute offset keeps the slow window strictly outside the short
	// horizon (a window ending exactly on the cutoff still counts).
	clk.Advance(3*time.Minute + 30*time.Second)
	for i := 0; i < 50; i++ {
		lat.Observe(0.010)
	}
	if got := tr.Report().Objectives[0].Status; got != SLOWarn {
		t.Fatalf("recovering status = %q, want warn", got)
	}
	clk.Advance(11 * time.Minute)
	for i := 0; i < 20; i++ {
		lat.Observe(0.010)
	}
	if got := tr.Report().Objectives[0].Status; got != SLOOK {
		t.Fatalf("recovered status = %q, want ok", got)
	}
}

func TestSLORateObjective(t *testing.T) {
	tr, _ := newTestTracker()
	tr.AddRateObjective("reject_rate", SLORejectRate, 0.10)
	rate := tr.Rate(SLORejectRate)
	for i := 0; i < 100; i++ {
		rate.Observe(i < 25) // 25% rejected, threshold 10%
	}
	rep := tr.Report()
	o := rep.Objectives[0]
	if o.Status != SLOBreach {
		t.Fatalf("status = %q, want breach", o.Status)
	}
	if o.Short.Value != 0.25 || o.Short.BurnRate != 2.5 {
		t.Errorf("short = %+v, want value 0.25 burn 2.5", o.Short)
	}
}

func TestSLOExportGauges(t *testing.T) {
	tr, _ := newTestTracker()
	tr.AddRateObjective("reject_rate", SLORejectRate, 0.10)
	rate := tr.Rate(SLORejectRate)
	for i := 0; i < 10; i++ {
		rate.Observe(true)
	}
	reg := NewRegistry()
	rep := tr.Export(reg)
	if rep.Status != SLOBreach {
		t.Fatalf("report status = %q, want breach", rep.Status)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`phocus_slo_status{objective="reject_rate"} 2`,
		`phocus_slo_burn_rate{objective="reject_rate",window="short"} 10`,
		`phocus_slo_burn_rate{objective="reject_rate",window="long"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

func TestSLOReportJSONShape(t *testing.T) {
	tr, _ := newTestTracker()
	tr.AddLatencyObjective("solve_p95", SLOSolveLatency, 0.95, time.Second)
	tr.Latency(SLOSolveLatency).Observe(0.1)
	b, err := json.Marshal(tr.Report())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"status":"ok"`, `"name":"solve_p95"`, `"kind":"latency"`,
		`"quantile":0.95`, `"threshold":1`, `"short_window"`, `"long_window"`,
		`"burn_rate"`, `"samples":1`,
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("report JSON missing %s:\n%s", want, b)
		}
	}
}

func TestSLOObjectiveValidation(t *testing.T) {
	tr, _ := newTestTracker()
	for name, fn := range map[string]func(){
		"latency q=0":      func() { tr.AddLatencyObjective("x", "s", 0, time.Second) },
		"latency thresh=0": func() { tr.AddLatencyObjective("x", "s", 0.95, 0) },
		"rate thresh=0":    func() { tr.AddRateObjective("x", "s", 0) },
		"rate thresh>1":    func() { tr.AddRateObjective("x", "s", 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
