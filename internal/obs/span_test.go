package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if got := RequestID(ctx); got != "" {
		t.Errorf("empty context request ID = %q", got)
	}
	ctx = WithRequestID(ctx, "abc123")
	if got := RequestID(ctx); got != "abc123" {
		t.Errorf("request ID = %q, want abc123", got)
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 {
		t.Errorf("request ID %q has length %d, want 16", a, len(a))
	}
	if a == b {
		t.Errorf("two request IDs collided: %q", a)
	}
}

func TestLoggerContext(t *testing.T) {
	if Logger(context.Background()) != slog.Default() {
		t.Error("bare context should yield slog.Default()")
	}
	l := slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil))
	if Logger(WithLogger(context.Background(), l)) != l {
		t.Error("attached logger not returned")
	}
}

func TestSpanNestingAndLogs(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	ctx := WithLogger(WithRequestID(context.Background(), "req42"), logger)

	ctx, outer := StartSpan(ctx, "solve")
	_, inner := StartSpan(ctx, "sparsify")
	time.Sleep(time.Millisecond)
	if d := inner.End("pairs", 7); d <= 0 {
		t.Errorf("inner duration = %v", d)
	}
	if d := outer.End(); d <= 0 {
		t.Errorf("outer duration = %v", d)
	}

	logs := buf.String()
	lines := strings.Split(strings.TrimSpace(logs), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d span lines:\n%s", len(lines), logs)
	}
	// Every span line carries the request ID.
	for _, line := range lines {
		if !strings.Contains(line, "req_id=req42") {
			t.Errorf("span line missing request ID: %s", line)
		}
	}
	// The inner span logs first and names the outer as parent.
	if !strings.Contains(lines[0], "span=sparsify") || !strings.Contains(lines[0], "parent_id="+outer.ID()) {
		t.Errorf("inner span line wrong: %s", lines[0])
	}
	if !strings.Contains(lines[0], "pairs=7") {
		t.Errorf("extra attrs dropped: %s", lines[0])
	}
	// The outer span has no parent (slog renders the empty string as "").
	if !strings.Contains(lines[1], "span=solve") || !strings.Contains(lines[1], `parent_id=""`) {
		t.Errorf("outer span line wrong: %s", lines[1])
	}
}

func TestSpanWithoutRequestContext(t *testing.T) {
	// Spans must be usable on a bare context (background jobs, tests).
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	_, s := StartSpan(WithLogger(context.Background(), logger), "standalone")
	s.End()
	if !strings.Contains(buf.String(), "span=standalone") {
		t.Errorf("missing span log: %s", buf.String())
	}
}
