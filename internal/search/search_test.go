package search

import (
	"reflect"
	"testing"
)

var corpus = []Document{
	{ID: 0, Text: "black Adidas sports shirt"},
	{ID: 1, Text: "black buttoned dress shirt"},
	{ID: 2, Text: "women's black shirt"},
	{ID: 3, Text: "red Nike running shoes"},
	{ID: 4, Text: "office chair ergonomic black"},
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Women's Black-Shirt,  size 42!")
	want := []string{"women", "s", "black", "shirt", "size", "42"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
	if got := Tokenize("!!!"); len(got) != 0 {
		t.Errorf("Tokenize(punct) = %v, want empty", got)
	}
}

func TestSearchRanking(t *testing.T) {
	ix := NewIndex(corpus)
	hits := ix.Search("black shirt", 10)
	if len(hits) != 4 {
		t.Fatalf("got %d hits, want 4 (three shirts + black chair)", len(hits))
	}
	// All shirts must outrank the chair (it matches only "black").
	rank := map[int]int{}
	for i, h := range hits {
		rank[h.ID] = i
	}
	for _, shirt := range []int{0, 1, 2} {
		if rank[shirt] > rank[4] {
			t.Errorf("doc %d ranked below the chair: %v", shirt, hits)
		}
	}
	// Scores are in (0, 1] and descending.
	for i, h := range hits {
		if h.Score <= 0 || h.Score > 1+1e-12 {
			t.Errorf("score out of range: %v", h)
		}
		if i > 0 && h.Score > hits[i-1].Score {
			t.Errorf("hits not sorted: %v", hits)
		}
	}
}

func TestSearchTopK(t *testing.T) {
	ix := NewIndex(corpus)
	hits := ix.Search("black", 2)
	if len(hits) != 2 {
		t.Fatalf("k=2 returned %d hits", len(hits))
	}
	all := ix.Search("black", 0)
	if len(all) != 4 {
		t.Fatalf("k=0 should return all %d matches, got %d", 4, len(all))
	}
}

func TestSearchNoMatch(t *testing.T) {
	ix := NewIndex(corpus)
	if hits := ix.Search("submarine", 5); len(hits) != 0 {
		t.Errorf("unexpected hits %v", hits)
	}
	if hits := ix.Search("", 5); len(hits) != 0 {
		t.Errorf("empty query returned %v", hits)
	}
}

func TestExactDocumentScoresHighest(t *testing.T) {
	ix := NewIndex(corpus)
	hits := ix.Search("red Nike running shoes", 1)
	if len(hits) != 1 || hits[0].ID != 3 {
		t.Fatalf("hits = %v, want doc 3 first", hits)
	}
	// A query identical to a document has cosine 1 with it.
	if hits[0].Score < 0.999 {
		t.Errorf("self-query score = %g, want ≈1", hits[0].Score)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	ix := NewIndex([]Document{
		{ID: 7, Text: "alpha beta"},
		{ID: 3, Text: "alpha beta"},
	})
	hits := ix.Search("alpha", 2)
	if len(hits) != 2 || hits[0].ID != 3 || hits[1].ID != 7 {
		t.Errorf("tie break not by ID: %v", hits)
	}
}

func TestNumDocs(t *testing.T) {
	if NewIndex(corpus).NumDocs() != 5 {
		t.Error("NumDocs mismatch")
	}
}
