// Package search is the retrieval substrate of PHOcus' Data Representation
// Module: when pre-defined subsets are specified as queries ("Paris
// vacation", "Nike red shirts" — input mode 2 of Section 5.1), an internal
// search engine turns each query into a ranked photo list whose retrieval
// scores become the subset's relevance scores. This implementation is a
// classic inverted index with TF-IDF weighting and cosine ranking over the
// photos' textual metadata (titles, labels).
package search

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Document is one indexable item: a photo's textual surrogate.
type Document struct {
	ID   int
	Text string
}

// Hit is one ranked retrieval result.
type Hit struct {
	ID    int
	Score float64
}

// Index is an immutable inverted index. Build with NewIndex.
type Index struct {
	postings map[string][]posting
	docNorm  map[int]float64
	numDocs  int
}

type posting struct {
	doc int
	tf  float64
}

// Tokenize lowercases and splits on any non-letter/non-digit rune.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// NewIndex builds the index over the documents.
func NewIndex(docs []Document) *Index {
	ix := &Index{
		postings: make(map[string][]posting),
		docNorm:  make(map[int]float64),
		numDocs:  len(docs),
	}
	for _, d := range docs {
		counts := map[string]float64{}
		for _, tok := range Tokenize(d.Text) {
			counts[tok]++
		}
		for tok, c := range counts {
			// Log-scaled term frequency.
			ix.postings[tok] = append(ix.postings[tok], posting{doc: d.ID, tf: 1 + math.Log(c)})
		}
	}
	// Document norms under TF-IDF weights for cosine normalization.
	for tok, ps := range ix.postings {
		idf := ix.idf(tok)
		for _, p := range ps {
			w := p.tf * idf
			ix.docNorm[p.doc] += w * w
		}
	}
	for d, n := range ix.docNorm {
		ix.docNorm[d] = math.Sqrt(n)
	}
	return ix
}

// idf returns the smoothed inverse document frequency of a token.
func (ix *Index) idf(tok string) float64 {
	df := len(ix.postings[tok])
	if df == 0 {
		return 0
	}
	return math.Log(1 + float64(ix.numDocs)/float64(df))
}

// NumDocs returns the number of indexed documents.
func (ix *Index) NumDocs() int { return ix.numDocs }

// Search returns up to k documents ranked by TF-IDF cosine similarity to
// the query, highest first, ties broken by ascending document ID. Scores
// are in (0, 1]; documents sharing no token with the query are omitted.
func (ix *Index) Search(query string, k int) []Hit {
	qcounts := map[string]float64{}
	for _, tok := range Tokenize(query) {
		qcounts[tok]++
	}
	if len(qcounts) == 0 {
		return nil
	}
	var qnorm float64
	scores := map[int]float64{}
	for tok, c := range qcounts {
		idf := ix.idf(tok)
		if idf == 0 {
			continue
		}
		qw := (1 + math.Log(c)) * idf
		qnorm += qw * qw
		for _, p := range ix.postings[tok] {
			scores[p.doc] += qw * p.tf * idf
		}
	}
	if qnorm == 0 {
		return nil
	}
	qnorm = math.Sqrt(qnorm)
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		hits = append(hits, Hit{ID: doc, Score: s / (qnorm * ix.docNorm[doc])})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}
