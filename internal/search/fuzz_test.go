package search

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzTokenize checks tokenization never panics, never emits empty or
// non-lowercase tokens, and is idempotent under re-tokenization.
func FuzzTokenize(f *testing.F) {
	f.Add("black Adidas sports shirt")
	f.Add("ÉTÉ 2021 — Paris!")
	f.Add("")
	f.Add("日本語 query ultra-42")
	f.Fuzz(func(t *testing.T, text string) {
		toks := Tokenize(text)
		for _, tok := range toks {
			if tok == "" {
				t.Fatal("empty token")
			}
			for _, r := range tok {
				if unicode.IsUpper(r) {
					t.Fatalf("token %q not lowercased", tok)
				}
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("token %q contains separator rune %q", tok, r)
				}
			}
		}
		again := Tokenize(strings.Join(toks, " "))
		if len(again) != len(toks) {
			t.Fatalf("re-tokenization changed count: %v vs %v", toks, again)
		}
	})
}

// FuzzSearch checks querying an index with arbitrary text never panics and
// always returns scores in (0, 1+ε] in sorted order.
func FuzzSearch(f *testing.F) {
	ix := NewIndex([]Document{
		{ID: 0, Text: "black Adidas sports shirt"},
		{ID: 1, Text: "red Nike running shoes"},
		{ID: 2, Text: "wooden garden chair"},
	})
	f.Add("black shirt", 5)
	f.Add("", 0)
	f.Add("ZZZ unknown", -3)
	f.Fuzz(func(t *testing.T, query string, k int) {
		hits := ix.Search(query, k)
		if k > 0 && len(hits) > k {
			t.Fatalf("returned %d hits for k=%d", len(hits), k)
		}
		for i, h := range hits {
			if h.Score <= 0 || h.Score > 1+1e-9 {
				t.Fatalf("score out of range: %+v", h)
			}
			if i > 0 && h.Score > hits[i-1].Score {
				t.Fatal("hits not sorted")
			}
		}
	})
}
