package sviridenko

import (
	"testing"

	"phocus/internal/par"
	"phocus/internal/solvertest"
)

func TestSolverContract(t *testing.T) {
	solvertest.Contract(t, func() par.Solver { return &Solver{} }, solvertest.Options{Saturates: true, Trials: 10})
}

func TestContextContract(t *testing.T) {
	solvertest.ContextContract(t, func() par.ContextSolver { return &Solver{} })
}
