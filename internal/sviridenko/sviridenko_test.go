package sviridenko

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"phocus/internal/celf"
	"phocus/internal/exact"
	"phocus/internal/par"
)

func TestFigure1(t *testing.T) {
	inst := par.Figure1Instance()
	inst.Budget = 3.0
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	var s Solver
	sol, err := s.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	// OPT at budget 3.0 is 13.25 (verified by the exact solver's tests);
	// partial enumeration with depth 3 finds it on this tiny instance.
	if math.Abs(sol.Score-13.25) > 1e-9 {
		t.Errorf("score = %.4f, want 13.25", sol.Score)
	}
	if s.LastStats.Seeds == 0 {
		t.Error("no seeds enumerated")
	}
}

// Property: solutions are feasible and achieve at least the (1−1/e) factor
// of the true optimum on instances small enough to solve exactly. (The
// guarantee needs depth 3; we also check depth 1 and 2 stay feasible.)
func TestGuaranteeQuick(t *testing.T) {
	factor := 1 - 1/math.E
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := par.Random(rng, par.RandomConfig{
			Photos: 9, Subsets: 5, BudgetFrac: 0.25 + 0.4*rng.Float64(),
		})
		var ex exact.Solver
		opt, err := ex.Solve(inst)
		if err != nil {
			return false
		}
		s := Solver{Depth: 3}
		sol, err := s.Solve(inst)
		if err != nil {
			return false
		}
		if !inst.Feasible(sol.Photos) {
			return false
		}
		if math.Abs(par.Score(inst, sol.Photos)-sol.Score) > 1e-9 {
			return false
		}
		return sol.Score >= factor*opt.Score-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDepthsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := par.Random(rng, par.RandomConfig{Photos: 12, Subsets: 6, BudgetFrac: 0.3, RetainFrac: 0.1})
	var prev float64 = -1
	for depth := 1; depth <= 3; depth++ {
		s := Solver{Depth: depth}
		sol, err := s.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		if !inst.Feasible(sol.Photos) {
			t.Fatalf("depth %d: infeasible solution", depth)
		}
		if sol.Score < prev-1e-9 {
			t.Errorf("depth %d score %.4f below depth %d score %.4f (deeper enumeration must not hurt)",
				depth, sol.Score, depth-1, prev)
		}
		prev = sol.Score
	}
}

// Sviridenko never loses to the CB greedy: the empty-seed density
// completion is exactly the CB greedy run, so enumeration can only improve
// on it.
func TestDominatesCBGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		inst := par.Random(rng, par.RandomConfig{Photos: 12, Subsets: 6, BudgetFrac: 0.3})
		cbSol, _, err := celf.LazyGreedy(inst, celf.CB)
		if err != nil {
			t.Fatal(err)
		}
		var ss Solver
		ssol, err := ss.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		if ssol.Score < cbSol.Score-1e-9 {
			t.Errorf("trial %d: Sviridenko %.4f below CB greedy %.4f", trial, ssol.Score, cbSol.Score)
		}
	}
}

func TestRetainedHonored(t *testing.T) {
	inst := par.Figure1Instance()
	inst.Budget = 3.0
	inst.Retained = []par.PhotoID{6}
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	var s Solver
	sol, err := s.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Feasible(sol.Photos) {
		t.Fatalf("infeasible solution %v", sol.Photos)
	}
}

func TestName(t *testing.T) {
	var s Solver
	if s.Name() != "Sviridenko" {
		t.Errorf("Name() = %q", s.Name())
	}
}
