// Package sviridenko implements the partial-enumeration algorithm of
// Sviridenko ("A note on maximizing a submodular set function subject to a
// knapsack constraint", Oper. Res. Lett. 2004), the optimal PTIME
// (1−1/e)-approximation the paper invokes in Theorem 4.6.
//
// The algorithm enumerates every feasible seed set of at most D photos
// (D = 3 in the original analysis), completes each seed greedily by
// gain-per-cost while skipping photos that do not fit, and returns the best
// completion. With D = 3 the approximation factor is exactly 1−1/e, matching
// the hardness bound of Theorem 3.4; the price is Ω(n⁴) gain evaluations,
// which is why the paper (and this repository) use it as the quality
// reference and CELF as the production solver.
package sviridenko

import (
	"context"
	"time"

	"phocus/internal/par"
)

// Solver runs the partial-enumeration algorithm. It implements par.Solver.
type Solver struct {
	// Depth is the enumeration depth D. 0 means the canonical 3. Lower
	// depths trade the guarantee for speed (D=1 is "greedy with best
	// singleton backstop", already a (1−1/e)/2-approximation).
	Depth int
	// OnStats, when non-nil, is called with the run's Stats at the end of
	// every Solve — the instrumentation hook phocus-server uses to feed its
	// metrics registry without global state.
	OnStats func(Stats)
	// LastStats is populated by each Solve call.
	LastStats Stats
}

// Stats reports the work done by a Solve call.
type Stats struct {
	Seeds   int64         // seed sets enumerated
	Elapsed time.Duration // wall-clock time
}

// Name implements par.Solver.
func (s *Solver) Name() string { return "Sviridenko" }

// Solve returns a (1−1/e)-approximate solution (at Depth ≥ 3).
func (s *Solver) Solve(inst *par.Instance) (par.Solution, error) {
	return s.SolveContext(context.Background(), inst)
}

// SolveContext is Solve with cooperative cancellation: the context is
// checked once per enumeration step (each seed extension and each greedy
// selection round), so a canceled context stops the Ω(n⁴) enumeration
// promptly and the context's error is returned unwrapped. It implements
// par.ContextSolver.
func (s *Solver) SolveContext(ctx context.Context, inst *par.Instance) (par.Solution, error) {
	start := time.Now()
	depth := s.Depth
	if depth <= 0 {
		depth = 3
	}
	s.LastStats = Stats{}

	base := par.NewEvaluator(inst)
	base.Seed()

	var free []par.PhotoID
	for p := 0; p < inst.NumPhotos(); p++ {
		id := par.PhotoID(p)
		if !base.Contains(id) {
			free = append(free, id)
		}
	}

	best := base.Solution() // the S0-only solution is always feasible

	// Enumerate seeds of size 1..depth (the empty seed's greedy completion
	// is dominated by size-1 seeds starting from the greedy's first pick,
	// but we run it too so Depth=0 configurations degrade gracefully).
	if err := s.enumerate(ctx, inst, base, free, depth, &best); err != nil {
		return par.Solution{}, err
	}

	// Also complete the empty seed.
	e := base.Clone()
	if err := s.greedyComplete(ctx, inst, e, free); err != nil {
		return par.Solution{}, err
	}
	if sol := e.Solution(); sol.Score > best.Score {
		best = sol
	}

	s.LastStats.Elapsed = time.Since(start)
	if s.OnStats != nil {
		s.OnStats(s.LastStats)
	}
	return best, nil
}

// enumerate recursively extends the seed set in e with photos from free up
// to the remaining depth, greedily completing every feasible seed.
func (s *Solver) enumerate(ctx context.Context, inst *par.Instance, e *par.Evaluator, free []par.PhotoID, depth int, best *par.Solution) error {
	if depth == 0 {
		return nil
	}
	for i, p := range free {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !e.Fits(p) {
			continue
		}
		s.LastStats.Seeds++
		ext := e.Clone()
		ext.Add(p)
		completed := ext.Clone()
		if err := s.greedyComplete(ctx, inst, completed, free); err != nil {
			return err
		}
		if sol := completed.Solution(); sol.Score > best.Score {
			*best = sol
		}
		if err := s.enumerate(ctx, inst, ext, free[i+1:], depth-1, best); err != nil {
			return err
		}
	}
	return nil
}

// greedyComplete extends e by repeatedly adding the feasible photo with the
// highest gain-per-cost until nothing fits.
func (s *Solver) greedyComplete(ctx context.Context, inst *par.Instance, e *par.Evaluator, candidates []par.PhotoID) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		best := par.PhotoID(-1)
		var bestKey float64
		for _, p := range candidates {
			if e.Contains(p) || !e.Fits(p) {
				continue
			}
			key := e.Gain(p) / inst.Cost[p]
			if best < 0 || key > bestKey {
				best, bestKey = p, key
			}
		}
		if best < 0 {
			return nil
		}
		e.Add(best)
	}
}
