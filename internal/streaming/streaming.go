// Package streaming provides a sieve-streaming solver for PAR, in the
// spirit of the streaming submodular maximization literature the paper
// surveys in its related work (Badanidiyuru et al., KDD 2014), adapted to
// the knapsack constraint. It processes photos in a single sequential
// sweep, holding only the candidate solutions ("sieves") in memory — the
// regime for archives too large to solve with CELF's global priority queue.
//
// The algorithm guesses OPT on a geometric grid. For each guess v it keeps
// a sieve that admits a streamed photo iff it fits the remaining budget and
// its marginal gain per byte is at least v/(2B). The answer is the best
// sieve, backstopped by the best feasible singleton (which covers the case
// of one huge-value item that every density threshold rejects). A
// preliminary pass computes the singleton statistics that bound OPT:
// OPT ≤ B·maxDensity and OPT ≥ maxSingleton, so the grid has
// O(log(B·maxDensity/maxSingleton)/ε) sieves.
//
// The guarantee of this family of threshold algorithms under a knapsack
// constraint is a constant factor (1/3 − ε is the textbook bound for the
// plain variant); in practice it lands close to CELF, which the tests and
// the ablation benchmark quantify.
package streaming

import (
	"context"
	"fmt"
	"time"

	"phocus/internal/par"
)

// Solver is the sieve-streaming solver. It implements par.Solver and
// par.ContextSolver, which is what lets the staged engine dispatch to it
// (phocus.AlgoStreaming) as the large-instance fallback.
type Solver struct {
	// Epsilon controls the OPT-guess grid density (default 0.2). Smaller
	// values mean more sieves: better quality, more memory and time.
	Epsilon float64
	// LastStats is populated by each Solve call.
	LastStats Stats
}

// Stats reports the work of a Solve call.
type Stats struct {
	Sieves  int           // number of parallel candidate solutions
	Elapsed time.Duration // wall-clock time
}

// Name implements par.Solver.
func (s *Solver) Name() string { return "Sieve-Streaming" }

// Solve streams the photos in ID order. The instance must be finalized.
func (s *Solver) Solve(inst *par.Instance) (par.Solution, error) {
	return s.SolveContext(context.Background(), inst)
}

// SolveContext is Solve with cooperative cancellation: both passes poll the
// context once per streamed photo, so a canceled context stops the sweep
// within one photo's work. It implements par.ContextSolver.
func (s *Solver) SolveContext(ctx context.Context, inst *par.Instance) (par.Solution, error) {
	if err := ctx.Err(); err != nil {
		return par.Solution{}, err
	}
	start := time.Now()
	eps := s.Epsilon
	if eps <= 0 {
		eps = 0.2
	}

	// Pass 1: singleton statistics over the retained-seeded base. These
	// bound OPT's headroom above the S0 baseline.
	base := par.NewEvaluator(inst)
	base.Seed()
	var bestSingle par.PhotoID = -1
	var bestSingleGain, maxDensity float64
	for p := 0; p < inst.NumPhotos(); p++ {
		if err := ctx.Err(); err != nil {
			return par.Solution{}, err
		}
		id := par.PhotoID(p)
		if base.Contains(id) || !base.Fits(id) {
			continue
		}
		g := base.Gain(id)
		if g > bestSingleGain {
			bestSingleGain, bestSingle = g, id
		}
		if d := g / inst.Cost[p]; d > maxDensity {
			maxDensity = d
		}
	}
	if bestSingle < 0 {
		// Nothing fits beyond S0.
		s.LastStats = Stats{Elapsed: time.Since(start)}
		return base.Solution(), nil
	}

	remainingBudget := inst.Budget - inst.RetainedCost()
	upper := remainingBudget * maxDensity // OPT's headroom is at most this
	lower := bestSingleGain
	if upper < lower {
		upper = lower
	}

	// Sieves on the geometric grid of OPT guesses.
	type sieve struct {
		threshold float64 // admission density: guess / (2B)
		eval      *par.Evaluator
	}
	var sieves []sieve
	for guess := lower; guess <= upper*(1+eps); guess *= 1 + eps {
		e := par.NewEvaluator(inst)
		e.Seed()
		sieves = append(sieves, sieve{threshold: guess / (2 * remainingBudget), eval: e})
	}
	if len(sieves) == 0 {
		return par.Solution{}, fmt.Errorf("streaming: empty guess grid (budget %g)", inst.Budget)
	}

	// Pass 2: the stream.
	for p := 0; p < inst.NumPhotos(); p++ {
		if err := ctx.Err(); err != nil {
			return par.Solution{}, err
		}
		id := par.PhotoID(p)
		for i := range sieves {
			e := sieves[i].eval
			if e.Contains(id) || !e.Fits(id) {
				continue
			}
			if g := e.Gain(id); g/inst.Cost[p] >= sieves[i].threshold {
				e.Add(id)
			}
		}
	}

	best := sieves[0].eval.Solution()
	for _, sv := range sieves[1:] {
		if sol := sv.eval.Solution(); sol.Score > best.Score {
			best = sol
		}
	}
	// Singleton backstop.
	single := base.Clone()
	single.Add(bestSingle)
	if sol := single.Solution(); sol.Score > best.Score {
		best = sol
	}

	s.LastStats = Stats{Sieves: len(sieves), Elapsed: time.Since(start)}
	if !inst.Feasible(best.Photos) {
		return par.Solution{}, fmt.Errorf("streaming: produced infeasible solution")
	}
	return best, nil
}
