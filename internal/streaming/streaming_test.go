package streaming

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"phocus/internal/celf"
	"phocus/internal/par"
)

func TestName(t *testing.T) {
	var s Solver
	if s.Name() != "Sieve-Streaming" {
		t.Errorf("Name() = %q", s.Name())
	}
}

// Property: streamed solutions are feasible with consistent scores.
func TestFeasibleQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := par.Random(rng, par.RandomConfig{
			Photos: 25, Subsets: 12, BudgetFrac: 0.1 + 0.5*rng.Float64(), RetainFrac: 0.05,
		})
		var s Solver
		sol, err := s.Solve(inst)
		if err != nil {
			return false
		}
		if !inst.Feasible(sol.Photos) {
			return false
		}
		return math.Abs(par.Score(inst, sol.Photos)-sol.Score) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Empirical quality: a single pass should stay within a modest factor of
// CELF. The deterministic seed makes this a regression bound rather than a
// theorem.
func TestQualityVsCELF(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var totalStream, totalCELF float64
	for trial := 0; trial < 20; trial++ {
		inst := par.Random(rng, par.RandomConfig{Photos: 60, Subsets: 25, BudgetFrac: 0.25})
		var ss Solver
		stream, err := ss.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		var cs celf.Solver
		greedy, err := cs.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		if stream.Score < 0.5*greedy.Score {
			t.Errorf("trial %d: streaming %.4f below half of CELF %.4f", trial, stream.Score, greedy.Score)
		}
		totalStream += stream.Score
		totalCELF += greedy.Score
	}
	if totalStream < 0.85*totalCELF {
		t.Errorf("streaming total %.2f below 85%% of CELF total %.2f", totalStream, totalCELF)
	}
}

func TestEpsilonControlsSieves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := par.Random(rng, par.RandomConfig{Photos: 40, Subsets: 18, BudgetFrac: 0.3})
	coarse := Solver{Epsilon: 0.5}
	if _, err := coarse.Solve(inst); err != nil {
		t.Fatal(err)
	}
	fine := Solver{Epsilon: 0.05}
	if _, err := fine.Solve(inst); err != nil {
		t.Fatal(err)
	}
	if fine.LastStats.Sieves <= coarse.LastStats.Sieves {
		t.Errorf("ε=0.05 used %d sieves, ε=0.5 used %d; grid not densifying",
			fine.LastStats.Sieves, coarse.LastStats.Sieves)
	}
}

func TestRetainedHonored(t *testing.T) {
	inst := par.Figure1Instance()
	inst.Budget = 3.0
	inst.Retained = []par.PhotoID{6}
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	var s Solver
	sol, err := s.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range sol.Photos {
		if p == 6 {
			found = true
		}
	}
	if !found {
		t.Errorf("retained photo missing from %v", sol.Photos)
	}
}

func TestNothingFitsBeyondRetained(t *testing.T) {
	inst := par.Figure1Instance()
	inst.Budget = 1.31 // p7 (1.3) retained; nothing else fits
	inst.Retained = []par.PhotoID{6}
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	var s Solver
	sol, err := s.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Photos) != 1 || sol.Photos[0] != 6 {
		t.Errorf("solution %v, want just the retained photo", sol.Photos)
	}
	if s.LastStats.Sieves != 0 {
		t.Errorf("sieves = %d, want 0 when nothing fits", s.LastStats.Sieves)
	}
}

func TestSingletonBackstop(t *testing.T) {
	// One photo worth everything, whose density is low (huge but valuable);
	// many cheap low-value photos. Density thresholds for large OPT guesses
	// reject the big photo only if its density is below guess/(2B) — the
	// backstop must still return it when it is the best choice.
	inst := &par.Instance{
		Cost:   []float64{10, 1, 1},
		Budget: 10,
		Subsets: []par.Subset{
			{Name: "big", Weight: 10, Members: []par.PhotoID{0}, Relevance: []float64{1}, Sim: par.NewDenseSim(1)},
			{Name: "small", Weight: 1, Members: []par.PhotoID{1, 2}, Relevance: []float64{0.5, 0.5}, Sim: par.NewDenseSim(2)},
		},
	}
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	var s Solver
	sol, err := s.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal is {p0} with score 10 (budget excludes adding both others
	// once p0 is in? 10+1+1 = 12 > 10, so exactly {p0} or {p1,p2}).
	if math.Abs(sol.Score-10) > 1e-9 {
		t.Errorf("score %.4f, want 10 via the big photo", sol.Score)
	}
}
