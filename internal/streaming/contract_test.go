package streaming

import (
	"testing"

	"phocus/internal/par"
	"phocus/internal/solvertest"
)

func TestSolverContract(t *testing.T) {
	// Streaming legitimately skips photos below every sieve's density
	// threshold, so the saturation clause does not apply.
	solvertest.Contract(t, func() par.Solver { return &Solver{} }, solvertest.Options{})
}

func TestSolverContextContract(t *testing.T) {
	solvertest.ContextContract(t, func() par.ContextSolver { return &Solver{} })
}
