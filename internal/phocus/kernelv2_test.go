package phocus

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"phocus/internal/dataset"
	"phocus/internal/par"
)

// TestQuantizedSelectionIdentityCorpus is the quantization differential gate:
// across the public bench corpus shapes (scaled down for test time), every
// quantization mode × blocking combination must produce Run results equal to
// the f64 kernel's in every field. Scores are bit-exact by construction —
// RunInto rescores the selection on the canonical base kernel — so the gate
// reduces to selection identity, which is exactly what the ISSUE requires.
func TestQuantizedSelectionIdentityCorpus(t *testing.T) {
	ctx := context.Background()
	specs := dataset.PublicSpecs(0.01)[:3]
	tunings := []struct {
		name     string
		quantize string
		block    bool
	}{
		{"f32", "f32", false},
		{"fixed16", "fixed16", false},
		{"f32-blocked", "f32", true},
		{"blocked-only", "", true},
	}
	quantized := 0
	for _, spec := range specs {
		ds, err := dataset.GeneratePublic(spec)
		if err != nil {
			t.Fatal(err)
		}
		total := ds.Instance.TotalCost()
		base := PrepareOptions{Tau: 0.4, Workers: 1, InstanceDigest: "gate-" + spec.Name}
		plain, err := Prepare(ctx, ds, base)
		if err != nil {
			t.Fatalf("%s: Prepare: %v", spec.Name, err)
		}
		for _, tn := range tunings {
			opts := base
			opts.Quantize, opts.BlockRows = tn.quantize, tn.block
			tuned, err := Prepare(ctx, ds, opts)
			if err != nil {
				t.Fatalf("%s/%s: Prepare: %v", spec.Name, tn.name, err)
			}
			if tuned.TunedQuantization() != par.QuantNone {
				quantized++
			}
			if tn.block && !tuned.TunedBlocked() {
				t.Errorf("%s/%s: TunedBlocked = false, want true", spec.Name, tn.name)
			}
			for _, frac := range []float64{0.25, 0.6} {
				ropts := RunOptions{Budget: frac * total, Workers: 1}
				want, err := plain.Run(ctx, ropts)
				if err != nil {
					t.Fatalf("%s/%s: f64 Run: %v", spec.Name, tn.name, err)
				}
				got, err := tuned.Run(ctx, ropts)
				if err != nil {
					t.Fatalf("%s/%s: tuned Run: %v", spec.Name, tn.name, err)
				}
				if keyOf(got) != keyOf(want) {
					t.Fatalf("%s/%s budget=%.0f%%: tuned run diverged:\n  f64:   %+v\n  tuned: %+v",
						spec.Name, tn.name, 100*frac, keyOf(want), keyOf(got))
				}
			}
		}
	}
	if quantized == 0 {
		t.Fatal("the tie audit rejected quantization on every corpus shape; the fast path never engages")
	}
}

// TestTuneAfterSnapshotLoad pins the tuned kernel's derived-artifact
// lifecycle: tuning never reaches the snapshot wire format, Tune restores it
// on the loaded value, and results are unchanged either way.
func TestTuneAfterSnapshotLoad(t *testing.T) {
	ctx := context.Background()
	ds := snapDataset(t, 77, snapSimVariants["dense"])
	opts := PrepareOptions{Tau: 0.5, InstanceDigest: "tune-snap", Quantize: "f32", BlockRows: true}
	p, err := Prepare(ctx, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if p.TunedQuantization() != par.QuantF32 || !p.TunedBlocked() {
		t.Fatalf("prepared tuning = (%v, %v), want (f32, true)", p.TunedQuantization(), p.TunedBlocked())
	}
	data, err := EncodeSnapshot(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.TunedQuantization() != par.QuantNone || q.TunedBlocked() {
		t.Fatalf("snapshot carried tuning: (%v, %v), want none", q.TunedQuantization(), q.TunedBlocked())
	}
	budget := 0.4 * ds.Instance.TotalCost()
	requireSameRun(t, "untuned loaded", p, q, budget, AlgoCELF)
	if err := q.Tune("f32", true); err != nil {
		t.Fatalf("Tune: %v", err)
	}
	if q.TunedQuantization() != par.QuantF32 || !q.TunedBlocked() {
		t.Fatalf("post-Tune tuning = (%v, %v), want (f32, true)", q.TunedQuantization(), q.TunedBlocked())
	}
	requireSameRun(t, "tuned loaded", p, q, budget, AlgoCELF)
	if err := q.Tune("int8", false); err == nil {
		t.Fatal("Tune with an unknown mode did not fail")
	}
	if q.TunedQuantization() != par.QuantF32 || !q.TunedBlocked() {
		t.Fatal("failed Tune changed the tuned kernel")
	}
}

// TestApplyDeltaTunedTransparent pins the delta × tuning interaction the
// ISSUE requires: churn on a quantized/blocked Prepared is transparent —
// the tuned kernel is dropped for the overlay period (ApplyDelta mutates
// canonical slabs only), solves keep matching a cold Prepare throughout, and
// compaction re-derives the tuned kernel.
func TestApplyDeltaTunedTransparent(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(23))
	inst := par.Random(rng, par.RandomConfig{
		Photos: 40, Subsets: 12, BudgetFrac: 0.4, SimDensity: 0.7, MaxSubset: 12,
	})
	opts := PrepareOptions{Tau: 0.3, Workers: 1, InstanceDigest: "delta-tuned", Quantize: "f32", BlockRows: true}
	live, err := Prepare(ctx, &dataset.Dataset{Instance: inst}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if live.TunedQuantization() != par.QuantF32 {
		t.Fatalf("TunedQuantization = %v before churn, want f32", live.TunedQuantization())
	}
	merged := inst
	var removed []bool
	compacted := false
	for batch := 0; batch < 12 && !compacted; batch++ {
		d := randomChurn(rng, live.base, removed, 3, 1, batch == 0)
		stats, err := live.ApplyDelta(ctx, d)
		if err != nil {
			t.Fatalf("batch %d: ApplyDelta: %v", batch, err)
		}
		if merged, removed, err = MergeDelta(merged, removed, d); err != nil {
			t.Fatalf("batch %d: MergeDelta: %v", batch, err)
		}
		compacted = stats.Compacted
		if !compacted && live.TunedQuantization() != par.QuantNone {
			t.Fatalf("batch %d: tuned kernel survived into the overlay period", batch)
		}
		cold, err := Prepare(ctx, &dataset.Dataset{Instance: merged}, opts)
		if err != nil {
			t.Fatalf("batch %d: cold Prepare: %v", batch, err)
		}
		requireSameRun(t, fmt.Sprintf("batch %d", batch), live, cold, 0.35*merged.TotalCost(), AlgoCELF)
	}
	if !compacted {
		t.Fatal("churn never triggered a compaction")
	}
	if live.TunedQuantization() != par.QuantF32 || !live.TunedBlocked() {
		t.Fatalf("post-compaction tuning = (%v, %v), want (f32, true)",
			live.TunedQuantization(), live.TunedBlocked())
	}
}

// TestRunAllocs is the allocation-free Run gate: after one warm-up call, a
// steady-state RunInto (CELF, sequential, bound skipped) performs zero heap
// allocations per run.
func TestRunAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the gate runs in the non-race CI lane")
	}
	ctx := context.Background()
	for _, tau := range []float64{0, 0.4} {
		t.Run(fmt.Sprintf("tau=%g", tau), func(t *testing.T) {
			ds := sweepDataset(t, 29)
			p, err := Prepare(ctx, ds, PrepareOptions{Tau: tau, Workers: 1, InstanceDigest: "allocs"})
			if err != nil {
				t.Fatal(err)
			}
			opts := RunOptions{Budget: 0.5 * ds.Instance.TotalCost(), Workers: 1, SkipBound: true}
			var res Result
			if err := p.RunInto(ctx, opts, &res); err != nil {
				t.Fatal(err)
			}
			warm := res
			allocs := testing.AllocsPerRun(10, func() {
				if err := p.RunInto(ctx, opts, &res); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("warm RunInto allocates %v times per run, want 0", allocs)
			}
			if res.Solution.Score != warm.Solution.Score || len(res.Solution.Photos) != len(warm.Solution.Photos) {
				t.Fatalf("warm runs diverged: %v vs %v", res.Solution, warm.Solution)
			}
		})
	}
}

// TestRunIntoMatchesRun pins that the scratch-reusing entry point and the
// allocating wrapper agree field for field, including when the caller's
// Result still holds a previous run's slices.
func TestRunIntoMatchesRun(t *testing.T) {
	ctx := context.Background()
	ds := sweepDataset(t, 31)
	p, err := Prepare(ctx, ds, PrepareOptions{Tau: 0.4, Workers: 1, InstanceDigest: "runinto"})
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	for _, frac := range []float64{0.2, 0.5, 0.8} {
		opts := RunOptions{Budget: frac * ds.Instance.TotalCost(), Workers: 1}
		want, err := p.Run(ctx, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.RunInto(ctx, opts, &res); err != nil {
			t.Fatal(err)
		}
		if keyOf(&res) != keyOf(want) {
			t.Fatalf("budget %.0f%%: RunInto %+v != Run %+v", 100*frac, keyOf(&res), keyOf(want))
		}
		if fmt.Sprint(res.Archived) != fmt.Sprint(want.Archived) {
			t.Fatalf("budget %.0f%%: Archived %v != %v", 100*frac, res.Archived, want.Archived)
		}
	}
}

// TestMmapSnapshotRoundTrip pins the mmap load path: a store flipped to
// Mapped serves the same Prepared (identical runs) as the heap path, and on
// supported platforms the value reports its mapped residency. On platforms
// without mmap the fallback must be silent and identical.
func TestMmapSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	ds := snapDataset(t, 41, snapSimVariants["dense"])
	p, err := Prepare(ctx, ds, PrepareOptions{Tau: 0.5, InstanceDigest: "mmap-rt"})
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Save(p); err != nil {
		t.Fatal(err)
	}
	fp, _ := p.Fingerprint()

	heap, err := store.Load(fp)
	if err != nil {
		t.Fatal(err)
	}
	if heap.MappedBytes() != 0 {
		t.Fatalf("heap load reports %d mapped bytes", heap.MappedBytes())
	}
	store.Mapped = true
	mapped, err := store.Load(fp)
	if err != nil {
		t.Fatal(err)
	}
	if mmapSupported {
		if mapped.MappedBytes() <= 0 {
			t.Fatal("mapped load reports no mapped bytes")
		}
	} else if mapped.MappedBytes() != 0 {
		t.Fatal("fallback load reports mapped bytes")
	}
	budget := 0.4 * ds.Instance.TotalCost()
	requireSameRun(t, "mmap vs heap", mapped, heap, budget, AlgoCELF)
	requireSameRun(t, "mmap vs compiled", mapped, p, budget, AlgoCELF)

	// Deltas work against the CoW mapping and EncodeSnapshot against the
	// mapped slabs: apply churn to the mapped value and require it to keep
	// matching the heap twin given the same churn.
	rng := rand.New(rand.NewSource(43))
	d := randomChurn(rng, mapped.base, nil, 2, 2, true)
	if _, err := mapped.ApplyDelta(ctx, d); err != nil {
		t.Fatalf("ApplyDelta on mapped: %v", err)
	}
	if _, err := heap.ApplyDelta(ctx, d); err != nil {
		t.Fatalf("ApplyDelta on heap: %v", err)
	}
	requireSameRun(t, "post-delta mmap vs heap", mapped, heap, budget, AlgoCELF)
}

// evictDuringSolve releases the Prepared's mapping from inside the CELF
// event stream — the mid-solve eviction race the pin count exists for.
type evictDuringSolve struct {
	release func()
	fired   bool
}

func (o *evictDuringSolve) Recomputed(par.PhotoID, float64) {}
func (o *evictDuringSolve) Selected(par.PhotoID, float64) {
	if !o.fired {
		o.fired = true
		o.release()
	}
}

// TestMmapEvictWhileSolving pins the mapping lifetime rules: releasing the
// mapping mid-solve (cache eviction) must not unmap under the running solve
// — the pin holds the slabs until the run drains — and only NEW operations
// fail, with ErrSnapshotUnmapped.
func TestMmapEvictWhileSolving(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	ctx := context.Background()
	ds := snapDataset(t, 47, snapSimVariants["dense"])
	p, err := Prepare(ctx, ds, PrepareOptions{Tau: 0.5, InstanceDigest: "mmap-evict"})
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.Mapped = true
	if _, _, err := store.Save(p); err != nil {
		t.Fatal(err)
	}
	fp, _ := p.Fingerprint()
	mapped, err := store.Load(fp)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewPreparedCache(4, 0)
	cache.Put(fp, mapped)
	obs := &evictDuringSolve{release: func() { cache.Remove(fp) }}
	budget := 0.4 * ds.Instance.TotalCost()
	res, err := mapped.Run(ctx, RunOptions{Budget: budget, Workers: 1, Observer: obs})
	if err != nil {
		t.Fatalf("Run with mid-solve eviction: %v", err)
	}
	if !obs.fired {
		t.Fatal("observer never fired; the eviction raced nothing")
	}
	want, err := p.Run(ctx, RunOptions{Budget: budget, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if keyOf(res) != keyOf(want) {
		t.Fatalf("evicted-mid-solve run diverged: %+v vs %+v", keyOf(res), keyOf(want))
	}

	// The mapping is gone now (pins drained after the run): new slab-touching
	// operations must fail closed, not fault.
	if _, err := mapped.Run(ctx, RunOptions{Budget: budget, Workers: 1}); !errors.Is(err, ErrSnapshotUnmapped) {
		t.Fatalf("Run after release: %v, want ErrSnapshotUnmapped", err)
	}
	if _, err := EncodeSnapshot(mapped); !errors.Is(err, ErrSnapshotUnmapped) {
		t.Fatalf("EncodeSnapshot after release: %v, want ErrSnapshotUnmapped", err)
	}
	if err := mapped.Tune("f32", false); !errors.Is(err, ErrSnapshotUnmapped) {
		t.Fatalf("Tune after release: %v, want ErrSnapshotUnmapped", err)
	}
	// Metadata stays heap-side and keeps answering.
	if mapped.NumPhotos() != p.NumPhotos() {
		t.Fatal("NumPhotos changed after release")
	}
	if got, _ := mapped.Fingerprint(); got != fp {
		t.Fatal("Fingerprint changed after release")
	}
}

// TestMmapTruncatedSnapshot pins the SIGBUS-avoidance contract: the decode
// bounds every section read to the fstat'd length, so a snapshot truncated
// before mapping fails with ErrBadSnapshot instead of faulting.
func TestMmapTruncatedSnapshot(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	ctx := context.Background()
	ds := snapDataset(t, 53, snapSimVariants["dense"])
	p, err := Prepare(ctx, ds, PrepareOptions{Tau: 0.5, InstanceDigest: "mmap-trunc"})
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.Mapped = true
	path, size, err := store.Save(p)
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := p.Fingerprint()
	for _, keep := range []int64{0, 7, size / 2, size - 1} {
		if err := os.Truncate(path, keep); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Load(fp); err == nil || !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("keep=%d: Load = %v, want ErrBadSnapshot", keep, err)
		}
		full, err := EncodeSnapshot(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, full, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCacheMmapAccounting pins the satellite fix: mapped bytes are charged
// against their own gauge, not the heap byte bound, and the memoized charge
// returns usedBytes to exactly zero even when a delta changes the live
// value's SizeBytes between insert and removal.
func TestCacheMmapAccounting(t *testing.T) {
	ctx := context.Background()
	ds := snapDataset(t, 59, snapSimVariants["dense"])
	p, err := Prepare(ctx, ds, PrepareOptions{Tau: 0.5, InstanceDigest: "cache-mmap"})
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.Mapped = true
	if _, _, err := store.Save(p); err != nil {
		t.Fatal(err)
	}
	fp, _ := p.Fingerprint()
	mapped, err := store.Load(fp)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewPreparedCache(8, 1<<40)
	cache.Put(fp, mapped)
	if got, want := cache.MappedBytes(), mapped.MappedBytes(); got != want {
		t.Fatalf("cache MappedBytes = %d, want %d", got, want)
	}
	if mmapSupported {
		if charged := cache.UsedBytes(); charged >= mapped.SizeBytes() {
			t.Fatalf("charged %d bytes >= SizeBytes %d; mapped slabs double-charged", charged, mapped.SizeBytes())
		}
	}

	// A delta grows the live value's SizeBytes; removal must still subtract
	// exactly the memoized insert-time charge.
	rng := rand.New(rand.NewSource(61))
	if _, err := mapped.ApplyDelta(ctx, randomChurn(rng, mapped.base, nil, 1, 3, true)); err != nil {
		t.Fatal(err)
	}
	cache.Remove(fp)
	if got := cache.UsedBytes(); got != 0 {
		t.Fatalf("UsedBytes = %d after removing the only entry, want 0", got)
	}
	if got := cache.MappedBytes(); got != 0 {
		t.Fatalf("MappedBytes = %d after removing the only entry, want 0", got)
	}
	if cache.Len() != 0 {
		t.Fatal("cache not empty")
	}
}

// TestCacheRekeyKeepsMapping pins the delta rekey window: inserting the
// value under its post-churn key BEFORE removing the pre-churn key must keep
// the reference count positive throughout, so the mapping survives the
// rekey. (Remove-then-Put would drop the last reference in between.)
func TestCacheRekeyKeepsMapping(t *testing.T) {
	if !mmapSupported {
		t.Skip("no mmap on this platform")
	}
	ctx := context.Background()
	ds := snapDataset(t, 67, snapSimVariants["dense"])
	p, err := Prepare(ctx, ds, PrepareOptions{Tau: 0.5, InstanceDigest: "cache-rekey"})
	if err != nil {
		t.Fatal(err)
	}
	store, err := OpenSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	store.Mapped = true
	if _, _, err := store.Save(p); err != nil {
		t.Fatal(err)
	}
	oldFP, _ := p.Fingerprint()
	mapped, err := store.Load(oldFP)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewPreparedCache(8, 0)
	cache.Put(oldFP, mapped)

	rng := rand.New(rand.NewSource(71))
	stats, err := mapped.ApplyDelta(ctx, randomChurn(rng, mapped.base, nil, 1, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	cache.Put(stats.NewFingerprint, mapped)
	cache.Remove(stats.OldFingerprint)
	if _, err := mapped.Run(ctx, RunOptions{Budget: 0.4 * mapped.TotalCost(), Workers: 1}); err != nil {
		t.Fatalf("Run after rekey: %v (mapping dropped during rekey?)", err)
	}
	cache.Remove(stats.NewFingerprint)
	if _, err := mapped.Run(ctx, RunOptions{Budget: 0.4 * mapped.TotalCost(), Workers: 1}); !errors.Is(err, ErrSnapshotUnmapped) {
		t.Fatalf("Run after final remove: %v, want ErrSnapshotUnmapped", err)
	}
}
