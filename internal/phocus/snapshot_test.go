package phocus

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"phocus/internal/dataset"
	"phocus/internal/par"
)

// snapSimVariants mirrors the par package's similarity matrix: every subset
// of a generated instance is rewritten to a different Similarity
// implementation, so the snapshot codec's simCSR covers the NeighborLister
// fast path (sparse, identity), the dense enumeration path (dense, fn,
// uniform) and the degenerate extremes.
var snapSimVariants = map[string]func(k int, dense par.Similarity) par.Similarity{
	"dense": func(k int, dense par.Similarity) par.Similarity { return dense },
	"sparse": func(k int, dense par.Similarity) par.Similarity {
		b := par.NewSparseSimBuilder(k)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if s := dense.Sim(i, j); s > 0 {
					b.Add(i, j, s)
				}
			}
		}
		return b.Build()
	},
	"fn":       func(k int, dense par.Similarity) par.Similarity { return par.FuncSim{N: k, F: dense.Sim} },
	"uniform":  func(k int, dense par.Similarity) par.Similarity { return par.UniformSim{N: k} },
	"identity": func(k int, dense par.Similarity) par.Similarity { return par.IdentitySim{N: k} },
}

// snapDataset builds a random dataset whose subsets use the named similarity
// variant.
func snapDataset(t testing.TB, seed int64, variant func(int, par.Similarity) par.Similarity) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inst := par.Random(rng, par.RandomConfig{
		Photos:     30,
		Subsets:    8,
		MaxSubset:  10,
		RetainFrac: 0.1,
		SimDensity: 0.6,
	})
	for qi := range inst.Subsets {
		q := &inst.Subsets[qi]
		q.Sim = variant(len(q.Members), q.Sim)
	}
	return &dataset.Dataset{Instance: inst}
}

// runKey collapses a Result into the fields the differential compares; every
// comparison is bit-exact (==), not within-tolerance.
type runKey struct {
	score, cost, bound, ratio float64
	photos                    string
}

func keyOf(r *Result) runKey {
	return runKey{
		score:  r.Solution.Score,
		cost:   r.Solution.Cost,
		bound:  r.OnlineBound,
		ratio:  r.CertifiedRatio,
		photos: fmt.Sprint(r.Solution.Photos),
	}
}

// sameSlabs asserts two kernels are bit-identical, slab by slab.
func sameSlabs(t *testing.T, label string, want, got *par.Kernel) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Fatalf("%s: kernel presence differs: %v vs %v", label, want != nil, got != nil)
	}
	if want == nil {
		return
	}
	w, g := want.Slabs(), got.Slabs()
	if w.Photos != g.Photos {
		t.Fatalf("%s: photos %d vs %d", label, w.Photos, g.Photos)
	}
	cmp := func(name string, a, b any) {
		t.Helper()
		as, bs := fmt.Sprint(a), fmt.Sprint(b)
		if as != bs {
			t.Fatalf("%s: slab %s differs:\n  compiled: %.120s\n  loaded:   %.120s", label, name, as, bs)
		}
	}
	cmp("rowLen", w.RowLen, g.RowLen)
	cmp("rowStart", w.RowStart, g.RowStart)
	cmp("nbrIdx", w.NbrIdx, g.NbrIdx)
	cmp("nbrSim", w.NbrSim, g.NbrSim)
	cmp("nbrWR", w.NbrWR, g.NbrWR)
	cmp("occStart", w.OccStart, g.OccStart)
	cmp("occRow", w.OccRow, g.OccRow)
}

// TestSnapshotRoundTripDifferential is the tentpole's equivalence guarantee:
// for every similarity variant × τ mode × workers ∈ {1, 2, 8}, a Prepared
// written to the snapshot format and loaded back produces bit-identical
// kernels, bit-identical base similarities, and solve results equal to the
// in-memory Prepared's in every field.
func TestSnapshotRoundTripDifferential(t *testing.T) {
	ctx := context.Background()
	for name, variant := range snapSimVariants {
		for _, tau := range []float64{0, 0.5} {
			t.Run(fmt.Sprintf("%s/tau=%g", name, tau), func(t *testing.T) {
				ds := snapDataset(t, int64(len(name))*100+int64(tau*10), variant)
				total := ds.Instance.TotalCost()
				p, err := Prepare(ctx, ds, PrepareOptions{
					Tau:            tau,
					InstanceDigest: "digest-" + name,
				})
				if err != nil {
					t.Fatalf("Prepare: %v", err)
				}
				data, err := EncodeSnapshot(p)
				if err != nil {
					t.Fatalf("EncodeSnapshot: %v", err)
				}
				q, err := DecodeSnapshot(data)
				if err != nil {
					t.Fatalf("DecodeSnapshot: %v", err)
				}

				pfp, _ := p.Fingerprint()
				qfp, err := q.Fingerprint()
				if err != nil || qfp != pfp {
					t.Fatalf("fingerprint %q (%v), want %q", qfp, err, pfp)
				}
				sameSlabs(t, "kernBase", p.kernBase, q.kernBase)
				sameSlabs(t, "kernSolve", p.kernSolve, q.kernSolve)
				if q.OriginalPairs != p.OriginalPairs || q.SparsifiedPairs != p.SparsifiedPairs {
					t.Fatalf("pair counts %d/%d, want %d/%d",
						q.OriginalPairs, q.SparsifiedPairs, p.OriginalPairs, p.SparsifiedPairs)
				}

				// The reconstructed similarity must agree with the original on
				// every pair, bitwise.
				for qi := range p.base.Subsets {
					a, b := p.base.Subsets[qi].Sim, q.base.Subsets[qi].Sim
					k := a.Len()
					if b.Len() != k {
						t.Fatalf("subset %d: sim over %d members, want %d", qi, b.Len(), k)
					}
					for i := 0; i < k; i++ {
						for j := 0; j < k; j++ {
							if a.Sim(i, j) != b.Sim(i, j) {
								t.Fatalf("subset %d: Sim(%d,%d) = %v, want %v", qi, i, j, b.Sim(i, j), a.Sim(i, j))
							}
						}
					}
				}

				for _, workers := range []int{1, 2, 8} {
					for _, frac := range []float64{0.3, 0.6} {
						opts := RunOptions{Budget: frac * total, Workers: workers}
						want, err := p.Run(ctx, opts)
						if err != nil {
							t.Fatalf("workers=%d frac=%g: Run(mem): %v", workers, frac, err)
						}
						got, err := q.Run(ctx, opts)
						if err != nil {
							t.Fatalf("workers=%d frac=%g: Run(snap): %v", workers, frac, err)
						}
						if keyOf(got) != keyOf(want) {
							t.Fatalf("workers=%d frac=%g: snapshot run %+v\n  want %+v", workers, frac, keyOf(got), keyOf(want))
						}
					}
				}
			})
		}
	}
}

// TestSnapshotRoundTripLSH covers the LSH-sparsified mode (context vectors,
// seeded SimHash) and the non-CELF algorithms on a loaded snapshot.
func TestSnapshotRoundTripLSH(t *testing.T) {
	ctx := context.Background()
	ds := sweepDataset(t, 17)
	total := ds.Instance.TotalCost()
	p, err := Prepare(ctx, ds, PrepareOptions{Tau: 0.5, UseLSH: true, Seed: 3, InstanceDigest: "digest-lsh"})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	data, err := EncodeSnapshot(p)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	q, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	sameSlabs(t, "kernBase", p.kernBase, q.kernBase)
	sameSlabs(t, "kernSolve", p.kernSolve, q.kernSolve)
	for _, algo := range []Algorithm{AlgoCELF, AlgoSviridenko} {
		opts := RunOptions{Budget: 0.5 * total, Algorithm: algo}
		want, err := p.Run(ctx, opts)
		if err != nil {
			t.Fatalf("%s: Run(mem): %v", algo, err)
		}
		got, err := q.Run(ctx, opts)
		if err != nil {
			t.Fatalf("%s: Run(snap): %v", algo, err)
		}
		if keyOf(got) != keyOf(want) {
			t.Fatalf("%s: snapshot run %+v, want %+v", algo, keyOf(got), keyOf(want))
		}
	}
}

// smallSnapshot returns an encoded snapshot of a small sparsified Prepared —
// compact enough that exhaustive per-byte corruption stays fast.
func smallSnapshot(t testing.TB) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	inst := par.Random(rng, par.RandomConfig{
		Photos:     12,
		Subsets:    3,
		MaxSubset:  6,
		RetainFrac: 0.1,
		SimDensity: 0.5,
	})
	p, err := Prepare(context.Background(), &dataset.Dataset{Instance: inst},
		PrepareOptions{Tau: 0.4, InstanceDigest: "digest-small"})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	data, err := EncodeSnapshot(p)
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	return data
}

// TestSnapshotFlipAnyByte is the integrity guarantee the wire format was
// designed around: flipping ANY single byte of a snapshot — header, section
// table, or any payload byte — must make decoding fail with ErrBadSnapshot.
// No byte of the file is outside a checksum's coverage.
func TestSnapshotFlipAnyByte(t *testing.T) {
	data := smallSnapshot(t)
	if _, err := DecodeSnapshot(data); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	buf := make([]byte, len(data))
	for i := range data {
		copy(buf, data)
		buf[i] ^= 0x5A
		p, err := DecodeSnapshot(buf)
		if err == nil {
			t.Fatalf("flip at byte %d/%d went undetected (decoded %d photos)", i, len(data), p.NumPhotos())
		}
		if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("flip at byte %d: error %v does not wrap ErrBadSnapshot", i, err)
		}
	}
}

// TestSnapshotTruncation feeds every proper prefix of a valid snapshot to
// the decoder: all must fail cleanly with ErrBadSnapshot, none may panic.
func TestSnapshotTruncation(t *testing.T) {
	data := smallSnapshot(t)
	for n := 0; n < len(data); n++ {
		if _, err := DecodeSnapshot(data[:n]); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("prefix of %d/%d bytes: error %v does not wrap ErrBadSnapshot", n, len(data), err)
		}
	}
}

// FuzzSnapshotDecode hammers the header/section parser with arbitrary
// mutations of a valid snapshot: whatever the bytes, DecodeSnapshot must
// return a typed error or a valid Prepared — never panic, never index out of
// range.
func FuzzSnapshotDecode(f *testing.F) {
	data := smallSnapshot(f)
	f.Add(data)
	f.Add(data[:len(data)/2])
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		p, err := DecodeSnapshot(b)
		if err == nil {
			// Anything the decoder accepts must be a coherent Prepared: a
			// solve over it must not panic either.
			if _, rerr := p.Run(context.Background(), RunOptions{SkipBound: true, Workers: 1}); rerr != nil {
				t.Skip() // infeasible budgets etc. are fine; only panics matter
			}
		} else if !errors.Is(err, ErrBadSnapshot) && !errors.Is(err, ErrNoCtxVectors) {
			t.Fatalf("error %v does not wrap ErrBadSnapshot", err)
		}
	})
}

// TestSnapshotStore covers the durable layer: atomic save, load-by-
// fingerprint, quarantine of corrupt files, warm-fill into a PreparedCache,
// and the sweep of orphaned temp files left by a crash mid-save.
func TestSnapshotStore(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenSnapshotStore(dir)
	if err != nil {
		t.Fatalf("OpenSnapshotStore: %v", err)
	}
	ctx := context.Background()

	var fps []string
	for i := 0; i < 2; i++ {
		ds := snapDataset(t, int64(40+i), snapSimVariants["dense"])
		p, err := Prepare(ctx, ds, PrepareOptions{Tau: 0.5, InstanceDigest: fmt.Sprintf("digest-%d", i)})
		if err != nil {
			t.Fatalf("Prepare %d: %v", i, err)
		}
		path, size, err := store.Save(p)
		if err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
		if st, err := os.Stat(path); err != nil || st.Size() != size {
			t.Fatalf("Save %d reported %d bytes at %s, stat says %v/%v", i, size, path, st, err)
		}
		fp, _ := p.Fingerprint()
		fps = append(fps, fp)

		got, err := store.Load(fp)
		if err != nil {
			t.Fatalf("Load %d: %v", i, err)
		}
		sameSlabs(t, "loaded kernBase", p.kernBase, got.kernBase)
	}

	// A third snapshot, corrupted on disk after a clean save.
	ds := snapDataset(t, 77, snapSimVariants["dense"])
	p3, err := Prepare(ctx, ds, PrepareOptions{Tau: 0.5, InstanceDigest: "digest-corrupt"})
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	path3, _, err := store.Save(p3)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	raw, err := os.ReadFile(path3)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path3, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fp3, _ := p3.Fingerprint()
	if _, err := store.Load(fp3); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("Load of corrupted file: error %v does not wrap ErrBadSnapshot", err)
	}

	// An orphaned temp file from a crash between temp-write and rename.
	orphan := filepath.Join(dir, fps[0]+".snap.tmp")
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A stray file that is not a snapshot must be left alone.
	stray := filepath.Join(dir, "README")
	if err := os.WriteFile(stray, []byte("notes"), 0o644); err != nil {
		t.Fatal(err)
	}

	cache := NewPreparedCache(8, 0)
	var loads, corrupts int
	stats, err := store.WarmFill(cache,
		func(fp string, p *Prepared, d time.Duration) { loads++ },
		func(fp string, err error) {
			corrupts++
			if !errors.Is(err, ErrBadSnapshot) {
				t.Errorf("onCorrupt error %v does not wrap ErrBadSnapshot", err)
			}
		})
	if err != nil {
		t.Fatalf("WarmFill: %v", err)
	}
	if stats.Loaded != 2 || stats.Corrupt != 1 || stats.TempSwept != 1 {
		t.Fatalf("WarmFill stats = %+v, want Loaded=2 Corrupt=1 TempSwept=1", stats)
	}
	if loads != 2 || corrupts != 1 {
		t.Fatalf("callbacks: %d loads, %d corrupts", loads, corrupts)
	}
	if cache.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", cache.Len())
	}
	for _, fp := range fps {
		if _, ok := cache.Get(fp); !ok {
			t.Fatalf("fingerprint %.12s… missing from warm cache", fp)
		}
	}
	if _, err := os.Stat(path3 + ".corrupt"); err != nil {
		t.Fatalf("corrupt snapshot not quarantined: %v", err)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphaned temp file not swept: %v", err)
	}
	if _, err := os.Stat(stray); err != nil {
		t.Fatalf("stray non-snapshot file was touched: %v", err)
	}
	// A second warm-fill sees the already-quarantined file as gone.
	stats2, err := store.WarmFill(NewPreparedCache(8, 0), nil, nil)
	if err != nil || stats2.Loaded != 2 || stats2.Corrupt != 0 {
		t.Fatalf("second WarmFill = %+v (%v), want Loaded=2 Corrupt=0", stats2, err)
	}
}

// TestSnapshotStoreNameMismatch: a snapshot renamed to a different (valid-
// looking) fingerprint must be rejected — the embedded fingerprint is
// authoritative.
func TestSnapshotStoreNameMismatch(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenSnapshotStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds := snapDataset(t, 5, snapSimVariants["dense"])
	p, err := Prepare(context.Background(), ds, PrepareOptions{InstanceDigest: "digest-rename"})
	if err != nil {
		t.Fatal(err)
	}
	path, _, err := store.Save(p)
	if err != nil {
		t.Fatal(err)
	}
	other := "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"
	if err := os.Rename(path, store.Path(other)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(other); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("Load of renamed snapshot: error %v does not wrap ErrBadSnapshot", err)
	}
}

// TestSnapshotLoadFaster pins the point of the format: decoding a prepared
// snapshot must beat re-running Prepare by a wide margin even at a moderate
// size. It times DecodeSnapshot on an in-memory buffer so the comparison is
// CPU-vs-CPU — raw file-read throughput varies wildly between CI machines,
// while the decode-vs-Prepare ratio only grows with instance size (Prepare's
// similarity work is superlinear, the decode is one linear verified pass).
// BENCH_snapshot.json measures the full store.Load ratio at larger sizes.
// The 3× floor here is deliberately conservative; locally the ratio is ~10×
// already at this size.
func TestSnapshotLoadFaster(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("timing test")
	}
	ds, err := dataset.GeneratePublic(dataset.PublicSpec{Name: "snap-speed", NumPhotos: 2500, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Workers: 1 pins the cold path to one core like the decode path.
	opts := PrepareOptions{Tau: 0.4, Workers: 1, InstanceDigest: "digest-speed"}

	t0 := time.Now()
	p, err := Prepare(ctx, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	cold := time.Since(t0)

	// The store round-trip stays in the test (untimed) so the timed decode
	// runs against bytes that really crossed the on-disk path.
	dir := t.TempDir()
	store, err := OpenSnapshotStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Save(p); err != nil {
		t.Fatal(err)
	}
	fp, _ := p.Fingerprint()
	buf, err := readAligned(store.Path(fp))
	if err != nil {
		t.Fatal(err)
	}

	// Best of three decodes: one scheduling hiccup must not fail the suite.
	warm := time.Duration(1<<62 - 1)
	var q *Prepared
	for i := 0; i < 3; i++ {
		t1 := time.Now()
		q, err = DecodeSnapshot(buf)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t1); d < warm {
			warm = d
		}
	}
	sameSlabs(t, "kernBase", p.kernBase, q.kernBase)

	if warm*3 > cold {
		t.Fatalf("snapshot decode %v not at least 3× faster than cold Prepare %v", warm, cold)
	}
	t.Logf("cold Prepare %v, snapshot decode %v (%.0f×)", cold, warm, float64(cold)/float64(warm))
}
