package phocus

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"testing"

	"phocus/internal/dataset"
	"phocus/internal/par"
)

func preparedForSnapDelta(t *testing.T, tau float64) (*Prepared, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	inst := par.Random(rng, par.RandomConfig{
		Photos: 32, Subsets: 9, BudgetFrac: 0.4, RetainFrac: 0.1, SimDensity: 0.6,
	})
	p, err := Prepare(context.Background(), &dataset.Dataset{Instance: inst},
		PrepareOptions{Tau: tau, Workers: 1, InstanceDigest: "snap-delta"})
	if err != nil {
		t.Fatal(err)
	}
	return p, rng
}

// TestSnapshotRoundTripAfterDelta encodes a Prepared whose kernels carry an
// active delta overlay (Slabs alone would refuse them) and requires the
// decoded twin to agree on fingerprint, husk bitmap, and solve results —
// including after further churn on both sides.
func TestSnapshotRoundTripAfterDelta(t *testing.T) {
	ctx := context.Background()
	p, rng := preparedForSnapDelta(t, 0.3)
	d := randomChurn(rng, p.base, nil, 2, 2, true)
	stats, err := p.ApplyDelta(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Compacted {
		t.Skip("delta compacted immediately; overlay encode path not exercised")
	}
	buf, err := EncodeSnapshot(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeSnapshot(buf)
	if err != nil {
		t.Fatal(err)
	}
	pfp, _ := p.Fingerprint()
	if qfp, _ := q.Fingerprint(); qfp != pfp || qfp != stats.NewFingerprint {
		t.Fatalf("decoded fingerprint %s, want evolved %s", qfp, stats.NewFingerprint)
	}
	if got, want := removedCount(q.removed), removedCount(p.removed); got != want {
		t.Fatalf("decoded %d husks, want %d", got, want)
	}
	budget := 0.4 * p.TotalCost()
	requireSameRun(t, "round-trip", p, q, budget, AlgoCELF)

	// A husk must stay dead on the decoded side: removing it again errors.
	if _, err := q.ApplyDelta(ctx, &Delta{Remove: d.Remove[:1]}); err == nil {
		t.Fatal("decoded Prepared re-removed a husk")
	}
	// And identical further churn keeps the two in lockstep.
	d2 := randomChurn(rng, p.base, p.removed, 1, 1, false)
	if _, err := p.ApplyDelta(ctx, d2); err != nil {
		t.Fatal(err)
	}
	if _, err := q.ApplyDelta(ctx, d2); err != nil {
		t.Fatal(err)
	}
	requireSameRun(t, "post-round-trip churn", p, q, budget, AlgoCELF)
}

// TestSnapshotStalenessAfterDelta is the satellite gate: once ApplyDelta
// evolves the fingerprint, the pre-churn snapshot must never answer for the
// new fingerprint, and re-saving installs the post-churn bytes under the new
// name (the old file stays until explicitly invalidated with Remove).
func TestSnapshotStalenessAfterDelta(t *testing.T) {
	ctx := context.Background()
	p, rng := preparedForSnapDelta(t, 0)
	store, err := OpenSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Save(p); err != nil {
		t.Fatal(err)
	}
	oldFP, _ := p.Fingerprint()

	d := randomChurn(rng, p.base, nil, 2, 1, false)
	stats, err := p.ApplyDelta(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	newFP := stats.NewFingerprint

	// No snapshot exists yet for the evolved fingerprint.
	if _, err := store.Load(newFP); !os.IsNotExist(err) {
		t.Fatalf("Load(new fp) = %v, want IsNotExist", err)
	}
	// Renaming the stale file under the new fingerprint (what a confused
	// operator or a bad sync could do) must be caught by the embedded
	// fingerprint, not served.
	if err := os.Rename(store.Path(oldFP), store.Path(newFP)); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(newFP); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("Load of renamed stale snapshot = %v, want ErrBadSnapshot", err)
	}
	if err := os.Rename(store.Path(newFP), store.Path(oldFP)); err != nil {
		t.Fatal(err)
	}

	// Re-save after the delta: the file lands under the new fingerprint.
	path, _, err := store.Save(p)
	if err != nil {
		t.Fatal(err)
	}
	if path != store.Path(newFP) {
		t.Fatalf("post-delta Save wrote %s, want %s", path, store.Path(newFP))
	}
	q, err := store.Load(newFP)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRun(t, "reloaded", p, q, 0.4*p.TotalCost(), AlgoCELF)

	// Invalidating the stale name removes it; a second Remove is a no-op.
	if err := store.Remove(oldFP); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Load(oldFP); !os.IsNotExist(err) {
		t.Fatalf("Load(old fp) after Remove = %v, want IsNotExist", err)
	}
	if err := store.Remove(oldFP); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotCrashBetweenDeltaAndResave models the crash window after a
// delta commits in memory but before the async re-save lands: a restarting
// server warm-fills only the pre-churn snapshot under the pre-churn
// fingerprint — correct but stale — and the post-churn fingerprint misses,
// falling back to cold Prepare.
func TestSnapshotCrashBetweenDeltaAndResave(t *testing.T) {
	ctx := context.Background()
	p, rng := preparedForSnapDelta(t, 0.3)
	store, err := OpenSnapshotStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Save(p); err != nil {
		t.Fatal(err)
	}
	oldFP, _ := p.Fingerprint()

	d := randomChurn(rng, p.base, nil, 1, 1, false)
	stats, err := p.ApplyDelta(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	// "Crash": p is gone, no re-save happened. Restart warm-fills a fresh
	// cache from the directory.
	cache := NewPreparedCache(8, 0)
	ws, err := store.WarmFill(cache, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ws.Loaded != 1 || ws.Corrupt != 0 {
		t.Fatalf("WarmFill loaded %d / corrupt %d, want 1 / 0", ws.Loaded, ws.Corrupt)
	}
	if _, ok := cache.Get(stats.NewFingerprint); ok {
		t.Fatal("post-churn fingerprint served from a warm fill that never saw the delta")
	}
	q, ok := cache.Get(oldFP)
	if !ok {
		t.Fatal("pre-churn snapshot not recovered")
	}
	if fp, _ := q.Fingerprint(); fp != oldFP {
		t.Fatalf("recovered snapshot fingerprint %s, want %s", fp, oldFP)
	}
	if removedCount(q.removed) != 0 {
		t.Fatal("pre-churn snapshot carries husks")
	}
}

// TestPreparedCacheRemove pins the cache invalidation hook: Remove drops the
// entry and its byte accounting, and reports presence.
func TestPreparedCacheRemove(t *testing.T) {
	p, _ := preparedForSnapDelta(t, 0)
	cache := NewPreparedCache(4, 0)
	cache.Put("a", p)
	if cache.UsedBytes() != p.SizeBytes() {
		t.Fatalf("UsedBytes %d, want %d", cache.UsedBytes(), p.SizeBytes())
	}
	if !cache.Remove("a") {
		t.Fatal("Remove(a) = false, want true")
	}
	if _, ok := cache.Get("a"); ok {
		t.Fatal("entry survived Remove")
	}
	if cache.UsedBytes() != 0 {
		t.Fatalf("UsedBytes %d after Remove, want 0", cache.UsedBytes())
	}
	if cache.Remove("a") {
		t.Fatal("second Remove(a) = true, want false")
	}
}
