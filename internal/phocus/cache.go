package phocus

import (
	"container/list"
	"sync"
)

// PreparedCache is a bounded LRU of Prepared instances keyed by fingerprint
// (the same reactive eviction idiom as internal/storage's LRUCache, applied
// to prepared pipelines instead of photos). It bounds both the entry count
// and the summed SizeBytes of the cached values, evicting least recently
// used entries until both bounds hold. All methods are safe for concurrent
// use; a Prepared itself is immutable, so cached values can be Run by many
// requests at once.
type PreparedCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	usedBytes  int64
	order      *list.List // front = most recently used
	elems      map[string]*list.Element
	stats      CacheStats
}

// CacheStats is the access accounting of a PreparedCache.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

type cacheEntry struct {
	key  string
	prep *Prepared
}

// NewPreparedCache returns an empty cache bounded by maxEntries entries and
// maxBytes summed Prepared.SizeBytes. Bounds ≤ 0 are unlimited; an entry
// larger than maxBytes on its own is never admitted.
func NewPreparedCache(maxEntries int, maxBytes int64) *PreparedCache {
	return &PreparedCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		elems:      make(map[string]*list.Element),
	}
}

// Get returns the cached Prepared for the key, refreshing its recency.
func (c *PreparedCache) Get(key string) (*Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.elems[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*cacheEntry).prep, true
}

// Put inserts (or refreshes) a Prepared under the key and evicts least
// recently used entries until the bounds hold again, returning how many
// entries were evicted. Values too large for the byte bound are dropped
// without disturbing the cache.
func (c *PreparedCache) Put(key string, p *Prepared) (evicted int) {
	size := p.SizeBytes()
	if c.maxBytes > 0 && size > c.maxBytes {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.elems[key]; ok {
		c.usedBytes += size - el.Value.(*cacheEntry).prep.SizeBytes()
		el.Value.(*cacheEntry).prep = p
		c.order.MoveToFront(el)
	} else {
		c.elems[key] = c.order.PushFront(&cacheEntry{key: key, prep: p})
		c.usedBytes += size
	}
	for c.order.Len() > 0 &&
		((c.maxEntries > 0 && c.order.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.usedBytes > c.maxBytes)) {
		back := c.order.Back()
		ent := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.elems, ent.key)
		c.usedBytes -= ent.prep.SizeBytes()
		c.stats.Evictions++
		evicted++
	}
	return evicted
}

// Len returns the number of cached entries.
func (c *PreparedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// UsedBytes returns the summed SizeBytes of the cached entries.
func (c *PreparedCache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.usedBytes
}

// Stats returns a copy of the accumulated access statistics.
func (c *PreparedCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
