package phocus

import (
	"container/list"
	"sync"
)

// PreparedCache is a bounded LRU of Prepared instances keyed by fingerprint
// (the same reactive eviction idiom as internal/storage's LRUCache, applied
// to prepared pipelines instead of photos). It bounds both the entry count
// and the summed charged bytes of the cached values, evicting least recently
// used entries until both bounds hold. All methods are safe for concurrent
// use; a Prepared itself is immutable, so cached values can be Run by many
// requests at once.
//
// Byte accounting. An entry is charged SizeBytes − MappedBytes: the slabs of
// an mmap-backed Prepared live in the page cache, not the Go heap, so
// charging them against the heap byte bound would evict real heap residents
// to make room for memory the OS already reclaims on its own. Charges are
// memoized at insert time — a later ApplyDelta may change the live value's
// SizeBytes, and the cache must subtract at eviction exactly what it added
// at insert or usedBytes drifts.
//
// Reference tracking. The cache counts how many entries hold each distinct
// *Prepared (the delta rekey path briefly holds one value under two keys).
// When the last reference leaves the cache, the value's snapshot mapping is
// released: in-flight pinned operations finish against the mapping, new ones
// fail with ErrSnapshotUnmapped, and callers re-prepare.
type PreparedCache struct {
	mu          sync.Mutex
	maxEntries  int
	maxBytes    int64
	usedBytes   int64
	mappedBytes int64
	order       *list.List // front = most recently used
	elems       map[string]*list.Element
	refs        map[*Prepared]int
	stats       CacheStats
	flights     map[string]*flight
}

// flight is one in-progress Prepare shared by every concurrent
// GetOrPrepare call for the same key (singleflight).
type flight struct {
	done chan struct{}
	prep *Prepared
	err  error
}

// CacheStats is the access accounting of a PreparedCache.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

type cacheEntry struct {
	key  string
	prep *Prepared
	// size/mapped memoize the charged heap bytes (SizeBytes − MappedBytes)
	// and the mmap-backed bytes at insert time; see the type comment.
	size   int64
	mapped int64
}

// NewPreparedCache returns an empty cache bounded by maxEntries entries and
// maxBytes summed charged bytes. Bounds ≤ 0 are unlimited; an entry larger
// than maxBytes on its own is never admitted.
func NewPreparedCache(maxEntries int, maxBytes int64) *PreparedCache {
	return &PreparedCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		elems:      make(map[string]*list.Element),
		refs:       make(map[*Prepared]int),
		flights:    make(map[string]*flight),
	}
}

// releaseLocked drops one reference to p, releasing its snapshot mapping
// when the last cache reference is gone.
func (c *PreparedCache) releaseLocked(p *Prepared) {
	c.refs[p]--
	if c.refs[p] <= 0 {
		delete(c.refs, p)
		p.ReleaseMapping()
	}
}

// Get returns the cached Prepared for the key, refreshing its recency.
func (c *PreparedCache) Get(key string) (*Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.elems[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.order.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*cacheEntry).prep, true
}

// Put inserts (or refreshes) a Prepared under the key and evicts least
// recently used entries until the bounds hold again, returning how many
// entries were evicted. Values too large for the byte bound are dropped
// without disturbing the cache (their mapping, if any, stays alive for the
// caller and is reclaimed by the finalizer backstop).
func (c *PreparedCache) Put(key string, p *Prepared) (evicted int) {
	mapped := p.MappedBytes()
	size := p.SizeBytes() - mapped
	if size < 0 {
		size = 0
	}
	if c.maxBytes > 0 && size > c.maxBytes {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.elems[key]; ok {
		ent := el.Value.(*cacheEntry)
		if ent.prep != p {
			c.refs[p]++
			c.releaseLocked(ent.prep)
		}
		c.usedBytes += size - ent.size
		c.mappedBytes += mapped - ent.mapped
		ent.prep, ent.size, ent.mapped = p, size, mapped
		c.order.MoveToFront(el)
	} else {
		c.elems[key] = c.order.PushFront(&cacheEntry{key: key, prep: p, size: size, mapped: mapped})
		c.usedBytes += size
		c.mappedBytes += mapped
		c.refs[p]++
	}
	for c.order.Len() > 0 &&
		((c.maxEntries > 0 && c.order.Len() > c.maxEntries) ||
			(c.maxBytes > 0 && c.usedBytes > c.maxBytes)) {
		back := c.order.Back()
		ent := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.elems, ent.key)
		c.usedBytes -= ent.size
		c.mappedBytes -= ent.mapped
		c.releaseLocked(ent.prep)
		c.stats.Evictions++
		evicted++
	}
	return evicted
}

// GetOrPrepare returns the cached Prepared for key or builds it with
// prepare, deduplicating concurrent builds: while one caller's prepare for
// a key is in flight, other callers for the same key wait for its outcome
// instead of preparing again (the same-archive burst pattern the async job
// queue produces — N queued jobs over one archive prepare once, not N
// times). A successful build is inserted under the key; hit reports whether
// the value came from the cache or a joined flight (both avoided a
// prepare), and evicted how many entries the insert displaced. Errors are
// returned to every waiter of the flight and never cached.
func (c *PreparedCache) GetOrPrepare(key string, prepare func() (*Prepared, error)) (p *Prepared, hit bool, evicted int, err error) {
	c.mu.Lock()
	if el, ok := c.elems[key]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		c.mu.Unlock()
		return el.Value.(*cacheEntry).prep, true, 0, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, 0, f.err
		}
		// The flight owner inserted the value; joining its build still
		// avoided a prepare, so it reports as a hit.
		return f.prep, true, 0, nil
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.stats.Misses++
	c.mu.Unlock()

	f.prep, f.err = prepare()
	if f.err == nil {
		evicted = c.Put(key, f.prep)
	}
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	return f.prep, false, evicted, f.err
}

// Remove drops the key's entry if present, reporting whether it was. The
// delta path uses it to invalidate a Prepared's pre-churn cache key the
// moment its fingerprint evolves.
func (c *PreparedCache) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.elems[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.elems, key)
	ent := el.Value.(*cacheEntry)
	c.usedBytes -= ent.size
	c.mappedBytes -= ent.mapped
	c.releaseLocked(ent.prep)
	return true
}

// Len returns the number of cached entries.
func (c *PreparedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// UsedBytes returns the summed charged bytes (SizeBytes − MappedBytes at
// insert time) of the cached entries.
func (c *PreparedCache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.usedBytes
}

// MappedBytes returns the summed mmap-backed bytes of the cached entries —
// page-cache residency, exported as the phocus_prepared_mmap_bytes gauge.
func (c *PreparedCache) MappedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mappedBytes
}

// Stats returns a copy of the accumulated access statistics.
func (c *PreparedCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
