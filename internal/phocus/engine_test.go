package phocus

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"phocus/internal/dataset"
	"phocus/internal/obs"
	"phocus/internal/par"
)

// sweepDataset builds a mid-sized studio dataset for prepare/run sweeps.
func sweepDataset(t *testing.T, seed int64) *dataset.Dataset {
	t.Helper()
	photos, _ := studio(seed, 4, 6)
	var members []int
	for i := range photos {
		members = append(members, i)
	}
	ds, err := BuildDirect(photos, []SubsetSpec{
		{Name: "a", Weight: 1, Members: members},
		{Name: "b", Weight: 2, Members: members[:12]},
		{Name: "c", Weight: 1, Members: members[8:]},
	}, BuildOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestPrepareRunMatchesSolve is the staged engine's equivalence guarantee:
// preparing once and running a budget sweep yields exactly the results of
// one-shot Solve calls at each budget — across worker counts and all three
// sparsification modes (none, exact τ, LSH τ).
func TestPrepareRunMatchesSolve(t *testing.T) {
	ds := sweepDataset(t, 11)
	total := ds.Instance.TotalCost()
	modes := []struct {
		name string
		prep PrepareOptions
	}{
		{"dense", PrepareOptions{}},
		{"exact-sparsify", PrepareOptions{Tau: 0.5}},
		{"lsh-sparsify", PrepareOptions{Tau: 0.5, UseLSH: true, Seed: 3}},
	}
	for _, mode := range modes {
		for _, workers := range []int{1, 4} {
			opts := mode.prep
			opts.Workers = workers
			p, err := Prepare(context.Background(), ds, opts)
			if err != nil {
				t.Fatalf("%s workers=%d: Prepare: %v", mode.name, workers, err)
			}
			for _, frac := range []float64{0.2, 0.4, 0.7} {
				budget := frac * total
				got, err := p.Run(context.Background(), RunOptions{Budget: budget, Workers: workers})
				if err != nil {
					t.Fatalf("%s workers=%d budget=%.0f%%: Run: %v", mode.name, workers, 100*frac, err)
				}
				want, err := Solve(ds, SolveOptions{
					Budget: budget, Tau: mode.prep.Tau, UseLSH: mode.prep.UseLSH,
					Seed: mode.prep.Seed, Workers: workers,
				})
				if err != nil {
					t.Fatalf("%s workers=%d budget=%.0f%%: Solve: %v", mode.name, workers, 100*frac, err)
				}
				if got.Solution.Score != want.Solution.Score ||
					got.OnlineBound != want.OnlineBound ||
					len(got.Solution.Photos) != len(want.Solution.Photos) {
					t.Fatalf("%s workers=%d budget=%.0f%%: Run %.6f/%d (bound %.6f) vs Solve %.6f/%d (bound %.6f)",
						mode.name, workers, 100*frac,
						got.Solution.Score, len(got.Solution.Photos), got.OnlineBound,
						want.Solution.Score, len(want.Solution.Photos), want.OnlineBound)
				}
				for i := range got.Solution.Photos {
					if got.Solution.Photos[i] != want.Solution.Photos[i] {
						t.Fatalf("%s workers=%d budget=%.0f%%: selections diverge: %v vs %v",
							mode.name, workers, 100*frac, got.Solution.Photos, want.Solution.Photos)
					}
				}
			}
		}
	}
}

// TestPreparedCompilesKernel pins the Prepare-time kernel compilation: the
// compiled kernels exist on both the dense and sparsified paths, their bytes
// are part of SizeBytes, the build time is part of PrepTime, and the
// phocus_kernel_build_seconds metric is recorded when a registry is wired.
func TestPreparedCompilesKernel(t *testing.T) {
	ds := sweepDataset(t, 13)
	for _, mode := range []struct {
		name string
		prep PrepareOptions
	}{
		{"dense", PrepareOptions{}},
		{"exact-sparsify", PrepareOptions{Tau: 0.5}},
	} {
		reg := obs.NewRegistry()
		opts := mode.prep
		opts.Metrics = reg
		p, err := Prepare(context.Background(), ds, opts)
		if err != nil {
			t.Fatalf("%s: Prepare: %v", mode.name, err)
		}
		if p.KernelBytes() <= 0 {
			t.Errorf("%s: KernelBytes = %d, want > 0", mode.name, p.KernelBytes())
		}
		if p.SizeBytes() < p.KernelBytes() {
			t.Errorf("%s: SizeBytes %d < KernelBytes %d", mode.name, p.SizeBytes(), p.KernelBytes())
		}
		if p.KernelBuildTime <= 0 || p.KernelBuildTime > p.PrepTime {
			t.Errorf("%s: KernelBuildTime %v outside (0, PrepTime=%v]", mode.name, p.KernelBuildTime, p.PrepTime)
		}
		if got := reg.Histogram("phocus_kernel_build_seconds", nil).Count(); got != 1 {
			t.Errorf("%s: phocus_kernel_build_seconds count = %d, want 1", mode.name, got)
		}
	}
	// No registry wired: Prepare must not blow up, kernels still compile.
	p, err := Prepare(context.Background(), ds, PrepareOptions{})
	if err != nil {
		t.Fatalf("Prepare without Metrics: %v", err)
	}
	if p.KernelBytes() <= 0 {
		t.Error("Prepare without Metrics compiled no kernel")
	}
}

// TestRunConcurrentSharing exercises the documented concurrency contract:
// many Runs against one Prepared, in parallel, each with its own budget,
// must all match their one-shot equivalents.
func TestRunConcurrentSharing(t *testing.T) {
	ds := sweepDataset(t, 12)
	total := ds.Instance.TotalCost()
	p, err := Prepare(context.Background(), ds, PrepareOptions{Tau: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	fracs := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	want := make([]*Result, len(fracs))
	for i, frac := range fracs {
		want[i], err = Solve(ds, SolveOptions{Budget: frac * total, Tau: 0.5})
		if err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, len(fracs))
	for i, frac := range fracs {
		go func(i int, frac float64) {
			got, err := p.Run(context.Background(), RunOptions{Budget: frac * total})
			if err != nil {
				errs <- err
				return
			}
			if got.Solution.Score != want[i].Solution.Score {
				errs <- errors.New("concurrent Run diverged from one-shot Solve")
				return
			}
			errs <- nil
		}(i, frac)
	}
	for range fracs {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestPrepareNoCtxVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := par.Random(rng, par.RandomConfig{Photos: 20, Subsets: 8, BudgetFrac: 0.3})
	ds := &dataset.Dataset{Instance: inst} // wire-loaded datasets carry no vectors
	_, err := Prepare(context.Background(), ds, PrepareOptions{Tau: 0.5, UseLSH: true})
	if !errors.Is(err, ErrNoCtxVectors) {
		t.Fatalf("Prepare err = %v, want ErrNoCtxVectors", err)
	}
	// The one-shot wrapper surfaces the same error.
	if _, err := Solve(ds, SolveOptions{Tau: 0.5, UseLSH: true}); !errors.Is(err, ErrNoCtxVectors) {
		t.Fatalf("Solve err = %v, want ErrNoCtxVectors", err)
	}
	// LSH without τ never sparsifies, so the missing vectors don't matter.
	if _, err := Solve(ds, SolveOptions{UseLSH: true}); err != nil {
		t.Fatalf("Solve with tau=0: %v", err)
	}
}

func TestFingerprint(t *testing.T) {
	ds := sweepDataset(t, 13)
	ctx := context.Background()
	fp := func(opts PrepareOptions) string {
		t.Helper()
		p, err := Prepare(ctx, ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		s, err := p.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	base := fp(PrepareOptions{Tau: 0.5})
	if base == "" {
		t.Fatal("empty fingerprint")
	}
	if again := fp(PrepareOptions{Tau: 0.5}); again != base {
		t.Error("fingerprint not stable across Prepare calls")
	}
	// Budget is a Run parameter: changing it must not change the identity.
	if err := ds.SetBudget(0.5 * ds.Instance.TotalCost()); err != nil {
		t.Fatal(err)
	}
	if rebudgeted := fp(PrepareOptions{Tau: 0.5}); rebudgeted != base {
		t.Error("fingerprint depends on the instance budget")
	}
	// Every preparation parameter must diverge the identity.
	divergent := map[string]PrepareOptions{
		"tau":      {Tau: 0.6},
		"lsh":      {Tau: 0.5, UseLSH: true},
		"seed":     {Tau: 0.5, UseLSH: true, Seed: 1},
		"retained": {Tau: 0.5, Retained: []par.PhotoID{0}},
	}
	seen := map[string]string{"base": base}
	for name, opts := range divergent {
		got := fp(opts)
		for other, prev := range seen {
			if name != other && got == prev {
				t.Errorf("options %q and %q share a fingerprint", name, other)
			}
		}
		seen[name] = got
	}
	// A caller-supplied digest short-circuits serialization and feeds the
	// same combiner.
	if FingerprintFor("abc", PrepareOptions{Tau: 0.5}) == FingerprintFor("abd", PrepareOptions{Tau: 0.5}) {
		t.Error("digest not reflected in fingerprint")
	}
}

func TestRunCancellation(t *testing.T) {
	ds := sweepDataset(t, 14)
	p, err := Prepare(context.Background(), ds, PrepareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(canceled, RunOptions{Budget: 0.3 * ds.Instance.TotalCost()}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
	if _, err := Prepare(canceled, ds, PrepareOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Prepare err = %v, want context.Canceled", err)
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	ds := sweepDataset(t, 15)
	p, err := Prepare(context.Background(), ds, PrepareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background(), RunOptions{Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestPipelineSolver(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := par.Random(rng, par.RandomConfig{Photos: 18, Subsets: 8, BudgetFrac: 0.3})
	var s par.ContextSolver = &PipelineSolver{}
	if s.Name() != "PHOcus" {
		t.Errorf("Name() = %q", s.Name())
	}
	sol, err := s.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Solve(&dataset.Dataset{Instance: inst}, SolveOptions{Budget: inst.Budget, SkipBound: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Score != want.Solution.Score {
		t.Errorf("PipelineSolver %.6f vs engine %.6f", sol.Score, want.Solution.Score)
	}
	if (&PipelineSolver{Algorithm: AlgoExact}).Name() != "Brute-Force" {
		t.Error("algorithm name not forwarded")
	}
}
