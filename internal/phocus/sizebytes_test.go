package phocus

import (
	"context"
	"runtime"
	"testing"

	"phocus/internal/dataset"
)

// TestPreparedSizeBytesAccounting pins the cache's byte accounting to
// reality: the bytes SizeBytes attributes to what Prepare allocated (sparse
// similarity structures + compiled kernels — the base instance existed
// before the call) must track the measured heap growth. The old accounting
// billed the sparse view's shared Members/Relevance slices a second time
// and dense similarities at 8k² instead of their packed-triangle storage,
// so a cache byte bound evicted far too early; this test fails under either
// mistake.
func TestPreparedSizeBytesAccounting(t *testing.T) {
	if testing.Short() || raceEnabled {
		t.Skip("heap-measurement test")
	}
	ds, err := dataset.GeneratePublic(dataset.PublicSpec{Name: "size-acct", NumPhotos: 1200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var before, after runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&before)
	p, err := Prepare(ctx, ds, PrepareOptions{Tau: 0.5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	measured := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	runtime.KeepAlive(ds)

	accounted := p.SizeBytes() - instanceSizeBytes(p.base.Cost, p.base.Subsets)
	if accounted <= 0 {
		t.Fatalf("accounted new bytes %d: want positive (sparse sims + kernels)", accounted)
	}
	// Generous 2× band in both directions: allocator size classes and slice
	// headers pad the measurement up, transient scratch freed by GC cannot
	// pad it down, and the old double-counting overshot by far more than 2×.
	if accounted > 2*measured {
		t.Fatalf("SizeBytes over-counts: accounts %d new bytes, heap grew %d", accounted, measured)
	}
	if measured > 2*accounted {
		t.Fatalf("SizeBytes under-counts: accounts %d new bytes, heap grew %d", accounted, measured)
	}
	t.Logf("accounted %d bytes for Prepare's allocations, heap grew %d (total SizeBytes %d)",
		accounted, measured, p.SizeBytes())
}
