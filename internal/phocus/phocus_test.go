package phocus

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"phocus/internal/imagesim"
	"phocus/internal/par"
	"phocus/internal/tagging"
)

// studio builds a small synthetic photo collection over nc categories with
// per-photo titles, k photos per category.
func studio(seed int64, nc, perCat int) ([]Photo, []*imagesim.CategoryModel) {
	rng := rand.New(rand.NewSource(seed))
	cfg := imagesim.DefaultGenConfig()
	names := []string{"shirt", "shoes", "chair", "lamp", "camera", "bike"}
	var photos []Photo
	var cats []*imagesim.CategoryModel
	for c := 0; c < nc; c++ {
		cat := imagesim.NewCategoryModel(rng, names[c%len(names)])
		cats = append(cats, cat)
		for k := 0; k < perCat; k++ {
			img := cat.Generate(rng, len(photos), cfg)
			img.Category = c
			photos = append(photos, Photo{
				Image: img,
				Text:  "photo of a " + cat.Name,
			})
		}
	}
	return photos, cats
}

func TestBuildDirect(t *testing.T) {
	photos, _ := studio(1, 2, 4)
	ds, err := BuildDirect(photos, []SubsetSpec{
		{Name: "first", Weight: 3, Members: []int{0, 1, 2, 3}},
		{Name: "second", Weight: 1, Members: []int{4, 5, 6, 7}, Relevance: []float64{4, 3, 2, 1}},
	}, BuildOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inst := ds.Instance
	if len(inst.Subsets) != 2 || inst.NumPhotos() != 8 {
		t.Fatalf("shape: %d subsets, %d photos", len(inst.Subsets), inst.NumPhotos())
	}
	// Uniform relevance for the first subset.
	for _, r := range inst.Subsets[0].Relevance {
		if math.Abs(r-0.25) > 1e-9 {
			t.Errorf("uniform relevance = %v", inst.Subsets[0].Relevance)
		}
	}
	// Explicit relevance normalized.
	if got := inst.Subsets[1].Relevance[0]; math.Abs(got-0.4) > 1e-9 {
		t.Errorf("normalized relevance[0] = %g, want 0.4", got)
	}
	// Same-category photos must be similar in-context.
	if got := inst.Subsets[0].Sim.Sim(0, 1); got < 0.5 {
		t.Errorf("intra-category contextual sim = %g, want high", got)
	}
}

func TestBuildDirectErrors(t *testing.T) {
	photos, _ := studio(2, 1, 2)
	cases := []struct {
		name    string
		subsets []SubsetSpec
		wantSub string
	}{
		{"relevance mismatch", []SubsetSpec{{Name: "q", Weight: 1, Members: []int{0}, Relevance: []float64{1, 2}}}, "relevance"},
		{"member out of range", []SubsetSpec{{Name: "q", Weight: 1, Members: []int{99}}}, "out of range"},
		{"bad weight", []SubsetSpec{{Name: "q", Weight: 0, Members: []int{0}}}, "weight"},
		{"no subsets", nil, "no non-empty subsets"},
	}
	for _, tc := range cases {
		_, err := BuildDirect(photos, tc.subsets, BuildOptions{})
		if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantSub)
		}
	}
	if _, err := BuildDirect(nil, []SubsetSpec{{Name: "q", Weight: 1}}, BuildOptions{}); err == nil {
		t.Error("no photos accepted")
	}
	broken := []Photo{{Image: nil}}
	if _, err := BuildDirect(broken, []SubsetSpec{{Name: "q", Weight: 1, Members: []int{0}}}, BuildOptions{}); err == nil {
		t.Error("nil image accepted")
	}
}

func TestBuildFromQueries(t *testing.T) {
	photos, _ := studio(3, 3, 5)
	ds, err := BuildFromQueries(photos, []Query{
		{Text: "shirt", Weight: 5},
		{Text: "shoes", Weight: 2},
		{Text: "nonexistent zebra", Weight: 1},
	}, BuildOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ds.Instance.Subsets); got != 2 {
		t.Fatalf("subsets = %d, want 2 (empty query dropped)", got)
	}
	// The shirt subset contains exactly the 5 shirt photos.
	if got := len(ds.Instance.Subsets[0].Members); got != 5 {
		t.Errorf("shirt subset has %d members, want 5", got)
	}
}

func TestBuildFromTags(t *testing.T) {
	photos, cats := studio(4, 3, 6)
	tagger := tagging.New(imagesim.DefaultEmbeddingConfig())
	for ci, cat := range cats {
		var examples []*imagesim.Photo
		for i, p := range photos {
			if p.Image.Category == ci {
				examples = append(examples, photos[i].Image)
			}
		}
		tagger.Learn(cat.Name, examples)
	}
	ds, err := BuildFromTags(photos, tagger, BuildOptions{Seed: 3, MinTagConfidence: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ds.Instance.Subsets); got == 0 {
		t.Fatal("tagging produced no subsets")
	}
	// Heavier tags get heavier weights (weight = tag frequency).
	for _, q := range ds.Instance.Subsets {
		if q.Weight != float64(len(q.Members)) {
			t.Errorf("subset %q weight %g != member count %d", q.Name, q.Weight, len(q.Members))
		}
	}
}

func TestSolveDefaultKeepsEverything(t *testing.T) {
	photos, _ := studio(5, 2, 4)
	ds, err := BuildDirect(photos, []SubsetSpec{
		{Name: "all", Weight: 1, Members: []int{0, 1, 2, 3, 4, 5, 6, 7}},
	}, BuildOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(ds, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solution.Photos) != 8 || len(res.Archived) != 0 {
		t.Fatalf("default budget should keep all: kept %d archived %d",
			len(res.Solution.Photos), len(res.Archived))
	}
	if math.Abs(res.Solution.Score-1) > 1e-9 {
		t.Errorf("score = %g, want 1 (full coverage of unit-weight subset)", res.Solution.Score)
	}
}

func TestSolveWithBudgetAndBound(t *testing.T) {
	photos, _ := studio(6, 3, 5)
	var members []int
	for i := range photos {
		members = append(members, i)
	}
	ds, err := BuildDirect(photos, []SubsetSpec{
		{Name: "a", Weight: 2, Members: members[:10]},
		{Name: "b", Weight: 1, Members: members[5:]},
	}, BuildOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	budget := ds.Instance.TotalCost() * 0.3
	res, err := Solve(ds, SolveOptions{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solution.Cost > budget {
		t.Errorf("cost %.0f exceeds budget %.0f", res.Solution.Cost, budget)
	}
	if len(res.Archived)+len(res.Solution.Photos) != len(photos) {
		t.Error("archived + retained != all photos")
	}
	if res.CertifiedRatio <= 0 || res.CertifiedRatio > 1+1e-9 {
		t.Errorf("certified ratio %g out of range", res.CertifiedRatio)
	}
	if res.OnlineBound < res.Solution.Score-1e-9 {
		t.Errorf("online bound %g below score %g", res.OnlineBound, res.Solution.Score)
	}
}

func TestSolveWithRetained(t *testing.T) {
	photos, _ := studio(7, 2, 5)
	var members []int
	for i := range photos {
		members = append(members, i)
	}
	ds, err := BuildDirect(photos, []SubsetSpec{{Name: "a", Weight: 1, Members: members}}, BuildOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(ds, SolveOptions{
		Budget:   ds.Instance.TotalCost() * 0.4,
		Retained: []par.PhotoID{9},
	})
	if err != nil {
		t.Fatal(err)
	}
	has := false
	for _, p := range res.Solution.Photos {
		if p == 9 {
			has = true
		}
	}
	if !has {
		t.Error("retained photo 9 missing")
	}
}

func TestSolveSparsifiedPaths(t *testing.T) {
	photos, _ := studio(8, 4, 6)
	var members []int
	for i := range photos {
		members = append(members, i)
	}
	ds, err := BuildDirect(photos, []SubsetSpec{
		{Name: "a", Weight: 1, Members: members},
		{Name: "b", Weight: 2, Members: members[:12]},
	}, BuildOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	budget := ds.Instance.TotalCost() * 0.35
	full, err := Solve(ds, SolveOptions{Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	exactSp, err := Solve(ds, SolveOptions{Budget: budget, Tau: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	lshSp, err := Solve(ds, SolveOptions{Budget: budget, Tau: 0.5, UseLSH: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if exactSp.OriginalPairs == 0 || exactSp.SparsifiedPairs > exactSp.OriginalPairs {
		t.Errorf("pair accounting wrong: %d → %d", exactSp.OriginalPairs, exactSp.SparsifiedPairs)
	}
	// Quality after sparsification stays close to the full solve (scores
	// are under the true objective).
	for name, r := range map[string]*Result{"exact-sparsify": exactSp, "lsh-sparsify": lshSp} {
		if r.Solution.Score < 0.8*full.Solution.Score {
			t.Errorf("%s lost too much quality: %.4f vs %.4f", name, r.Solution.Score, full.Solution.Score)
		}
	}
}

func TestSolveAlgorithms(t *testing.T) {
	photos, _ := studio(9, 2, 3)
	ds, err := BuildDirect(photos, []SubsetSpec{
		{Name: "a", Weight: 1, Members: []int{0, 1, 2, 3, 4, 5}},
	}, BuildOptions{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	budget := ds.Instance.TotalCost() * 0.4
	var scores []float64
	for _, algo := range []Algorithm{AlgoCELF, AlgoSviridenko, AlgoExact} {
		res, err := Solve(ds, SolveOptions{Budget: budget, Algorithm: algo})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		scores = append(scores, res.Solution.Score)
	}
	// exact ≥ sviridenko ≥ (1-1/e)·exact; exact ≥ celf.
	exactScore := scores[2]
	if scores[1] > exactScore+1e-9 || scores[0] > exactScore+1e-9 {
		t.Errorf("approximations beat exact: %v", scores)
	}
	if scores[1] < (1-1/math.E)*exactScore-1e-9 {
		t.Errorf("sviridenko %g below guarantee of exact %g", scores[1], exactScore)
	}
	if _, err := Solve(ds, SolveOptions{Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
