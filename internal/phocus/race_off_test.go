//go:build !race

package phocus

const raceEnabled = false
