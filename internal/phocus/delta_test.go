package phocus

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"phocus/internal/dataset"
	"phocus/internal/par"
)

// randomChurn builds a valid churn batch against the current state of inst:
// nRemove removals (never retained photos, never the last live relevance
// mass of a subset), nAdd added photos with memberships and explicit
// similarity rows, and optionally one new subset mixing existing and added
// photos. The generated delta passes resolveDelta by construction.
func randomChurn(rng *rand.Rand, inst *par.Instance, removed []bool, nRemove, nAdd int, newSub bool) *Delta {
	d := &Delta{}
	n := inst.NumPhotos()
	dead := func(p par.PhotoID) bool { return isRemoved(removed, p) }
	pending := map[par.PhotoID]bool{}

	// Live relevance-mass counts per subset guard the zero-mass validation.
	liveMass := make([]int, len(inst.Subsets))
	for qi := range inst.Subsets {
		q := &inst.Subsets[qi]
		for mi, p := range q.Members {
			if !dead(p) && q.Relevance[mi] > 0 {
				liveMass[qi]++
			}
		}
	}
	for tries := 0; len(d.Remove) < nRemove && tries < 50*nRemove; tries++ {
		p := par.PhotoID(rng.Intn(n))
		if dead(p) || pending[p] || inst.IsRetained(p) {
			continue
		}
		ok := true
		for _, oc := range inst.Occurrences(p) {
			if inst.Subsets[oc.Subset].Relevance[oc.Index] > 0 && liveMass[oc.Subset] < 2 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, oc := range inst.Occurrences(p) {
			if inst.Subsets[oc.Subset].Relevance[oc.Index] > 0 {
				liveMass[oc.Subset]--
			}
		}
		pending[p] = true
		d.Remove = append(d.Remove, p)
	}

	// addedTo tracks batch additions per subset so later adds can neighbor
	// earlier ones (exercising the earlier-batch-member resolution path).
	addedTo := map[int][]par.PhotoID{}
	for i := 0; i < nAdd; i++ {
		photo := par.PhotoID(n + i)
		ap := DeltaPhoto{Cost: 0.5 + 2*rng.Float64()}
		nq := 1 + rng.Intn(3)
		if nq > len(inst.Subsets) {
			nq = len(inst.Subsets)
		}
		qs := rng.Perm(len(inst.Subsets))[:nq]
		sort.Ints(qs)
		for _, qi := range qs {
			m := DeltaMembership{Subset: qi, Relevance: 0.1 + rng.Float64()}
			q := &inst.Subsets[qi]
			for _, p := range q.Members {
				if dead(p) || pending[p] {
					continue
				}
				if rng.Float64() < 0.5 {
					m.Neighbors = append(m.Neighbors, DeltaNeighbor{Photo: p, Sim: 0.05 + 0.9*rng.Float64()})
				}
			}
			for _, p := range addedTo[qi] {
				if rng.Float64() < 0.5 {
					m.Neighbors = append(m.Neighbors, DeltaNeighbor{Photo: p, Sim: 0.05 + 0.9*rng.Float64()})
				}
			}
			addedTo[qi] = append(addedTo[qi], photo)
			ap.Memberships = append(ap.Memberships, m)
		}
		d.Add = append(d.Add, ap)
	}

	if newSub {
		var pool []par.PhotoID
		for p := 0; p < n; p++ {
			if id := par.PhotoID(p); !dead(id) && !pending[id] {
				pool = append(pool, id)
			}
		}
		var members []par.PhotoID
		for _, i := range rng.Perm(len(pool)) {
			members = append(members, pool[i])
			if len(members) == 3 {
				break
			}
		}
		for i := 0; i < nAdd && i < 2; i++ {
			members = append(members, par.PhotoID(n+i))
		}
		if len(members) > 0 {
			ns := DeltaSubset{Name: "churn", Weight: 0.5 + rng.Float64()}
			for pos, p := range members {
				m := DeltaSubsetMember{Photo: p, Relevance: 0.2 + rng.Float64()}
				for _, earlier := range members[:pos] {
					if rng.Float64() < 0.7 {
						m.Neighbors = append(m.Neighbors, DeltaNeighbor{Photo: earlier, Sim: 0.05 + 0.9*rng.Float64()})
					}
				}
				ns.Members = append(ns.Members, m)
			}
			d.NewSubsets = []DeltaSubset{ns}
		}
	}
	return d
}

// requireSameRun runs both Prepared values under identical options and
// requires bit-identical selections and scores.
func requireSameRun(t *testing.T, label string, live, cold *Prepared, budget float64, algo Algorithm) {
	t.Helper()
	ctx := context.Background()
	opts := RunOptions{Budget: budget, Algorithm: algo, Workers: 1}
	rl, err := live.Run(ctx, opts)
	if err != nil {
		t.Fatalf("%s: live Run(%s): %v", label, algo, err)
	}
	rc, err := cold.Run(ctx, opts)
	if err != nil {
		t.Fatalf("%s: cold Run(%s): %v", label, algo, err)
	}
	if rl.Solution.Score != rc.Solution.Score {
		t.Fatalf("%s: %s score live %v != cold %v", label, algo, rl.Solution.Score, rc.Solution.Score)
	}
	if len(rl.Solution.Photos) != len(rc.Solution.Photos) {
		t.Fatalf("%s: %s selected %d photos live vs %d cold", label, algo, len(rl.Solution.Photos), len(rc.Solution.Photos))
	}
	for i := range rl.Solution.Photos {
		if rl.Solution.Photos[i] != rc.Solution.Photos[i] {
			t.Fatalf("%s: %s selection diverged at %d: live %v cold %v",
				label, algo, i, rl.Solution.Photos, rc.Solution.Photos)
		}
	}
	if rl.OnlineBound != rc.OnlineBound {
		t.Fatalf("%s: %s online bound live %v != cold %v", label, algo, rl.OnlineBound, rc.OnlineBound)
	}
}

// TestApplyDeltaMatchesColdPrepare is the differential gate of the delta
// path: after every batch of churn, the incrementally maintained Prepared
// must produce bit-identical Run selections to a cold Prepare over the
// merged (post-churn) instance — with and without τ-sparsification, under
// the production solver and the streaming fallback.
func TestApplyDeltaMatchesColdPrepare(t *testing.T) {
	ctx := context.Background()
	for _, tau := range []float64{0, 0.35} {
		for seed := int64(1); seed <= 5; seed++ {
			t.Run(fmt.Sprintf("tau=%v/seed=%d", tau, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				inst := par.Random(rng, par.RandomConfig{
					Photos: 40, Subsets: 12, BudgetFrac: 0.4, RetainFrac: 0.1, SimDensity: 0.6,
				})
				opts := PrepareOptions{Tau: tau, Workers: 1, InstanceDigest: fmt.Sprintf("delta-%v-%d", tau, seed)}
				live, err := Prepare(ctx, &dataset.Dataset{Instance: inst}, opts)
				if err != nil {
					t.Fatal(err)
				}
				merged := inst
				var removed []bool
				for batch := 0; batch < 3; batch++ {
					d := randomChurn(rng, live.base, removed, 2, 2, batch == 1)
					stats, err := live.ApplyDelta(ctx, d)
					if err != nil {
						t.Fatalf("batch %d: ApplyDelta: %v", batch, err)
					}
					if stats.NewFingerprint == stats.OldFingerprint {
						t.Fatalf("batch %d: fingerprint did not evolve", batch)
					}
					if fp, _ := live.Fingerprint(); fp != stats.NewFingerprint {
						t.Fatalf("batch %d: Fingerprint() %s != stats %s", batch, fp, stats.NewFingerprint)
					}
					merged, removed, err = MergeDelta(merged, removed, d)
					if err != nil {
						t.Fatalf("batch %d: MergeDelta: %v", batch, err)
					}
					cold, err := Prepare(ctx, &dataset.Dataset{Instance: merged}, opts)
					if err != nil {
						t.Fatalf("batch %d: cold Prepare: %v", batch, err)
					}
					if live.NumPhotos() != cold.NumPhotos() {
						t.Fatalf("batch %d: live %d photos, cold %d", batch, live.NumPhotos(), cold.NumPhotos())
					}
					if live.TotalCost() != cold.TotalCost() {
						t.Fatalf("batch %d: total cost live %v cold %v", batch, live.TotalCost(), cold.TotalCost())
					}
					label := fmt.Sprintf("batch %d", batch)
					budget := 0.35 * merged.TotalCost()
					requireSameRun(t, label, live, cold, budget, AlgoCELF)
					requireSameRun(t, label, live, cold, budget, AlgoStreaming)
				}
			})
		}
	}
}

// TestApplyDeltaCompaction drives enough removal churn to trip the automatic
// kernel compaction, then requires the canonical layout back and continued
// differential equality — compaction must be invisible to solve results.
func TestApplyDeltaCompaction(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(11))
	inst := par.Random(rng, par.RandomConfig{
		Photos: 30, Subsets: 8, BudgetFrac: 0.5, SimDensity: 0.9, MaxSubset: 12,
	})
	opts := PrepareOptions{Tau: 0.2, Workers: 1, InstanceDigest: "compaction"}
	live, err := Prepare(ctx, &dataset.Dataset{Instance: inst}, opts)
	if err != nil {
		t.Fatal(err)
	}
	merged := inst
	var removed []bool
	compacted := false
	for batch := 0; batch < 10 && !compacted; batch++ {
		d := randomChurn(rng, live.base, removed, 3, 0, false)
		if len(d.Remove) == 0 {
			break
		}
		stats, err := live.ApplyDelta(ctx, d)
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if merged, removed, err = MergeDelta(merged, removed, d); err != nil {
			t.Fatalf("batch %d: MergeDelta: %v", batch, err)
		}
		compacted = compacted || stats.Compacted
	}
	if !compacted {
		t.Fatal("removal churn never triggered a compaction")
	}
	if !live.kernBase.Canonical() {
		t.Fatal("base kernel not canonical after compaction")
	}
	if live.kernSolve != nil && !live.kernSolve.Canonical() {
		t.Fatal("solve kernel not canonical after compaction")
	}
	if lf := live.LiveFraction(); lf != 1 {
		t.Fatalf("LiveFraction = %v after compaction, want 1", lf)
	}
	cold, err := Prepare(ctx, &dataset.Dataset{Instance: merged}, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRun(t, "post-compaction", live, cold, 0.4*merged.TotalCost(), AlgoCELF)

	// Churn after a compaction starts a fresh overlay and must still match.
	d := randomChurn(rng, live.base, removed, 1, 2, true)
	if _, err := live.ApplyDelta(ctx, d); err != nil {
		t.Fatal(err)
	}
	if merged, removed, err = MergeDelta(merged, removed, d); err != nil {
		t.Fatal(err)
	}
	_ = removed
	cold, err = Prepare(ctx, &dataset.Dataset{Instance: merged}, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRun(t, "post-compaction churn", live, cold, 0.4*merged.TotalCost(), AlgoCELF)
}

// TestApplyDeltaValidation checks that malformed deltas are rejected without
// mutating the Prepared: fingerprint and solve results stay untouched.
func TestApplyDeltaValidation(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	inst := par.Random(rng, par.RandomConfig{
		Photos: 16, Subsets: 5, BudgetFrac: 0.5, RetainFrac: 0.25, SimDensity: 0.7,
	})
	if len(inst.Retained) == 0 {
		t.Fatal("test instance needs a retained photo")
	}
	opts := PrepareOptions{Workers: 1, InstanceDigest: "validation"}
	p, err := Prepare(ctx, &dataset.Dataset{Instance: inst}, opts)
	if err != nil {
		t.Fatal(err)
	}
	fp0, err := p.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Run(ctx, RunOptions{Budget: 0.4 * inst.TotalCost(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// A non-retained photo and one of its subsets, for the husk-neighbor case.
	var victim par.PhotoID = -1
	var victimSubset int
	for q := range inst.Subsets {
		for _, m := range inst.Subsets[q].Members {
			if !inst.IsRetained(m) {
				victim, victimSubset = m, q
				break
			}
		}
		if victim >= 0 {
			break
		}
	}

	cases := []struct {
		name string
		d    *Delta
	}{
		{"empty", &Delta{}},
		{"unknown-remove", &Delta{Remove: []par.PhotoID{99}}},
		{"duplicate-remove", &Delta{Remove: []par.PhotoID{victim, victim}}},
		{"retained-remove", &Delta{Remove: []par.PhotoID{inst.Retained[0]}}},
		{"zero-cost", &Delta{Add: []DeltaPhoto{{Cost: 0}}}},
		{"unknown-subset", &Delta{Add: []DeltaPhoto{{Cost: 1,
			Memberships: []DeltaMembership{{Subset: 77, Relevance: 1}}}}}},
		{"descending-memberships", &Delta{Add: []DeltaPhoto{{Cost: 1,
			Memberships: []DeltaMembership{{Subset: 1, Relevance: 1}, {Subset: 0, Relevance: 1}}}}}},
		{"zero-relevance", &Delta{Add: []DeltaPhoto{{Cost: 1,
			Memberships: []DeltaMembership{{Subset: 0, Relevance: 0}}}}}},
		{"sim-out-of-range", &Delta{Add: []DeltaPhoto{{Cost: 1,
			Memberships: []DeltaMembership{{Subset: victimSubset, Relevance: 1,
				Neighbors: []DeltaNeighbor{{Photo: victim, Sim: 1.5}}}}}}}},
		{"husk-neighbor", &Delta{
			Remove: []par.PhotoID{victim},
			Add: []DeltaPhoto{{Cost: 1,
				Memberships: []DeltaMembership{{Subset: victimSubset, Relevance: 1,
					Neighbors: []DeltaNeighbor{{Photo: victim, Sim: 0.5}}}}}}}},
		{"non-member-neighbor", &Delta{Add: []DeltaPhoto{{Cost: 1,
			Memberships: []DeltaMembership{{Subset: victimSubset, Relevance: 1,
				Neighbors: []DeltaNeighbor{{Photo: 999, Sim: 0.5}}}}}}}},
		{"empty-new-subset", &Delta{NewSubsets: []DeltaSubset{{Name: "x", Weight: 1}}}},
		{"new-subset-dup-member", &Delta{NewSubsets: []DeltaSubset{{Name: "x", Weight: 1,
			Members: []DeltaSubsetMember{{Photo: 0, Relevance: 1}, {Photo: 0, Relevance: 1}}}}}},
	}
	for _, tc := range cases {
		if _, err := p.ApplyDelta(ctx, tc.d); err == nil {
			t.Errorf("%s: ApplyDelta succeeded, want error", tc.name)
		}
	}
	if fp, _ := p.Fingerprint(); fp != fp0 {
		t.Fatalf("fingerprint changed after rejected deltas: %s -> %s", fp0, fp)
	}
	after, err := p.Run(ctx, RunOptions{Budget: 0.4 * inst.TotalCost(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if after.Solution.Score != base.Solution.Score || len(after.Solution.Photos) != len(base.Solution.Photos) {
		t.Fatal("rejected deltas changed solve results")
	}
}

// TestApplyDeltaLSHRejected pins the LSH guard: delta maintenance cannot
// extend an LSH-prepared instance (its candidate structure derives from
// context vectors the Prepared does not retain).
func TestApplyDeltaLSHRejected(t *testing.T) {
	ctx := context.Background()
	ds, err := dataset.GeneratePublic(dataset.PublicSpecs(0.01)[0])
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prepare(ctx, ds, PrepareOptions{Tau: 0.3, UseLSH: true, Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ApplyDelta(ctx, &Delta{Remove: []par.PhotoID{0}}); err != ErrDeltaLSH {
		t.Fatalf("err = %v, want ErrDeltaLSH", err)
	}
}

// TestDeltaFingerprintDeterministic pins the fingerprint evolution chain:
// equal starting fingerprints plus equal deltas give equal evolved
// fingerprints, and the digest is order-sensitive.
func TestDeltaFingerprintDeterministic(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(9))
	inst := par.Random(rng, par.RandomConfig{Photos: 20, Subsets: 6, BudgetFrac: 0.5, SimDensity: 0.6})
	opts := PrepareOptions{Workers: 1, InstanceDigest: "fp-determinism"}
	d := randomChurn(rng, inst, nil, 2, 1, false)

	var fps []string
	for i := 0; i < 2; i++ {
		p, err := Prepare(ctx, &dataset.Dataset{Instance: inst}, opts)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := p.ApplyDelta(ctx, d)
		if err != nil {
			t.Fatal(err)
		}
		fps = append(fps, stats.NewFingerprint)
	}
	if fps[0] != fps[1] {
		t.Fatalf("same delta on same instance evolved different fingerprints: %s vs %s", fps[0], fps[1])
	}
	if len(d.Remove) >= 2 {
		swapped := *d
		swapped.Remove = []par.PhotoID{d.Remove[1], d.Remove[0]}
		if swapped.Digest() == d.Digest() {
			t.Fatal("digest ignores removal order")
		}
	}
}

// TestPublicChurnDifferential is the acceptance gate at benchmark scale: 1%
// churn on the P-100K public shape, then identical Run selections between
// the delta-updated Prepared and a cold Prepare over the merged dataset.
func TestPublicChurnDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("P-100K differential gate skipped in -short")
	}
	ctx := context.Background()
	spec := dataset.PublicSpecs(0.05)[4] // P-100K shape, 5000 photos
	ds, err := dataset.GeneratePublic(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts := PrepareOptions{Tau: 0.4, Workers: 1, InstanceDigest: "churn-gate"}
	live, err := Prepare(ctx, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	churn := spec.NumPhotos / 200 // 0.5% removals + 0.5% additions = 1% churn
	d := randomChurn(rng, live.base, nil, churn, churn, true)
	stats, err := live.ApplyDelta(ctx, d)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("applied %d removals, %d additions in %v (live fraction %.3f, compacted %v)",
		stats.Removed, stats.Added, stats.ApplyTime, stats.LiveFraction, stats.Compacted)
	merged, _, err := MergeDelta(ds.Instance, nil, d)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Prepare(ctx, &dataset.Dataset{Instance: merged}, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRun(t, "P-100K 1% churn", live, cold, 0.35*merged.TotalCost(), AlgoCELF)
}
