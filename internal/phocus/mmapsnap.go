// mmap-backed snapshot loading. LoadSnapshotMapped maps the snapshot file
// instead of reading it into the heap, so a warm restart's load cost is the
// header + section checksums over page-cache reads rather than a full-file
// copy, and the slabs of many cached Prepared values share the page cache
// instead of each owning a heap twin.
//
// Lifetime rules (see DESIGN.md §12):
//
//   - Every slab-touching operation on a Prepared (Run/RunInto,
//     EncodeSnapshot, ApplyDelta, View, Tune) pins the mapping for its
//     duration. ReleaseMapping — called by PreparedCache when the last
//     reference to an mmap-backed entry leaves the cache — marks the mapping
//     released immediately but unmaps only once the pin count drains, so a
//     mid-solve eviction can never pull pages out from under a live scan.
//   - Once released, pinned operations fail fast with ErrSnapshotUnmapped;
//     callers (phocus-server's solve path) re-prepare and retry.
//   - The mapping is MAP_PRIVATE with write permission: delta maintenance
//     tombstones kernel rows and rewrites W·R slabs in place, which
//     copy-on-writes the touched pages without ever dirtying the file.
//   - SIGBUS cannot arise from the store's own lifecycle: DecodeSnapshot
//     bounds every section against the length fstat'd at map time, and
//     SnapshotStore replaces snapshots via temp+rename (a new inode) and
//     removes them via unlink, so a mapped inode is never truncated in
//     place. A file truncated before mapping fails decode cleanly.
package phocus

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"
)

// ErrSnapshotUnmapped is returned by operations on an mmap-backed Prepared
// whose mapping has been released (its last cache reference was evicted).
// The value is stale by definition; callers should drop it and re-prepare.
var ErrSnapshotUnmapped = errors.New("phocus: snapshot mapping released")

// snapMapping tracks one mmap'd snapshot region and the pins that keep it
// alive across a release request.
type snapMapping struct {
	mu      sync.Mutex
	buf     []byte
	path    string
	pins    int
	evicted bool // release requested; unmap when pins drain
	mapped  bool
}

func (m *snapMapping) pin() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.mapped || m.evicted {
		return ErrSnapshotUnmapped
	}
	m.pins++
	return nil
}

func (m *snapMapping) unpin() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pins--
	if m.evicted && m.pins == 0 && m.mapped {
		m.unmapLocked()
	}
}

func (m *snapMapping) release() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.evicted = true
	if m.pins == 0 && m.mapped {
		m.unmapLocked()
	}
}

func (m *snapMapping) unmapLocked() {
	// A munmap failure leaves the pages mapped but unreferenced; there is no
	// recovery beyond not touching them again, which the flags guarantee.
	_ = munmapBuf(m.buf)
	m.buf = nil
	m.mapped = false
	runtime.SetFinalizer(m, nil)
}

// pin marks the start of a slab-touching operation. Heap-backed Prepared
// values (mm == nil) always succeed.
func (p *Prepared) pin() error {
	if p.mm == nil {
		return nil
	}
	return p.mm.pin()
}

func (p *Prepared) unpin() {
	if p.mm != nil {
		p.mm.unpin()
	}
}

// ReleaseMapping releases the snapshot mapping backing an mmap-loaded
// Prepared: new slab accesses fail with ErrSnapshotUnmapped immediately, and
// the pages are unmapped as soon as the last in-flight pinned operation
// finishes. PreparedCache calls it when the last reference to an mmap-backed
// entry leaves the cache; on heap-backed values it is a no-op.
func (p *Prepared) ReleaseMapping() {
	if p.mm != nil {
		p.mm.release()
	}
}

// MappedBytes reports how many of SizeBytes' bytes are backed by the mmap'd
// snapshot file (0 for heap-backed values and once released). Those bytes
// live in the page cache, not the Go heap, so PreparedCache charges
// SizeBytes − MappedBytes against its byte bound.
func (p *Prepared) MappedBytes() int64 {
	if p.mm == nil {
		return 0
	}
	p.mm.mu.Lock()
	defer p.mm.mu.Unlock()
	if !p.mm.mapped {
		return 0
	}
	return int64(len(p.mm.buf))
}

// LoadSnapshotMapped is LoadSnapshot through a private file mapping instead
// of a heap read. On platforms without mmap support, or when the mapping
// itself fails, it falls back to the heap path — the returned Prepared
// behaves identically either way (the fallback just reports MappedBytes 0
// and never returns ErrSnapshotUnmapped).
func LoadSnapshotMapped(path string) (*Prepared, error) {
	if !mmapSupported {
		return LoadSnapshot(path)
	}
	t0 := time.Now()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("phocus: snapshot %s is empty: %w", path, ErrBadSnapshot)
	}
	if size > 1<<40 {
		return nil, fmt.Errorf("phocus: snapshot %s is %d bytes: %w", path, size, ErrBadSnapshot)
	}
	buf, err := mmapFile(f, size)
	if err != nil {
		return LoadSnapshot(path)
	}
	p, err := DecodeSnapshot(buf)
	if err != nil {
		_ = munmapBuf(buf)
		return nil, err
	}
	mm := &snapMapping{buf: buf, path: path, mapped: true}
	p.mm = mm
	// Backstop: a Prepared dropped without ever entering the reference-
	// tracked cache (error paths, tests) must not leak its mapping for the
	// life of the process.
	runtime.SetFinalizer(mm, (*snapMapping).release)
	p.PrepTime = time.Since(t0)
	return p, nil
}
