//go:build race

package phocus

// raceEnabled lets timing-sensitive tests skip themselves under the race
// detector, whose instrumentation skews wall-clock ratios.
const raceEnabled = true
