//go:build !linux && !darwin

package phocus

import (
	"errors"
	"os"
)

const mmapSupported = false

func mmapFile(_ *os.File, _ int64) ([]byte, error) {
	return nil, errors.New("phocus: mmap is not supported on this platform")
}

func munmapBuf(_ []byte) error { return nil }
