package phocus

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"phocus/internal/dataset"
	"phocus/internal/par"
)

// preparedFixture builds a small Prepared for cache tests.
func preparedFixture(t *testing.T) *Prepared {
	t.Helper()
	inst := par.Figure1Instance()
	p, err := Prepare(context.Background(), &dataset.Dataset{Instance: inst}, PrepareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPreparedCacheEntryBound(t *testing.T) {
	p := preparedFixture(t)
	c := NewPreparedCache(2, 0)
	c.Put("a", p)
	c.Put("b", p)
	if evicted := c.Put("c", p); evicted != 1 {
		t.Fatalf("evicted = %d, want 1", evicted)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// "a" is the oldest and must be the victim.
	if _, ok := c.Get("a"); ok {
		t.Error("oldest entry survived eviction")
	}
	for _, key := range []string{"b", "c"} {
		if _, ok := c.Get(key); !ok {
			t.Errorf("entry %q missing", key)
		}
	}
}

func TestPreparedCacheLRUOrder(t *testing.T) {
	p := preparedFixture(t)
	c := NewPreparedCache(2, 0)
	c.Put("a", p)
	c.Put("b", p)
	if _, ok := c.Get("a"); !ok { // refresh "a": now "b" is the LRU victim
		t.Fatal("warm entry missing")
	}
	c.Put("c", p)
	if _, ok := c.Get("b"); ok {
		t.Error("refreshed entry evicted instead of the stale one")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used entry evicted")
	}
}

func TestPreparedCacheByteBound(t *testing.T) {
	p := preparedFixture(t)
	size := p.SizeBytes()
	if size <= 0 {
		t.Fatalf("SizeBytes = %d, want positive", size)
	}
	// Room for exactly two entries.
	c := NewPreparedCache(0, 2*size)
	c.Put("a", p)
	c.Put("b", p)
	if c.UsedBytes() != 2*size {
		t.Fatalf("UsedBytes = %d, want %d", c.UsedBytes(), 2*size)
	}
	if evicted := c.Put("c", p); evicted != 1 {
		t.Fatalf("evicted = %d, want 1", evicted)
	}
	if c.UsedBytes() > 2*size {
		t.Fatalf("UsedBytes = %d exceeds bound %d", c.UsedBytes(), 2*size)
	}
	// A value that alone exceeds the byte bound is never admitted.
	tiny := NewPreparedCache(0, size-1)
	if evicted := tiny.Put("huge", p); evicted != 0 {
		t.Fatalf("oversize Put evicted %d", evicted)
	}
	if tiny.Len() != 0 {
		t.Error("oversize value admitted")
	}
}

func TestPreparedCacheStats(t *testing.T) {
	p := preparedFixture(t)
	c := NewPreparedCache(1, 0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", p)
	c.Get("a")
	c.Put("b", p) // evicts "a"
	c.Get("a")
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 2 misses / 1 eviction", st)
	}
}

func TestPreparedCacheUnbounded(t *testing.T) {
	p := preparedFixture(t)
	c := NewPreparedCache(0, 0)
	for i := 0; i < 100; i++ {
		if evicted := c.Put(fmt.Sprint(i), p); evicted != 0 {
			t.Fatalf("unbounded cache evicted at %d", i)
		}
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d, want 100", c.Len())
	}
}

// TestGetOrPrepareSingleflight: concurrent GetOrPrepare calls for one key
// run prepare exactly once — the burst pattern the async job queue
// produces when many jobs target the same archive.
func TestGetOrPrepareSingleflight(t *testing.T) {
	p := preparedFixture(t)
	c := NewPreparedCache(4, 0)
	var prepares atomic.Int64
	gate := make(chan struct{})
	const callers = 8
	results := make(chan bool, callers) // hit flags
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, hit, _, err := c.GetOrPrepare("k", func() (*Prepared, error) {
				prepares.Add(1)
				<-gate // hold the flight open so every caller joins it
				return p, nil
			})
			if err != nil || got != p {
				t.Errorf("GetOrPrepare: %v %v", got, err)
			}
			results <- hit
		}()
	}
	// Wait for the flight owner to start, then let everyone through.
	deadline := time.Now().Add(5 * time.Second)
	for prepares.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	close(results)

	if n := prepares.Load(); n != 1 {
		t.Fatalf("prepare ran %d times for one key, want 1", n)
	}
	misses := 0
	for hit := range results {
		if !hit {
			misses++
		}
	}
	// Exactly the flight owner is a miss; joiners avoided a prepare.
	if misses != 1 {
		t.Errorf("%d misses across the burst, want 1", misses)
	}
	// The value landed in the cache for later callers.
	if got, ok := c.Get("k"); !ok || got != p {
		t.Error("singleflight result not cached")
	}
}

// TestGetOrPrepareErrorNotCached: a failed prepare propagates to every
// waiter of the flight and leaves the cache empty, so the next caller
// retries instead of being served a poisoned entry.
func TestGetOrPrepareErrorNotCached(t *testing.T) {
	c := NewPreparedCache(4, 0)
	boom := fmt.Errorf("prepare exploded")
	calls := 0
	_, _, _, err := c.GetOrPrepare("k", func() (*Prepared, error) {
		calls++
		return nil, boom
	})
	if err != boom {
		t.Fatalf("err %v, want the prepare error", err)
	}
	if c.Len() != 0 {
		t.Fatal("error was cached")
	}
	// The next call retries and can succeed.
	p := preparedFixture(t)
	got, hit, _, err := c.GetOrPrepare("k", func() (*Prepared, error) {
		calls++
		return p, nil
	})
	if err != nil || got != p || hit {
		t.Fatalf("retry after error: %v %v hit=%v", got, err, hit)
	}
	if calls != 2 {
		t.Fatalf("prepare calls %d, want 2", calls)
	}
}
