package phocus

import (
	"context"
	"time"

	"phocus/internal/dataset"
	"phocus/internal/par"
)

// Algorithm selects the optimization algorithm of the Solver stage.
type Algorithm string

const (
	// AlgoCELF is the production solver (Algorithm 1): lazy greedy, best of
	// UC and CB, (1−1/e)/2 guarantee.
	AlgoCELF Algorithm = "celf"
	// AlgoSviridenko is the (1−1/e) partial-enumeration solver; Ω(n⁴), use
	// on small instances only.
	AlgoSviridenko Algorithm = "sviridenko"
	// AlgoExact is the branch-and-bound optimum; exponential worst case.
	AlgoExact Algorithm = "exact"
	// AlgoStreaming is the two-pass sieve-streaming solver: constant memory
	// per OPT guess, one gain evaluation per streamed photo — the
	// large-instance fallback when even the lazy-greedy queue is too big.
	AlgoStreaming Algorithm = "streaming"
)

// DisplayName returns the algorithm's report name ("PHOcus", "Sviridenko",
// "Brute-Force"); unknown values default to the CELF name.
func (a Algorithm) DisplayName() string {
	switch a {
	case AlgoSviridenko:
		return "Sviridenko"
	case AlgoExact:
		return "Brute-Force"
	case AlgoStreaming:
		return "Sieve-Streaming"
	default:
		return "PHOcus"
	}
}

// SolveOptions configures a Solver run.
type SolveOptions struct {
	// Budget is B in bytes. Zero means "keep everything" (budget = total
	// cost).
	Budget float64
	// Retained is S0 (photo IDs that must be kept).
	Retained []par.PhotoID
	// Algorithm defaults to AlgoCELF.
	Algorithm Algorithm
	// Tau enables τ-sparsification when positive.
	Tau float64
	// UseLSH selects SimHash candidate generation for the sparsification
	// (requires the dataset to carry CtxVectors, which all builders and
	// generators populate; Solve fails with ErrNoCtxVectors otherwise).
	UseLSH bool
	// Seed drives LSH randomness.
	Seed int64
	// SkipBound disables the a-posteriori online-bound computation (it
	// costs one marginal-gain pass over all photos).
	SkipBound bool
	// Workers bounds the pipeline's parallelism: sparsification fans out per
	// subset and the CELF solver runs its sub-procedures concurrently with
	// batched gain recomputation. Values ≤ 0 mean one worker per CPU
	// (runtime.GOMAXPROCS(0)); 1 forces the fully sequential path. Results
	// are identical for every worker count.
	Workers int
}

// Result is the outcome of a Solver run.
type Result struct {
	// Algorithm is the report name of the solver that ran ("PHOcus", ...).
	Algorithm string
	// Solution is the retained photo set with its score under the TRUE
	// (unsparsified) objective and its byte cost.
	Solution par.Solution
	// Archived lists the photos NOT retained, i.e. the disposal/archival
	// set.
	Archived []par.PhotoID
	// OnlineBound is the upper bound on OPT (0 when skipped).
	OnlineBound float64
	// CertifiedRatio = Score/OnlineBound, a lower bound on the true
	// performance ratio (0 when skipped).
	CertifiedRatio float64
	// SparsifiedPairs / OriginalPairs report how much τ-sparsification
	// shrank the similarity structure. On the LSH path OriginalPairs counts
	// only the candidate pairs with positive true similarity — a lower bound
	// on the full pair count, which LSH never enumerates.
	OriginalPairs, SparsifiedPairs int
	// PrepTime covers the Data Representation stage (finalize +
	// sparsification), SolveTime the optimization.
	PrepTime, SolveTime time.Duration
}

// Solve runs the full pipeline of Figure 4 once on a prepared dataset: the
// compatibility wrapper over Prepare + Run for one-shot callers. Callers
// that solve the same dataset repeatedly (budget sweeps, per-request
// serving) should Prepare once and Run many times instead.
func Solve(ds *dataset.Dataset, opts SolveOptions) (*Result, error) {
	return SolveContext(context.Background(), ds, opts)
}

// SolveContext is Solve with cooperative cancellation, forwarded into the
// sparsifier-side stage boundaries and the solver's inner loop.
func SolveContext(ctx context.Context, ds *dataset.Dataset, opts SolveOptions) (*Result, error) {
	p, err := Prepare(ctx, ds, PrepareOptions{
		Retained: opts.Retained,
		Tau:      opts.Tau,
		UseLSH:   opts.UseLSH,
		Seed:     opts.Seed,
		Workers:  opts.Workers,
	})
	if err != nil {
		return nil, err
	}
	return p.Run(ctx, RunOptions{
		Budget:    opts.Budget,
		Algorithm: opts.Algorithm,
		SkipBound: opts.SkipBound,
		Workers:   opts.Workers,
	})
}
