package phocus

import (
	"fmt"
	"math/rand"
	"time"

	"phocus/internal/celf"
	"phocus/internal/dataset"
	"phocus/internal/exact"
	"phocus/internal/par"
	"phocus/internal/sparsify"
	"phocus/internal/sviridenko"
)

// Algorithm selects the optimization algorithm of the Solver stage.
type Algorithm string

const (
	// AlgoCELF is the production solver (Algorithm 1): lazy greedy, best of
	// UC and CB, (1−1/e)/2 guarantee.
	AlgoCELF Algorithm = "celf"
	// AlgoSviridenko is the (1−1/e) partial-enumeration solver; Ω(n⁴), use
	// on small instances only.
	AlgoSviridenko Algorithm = "sviridenko"
	// AlgoExact is the branch-and-bound optimum; exponential worst case.
	AlgoExact Algorithm = "exact"
)

// SolveOptions configures a Solver run.
type SolveOptions struct {
	// Budget is B in bytes. Zero means "keep everything" (budget = total
	// cost).
	Budget float64
	// Retained is S0 (photo IDs that must be kept).
	Retained []par.PhotoID
	// Algorithm defaults to AlgoCELF.
	Algorithm Algorithm
	// Tau enables τ-sparsification when positive.
	Tau float64
	// UseLSH selects SimHash candidate generation for the sparsification
	// (requires the dataset to carry CtxVectors, which all builders and
	// generators populate).
	UseLSH bool
	// Seed drives LSH randomness.
	Seed int64
	// SkipBound disables the a-posteriori online-bound computation (it
	// costs one marginal-gain pass over all photos).
	SkipBound bool
	// Workers bounds the pipeline's parallelism: sparsification fans out per
	// subset and the CELF solver runs its sub-procedures concurrently with
	// batched gain recomputation. Values ≤ 0 mean one worker per CPU
	// (runtime.GOMAXPROCS(0)); 1 forces the fully sequential path. Results
	// are identical for every worker count.
	Workers int
}

// Result is the outcome of a Solver run.
type Result struct {
	// Solution is the retained photo set with its score under the TRUE
	// (unsparsified) objective and its byte cost.
	Solution par.Solution
	// Archived lists the photos NOT retained, i.e. the disposal/archival
	// set.
	Archived []par.PhotoID
	// OnlineBound is the upper bound on OPT (0 when skipped).
	OnlineBound float64
	// CertifiedRatio = Score/OnlineBound, a lower bound on the true
	// performance ratio (0 when skipped).
	CertifiedRatio float64
	// SparsifiedPairs / OriginalPairs report how much τ-sparsification
	// shrank the similarity structure. On the LSH path OriginalPairs counts
	// only the candidate pairs with positive true similarity — a lower bound
	// on the full pair count, which LSH never enumerates.
	OriginalPairs, SparsifiedPairs int
	// PrepTime covers sparsification, SolveTime the optimization.
	PrepTime, SolveTime time.Duration
}

// Solve runs the Solver stage of Figure 4 on a prepared dataset.
func Solve(ds *dataset.Dataset, opts SolveOptions) (*Result, error) {
	inst := ds.Instance
	budget := opts.Budget
	if budget == 0 {
		budget = inst.TotalCost()
	}
	// Work on a shallow copy so concurrent/solver-comparing callers can
	// reuse the dataset with different budgets.
	work := &par.Instance{
		Cost:     inst.Cost,
		Retained: opts.Retained,
		Budget:   budget,
		Subsets:  inst.Subsets,
	}
	if err := work.Finalize(); err != nil {
		return nil, fmt.Errorf("phocus: %w", err)
	}

	res := &Result{}
	solveInst := work
	if opts.Tau > 0 {
		t0 := time.Now()
		var sres sparsify.Result
		var err error
		if opts.UseLSH {
			rng := rand.New(rand.NewSource(opts.Seed))
			sres, err = sparsify.WithLSHWorkers(rng, work, ds.CtxVectors, opts.Tau, opts.Workers, nil)
		} else {
			sres, err = sparsify.ExactWorkers(work, opts.Tau, opts.Workers, nil)
		}
		if err != nil {
			return nil, err
		}
		res.PrepTime = time.Since(t0)
		res.OriginalPairs = sres.PairsBefore
		res.SparsifiedPairs = sres.PairsAfter
		solveInst = sres.Instance
	}

	t0 := time.Now()
	var sol par.Solution
	var err error
	switch opts.Algorithm {
	case "", AlgoCELF:
		s := celf.Solver{Workers: opts.Workers}
		sol, err = s.Solve(solveInst)
	case AlgoSviridenko:
		var s sviridenko.Solver
		sol, err = s.Solve(solveInst)
	case AlgoExact:
		var s exact.Solver
		sol, err = s.Solve(solveInst)
	default:
		return nil, fmt.Errorf("phocus: unknown algorithm %q", opts.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	res.SolveTime = time.Since(t0)

	// Rescore under the true objective (the solver may have optimized the
	// sparsified surrogate).
	sol.Score = par.ScoreFast(work, sol.Photos)
	res.Solution = sol

	retained := make([]bool, work.NumPhotos())
	for _, p := range sol.Photos {
		retained[p] = true
	}
	for p := 0; p < work.NumPhotos(); p++ {
		if !retained[p] {
			res.Archived = append(res.Archived, par.PhotoID(p))
		}
	}

	if !opts.SkipBound {
		res.OnlineBound = celf.OnlineBound(work, sol.Photos)
		if res.OnlineBound > 0 {
			res.CertifiedRatio = sol.Score / res.OnlineBound
		} else {
			res.CertifiedRatio = 1
		}
	}
	return res, nil
}
