// Package phocus is the end-to-end system of the paper (Figure 4): the
// Data Representation Module, which turns photos plus one of three subset
// sources into a PAR instance, and the Solver pipeline, which optionally
// sparsifies the instance and runs the selected optimization algorithm,
// reporting the solution together with its a-posteriori quality
// certificate.
//
// The three input modes mirror Section 5.1:
//
//  1. Direct — each photo is tagged with the subsets that include it
//     (BuildDirect);
//  2. Queries — users provide queries; the internal search engine computes
//     the subsets and converts retrieval scores into relevance
//     (BuildFromQueries);
//  3. Automatic tagging — subsets are derived by the tagging substrate
//     (BuildFromTags).
package phocus

import (
	"fmt"
	"math/rand"

	"phocus/internal/dataset"
	"phocus/internal/embed"
	"phocus/internal/imagesim"
	"phocus/internal/par"
	"phocus/internal/search"
	"phocus/internal/tagging"
)

// Photo is one input photo: the rendered image (with EXIF and size) plus
// optional textual metadata used by the query input mode.
type Photo struct {
	Image *imagesim.Photo
	Text  string
}

// SubsetSpec declares one pre-defined subset in direct mode. Relevance may
// be nil for uniform relevance; it is normalized automatically.
type SubsetSpec struct {
	Name      string
	Weight    float64
	Members   []int // indices into the photo slice
	Relevance []float64
}

// Query is one retrieval-defined subset: the query text and its importance
// (e.g. its frequency in a query log).
type Query struct {
	Text   string
	Weight float64
}

// BuildOptions tunes the Data Representation Module.
type BuildOptions struct {
	// Seed drives context randomization.
	Seed int64
	// Embedding selects the feature layout (zero value → default config).
	Embedding imagesim.EmbeddingConfig
	// ContextFrac and ContextStrength shape per-subset contextualization
	// (defaults 0.25 and 4). ContextStrength 1 disables contextualization.
	ContextFrac, ContextStrength float64
	// NormalizeDistances enables per-context distance normalization.
	NormalizeDistances bool
	// TopK bounds retrieval results per query in query mode (default 100).
	TopK int
	// MinTagConfidence and MaxTagsPerPhoto control tagging mode
	// (defaults 0.5 and 5).
	MinTagConfidence float64
	MaxTagsPerPhoto  int
}

func (o *BuildOptions) fill() {
	if o.Embedding == (imagesim.EmbeddingConfig{}) {
		o.Embedding = imagesim.DefaultEmbeddingConfig()
	}
	if o.ContextFrac == 0 {
		o.ContextFrac = 0.25
	}
	if o.ContextStrength == 0 {
		o.ContextStrength = 4
	}
	if o.TopK == 0 {
		o.TopK = 100
	}
	if o.MinTagConfidence == 0 {
		o.MinTagConfidence = 0.5
	}
	if o.MaxTagsPerPhoto == 0 {
		o.MaxTagsPerPhoto = 5
	}
}

// draft is the mode-independent intermediate subset representation.
type draft struct {
	name      string
	weight    float64
	members   []int
	relevance []float64
}

// BuildDirect assembles a dataset from explicitly declared subsets.
func BuildDirect(photos []Photo, subsets []SubsetSpec, opts BuildOptions) (*dataset.Dataset, error) {
	drafts := make([]draft, 0, len(subsets))
	for _, s := range subsets {
		rel := s.Relevance
		if rel == nil {
			rel = make([]float64, len(s.Members))
			for i := range rel {
				rel[i] = 1
			}
		}
		if len(rel) != len(s.Members) {
			return nil, fmt.Errorf("phocus: subset %q: %d members, %d relevance scores", s.Name, len(s.Members), len(rel))
		}
		drafts = append(drafts, draft{name: s.Name, weight: s.Weight, members: s.Members, relevance: rel})
	}
	return assemble(photos, drafts, opts)
}

// BuildFromQueries assembles a dataset by running each query through a
// TF-IDF index over the photos' texts; retrieval scores become relevance.
// Queries with no results are dropped.
func BuildFromQueries(photos []Photo, queries []Query, opts BuildOptions) (*dataset.Dataset, error) {
	opts.fill()
	docs := make([]search.Document, len(photos))
	for i, p := range photos {
		docs[i] = search.Document{ID: i, Text: p.Text}
	}
	index := search.NewIndex(docs)
	var drafts []draft
	for _, q := range queries {
		hits := index.Search(q.Text, opts.TopK)
		if len(hits) == 0 {
			continue
		}
		d := draft{name: q.Text, weight: q.Weight}
		for _, h := range hits {
			d.members = append(d.members, h.ID)
			d.relevance = append(d.relevance, h.Score)
		}
		drafts = append(drafts, d)
	}
	return assemble(photos, drafts, opts)
}

// BuildFromTags assembles a dataset from a trained tagger: each tag that
// matches at least two photos becomes a subset; confidences become
// relevance; tag importance is proportional to tag frequency.
func BuildFromTags(photos []Photo, tagger *tagging.Tagger, opts BuildOptions) (*dataset.Dataset, error) {
	opts.fill()
	byTag := map[string]*draft{}
	for i, p := range photos {
		for _, tag := range tagger.Tag(p.Image, opts.MinTagConfidence, opts.MaxTagsPerPhoto) {
			d, ok := byTag[tag.Name]
			if !ok {
				d = &draft{name: tag.Name}
				byTag[tag.Name] = d
			}
			d.members = append(d.members, i)
			d.relevance = append(d.relevance, tag.Confidence)
		}
	}
	var drafts []draft
	for _, name := range tagger.Names() { // deterministic order
		d, ok := byTag[name]
		if !ok || len(d.members) < 2 {
			continue
		}
		d.weight = float64(len(d.members))
		drafts = append(drafts, *d)
	}
	return assemble(photos, drafts, opts)
}

// assemble turns drafts into a finalized dataset: embeddings, per-subset
// contexts, contextual similarities, costs from the photos' size model.
func assemble(photos []Photo, drafts []draft, opts BuildOptions) (*dataset.Dataset, error) {
	opts.fill()
	if len(photos) == 0 {
		return nil, fmt.Errorf("phocus: no photos")
	}
	if len(drafts) == 0 {
		return nil, fmt.Errorf("phocus: no non-empty subsets")
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	global := make([]embed.Vector, len(photos))
	cost := make([]float64, len(photos))
	imgs := make([]*imagesim.Photo, len(photos))
	for i, p := range photos {
		if p.Image == nil {
			return nil, fmt.Errorf("phocus: photo %d has no image", i)
		}
		global[i] = imagesim.Embedding(p.Image.Image, opts.Embedding)
		cost[i] = p.Image.SizeBytes
		imgs[i] = p.Image
	}

	inst := &par.Instance{Cost: cost}
	ds := &dataset.Dataset{Instance: inst, Global: global, Photos: imgs}
	dim := opts.Embedding.Dim()
	for _, d := range drafts {
		if d.weight <= 0 {
			return nil, fmt.Errorf("phocus: subset %q has non-positive weight", d.name)
		}
		ctx := embed.RandomContext(rng, dim, opts.ContextFrac, opts.ContextStrength)
		ctx.NormalizeDistances = opts.NormalizeDistances
		members := make([]par.PhotoID, len(d.members))
		ctxVecs := make([]embed.Vector, len(d.members))
		for i, m := range d.members {
			if m < 0 || m >= len(photos) {
				return nil, fmt.Errorf("phocus: subset %q member %d out of range", d.name, m)
			}
			members[i] = par.PhotoID(m)
			ctxVecs[i] = ctx.Apply(embed.Clone(global[m]))
		}
		inst.Subsets = append(inst.Subsets, par.Subset{
			Name:      d.name,
			Weight:    d.weight,
			Members:   members,
			Relevance: append([]float64(nil), d.relevance...),
			Sim:       embed.ContextualSim(vectorsOf(global, d.members), ctx),
		})
		ds.CtxVectors = append(ds.CtxVectors, ctxVecs)
	}
	inst.NormalizeRelevance()
	inst.Budget = inst.TotalCost()
	if err := inst.Finalize(); err != nil {
		return nil, fmt.Errorf("phocus: %w", err)
	}
	return ds, nil
}

func vectorsOf(global []embed.Vector, members []int) []embed.Vector {
	out := make([]embed.Vector, len(members))
	for i, m := range members {
		out[i] = global[m]
	}
	return out
}
