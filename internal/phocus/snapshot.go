// Persistent prepared-instance snapshots. A snapshot is the on-disk form of
// a *Prepared: the flat CSR kernel slabs plus the finalized-instance
// metadata needed to reconstruct it, laid out so loading is a handful of
// checksums and slice-header casts instead of re-running Finalize's
// similarity work, τ-sparsification and CompileKernel. See DESIGN.md §9 for
// the wire format.
//
// Layout (all integers little-endian):
//
//	offset 0   magic "PHSNAP1\x00"                      8 bytes
//	offset 8   version u32 (currently 1)                 4 bytes
//	offset 12  section count N u32                       4 bytes
//	offset 16  content fingerprint (raw sha256)         32 bytes
//	offset 48  section table: N × {id u32, crc32c u32,
//	           offset u64, length u64}                24N bytes
//	...        header crc32c u32 over [0, 48+24N),
//	           then its bitwise complement u32           8 bytes
//	...        section payloads, contiguous
//
// Sections are emitted 8-byte-aligned slabs first (f64/i64/Neighbor), then
// 4-byte slabs (i32), then the variable-length META section last. Because
// the header block is 8-aligned (48 + 24N + 8 ≡ 0 mod 8) and every slab's
// length is a multiple of its alignment, consecutive sections tile the file
// with zero padding: every byte after the header belongs to exactly one
// CRC-checked section, and the header block is covered by its own duplicated
// CRC — so a single flipped bit anywhere in the file fails verification.
//
// Slab sections are written and read zero-copy (a byte view of the live
// arrays, a typed view of the loaded region) when the host is little-endian
// with the expected par.Neighbor layout; other hosts transparently fall back
// to element-wise encoding, producing the identical file format.
package phocus

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"time"
	"unsafe"

	"phocus/internal/par"
)

// ErrBadSnapshot tags every snapshot decoding failure — truncation, checksum
// mismatch, or structurally invalid content. Callers match it with errors.Is
// to distinguish "corrupt file, quarantine and fall back to cold Prepare"
// from environmental errors (missing file, permission).
var ErrBadSnapshot = errors.New("bad snapshot")

const (
	snapMagic       = "PHSNAP1\x00"
	snapVersion     = 1
	snapHeaderFixed = 48 // magic + version + section count + raw fingerprint
	snapTableEntry  = 24 // id + crc + offset + length
	snapMaxSections = 64
)

// Section identifiers. The numeric values are part of the wire format.
const (
	// 8-byte-aligned slabs.
	secCost              uint32 = 1 // f64[numPhotos]
	secRelevance         uint32 = 2 // f64, all subsets concatenated
	secSimBaseRowStart   uint32 = 3 // i64[totalRows+1], offsets into secSimBaseNbr
	secSimBaseNbr        uint32 = 4 // par.Neighbor (i64 index, f64 sim)
	secKBRowStart        uint32 = 5 // base kernel slabs …
	secKBNbrSim          uint32 = 6
	secKBNbrWR           uint32 = 7
	secSimSparseRowStart uint32 = 8 // sparse-group twins, present when τ > 0
	secSimSparseNbr      uint32 = 9
	secKSRowStart        uint32 = 10
	secKSNbrSim          uint32 = 11
	secKSNbrWR           uint32 = 12
	// 4-byte-aligned slabs.
	secRetained   uint32 = 32 // i32[numRetained]
	secMembers    uint32 = 33 // i32, all subsets concatenated
	secKBRowLen   uint32 = 34
	secKBNbrIdx   uint32 = 35
	secKBOccStart uint32 = 36
	secKBOccRow   uint32 = 37
	secKSRowLen   uint32 = 38
	secKSNbrIdx   uint32 = 39
	secKSOccStart uint32 = 40
	secKSOccRow   uint32 = 41
	secRemoved    uint32 = 42 // i32, ascending husked photo IDs (delta'd Prepared only)
	// Variable-length, always last.
	secMeta uint32 = 63
)

// secAlign returns the required alignment of a section's offset and length,
// or 0 for identifiers this version does not know (which decode rejects).
func secAlign(id uint32) int {
	switch {
	case id >= secCost && id <= secKSNbrWR:
		return 8
	case id >= secRetained && id <= secRemoved:
		return 4
	case id == secMeta:
		return 1
	}
	return 0
}

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// snapZeroCopy reports whether the host's in-memory layout matches the wire
// layout exactly — little-endian scalars and a 16-byte par.Neighbor with the
// similarity at offset 8 — so slabs can be reinterpreted in place. On any
// other host the element-wise fallback produces the same file bytes.
var snapZeroCopy = func() bool {
	var nb par.Neighbor
	if unsafe.Sizeof(nb) != 16 || unsafe.Offsetof(nb.Sim) != 8 {
		return false
	}
	x := uint32(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// ---- slab <-> byte conversions -------------------------------------------

func f64Bytes(s []float64) []byte {
	if len(s) == 0 {
		return nil
	}
	if snapZeroCopy {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
	}
	b := make([]byte, 8*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

func i64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	if snapZeroCopy {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 8*len(s))
	}
	b := make([]byte, 8*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return b
}

func i32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	if snapZeroCopy {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
	}
	b := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return b
}

func photoBytes(s []par.PhotoID) []byte {
	if len(s) == 0 {
		return nil
	}
	if snapZeroCopy {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 4*len(s))
	}
	b := make([]byte, 4*len(s))
	for i, v := range s {
		binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
	}
	return b
}

func nbrBytes(s []par.Neighbor) []byte {
	if len(s) == 0 {
		return nil
	}
	if snapZeroCopy {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), 16*len(s))
	}
	b := make([]byte, 16*len(s))
	for i, nb := range s {
		binary.LittleEndian.PutUint64(b[16*i:], uint64(int64(nb.Index)))
		binary.LittleEndian.PutUint64(b[16*i+8:], math.Float64bits(nb.Sim))
	}
	return b
}

// aligned8/aligned4 report whether the byte slice starts on the required
// boundary (the loader's []uint64 backing guarantees 8; foreign buffers —
// fuzz inputs, subslices — may not, and then the copying fallback runs).
func aligned8(b []byte) bool { return uintptr(unsafe.Pointer(&b[0]))%8 == 0 }
func aligned4(b []byte) bool { return uintptr(unsafe.Pointer(&b[0]))%4 == 0 }

func f64View(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if snapZeroCopy && aligned8(b) {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func i64View(b []byte) []int64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if snapZeroCopy && aligned8(b) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func i32View(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if snapZeroCopy && aligned4(b) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func photoView(b []byte) []par.PhotoID {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if snapZeroCopy && aligned4(b) {
		return unsafe.Slice((*par.PhotoID)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]par.PhotoID, n)
	for i := range out {
		out[i] = par.PhotoID(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func nbrView(b []byte) []par.Neighbor {
	n := len(b) / 16
	if n == 0 {
		return nil
	}
	if snapZeroCopy && aligned8(b) {
		return unsafe.Slice((*par.Neighbor)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]par.Neighbor, n)
	for i := range out {
		out[i].Index = int(int64(binary.LittleEndian.Uint64(b[16*i:])))
		out[i].Sim = math.Float64frombits(binary.LittleEndian.Uint64(b[16*i+8:]))
	}
	return out
}

// ---- encoding ------------------------------------------------------------

type snapSection struct {
	id   uint32
	data []byte
}

// simCSR flattens a subset group's similarity structure into one shared CSR:
// absolute row offsets (one row per (subset, member), subset-major) into a
// single Neighbor slab. Rows enumerate neighbours in ascending member order
// with the self-neighbour included, matching SparseSim's row invariants, so
// decode can hand windows of the slab straight to par.NewCSRSim.
func simCSR(subsets []par.Subset) ([]int64, []par.Neighbor) {
	rows := 0
	for qi := range subsets {
		rows += len(subsets[qi].Members)
	}
	rs := make([]int64, 1, rows+1)
	var nbrs []par.Neighbor
	for qi := range subsets {
		q := &subsets[qi]
		k := len(q.Members)
		if nl, ok := q.Sim.(par.NeighborLister); ok {
			for i := 0; i < k; i++ {
				nbrs = append(nbrs, nl.Neighbors(i)...)
				rs = append(rs, int64(len(nbrs)))
			}
			continue
		}
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if s := q.Sim.Sim(i, j); s > 0 {
					nbrs = append(nbrs, par.Neighbor{Index: j, Sim: s})
				}
			}
			rs = append(rs, int64(len(nbrs)))
		}
	}
	return rs, nbrs
}

// snapMeta is the decoded META section.
type snapMeta struct {
	numPhotos   int
	numRetained int
	hasSparse   bool
	useLSH      bool
	hasRemoved  bool
	tau         float64
	seed        int64
	origPairs   int64
	sparsePairs int64
	digest      string
	subNames    []string
	subWeights  []float64
	subMembers  []int
}

func encodeSnapMeta(p *Prepared) []byte {
	var b bytes.Buffer
	var tmp [8]byte
	u32 := func(v uint32) { binary.LittleEndian.PutUint32(tmp[:4], v); b.Write(tmp[:4]) }
	u64 := func(v uint64) { binary.LittleEndian.PutUint64(tmp[:], v); b.Write(tmp[:]) }
	str := func(s string) {
		binary.LittleEndian.PutUint16(tmp[:2], uint16(len(s)))
		b.Write(tmp[:2])
		b.WriteString(s)
	}
	u32(uint32(p.base.NumPhotos()))
	u32(uint32(len(p.base.Subsets)))
	u32(uint32(len(p.base.Retained)))
	flags := byte(0)
	if p.sparse != nil {
		flags |= 1
	}
	if p.opts.UseLSH {
		flags |= 2
	}
	if removedCount(p.removed) > 0 {
		flags |= 4
	}
	u32(uint32(flags))
	u64(math.Float64bits(p.opts.Tau))
	u64(uint64(p.opts.Seed))
	u64(uint64(int64(p.OriginalPairs)))
	u64(uint64(int64(p.SparsifiedPairs)))
	str(p.opts.InstanceDigest)
	for qi := range p.base.Subsets {
		q := &p.base.Subsets[qi]
		str(q.Name)
		u64(math.Float64bits(q.Weight))
		u32(uint32(len(q.Members)))
	}
	return b.Bytes()
}

// snapReader is a bounds-checked cursor over the META section; the first
// overrun latches an error and every later read returns zero values.
type snapReader struct {
	b   []byte
	off int
	err error
}

func (r *snapReader) need(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.err = fmt.Errorf("phocus: meta truncated at byte %d: %w", r.off, ErrBadSnapshot)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *snapReader) u16() uint16 {
	if s := r.need(2); s != nil {
		return binary.LittleEndian.Uint16(s)
	}
	return 0
}

func (r *snapReader) u32() uint32 {
	if s := r.need(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}

func (r *snapReader) u64() uint64 {
	if s := r.need(8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return 0
}

func (r *snapReader) str() string {
	n := int(r.u16())
	if s := r.need(n); s != nil {
		return string(s)
	}
	return ""
}

// snapMaxPhotos / snapMaxSubsets bound decoded counts before any
// cross-validation, so a corrupt count cannot drive a huge allocation.
const (
	snapMaxPhotos  = 1 << 28
	snapMaxSubsets = 1 << 24
)

func decodeSnapMeta(b []byte) (*snapMeta, error) {
	r := &snapReader{b: b}
	m := &snapMeta{}
	m.numPhotos = int(r.u32())
	numSubsets := int(r.u32())
	m.numRetained = int(r.u32())
	flags := r.u32()
	m.tau = math.Float64frombits(r.u64())
	m.seed = int64(r.u64())
	m.origPairs = int64(r.u64())
	m.sparsePairs = int64(r.u64())
	m.digest = r.str()
	if r.err != nil {
		return nil, r.err
	}
	if m.numPhotos < 1 || m.numPhotos > snapMaxPhotos {
		return nil, fmt.Errorf("phocus: meta photo count %d out of range: %w", m.numPhotos, ErrBadSnapshot)
	}
	if numSubsets < 1 || numSubsets > snapMaxSubsets {
		return nil, fmt.Errorf("phocus: meta subset count %d out of range: %w", numSubsets, ErrBadSnapshot)
	}
	if m.numRetained < 0 || m.numRetained > m.numPhotos {
		return nil, fmt.Errorf("phocus: meta retained count %d out of range: %w", m.numRetained, ErrBadSnapshot)
	}
	if flags > 7 {
		return nil, fmt.Errorf("phocus: meta flags %#x unknown: %w", flags, ErrBadSnapshot)
	}
	m.hasSparse = flags&1 != 0
	m.useLSH = flags&2 != 0
	m.hasRemoved = flags&4 != 0
	if m.hasSparse != (m.tau > 0) {
		return nil, fmt.Errorf("phocus: meta sparse flag disagrees with tau %g: %w", m.tau, ErrBadSnapshot)
	}
	// Each subset record is ≥ 14 bytes; the remaining META length bounds the
	// claimed subset count before the slices below are allocated.
	if rem := len(b) - r.off; numSubsets > rem/14 {
		return nil, fmt.Errorf("phocus: meta claims %d subsets in %d bytes: %w", numSubsets, rem, ErrBadSnapshot)
	}
	m.subNames = make([]string, numSubsets)
	m.subWeights = make([]float64, numSubsets)
	m.subMembers = make([]int, numSubsets)
	for qi := 0; qi < numSubsets; qi++ {
		m.subNames[qi] = r.str()
		m.subWeights[qi] = math.Float64frombits(r.u64())
		k := int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		if k < 1 || k > m.numPhotos {
			return nil, fmt.Errorf("phocus: meta subset %d member count %d out of range: %w", qi, k, ErrBadSnapshot)
		}
		m.subMembers[qi] = k
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("phocus: meta has %d trailing bytes: %w", len(b)-r.off, ErrBadSnapshot)
	}
	return m, nil
}

// EncodeSnapshot serializes the Prepared into the snapshot wire format. The
// Prepared must carry a compiled kernel (every engine-built Prepared does)
// and a computable fingerprint. It holds the Prepared's read lock for the
// whole encode, so the bytes are a consistent cut even while ApplyDelta
// traffic is waiting; a delta'd Prepared whose kernels carry an active
// mutation overlay is serialized through freshly compiled canonical twins
// (Slabs refuses overlays), leaving p itself untouched.
func EncodeSnapshot(p *Prepared) ([]byte, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if err := p.pin(); err != nil {
		return nil, err
	}
	defer p.unpin()
	fp, err := p.fingerprintLocked()
	if err != nil {
		return nil, fmt.Errorf("phocus: snapshot fingerprint: %w", err)
	}
	rawFP, err := hex.DecodeString(fp)
	if err != nil || len(rawFP) != 32 {
		return nil, fmt.Errorf("phocus: fingerprint %q is not a sha256 hex digest", fp)
	}
	if p.kernBase == nil {
		return nil, fmt.Errorf("phocus: snapshot requires a compiled kernel")
	}
	base := p.base

	kernBase := p.kernBase
	if !kernBase.Canonical() {
		kernBase = par.CompileKernel(base)
	}
	kernSolve := p.kernSolve
	if kernSolve != nil && !kernSolve.Canonical() {
		sv := &par.Instance{Cost: base.Cost, Retained: base.Retained, Budget: base.TotalCost(), Subsets: p.sparse}
		if err := sv.Finalize(); err != nil {
			return nil, fmt.Errorf("phocus: snapshot sparse view: %w", err)
		}
		kernSolve = par.CompileKernel(sv)
	}

	var members []par.PhotoID
	var relevance []float64
	for qi := range base.Subsets {
		members = append(members, base.Subsets[qi].Members...)
		relevance = append(relevance, base.Subsets[qi].Relevance...)
	}
	simRS, simNbr := simCSR(base.Subsets)
	kb := kernBase.Slabs()

	secs8 := []snapSection{
		{secCost, f64Bytes(base.Cost)},
		{secRelevance, f64Bytes(relevance)},
		{secSimBaseRowStart, i64Bytes(simRS)},
		{secSimBaseNbr, nbrBytes(simNbr)},
		{secKBRowStart, i64Bytes(kb.RowStart)},
		{secKBNbrSim, f64Bytes(kb.NbrSim)},
		{secKBNbrWR, f64Bytes(kb.NbrWR)},
	}
	secs4 := []snapSection{
		{secRetained, photoBytes(base.Retained)},
		{secMembers, photoBytes(members)},
		{secKBRowLen, i32Bytes(kb.RowLen)},
		{secKBNbrIdx, i32Bytes(kb.NbrIdx)},
		{secKBOccStart, i32Bytes(kb.OccStart)},
		{secKBOccRow, i32Bytes(kb.OccRow)},
	}
	if removedCount(p.removed) > 0 {
		husks := make([]par.PhotoID, 0, removedCount(p.removed))
		for id, r := range p.removed {
			if r {
				husks = append(husks, par.PhotoID(id))
			}
		}
		secs4 = append(secs4, snapSection{secRemoved, photoBytes(husks)})
	}
	if p.sparse != nil {
		if kernSolve == nil {
			return nil, fmt.Errorf("phocus: sparsified Prepared is missing its solve kernel")
		}
		srs, snbr := simCSR(p.sparse)
		ks := kernSolve.Slabs()
		secs8 = append(secs8,
			snapSection{secSimSparseRowStart, i64Bytes(srs)},
			snapSection{secSimSparseNbr, nbrBytes(snbr)},
			snapSection{secKSRowStart, i64Bytes(ks.RowStart)},
			snapSection{secKSNbrSim, f64Bytes(ks.NbrSim)},
			snapSection{secKSNbrWR, f64Bytes(ks.NbrWR)},
		)
		secs4 = append(secs4,
			snapSection{secKSRowLen, i32Bytes(ks.RowLen)},
			snapSection{secKSNbrIdx, i32Bytes(ks.NbrIdx)},
			snapSection{secKSOccStart, i32Bytes(ks.OccStart)},
			snapSection{secKSOccRow, i32Bytes(ks.OccRow)},
		)
	}
	secs := append(append(secs8, secs4...), snapSection{secMeta, encodeSnapMeta(p)})

	n := len(secs)
	headerLen := snapHeaderFixed + snapTableEntry*n + 8
	total := headerLen
	for _, s := range secs {
		total += len(s.data)
	}
	out := make([]byte, total)
	copy(out, snapMagic)
	binary.LittleEndian.PutUint32(out[8:], snapVersion)
	binary.LittleEndian.PutUint32(out[12:], uint32(n))
	copy(out[16:snapHeaderFixed], rawFP)
	off := headerLen
	for i, s := range secs {
		e := out[snapHeaderFixed+snapTableEntry*i:]
		binary.LittleEndian.PutUint32(e, s.id)
		binary.LittleEndian.PutUint32(e[4:], crc32.Checksum(s.data, snapCRC))
		binary.LittleEndian.PutUint64(e[8:], uint64(off))
		binary.LittleEndian.PutUint64(e[16:], uint64(len(s.data)))
		copy(out[off:], s.data)
		off += len(s.data)
	}
	tableEnd := snapHeaderFixed + snapTableEntry*n
	hcrc := crc32.Checksum(out[:tableEnd], snapCRC)
	binary.LittleEndian.PutUint32(out[tableEnd:], hcrc)
	binary.LittleEndian.PutUint32(out[tableEnd+4:], ^hcrc)
	return out, nil
}

// ---- decoding ------------------------------------------------------------

// DecodeSnapshot reconstructs a Prepared from snapshot bytes. On hosts whose
// memory layout matches the wire format the returned Prepared's slabs are
// views into buf, which therefore must not be modified afterwards; pass a
// buffer whose base is 8-byte aligned (readAligned/LoadSnapshot do) to get
// the zero-copy path. Every checksum, count and structural invariant is
// verified before anything is trusted: any flipped byte, truncation or
// inconsistency returns an error wrapping ErrBadSnapshot, never a panic and
// never a Prepared that could serve wrong results.
func DecodeSnapshot(buf []byte) (*Prepared, error) {
	start := time.Now()
	if len(buf) < snapHeaderFixed+snapTableEntry+8 {
		return nil, fmt.Errorf("phocus: snapshot truncated at %d bytes: %w", len(buf), ErrBadSnapshot)
	}
	if string(buf[:8]) != snapMagic {
		return nil, fmt.Errorf("phocus: bad magic %q: %w", buf[:8], ErrBadSnapshot)
	}
	if v := binary.LittleEndian.Uint32(buf[8:]); v != snapVersion {
		return nil, fmt.Errorf("phocus: snapshot version %d, this build reads %d: %w", v, snapVersion, ErrBadSnapshot)
	}
	n := int(binary.LittleEndian.Uint32(buf[12:]))
	if n < 1 || n > snapMaxSections {
		return nil, fmt.Errorf("phocus: section count %d out of range: %w", n, ErrBadSnapshot)
	}
	headerLen := snapHeaderFixed + snapTableEntry*n + 8
	if len(buf) < headerLen {
		return nil, fmt.Errorf("phocus: snapshot truncated inside header: %w", ErrBadSnapshot)
	}
	tableEnd := snapHeaderFixed + snapTableEntry*n
	hcrc := crc32.Checksum(buf[:tableEnd], snapCRC)
	if binary.LittleEndian.Uint32(buf[tableEnd:]) != hcrc ||
		binary.LittleEndian.Uint32(buf[tableEnd+4:]) != ^hcrc {
		return nil, fmt.Errorf("phocus: header checksum mismatch: %w", ErrBadSnapshot)
	}
	fp := hex.EncodeToString(buf[16:snapHeaderFixed])

	secs := make(map[uint32][]byte, n)
	off := headerLen
	for i := 0; i < n; i++ {
		e := buf[snapHeaderFixed+snapTableEntry*i:]
		id := binary.LittleEndian.Uint32(e)
		crc := binary.LittleEndian.Uint32(e[4:])
		so := binary.LittleEndian.Uint64(e[8:])
		sl := binary.LittleEndian.Uint64(e[16:])
		align := secAlign(id)
		if align == 0 {
			return nil, fmt.Errorf("phocus: unknown section id %d: %w", id, ErrBadSnapshot)
		}
		// Sections must tile the payload region exactly — the next section
		// starts where the previous one ended — so no byte escapes a CRC.
		if so != uint64(off) {
			return nil, fmt.Errorf("phocus: section %d at offset %d, want %d: %w", id, so, off, ErrBadSnapshot)
		}
		if sl > uint64(len(buf)-off) {
			return nil, fmt.Errorf("phocus: section %d overruns the file: %w", id, ErrBadSnapshot)
		}
		if off%align != 0 || int(sl)%align != 0 {
			return nil, fmt.Errorf("phocus: section %d misaligned for %d-byte elements: %w", id, align, ErrBadSnapshot)
		}
		if _, dup := secs[id]; dup {
			return nil, fmt.Errorf("phocus: duplicate section id %d: %w", id, ErrBadSnapshot)
		}
		data := buf[off : off+int(sl)]
		if crc32.Checksum(data, snapCRC) != crc {
			return nil, fmt.Errorf("phocus: section %d checksum mismatch: %w", id, ErrBadSnapshot)
		}
		secs[id] = data
		off += int(sl)
	}
	if off != len(buf) {
		return nil, fmt.Errorf("phocus: %d bytes beyond the last section: %w", len(buf)-off, ErrBadSnapshot)
	}

	sec := func(id uint32) ([]byte, error) {
		d, ok := secs[id]
		if !ok {
			return nil, fmt.Errorf("phocus: missing section %d: %w", id, ErrBadSnapshot)
		}
		delete(secs, id)
		return d, nil
	}
	metaB, err := sec(secMeta)
	if err != nil {
		return nil, err
	}
	m, err := decodeSnapMeta(metaB)
	if err != nil {
		return nil, err
	}

	totalMembers := 0
	for _, k := range m.subMembers {
		totalMembers += k
	}

	costB, err := sec(secCost)
	if err != nil {
		return nil, err
	}
	retB, err := sec(secRetained)
	if err != nil {
		return nil, err
	}
	memB, err := sec(secMembers)
	if err != nil {
		return nil, err
	}
	relB, err := sec(secRelevance)
	if err != nil {
		return nil, err
	}
	if len(costB) != 8*m.numPhotos || len(retB) != 4*m.numRetained ||
		len(memB) != 4*totalMembers || len(relB) != 8*totalMembers {
		return nil, fmt.Errorf("phocus: instance section lengths disagree with meta: %w", ErrBadSnapshot)
	}
	cost := f64View(costB)
	retained := photoView(retB)
	members := photoView(memB)
	relevance := f64View(relB)

	// Husk bitmap of a delta'd Prepared; restoring it keeps the decoded value
	// delta-capable (a husk must never be removed again or cited as a
	// neighbour, see delta.go).
	var removed []bool
	if m.hasRemoved {
		remB, err := sec(secRemoved)
		if err != nil {
			return nil, err
		}
		husks := photoView(remB)
		if len(husks) == 0 {
			return nil, fmt.Errorf("phocus: removed flag set but section empty: %w", ErrBadSnapshot)
		}
		removed = make([]bool, m.numPhotos)
		prev := par.PhotoID(-1)
		for _, id := range husks {
			if id <= prev || int(id) >= m.numPhotos {
				return nil, fmt.Errorf("phocus: removed photo %d out of order or range: %w", id, ErrBadSnapshot)
			}
			removed[id] = true
			prev = id
		}
		for _, r := range retained {
			if removed[r] {
				return nil, fmt.Errorf("phocus: retained photo %d marked removed: %w", r, ErrBadSnapshot)
			}
		}
	}

	baseSubsets, err := decodeSimGroup(sec, secSimBaseRowStart, secSimBaseNbr, m, members, relevance)
	if err != nil {
		return nil, err
	}
	base := &par.Instance{Cost: cost, Retained: retained, Subsets: baseSubsets}
	base.Budget = base.TotalCost()
	if err := base.Finalize(); err != nil {
		return nil, fmt.Errorf("phocus: snapshot instance invalid: %v: %w", err, ErrBadSnapshot)
	}
	kernBase, err := decodeKernel(sec, [7]uint32{secKBRowLen, secKBRowStart, secKBNbrIdx, secKBNbrSim, secKBNbrWR, secKBOccStart, secKBOccRow}, m)
	if err != nil {
		return nil, err
	}

	var sparseSubsets []par.Subset
	var kernSolve *par.Kernel
	var solveTmpl *par.Instance
	if m.hasSparse {
		sparseSubsets, err = decodeSimGroup(sec, secSimSparseRowStart, secSimSparseNbr, m, members, relevance)
		if err != nil {
			return nil, err
		}
		kernSolve, err = decodeKernel(sec, [7]uint32{secKSRowLen, secKSRowStart, secKSNbrIdx, secKSNbrSim, secKSNbrWR, secKSOccStart, secKSOccRow}, m)
		if err != nil {
			return nil, err
		}
		// The finalized budget-free solve template RunInto stamps views from;
		// building it once here is what keeps the per-Run path allocation-free
		// after a snapshot load, exactly as after a cold Prepare.
		solveTmpl = &par.Instance{Cost: cost, Retained: retained, Budget: base.Budget, Subsets: sparseSubsets}
		if err := solveTmpl.Finalize(); err != nil {
			return nil, fmt.Errorf("phocus: snapshot sparse view invalid: %v: %w", err, ErrBadSnapshot)
		}
	}
	if len(secs) != 0 {
		return nil, fmt.Errorf("phocus: %d unexpected sections: %w", len(secs), ErrBadSnapshot)
	}

	p := &Prepared{
		base:      base,
		sparse:    sparseSubsets,
		solveTmpl: solveTmpl,
		removed:   removed,
		opts: PrepareOptions{
			Tau:            m.tau,
			UseLSH:         m.useLSH,
			Seed:           m.seed,
			InstanceDigest: m.digest,
		},
		kernBase:        kernBase,
		kernSolve:       kernSolve,
		OriginalPairs:   int(m.origPairs),
		SparsifiedPairs: int(m.sparsePairs),
	}
	// The single loaded region backs every slab, so it is what the Prepared
	// retains; counting it once is the snapshot path's answer to the shared-
	// slab accounting the in-memory path has to sum piecewise.
	p.sizeBytes = int64(len(buf))
	// The fingerprint was fixed at encode time; recomputing it is impossible
	// anyway (the original wire bytes are gone), so seed the lazy cell.
	p.fpOnce.Do(func() { p.fp = fp })
	p.PrepTime = time.Since(start)
	return p, nil
}

// decodeSimGroup rebuilds one subset group (base or sparse) from its shared
// similarity CSR: every subset windows the group's Neighbor slab through
// par.NewCSRSim, sharing Members/Relevance views with the base group exactly
// as Prepare's sparsifier shares them.
func decodeSimGroup(sec func(uint32) ([]byte, error), rsID, nbrID uint32, m *snapMeta, members []par.PhotoID, relevance []float64) ([]par.Subset, error) {
	rsB, err := sec(rsID)
	if err != nil {
		return nil, err
	}
	nbrB, err := sec(nbrID)
	if err != nil {
		return nil, err
	}
	totalMembers := len(members)
	if len(rsB) != 8*(totalMembers+1) {
		return nil, fmt.Errorf("phocus: section %d holds %d offsets, want %d rows+1: %w", rsID, len(rsB)/8, totalMembers, ErrBadSnapshot)
	}
	rs := i64View(rsB)
	nbrs := nbrView(nbrB)
	if rs[0] != 0 || rs[totalMembers] != int64(len(nbrs)) {
		return nil, fmt.Errorf("phocus: section %d row offsets span [%d,%d], want [0,%d]: %w",
			rsID, rs[0], rs[totalMembers], len(nbrs), ErrBadSnapshot)
	}
	subsets := make([]par.Subset, len(m.subMembers))
	o := 0
	for qi, k := range m.subMembers {
		cs, err := par.NewCSRSim(rs[o:o+k+1], nbrs)
		if err != nil {
			return nil, fmt.Errorf("phocus: section %d subset %d: %v: %w", nbrID, qi, err, ErrBadSnapshot)
		}
		subsets[qi] = par.Subset{
			Name:      m.subNames[qi],
			Weight:    m.subWeights[qi],
			Members:   members[o : o+k],
			Relevance: relevance[o : o+k],
			Sim:       cs,
		}
		o += k
	}
	return subsets, nil
}

// decodeKernel rebuilds one compiled kernel from its seven slab sections
// (rowLen, rowStart, nbrIdx, nbrSim, nbrWR, occStart, occRow) and validates
// it both internally (par.KernelFromSlabs) and against the instance shape
// META describes, so AttachKernel at Run time cannot fail on a snapshot this
// decode accepted.
func decodeKernel(sec func(uint32) ([]byte, error), ids [7]uint32, m *snapMeta) (*par.Kernel, error) {
	var b [7][]byte
	for i, id := range ids {
		d, err := sec(id)
		if err != nil {
			return nil, err
		}
		b[i] = d
	}
	slabs := par.KernelSlabs{
		Photos:   m.numPhotos,
		RowLen:   i32View(b[0]),
		RowStart: i64View(b[1]),
		NbrIdx:   i32View(b[2]),
		NbrSim:   f64View(b[3]),
		NbrWR:    f64View(b[4]),
		OccStart: i32View(b[5]),
		OccRow:   i32View(b[6]),
	}
	if len(slabs.RowLen) != len(m.subMembers) {
		return nil, fmt.Errorf("phocus: kernel covers %d subsets, meta has %d: %w", len(slabs.RowLen), len(m.subMembers), ErrBadSnapshot)
	}
	for qi, k := range m.subMembers {
		if int(slabs.RowLen[qi]) != k {
			return nil, fmt.Errorf("phocus: kernel subset %d has %d rows, meta has %d members: %w", qi, slabs.RowLen[qi], k, ErrBadSnapshot)
		}
	}
	kern, err := par.KernelFromSlabs(slabs)
	if err != nil {
		return nil, fmt.Errorf("phocus: %v: %w", err, ErrBadSnapshot)
	}
	return kern, nil
}
