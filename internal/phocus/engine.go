// The staged engine splits Figure 4's pipeline into its two halves so they
// can be amortized independently: Prepare covers the Data Representation
// stage (finalize + τ-sparsify, exact or LSH) and produces an immutable
// *Prepared; Run covers the Solver stage (solve + true-objective rescore +
// online bound) and may be called many times — with different budgets,
// algorithms and worker counts — against one Prepared. Every solve path in
// the repository (CLI, server, bench, experiments) goes through this engine;
// phocus.Solve is the one-shot convenience wrapper.
package phocus

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"time"

	"phocus/internal/celf"
	"phocus/internal/dataset"
	"phocus/internal/exact"
	"phocus/internal/obs"
	"phocus/internal/par"
	"phocus/internal/sparsify"
	"phocus/internal/streaming"
	"phocus/internal/sviridenko"
)

// ErrNoCtxVectors is returned by Prepare when LSH sparsification is
// requested but the dataset carries no per-subset context vectors (the JSON
// wire format only carries them when written with WriteJSONVectors).
var ErrNoCtxVectors = errors.New("phocus: LSH sparsification requires per-subset context vectors, but the dataset carries none")

// PrepareOptions configures the Data Representation stage.
type PrepareOptions struct {
	// Retained overrides the instance's S0 when non-nil (an empty non-nil
	// slice clears it); nil inherits the instance's own retained set.
	Retained []par.PhotoID
	// Tau enables τ-sparsification when positive.
	Tau float64
	// UseLSH selects SimHash candidate generation for the sparsification;
	// the dataset must carry CtxVectors or Prepare fails with
	// ErrNoCtxVectors.
	UseLSH bool
	// Seed drives LSH randomness.
	Seed int64
	// Workers bounds the sparsification fan-out (≤ 0 means one per CPU).
	Workers int
	// SparsifyObserver, when non-nil, receives per-subset sparsification
	// events in subset order.
	SparsifyObserver sparsify.Observer
	// InstanceDigest, when non-empty, is a caller-supplied content digest of
	// the instance (e.g. a sha256 over the raw request body) used verbatim
	// for Fingerprint instead of re-serializing the instance — callers that
	// already stream the bytes get fingerprinting for free.
	InstanceDigest string
	// Metrics, when non-nil, receives stage telemetry
	// (phocus_kernel_build_seconds). It does not contribute to Fingerprint.
	Metrics *obs.Registry
	// Quantize selects a reduced-precision similarity representation for the
	// CELF solve path: "f32" stores neighbour similarities and fused W·R
	// weights as float32, "fixed16" additionally packs similarities onto a
	// 16-bit fixed-point grid; "" (or "f64"/"off") keeps full precision.
	// Quantization is a runtime tuning knob, not prepared content: it is
	// excluded from Fingerprint, never serialized into snapshots (call Tune
	// after loading one), and a kernel whose similarity values collide on the
	// reduced grid falls back to f64 automatically — selections are invariant
	// either way. See DESIGN.md §12.
	Quantize string
	// BlockRows reorders the solve kernel's rows into degree buckets so the
	// gain scan's hottest rows share a dense prefix of the best array
	// (bit-identical gains; see par.Kernel.BlockRows). Like Quantize it is
	// excluded from Fingerprint and from snapshots.
	BlockRows bool
}

// RunOptions configures one Solver-stage run against a Prepared instance.
type RunOptions struct {
	// Budget is B in bytes. Zero means "keep everything" (budget = total
	// cost).
	Budget float64
	// Algorithm defaults to AlgoCELF.
	Algorithm Algorithm
	// SkipBound disables the a-posteriori online-bound computation (it
	// costs one marginal-gain pass over all photos).
	SkipBound bool
	// Workers bounds the CELF solver's parallelism (≤ 0 means one per CPU).
	Workers int
	// ExactMaxNodes caps the branch-and-bound search (0 = unlimited).
	ExactMaxNodes int64
	// SviridenkoDepth is the enumeration depth D (0 = the canonical 3).
	SviridenkoDepth int
	// Observer receives the CELF lazy-greedy event stream.
	Observer celf.Observer
	// OnCELFStats / OnSviridenkoStats / OnExactStats receive the solver's
	// work report at the end of a successful run of the matching algorithm.
	OnCELFStats       func(celf.Stats)
	OnSviridenkoStats func(sviridenko.Stats)
	OnExactStats      func(exact.Stats)
}

// Prepared is a reusable product of the Data Representation stage: the
// finalized instance plus (when τ > 0) its sparsified similarity structure.
// A Prepared is safe for concurrent Run calls — each Run builds its own
// budgeted view and never mutates shared state — which is what lets
// phocus-server cache Prepared values across requests. ApplyDelta is the one
// mutating operation: it takes the write side of mu, so deltas serialize
// against in-flight runs rather than corrupting them.
type Prepared struct {
	// mu guards every field below against ApplyDelta/Compact. Readers (Run,
	// SizeBytes, Fingerprint, EncodeSnapshot, ...) hold it shared for their
	// full duration because ApplyDelta mutates the compiled kernels in place.
	mu sync.RWMutex

	base   *par.Instance // finalized with budget = total cost
	sparse []par.Subset  // τ-sparsified subsets; nil when Tau == 0
	opts   PrepareOptions

	// removed marks husked photo IDs (see delta.go); nil until the first
	// ApplyDelta. ownedSims tracks the DeltaSim overlays this Prepared
	// created, so consecutive deltas extend one overlay per subset instead of
	// nesting wrappers (and caller-owned similarities are never mutated).
	removed   []bool
	ownedSims map[*par.DeltaSim]bool

	// kernBase is the compiled gain kernel over the base (true-objective)
	// subsets: it accelerates Run's rescore and online-bound passes. kernSolve
	// covers the sparsified subsets and accelerates the solver; nil when
	// Tau == 0 (the solver then runs on the base view and uses kernBase).
	// Kernels index by subset/member layout only, so one compile serves every
	// budgeted view Run builds.
	kernBase  *par.Kernel
	kernSolve *par.Kernel

	// kernTuned is the optional quantized/row-blocked twin of the solve-path
	// kernel (kernSolve when τ > 0, kernBase otherwise), derived from
	// opts.Quantize / opts.BlockRows. Only the CELF solve reads it; rescore,
	// online bound, snapshots and delta maintenance always run the canonical
	// kernels. nil when no tuning is requested, while a mutation overlay is
	// active (ApplyDelta drops it; compaction re-derives it), or when the
	// quantization audit fell back to f64.
	kernTuned *par.Kernel

	// solveTmpl is the finalized budget-free instance over the sparsified
	// subsets — the template RunInto stamps budgeted solve views from without
	// re-finalizing; nil when Tau == 0 (the base instance is the template).
	solveTmpl *par.Instance

	// mm is the snapshot mapping backing this Prepared's slabs when it was
	// loaded via mmap; nil for heap-backed values. See mmapsnap.go.
	mm *snapMapping

	// scratch pools per-Run working state (budgeted views, the rescore
	// evaluator, the CELF solver's heap) for the allocation-free Run path.
	// Entries self-heal on shape changes (Evaluator.ResetFor rebuilds on
	// mismatch), so deltas and compactions need no invalidation.
	scratch sync.Pool

	sizeBytes int64

	fpOnce sync.Once
	fp     string
	fpErr  error

	// PrepTime is the wall-clock cost of the stage (finalize + sparsify +
	// kernel compilation).
	PrepTime time.Duration
	// KernelBuildTime is the portion of PrepTime spent compiling gain
	// kernels.
	KernelBuildTime time.Duration
	// OriginalPairs / SparsifiedPairs report how much τ-sparsification
	// shrank the similarity structure (both zero when Tau == 0). On the LSH
	// path OriginalPairs counts only candidate pairs with positive true
	// similarity.
	OriginalPairs, SparsifiedPairs int
}

// Prepare runs the Data Representation stage on a dataset: it finalizes a
// budget-free view of the instance and, when opts.Tau > 0, τ-sparsifies the
// similarity structure (exact all-pairs, or SimHash candidates when
// opts.UseLSH and the dataset carries CtxVectors).
func Prepare(ctx context.Context, ds *dataset.Dataset, opts PrepareOptions) (*Prepared, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	inst := ds.Instance
	retained := inst.Retained
	if opts.Retained != nil {
		retained = opts.Retained
	}
	// The base view carries budget = total cost so every retained set
	// finalizes; Run re-finalizes against the requested budget.
	base := &par.Instance{
		Cost:     inst.Cost,
		Retained: retained,
		Budget:   inst.TotalCost(),
		Subsets:  inst.Subsets,
	}
	if err := base.Finalize(); err != nil {
		return nil, fmt.Errorf("phocus: %w", err)
	}

	p := &Prepared{base: base, opts: opts}
	if opts.Tau > 0 {
		if opts.UseLSH && len(ds.CtxVectors) == 0 {
			return nil, ErrNoCtxVectors
		}
		var sres sparsify.Result
		var err error
		if opts.UseLSH {
			rng := rand.New(rand.NewSource(opts.Seed))
			sres, err = sparsify.WithLSHWorkers(rng, base, ds.CtxVectors, opts.Tau, opts.Workers, opts.SparsifyObserver)
		} else {
			sres, err = sparsify.ExactWorkers(base, opts.Tau, opts.Workers, opts.SparsifyObserver)
		}
		if err != nil {
			return nil, err
		}
		p.sparse = sres.Instance.Subsets
		p.solveTmpl = sres.Instance
		p.OriginalPairs = sres.PairsBefore
		p.SparsifiedPairs = sres.PairsAfter
		// The sparsified instance shares Cost/Retained with base and is
		// already finalized, so its kernel is valid for every budgeted view
		// Run builds over p.sparse.
		kt := time.Now()
		p.kernSolve = par.CompileKernel(sres.Instance)
		p.kernBase = par.CompileKernel(base)
		p.KernelBuildTime = time.Since(kt)
	} else {
		kt := time.Now()
		p.kernBase = par.CompileKernel(base)
		p.KernelBuildTime = time.Since(kt)
	}
	if err := p.retuneLocked(); err != nil {
		return nil, err
	}
	if opts.Metrics != nil {
		obs.RecordKernelBuild(opts.Metrics, p.KernelBuildTime)
	}
	p.PrepTime = time.Since(start)
	// The sparse view's Members/Relevance slices alias the base subsets'
	// (the sparsifier shares them), so only its similarity structures are
	// new bytes — counting the full subsets again would bill the cache
	// twice for memory retained once.
	p.sizeBytes = instanceSizeBytes(base.Cost, base.Subsets) + simSizeBytes(p.sparse) + p.KernelBytes()
	return p, nil
}

// NumPhotos returns the instance size (husked photos included).
func (p *Prepared) NumPhotos() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.base.NumPhotos()
}

// TotalCost returns Σ C(p), the byte size of the whole archive.
func (p *Prepared) TotalCost() float64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.base.TotalCost()
}

// SizeBytes estimates the memory retained by the Prepared (cost vector,
// subset structure and similarity pairs — sparse and dense — plus the
// compiled gain kernels and their delta overlays); cache byte bounds use it.
func (p *Prepared) SizeBytes() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.sizeBytes
}

// KernelBytes returns the memory retained by the compiled gain kernels
// (included in SizeBytes).
func (p *Prepared) KernelBytes() int64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.kernelBytesLocked()
}

func (p *Prepared) kernelBytesLocked() int64 {
	var n int64
	if p.kernBase != nil {
		n += p.kernBase.SizeBytes()
	}
	if p.kernSolve != nil {
		n += p.kernSolve.SizeBytes()
	}
	if p.kernTuned != nil {
		n += p.kernTuned.SizeBytes()
	}
	return n
}

// retuneLocked re-derives kernTuned from the canonical solve-path kernel per
// opts.Quantize / opts.BlockRows. It leaves kernTuned nil when no tuning is
// requested, when the source kernel carries a mutation overlay (the post-delta
// state; the next compaction re-derives), or when the quantization audit
// rejects the kernel and no blocking was requested.
func (p *Prepared) retuneLocked() error {
	// Parse before touching kernTuned so a bad mode leaves the current
	// tuning in place (Tune's error contract).
	mode, err := par.ParseQuantMode(p.opts.Quantize)
	if err != nil {
		return err
	}
	p.kernTuned = nil
	if mode == par.QuantNone && !p.opts.BlockRows {
		return nil
	}
	src := p.kernSolve
	if src == nil {
		src = p.kernBase
	}
	if src == nil || !src.Canonical() {
		return nil // overlay active: run untuned until the next compaction
	}
	t := src
	if p.opts.BlockRows {
		t = t.BlockRows()
	}
	if mode != par.QuantNone {
		if q, ok := par.KernelQ(t, mode); ok {
			t = q
		} else if !p.opts.BlockRows {
			// The grid audit found a tie and no blocking was requested:
			// nothing tuned survives, the canonical kernel serves the solve.
			return nil
		}
	}
	p.kernTuned = t
	return nil
}

// Tune sets the runtime kernel-tuning knobs (similarity quantization, row
// blocking) and re-derives the tuned solve kernel. Tuning is excluded from
// the fingerprint and from snapshots, so callers that load snapshots call
// Tune afterwards to restore it. An unknown quantize mode leaves the
// Prepared unchanged; on an mmap-backed Prepared whose mapping was already
// released it returns ErrSnapshotUnmapped.
func (p *Prepared) Tune(quantize string, blockRows bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.pin(); err != nil {
		return err
	}
	defer p.unpin()
	var before, after int64
	if p.kernTuned != nil {
		before = p.kernTuned.SizeBytes()
	}
	prevQ, prevB := p.opts.Quantize, p.opts.BlockRows
	p.opts.Quantize, p.opts.BlockRows = quantize, blockRows
	if err := p.retuneLocked(); err != nil {
		p.opts.Quantize, p.opts.BlockRows = prevQ, prevB
		return err
	}
	if p.kernTuned != nil {
		after = p.kernTuned.SizeBytes()
	}
	p.sizeBytes += after - before
	return nil
}

// TunedQuantization reports the quantization mode the tuned solve kernel
// actually carries — QuantNone when untuned, when an overlay is active, or
// when the grid audit fell back to f64.
func (p *Prepared) TunedQuantization() par.QuantMode {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.kernTuned == nil {
		return par.QuantNone
	}
	return p.kernTuned.Quantization()
}

// TunedBlocked reports whether the tuned solve kernel carries a row-blocking
// permutation.
func (p *Prepared) TunedBlocked() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.kernTuned != nil && p.kernTuned.Blocked()
}

// Fingerprint returns the content fingerprint identifying this Prepared: a
// sha256 over the instance bytes (opts.InstanceDigest when supplied,
// InstanceDigest of the base instance otherwise) combined with the
// preparation parameters (tau, lsh, seed, retained override). Two Prepare
// calls with equal fingerprints produce interchangeable Prepared values;
// the run budget is deliberately excluded so budget sweeps share one entry.
// Each ApplyDelta evolves the fingerprint (see delta.go), so a post-churn
// Prepared never answers for its pre-churn cache key.
func (p *Prepared) Fingerprint() (string, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.fingerprintLocked()
}

// fingerprintLocked is Fingerprint for callers already holding mu (either
// side — fpOnce makes the lazy computation itself race-free; the lock only
// protects the fp field against ApplyDelta's rewrite).
func (p *Prepared) fingerprintLocked() (string, error) {
	p.fpOnce.Do(func() {
		digest := p.opts.InstanceDigest
		if digest == "" {
			digest, p.fpErr = InstanceDigest(p.base)
			if p.fpErr != nil {
				return
			}
		}
		p.fp = FingerprintFor(digest, p.opts)
	})
	return p.fp, p.fpErr
}

// InstanceDigest serializes the instance (budget excluded) through sha256
// and returns the hex digest. Note the serialization enumerates similarity
// pairs, so for dense similarity structures this costs O(k²) per subset —
// callers on a hot path should stream a digest of the wire bytes they
// already have and pass it via PrepareOptions.InstanceDigest instead.
func InstanceDigest(inst *par.Instance) (string, error) {
	h := sha256.New()
	c := *inst
	c.Budget = 0 // budget is a Run parameter, not prepared content
	if err := par.WriteBinary(h, &c); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// FingerprintFor combines an instance content digest with the preparation
// parameters into the cache key Prepare/Fingerprint use. Callers that
// digest the wire bytes themselves (phocus-server) call this directly to
// probe the cache before deciding whether to Prepare at all. The run budget
// is excluded so budget sweeps share one entry, and so are the kernel-tuning
// knobs (Quantize, BlockRows): they change how fast a solve runs, never what
// it selects, so tuned and untuned prepares are interchangeable cache values.
func FingerprintFor(digest string, opts PrepareOptions) string {
	h := sha256.New()
	io.WriteString(h, "phocus/prepared/v1\x00")
	io.WriteString(h, digest)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(opts.Tau))
	h.Write(buf[:])
	if opts.UseLSH {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	binary.LittleEndian.PutUint64(buf[:], uint64(opts.Seed))
	h.Write(buf[:])
	if opts.Retained == nil {
		h.Write([]byte{0})
	} else {
		h.Write([]byte{1})
		binary.LittleEndian.PutUint64(buf[:], uint64(len(opts.Retained)))
		h.Write(buf[:])
		for _, id := range opts.Retained {
			binary.LittleEndian.PutUint32(buf[:4], uint32(id))
			h.Write(buf[:4])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// View returns a finalized budgeted view of the Prepared's current base
// instance with the compiled gain kernel attached — the raw material for
// callers that drive their own evaluators between deltas (internal/dynamic's
// maintainer). A budget of 0 means "keep everything". The view aliases the
// Prepared's live structures, so the next ApplyDelta or Compact invalidates
// it; build a fresh view after every delta.
func (p *Prepared) View(budget float64) (*par.Instance, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if err := p.pin(); err != nil {
		return nil, err
	}
	defer p.unpin()
	if budget == 0 {
		budget = p.base.TotalCost()
	}
	v := &par.Instance{
		Cost:     p.base.Cost,
		Retained: p.base.Retained,
		Budget:   budget,
		Subsets:  p.base.Subsets,
	}
	if err := v.Finalize(); err != nil {
		return nil, fmt.Errorf("phocus: %w", err)
	}
	if err := v.AttachKernel(p.kernBase); err != nil {
		return nil, fmt.Errorf("phocus: %w", err)
	}
	return v, nil
}

// runScratch is the pooled per-Run working state of the allocation-free
// solve path: budgeted instance views stamped by ViewInto, the true-objective
// rescore evaluator, the CELF solver and its scratch. Everything in it
// self-heals on shape changes (ResetFor rebuilds evaluators on mismatch, the
// views are restamped every run), so one pool serves a Prepared across
// deltas and compactions without invalidation.
type runScratch struct {
	trueView  par.Instance
	solveView par.Instance
	rescore   *par.Evaluator
	solver    celf.Solver
	celf      celf.Scratch
}

// Run executes the Solver stage against the prepared instance: solve under
// the requested budget (on the sparsified structure when the Prepared has
// one), rescore under the true objective, and compute the online bound.
// Cancellation propagates into the solver through par.ContextSolver, so a
// canceled ctx stops the solve mid-run and Run returns the context's error.
// Run holds the Prepared's read lock for its full duration: concurrent Runs
// proceed freely, while an ApplyDelta waits for them to drain. It is a thin
// wrapper over RunInto with a fresh Result.
func (p *Prepared) Run(ctx context.Context, opts RunOptions) (*Result, error) {
	res := &Result{}
	if err := p.RunInto(ctx, opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// RunInto is Run writing into a caller-owned Result: scalar fields are
// reset, and the Solution.Photos and Archived slices are truncated and
// refilled in place, so a warm steady state — stable shapes, AlgoCELF,
// Workers ≤ 1, SkipBound — performs zero heap allocations per call
// (testing.AllocsPerRun reports 0; the bench suite pins it). The previous
// contents of res are gone after the call, error or not. On an mmap-backed
// Prepared whose mapping was released by cache eviction it fails fast with
// ErrSnapshotUnmapped — callers re-prepare and retry.
func (p *Prepared) RunInto(ctx context.Context, opts RunOptions, res *Result) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if err := p.pin(); err != nil {
		return err
	}
	defer p.unpin()

	photos := res.Solution.Photos[:0]
	archived := res.Archived[:0]
	*res = Result{
		OriginalPairs:   p.OriginalPairs,
		SparsifiedPairs: p.SparsifiedPairs,
		PrepTime:        p.PrepTime,
	}

	budget := opts.Budget
	if budget == 0 {
		budget = p.base.TotalCost()
	}

	sc, _ := p.scratch.Get().(*runScratch)
	if sc == nil {
		sc = &runScratch{}
	}
	// Budgeted views for this run only, stamped from the finalized templates
	// without re-running Finalize (ViewInto): concurrent Runs hold distinct
	// scratch, and nothing here mutates the shared Subsets.
	//
	// The kernels were compiled once at Prepare time over the same subset
	// layouts these views share, so attaching is just a validation + pointer
	// set; the solver, rescore and online-bound passes all run the compiled
	// hot path.
	err := p.base.ViewInto(&sc.trueView, budget)
	if err == nil {
		err = sc.trueView.AttachKernel(p.kernBase)
	}
	solveInst := &sc.trueView
	// The tuned (quantized/row-blocked) kernel accelerates only the CELF
	// solve; every other algorithm — and the rescore and bound below — runs
	// the canonical kernels.
	tuned := p.kernTuned
	if opts.Algorithm != "" && opts.Algorithm != AlgoCELF {
		tuned = nil
	}
	if err == nil && p.solveTmpl != nil {
		k := p.kernSolve
		if tuned != nil {
			k = tuned
		}
		if err = p.solveTmpl.ViewInto(&sc.solveView, budget); err == nil {
			err = sc.solveView.AttachKernel(k)
		}
		solveInst = &sc.solveView
	} else if err == nil && tuned != nil {
		// τ == 0: solve on a separate tuned view of the base so the true
		// view keeps the canonical kernel for the rescore.
		if err = p.base.ViewInto(&sc.solveView, budget); err == nil {
			err = sc.solveView.AttachKernel(tuned)
		}
		solveInst = &sc.solveView
	}
	if err != nil {
		p.scratch.Put(sc)
		return fmt.Errorf("phocus: %w", err)
	}

	t0 := time.Now()
	var sol par.Solution
	switch opts.Algorithm {
	case "", AlgoCELF:
		sc.solver = celf.Solver{Workers: opts.Workers, Observer: opts.Observer, OnStats: opts.OnCELFStats, Scratch: &sc.celf}
		res.Algorithm = sc.solver.Name()
		sol, err = sc.solver.SolveContext(ctx, solveInst)
	case AlgoSviridenko:
		s := &sviridenko.Solver{Depth: opts.SviridenkoDepth, OnStats: opts.OnSviridenkoStats}
		res.Algorithm = s.Name()
		sol, err = s.SolveContext(ctx, solveInst)
	case AlgoExact:
		s := &exact.Solver{MaxNodes: opts.ExactMaxNodes, OnStats: opts.OnExactStats}
		res.Algorithm = s.Name()
		sol, err = s.SolveContext(ctx, solveInst)
	case AlgoStreaming:
		s := &streaming.Solver{}
		res.Algorithm = s.Name()
		sol, err = s.SolveContext(ctx, solveInst)
	default:
		p.scratch.Put(sc)
		return fmt.Errorf("phocus: unknown algorithm %q", opts.Algorithm)
	}
	if err != nil {
		p.scratch.Put(sc)
		return err
	}
	res.SolveTime = time.Since(t0)

	// Rescore under the true objective through the pooled evaluator (the
	// solver may have optimized the sparsified or quantized surrogate). The
	// Add sequence is exactly par.ScoreFast's, so the score is bit-identical
	// to the allocating path's.
	if sc.rescore == nil {
		sc.rescore = par.NewEvaluator(&sc.trueView)
	} else {
		sc.rescore.ResetFor(&sc.trueView)
	}
	re := sc.rescore
	for _, ph := range sol.Photos {
		re.Add(ph)
	}
	photos = append(photos, sol.Photos...)
	res.Solution = par.Solution{Photos: photos, Score: re.Score(), Cost: sol.Cost}

	// The rescore evaluator's membership is exactly the solution set, so the
	// archived complement falls out without a marker allocation.
	n := sc.trueView.NumPhotos()
	for ph := 0; ph < n; ph++ {
		if !re.Contains(par.PhotoID(ph)) {
			archived = append(archived, par.PhotoID(ph))
		}
	}
	res.Archived = archived

	if !opts.SkipBound {
		if err := ctx.Err(); err != nil {
			p.scratch.Put(sc)
			return err
		}
		res.OnlineBound = celf.OnlineBound(&sc.trueView, res.Solution.Photos)
		if res.OnlineBound > 0 {
			res.CertifiedRatio = res.Solution.Score / res.OnlineBound
		} else {
			res.CertifiedRatio = 1
		}
	}
	p.scratch.Put(sc)
	return nil
}

// instanceSizeBytes estimates the retained bytes of an instance's cost
// vector and subsets.
func instanceSizeBytes(cost []float64, subsets []par.Subset) int64 {
	return 8*int64(len(cost)) + subsetsSizeBytes(subsets)
}

// subsetsSizeBytes estimates the retained bytes of a subset slice: members,
// relevances and similarity structures.
func subsetsSizeBytes(subsets []par.Subset) int64 {
	var n int64
	for qi := range subsets {
		q := &subsets[qi]
		n += 4*int64(len(q.Members)) + 8*int64(len(q.Relevance))
	}
	return n + simSizeBytes(subsets)
}

// simSizeBytes estimates the retained bytes of the subsets' similarity
// structures alone. Types that know their own storage (DenseSim's packed
// triangle, SparseSim's rows, CSRSim's zero — it views a slab accounted by
// its owner) report it exactly; other neighbor-listing types are billed 16
// bytes per listed pair; function-backed similarities retain nothing
// measurable and count zero rather than an invented k².
func simSizeBytes(subsets []par.Subset) int64 {
	var n int64
	for qi := range subsets {
		q := &subsets[qi]
		switch sim := q.Sim.(type) {
		case interface{ SizeBytes() int64 }:
			n += sim.SizeBytes()
		case par.NeighborLister:
			for i := 0; i < len(q.Members); i++ {
				n += 16 * int64(len(sim.Neighbors(i)))
			}
		}
	}
	return n
}

// PipelineSolver adapts the staged engine to par.Solver for harnesses that
// inject solvers generically (the user-study judge, solver comparison
// tables): each Solve wraps the instance in a vector-less dataset and runs
// Prepare + Run with the solve's own budget, skipping the online bound.
type PipelineSolver struct {
	// Algorithm defaults to AlgoCELF.
	Algorithm Algorithm
	// Tau enables exact τ-sparsification per solve when positive.
	Tau float64
	// Workers bounds sparsify and solver parallelism (≤ 0 = one per CPU).
	Workers int
	// ExactMaxNodes caps AlgoExact's branch-and-bound (0 = unlimited).
	ExactMaxNodes int64
	// SviridenkoDepth is AlgoSviridenko's enumeration depth (0 = 3).
	SviridenkoDepth int
	// OnCELFStats receives the CELF work report after each AlgoCELF solve.
	OnCELFStats func(celf.Stats)
}

// Name implements par.Solver, reporting the underlying algorithm's name.
func (s *PipelineSolver) Name() string { return s.Algorithm.DisplayName() }

// Solve implements par.Solver.
func (s *PipelineSolver) Solve(inst *par.Instance) (par.Solution, error) {
	return s.SolveContext(context.Background(), inst)
}

// SolveContext implements par.ContextSolver by routing through the staged
// engine.
func (s *PipelineSolver) SolveContext(ctx context.Context, inst *par.Instance) (par.Solution, error) {
	p, err := Prepare(ctx, &dataset.Dataset{Instance: inst}, PrepareOptions{
		Tau:     s.Tau,
		Workers: s.Workers,
	})
	if err != nil {
		return par.Solution{}, err
	}
	res, err := p.Run(ctx, RunOptions{
		Budget:          inst.Budget,
		Algorithm:       s.Algorithm,
		SkipBound:       true,
		Workers:         s.Workers,
		ExactMaxNodes:   s.ExactMaxNodes,
		SviridenkoDepth: s.SviridenkoDepth,
		OnCELFStats:     s.OnCELFStats,
	})
	if err != nil {
		return par.Solution{}, err
	}
	return res.Solution, nil
}
