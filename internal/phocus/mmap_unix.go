//go:build linux || darwin

package phocus

import (
	"fmt"
	"os"
	"syscall"
)

const mmapSupported = true

// mmapFile maps size bytes of f as a private read-write mapping: reads hit
// the page cache, writes (delta maintenance tombstoning kernel rows in
// place) copy-on-write the touched pages without dirtying the file. The
// returned region is page-aligned, which satisfies the 8-byte alignment the
// zero-copy snapshot views require.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if int64(int(size)) != size {
		return nil, fmt.Errorf("phocus: snapshot too large to map: %d bytes", size)
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, err
	}
	// Decode reads the whole file (section checksums) immediately after
	// mapping; tell the kernel to read ahead. Advice is best-effort.
	_ = syscall.Madvise(b, syscall.MADV_WILLNEED)
	return b, nil
}

func munmapBuf(b []byte) error { return syscall.Munmap(b) }
