// Delta maintenance: the churn path of the staged engine. A Delta describes
// a batch of archive changes — photos added (with explicit similarity rows),
// photos removed, new pre-defined subsets — and Prepared.ApplyDelta folds it
// into a live Prepared in place: the finalized base instance, the
// τ-sparsified view and both compiled gain kernels are updated incrementally
// instead of re-running the Data Representation stage from scratch.
//
// Semantics. Removed photos become "husks": they keep their photo ID, their
// member slots and their byte cost, but their relevance drops to 0 and every
// off-diagonal similarity involving them is masked, so they can never again
// cover anything or be worth selecting. Added photos get the next dense IDs
// (n, n+1, ... for a batch against an n-photo instance). An existing photo
// can only gain new memberships through NewSubsets — joining a pre-existing
// subset would break the kernel overlay's occurrence-order invariant — while
// added photos may join existing subsets and new subsets alike.
//
// Similarities arrive IN the delta: the caller supplies each new member's
// similarity row explicitly (DeltaNeighbor), so ApplyDelta computes no
// similarity function at all. This is what makes delta application cheap
// relative to a cold Prepare, whose sparsification and kernel compile
// evaluate O(Σ k²) similarity calls over dense subsets.
//
// Equivalence. MergeDelta applies the same resolved plan, with the same
// float operations in the same order, to a standalone instance. A cold
// Prepare over the merged instance therefore produces bit-identical
// similarity values, relevance vectors and kernel entries — and hence
// identical Run selections — to the incrementally maintained Prepared, which
// is the differential property the delta tests pin.
//
// Relevance semantics. DeltaMembership.Relevance values are raw mass on the
// same scale as the subset's current (normalized) relevance vector: after a
// batch, every touched subset is renormalized to sum 1, so existing live
// members keep their relative proportions and a new member with relevance r
// lands near r/(1+Σr') of the subset's mass.
package phocus

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"phocus/internal/par"
)

// ErrDeltaLSH is returned by ApplyDelta on an LSH-prepared instance: delta
// maintenance needs explicit similarity rows, but LSH preparation derives
// candidates from context vectors the Prepared does not retain.
var ErrDeltaLSH = errors.New("phocus: ApplyDelta does not support LSH-prepared instances")

// ErrEmptyDelta is returned when a Delta contains no operations; applying it
// would evolve the fingerprint (invalidating caches and snapshots) without
// changing anything.
var ErrEmptyDelta = errors.New("phocus: empty delta")

// Delta is one batch of archive churn.
type Delta struct {
	// Add lists new photos; photo i of the batch gets ID n+i against an
	// n-photo instance.
	Add []DeltaPhoto `json:"add,omitempty"`
	// Remove lists photo IDs to retire. Retained (S0) photos cannot be
	// removed.
	Remove []par.PhotoID `json:"remove,omitempty"`
	// NewSubsets appends whole new pre-defined subsets, the only way existing
	// photos gain memberships.
	NewSubsets []DeltaSubset `json:"new_subsets,omitempty"`
}

// DeltaPhoto is one added photo.
type DeltaPhoto struct {
	// Cost is the photo's byte size C(p); must be positive.
	Cost float64 `json:"cost"`
	// Memberships places the photo into pre-existing subsets, in strictly
	// ascending subset order.
	Memberships []DeltaMembership `json:"memberships,omitempty"`
}

// DeltaMembership joins an added photo to one pre-existing subset.
type DeltaMembership struct {
	// Subset indexes Prepared's subset list as of the start of the batch.
	Subset int `json:"subset"`
	// Relevance is the photo's raw relevance mass in the subset (see the
	// package comment for the renormalization contract); must be positive.
	Relevance float64 `json:"relevance"`
	// Neighbors lists the photo's positive contextual similarities to live
	// members of the subset. Pairs omitted here are similarity 0 forever.
	Neighbors []DeltaNeighbor `json:"neighbors,omitempty"`
}

// DeltaNeighbor is one explicit similarity pair of a delta row. The
// referenced photo must resolve to a live member: a husk reference is
// rejected, because a removed member's masked similarities can never come
// back.
type DeltaNeighbor struct {
	Photo par.PhotoID `json:"photo"`
	Sim   float64     `json:"sim"` // in (0, 1]
}

// DeltaSubset is one appended pre-defined subset.
type DeltaSubset struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	// Members may mix existing live photos and photos added in this batch
	// (referenced by their final IDs, n+i).
	Members []DeltaSubsetMember `json:"members"`
}

// DeltaSubsetMember is one member of an appended subset. Neighbors reference
// EARLIER members of the same new subset (by photo ID).
type DeltaSubsetMember struct {
	Photo     par.PhotoID     `json:"photo"`
	Relevance float64         `json:"relevance"`
	Neighbors []DeltaNeighbor `json:"neighbors,omitempty"`
}

// Empty reports whether the delta contains no operations.
func (d *Delta) Empty() bool {
	return len(d.Add) == 0 && len(d.Remove) == 0 && len(d.NewSubsets) == 0
}

// Digest returns a deterministic sha256 over the delta's full content; the
// fingerprint evolution chain hashes it together with the pre-delta
// fingerprint.
func (d *Delta) Digest() string {
	h := sha256.New()
	var tmp [8]byte
	u32 := func(v int) { binary.LittleEndian.PutUint32(tmp[:4], uint32(v)); h.Write(tmp[:4]) }
	f64 := func(v float64) { binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v)); h.Write(tmp[:]) }
	nbrs := func(ns []DeltaNeighbor) {
		u32(len(ns))
		for _, nb := range ns {
			u32(int(nb.Photo))
			f64(nb.Sim)
		}
	}
	io.WriteString(h, "phocus/delta-digest/v1\x00")
	u32(len(d.Add))
	for _, ap := range d.Add {
		f64(ap.Cost)
		u32(len(ap.Memberships))
		for _, m := range ap.Memberships {
			u32(m.Subset)
			f64(m.Relevance)
			nbrs(m.Neighbors)
		}
	}
	u32(len(d.Remove))
	for _, p := range d.Remove {
		u32(int(p))
	}
	u32(len(d.NewSubsets))
	for _, ns := range d.NewSubsets {
		u32(len(ns.Name))
		io.WriteString(h, ns.Name)
		f64(ns.Weight)
		u32(len(ns.Members))
		for _, m := range ns.Members {
			u32(int(m.Photo))
			f64(m.Relevance)
			nbrs(m.Neighbors)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// DeltaStats reports what one ApplyDelta call did.
type DeltaStats struct {
	// Added / Removed / NewSubsets count the batch's operations.
	Added, Removed, NewSubsets int
	// Compacted reports whether the apply triggered a kernel compaction.
	Compacted bool
	// LiveFraction is the base kernel's live-entry fraction after the apply
	// (1 after a compaction).
	LiveFraction float64
	// OldFingerprint / NewFingerprint are the fingerprints before and after
	// the batch; caches key on them.
	OldFingerprint, NewFingerprint string
	// ApplyTime is the wall-clock cost of the apply (compaction included).
	ApplyTime time.Duration
}

// ---------------------------------------------------------------------------
// Resolution: validate a Delta against the current instance and turn photo
// IDs into member indices, producing a plan whose application cannot fail.

type memPlan struct {
	subset int
	mi     int
	rel    float64
	nbrs   []par.Neighbor // resolved member indices, ascending
}

type addPlan struct {
	photo par.PhotoID
	cost  float64
	mems  []memPlan
}

type newMemberPlan struct {
	photo par.PhotoID
	rel   float64
	nbrs  []par.Neighbor
}

type newSubsetPlan struct {
	subset  int
	name    string
	weight  float64
	members []newMemberPlan
}

type removalPlan struct {
	photo par.PhotoID
	occ   []par.Occurrence
}

type deltaPlan struct {
	removals []removalPlan
	adds     []addPlan
	newSubs  []newSubsetPlan
	touched  []int // ascending subset indices needing renormalization
	oldSubs  int   // subset count before the batch
}

func isRemoved(removed []bool, p par.PhotoID) bool {
	return int(p) < len(removed) && removed[p]
}

func removedCount(removed []bool) int {
	n := 0
	for _, r := range removed {
		if r {
			n++
		}
	}
	return n
}

// resolveDelta validates d against inst (which must be finalized) and the
// removed-photo bitmap, and resolves every photo reference to a member
// index. It performs no mutation: any error leaves everything untouched.
func resolveDelta(inst *par.Instance, removed []bool, d *Delta) (*deltaPlan, error) {
	if d.Empty() {
		return nil, ErrEmptyDelta
	}
	nOld := inst.NumPhotos()
	nSub := len(inst.Subsets)
	nTotal := nOld + len(d.Add)
	plan := &deltaPlan{oldSubs: nSub}
	touched := map[int]bool{}

	removing := map[par.PhotoID]bool{}
	for _, p := range d.Remove {
		if int(p) < 0 || int(p) >= nOld {
			return nil, fmt.Errorf("phocus: delta removes unknown photo %d", p)
		}
		if isRemoved(removed, p) {
			return nil, fmt.Errorf("phocus: delta removes photo %d twice (already removed)", p)
		}
		if removing[p] {
			return nil, fmt.Errorf("phocus: delta removes photo %d twice", p)
		}
		if inst.IsRetained(p) {
			return nil, fmt.Errorf("phocus: delta removes retained photo %d", p)
		}
		removing[p] = true
		occ := inst.Occurrences(p)
		plan.removals = append(plan.removals, removalPlan{photo: p, occ: occ})
		for _, oc := range occ {
			touched[oc.Subset] = true
		}
	}

	dead := func(p par.PhotoID) bool {
		return int(p) < nOld && (isRemoved(removed, p) || removing[p])
	}

	// resolveNbrs maps one neighbor list through lookup, enforcing liveness,
	// similarity range and uniqueness, and returns it sorted by member index
	// (the ascending-entry invariant of both DeltaSim and the kernel overlay).
	resolveNbrs := func(where string, raw []DeltaNeighbor, lookup func(par.PhotoID) (int, bool)) ([]par.Neighbor, error) {
		if len(raw) == 0 {
			return nil, nil
		}
		out := make([]par.Neighbor, 0, len(raw))
		seen := make(map[int]bool, len(raw))
		for _, nb := range raw {
			if !(nb.Sim > 0 && nb.Sim <= 1) {
				return nil, fmt.Errorf("phocus: %s: neighbor similarity %g out of (0,1]", where, nb.Sim)
			}
			if int(nb.Photo) < 0 || int(nb.Photo) >= nTotal {
				return nil, fmt.Errorf("phocus: %s: neighbor references unknown photo %d", where, nb.Photo)
			}
			if dead(nb.Photo) {
				return nil, fmt.Errorf("phocus: %s: neighbor references removed photo %d", where, nb.Photo)
			}
			j, ok := lookup(nb.Photo)
			if !ok {
				return nil, fmt.Errorf("phocus: %s: neighbor photo %d is not an earlier member", where, nb.Photo)
			}
			if seen[j] {
				return nil, fmt.Errorf("phocus: %s: duplicate neighbor photo %d", where, nb.Photo)
			}
			seen[j] = true
			out = append(out, par.Neighbor{Index: j, Sim: nb.Sim})
		}
		sort.Slice(out, func(a, b int) bool { return out[a].Index < out[b].Index })
		return out, nil
	}

	// batchMi[qi] maps photos appended to existing subset qi this batch to
	// their member indices.
	batchMi := map[int]map[par.PhotoID]int{}
	memberIn := func(qi int, p par.PhotoID) (int, bool) {
		if m := batchMi[qi]; m != nil {
			if mi, ok := m[p]; ok {
				return mi, true
			}
		}
		if int(p) < nOld {
			for _, oc := range inst.Occurrences(p) {
				if oc.Subset == qi {
					return oc.Index, true
				}
			}
		}
		return 0, false
	}

	for i, ap := range d.Add {
		photo := par.PhotoID(nOld + i)
		where := fmt.Sprintf("added photo %d", photo)
		if !(ap.Cost > 0) || math.IsInf(ap.Cost, 0) {
			return nil, fmt.Errorf("phocus: %s: cost %g must be positive and finite", where, ap.Cost)
		}
		a := addPlan{photo: photo, cost: ap.Cost}
		lastQ := -1
		for _, m := range ap.Memberships {
			if m.Subset < 0 || m.Subset >= nSub {
				return nil, fmt.Errorf("phocus: %s: membership references unknown subset %d (new subsets cannot be joined via memberships)", where, m.Subset)
			}
			if m.Subset <= lastQ {
				return nil, fmt.Errorf("phocus: %s: memberships must be in strictly ascending subset order", where)
			}
			lastQ = m.Subset
			if !(m.Relevance > 0) || math.IsInf(m.Relevance, 0) {
				return nil, fmt.Errorf("phocus: %s: relevance %g must be positive and finite", where, m.Relevance)
			}
			qi := m.Subset
			nbrs, err := resolveNbrs(fmt.Sprintf("%s, subset %d", where, qi), m.Neighbors,
				func(p par.PhotoID) (int, bool) { return memberIn(qi, p) })
			if err != nil {
				return nil, err
			}
			mi := len(inst.Subsets[qi].Members)
			if bm := batchMi[qi]; bm != nil {
				mi += len(bm)
			} else {
				batchMi[qi] = map[par.PhotoID]int{}
			}
			batchMi[qi][photo] = mi
			touched[qi] = true
			a.mems = append(a.mems, memPlan{subset: qi, mi: mi, rel: m.Relevance, nbrs: nbrs})
		}
		plan.adds = append(plan.adds, a)
	}

	for k, ns := range d.NewSubsets {
		qi := nSub + k
		where := fmt.Sprintf("new subset %d (%q)", qi, ns.Name)
		if !(ns.Weight > 0) || math.IsInf(ns.Weight, 0) {
			return nil, fmt.Errorf("phocus: %s: weight %g must be positive and finite", where, ns.Weight)
		}
		if len(ns.Members) == 0 {
			return nil, fmt.Errorf("phocus: %s: no members", where)
		}
		posOf := make(map[par.PhotoID]int, len(ns.Members))
		sp := newSubsetPlan{subset: qi, name: ns.Name, weight: ns.Weight}
		for _, m := range ns.Members {
			if int(m.Photo) < 0 || int(m.Photo) >= nTotal {
				return nil, fmt.Errorf("phocus: %s: unknown member photo %d", where, m.Photo)
			}
			if dead(m.Photo) {
				return nil, fmt.Errorf("phocus: %s: member photo %d is removed", where, m.Photo)
			}
			if _, dup := posOf[m.Photo]; dup {
				return nil, fmt.Errorf("phocus: %s: duplicate member photo %d", where, m.Photo)
			}
			if !(m.Relevance > 0) || math.IsInf(m.Relevance, 0) {
				return nil, fmt.Errorf("phocus: %s: relevance %g must be positive and finite", where, m.Relevance)
			}
			nbrs, err := resolveNbrs(fmt.Sprintf("%s, member %d", where, m.Photo), m.Neighbors,
				func(p par.PhotoID) (int, bool) { j, ok := posOf[p]; return j, ok })
			if err != nil {
				return nil, err
			}
			posOf[m.Photo] = len(sp.members)
			sp.members = append(sp.members, newMemberPlan{photo: m.Photo, rel: m.Relevance, nbrs: nbrs})
		}
		plan.newSubs = append(plan.newSubs, sp)
		touched[qi] = true
	}

	// A touched pre-existing subset must keep positive relevance mass: at
	// least one surviving member with positive relevance, or a member added
	// this batch. The check is exact (no float summation), so a plan that
	// passes it cannot fail renormalization later.
	for qi := 0; qi < nSub; qi++ {
		if !touched[qi] {
			continue
		}
		if m := batchMi[qi]; len(m) > 0 {
			continue
		}
		q := &inst.Subsets[qi]
		alive := false
		for mi, p := range q.Members {
			if !dead(p) && q.Relevance[mi] > 0 {
				alive = true
				break
			}
		}
		if !alive {
			return nil, fmt.Errorf("phocus: delta leaves subset %d with no live relevance mass", qi)
		}
	}

	plan.touched = make([]int, 0, len(touched))
	for qi := range touched {
		plan.touched = append(plan.touched, qi)
	}
	sort.Ints(plan.touched)
	return plan, nil
}

// ---------------------------------------------------------------------------
// Application: the shared instance-mutation core. ApplyDelta and MergeDelta
// both run exactly this code over the instance, so the similarity values and
// relevance vectors they produce are bit-identical.

// cowForPlan gives inst owned copies of the slices the plan will mutate: the
// Cost vector, the Subsets slice header, and the Members/Relevance slices of
// every touched pre-existing subset. Similarity structures are not copied —
// DeltaSim wrapping never mutates the wrapped inner similarity.
func cowForPlan(inst *par.Instance, plan *deltaPlan) {
	inst.Cost = append([]float64(nil), inst.Cost...)
	inst.Subsets = append([]par.Subset(nil), inst.Subsets...)
	for _, qi := range plan.touched {
		if qi >= plan.oldSubs {
			continue // appended subsets are built fresh
		}
		q := &inst.Subsets[qi]
		q.Members = append([]par.PhotoID(nil), q.Members...)
		q.Relevance = append([]float64(nil), q.Relevance...)
	}
}

// wrapSim returns q's similarity as a mutable *par.DeltaSim. When owned is
// non-nil, wrappers this engine created earlier are reused (the live
// Prepared accumulates one overlay per subset); with owned nil a fresh
// wrapper is always layered on, leaving the input similarity untouched
// (MergeDelta must not mutate its input instance).
func wrapSim(s par.Similarity, owned map[*par.DeltaSim]bool) *par.DeltaSim {
	if ds, ok := s.(*par.DeltaSim); ok && owned != nil && owned[ds] {
		return ds
	}
	ds := par.NewDeltaSim(s)
	if owned != nil {
		owned[ds] = true
	}
	return ds
}

// renormalize rescales rel to sum 1. resolveDelta guarantees positive mass,
// so an error here indicates an engine bug, not bad input.
func renormalize(rel []float64) error {
	var sum float64
	for _, r := range rel {
		sum += r
	}
	if !(sum > 0) || math.IsInf(sum, 0) {
		return errors.New("relevance mass is not positive")
	}
	for i := range rel {
		rel[i] /= sum
	}
	return nil
}

// applyPlan folds the resolved plan into inst: husk the removals, append the
// added members and subsets, renormalize every touched relevance vector, and
// re-finalize with budget = total cost. inst must already be copy-on-write
// prepared via cowForPlan.
func applyPlan(inst *par.Instance, plan *deltaPlan, owned map[*par.DeltaSim]bool) error {
	for _, rm := range plan.removals {
		for _, oc := range rm.occ {
			q := &inst.Subsets[oc.Subset]
			ds := wrapSim(q.Sim, owned)
			ds.MaskMember(oc.Index)
			q.Sim = ds
			q.Relevance[oc.Index] = 0
		}
	}
	for _, ap := range plan.adds {
		inst.Cost = append(inst.Cost, ap.cost)
		for _, m := range ap.mems {
			q := &inst.Subsets[m.subset]
			ds := wrapSim(q.Sim, owned)
			ds.AppendMember(m.nbrs)
			q.Sim = ds
			q.Members = append(q.Members, ap.photo)
			q.Relevance = append(q.Relevance, m.rel)
		}
	}
	for _, ns := range plan.newSubs {
		members := make([]par.PhotoID, len(ns.members))
		rel := make([]float64, len(ns.members))
		ss := par.NewSparseSim(len(ns.members))
		for pos, m := range ns.members {
			members[pos] = m.photo
			rel[pos] = m.rel
			for _, nb := range m.nbrs {
				ss.Add(pos, nb.Index, nb.Sim)
			}
		}
		inst.Subsets = append(inst.Subsets, par.Subset{
			Name: ns.name, Weight: ns.weight,
			Members: members, Relevance: rel, Sim: ss,
		})
	}
	for _, qi := range plan.touched {
		if err := renormalize(inst.Subsets[qi].Relevance); err != nil {
			return fmt.Errorf("phocus: subset %d: %w", qi, err)
		}
	}
	inst.Budget = inst.TotalCost()
	if err := inst.Finalize(); err != nil {
		return fmt.Errorf("phocus: delta finalize: %w", err)
	}
	return nil
}

// tauFilter keeps the neighbors the τ-sparsified view retains, matching the
// sparsifier's keep predicate (sim ≥ τ; delta sims are always positive).
func tauFilter(nbrs []par.Neighbor, tau float64) []par.Neighbor {
	out := make([]par.Neighbor, 0, len(nbrs))
	for _, nb := range nbrs {
		if nb.Sim >= tau {
			out = append(out, nb)
		}
	}
	return out
}

// deltaFingerprint evolves a prepared fingerprint by one applied delta.
func deltaFingerprint(old string, d *Delta) string {
	h := sha256.New()
	io.WriteString(h, "phocus/delta/v1\x00")
	io.WriteString(h, old)
	io.WriteString(h, d.Digest())
	return hex.EncodeToString(h.Sum(nil))
}

// compactLiveFraction is the live-entry fraction below which ApplyDelta
// compacts the kernels; overlayGrowthDivisor bounds how large the append
// overlay may grow relative to the compiled slabs before compaction.
const (
	compactLiveFraction  = 0.75
	overlayGrowthDivisor = 4
)

// ApplyDelta folds one churn batch into the Prepared in place: base
// instance, sparsified view and compiled kernels are all updated
// incrementally, the content fingerprint evolves to
// sha256("phocus/delta/v1" ‖ oldFP ‖ digest(delta)), and SizeBytes is
// recomputed. When tombstoned entries or the append overlay grow past their
// thresholds the kernels are compacted (recompiled from the incrementally
// maintained similarity structures), restoring the canonical flat layout.
//
// ApplyDelta serializes against Run: it blocks until in-flight runs drain
// and blocks new ones while it mutates. A validation error (wrong photo ID,
// husk neighbor reference, empty delta, ...) leaves the Prepared unchanged.
func (p *Prepared) ApplyDelta(ctx context.Context, d *Delta) (*DeltaStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.opts.UseLSH {
		return nil, ErrDeltaLSH
	}
	if err := p.pin(); err != nil {
		return nil, err
	}
	defer p.unpin()
	start := time.Now()

	// The evolved fingerprint chains from the current one, so force it to
	// exist before mutation.
	oldFP, err := p.fingerprintLocked()
	if err != nil {
		return nil, err
	}

	plan, err := resolveDelta(p.base, p.removed, d)
	if err != nil {
		return nil, err
	}

	if p.ownedSims == nil {
		p.ownedSims = map[*par.DeltaSim]bool{}
	}

	// Instance mutation on a copy-on-write view; the plan is fully validated,
	// so a failure here is an engine invariant violation.
	newBase := &par.Instance{
		Cost:     p.base.Cost,
		Retained: p.base.Retained,
		Subsets:  p.base.Subsets,
	}
	cowForPlan(newBase, plan)
	if err := applyPlan(newBase, plan, p.ownedSims); err != nil {
		return nil, err
	}

	// The tuned (quantized/blocked) solve kernel cannot absorb structural
	// mutations — par.Kernel panics rather than let one through — so it is
	// dropped for the overlay-active period and re-derived by the next
	// compaction. Deltas always land on the canonical kernels.
	p.kernTuned = nil

	// Kernel structural updates mirror the plan entry for entry. Ordering
	// matters twice over: per photo, rows must be appended in ascending
	// subset order (memberships first, new subsets after — new subsets have
	// the highest indices), and W·R rewrites must come after both the
	// renormalization above and the appends below.
	kb, ks := p.kernBase, p.kernSolve
	for _, rm := range plan.removals {
		for _, oc := range rm.occ {
			kb.TombstoneRow(oc.Subset, oc.Index)
			if ks != nil {
				ks.TombstoneRow(oc.Subset, oc.Index)
			}
		}
	}
	for _, ap := range plan.adds {
		kb.AppendPhoto()
		if ks != nil {
			ks.AppendPhoto()
		}
		for _, m := range ap.mems {
			kb.AppendMemberRow(m.subset, ap.photo, m.nbrs)
			if ks != nil {
				ks.AppendMemberRow(m.subset, ap.photo, tauFilter(m.nbrs, p.opts.Tau))
			}
		}
	}
	for _, ns := range plan.newSubs {
		kb.AppendSubset()
		if ks != nil {
			ks.AppendSubset()
		}
		for _, m := range ns.members {
			kb.AppendMemberRow(ns.subset, m.photo, m.nbrs)
			if ks != nil {
				ks.AppendMemberRow(ns.subset, m.photo, tauFilter(m.nbrs, p.opts.Tau))
			}
		}
	}

	// Sparsified view: mask, append and extend in lockstep with the base,
	// filtered by the sparsifier's τ predicate, then re-point the shared
	// Members/Relevance slices at the copy-on-write ones.
	if p.sparse != nil {
		for _, rm := range plan.removals {
			for _, oc := range rm.occ {
				q := &p.sparse[oc.Subset]
				ds := wrapSim(q.Sim, p.ownedSims)
				ds.MaskMember(oc.Index)
				q.Sim = ds
			}
		}
		for _, ap := range plan.adds {
			for _, m := range ap.mems {
				q := &p.sparse[m.subset]
				ds := wrapSim(q.Sim, p.ownedSims)
				ds.AppendMember(tauFilter(m.nbrs, p.opts.Tau))
				q.Sim = ds
			}
		}
		for _, ns := range plan.newSubs {
			nq := &newBase.Subsets[ns.subset]
			ss := par.NewSparseSim(len(ns.members))
			for pos, m := range ns.members {
				for _, nb := range tauFilter(m.nbrs, p.opts.Tau) {
					ss.Add(pos, nb.Index, nb.Sim)
				}
				_ = pos
			}
			p.sparse = append(p.sparse, par.Subset{
				Name: nq.Name, Weight: nq.Weight,
				Members: nq.Members, Relevance: nq.Relevance, Sim: ss,
			})
		}
		for _, qi := range plan.touched {
			if qi < plan.oldSubs {
				p.sparse[qi].Members = newBase.Subsets[qi].Members
				p.sparse[qi].Relevance = newBase.Subsets[qi].Relevance
			}
		}
	}

	// Fused W·R rewrite over every renormalized subset, in both kernels.
	for _, qi := range plan.touched {
		q := &newBase.Subsets[qi]
		kb.RewriteWR(qi, q.Weight, q.Relevance)
		if ks != nil {
			ks.RewriteWR(qi, q.Weight, q.Relevance)
		}
	}

	// Commit: swap the instance in, grow the removed bitmap, evolve the
	// fingerprint, recount bytes.
	p.base = newBase
	if p.removed == nil {
		p.removed = make([]bool, 0, newBase.NumPhotos())
	}
	for len(p.removed) < newBase.NumPhotos() {
		p.removed = append(p.removed, false)
	}
	for _, rm := range plan.removals {
		p.removed[rm.photo] = true
	}
	p.fp = deltaFingerprint(oldFP, d)
	p.fpErr = nil

	stats := &DeltaStats{
		Added:          len(d.Add),
		Removed:        len(d.Remove),
		NewSubsets:     len(d.NewSubsets),
		OldFingerprint: oldFP,
		NewFingerprint: p.fp,
	}

	overlay := kb.OverlayEntries()
	if kb.LiveFraction() < compactLiveFraction || overlay*overlayGrowthDivisor > kb.Entries()-overlay {
		if err := p.compactLocked(); err != nil {
			return nil, err
		}
		stats.Compacted = true
	} else {
		// The solve template's occurrence index went stale with the appends;
		// re-finalize it so RunInto's ViewInto stamping stays valid.
		if p.sparse != nil {
			sv := &par.Instance{
				Cost:     p.base.Cost,
				Retained: p.base.Retained,
				Budget:   p.base.Budget,
				Subsets:  p.sparse,
			}
			if err := sv.Finalize(); err != nil {
				return nil, fmt.Errorf("phocus: delta sparse view: %w", err)
			}
			p.solveTmpl = sv
		}
		p.sizeBytes = instanceSizeBytes(p.base.Cost, p.base.Subsets) + simSizeBytes(p.sparse) + p.kernelBytesLocked()
	}
	stats.LiveFraction = p.kernBase.LiveFraction()
	stats.ApplyTime = time.Since(start)
	return stats, nil
}

// Compact recompiles both gain kernels from the incrementally maintained
// similarity structures, dropping the mutation overlays and restoring the
// canonical flat layout (and canonical snapshot encodability). ApplyDelta
// calls it automatically past the dead-entry/overlay-growth thresholds;
// callers may also force it, e.g. before snapshotting a long-lived session.
func (p *Prepared) Compact() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.compactLocked()
}

func (p *Prepared) compactLocked() error {
	kt := time.Now()
	p.kernBase = par.CompileKernel(p.base)
	if p.sparse != nil {
		sv := &par.Instance{
			Cost:     p.base.Cost,
			Retained: p.base.Retained,
			Budget:   p.base.Budget,
			Subsets:  p.sparse,
		}
		if err := sv.Finalize(); err != nil {
			return fmt.Errorf("phocus: compact sparse view: %w", err)
		}
		p.kernSolve = par.CompileKernel(sv)
		p.solveTmpl = sv
	}
	// Compaction restored canonical kernels, so the tuned solve twin the
	// delta dropped can exist again.
	if err := p.retuneLocked(); err != nil {
		return err
	}
	p.KernelBuildTime += time.Since(kt)
	p.sizeBytes = instanceSizeBytes(p.base.Cost, p.base.Subsets) + simSizeBytes(p.sparse) + p.kernelBytesLocked()
	return nil
}

// LiveFraction exposes the base kernel's live-entry fraction (1 when
// canonical); observability exports it per instance.
func (p *Prepared) LiveFraction() float64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.kernBase.LiveFraction()
}

// MergeDelta applies d to a standalone finalized instance, producing the
// instance a cold re-ingest of the post-churn archive would present: husks
// keep their slots (relevance 0, similarities masked), added photos and
// subsets are appended, touched relevance vectors are renormalized — all
// through exactly the instance-mutation core ApplyDelta runs, so similarity
// values and relevance vectors match the live path bit for bit. The input
// instance is not modified (similarities are wrapped, never mutated); the
// returned instance is finalized with budget = total cost.
//
// removed carries the husk bitmap across chained merges: pass nil for the
// first delta and thread the returned slice through subsequent calls.
func MergeDelta(inst *par.Instance, removed []bool, d *Delta) (*par.Instance, []bool, error) {
	plan, err := resolveDelta(inst, removed, d)
	if err != nil {
		return nil, nil, err
	}
	out := &par.Instance{
		Cost:     inst.Cost,
		Retained: inst.Retained,
		Subsets:  inst.Subsets,
	}
	cowForPlan(out, plan)
	if err := applyPlan(out, plan, nil); err != nil {
		return nil, nil, err
	}
	nr := make([]bool, out.NumPhotos())
	copy(nr, removed)
	for _, rm := range plan.removals {
		nr[rm.photo] = true
	}
	return out, nr, nil
}
