package phocus

import (
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
	"unsafe"
)

// SnapshotStore is a directory of prepared-instance snapshots, one file per
// fingerprint: <fingerprint>.snap, written atomically (temp + rename) so a
// crash mid-write never leaves a half-snapshot under the final name. Corrupt
// files are quarantined by renaming to <name>.snap.corrupt, which keeps the
// evidence for inspection while guaranteeing the store never retries a file
// that failed its checksums.
type SnapshotStore struct {
	dir string

	// Mapped routes Load (and therefore WarmFill) through
	// LoadSnapshotMapped: snapshots are mmap'd instead of read into the
	// heap. Set it once right after OpenSnapshotStore, before concurrent
	// use. On platforms without mmap support loads transparently fall back
	// to the heap path.
	Mapped bool
}

// OpenSnapshotStore opens (creating if needed) the snapshot directory.
func OpenSnapshotStore(dir string) (*SnapshotStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("phocus: snapshot dir: %w", err)
	}
	return &SnapshotStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *SnapshotStore) Dir() string { return s.dir }

// Path returns the file path a fingerprint's snapshot lives at.
func (s *SnapshotStore) Path(fp string) string {
	return filepath.Join(s.dir, fp+".snap")
}

// Save serializes the Prepared and installs it under its fingerprint,
// returning the path and file size. An existing snapshot for the same
// fingerprint is replaced atomically (same content by construction — the
// fingerprint covers everything that feeds Prepare).
func (s *SnapshotStore) Save(p *Prepared) (path string, size int64, err error) {
	data, err := EncodeSnapshot(p)
	if err != nil {
		return "", 0, err
	}
	// The fingerprint comes out of the encoded header rather than a second
	// p.Fingerprint() call: an ApplyDelta landing between the two would
	// otherwise install the pre-churn bytes under the post-churn name.
	fp := hex.EncodeToString(data[16:snapHeaderFixed])
	path = s.Path(fp)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return "", 0, fmt.Errorf("phocus: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", 0, fmt.Errorf("phocus: install snapshot: %w", err)
	}
	return path, int64(len(data)), nil
}

// Load reads and decodes the snapshot for the fingerprint — through an mmap
// when the store is Mapped, a heap read otherwise. A missing file returns an
// error satisfying os.IsNotExist; a corrupt one wraps ErrBadSnapshot (the
// embedded fingerprint disagreeing with the filename counts as corruption —
// it means the file was renamed or its header tampered with).
func (s *SnapshotStore) Load(fp string) (*Prepared, error) {
	var p *Prepared
	var err error
	if s.Mapped {
		p, err = LoadSnapshotMapped(s.Path(fp))
	} else {
		p, err = LoadSnapshot(s.Path(fp))
	}
	if err != nil {
		return nil, err
	}
	if got, _ := p.Fingerprint(); got != fp {
		p.ReleaseMapping()
		return nil, fmt.Errorf("phocus: snapshot named %.12s… embeds fingerprint %.12s…: %w", fp, got, ErrBadSnapshot)
	}
	return p, nil
}

// Remove deletes the fingerprint's snapshot. A missing file is not an error
// — invalidating a snapshot that was never written (or already removed) is
// the common case after a delta lands on a cache-only Prepared.
func (s *SnapshotStore) Remove(fp string) error {
	err := os.Remove(s.Path(fp))
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// Quarantine moves the fingerprint's snapshot aside to <name>.snap.corrupt.
// Missing files are not an error (a concurrent loader may have quarantined
// first).
func (s *SnapshotStore) Quarantine(fp string) error {
	path := s.Path(fp)
	err := os.Rename(path, path+".corrupt")
	if err != nil && os.IsNotExist(err) {
		return nil
	}
	return err
}

// WarmStats reports what WarmFill recovered from the directory.
type WarmStats struct {
	// Loaded counts snapshots decoded and inserted into the cache.
	Loaded int
	// Corrupt counts snapshots that failed verification and were quarantined.
	Corrupt int
	// TempSwept counts orphaned .tmp files (a crash between temp-write and
	// rename) deleted during the scan.
	TempSwept int
	// Bytes sums the file sizes of the loaded snapshots.
	Bytes int64
}

// WarmFill scans the directory and loads every *.snap into the cache under
// its fingerprint, oldest first so the LRU keeps the newest when the cache's
// bounds bite. Corrupt files are quarantined and counted, never fatal;
// orphaned temp files from interrupted Saves are swept. The callbacks (both
// optional) observe each outcome for metrics/logging.
func (s *SnapshotStore) WarmFill(cache *PreparedCache, onLoad func(fp string, p *Prepared, d time.Duration), onCorrupt func(fp string, err error)) (WarmStats, error) {
	var stats WarmStats
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return stats, fmt.Errorf("phocus: scan snapshot dir: %w", err)
	}
	type cand struct {
		fp  string
		mod time.Time
	}
	var cands []cand
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(name, ".tmp") {
			// A crash between temp-write and rename orphans the temp file;
			// it was never installed, so it is garbage to collect.
			if os.Remove(filepath.Join(s.dir, name)) == nil {
				stats.TempSwept++
			}
			continue
		}
		fp, ok := strings.CutSuffix(name, ".snap")
		if !ok || !validFingerprint(fp) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		cands = append(cands, cand{fp: fp, mod: info.ModTime()})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].mod.Before(cands[b].mod) })
	for _, c := range cands {
		t0 := time.Now()
		p, err := s.Load(c.fp)
		if err != nil {
			stats.Corrupt++
			s.Quarantine(c.fp)
			if onCorrupt != nil {
				onCorrupt(c.fp, err)
			}
			continue
		}
		cache.Put(c.fp, p)
		stats.Loaded++
		stats.Bytes += p.SizeBytes()
		if onLoad != nil {
			onLoad(c.fp, p, time.Since(t0))
		}
	}
	return stats, nil
}

// validFingerprint reports whether the name is a sha256 hex digest — the
// only filenames the store itself produces; anything else in the directory
// is ignored rather than parsed.
func validFingerprint(fp string) bool {
	if len(fp) != 64 {
		return false
	}
	for _, c := range fp {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// readAligned reads the whole file into a buffer whose base address is
// 8-byte aligned (backed by a []uint64), which is what lets DecodeSnapshot
// reinterpret slab sections in place instead of copying them.
func readAligned(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil
	}
	if size > 1<<40 {
		return nil, fmt.Errorf("phocus: snapshot %s is %d bytes: %w", path, size, ErrBadSnapshot)
	}
	words := make([]uint64, (size+7)/8)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("phocus: read snapshot: %w", err)
	}
	return buf, nil
}

// LoadSnapshot reads and decodes one snapshot file into a Prepared. The
// returned value's PrepTime is the load duration (its KernelBuildTime is
// zero — nothing was compiled).
func LoadSnapshot(path string) (*Prepared, error) {
	t0 := time.Now()
	buf, err := readAligned(path)
	if err != nil {
		return nil, err
	}
	p, err := DecodeSnapshot(buf)
	if err != nil {
		return nil, err
	}
	p.PrepTime = time.Since(t0)
	return p, nil
}
