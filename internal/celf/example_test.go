package celf_test

import (
	"fmt"

	"phocus/internal/celf"
	"phocus/internal/par"
)

// ExampleSolver solves the paper's running example at the worked-example
// budget and prints the retained photos in selection order.
func ExampleSolver() {
	inst := par.Figure1Instance()
	inst.Budget = 3.0
	if err := inst.Finalize(); err != nil {
		panic(err)
	}
	var s celf.Solver
	sol, err := s.Solve(inst)
	if err != nil {
		panic(err)
	}
	for _, p := range sol.Photos {
		fmt.Printf("keep p%d\n", p+1)
	}
	fmt.Printf("score %.2f, certified ≥ %.0f%% of optimal\n",
		sol.Score, 100*celf.CertifiedRatio(inst, sol))
	// Output:
	// keep p1
	// keep p6
	// keep p2
	// score 13.25, certified ≥ 96% of optimal
}
