package celf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"phocus/internal/par"
)

// TestFigure3Trace verifies the full Algorithm 2 (UC) run on the paper's
// running example: p1, p6, p2 are selected in that order, then p4 and p5
// complete the solution once the budget admits them.
func TestFigure3TraceUC(t *testing.T) {
	inst := par.Figure1Instance()
	inst.Budget = 3.0 // admits p1 (1.2) + p6 (1.1) + p2 (0.7) exactly
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	sol, stats, err := LazyGreedy(inst, UC)
	if err != nil {
		t.Fatal(err)
	}
	want := []par.PhotoID{0, 5, 1} // p1, p6, p2
	if len(sol.Photos) != len(want) {
		t.Fatalf("selected %v, want %v", sol.Photos, want)
	}
	for i, p := range want {
		if sol.Photos[i] != p {
			t.Fatalf("selection order %v, want %v", sol.Photos, want)
		}
	}
	wantScore := 7.83 + 4.61 + 0.81
	if math.Abs(sol.Score-wantScore) > 1e-9 {
		t.Errorf("score = %.4f, want %.4f", sol.Score, wantScore)
	}
	if stats.Selected != 3 {
		t.Errorf("Selected = %d, want 3", stats.Selected)
	}
}

func TestFullBudgetKeepsEverything(t *testing.T) {
	inst := par.Figure1Instance() // budget = total cost
	sol, _, err := LazyGreedy(inst, UC)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Photos) != 7 {
		t.Fatalf("with saturating budget selected %d photos, want 7", len(sol.Photos))
	}
	if math.Abs(sol.Score-14) > 1e-9 {
		t.Errorf("score = %g, want 14 (Σ weights)", sol.Score)
	}
}

func TestRetainedAlwaysIncluded(t *testing.T) {
	inst := par.Figure1Instance()
	inst.Budget = 2.5
	inst.Retained = []par.PhotoID{6} // p7, a low-gain photo greedy would skip
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{UC, CB} {
		sol, _, err := LazyGreedy(inst, v)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, p := range sol.Photos {
			if p == 6 {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: retained photo p7 missing from %v", v, sol.Photos)
		}
		if !inst.Feasible(sol.Photos) {
			t.Errorf("%v: infeasible solution %v", v, sol.Photos)
		}
	}
}

func TestSolverPicksBetterVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		inst := par.Random(rng, par.RandomConfig{Photos: 25, Subsets: 12, BudgetFrac: 0.25})
		ucSol, _, err := LazyGreedy(inst, UC)
		if err != nil {
			t.Fatal(err)
		}
		cbSol, _, err := LazyGreedy(inst, CB)
		if err != nil {
			t.Fatal(err)
		}
		var s Solver
		sol, err := s.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Max(ucSol.Score, cbSol.Score)
		if math.Abs(sol.Score-want) > 1e-9 {
			t.Fatalf("Solve score %.6f, want max(UC,CB) = %.6f", sol.Score, want)
		}
		wantWinner := UC
		if cbSol.Score >= ucSol.Score {
			wantWinner = CB
		}
		if s.LastStats.Winner != wantWinner {
			t.Errorf("Winner = %v, want %v", s.LastStats.Winner, wantWinner)
		}
	}
}

// Property: lazy and eager greedy reach the same objective value (they are
// the same algorithm; lazy evaluation only skips provably non-maximal
// recomputations).
func TestLazyMatchesEagerQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := par.Random(rng, par.RandomConfig{Photos: 18, Subsets: 9, BudgetFrac: 0.3})
		for _, v := range []Variant{UC, CB} {
			lazy, _, err := LazyGreedy(inst, v)
			if err != nil {
				return false
			}
			eager, _, err := EagerGreedy(inst, v)
			if err != nil {
				return false
			}
			if math.Abs(lazy.Score-eager.Score) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestLazyGreedyKernelSelectionInvariant: attaching a compiled gain kernel
// must not change a single selection — photos, order, score, cost, or
// gain-eval count — for any variant or worker count. This is the
// solver-level face of the kernel's bit-identity contract.
func TestLazyGreedyKernelSelectionInvariant(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := par.Random(rng, par.RandomConfig{Photos: 40, Subsets: 15, BudgetFrac: 0.3, RetainFrac: 0.1})
		twin := &par.Instance{
			Cost:     inst.Cost,
			Retained: inst.Retained,
			Budget:   inst.Budget,
			Subsets:  inst.Subsets,
		}
		if err := twin.Finalize(); err != nil {
			t.Fatal(err)
		}
		if err := twin.AttachKernel(par.CompileKernel(twin)); err != nil {
			t.Fatal(err)
		}
		for _, v := range []Variant{UC, CB} {
			for _, workers := range []int{1, 4} {
				jag, jagStats, err := LazyGreedyWorkers(inst, v, workers, nil)
				if err != nil {
					t.Fatal(err)
				}
				ker, kerStats, err := LazyGreedyWorkers(twin, v, workers, nil)
				if err != nil {
					t.Fatal(err)
				}
				if jag.Score != ker.Score || jag.Cost != ker.Cost {
					t.Fatalf("seed %d %v workers=%d: score/cost %v/%v (jagged) vs %v/%v (kernel)",
						seed, v, workers, jag.Score, jag.Cost, ker.Score, ker.Cost)
				}
				if len(jag.Photos) != len(ker.Photos) {
					t.Fatalf("seed %d %v workers=%d: %d photos (jagged) vs %d (kernel)",
						seed, v, workers, len(jag.Photos), len(ker.Photos))
				}
				for i := range jag.Photos {
					if jag.Photos[i] != ker.Photos[i] {
						t.Fatalf("seed %d %v workers=%d: selections diverge at %d: %v vs %v",
							seed, v, workers, i, jag.Photos, ker.Photos)
					}
				}
				if jagStats.GainEvals != kerStats.GainEvals || jagStats.PQPops != kerStats.PQPops {
					t.Fatalf("seed %d %v workers=%d: work mismatch: %d/%d evals, %d/%d pops",
						seed, v, workers, jagStats.GainEvals, kerStats.GainEvals, jagStats.PQPops, kerStats.PQPops)
				}
			}
		}
	}
}

func TestLazySavesGainEvals(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := par.Random(rng, par.RandomConfig{Photos: 200, Subsets: 80, BudgetFrac: 0.3})
	_, lazyStats, err := LazyGreedy(inst, CB)
	if err != nil {
		t.Fatal(err)
	}
	_, eagerStats, err := EagerGreedy(inst, CB)
	if err != nil {
		t.Fatal(err)
	}
	if lazyStats.GainEvals >= eagerStats.GainEvals {
		t.Errorf("lazy used %d gain evals, eager %d: lazy evaluation saved nothing",
			lazyStats.GainEvals, eagerStats.GainEvals)
	}
}

// Property: every produced solution is feasible and scores are consistent
// with the reference scorer.
func TestSolutionsFeasibleAndScoredQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := par.Random(rng, par.RandomConfig{
			Photos: 20, Subsets: 10, BudgetFrac: 0.2 + 0.6*rng.Float64(), RetainFrac: 0.1,
		})
		for _, v := range []Variant{UC, CB} {
			sol, _, err := LazyGreedy(inst, v)
			if err != nil {
				return false
			}
			if !inst.Feasible(sol.Photos) {
				return false
			}
			if math.Abs(par.Score(inst, sol.Photos)-sol.Score) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// With uniform costs Algorithm 1 includes the classic greedy, which is a
// (1−1/e)-approximation; verify the certified ratio respects that bound.
func TestUniformCostGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		inst := par.Random(rng, par.RandomConfig{
			Photos: 15, Subsets: 8, UniformCost: true, BudgetFrac: 0.4,
		})
		var s Solver
		sol, err := s.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		ratio := CertifiedRatio(inst, sol)
		if ratio < 1-1/math.E-1e-9 {
			t.Errorf("trial %d: certified ratio %.4f below 1-1/e", trial, ratio)
		}
	}
}

func TestOnlineBoundUpperBoundsOPT(t *testing.T) {
	// On instances small enough to enumerate, the online bound of any
	// feasible solution must be ≥ the true optimum.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		inst := par.Random(rng, par.RandomConfig{Photos: 10, Subsets: 6, BudgetFrac: 0.35})
		opt := bruteForceScore(inst)
		var s Solver
		sol, err := s.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		bound := OnlineBound(inst, sol.Photos)
		if bound < opt-1e-9 {
			t.Errorf("trial %d: online bound %.6f below OPT %.6f", trial, bound, opt)
		}
		if sol.Score > bound+1e-9 {
			t.Errorf("trial %d: solution score %.6f above its own bound %.6f", trial, sol.Score, bound)
		}
	}
}

func TestOnlineBoundEmptyInstance(t *testing.T) {
	inst := par.Figure1Instance()
	inst.Budget = 0.1 // nothing fits
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	var s Solver
	sol, err := s.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Photos) != 0 || sol.Score != 0 {
		t.Fatalf("expected empty solution, got %v (score %g)", sol.Photos, sol.Score)
	}
	if ratio := CertifiedRatio(inst, sol); ratio < 0 || ratio > 1 {
		t.Errorf("certified ratio %g outside [0,1]", ratio)
	}
}

// bruteForceScore enumerates all feasible subsets (exponential; tests only).
func bruteForceScore(inst *par.Instance) float64 {
	n := inst.NumPhotos()
	var best float64
	for mask := 0; mask < 1<<n; mask++ {
		var s []par.PhotoID
		for p := 0; p < n; p++ {
			if mask&(1<<p) != 0 {
				s = append(s, par.PhotoID(p))
			}
		}
		if !inst.Feasible(s) {
			continue
		}
		if sc := par.Score(inst, s); sc > best {
			best = sc
		}
	}
	return best
}

func TestVariantString(t *testing.T) {
	if UC.String() != "UC" || CB.String() != "CB" {
		t.Error("Variant.String mismatch")
	}
	if got := Variant(9).String(); got != "Variant(9)" {
		t.Errorf("unknown variant string = %q", got)
	}
}
