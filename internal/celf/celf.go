// Package celf implements the paper's main solver (Algorithms 1 and 2): the
// CELF lazy-greedy scheme of Leskovec et al. for maximizing a monotone
// submodular function under a knapsack constraint, adapted to PAR.
//
// Algorithm 1 runs two greedy sub-procedures and keeps the better solution:
//
//   - UC ("unit cost") ignores photo costs when ranking candidates and picks
//     the photo with the largest marginal gain δ_p each round;
//   - CB ("cost benefit") ranks by the density δ_p / C(p).
//
// Taking the best of the two yields a (1−1/e)/2 worst-case approximation.
// Both sub-procedures use lazy evaluation: stale gains are kept in a
// max-priority queue and only recomputed when they reach the top, which is
// sound because submodularity guarantees gains never increase as the
// solution grows.
//
// The package also provides the a-posteriori online bound of Leskovec et
// al., which upper-bounds OPT from any solution and in practice certifies
// performance ratios far above the worst-case guarantee (Section 4.2 of the
// paper; the onlinebound experiment regenerates the observation).
package celf

import (
	"container/heap"
	"fmt"
	"time"

	"phocus/internal/par"
)

// Variant selects the candidate-ranking rule of Algorithm 2.
type Variant int

const (
	// UC ranks candidates by marginal gain, ignoring costs.
	UC Variant = iota
	// CB ranks candidates by marginal gain per byte.
	CB
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case UC:
		return "UC"
	case CB:
		return "CB"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Stats reports the work done by a solver run.
type Stats struct {
	// GainEvals is the number of marginal-gain evaluations, the cost unit
	// the paper uses to compare algorithms.
	GainEvals int64
	// PQPops counts priority-queue pops, i.e. lazy-evaluation probes.
	PQPops int64
	// Selected is the number of photos added beyond S0.
	Selected int
	// Winner records which sub-procedure produced the returned solution
	// when solving with both (Algorithm 1).
	Winner Variant
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration
}

// Solver runs Algorithm 1 (best of UC and CB). It implements par.Solver.
type Solver struct {
	// Observer, when non-nil, receives the lazy-greedy events of both
	// sub-procedure runs (all UC events, then all CB events).
	Observer Observer
	// OnStats, when non-nil, is called with the run's Stats at the end of
	// every successful Solve — the instrumentation hook phocus-server uses
	// to feed its metrics registry without global state.
	OnStats func(Stats)
	// LastStats is populated by each Solve call.
	LastStats Stats
}

// Name implements par.Solver.
func (s *Solver) Name() string { return "PHOcus" }

// Solve runs both lazy-greedy variants and returns the better solution.
func (s *Solver) Solve(inst *par.Instance) (par.Solution, error) {
	start := time.Now()
	solUC, statsUC, err := LazyGreedyObserved(inst, UC, s.Observer)
	if err != nil {
		return par.Solution{}, err
	}
	solCB, statsCB, err := LazyGreedyObserved(inst, CB, s.Observer)
	if err != nil {
		return par.Solution{}, err
	}
	s.LastStats = Stats{
		GainEvals: statsUC.GainEvals + statsCB.GainEvals,
		PQPops:    statsUC.PQPops + statsCB.PQPops,
		Elapsed:   time.Since(start),
	}
	best := solUC
	if solCB.Score >= solUC.Score {
		s.LastStats.Winner = CB
		s.LastStats.Selected = statsCB.Selected
		best = solCB
	} else {
		s.LastStats.Winner = UC
		s.LastStats.Selected = statsUC.Selected
	}
	if s.OnStats != nil {
		s.OnStats(s.LastStats)
	}
	return best, nil
}

// Observer receives the lazy-greedy events of one LazyGreedyObserved run,
// in order. It exists for demonstrations (the Figure 3 walkthrough) and
// debugging; the zero-overhead path is LazyGreedy.
type Observer interface {
	// Recomputed fires when a stale priority-queue entry gets its marginal
	// gain recomputed against the current solution (curr_p ← true).
	Recomputed(p par.PhotoID, gain float64)
	// Selected fires when a photo is added to the solution.
	Selected(p par.PhotoID, gain float64)
}

// LazyGreedy is Algorithm 2: one lazy-greedy pass with the given ranking
// rule. The instance must be finalized.
func LazyGreedy(inst *par.Instance, variant Variant) (par.Solution, Stats, error) {
	return LazyGreedyObserved(inst, variant, nil)
}

// LazyGreedyObserved is LazyGreedy with an optional event observer.
func LazyGreedyObserved(inst *par.Instance, variant Variant, obs Observer) (par.Solution, Stats, error) {
	start := time.Now()
	e := par.NewEvaluator(inst)
	e.Seed() // S ← S0

	// Priority queue of candidate photos keyed by (possibly stale) gain.
	pq := newGainQueue(variant, inst)
	for p := 0; p < inst.NumPhotos(); p++ {
		id := par.PhotoID(p)
		if e.Contains(id) {
			continue
		}
		// δ_p ← ∞: represented by pushing with the maximal possible gain so
		// every candidate is recomputed at least once before selection.
		pq.push(candidate{photo: id, gain: inf})
	}

	var stats Stats
	for pq.Len() > 0 {
		top := pq.pop()
		stats.PQPops++
		if e.Contains(top.photo) || !e.Fits(top.photo) {
			// Infeasible now and forever (costs are fixed and the budget
			// only shrinks): drop the candidate.
			continue
		}
		if top.current {
			// curr_p is true: the gain was computed against the current
			// solution and is still the queue maximum, so by submodularity
			// it is the best candidate. Select it.
			gain := e.Add(top.photo)
			stats.Selected++
			pq.invalidate()
			if obs != nil {
				obs.Selected(top.photo, gain)
			}
			continue
		}
		// Recompute δ_p against the current solution and reinsert.
		top.gain = e.Gain(top.photo)
		top.current = true
		pq.push(top)
		if obs != nil {
			obs.Recomputed(top.photo, top.gain)
		}
	}

	stats.GainEvals = e.GainEvals()
	stats.Elapsed = time.Since(start)
	sol := e.Solution()
	if !inst.Feasible(sol.Photos) {
		return par.Solution{}, stats, fmt.Errorf("celf: produced infeasible solution (cost %.3f, budget %.3f)", sol.Cost, inst.Budget)
	}
	return sol, stats, nil
}

// inf is the initial "∞" gain of Algorithm 2 line 4. Any real gain is
// finite, so candidates initialized to inf always get recomputed first.
const inf = 1e300

// candidate is a priority-queue entry.
type candidate struct {
	photo par.PhotoID
	gain  float64
	// current is curr_p from Algorithm 2: whether gain was computed against
	// the present solution.
	current bool
	// epoch tags the solution version the gain was computed against; the
	// queue clears current on entries from older epochs lazily.
	epoch int64
}

// gainQueue is a max-heap over candidates, ranking by gain (UC) or gain per
// cost (CB). Instead of walking the heap to reset curr_p after every
// selection, it stamps entries with an epoch and treats entries from older
// epochs as stale.
type gainQueue struct {
	variant Variant
	inst    *par.Instance
	epoch   int64
	items   []candidate
}

func newGainQueue(variant Variant, inst *par.Instance) *gainQueue {
	return &gainQueue{variant: variant, inst: inst}
}

// key returns the ranking value of a candidate under the queue's variant.
func (g *gainQueue) key(c candidate) float64 {
	if g.variant == CB {
		return c.gain / g.inst.Cost[c.photo]
	}
	return c.gain
}

func (g *gainQueue) Len() int { return len(g.items) }

func (g *gainQueue) Less(i, j int) bool { return g.key(g.items[i]) > g.key(g.items[j]) }

func (g *gainQueue) Swap(i, j int) { g.items[i], g.items[j] = g.items[j], g.items[i] }

func (g *gainQueue) Push(x any) { g.items = append(g.items, x.(candidate)) }

func (g *gainQueue) Pop() any {
	old := g.items
	n := len(old)
	it := old[n-1]
	g.items = old[:n-1]
	return it
}

func (g *gainQueue) push(c candidate) {
	c.epoch = g.epoch
	heap.Push(g, c)
}

func (g *gainQueue) pop() candidate {
	c := heap.Pop(g).(candidate)
	if c.epoch != g.epoch {
		c.current = false
	}
	return c
}

// invalidate marks all queued gains stale; called after each selection.
func (g *gainQueue) invalidate() { g.epoch++ }
