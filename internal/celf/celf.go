// Package celf implements the paper's main solver (Algorithms 1 and 2): the
// CELF lazy-greedy scheme of Leskovec et al. for maximizing a monotone
// submodular function under a knapsack constraint, adapted to PAR.
//
// Algorithm 1 runs two greedy sub-procedures and keeps the better solution:
//
//   - UC ("unit cost") ignores photo costs when ranking candidates and picks
//     the photo with the largest marginal gain δ_p each round;
//   - CB ("cost benefit") ranks by the density δ_p / C(p).
//
// Taking the best of the two yields a (1−1/e)/2 worst-case approximation.
// Both sub-procedures use lazy evaluation: stale gains are kept in a
// max-priority queue and only recomputed when they reach the top, which is
// sound because submodularity guarantees gains never increase as the
// solution grows.
//
// The package also provides the a-posteriori online bound of Leskovec et
// al., which upper-bounds OPT from any solution and in practice certifies
// performance ratios far above the worst-case guarantee (Section 4.2 of the
// paper; the onlinebound experiment regenerates the observation).
package celf

import (
	"context"
	"fmt"
	"sync"
	"time"

	"phocus/internal/par"
	"phocus/internal/pool"
)

// Variant selects the candidate-ranking rule of Algorithm 2.
type Variant int

const (
	// UC ranks candidates by marginal gain, ignoring costs.
	UC Variant = iota
	// CB ranks candidates by marginal gain per byte.
	CB
)

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case UC:
		return "UC"
	case CB:
		return "CB"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Stats reports the work done by a solver run.
type Stats struct {
	// GainEvals is the number of marginal-gain evaluations, the cost unit
	// the paper uses to compare algorithms.
	GainEvals int64
	// PQPops counts priority-queue pops, i.e. lazy-evaluation probes.
	PQPops int64
	// Selected is the number of photos added beyond S0.
	Selected int
	// Winner records which sub-procedure produced the returned solution
	// when solving with both (Algorithm 1).
	Winner Variant
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration
}

// Solver runs Algorithm 1 (best of UC and CB). It implements par.Solver.
type Solver struct {
	// Observer, when non-nil, receives the lazy-greedy events of both
	// sub-procedure runs (all UC events, then all CB events; with Workers >
	// 1 the passes run concurrently and their events are buffered and
	// replayed in that order after both finish).
	Observer Observer
	// OnStats, when non-nil, is called with the run's Stats at the end of
	// every successful Solve — the instrumentation hook phocus-server uses
	// to feed its metrics registry without global state.
	OnStats func(Stats)
	// Workers bounds the solver's parallelism: the UC and CB sub-procedures
	// run concurrently, and within each pass stale priority-queue entries
	// are recomputed in batches of Workers. Values ≤ 0 mean one worker per
	// CPU (runtime.GOMAXPROCS(0)); 1 forces the fully sequential path. The
	// selected solution is identical for every worker count — only
	// wall-clock time and the work counters (GainEvals, PQPops) vary.
	Workers int
	// Scratch, when non-nil, supplies reusable solve state (evaluator,
	// priority-queue storage, batching buffers) to the sequential path
	// (Workers forced to 1), eliminating steady-state allocations. With a
	// Scratch attached the returned Solution.Photos alias scratch storage —
	// valid until the next Solve with the same Scratch — and the solver must
	// not be shared across goroutines. Ignored when Workers > 1 (the two
	// concurrent passes each need their own evaluator).
	Scratch *Scratch
	// LastStats is populated by each Solve call.
	LastStats Stats
}

// Scratch holds the reusable state of a sequential Solve. The zero value is
// ready to use; buffers grow to the instance's size on first use and are
// reused afterwards. A Scratch belongs to one goroutine at a time.
type Scratch struct {
	eval   *par.Evaluator
	items  []candidate
	stale  []candidate
	photos []par.PhotoID
	gains  []float64
	solUC  []par.PhotoID
	seen   []bool
}

// evaluator returns the scratch evaluator reset for inst, building it on
// first use.
func (sc *Scratch) evaluator(inst *par.Instance) *par.Evaluator {
	if sc.eval == nil {
		sc.eval = par.NewEvaluator(inst)
		return sc.eval
	}
	sc.eval.ResetFor(inst)
	return sc.eval
}

// Name implements par.Solver.
func (s *Solver) Name() string { return "PHOcus" }

// Solve runs both lazy-greedy variants and returns the better solution.
func (s *Solver) Solve(inst *par.Instance) (par.Solution, error) {
	return s.SolveContext(context.Background(), inst)
}

// SolveContext is Solve with cooperative cancellation: both sub-procedures
// check ctx at every priority-queue round, so a canceled context stops the
// solve within one recompute batch. It implements par.ContextSolver.
func (s *Solver) SolveContext(ctx context.Context, inst *par.Instance) (par.Solution, error) {
	start := time.Now()
	workers := pool.Resolve(s.Workers)
	var (
		solUC, solCB     par.Solution
		statsUC, statsCB Stats
		err              error
	)
	if workers <= 1 && s.Scratch != nil {
		// Allocation-free sequential path: both passes reuse the scratch
		// evaluator and queue storage. UC's solution aliases the evaluator,
		// so it is copied into scratch-owned storage before CB resets it.
		sc := s.Scratch
		solUC, statsUC, err = lazyGreedy(ctx, inst, UC, 1, s.Observer, sc)
		if err != nil {
			return par.Solution{}, err
		}
		sc.solUC = append(sc.solUC[:0], solUC.Photos...)
		solUC.Photos = sc.solUC
		solCB, statsCB, err = lazyGreedy(ctx, inst, CB, 1, s.Observer, sc)
		if err != nil {
			return par.Solution{}, err
		}
	} else if workers <= 1 {
		solUC, statsUC, err = LazyGreedyContext(ctx, inst, UC, 1, s.Observer)
		if err != nil {
			return par.Solution{}, err
		}
		solCB, statsCB, err = LazyGreedyContext(ctx, inst, CB, 1, s.Observer)
		if err != nil {
			return par.Solution{}, err
		}
	} else {
		// The parallel branch lives in its own method: its goroutine
		// closures must not capture these locals, or escape analysis would
		// heap-allocate them on the sequential scratch path too and break
		// its zero-allocation guarantee.
		solUC, solCB, statsUC, statsCB, err = s.solveParallel(ctx, inst, workers)
		if err != nil {
			return par.Solution{}, err
		}
	}
	s.LastStats = Stats{
		GainEvals: statsUC.GainEvals + statsCB.GainEvals,
		PQPops:    statsUC.PQPops + statsCB.PQPops,
		Elapsed:   time.Since(start),
	}
	best := solUC
	if solCB.Score >= solUC.Score {
		s.LastStats.Winner = CB
		s.LastStats.Selected = statsCB.Selected
		best = solCB
	} else {
		s.LastStats.Winner = UC
		s.LastStats.Selected = statsUC.Selected
	}
	if s.OnStats != nil {
		s.OnStats(s.LastStats)
	}
	return best, nil
}

// solveParallel runs the two sub-procedures of Algorithm 1 concurrently —
// each owns its own Evaluator over the shared read-only instance, so they
// are independent. Observer events are buffered per pass and replayed in
// UC-then-CB order to preserve the documented event stream.
func (s *Solver) solveParallel(ctx context.Context, inst *par.Instance, workers int) (solUC, solCB par.Solution, statsUC, statsCB Stats, err error) {
	var obsUC, obsCB Observer
	var recUC, recCB *eventRecorder
	if s.Observer != nil {
		recUC, recCB = &eventRecorder{}, &eventRecorder{}
		obsUC, obsCB = recUC, recCB
	}
	var errUC, errCB error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		solUC, statsUC, errUC = LazyGreedyContext(ctx, inst, UC, workers, obsUC)
	}()
	go func() {
		defer wg.Done()
		solCB, statsCB, errCB = LazyGreedyContext(ctx, inst, CB, workers, obsCB)
	}()
	wg.Wait()
	if errUC != nil {
		return par.Solution{}, par.Solution{}, Stats{}, Stats{}, errUC
	}
	if errCB != nil {
		return par.Solution{}, par.Solution{}, Stats{}, Stats{}, errCB
	}
	if s.Observer != nil {
		recUC.replay(s.Observer)
		recCB.replay(s.Observer)
	}
	return solUC, solCB, statsUC, statsCB, nil
}

// Observer receives the lazy-greedy events of one LazyGreedyObserved run,
// in order. It exists for demonstrations (the Figure 3 walkthrough) and
// debugging; the zero-overhead path is LazyGreedy.
type Observer interface {
	// Recomputed fires when a stale priority-queue entry gets its marginal
	// gain recomputed against the current solution (curr_p ← true).
	Recomputed(p par.PhotoID, gain float64)
	// Selected fires when a photo is added to the solution.
	Selected(p par.PhotoID, gain float64)
}

// LazyGreedy is Algorithm 2: one lazy-greedy pass with the given ranking
// rule. The instance must be finalized.
func LazyGreedy(inst *par.Instance, variant Variant) (par.Solution, Stats, error) {
	return LazyGreedyObserved(inst, variant, nil)
}

// LazyGreedyObserved is LazyGreedy with an optional event observer.
func LazyGreedyObserved(inst *par.Instance, variant Variant, obs Observer) (par.Solution, Stats, error) {
	return LazyGreedyWorkers(inst, variant, 1, obs)
}

// LazyGreedyWorkers is Algorithm 2 with batched parallel recomputation:
// instead of recomputing one stale priority-queue entry at a time, it pops
// up to workers stale entries from the top of the queue and recomputes their
// gains concurrently through the read-only Evaluator.Gains path (workers ≤ 0
// means one per CPU; 1 reproduces the classic sequential schedule exactly,
// pop for pop).
//
// Batching is sound and selection-invariant: a photo is only ever selected
// when a current (exactly recomputed) entry sits at the top of the queue,
// stale keys upper-bound exact keys by submodularity, and ties are broken
// deterministically by photo ID — so the selected photo is always the true
// argmax of the exact marginal-gain key, no matter how many extra entries a
// batch recomputed first. Extra recomputations only show up in GainEvals and
// PQPops; the solution is identical for every worker count.
func LazyGreedyWorkers(inst *par.Instance, variant Variant, workers int, obs Observer) (par.Solution, Stats, error) {
	return LazyGreedyContext(context.Background(), inst, variant, workers, obs)
}

// LazyGreedyContext is LazyGreedyWorkers with cooperative cancellation: the
// context is checked once per priority-queue round — before each pop /
// recompute batch — so cancellation takes effect within one batch and the
// context's error is returned unwrapped.
func LazyGreedyContext(ctx context.Context, inst *par.Instance, variant Variant, workers int, obs Observer) (par.Solution, Stats, error) {
	var sc Scratch
	sol, stats, err := lazyGreedy(ctx, inst, variant, workers, obs, &sc)
	if err != nil {
		return sol, stats, err
	}
	// The scratch solution aliases the throwaway evaluator; detach it.
	photos := make([]par.PhotoID, len(sol.Photos))
	copy(photos, sol.Photos)
	sol.Photos = photos
	return sol, stats, nil
}

// lazyGreedy is the Algorithm 2 engine behind every public entry point. All
// mutable state lives in sc, so a caller that keeps the Scratch across runs
// (Solver.Scratch, the engine's per-solve pools) allocates nothing at steady
// state; the returned Solution.Photos alias sc's evaluator.
func lazyGreedy(ctx context.Context, inst *par.Instance, variant Variant, workers int, obs Observer, sc *Scratch) (par.Solution, Stats, error) {
	start := time.Now()
	workers = pool.Resolve(workers)
	e := sc.evaluator(inst)
	e.Seed() // S ← S0

	// Priority queue of candidate photos keyed by (possibly stale) gain.
	// The queue value lives on the stack; its item storage round-trips
	// through the scratch so the backing array is reused across runs.
	pq := gainQueue{variant: variant, inst: inst, items: sc.items[:0]}
	for p := 0; p < inst.NumPhotos(); p++ {
		id := par.PhotoID(p)
		if e.Contains(id) {
			continue
		}
		// δ_p ← ∞: represented by pushing with the maximal possible gain so
		// every candidate is recomputed at least once before selection.
		pq.push(candidate{photo: id, gain: inf})
	}

	var stats Stats
	// Scratch buffers for the batched recompute, reused across rounds.
	// (Saved back into sc at every return — a deferred closure would force
	// these locals, and the queue, onto the heap and defeat the
	// allocation-free path.)
	stale := sc.stale[:0]
	photos := sc.photos[:0]
	gains := sc.gains
	for pq.Len() > 0 {
		if err := ctx.Err(); err != nil {
			sc.items, sc.stale, sc.photos, sc.gains = pq.items[:0], stale[:0], photos[:0], gains
			return par.Solution{}, stats, err
		}
		top := pq.pop()
		stats.PQPops++
		if e.Contains(top.photo) || !e.Fits(top.photo) {
			// Infeasible now and forever (costs are fixed and the budget
			// only shrinks): drop the candidate.
			continue
		}
		if top.current {
			// curr_p is true: the gain was computed against the current
			// solution and is still the queue maximum, so by submodularity
			// it is the best candidate. Select it.
			gain := e.Add(top.photo)
			stats.Selected++
			pq.invalidate()
			if obs != nil {
				obs.Selected(top.photo, gain)
			}
			continue
		}
		// Recompute δ_p against the current solution and reinsert. With
		// workers > 1, collect up to workers stale entries from the queue
		// top and recompute them as one parallel batch; stop early at the
		// first current entry — everything below it is unlikely to be
		// needed before the next selection.
		stale = append(stale[:0], top)
		var parked candidate
		hasParked := false
		for len(stale) < workers && pq.Len() > 0 {
			c := pq.pop()
			stats.PQPops++
			if e.Contains(c.photo) || !e.Fits(c.photo) {
				continue
			}
			if c.current {
				parked, hasParked = c, true
				break
			}
			stale = append(stale, c)
		}
		if len(stale) == 1 {
			stale[0].gain = e.Gain(stale[0].photo)
		} else {
			photos = photos[:0]
			for _, c := range stale {
				photos = append(photos, c.photo)
			}
			if cap(gains) < len(photos) {
				gains = make([]float64, len(photos))
			}
			gains = gains[:len(photos)]
			e.GainsInto(gains, photos, workers)
			for i := range stale {
				stale[i].gain = gains[i]
			}
		}
		for i := range stale {
			stale[i].current = true
			pq.push(stale[i])
			if obs != nil {
				obs.Recomputed(stale[i].photo, stale[i].gain)
			}
		}
		if hasParked {
			// No selection happened since the pop, so the entry is still
			// current against the present solution.
			pq.push(parked)
		}
	}

	sc.items, sc.stale, sc.photos, sc.gains = pq.items[:0], stale[:0], photos[:0], gains
	stats.GainEvals = e.GainEvals()
	stats.Elapsed = time.Since(start)
	sol := e.SolutionView()
	if len(sc.seen) < inst.NumPhotos() {
		sc.seen = make([]bool, inst.NumPhotos())
	}
	if !inst.FeasibleBuf(sol.Photos, sc.seen) {
		return par.Solution{}, stats, fmt.Errorf("celf: produced infeasible solution (cost %.3f, budget %.3f)", sol.Cost, inst.Budget)
	}
	return sol, stats, nil
}

// eventRecorder buffers observer events so concurrent sub-procedure runs can
// replay them in the documented order after both finish.
type eventRecorder struct {
	events []recordedEvent
}

type recordedEvent struct {
	selected bool
	photo    par.PhotoID
	gain     float64
}

func (r *eventRecorder) Recomputed(p par.PhotoID, gain float64) {
	r.events = append(r.events, recordedEvent{photo: p, gain: gain})
}

func (r *eventRecorder) Selected(p par.PhotoID, gain float64) {
	r.events = append(r.events, recordedEvent{selected: true, photo: p, gain: gain})
}

func (r *eventRecorder) replay(obs Observer) {
	for _, ev := range r.events {
		if ev.selected {
			obs.Selected(ev.photo, ev.gain)
		} else {
			obs.Recomputed(ev.photo, ev.gain)
		}
	}
}

// inf is the initial "∞" gain of Algorithm 2 line 4. Any real gain is
// finite, so candidates initialized to inf always get recomputed first.
const inf = 1e300

// candidate is a priority-queue entry.
type candidate struct {
	photo par.PhotoID
	gain  float64
	// current is curr_p from Algorithm 2: whether gain was computed against
	// the present solution.
	current bool
	// epoch tags the solution version the gain was computed against; the
	// queue clears current on entries from older epochs lazily.
	epoch int64
}

// gainQueue is a max-heap over candidates, ranking by gain (UC) or gain per
// cost (CB). Instead of walking the heap to reset curr_p after every
// selection, it stamps entries with an epoch and treats entries from older
// epochs as stale. The sift operations are hand-rolled rather than going
// through container/heap: heap.Push boxes every 24-byte candidate into an
// interface value, one heap allocation per push, which is the difference
// between an allocation-free solve and thousands of allocations per pass.
// The algorithm is identical sift-up/sift-down, and less is a strict total
// order (key descending, photo ID ascending), so the pop sequence — and
// therefore every selection — is unchanged.
type gainQueue struct {
	variant Variant
	inst    *par.Instance
	epoch   int64
	items   []candidate
}

// key returns the ranking value of a candidate under the queue's variant.
func (g *gainQueue) key(c candidate) float64 {
	if g.variant == CB {
		return c.gain / g.inst.Cost[c.photo]
	}
	return c.gain
}

func (g *gainQueue) Len() int { return len(g.items) }

// less orders by key descending, breaking exact ties by photo ID so the heap
// maximum is a deterministic function of the queued entries. The tie-break
// is what keeps batched and sequential recomputation schedules selecting the
// same photo when two candidates have identical keys.
func (g *gainQueue) less(i, j int) bool {
	ki, kj := g.key(g.items[i]), g.key(g.items[j])
	if ki != kj {
		return ki > kj
	}
	return g.items[i].photo < g.items[j].photo
}

func (g *gainQueue) push(c candidate) {
	c.epoch = g.epoch
	g.items = append(g.items, c)
	g.up(len(g.items) - 1)
}

func (g *gainQueue) pop() candidate {
	n := len(g.items) - 1
	g.items[0], g.items[n] = g.items[n], g.items[0]
	c := g.items[n]
	g.items = g.items[:n]
	if n > 0 {
		g.down(0)
	}
	if c.epoch != g.epoch {
		c.current = false
	}
	return c
}

func (g *gainQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !g.less(i, parent) {
			break
		}
		g.items[i], g.items[parent] = g.items[parent], g.items[i]
		i = parent
	}
}

func (g *gainQueue) down(i int) {
	n := len(g.items)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && g.less(r, l) {
			j = r
		}
		if !g.less(j, i) {
			break
		}
		g.items[i], g.items[j] = g.items[j], g.items[i]
		i = j
	}
}

// invalidate marks all queued gains stale; called after each selection.
func (g *gainQueue) invalidate() { g.epoch++ }
