package celf

import (
	"math/rand"
	"reflect"
	"testing"

	"phocus/internal/par"
)

// selectionLog records Selected events only — the part of the observer
// stream that must be identical between sequential and batched schedules
// (Recomputed events legitimately differ: batches recompute extra entries).
type selectionLog struct {
	photos []par.PhotoID
	gains  []float64
}

func (l *selectionLog) Recomputed(par.PhotoID, float64) {}
func (l *selectionLog) Selected(p par.PhotoID, gain float64) {
	l.photos = append(l.photos, p)
	l.gains = append(l.gains, gain)
}

// TestLazyGreedyWorkersEquivalence: the batched recompute schedule must
// select exactly the photos the classic sequential schedule selects — same
// set, same order, same gains — for both variants and several worker counts.
func TestLazyGreedyWorkersEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		inst := par.Random(rng, par.RandomConfig{
			Photos: 60, Subsets: 25, BudgetFrac: 0.2 + 0.15*rng.Float64(),
		})
		for _, variant := range []Variant{UC, CB} {
			var seqLog selectionLog
			seqSol, seqStats, err := LazyGreedyWorkers(inst, variant, 1, &seqLog)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				var batchLog selectionLog
				sol, stats, err := LazyGreedyWorkers(inst, variant, workers, &batchLog)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(sol.Photos, seqSol.Photos) {
					t.Fatalf("trial %d %v workers=%d: photos %v, sequential %v",
						trial, variant, workers, sol.Photos, seqSol.Photos)
				}
				if sol.Score != seqSol.Score || sol.Cost != seqSol.Cost {
					t.Errorf("trial %d %v workers=%d: score/cost %.17g/%.17g, sequential %.17g/%.17g",
						trial, variant, workers, sol.Score, sol.Cost, seqSol.Score, seqSol.Cost)
				}
				if stats.Selected != seqStats.Selected {
					t.Errorf("trial %d %v workers=%d: Selected = %d, sequential %d",
						trial, variant, workers, stats.Selected, seqStats.Selected)
				}
				if !reflect.DeepEqual(batchLog.photos, seqLog.photos) ||
					!reflect.DeepEqual(batchLog.gains, seqLog.gains) {
					t.Errorf("trial %d %v workers=%d: selection events diverge", trial, variant, workers)
				}
			}
		}
	}
}

// TestSolverWorkersEquivalence: the full Algorithm 1 solver (concurrent UC
// and CB) returns an identical solution for every worker count, and the
// buffered observer replay preserves the UC-then-CB selection order.
func TestSolverWorkersEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		inst := par.Random(rng, par.RandomConfig{
			Photos: 50, Subsets: 20, BudgetFrac: 0.3,
		})
		var seqLog selectionLog
		seq := Solver{Workers: 1, Observer: &seqLog}
		seqSol, err := seq.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			var log selectionLog
			s := Solver{Workers: workers, Observer: &log}
			sol, err := s.Solve(inst)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sol.Photos, seqSol.Photos) {
				t.Fatalf("trial %d workers=%d: photos %v, sequential %v",
					trial, workers, sol.Photos, seqSol.Photos)
			}
			if sol.Score != seqSol.Score || sol.Cost != seqSol.Cost {
				t.Errorf("trial %d workers=%d: score/cost differ", trial, workers)
			}
			if s.LastStats.Winner != seq.LastStats.Winner || s.LastStats.Selected != seq.LastStats.Selected {
				t.Errorf("trial %d workers=%d: stats winner/selected differ", trial, workers)
			}
			if !reflect.DeepEqual(log.photos, seqLog.photos) {
				t.Errorf("trial %d workers=%d: replayed selection order diverges", trial, workers)
			}
		}
	}
}
