package celf

import (
	"sort"

	"phocus/internal/par"
)

// OnlineBound computes the a-posteriori upper bound on OPT of Leskovec et
// al. (Section 4.2 of the paper) for an arbitrary feasible solution Ŝ:
//
//	OPT ≤ G(Ŝ) + max{ Σ_{p∈T} δ_p(Ŝ) : C(T) ≤ B }
//
// where δ_p(Ŝ) is the marginal gain of p with respect to Ŝ. The inner
// maximum is itself upper-bounded by its fractional-knapsack relaxation
// (sort by δ_p/C(p), fill the budget, take the last item fractionally),
// which is what this function computes. The bound is valid for the output
// of any algorithm, and the certified ratio G(Ŝ)/OnlineBound is typically
// far above the (1−1/e)/2 worst-case guarantee.
func OnlineBound(inst *par.Instance, sol []par.PhotoID) float64 {
	e := par.NewEvaluator(inst)
	for _, p := range sol {
		e.Add(p)
	}
	type marginal struct {
		gain, cost float64
	}
	margs := make([]marginal, 0, inst.NumPhotos())
	for p := 0; p < inst.NumPhotos(); p++ {
		id := par.PhotoID(p)
		if e.Contains(id) {
			continue
		}
		if g := e.Gain(id); g > 0 {
			margs = append(margs, marginal{gain: g, cost: inst.Cost[p]})
		}
	}
	sort.Slice(margs, func(i, j int) bool {
		return margs[i].gain*margs[j].cost > margs[j].gain*margs[i].cost
	})
	bound := e.Score()
	remaining := inst.Budget
	for _, m := range margs {
		if remaining <= 0 {
			break
		}
		if m.cost <= remaining {
			bound += m.gain
			remaining -= m.cost
			continue
		}
		bound += m.gain * remaining / m.cost
		break
	}
	return bound
}

// CertifiedRatio returns G(Ŝ) / OnlineBound(Ŝ), a lower bound on the
// solution's true performance ratio G(Ŝ)/OPT. It returns 1 for instances
// whose optimum is 0 (empty bound).
func CertifiedRatio(inst *par.Instance, sol par.Solution) float64 {
	bound := OnlineBound(inst, sol.Photos)
	if bound <= 0 {
		return 1
	}
	return sol.Score / bound
}
