package celf

import (
	"fmt"
	"strings"
	"testing"

	"phocus/internal/par"
)

type recordingObserver struct {
	events []string
}

func (r *recordingObserver) Recomputed(p par.PhotoID, gain float64) {
	r.events = append(r.events, fmt.Sprintf("recompute p%d %.2f", p+1, gain))
}

func (r *recordingObserver) Selected(p par.PhotoID, gain float64) {
	r.events = append(r.events, fmt.Sprintf("select p%d %.2f", p+1, gain))
}

func (r *recordingObserver) selections() []string {
	var sel []string
	for _, ev := range r.events {
		if strings.HasPrefix(ev, "select") {
			sel = append(sel, ev)
		}
	}
	return sel
}

// TestObserverFigure3FullBudget replays Figure 3's event sequence on the
// paper's example with a budget admitting every photo (the figure's trace
// ignores budget): after p1 is selected, p2 and p3 are recomputed (to 0.81
// and 0.36) but p6's stale 4.61 survives recomputation and wins step 2; in
// step 3 p5 recomputes down (to 0.21 — see the Figure1Instance doc on the
// figure's printed 0.12) and p2 wins.
func TestObserverFigure3FullBudget(t *testing.T) {
	inst := par.Figure1Instance() // budget 8.1 fits everything
	var rec recordingObserver
	if _, _, err := LazyGreedyObserved(inst, UC, &rec); err != nil {
		t.Fatal(err)
	}
	// Initial phase: 7 recomputations (every entry starts at ∞), then p1.
	for i := 0; i < 7; i++ {
		if !strings.HasPrefix(rec.events[i], "recompute") {
			t.Fatalf("event %d = %q, want initial recomputation", i, rec.events[i])
		}
	}
	if rec.events[7] != "select p1 7.83" {
		t.Fatalf("event 7 = %q, want select p1 7.83", rec.events[7])
	}
	// Step 2: the two stale 6.75 entries (p2, p3) are recomputed in
	// heap-dependent order, then p6's recomputation confirms 4.61 and wins.
	step2 := rec.events[8:12]
	wantSet := map[string]bool{"recompute p2 0.81": true, "recompute p3 0.36": true}
	for _, ev := range step2[:2] {
		if !wantSet[ev] {
			t.Fatalf("step-2 recomputations = %v, want p2→0.81 and p3→0.36", step2[:2])
		}
		delete(wantSet, ev)
	}
	if step2[2] != "recompute p6 4.61" || step2[3] != "select p6 4.61" {
		t.Fatalf("step-2 tail = %v, want p6 recompute then select", step2[2:])
	}
	// Step 3: p5's stale 0.82 recomputes to 0.21, then p2 is selected.
	if rec.events[12] != "recompute p5 0.21" {
		t.Errorf("event 12 = %q, want recompute p5 0.21", rec.events[12])
	}
	sel := rec.selections()
	if len(sel) != 7 {
		t.Fatalf("selected %d photos under the saturating budget, want 7: %v", len(sel), sel)
	}
	if sel[2] != "select p2 0.81" {
		t.Errorf("third selection = %q, want select p2 0.81", sel[2])
	}
}

// TestObserverBudgetedTrace checks the budgeted run (Figure 3's inputs at
// budget 3.0): photos that no longer fit are dropped at pop time without
// recomputation, so the trace is shorter but the selections match the
// worked example.
func TestObserverBudgetedTrace(t *testing.T) {
	inst := par.Figure1Instance()
	inst.Budget = 3.0
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	var rec recordingObserver
	sol, _, err := LazyGreedyObserved(inst, UC, &rec)
	if err != nil {
		t.Fatal(err)
	}
	sel := rec.selections()
	want := []string{"select p1 7.83", "select p6 4.61", "select p2 0.81"}
	if len(sel) != 3 {
		t.Fatalf("selections = %v, want %v", sel, want)
	}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("selection %d = %q, want %q", i, sel[i], want[i])
		}
	}
	// p3 (2.1 MB) never fits after p1 (1.2 MB), so it must never be
	// recomputed past the initial phase — the budget check precedes the
	// lazy recomputation.
	for _, ev := range rec.events[8:] {
		if strings.HasPrefix(ev, "recompute p3") {
			t.Errorf("p3 recomputed despite never fitting: %v", rec.events)
		}
	}
	if sol.Cost > 3.0+1e-9 {
		t.Errorf("cost %g over budget", sol.Cost)
	}
}

func TestObserverNilSafe(t *testing.T) {
	inst := par.Figure1Instance()
	if _, _, err := LazyGreedyObserved(inst, CB, nil); err != nil {
		t.Fatal(err)
	}
}
