package celf

import (
	"time"

	"phocus/internal/par"
)

// EagerGreedy is the textbook greedy without lazy evaluation: every round it
// recomputes the marginal gain of every remaining candidate. It selects the
// exact same photos as LazyGreedy (up to ties), and exists as the ablation
// baseline quantifying how much work CELF's lazy evaluation saves — the
// paper cites speedups of up to 700× from the original CELF work.
func EagerGreedy(inst *par.Instance, variant Variant) (par.Solution, Stats, error) {
	start := time.Now()
	e := par.NewEvaluator(inst)
	e.Seed()

	var stats Stats
	for {
		best := par.PhotoID(-1)
		var bestKey float64
		for p := 0; p < inst.NumPhotos(); p++ {
			id := par.PhotoID(p)
			if e.Contains(id) || !e.Fits(id) {
				continue
			}
			key := e.Gain(id)
			if variant == CB {
				key /= inst.Cost[p]
			}
			if best < 0 || key > bestKey {
				best, bestKey = id, key
			}
		}
		if best < 0 {
			break
		}
		e.Add(best)
		stats.Selected++
	}

	stats.GainEvals = e.GainEvals()
	stats.Elapsed = time.Since(start)
	return e.Solution(), stats, nil
}
