package celf

import (
	"testing"

	"phocus/internal/par"
	"phocus/internal/solvertest"
)

func TestSolverContract(t *testing.T) {
	solvertest.Contract(t, func() par.Solver { return &Solver{} }, solvertest.Options{Saturates: true})
}

func TestContextContract(t *testing.T) {
	solvertest.ContextContract(t, func() par.ContextSolver { return &Solver{} })
}

// TestContextContractSequential covers the Workers=1 path, whose cancel
// check sits in the lazy-greedy loop rather than the concurrent harness.
func TestContextContractSequential(t *testing.T) {
	solvertest.ContextContract(t, func() par.ContextSolver { return &Solver{Workers: 1} })
}
