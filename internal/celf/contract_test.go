package celf

import (
	"testing"

	"phocus/internal/par"
	"phocus/internal/solvertest"
)

func TestSolverContract(t *testing.T) {
	solvertest.Contract(t, func() par.Solver { return &Solver{} }, solvertest.Options{Saturates: true})
}
