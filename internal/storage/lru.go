package storage

import (
	"container/list"
	"fmt"

	"phocus/internal/par"
)

// LRUCache is the classical reactive alternative to PHOcus' pinned
// selection: photos enter the fast tier on access and the least recently
// used ones are evicted to fit the capacity. The paper's related work
// (Section 2) argues frequency/recency caching cannot exploit similarity
// redundancy; the pinnedVsLRU experiment quantifies that on PAR's own
// access model.
type LRUCache struct {
	capacity float64
	used     float64
	sizes    map[par.PhotoID]float64
	order    *list.List // front = most recently used
	elems    map[par.PhotoID]*list.Element
	stats    Stats
	cfg      Config
}

// NewLRU returns an empty LRU cache with the config's capacity and
// simulated latencies.
func NewLRU(cfg Config) *LRUCache {
	return &LRUCache{
		capacity: cfg.CacheCapacity,
		sizes:    make(map[par.PhotoID]float64),
		order:    list.New(),
		elems:    make(map[par.PhotoID]*list.Element),
		cfg:      cfg,
	}
}

// Ingest registers a photo in the archive tier.
func (c *LRUCache) Ingest(id par.PhotoID, size float64) error {
	if size <= 0 {
		return fmt.Errorf("storage: photo %d has non-positive size", id)
	}
	if _, ok := c.sizes[id]; ok {
		return fmt.Errorf("storage: photo %d already ingested", id)
	}
	c.sizes[id] = size
	return nil
}

// IngestInstance registers every photo of a PAR instance.
func (c *LRUCache) IngestInstance(inst *par.Instance) error {
	for p := 0; p < inst.NumPhotos(); p++ {
		if err := c.Ingest(par.PhotoID(p), inst.Cost[p]); err != nil {
			return err
		}
	}
	return nil
}

// Get accesses a photo: a hit refreshes its recency; a miss fetches it from
// the archive and inserts it, evicting least-recently-used photos until it
// fits. Photos larger than the whole capacity are served from the archive
// without insertion.
func (c *LRUCache) Get(id par.PhotoID) (fromCache bool, err error) {
	size, ok := c.sizes[id]
	if !ok {
		return false, fmt.Errorf("storage: photo %d not ingested", id)
	}
	if el, ok := c.elems[id]; ok {
		c.order.MoveToFront(el)
		c.stats.Hits++
		c.stats.SimulatedLatency += c.cfg.CacheLatency
		return true, nil
	}
	c.stats.Misses++
	c.stats.SimulatedLatency += c.cfg.ArchiveLatency
	if size > c.capacity {
		return false, nil
	}
	for c.used+size > c.capacity {
		back := c.order.Back()
		evicted := back.Value.(par.PhotoID)
		c.order.Remove(back)
		delete(c.elems, evicted)
		c.used -= c.sizes[evicted]
	}
	c.elems[id] = c.order.PushFront(id)
	c.used += size
	return false, nil
}

// Cached reports whether a photo currently sits in the fast tier.
func (c *LRUCache) Cached(id par.PhotoID) bool {
	_, ok := c.elems[id]
	return ok
}

// Usage returns the bytes currently cached.
func (c *LRUCache) Usage() float64 { return c.used }

// Stats returns a copy of the accumulated statistics.
func (c *LRUCache) Stats() Stats { return c.stats }

// ResetStats clears the access accounting without touching cache contents
// (useful for measuring steady-state behaviour after a warm-up phase).
func (c *LRUCache) ResetStats() { c.stats = Stats{} }
