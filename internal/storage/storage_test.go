package storage

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"phocus/internal/celf"
	"phocus/internal/par"
)

func TestIngestAndApply(t *testing.T) {
	s := New(Config{CacheCapacity: 3, CacheLatency: time.Millisecond, ArchiveLatency: 10 * time.Millisecond})
	for p, size := range []float64{1, 2, 3} {
		if err := s.Ingest(par.PhotoID(p), size); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Ingest(0, 1); err == nil {
		t.Error("double ingest accepted")
	}
	if err := s.Ingest(9, 0); err == nil {
		t.Error("zero size accepted")
	}
	if err := s.Apply([]par.PhotoID{0, 1}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if s.CacheUsage() != 3 {
		t.Errorf("CacheUsage = %g, want 3", s.CacheUsage())
	}
	if !s.Cached(0) || !s.Cached(1) || s.Cached(2) {
		t.Error("cache membership wrong")
	}
	if err := s.Apply([]par.PhotoID{2, 0}); err == nil {
		t.Error("over-capacity Apply accepted")
	}
	// Failed Apply must not clobber the previous pin set.
	if !s.Cached(0) || s.Cached(2) {
		t.Error("failed Apply mutated cache")
	}
	if err := s.Apply([]par.PhotoID{42}); err == nil {
		t.Error("unknown photo accepted")
	}
}

func TestGetStats(t *testing.T) {
	s := New(Config{CacheCapacity: 10, CacheLatency: time.Millisecond, ArchiveLatency: 50 * time.Millisecond})
	s.Ingest(0, 1)
	s.Ingest(1, 1)
	s.Apply([]par.PhotoID{0})
	if _, err := s.Get(7); err == nil {
		t.Error("Get of unknown photo succeeded")
	}
	hit, err := s.Get(0)
	if err != nil || !hit {
		t.Fatalf("Get(0) = %v, %v; want cache hit", hit, err)
	}
	hit, err = s.Get(1)
	if err != nil || hit {
		t.Fatalf("Get(1) = %v, %v; want archive miss", hit, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats %+v", st)
	}
	if st.SimulatedLatency != 51*time.Millisecond {
		t.Errorf("latency %v, want 51ms", st.SimulatedLatency)
	}
	if math.Abs(st.HitRatio()-0.5) > 1e-12 {
		t.Errorf("hit ratio %g", st.HitRatio())
	}
	s.ResetStats()
	if s.Stats() != (Stats{}) {
		t.Error("ResetStats did not clear")
	}
	if (Stats{}).HitRatio() != 0 {
		t.Error("empty hit ratio should be 0")
	}
}

func TestIngestInstance(t *testing.T) {
	inst := par.Figure1Instance()
	s := New(DefaultConfig(inst.Budget * 1e6))
	if err := s.IngestInstance(inst); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < inst.NumPhotos(); p++ {
		if _, err := s.Get(par.PhotoID(p)); err != nil {
			t.Fatalf("photo %d not ingested", p)
		}
	}
}

func TestAccessPatternDistribution(t *testing.T) {
	inst := par.Figure1Instance()
	rng := rand.New(rand.NewSource(1))
	accesses := AccessPattern(rng, inst, 50_000)
	counts := map[par.PhotoID]int{}
	for _, p := range accesses {
		counts[p]++
	}
	// p1 (ID 0) carries W·R mass 9×0.5 = 4.5, the largest of any photo
	// (p6's is 1×0.3 + 3×1 + 1×0.7 = 4.0): expected share 4.5/14 ≈ 0.321.
	for p, c := range counts {
		if p != 0 && c > counts[0] {
			t.Fatalf("photo %d accessed more than p1 (%d > %d)", p, c, counts[0])
		}
	}
	share := float64(counts[0]) / float64(len(accesses))
	if math.Abs(share-4.5/14) > 0.02 {
		t.Errorf("p1 access share %.3f, want ≈ %.3f", share, 4.5/14)
	}
	if AccessPattern(rng, inst, 0) != nil {
		t.Error("n=0 should return nil")
	}
}

// A better PAR solution should yield a better cache hit ratio under the
// instance's own access pattern — the end-to-end story of the system.
func TestSolutionQualityImprovesHitRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := par.Random(rng, par.RandomConfig{Photos: 40, Subsets: 20, BudgetFrac: 0.3})
	var solver celf.Solver
	good, err := solver.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Adversarially bad feasible solution: photos that appear in no subset
	// first, then whatever fits.
	inSubset := make([]bool, 40)
	for _, q := range inst.Subsets {
		for _, p := range q.Members {
			inSubset[p] = true
		}
	}
	var bad []par.PhotoID
	var cost float64
	for p := 0; p < 40; p++ {
		if !inSubset[p] && cost+inst.Cost[p] <= inst.Budget {
			bad = append(bad, par.PhotoID(p))
			cost += inst.Cost[p]
		}
	}

	hitRatio := func(sol []par.PhotoID) float64 {
		s := New(DefaultConfig(inst.Budget))
		if err := s.IngestInstance(inst); err != nil {
			t.Fatal(err)
		}
		if err := s.Apply(sol); err != nil {
			t.Fatal(err)
		}
		for _, p := range AccessPattern(rng, inst, 20_000) {
			s.Get(p)
		}
		return s.Stats().HitRatio()
	}
	if hg, hb := hitRatio(good.Photos), hitRatio(bad); hg <= hb {
		t.Errorf("PHOcus hit ratio %.3f not above bad solution's %.3f", hg, hb)
	}
}

func TestAccessPatternDetailedConsistency(t *testing.T) {
	inst := par.Figure1Instance()
	// Same seed must give the same stream via both APIs.
	det := AccessPatternDetailed(rand.New(rand.NewSource(8)), inst, 500)
	flat := AccessPattern(rand.New(rand.NewSource(8)), inst, 500)
	if len(det) != 500 || len(flat) != 500 {
		t.Fatal("stream lengths wrong")
	}
	for i := range det {
		q := &inst.Subsets[det[i].Subset]
		if q.Members[det[i].Member] != flat[i] {
			t.Fatalf("access %d: detailed (%d,%d) != flat %d", i, det[i].Subset, det[i].Member, flat[i])
		}
	}
	if AccessPatternDetailed(rand.New(rand.NewSource(1)), inst, 0) != nil {
		t.Error("n=0 should return nil")
	}
}
