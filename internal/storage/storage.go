// Package storage is the two-tier store that a PAR solution drives: the
// photos PHOcus retains live in a fast, size-bounded cache (the paper's
// landing-page image cache / local phone storage) and everything else sits
// in slow archival storage (cloud, cold store). The package simulates
// access latencies so examples and benchmarks can quantify what a selection
// is worth in serving terms, and provides a workload sampler that converts
// a PAR instance's subsets, weights and relevances into an access stream.
package storage

import (
	"fmt"
	"math/rand"
	"time"

	"phocus/internal/par"
)

// Config sets tier capacities and simulated access latencies.
type Config struct {
	// CacheCapacity is the fast tier's size in bytes (the PAR budget).
	CacheCapacity float64
	// CacheLatency and ArchiveLatency are the simulated per-access costs.
	CacheLatency, ArchiveLatency time.Duration
}

// DefaultConfig uses latencies in the regime the paper motivates (cache
// loads contribute to a 100 ms page budget; archive access is ~50× slower).
func DefaultConfig(capacity float64) Config {
	return Config{
		CacheCapacity:  capacity,
		CacheLatency:   2 * time.Millisecond,
		ArchiveLatency: 100 * time.Millisecond,
	}
}

// Stats accumulates access accounting.
type Stats struct {
	Hits, Misses     int64
	SimulatedLatency time.Duration
}

// HitRatio returns hits/(hits+misses), 0 when no accesses happened.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Store is the two-tier photo store. It is not safe for concurrent use.
type Store struct {
	cfg     Config
	sizes   map[par.PhotoID]float64
	inCache map[par.PhotoID]bool
	used    float64
	stats   Stats
}

// New returns an empty store.
func New(cfg Config) *Store {
	return &Store{
		cfg:     cfg,
		sizes:   make(map[par.PhotoID]float64),
		inCache: make(map[par.PhotoID]bool),
	}
}

// Ingest registers a photo in the archive tier.
func (s *Store) Ingest(id par.PhotoID, size float64) error {
	if size <= 0 {
		return fmt.Errorf("storage: photo %d has non-positive size", id)
	}
	if _, ok := s.sizes[id]; ok {
		return fmt.Errorf("storage: photo %d already ingested", id)
	}
	s.sizes[id] = size
	return nil
}

// IngestInstance registers every photo of a PAR instance.
func (s *Store) IngestInstance(inst *par.Instance) error {
	for p := 0; p < inst.NumPhotos(); p++ {
		if err := s.Ingest(par.PhotoID(p), inst.Cost[p]); err != nil {
			return err
		}
	}
	return nil
}

// Apply pins exactly the given solution into the cache, evicting everything
// else. It fails without changing the cache if the solution exceeds the
// cache capacity or references unknown photos.
func (s *Store) Apply(solution []par.PhotoID) error {
	var total float64
	for _, p := range solution {
		size, ok := s.sizes[p]
		if !ok {
			return fmt.Errorf("storage: photo %d not ingested", p)
		}
		total += size
	}
	if total > s.cfg.CacheCapacity*(1+1e-12) {
		return fmt.Errorf("storage: solution needs %.0f bytes, cache holds %.0f", total, s.cfg.CacheCapacity)
	}
	s.inCache = make(map[par.PhotoID]bool, len(solution))
	for _, p := range solution {
		s.inCache[p] = true
	}
	s.used = total
	return nil
}

// CacheUsage returns the bytes currently pinned.
func (s *Store) CacheUsage() float64 { return s.used }

// Cached reports whether a photo is in the fast tier.
func (s *Store) Cached(id par.PhotoID) bool { return s.inCache[id] }

// Get accesses a photo, updating the hit/miss statistics and the simulated
// latency accumulator, and reports which tier served it.
func (s *Store) Get(id par.PhotoID) (fromCache bool, err error) {
	if _, ok := s.sizes[id]; !ok {
		return false, fmt.Errorf("storage: photo %d not ingested", id)
	}
	if s.inCache[id] {
		s.stats.Hits++
		s.stats.SimulatedLatency += s.cfg.CacheLatency
		return true, nil
	}
	s.stats.Misses++
	s.stats.SimulatedLatency += s.cfg.ArchiveLatency
	return false, nil
}

// Stats returns a copy of the accumulated statistics.
func (s *Store) Stats() Stats { return s.stats }

// ResetStats clears the access accounting.
func (s *Store) ResetStats() { s.stats = Stats{} }

// Access is one usage-model event: the Member-th photo of subset Subset
// was requested (e.g. a landing-page impression needing that photo).
type Access struct {
	Subset, Member int
}

// AccessPatternDetailed samples n accesses like AccessPattern but keeps
// the (subset, member) provenance, which serving simulations need to value
// substitute photos by in-context similarity.
func AccessPatternDetailed(rng *rand.Rand, inst *par.Instance, n int) []Access {
	if len(inst.Subsets) == 0 || n <= 0 {
		return nil
	}
	wcum := make([]float64, len(inst.Subsets))
	var wsum float64
	for i := range inst.Subsets {
		wsum += inst.Subsets[i].Weight
		wcum[i] = wsum
	}
	out := make([]Access, n)
	for k := 0; k < n; k++ {
		qr := rng.Float64() * wsum
		qi := 0
		for qi < len(wcum)-1 && wcum[qi] < qr {
			qi++
		}
		q := &inst.Subsets[qi]
		pr := rng.Float64()
		var acc float64
		mi := len(q.Members) - 1
		for i, r := range q.Relevance {
			acc += r
			if pr <= acc {
				mi = i
				break
			}
		}
		out[k] = Access{Subset: qi, Member: mi}
	}
	return out
}

// AccessPattern samples n photo accesses from a PAR instance's usage model:
// a subset is drawn proportionally to its weight, then a member
// proportionally to its relevance — the access distribution under which the
// PAR objective is exactly the expected best-match similarity served per
// access.
func AccessPattern(rng *rand.Rand, inst *par.Instance, n int) []par.PhotoID {
	det := AccessPatternDetailed(rng, inst, n)
	if det == nil {
		return nil
	}
	out := make([]par.PhotoID, len(det))
	for i, a := range det {
		out[i] = inst.Subsets[a.Subset].Members[a.Member]
	}
	return out
}
