package storage

import (
	"math/rand"
	"testing"
	"time"

	"phocus/internal/celf"
	"phocus/internal/par"
)

func lruConfig(capacity float64) Config {
	return Config{CacheCapacity: capacity, CacheLatency: time.Millisecond, ArchiveLatency: 20 * time.Millisecond}
}

func TestLRUBasics(t *testing.T) {
	c := NewLRU(lruConfig(3))
	for p, size := range []float64{1, 1, 2} {
		if err := c.Ingest(par.PhotoID(p), size); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Ingest(0, 1); err == nil {
		t.Error("double ingest accepted")
	}
	if err := c.Ingest(9, -1); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := c.Get(42); err == nil {
		t.Error("unknown photo served")
	}

	// Cold miss inserts.
	if hit, _ := c.Get(0); hit {
		t.Error("cold access reported as hit")
	}
	if hit, _ := c.Get(0); !hit {
		t.Error("warm access reported as miss")
	}
	if c.Usage() != 1 {
		t.Errorf("usage %g, want 1", c.Usage())
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewLRU(lruConfig(3))
	c.Ingest(0, 2)
	c.Ingest(1, 1)
	c.Ingest(2, 2)
	c.Get(0) // cache: {0}
	c.Get(1) // cache: {0,1} (size 3)
	c.Get(1) // refresh 1 → LRU order: 1 fresh, 0 stale
	c.Get(2) // needs 2 → evicts 0 (LRU) then fits? 3-2+... evicts 0 (2) → used 1+2=3
	if c.Cached(0) {
		t.Error("LRU victim 0 still cached")
	}
	if !c.Cached(1) || !c.Cached(2) {
		t.Error("recently used photos evicted")
	}
	if c.Usage() != 3 {
		t.Errorf("usage %g, want 3", c.Usage())
	}
}

func TestLRUOversizedPhoto(t *testing.T) {
	c := NewLRU(lruConfig(1))
	c.Ingest(0, 5)
	if hit, err := c.Get(0); err != nil || hit {
		t.Fatalf("oversized photo: hit=%v err=%v", hit, err)
	}
	if c.Cached(0) || c.Usage() != 0 {
		t.Error("oversized photo inserted into cache")
	}
}

func TestLRUStatsAndReset(t *testing.T) {
	c := NewLRU(lruConfig(2))
	c.Ingest(0, 1)
	c.Get(0)
	c.Get(0)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats %+v", st)
	}
	if st.SimulatedLatency != 21*time.Millisecond {
		t.Errorf("latency %v", st.SimulatedLatency)
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Error("ResetStats did not clear")
	}
	if !c.Cached(0) {
		t.Error("ResetStats evicted contents")
	}
}

// The PAR-pinned cache must beat reactive LRU on PAR's own access pattern:
// LRU pays a miss for every first access and cannot prefer high-value
// small photos; the pinned selection holds exactly the objective-optimal
// set. This is the quantitative version of the paper's Section 2 argument
// that frequency/recency caching does not solve the archival problem.
func TestPinnedBeatsLRU(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := par.Random(rng, par.RandomConfig{Photos: 60, Subsets: 30, BudgetFrac: 0.25})
	var solver celf.Solver
	sol, err := solver.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}

	pinned := New(DefaultConfig(inst.Budget))
	if err := pinned.IngestInstance(inst); err != nil {
		t.Fatal(err)
	}
	if err := pinned.Apply(sol.Photos); err != nil {
		t.Fatal(err)
	}
	lru := NewLRU(DefaultConfig(inst.Budget))
	if err := lru.IngestInstance(inst); err != nil {
		t.Fatal(err)
	}

	accesses := AccessPattern(rng, inst, 30_000)
	// Warm the LRU on the first half, then measure both on the second so
	// the comparison is steady-state vs steady-state.
	for _, p := range accesses[:15_000] {
		lru.Get(p)
	}
	lru.ResetStats()
	for _, p := range accesses[15_000:] {
		pinned.Get(p)
		lru.Get(p)
	}
	hp, hl := pinned.Stats().HitRatio(), lru.Stats().HitRatio()
	if hp <= hl {
		t.Errorf("pinned hit ratio %.3f not above steady-state LRU %.3f", hp, hl)
	}
}
