package compress

import (
	"math/rand"
	"testing"

	"phocus/internal/imagesim"
	"phocus/internal/par"
)

func calibrationSamples(t *testing.T, n int) []*imagesim.Photo {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	m := imagesim.NewCategoryModel(rng, "cal")
	cfg := imagesim.DefaultGenConfig()
	out := make([]*imagesim.Photo, n)
	for i := range out {
		out[i] = m.Generate(rng, i, cfg)
	}
	return out
}

func TestCalibrateLevel(t *testing.T) {
	samples := calibrationSamples(t, 6)
	ecfg := imagesim.DefaultEmbeddingConfig()
	web, err := CalibrateLevel("web", samples, 2, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	thumb, err := CalibrateLevel("thumb", samples, 4, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, lvl := range []Level{web, thumb} {
		if lvl.CostFactor <= 0 || lvl.CostFactor >= 1 || lvl.Quality <= 0 || lvl.Quality >= 1 {
			t.Fatalf("level %+v outside open intervals", lvl)
		}
	}
	// Heavier downscaling must be cheaper and lower fidelity.
	if thumb.CostFactor >= web.CostFactor {
		t.Errorf("4x cost factor %.3f not below 2x %.3f", thumb.CostFactor, web.CostFactor)
	}
	if thumb.Quality >= web.Quality {
		t.Errorf("4x quality %.3f not below 2x %.3f", thumb.Quality, web.Quality)
	}
	// Calibrated levels must be usable by Expand end to end.
	if _, err := Expand(par.Figure1Instance(), []Level{web, thumb}); err != nil {
		t.Fatalf("Expand rejected calibrated levels: %v", err)
	}
}

func TestCalibrateLevelErrors(t *testing.T) {
	ecfg := imagesim.DefaultEmbeddingConfig()
	if _, err := CalibrateLevel("x", nil, 2, ecfg); err == nil {
		t.Error("no samples accepted")
	}
	if _, err := CalibrateLevel("x", calibrationSamples(t, 1), 1, ecfg); err == nil {
		t.Error("factor 1 accepted")
	}
}
