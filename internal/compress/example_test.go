package compress_test

import (
	"fmt"

	"phocus/internal/compress"
	"phocus/internal/par"
)

// ExampleExpand turns a keep-or-archive instance into a
// keep/compress/archive one and interprets a solution over it.
func ExampleExpand() {
	inst := par.Figure1Instance()
	ex, err := compress.Expand(inst, compress.DefaultLevels())
	if err != nil {
		panic(err)
	}
	// p1 full quality, p6 as a web-compressed variant (ID offset n=7).
	plan := ex.Interpret(par.Solution{Photos: []par.PhotoID{0, 7 + 5}})
	for _, c := range plan.Keep {
		if c.Level == nil {
			fmt.Printf("p%d: keep full\n", c.Photo+1)
		} else {
			fmt.Printf("p%d: keep %s\n", c.Photo+1, c.Level.Name)
		}
	}
	fmt.Printf("archived: %d photos\n", len(plan.Archive))
	// Output:
	// p1: keep full
	// p6: keep web
	// archived: 5 photos
}
