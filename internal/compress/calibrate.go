package compress

import (
	"fmt"

	"phocus/internal/embed"
	"phocus/internal/imagesim"
)

// CalibrateLevel measures a compression Level from pixels instead of
// assuming it: each sample photo is box-downscaled by the factor, its cost
// factor is the size-model ratio of the downscaled raster, and its quality
// is the cosine between the original's feature embedding and the
// down-then-upscaled round trip's embedding (the round trip restores the
// feature layout's resolution so the comparison is apples to apples). The
// returned level uses the sample means, clamped into the open intervals
// Expand requires.
func CalibrateLevel(name string, samples []*imagesim.Photo, factor int, cfg imagesim.EmbeddingConfig) (Level, error) {
	if len(samples) == 0 {
		return Level{}, fmt.Errorf("compress: no calibration samples")
	}
	if factor < 2 {
		return Level{}, fmt.Errorf("compress: downscale factor must be ≥ 2")
	}
	var costSum, qualSum float64
	for _, ph := range samples {
		small := imagesim.Downscale(ph.Image, factor)
		costSum += imagesim.EstimateJPEGSize(small) / imagesim.EstimateJPEGSize(ph.Image)
		restored := imagesim.Upscale(small, factor)
		orig := imagesim.Embedding(ph.Image, cfg)
		back := imagesim.Embedding(restored, cfg)
		qualSum += embed.CosineSim01(orig, back)
	}
	n := float64(len(samples))
	lvl := Level{
		Name:       name,
		CostFactor: clampOpen(costSum / n),
		Quality:    clampOpen(qualSum / n),
	}
	return lvl, nil
}

// clampOpen forces v into the open interval (0, 1) Expand validates.
func clampOpen(v float64) float64 {
	const eps = 1e-3
	if v < eps {
		return eps
	}
	if v > 1-eps {
		return 1 - eps
	}
	return v
}
