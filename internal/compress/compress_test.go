package compress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"phocus/internal/celf"
	"phocus/internal/par"
)

func TestExpandShape(t *testing.T) {
	inst := par.Figure1Instance()
	ex, err := Expand(inst, DefaultLevels())
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.Instance.NumPhotos(); got != 7*3 {
		t.Fatalf("expanded photos = %d, want 21", got)
	}
	// Variant costs scale by the level factors.
	if got := ex.Instance.Cost[7]; math.Abs(got-0.35*1.2) > 1e-12 {
		t.Errorf("web variant of p1 costs %g, want 0.42", got)
	}
	if got := ex.Instance.Cost[14]; math.Abs(got-0.08*1.2) > 1e-12 {
		t.Errorf("thumb variant of p1 costs %g, want 0.096", got)
	}
	// Subset membership triples; variants carry zero relevance.
	q := ex.Instance.Subsets[0]
	if len(q.Members) != 9 {
		t.Fatalf("expanded Bikes subset has %d members, want 9", len(q.Members))
	}
	for i := 3; i < 9; i++ {
		if q.Relevance[i] != 0 {
			t.Errorf("variant relevance %g, want 0", q.Relevance[i])
		}
	}
}

func TestExpandValidatesLevels(t *testing.T) {
	inst := par.Figure1Instance()
	for _, bad := range []Level{
		{Name: "x", CostFactor: 0, Quality: 0.5},
		{Name: "x", CostFactor: 1, Quality: 0.5},
		{Name: "x", CostFactor: 0.5, Quality: 0},
		{Name: "x", CostFactor: 0.5, Quality: 1},
	} {
		if _, err := Expand(inst, []Level{bad}); err == nil {
			t.Errorf("level %+v accepted", bad)
		}
	}
}

func TestVariantSimSemantics(t *testing.T) {
	inst := par.Figure1Instance()
	levels := []Level{{Name: "c", CostFactor: 0.3, Quality: 0.8}}
	ex, err := Expand(inst, levels)
	if err != nil {
		t.Fatal(err)
	}
	sim := ex.Instance.Subsets[0].Sim // Bikes: p1,p2,p3 + variants
	// Original pair unchanged.
	if got := sim.Sim(0, 1); got != 0.7 {
		t.Errorf("SIM(p1,p2) = %g, want 0.7", got)
	}
	// Variant of p1 covering p2: 0.7 × 0.8.
	if got := sim.Sim(3, 1); math.Abs(got-0.56) > 1e-12 {
		t.Errorf("SIM(p1',p2) = %g, want 0.56", got)
	}
	// Variant of p1 covering p1 itself: the level quality.
	if got := sim.Sim(3, 0); got != 0.8 {
		t.Errorf("SIM(p1',p1) = %g, want 0.8", got)
	}
	// Self-similarity of a variant is 1 by definition.
	if got := sim.Sim(3, 3); got != 1 {
		t.Errorf("SIM(p1',p1') = %g, want 1", got)
	}
	// Variant-variant of distinct photos: both qualities apply.
	if got := sim.Sim(3, 4); math.Abs(got-0.7*0.8*0.8) > 1e-12 {
		t.Errorf("SIM(p1',p2') = %g, want 0.448", got)
	}
}

// Property: the expanded objective is a faithful extension — solutions that
// only use original photos score identically in both instances.
func TestExpansionConservativeQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := par.Random(rng, par.RandomConfig{Photos: 10, Subsets: 5})
		ex, err := Expand(inst, DefaultLevels())
		if err != nil {
			return false
		}
		var sol []par.PhotoID
		for p := 0; p < 10; p++ {
			if rng.Intn(2) == 0 {
				sol = append(sol, par.PhotoID(p))
			}
		}
		return math.Abs(par.Score(inst, sol)-par.Score(ex.Instance, sol)) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// At tight budgets, the option to compress must never hurt and usually
// helps: the solver can afford more (degraded) coverage providers.
func TestCompressionHelpsAtTightBudgets(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	improved := 0
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		inst := par.Random(rng, par.RandomConfig{Photos: 30, Subsets: 15, BudgetFrac: 0.15, SimDensity: 0.7})
		var plain celf.Solver
		base, err := plain.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := Expand(inst, DefaultLevels())
		if err != nil {
			t.Fatal(err)
		}
		var comp celf.Solver
		csol, err := comp.Solve(ex.Instance)
		if err != nil {
			t.Fatal(err)
		}
		// The expanded OPTIMUM dominates the plain one, but the greedy
		// heuristic explores a 3x candidate space and can dip slightly;
		// tolerate sub-percent dips (deployments fall back to the plain
		// solve, see the compression example/experiment).
		if csol.Score < 0.99*base.Score {
			t.Fatalf("trial %d: compression option hurt: %.4f < %.4f", trial, csol.Score, base.Score)
		}
		if csol.Score > base.Score+1e-9 {
			improved++
		}
	}
	if improved < trials/2 {
		t.Errorf("compression improved only %d/%d tight-budget instances", improved, trials)
	}
}

func TestInterpret(t *testing.T) {
	inst := par.Figure1Instance()
	levels := DefaultLevels()
	ex, err := Expand(inst, levels)
	if err != nil {
		t.Fatal(err)
	}
	// Selected: p1 full (ID 0), p2 web (ID 7+1=8), p2 thumb (ID 14+1=15),
	// p6 thumb (ID 14+5=19). p2's best variant is web.
	plan := ex.Interpret(par.Solution{Photos: []par.PhotoID{0, 8, 15, 19}})
	if len(plan.Keep) != 3 {
		t.Fatalf("kept %d photos, want 3", len(plan.Keep))
	}
	byPhoto := map[par.PhotoID]Choice{}
	for _, c := range plan.Keep {
		byPhoto[c.Photo] = c
	}
	if c := byPhoto[0]; c.Level != nil {
		t.Errorf("p1 should be full quality, got level %v", c.Level)
	}
	if c := byPhoto[1]; c.Level == nil || c.Level.Name != "web" {
		t.Errorf("p2 should be web-compressed, got %+v", c)
	}
	if c := byPhoto[5]; c.Level == nil || c.Level.Name != "thumb" {
		t.Errorf("p6 should be thumb-compressed, got %+v", c)
	}
	if got := len(plan.Archive); got != 4 {
		t.Errorf("archived %d, want 4", got)
	}
	wantCost := 1.2 + 0.35*0.7 + 0.08*1.1
	if math.Abs(plan.Cost-wantCost) > 1e-12 {
		t.Errorf("plan cost %g, want %g", plan.Cost, wantCost)
	}
}

// Retained photos stay retained at full quality in the expanded instance.
func TestExpandKeepsRetention(t *testing.T) {
	inst := par.Figure1Instance()
	inst.Retained = []par.PhotoID{5}
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	ex, err := Expand(inst, DefaultLevels())
	if err != nil {
		t.Fatal(err)
	}
	var s celf.Solver
	sol, err := s.Solve(ex.Instance)
	if err != nil {
		t.Fatal(err)
	}
	plan := ex.Interpret(sol)
	found := false
	for _, c := range plan.Keep {
		if c.Photo == 5 && c.Level == nil {
			found = true
		}
	}
	if !found {
		t.Error("retained photo not kept at full quality")
	}
}

// The expanded similarity must satisfy the model's contract (symmetry,
// range, unit diagonal) — verified by the shared sampling checker.
func TestVariantSimWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inst := par.Random(rng, par.RandomConfig{Photos: 12, Subsets: 6})
	ex, err := Expand(inst, DefaultLevels())
	if err != nil {
		t.Fatal(err)
	}
	if err := par.CheckSimilarity(rng, ex.Instance, 400); err != nil {
		t.Errorf("expanded similarity defect: %v", err)
	}
}
