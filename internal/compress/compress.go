// Package compress implements the extension sketched in the paper's
// conclusions (Section 6): instead of the binary keep/archive decision,
// photos may also be KEPT COMPRESSED — sacrificing quality to gain space.
// The paper conjectures that "our model can already capture this problem",
// and it does: every photo gets lossy variants that act as additional
// coverage providers. A variant of photo p costs CostFactor·C(p) and covers
// any photo x of a shared subset with similarity Quality·SIM(q, p, x). The
// variant's own relevance is 0 — it never needs covering, it only provides
// coverage — which keeps the expanded objective monotone and submodular, so
// every solver in this repository works on expanded instances unchanged.
//
// Selecting both a photo and its variant is never strictly better than the
// photo alone (the variant's coverage is pointwise dominated), so greedy
// solvers do not waste budget on redundant variants; Interpret resolves the
// rare ties in favour of the best-quality selected variant.
package compress

import (
	"fmt"

	"phocus/internal/par"
)

// Level is one compression setting.
type Level struct {
	// Name labels the level ("web", "thumbnail", ...).
	Name string
	// CostFactor scales the photo's storage cost, in (0, 1).
	CostFactor float64
	// Quality scales the photo's similarity to every other photo (its
	// fidelity as a coverage provider), in (0, 1).
	Quality float64
}

// DefaultLevels is a reasonable two-level ladder: a strong web-quality
// compression and an aggressive thumbnail.
func DefaultLevels() []Level {
	return []Level{
		{Name: "web", CostFactor: 0.35, Quality: 0.92},
		{Name: "thumb", CostFactor: 0.08, Quality: 0.65},
	}
}

// Expanded couples the expanded instance with the bookkeeping needed to
// interpret its solutions.
type Expanded struct {
	Instance *par.Instance
	// levels[i] is the compression level of variant photo (origPhotos+i·n);
	// the first origPhotos IDs are the original photos.
	levels []Level
	orig   int
}

// Expand builds the variant-expanded instance. Retained photos (S0) keep
// their full-quality copies retained; variants are added only for
// non-retained photos (policy retention means the original must stay).
func Expand(inst *par.Instance, levels []Level) (*Expanded, error) {
	for _, l := range levels {
		if l.CostFactor <= 0 || l.CostFactor >= 1 {
			return nil, fmt.Errorf("compress: level %q cost factor %g outside (0,1)", l.Name, l.CostFactor)
		}
		if l.Quality <= 0 || l.Quality >= 1 {
			return nil, fmt.Errorf("compress: level %q quality %g outside (0,1)", l.Name, l.Quality)
		}
	}
	n := inst.NumPhotos()
	out := &par.Instance{
		Cost:     make([]float64, n*(1+len(levels))),
		Retained: inst.Retained,
		Budget:   inst.Budget,
	}
	copy(out.Cost, inst.Cost)
	for li, l := range levels {
		for p := 0; p < n; p++ {
			out.Cost[(li+1)*n+p] = l.CostFactor * inst.Cost[p]
		}
	}
	for qi := range inst.Subsets {
		q := &inst.Subsets[qi]
		k := len(q.Members)
		members := make([]par.PhotoID, 0, k*(1+len(levels)))
		rel := make([]float64, 0, k*(1+len(levels)))
		members = append(members, q.Members...)
		rel = append(rel, q.Relevance...)
		for li := range levels {
			for _, p := range q.Members {
				members = append(members, par.PhotoID((li+1)*n+int(p)))
				rel = append(rel, 0) // variants provide coverage, never need it
			}
		}
		out.Subsets = append(out.Subsets, par.Subset{
			Name:      q.Name,
			Weight:    q.Weight,
			Members:   members,
			Relevance: rel,
			Sim:       variantSim{orig: q.Sim, k: k, levels: levels},
		})
	}
	if err := out.Finalize(); err != nil {
		return nil, fmt.Errorf("compress: %w", err)
	}
	return &Expanded{Instance: out, levels: levels, orig: n}, nil
}

// variantSim extends a subset similarity over variant members. Member index
// i corresponds to variant block i/k (block 0 = originals) of original
// member i%k. The similarity of two members is the original members'
// similarity scaled by both variants' qualities — except identical member
// indices, whose similarity is 1 by the model's definition.
type variantSim struct {
	orig   par.Similarity
	k      int
	levels []Level
}

// Len implements par.Similarity.
func (v variantSim) Len() int { return v.k * (1 + len(v.levels)) }

// quality returns the fidelity of the block a member index lives in.
func (v variantSim) quality(i int) float64 {
	block := i / v.k
	if block == 0 {
		return 1
	}
	return v.levels[block-1].Quality
}

// Sim implements par.Similarity.
func (v variantSim) Sim(i, j int) float64 {
	if i == j {
		return 1
	}
	base := v.orig.Sim(i%v.k, j%v.k)
	if i%v.k == j%v.k {
		// A variant versus another variant (or the original) of the SAME
		// photo: the underlying similarity is 1, degraded by the lossier
		// side's fidelity.
		q := v.quality(i)
		if qj := v.quality(j); qj < q {
			q = qj
		}
		return q
	}
	return base * v.quality(i) * v.quality(j)
}

// Choice is the interpreted decision for one original photo.
type Choice struct {
	Photo par.PhotoID
	// Level is nil for a full-quality keep, non-nil for a compressed keep.
	Level *Level
}

// Plan is the interpreted solution of an expanded instance.
type Plan struct {
	// Keep lists photos kept (full or compressed), best variant per photo.
	Keep []Choice
	// Archive lists photos not kept in any form.
	Archive []par.PhotoID
	// Cost is the total storage of the kept variants.
	Cost float64
}

// Interpret maps a solution of the expanded instance back to per-photo
// decisions, keeping only the best-quality selected variant of each photo.
func (ex *Expanded) Interpret(sol par.Solution) Plan {
	best := make(map[par.PhotoID]int) // photo -> best block+1 (0 = unseen)
	for _, v := range sol.Photos {
		p := par.PhotoID(int(v) % ex.orig)
		block := int(v) / ex.orig
		cur, seen := best[p]
		if !seen || blockQuality(ex.levels, block) > blockQuality(ex.levels, cur-1) {
			best[p] = block + 1
		}
	}
	var plan Plan
	for p := 0; p < ex.orig; p++ {
		blockPlus, seen := best[par.PhotoID(p)]
		if !seen {
			plan.Archive = append(plan.Archive, par.PhotoID(p))
			continue
		}
		block := blockPlus - 1
		ch := Choice{Photo: par.PhotoID(p)}
		cost := ex.Instance.Cost[p]
		if block > 0 {
			ch.Level = &ex.levels[block-1]
			cost = ex.Instance.Cost[block*ex.orig+p]
		}
		plan.Keep = append(plan.Keep, ch)
		plan.Cost += cost
	}
	return plan
}

func blockQuality(levels []Level, block int) float64 {
	if block < 0 {
		return -1
	}
	if block == 0 {
		return 1
	}
	return levels[block-1].Quality
}
