package dataset

import (
	"math"
	"math/rand"
	"testing"

	"phocus/internal/embed"
	"phocus/internal/par"
)

func TestGeneratePublicSmall(t *testing.T) {
	ds, err := GeneratePublic(PublicSpec{Name: "P-test", NumPhotos: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	inst := ds.Instance
	if inst.NumPhotos() != 300 {
		t.Fatalf("photos = %d", inst.NumPhotos())
	}
	if len(inst.Subsets) < 20 {
		t.Fatalf("only %d subsets; label machinery broken", len(inst.Subsets))
	}
	if len(ds.CtxVectors) != len(inst.Subsets) {
		t.Fatalf("CtxVectors groups %d != subsets %d", len(ds.CtxVectors), len(inst.Subsets))
	}
	for qi, q := range inst.Subsets {
		if len(ds.CtxVectors[qi]) != len(q.Members) {
			t.Fatalf("subset %d vector count mismatch", qi)
		}
	}
	// Costs in the 0.3–3 MB range.
	for p, c := range inst.Cost {
		if c < 0.3e6 || c > 3.5e6 {
			t.Fatalf("photo %d cost %.0f outside expected range", p, c)
		}
	}
}

func TestGeneratePublicDeterministic(t *testing.T) {
	a, err := GeneratePublic(PublicSpec{Name: "x", NumPhotos: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePublic(PublicSpec{Name: "x", NumPhotos: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Instance.TotalCost() != b.Instance.TotalCost() || len(a.Instance.Subsets) != len(b.Instance.Subsets) {
		t.Fatal("public generator not deterministic for fixed seed")
	}
	c, err := GeneratePublic(PublicSpec{Name: "x", NumPhotos: 100, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Instance.TotalCost() == c.Instance.TotalCost() {
		t.Error("different seeds produced identical datasets")
	}
}

func TestPublicSubsetGrowth(t *testing.T) {
	// More photos must surface more distinct labels, mirroring Table 2's
	// growth of #subsets with #photos.
	small, err := GeneratePublic(PublicSpec{Name: "s", NumPhotos: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	large, err := GeneratePublic(PublicSpec{Name: "l", NumPhotos: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(large.Instance.Subsets) <= len(small.Instance.Subsets) {
		t.Errorf("subsets did not grow: %d (200 photos) vs %d (1000 photos)",
			len(small.Instance.Subsets), len(large.Instance.Subsets))
	}
}

func TestPublicIntraSubsetSimilarityStructure(t *testing.T) {
	ds, err := GeneratePublic(PublicSpec{Name: "sim", NumPhotos: 400, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Photos sharing a label should be markedly more similar within that
	// label's context than random photo pairs are globally.
	var intra, cnt float64
	for qi, q := range ds.Instance.Subsets {
		for i := 0; i < len(q.Members) && i < 4; i++ {
			for j := i + 1; j < len(q.Members) && j < 4; j++ {
				intra += q.Sim.Sim(i, j)
				cnt++
			}
		}
		_ = qi
		if cnt > 400 {
			break
		}
	}
	intra /= cnt
	rng := rand.New(rand.NewSource(9))
	var inter float64
	const pairs = 300
	for k := 0; k < pairs; k++ {
		a, b := rng.Intn(400), rng.Intn(400)
		inter += embed.CosineSim01(ds.Global[a], ds.Global[b])
	}
	inter /= pairs
	if intra < inter+0.15 {
		t.Errorf("intra-subset similarity %.3f not separated from global mean %.3f", intra, inter)
	}
}

func TestSetBudget(t *testing.T) {
	ds, err := GeneratePublic(PublicSpec{Name: "b", NumPhotos: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SetBudget(ds.Instance.TotalCost() / 10); err != nil {
		t.Fatalf("SetBudget: %v", err)
	}
	if err := ds.SetBudget(-1); err == nil {
		t.Error("SetBudget(-1) should fail validation")
	}
}

func TestGlobalSim(t *testing.T) {
	ds, err := GeneratePublic(PublicSpec{Name: "g", NumPhotos: 50, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.GlobalSim(3, 3); got != 1 {
		t.Errorf("self GlobalSim = %g", got)
	}
	s := ds.GlobalSim(0, 1)
	if s < 0 || s > 1 {
		t.Errorf("GlobalSim out of range: %g", s)
	}
	if s != ds.GlobalSim(1, 0) {
		t.Error("GlobalSim not symmetric")
	}
}

func TestGenerateECSmall(t *testing.T) {
	ds, err := GenerateEC(ECSpec{Domain: "Fashion", NumProducts: 300, NumQueries: 20, TopK: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	inst := ds.Instance
	if got := len(inst.Subsets); got == 0 || got > 20 {
		t.Fatalf("subsets = %d, want in (0, 20]", got)
	}
	if inst.NumPhotos() == 0 || inst.NumPhotos() > 300 {
		t.Fatalf("photos = %d", inst.NumPhotos())
	}
	if len(ds.Photos) != inst.NumPhotos() || len(ds.Global) != inst.NumPhotos() {
		t.Fatal("side arrays misaligned")
	}
	// Costs come from the JPEG size model: ≥ 0.3 MB.
	for _, c := range inst.Cost {
		if c < 3e5 {
			t.Fatalf("cost %.0f below size-model floor", c)
		}
	}
	// Weights normalized over subsets.
	var wsum float64
	for _, q := range inst.Subsets {
		wsum += q.Weight
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Errorf("subset weights sum to %g, want 1", wsum)
	}
}

func TestGenerateECUnknownDomain(t *testing.T) {
	if _, err := GenerateEC(ECSpec{Domain: "Toys"}); err == nil {
		t.Error("unknown domain accepted")
	}
}

func TestECQueriesMatchDomain(t *testing.T) {
	ds, err := GenerateEC(ECSpec{Domain: "Electronics", NumProducts: 200, NumQueries: 15, TopK: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The most generic queries are the bare product types.
	types := map[string]bool{}
	for _, ty := range domainVocab["Electronics"].types {
		types[ty] = true
	}
	var generic int
	for _, q := range ds.Instance.Subsets {
		if types[q.Name] {
			generic++
		}
	}
	if generic < 5 {
		t.Errorf("only %d generic type queries among subsets", generic)
	}
}

func TestSpecsScaling(t *testing.T) {
	full := PublicSpecs(1)
	if len(full) != 5 || full[0].NumPhotos != 1000 || full[4].NumPhotos != 100000 {
		t.Errorf("PublicSpecs(1) wrong: %+v", full)
	}
	tiny := PublicSpecs(0.01)
	if tiny[4].NumPhotos != 1000 {
		t.Errorf("scaled P-100K = %d photos, want 1000", tiny[4].NumPhotos)
	}
	if tiny[0].NumPhotos != 20 {
		t.Errorf("scaled P-1K = %d photos, want floor 20", tiny[0].NumPhotos)
	}
	ec := ECSpecs(0.01)
	if len(ec) != 3 {
		t.Fatalf("ECSpecs returned %d specs", len(ec))
	}
	for _, s := range ec {
		if s.NumProducts < 60 || s.NumQueries < 12 || s.TopK < 8 {
			t.Errorf("EC scaling floors violated: %+v", s)
		}
	}
	// Out-of-range scale falls back to 1.
	if PublicSpecs(7)[0].NumPhotos != 1000 {
		t.Error("invalid scale not clamped")
	}
}

func TestSummary(t *testing.T) {
	ds, err := GeneratePublic(PublicSpec{Name: "P-sum", NumPhotos: 80, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s := ds.Summarize()
	if s.Photos != 80 || s.Name != "P-sum" || s.Subsets != len(ds.Instance.Subsets) {
		t.Errorf("summary %+v inconsistent", s)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

func TestVecSim(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := embed.RandomUnit(rng, 8)
	b := embed.RandomUnit(rng, 8)
	v := vecSim{vecs: []embed.Vector{a, b}}
	if v.Len() != 2 {
		t.Error("Len mismatch")
	}
	if v.Sim(0, 0) != 1 {
		t.Error("diagonal must be 1")
	}
	want := embed.CosineSim01(a, b)
	if got := v.Sim(0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("Sim = %g, want %g", got, want)
	}
	if v.Sim(0, 1) != v.Sim(1, 0) {
		t.Error("not symmetric")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(poisson(rng, 2.5))
	}
	mean := sum / n
	if math.Abs(mean-2.5) > 0.1 {
		t.Errorf("poisson(2.5) sample mean %.3f", mean)
	}
	if poisson(rng, 0) != 0 {
		t.Error("poisson(0) must be 0")
	}
}

func TestZipfAndSampling(t *testing.T) {
	w := zipfWeights(4, 1)
	if w[0] != 1 || math.Abs(w[3]-0.25) > 1e-12 {
		t.Errorf("zipfWeights = %v", w)
	}
	cum := cumulative(w)
	if math.Abs(cum[3]-(1+0.5+1.0/3+0.25)) > 1e-12 {
		t.Errorf("cumulative = %v", cum)
	}
	rng := rand.New(rand.NewSource(14))
	counts := make([]int, 4)
	for i := 0; i < 10000; i++ {
		counts[sampleIndex(rng, cum)]++
	}
	if !(counts[0] > counts[1] && counts[1] > counts[2] && counts[2] > counts[3]) {
		t.Errorf("sampling not Zipf-ordered: %v", counts)
	}
}

func TestPublicRetained(t *testing.T) {
	ds, err := GeneratePublic(PublicSpec{Name: "r", NumPhotos: 100, Seed: 15, RetainFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Instance.Retained) == 0 {
		t.Error("no retained photos despite RetainFrac")
	}
	for _, p := range ds.Instance.Retained {
		if p < 0 || int(p) >= 100 {
			t.Fatalf("retained %d out of range", p)
		}
	}
}

var _ par.Similarity = vecSim{} // interface check

func TestGeneratedSimilaritiesWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pub, err := GeneratePublic(PublicSpec{Name: "chk", NumPhotos: 150, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := par.CheckSimilarity(rng, pub.Instance, 100); err != nil {
		t.Errorf("public dataset similarity defect: %v", err)
	}
	ec, err := GenerateEC(ECSpec{Domain: "Electronics", NumProducts: 150, NumQueries: 15, TopK: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := par.CheckSimilarity(rng, ec.Instance, 100); err != nil {
		t.Errorf("EC dataset similarity defect: %v", err)
	}
}

func TestParallelFor(t *testing.T) {
	out := make([]int, 100)
	parallelFor(100, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	parallelFor(0, func(i int) { t.Fatal("called for n=0") })
	single := 0
	parallelFor(1, func(i int) { single++ })
	if single != 1 {
		t.Fatal("n=1 not executed exactly once")
	}
}

func TestGenerateECDeterministic(t *testing.T) {
	spec := ECSpec{Domain: "Fashion", NumProducts: 120, NumQueries: 12, TopK: 8, Seed: 5}
	a, err := GenerateEC(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateEC(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Instance.NumPhotos() != b.Instance.NumPhotos() || a.Instance.TotalCost() != b.Instance.TotalCost() {
		t.Fatal("EC generation not deterministic")
	}
	for p := range a.Global {
		for d := range a.Global[p] {
			if a.Global[p][d] != b.Global[p][d] {
				t.Fatalf("embedding %d differs at dim %d (parallel pass nondeterministic?)", p, d)
			}
		}
	}
}
