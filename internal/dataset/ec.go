package dataset

import (
	"fmt"
	"math/rand"
	"strings"

	"phocus/internal/embed"
	"phocus/internal/imagesim"
	"phocus/internal/par"
	"phocus/internal/search"
)

// ECSpec configures the e-commerce generator (Section 5.2, "E-Commerce
// Dataset"): a synthetic product catalog with rendered product photos, a
// Zipf-distributed query log, and pre-defined subsets built from the
// top-NumQueries queries via the internal search engine — retrieval scores
// become relevance, query frequencies become importance, photo costs come
// from the synthetic JPEG size model.
type ECSpec struct {
	// Domain is one of "Fashion", "Electronics", "Home & Garden".
	Domain string
	// NumProducts is the catalog size (default 24000, which after retrieval
	// yields roughly the paper's ~20K photos).
	NumProducts int
	// NumQueries is the number of pre-defined subsets (paper: 250).
	NumQueries int
	// TopK is the number of results retained per query (default 150).
	TopK int
	// ZipfS is the query-frequency skew (default 1.0).
	ZipfS float64
	// Seed drives all randomness.
	Seed int64
}

func (s *ECSpec) fill() error {
	if _, ok := domainVocab[s.Domain]; !ok {
		return fmt.Errorf("dataset: unknown EC domain %q", s.Domain)
	}
	if s.NumProducts == 0 {
		s.NumProducts = 24_000
	}
	if s.NumQueries == 0 {
		s.NumQueries = 250
	}
	if s.TopK == 0 {
		s.TopK = 150
	}
	if s.ZipfS == 0 {
		s.ZipfS = 1.0
	}
	return nil
}

// vocab is the word material of one e-commerce domain.
type vocab struct {
	brands, attrs, types []string
}

var domainVocab = map[string]vocab{
	"Fashion": {
		brands: []string{"Adidas", "Nike", "Zara", "Levis", "Gucci", "Uniqlo", "Puma", "HM"},
		attrs:  []string{"black", "red", "white", "blue", "slim", "sports", "casual", "buttoned", "vintage", "summer"},
		types:  []string{"shirt", "dress", "jeans", "sneakers", "jacket", "skirt", "hoodie", "coat", "boots", "scarf"},
	},
	"Electronics": {
		brands: []string{"Samsung", "Apple", "Sony", "LG", "Lenovo", "Asus", "Canon", "Bose"},
		attrs:  []string{"wireless", "4k", "gaming", "portable", "smart", "compact", "pro", "mini", "ultra", "budget"},
		types:  []string{"smartphone", "laptop", "headphones", "monitor", "camera", "tablet", "speaker", "router", "keyboard", "drone"},
	},
	"Home & Garden": {
		brands: []string{"Ikea", "Bosch", "Dyson", "Philips", "Gardena", "Weber", "Tefal", "Karcher"},
		attrs:  []string{"wooden", "ergonomic", "foldable", "outdoor", "modern", "rustic", "compact", "ceramic", "steel", "cozy"},
		types:  []string{"chair", "table", "lamp", "grill", "sofa", "planter", "shelf", "mower", "kettle", "rug"},
	},
}

// Domains lists the three EC domains in the paper's order.
func Domains() []string { return []string{"Electronics", "Fashion", "Home & Garden"} }

// ECSpecs returns the three Table 2 e-commerce specs, scaled like
// PublicSpecs.
func ECSpecs(scale float64) []ECSpec {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	specs := make([]ECSpec, 0, 3)
	for i, dom := range Domains() {
		np := int(24_000 * scale)
		if np < 60 {
			np = 60
		}
		nq := int(250 * scale)
		if nq < 12 {
			nq = 12
		}
		topK := int(150 * scale)
		if topK < 8 {
			topK = 8
		}
		specs = append(specs, ECSpec{
			Domain:      dom,
			NumProducts: np,
			NumQueries:  nq,
			TopK:        topK,
			Seed:        200 + int64(i),
		})
	}
	return specs
}

// facetDim is the dimension of each semantic facet block (type, brand,
// attribute) of an EC photo embedding.
const facetDim = 24

// boundFacetWeight is the context mask weight on facet blocks bound by the
// query. On an "Adidas" landing page every photo shares the brand facet, so
// in-page similarity is judged on the free facets (type, attributes,
// look); a photo showing the right product type is a good stand-in there,
// while on a "shirt" page the brand and attribute facets dominate. The
// paper's iPhone example (a model-number photo is valuable on a
// model-comparison page but not on a generic smartphones page) is this
// effect — and it is exactly what a single non-contextual similarity
// (Greedy-NCS) cannot express.
const boundFacetWeight = 0.1

// GenerateEC builds one e-commerce dataset.
func GenerateEC(spec ECSpec) (*Dataset, error) {
	if err := spec.fill(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	voc := domainVocab[spec.Domain]

	// One visual category per (type, brand) pair: products of the same type
	// and brand look alike (the redundancy PHOcus exploits), while a landing
	// page for a broad query mixes several visual clusters — so WHICH
	// representatives are kept matters, as in the paper's catalogs.
	genCfg := imagesim.DefaultGenConfig()
	embCfg := imagesim.DefaultEmbeddingConfig()
	cats := make([]*imagesim.CategoryModel, len(voc.types)*len(voc.brands))
	for ti, ty := range voc.types {
		for bi, br := range voc.brands {
			cats[ti*len(voc.brands)+bi] = imagesim.NewCategoryModel(rng, br+" "+ty)
		}
	}

	// Facet prototypes: every product type, brand and attribute owns a
	// random direction in its facet block. A photo's embedding concatenates
	// its type, brand and (mean) attribute facets with the visual feature
	// vector of its rendered image — the structured analog of the paper's
	// product-aware image embeddings.
	typeVecs := make([]embed.Vector, len(voc.types))
	for i := range typeVecs {
		typeVecs[i] = embed.RandomUnit(rng, facetDim)
	}
	brandVecs := make([]embed.Vector, len(voc.brands))
	for i := range brandVecs {
		brandVecs[i] = embed.RandomUnit(rng, facetDim)
	}
	attrVecs := make([]embed.Vector, len(voc.attrs))
	for i := range attrVecs {
		attrVecs[i] = embed.RandomUnit(rng, facetDim)
	}

	// Catalog: titles plus rendered photos. The sequential pass consumes
	// the shared rng (rendering, facet perturbations) so generation stays
	// deterministic; the expensive pure work — visual feature extraction —
	// runs in a second, parallel pass.
	titles := make([]string, spec.NumProducts)
	photos := make([]*imagesim.Photo, spec.NumProducts)
	vectors := make([]embed.Vector, spec.NumProducts)
	semantic := make([]embed.Vector, spec.NumProducts)
	docs := make([]search.Document, spec.NumProducts)
	for p := 0; p < spec.NumProducts; p++ {
		ti := rng.Intn(len(voc.types))
		bi := rng.Intn(len(voc.brands))
		a1 := rng.Intn(len(voc.attrs))
		a2 := rng.Intn(len(voc.attrs))
		titles[p] = fmt.Sprintf("%s %s %s %s", voc.brands[bi], voc.attrs[a1], voc.attrs[a2], voc.types[ti])
		ci := ti*len(voc.brands) + bi
		photos[p] = cats[ci].Generate(rng, p, genCfg)
		photos[p].Category = ci
		attrMix := embed.Normalize(embed.Add(attrVecs[a1], attrVecs[a2]))
		sem := make(embed.Vector, 0, 3*facetDim)
		sem = append(sem, embed.Perturb(rng, typeVecs[ti], 0.05)...)
		sem = append(sem, embed.Perturb(rng, brandVecs[bi], 0.05)...)
		sem = append(sem, attrMix...)
		semantic[p] = sem
		docs[p] = search.Document{ID: p, Text: titles[p]}
	}
	parallelFor(spec.NumProducts, func(p int) {
		// The visual block is scaled down so the semantic facets carry most
		// of the similarity signal: product photos of the same type/brand
		// look alike anyway, and the facets are what the per-page contexts
		// reweight.
		visual := embed.Scale(imagesim.Embedding(photos[p].Image, embCfg), 0.4)
		v := make(embed.Vector, 0, 3*facetDim+len(visual))
		v = append(v, semantic[p]...)
		v = append(v, visual...)
		vectors[p] = embed.Normalize(v)
	})
	index := search.NewIndex(docs)

	// Query log: generated query strings with Zipf frequencies; the top
	// NumQueries distinct queries become pre-defined subsets.
	queries := buildQueries(rng, voc, spec.NumQueries)
	freqs := zipfWeights(len(queries), spec.ZipfS)

	// Retrieve, collect the union of result photos, and remap IDs densely.
	remap := map[int]par.PhotoID{}
	var keep []int
	type subsetDraft struct {
		name    string
		weight  float64
		hits    []search.Hit
		context embed.Context
	}
	var drafts []subsetDraft
	for qi, q := range queries {
		hits := index.Search(q, spec.TopK)
		if len(hits) == 0 {
			continue
		}
		for _, h := range hits {
			if _, ok := remap[h.ID]; !ok {
				remap[h.ID] = par.PhotoID(len(keep))
				keep = append(keep, h.ID)
			}
		}
		drafts = append(drafts, subsetDraft{
			name:    q,
			weight:  freqs[qi],
			hits:    hits,
			context: queryContext(rng, q, voc, 3*facetDim+embCfg.Dim()),
		})
	}
	if len(drafts) == 0 {
		return nil, fmt.Errorf("dataset: EC %s produced no subsets", spec.Domain)
	}

	inst := &par.Instance{Cost: make([]float64, len(keep))}
	ds := &Dataset{
		Name:     "EC-" + spec.Domain,
		Instance: inst,
		Global:   make([]embed.Vector, len(keep)),
		Photos:   make([]*imagesim.Photo, len(keep)),
	}
	for newID, oldID := range keep {
		inst.Cost[newID] = photos[oldID].SizeBytes
		ds.Global[newID] = vectors[oldID]
		ds.Photos[newID] = photos[oldID]
	}
	var totalFreq float64
	for _, d := range drafts {
		totalFreq += d.weight
	}
	// Relevance combines the retrieval score with the photo's visual
	// quality, as in Section 5.1 ("based both on the quality of the image
	// ... and the relevance score of the product").
	quality := make([]float64, len(keep))
	for newID := range keep {
		quality[newID] = 0.5 + 0.5*imagesim.QualityScore(ds.Photos[newID].Image)
	}
	for _, d := range drafts {
		members := make([]par.PhotoID, len(d.hits))
		rel := make([]float64, len(d.hits))
		ctxVecs := make([]embed.Vector, len(d.hits))
		for i, h := range d.hits {
			id := remap[h.ID]
			members[i] = id
			rel[i] = h.Score * quality[id]
			ctxVecs[i] = d.context.Apply(embed.Clone(ds.Global[id]))
		}
		inst.Subsets = append(inst.Subsets, par.Subset{
			Name:      d.name,
			Weight:    d.weight / totalFreq,
			Members:   members,
			Relevance: rel,
			Sim:       vecSim{vecs: ctxVecs},
		})
		ds.CtxVectors = append(ds.CtxVectors, ctxVecs)
	}
	inst.NormalizeRelevance()
	inst.Budget = inst.TotalCost()
	if err := inst.Finalize(); err != nil {
		return nil, fmt.Errorf("dataset: EC %s: %w", spec.Domain, err)
	}
	return ds, nil
}

// queryContext derives the contextual-similarity mask of one landing page.
// Facet blocks bound by the query's terms are down-weighted (every photo on
// the page shares them — their contribution is a constant), and the FREE
// facets get a query-specific emphasis: on one shirts page what matters is
// the brand, on another the style attributes, on a model-comparison page
// the fine visual details (the paper's iPhone example). That per-page
// trade-off between facets is precisely what a single non-contextual
// similarity cannot represent.
func queryContext(rng *rand.Rand, q string, voc vocab, dim int) embed.Context {
	mask := make(embed.Vector, dim)
	for i := range mask {
		mask[i] = 1
	}
	terms := map[string]bool{}
	for _, tok := range strings.Fields(strings.ToLower(q)) {
		terms[tok] = true
	}
	bound := make([]bool, 3)
	mark := func(block int) { bound[block] = true }
	for _, ty := range voc.types {
		if terms[strings.ToLower(ty)] {
			mark(0)
		}
	}
	for _, b := range voc.brands {
		if terms[strings.ToLower(b)] {
			mark(1)
		}
	}
	for _, a := range voc.attrs {
		if terms[strings.ToLower(a)] {
			mark(2)
		}
	}
	emphasis := []float64{0.25, 1, 8}
	setBlock := func(block int, w float64) {
		for i := block * facetDim; i < (block+1)*facetDim; i++ {
			mask[i] = w
		}
	}
	for block := 0; block < 3; block++ {
		if bound[block] {
			setBlock(block, boundFacetWeight)
			continue
		}
		setBlock(block, emphasis[rng.Intn(len(emphasis))])
	}
	// Visual block emphasis: some pages are about the look, others not.
	visW := emphasis[rng.Intn(len(emphasis))]
	for i := 3 * facetDim; i < dim; i++ {
		mask[i] = visW
	}
	return embed.Context{Mask: mask}
}

// buildQueries produces n distinct query strings over the vocabulary,
// mixing "type", "attr type", "brand type" and "brand attr type" shapes in
// popularity order (short, generic queries first — they are the frequent
// ones in real logs).
func buildQueries(rng *rand.Rand, voc vocab, n int) []string {
	seen := map[string]bool{}
	var queries []string
	add := func(q string) {
		q = strings.ToLower(q)
		if !seen[q] && len(queries) < n {
			seen[q] = true
			queries = append(queries, q)
		}
	}
	for _, ty := range voc.types {
		add(ty)
	}
	// Deterministically shuffle combination orders with rng so different
	// seeds give different query mixes.
	attrs := append([]string(nil), voc.attrs...)
	brands := append([]string(nil), voc.brands...)
	rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
	rng.Shuffle(len(brands), func(i, j int) { brands[i], brands[j] = brands[j], brands[i] })
	// Broad single-term queries ("black", "Adidas") span product types and
	// yield visually heterogeneous landing pages — frequent in real logs.
	for _, b := range brands {
		add(b)
	}
	for _, a := range attrs {
		add(a)
	}
	for _, a := range attrs {
		for _, ty := range voc.types {
			add(a + " " + ty)
		}
	}
	for _, b := range brands {
		for _, ty := range voc.types {
			add(b + " " + ty)
		}
	}
	for _, b := range brands {
		for _, a := range attrs {
			for _, ty := range voc.types {
				add(b + " " + a + " " + ty)
			}
		}
	}
	return queries
}
