package dataset

import (
	"math/rand"
	"strings"
	"testing"

	"phocus/internal/baselines"
	"phocus/internal/celf"
	"phocus/internal/embed"
)

func TestQueryContextBoundFacets(t *testing.T) {
	voc := domainVocab["Fashion"]
	rng := rand.New(rand.NewSource(1))
	dim := 3*facetDim + 10
	block := func(mask embed.Vector, b int) float64 { return mask[b*facetDim] }

	typeQ := queryContext(rng, "shirt", voc, dim)
	if block(typeQ.Mask, 0) != boundFacetWeight {
		t.Errorf("type facet not damped for type query: %g", block(typeQ.Mask, 0))
	}
	if block(typeQ.Mask, 1) == boundFacetWeight || block(typeQ.Mask, 2) == boundFacetWeight {
		t.Error("free facets damped for type query")
	}

	full := queryContext(rng, "adidas black shirt", voc, dim)
	for b := 0; b < 3; b++ {
		if block(full.Mask, b) != boundFacetWeight {
			t.Errorf("facet %d not damped for fully bound query", b)
		}
	}
}

func TestQueryContextBlockConstancy(t *testing.T) {
	voc := domainVocab["Electronics"]
	rng := rand.New(rand.NewSource(2))
	dim := 3*facetDim + 7
	ctx := queryContext(rng, "samsung", voc, dim)
	// Every weight within a block must be equal.
	for b := 0; b < 3; b++ {
		w := ctx.Mask[b*facetDim]
		for i := b * facetDim; i < (b+1)*facetDim; i++ {
			if ctx.Mask[i] != w {
				t.Fatalf("facet block %d not constant", b)
			}
		}
	}
	visW := ctx.Mask[3*facetDim]
	for i := 3 * facetDim; i < dim; i++ {
		if ctx.Mask[i] != visW {
			t.Fatal("visual block not constant")
		}
	}
}

// The headline EC property after the facet redesign: at a small budget the
// algorithm ranking is PHOcus > Greedy-NCS > Greedy-NR > RAND, with a real
// gap between PHOcus and Greedy-NCS (context matters) and a bigger one to
// Greedy-NR (similarity matters).
func TestECAlgorithmSeparation(t *testing.T) {
	ds, err := GenerateEC(ECSpec{Domain: "Fashion", NumProducts: 2000, NumQueries: 40, TopK: 30, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	inst := ds.Instance
	inst.Budget = 0.05 * inst.TotalCost()
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	var phs celf.Solver
	ph, err := phs.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	ncs, err := baselines.NewGreedyNCS(ds.GlobalSim).Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := baselines.NewGreedyNR().Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	rand, err := (&baselines.RandAdd{Seed: 5}).Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !(ph.Score > ncs.Score && ncs.Score > nr.Score && nr.Score > rand.Score) {
		t.Fatalf("ranking broken: PHOcus=%.4f NCS=%.4f NR=%.4f RAND=%.4f",
			ph.Score, ncs.Score, nr.Score, rand.Score)
	}
	if ncs.Score > 0.99*ph.Score {
		t.Errorf("Greedy-NCS within %.2f%% of PHOcus; contextualization has no bite",
			100*(1-ncs.Score/ph.Score))
	}
	if nr.Score > 0.9*ph.Score {
		t.Errorf("Greedy-NR at %.2f of PHOcus; similarity model has no bite", nr.Score/ph.Score)
	}
}

func TestECBroadQueriesExist(t *testing.T) {
	ds, err := GenerateEC(ECSpec{Domain: "Fashion", NumProducts: 300, NumQueries: 40, TopK: 15, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	broad := 0
	for _, q := range ds.Instance.Subsets {
		if !strings.Contains(q.Name, " ") && !isType(q.Name) {
			broad++ // bare brand or attribute query
		}
	}
	if broad == 0 {
		t.Error("no broad (single-term brand/attr) landing pages generated")
	}
}

func isType(q string) bool {
	for _, ty := range domainVocab["Fashion"].types {
		if strings.EqualFold(ty, q) {
			return true
		}
	}
	return false
}
