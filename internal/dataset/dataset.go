// Package dataset generates the synthetic analogs of the paper's eight
// evaluation datasets (Table 2): five Open-Images-style public datasets
// (P-1K … P-100K), where pre-defined subsets come from image labels with
// confidences, and three e-commerce datasets (EC-Fashion, EC-Electronics,
// EC-Home & Garden), where subsets come from the top-250 queries of a
// simulated query log run through the internal search engine. See DESIGN.md
// for the substitution rationale: the generators reproduce the statistical
// shape that drives algorithm behaviour — subset counts and sizes, skewed
// importance, clustered contextual similarities, byte-valued costs — while
// the solvers only ever see the abstract PAR instance.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"phocus/internal/embed"
	"phocus/internal/imagesim"
	"phocus/internal/par"
)

// Dataset couples a finalized PAR instance with the side information the
// experiments need: the contextualized member embeddings (for LSH
// sparsification) and the raw per-photo embeddings (for the Greedy-NCS
// baseline's global similarity).
type Dataset struct {
	Name string
	// Instance is the finalized PAR instance. Its Budget is initialized to
	// the total cost; use SetBudget before solving.
	Instance *par.Instance
	// CtxVectors holds, per subset, the contextualized embedding of each
	// member (normalized), aligned with Subset.Members.
	CtxVectors [][]embed.Vector
	// Global holds the raw (context-free) embedding of each photo.
	Global []embed.Vector
	// Photos holds the underlying synthetic photos when the generator
	// rendered images (EC datasets); nil for vector-only generators.
	Photos []*imagesim.Photo
}

// SetBudget sets the instance budget (bytes) and revalidates.
func (d *Dataset) SetBudget(b float64) error {
	d.Instance.Budget = b
	return d.Instance.Finalize()
}

// GlobalSim is the non-contextual photo-level similarity for the Greedy-NCS
// baseline: plain cosine of the raw embeddings.
func (d *Dataset) GlobalSim(p1, p2 par.PhotoID) float64 {
	if p1 == p2 {
		return 1
	}
	return embed.CosineSim01(d.Global[p1], d.Global[p2])
}

// vecSim is a par.Similarity computing contextual cosine on demand from
// pre-contextualized unit vectors. It avoids materializing dense matrices
// for large subsets; the sparsify package converts it to SparseSim when the
// solver should iterate neighbours instead.
type vecSim struct {
	vecs []embed.Vector
}

// Len implements par.Similarity.
func (v vecSim) Len() int { return len(v.vecs) }

// Sim implements par.Similarity. Vectors are unit-norm, so cosine is a dot
// product, clamped into [0,1].
func (v vecSim) Sim(i, j int) float64 {
	if i == j {
		return 1
	}
	s := embed.Dot(v.vecs[i], v.vecs[j])
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// poisson draws a Poisson variate by Knuth's method (fine for small means).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	limit := math.Exp(-mean)
	prod := 1.0
	for k := 0; ; k++ {
		prod *= rng.Float64()
		if prod < limit {
			return k
		}
	}
}

// zipfWeights returns weights w_i ∝ 1/(i+1)^s for n ranks.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}

// sampleIndex draws an index proportionally to weights given their
// cumulative sums (cum[i] = w_0 + ... + w_i).
func sampleIndex(rng *rand.Rand, cum []float64) int {
	r := rng.Float64() * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func cumulative(w []float64) []float64 {
	cum := make([]float64, len(w))
	var s float64
	for i, v := range w {
		s += v
		cum[i] = s
	}
	return cum
}

// Summary describes a generated dataset for Table 2-style reports.
type Summary struct {
	Name       string
	Photos     int
	Subsets    int
	TotalBytes float64
}

// Summarize extracts the Table 2 row of a dataset.
func (d *Dataset) Summarize() Summary {
	return Summary{
		Name:       d.Name,
		Photos:     d.Instance.NumPhotos(),
		Subsets:    len(d.Instance.Subsets),
		TotalBytes: d.Instance.TotalCost(),
	}
}

// String renders the summary as one Table 2 row.
func (s Summary) String() string {
	return fmt.Sprintf("%-22s %8d photos %8d subsets %8.1f MB",
		s.Name, s.Photos, s.Subsets, s.TotalBytes/1e6)
}
