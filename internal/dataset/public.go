package dataset

import (
	"fmt"
	"math/rand"

	"phocus/internal/embed"
	"phocus/internal/par"
)

// PublicSpec configures the Open-Images-style generator (Section 5.2,
// "Public Photos Datasets"). Photos carry 1+Poisson labels drawn from a
// Zipf-skewed pool of over 6000 labels; each label that accumulates at
// least MinSubsetSize photos becomes a pre-defined subset whose relevance
// scores are the label confidences, whose importance is the label's
// frequency in the dataset, and whose contextual similarity is the cosine
// of context-masked photo embeddings.
type PublicSpec struct {
	Name string
	// NumPhotos is the dataset size (1000 for P-1K, ..., 100000 for P-100K).
	NumPhotos int
	// LabelPool is the size of the label vocabulary (default 6000, as in
	// Open Images).
	LabelPool int
	// MeanLabels is the mean number of labels per photo (default 3).
	MeanLabels float64
	// ZipfS is the label-popularity skew (default 1.05).
	ZipfS float64
	// MinSubsetSize drops labels seen on fewer photos (default 2).
	MinSubsetSize int
	// Dim is the embedding dimension (default 32).
	Dim int
	// NoiseLevel is the per-dimension photo noise around the primary
	// label's prototype (default 0.12).
	NoiseLevel float64
	// RetainFrac marks this fraction of photos as policy-retained S0
	// (default 0).
	RetainFrac float64
	// Seed drives all randomness.
	Seed int64
}

func (s *PublicSpec) fill() {
	if s.LabelPool == 0 {
		s.LabelPool = 6000
	}
	if s.MeanLabels == 0 {
		s.MeanLabels = 3
	}
	if s.ZipfS == 0 {
		s.ZipfS = 1.05
	}
	if s.MinSubsetSize == 0 {
		s.MinSubsetSize = 2
	}
	if s.Dim == 0 {
		s.Dim = 32
	}
	if s.NoiseLevel == 0 {
		s.NoiseLevel = 0.12
	}
}

// PublicSpecs returns the five Table 2 public dataset specs. Pass a scale
// in (0, 1] to shrink every dataset proportionally (benchmarks use small
// scales; the cmd/phocus-bench harness defaults to full size for P-1K and
// P-5K and scales the larger ones).
func PublicSpecs(scale float64) []PublicSpec {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	mk := func(name string, photos int, seed int64) PublicSpec {
		n := int(float64(photos) * scale)
		if n < 20 {
			n = 20
		}
		return PublicSpec{Name: name, NumPhotos: n, Seed: seed}
	}
	return []PublicSpec{
		mk("P-1K", 1_000, 101),
		mk("P-5K", 5_000, 102),
		mk("P-10K", 10_000, 103),
		mk("P-50K", 50_000, 104),
		mk("P-100K", 100_000, 105),
	}
}

// GeneratePublic builds one public dataset.
func GeneratePublic(spec PublicSpec) (*Dataset, error) {
	spec.fill()
	if spec.NumPhotos <= 0 {
		return nil, fmt.Errorf("dataset: NumPhotos must be positive")
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	// Label popularity and lazily created label prototypes.
	weights := zipfWeights(spec.LabelPool, spec.ZipfS)
	cum := cumulative(weights)
	protos := make([]embed.Vector, spec.LabelPool)
	proto := func(l int) embed.Vector {
		if protos[l] == nil {
			protos[l] = embed.RandomUnit(rng, spec.Dim)
		}
		return protos[l]
	}

	// Per-photo label draws and embeddings.
	type member struct {
		photo par.PhotoID
		conf  float64
	}
	labelPhotos := map[int][]member{}
	global := make([]embed.Vector, spec.NumPhotos)
	cost := make([]float64, spec.NumPhotos)
	for p := 0; p < spec.NumPhotos; p++ {
		nLabels := 1 + poisson(rng, spec.MeanLabels-1)
		labels := make([]int, 0, nLabels)
		seen := map[int]bool{}
		for len(labels) < nLabels {
			l := sampleIndex(rng, cum)
			if !seen[l] {
				seen[l] = true
				labels = append(labels, l)
			}
		}
		// The photo's embedding mixes its labels' prototypes, dominated by
		// the first (primary) label, plus instance noise.
		v := make(embed.Vector, spec.Dim)
		for rank, l := range labels {
			coeff := 1.0
			if rank > 0 {
				coeff = 0.35
			}
			pv := proto(l)
			for i := range v {
				v[i] += coeff * pv[i]
			}
		}
		for i := range v {
			v[i] += spec.NoiseLevel * rng.NormFloat64()
		}
		embed.Normalize(v)
		global[p] = v
		// Label confidence: how well the photo matches the label prototype.
		for _, l := range labels {
			conf := embed.CosineSim01(v, proto(l))
			if conf <= 0 {
				conf = 0.01
			}
			labelPhotos[l] = append(labelPhotos[l], member{photo: par.PhotoID(p), conf: conf})
		}
		// Photo size: log-normal-ish between ~0.3 MB and ~3 MB.
		sz := 1e6 * (0.3 + 1.2*rng.Float64() + 0.8*rng.Float64()*rng.Float64())
		cost[p] = sz
	}

	inst := &par.Instance{Cost: cost}
	ds := &Dataset{Name: spec.Name, Instance: inst, Global: global}

	// Subsets from labels, ordered by label ID for determinism.
	for l := 0; l < spec.LabelPool; l++ {
		mems := labelPhotos[l]
		if len(mems) < spec.MinSubsetSize {
			continue
		}
		members := make([]par.PhotoID, len(mems))
		rel := make([]float64, len(mems))
		ctxVecs := make([]embed.Vector, len(mems))
		// Strong per-label contextualization, mirroring the paper's learned
		// per-subset embeddings: the global cosine is a lossy surrogate of
		// the in-context similarity.
		ctx := embed.RandomSignedContext(rng, spec.Dim, 0.4, 10, 0.3)
		for i, m := range mems {
			members[i] = m.photo
			rel[i] = m.conf
			ctxVecs[i] = ctx.Apply(embed.Clone(global[m.photo]))
		}
		inst.Subsets = append(inst.Subsets, par.Subset{
			Name:      fmt.Sprintf("label-%d", l),
			Weight:    float64(len(mems)) / float64(spec.NumPhotos),
			Members:   members,
			Relevance: rel,
			Sim:       vecSim{vecs: ctxVecs},
		})
		ds.CtxVectors = append(ds.CtxVectors, ctxVecs)
	}
	if len(inst.Subsets) == 0 {
		return nil, fmt.Errorf("dataset: %s produced no subsets; lower MinSubsetSize or raise NumPhotos", spec.Name)
	}
	inst.NormalizeRelevance()

	if spec.RetainFrac > 0 {
		for p := 0; p < spec.NumPhotos; p++ {
			if rng.Float64() < spec.RetainFrac {
				inst.Retained = append(inst.Retained, par.PhotoID(p))
			}
		}
	}

	inst.Budget = inst.TotalCost()
	if err := inst.Finalize(); err != nil {
		return nil, fmt.Errorf("dataset: %s: %w", spec.Name, err)
	}
	return ds, nil
}
