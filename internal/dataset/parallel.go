package dataset

import (
	"runtime"
	"sync"
)

// parallelFor runs f(i) for i in [0, n) across GOMAXPROCS workers. Used for
// the pure (rng-free) stages of dataset generation; determinism is
// preserved because every index writes only its own slots.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
