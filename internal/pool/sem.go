package pool

import (
	"context"
	"sync/atomic"
)

// Sem is a counted semaphore over solver capacity. The jobs scheduler holds
// one slot per running job, and phocus-server's synchronous /solve path
// acquires from the same Sem — so sync and async solves share one admission
// budget instead of the sync path queueing unboundedly on the worker pool.
// Waiting reports how many Acquire calls are currently blocked, which is
// what lets the server bound the sync wait line and answer 429 beyond it.
type Sem struct {
	slots   chan struct{}
	waiting atomic.Int64
}

// NewSem returns a semaphore with n slots (n is passed through Resolve, so
// values ≤ 0 mean one slot per CPU).
func NewSem(n int) *Sem {
	return &Sem{slots: make(chan struct{}, Resolve(n))}
}

// Cap returns the slot count.
func (s *Sem) Cap() int { return cap(s.slots) }

// TryAcquire takes a slot without blocking, reporting whether it got one.
func (s *Sem) TryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Acquire blocks until a slot frees or ctx is done (returning ctx's error).
func (s *Sem) Acquire(ctx context.Context) error {
	if s.TryAcquire() {
		return nil
	}
	s.waiting.Add(1)
	defer s.waiting.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot taken by TryAcquire or a successful Acquire.
func (s *Sem) Release() {
	select {
	case <-s.slots:
	default:
		panic("pool: Release without matching Acquire")
	}
}

// Waiting returns how many Acquire calls are currently blocked.
func (s *Sem) Waiting() int64 { return s.waiting.Load() }

// InUse returns how many slots are currently held.
func (s *Sem) InUse() int { return len(s.slots) }
