// Package pool provides the worker-pool primitives behind the solve
// pipeline's Workers knob. Every parallel hot path — CELF's batched
// stale-gain recomputation, per-subset sparsification, SimHash signature
// computation — fans its work out through ForEach, so the whole pipeline is
// controlled by a single integer and degrades to the plain sequential loop
// when the knob is 1.
//
// The contract every caller relies on: ForEach(n, w, fn) calls fn exactly
// once for every index in [0, n), and the set of calls (not their order) is
// independent of w. Callers therefore write results into per-index slots and
// reduce sequentially afterwards, which is what keeps parallel output
// byte-identical to the sequential path.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a Workers knob: any value ≤ 0 means "one worker per
// available CPU" (runtime.GOMAXPROCS(0)); positive values are returned
// unchanged.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ForEach runs fn(i) for every i in [0, n), fanning the calls out over up to
// workers goroutines (workers is first passed through Resolve; at most n
// goroutines are started). With an effective worker count of 1 it degrades
// to a plain loop with zero goroutine overhead.
//
// Indices are handed out through a shared atomic counter, so call order
// across workers is nondeterministic — fn must not depend on ordering and
// must confine its writes to per-index state. A panic in any fn is re-raised
// on the calling goroutine after all workers have drained, preserving the
// synchronous path's panic semantics.
// ForEachChunk is the chunked variant of ForEach: it calls fn over disjoint
// half-open ranges [lo, hi) that together cover [0, n) exactly once, handing
// out whole chunks through the shared counter instead of single indices.
// Hot batch loops (Evaluator.Gains, CELF's stale-entry recompute) use it to
// amortize the per-index closure dispatch and atomic increment of ForEach
// over an entire chunk of work.
//
// The per-index contract is ForEach's: every index in [0, n) is processed
// exactly once and the set of indices is independent of workers — only the
// partition into ranges varies — so callers writing per-index results stay
// byte-identical for every worker count. With an effective worker count of 1
// it degrades to a single fn(0, n) call.
func ForEachChunk(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	// Several chunks per worker so a skewed chunk doesn't serialize the
	// batch, while each handout still covers many indices.
	chunk := (n + 4*workers - 1) / (4 * workers)
	if chunk < 1 {
		chunk = 1
	}
	chunks := (n + chunk - 1) / chunk
	ForEach(chunks, workers, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
					// Park the counter past n so the remaining workers stop
					// picking up work after a panic.
					next.Store(int64(n))
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}
