package pool

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSemTryAcquireRelease(t *testing.T) {
	s := NewSem(2)
	if s.Cap() != 2 {
		t.Fatalf("cap %d, want 2", s.Cap())
	}
	if !s.TryAcquire() || !s.TryAcquire() {
		t.Fatal("could not take free slots")
	}
	if s.TryAcquire() {
		t.Fatal("took a slot past capacity")
	}
	if s.InUse() != 2 {
		t.Fatalf("in use %d, want 2", s.InUse())
	}
	s.Release()
	if !s.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
	s.Release()
	s.Release()
}

func TestSemAcquireBlocksAndWaitingCount(t *testing.T) {
	s := NewSem(1)
	s.TryAcquire()
	acquired := make(chan struct{})
	go func() {
		if err := s.Acquire(context.Background()); err != nil {
			t.Error(err)
		}
		close(acquired)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.Waiting() != 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.Waiting() != 1 {
		t.Fatal("waiter never counted")
	}
	s.Release()
	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked acquire never woke")
	}
	if s.Waiting() != 0 {
		t.Fatalf("waiting %d after wake, want 0", s.Waiting())
	}
	s.Release()
}

func TestSemAcquireContextCancel(t *testing.T) {
	s := NewSem(1)
	s.TryAcquire()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Acquire(ctx); err == nil {
		t.Fatal("acquire succeeded on canceled ctx")
	}
	if s.Waiting() != 0 {
		t.Fatalf("waiting %d after canceled acquire", s.Waiting())
	}
	s.Release()
}

func TestSemReleaseUnmatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unmatched release did not panic")
		}
	}()
	NewSem(1).Release()
}

// TestSemConcurrent: the semaphore never admits more than Cap holders
// (run with -race).
func TestSemConcurrent(t *testing.T) {
	s := NewSem(3)
	var mu sync.Mutex
	holders, peak := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			holders++
			if holders > peak {
				peak = holders
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			holders--
			mu.Unlock()
			s.Release()
		}()
	}
	wg.Wait()
	if peak > 3 {
		t.Fatalf("peak holders %d exceeded capacity 3", peak)
	}
}
