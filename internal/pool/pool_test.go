package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	perCPU := runtime.GOMAXPROCS(0)
	for _, tc := range []struct{ in, want int }{
		{0, perCPU},
		{-3, perCPU},
		{1, 1},
		{7, 7},
	} {
		if got := Resolve(tc.in); got != tc.want {
			t.Errorf("Resolve(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestForEachCoversAllIndices: every index is visited exactly once, whatever
// the worker count (including the sequential workers=1 fast path and the ≤ 0
// per-CPU default).
func TestForEachCoversAllIndices(t *testing.T) {
	const n = 1000
	for _, workers := range []int{0, 1, 2, 8, n + 5} {
		visits := make([]int32, n)
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&visits[i], 1)
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

// TestForEachChunkCoversAllIndices: the handed-out ranges are disjoint and
// cover [0, n) exactly, whatever the worker count.
func TestForEachChunkCoversAllIndices(t *testing.T) {
	const n = 1000
	for _, workers := range []int{0, 1, 2, 8, n + 5} {
		visits := make([]int32, n)
		ForEachChunk(n, workers, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("workers=%d: bad range [%d, %d)", workers, lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

// TestForEachChunkSequentialIsOneCall: workers=1 must degrade to a single
// full-range call, the zero-overhead path.
func TestForEachChunkSequentialIsOneCall(t *testing.T) {
	calls := 0
	ForEachChunk(100, 1, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Errorf("got range [%d, %d), want [0, 100)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("fn called %d times, want 1", calls)
	}
}

func TestForEachChunkEmpty(t *testing.T) {
	called := false
	ForEachChunk(0, 4, func(int, int) { called = true })
	if called {
		t.Error("fn called for n=0")
	}
}

// TestForEachChunkPanicPropagates: ForEachChunk inherits ForEach's panic
// semantics.
func TestForEachChunkPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			ForEachChunk(100, workers, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if i == 37 {
						panic("boom")
					}
				}
			})
			t.Errorf("workers=%d: ForEachChunk returned instead of panicking", workers)
		}()
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Error("fn called for n=0")
	}
}

// TestForEachPanicPropagates: a panic in a worker must reach the caller (not
// crash the process from a bare goroutine), for every worker count.
func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			ForEach(100, workers, func(i int) {
				if i == 37 {
					panic("boom")
				}
			})
			t.Errorf("workers=%d: ForEach returned instead of panicking", workers)
		}()
	}
}
