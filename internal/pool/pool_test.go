package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	perCPU := runtime.GOMAXPROCS(0)
	for _, tc := range []struct{ in, want int }{
		{0, perCPU},
		{-3, perCPU},
		{1, 1},
		{7, 7},
	} {
		if got := Resolve(tc.in); got != tc.want {
			t.Errorf("Resolve(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestForEachCoversAllIndices: every index is visited exactly once, whatever
// the worker count (including the sequential workers=1 fast path and the ≤ 0
// per-CPU default).
func TestForEachCoversAllIndices(t *testing.T) {
	const n = 1000
	for _, workers := range []int{0, 1, 2, 8, n + 5} {
		visits := make([]int32, n)
		ForEach(n, workers, func(i int) {
			atomic.AddInt32(&visits[i], 1)
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	if called {
		t.Error("fn called for n=0")
	}
}

// TestForEachPanicPropagates: a panic in a worker must reach the caller (not
// crash the process from a bare goroutine), for every worker count.
func TestForEachPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("workers=%d: recovered %v, want \"boom\"", workers, r)
				}
			}()
			ForEach(100, workers, func(i int) {
				if i == 37 {
					panic("boom")
				}
			})
			t.Errorf("workers=%d: ForEach returned instead of panicking", workers)
		}()
	}
}
