package baselines

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"phocus/internal/celf"
	"phocus/internal/par"
)

func TestRandAddFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		inst := par.Random(rng, par.RandomConfig{Photos: 15, Subsets: 7, BudgetFrac: 0.3, RetainFrac: 0.1})
		r := RandAdd{Seed: int64(trial)}
		sol, err := r.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		if !inst.Feasible(sol.Photos) {
			t.Fatalf("trial %d: infeasible RAND-A solution", trial)
		}
		if math.Abs(par.Score(inst, sol.Photos)-sol.Score) > 1e-9 {
			t.Fatalf("trial %d: reported score inconsistent", trial)
		}
	}
}

func TestRandAddDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := par.Random(rng, par.RandomConfig{Photos: 20, Subsets: 8, BudgetFrac: 0.3})
	a := RandAdd{Seed: 99}
	s1, _ := a.Solve(inst)
	s2, _ := a.Solve(inst)
	if len(s1.Photos) != len(s2.Photos) {
		t.Fatal("RAND-A not deterministic for fixed seed")
	}
	for i := range s1.Photos {
		if s1.Photos[i] != s2.Photos[i] {
			t.Fatal("RAND-A not deterministic for fixed seed")
		}
	}
}

func TestRandDeleteFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		inst := par.Random(rng, par.RandomConfig{Photos: 15, Subsets: 7, BudgetFrac: 0.4, RetainFrac: 0.1})
		r := RandDelete{Seed: int64(trial)}
		sol, err := r.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		if !inst.Feasible(sol.Photos) {
			t.Fatalf("trial %d: infeasible RAND-D solution", trial)
		}
	}
}

func TestRandDeleteKeepsEverythingUnderLargeBudget(t *testing.T) {
	inst := par.Figure1Instance() // budget = total cost
	r := RandDelete{Seed: 4}
	sol, err := r.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Photos) != 7 {
		t.Errorf("RAND-D deleted %d photos under a saturating budget", 7-len(sol.Photos))
	}
}

func TestGreedyNRIgnoresSimilarity(t *testing.T) {
	// Two subsets over disjoint photo pairs; within each subset the two
	// photos are near-duplicates (sim 0.95). Budget for two photos.
	// Greedy-NR sees no redundancy structure but still covers both subsets
	// (one photo each) because a second photo of a covered subset has zero
	// surrogate gain. The difference shows in the TRUE score: it picks
	// arbitrarily and cannot exploit that one photo nearly covers both
	// members. Here we just verify it selects one photo per subset.
	sim := func() *par.DenseSim {
		d := par.NewDenseSim(2)
		d.Set(0, 1, 0.95)
		return d
	}
	inst := &par.Instance{
		Cost:   []float64{1, 1, 1, 1},
		Budget: 2,
		Subsets: []par.Subset{
			{Name: "a", Weight: 1, Members: []par.PhotoID{0, 1}, Relevance: []float64{0.5, 0.5}, Sim: sim()},
			{Name: "b", Weight: 1, Members: []par.PhotoID{2, 3}, Relevance: []float64{0.5, 0.5}, Sim: sim()},
		},
	}
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	nr := NewGreedyNR()
	sol, err := nr.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Photos) != 2 {
		t.Fatalf("Greedy-NR selected %v, want one photo per subset", sol.Photos)
	}
	seen := map[bool]bool{}
	for _, p := range sol.Photos {
		seen[p <= 1] = true
	}
	if !seen[true] || !seen[false] {
		t.Errorf("Greedy-NR selected %v, want one photo from each subset", sol.Photos)
	}
	// True score: each subset gets 0.5·1 + 0.5·0.95.
	want := 2 * (0.5 + 0.5*0.95)
	if math.Abs(sol.Score-want) > 1e-9 {
		t.Errorf("true score = %g, want %g", sol.Score, want)
	}
}

func TestGreedyNCSUsesGlobalSim(t *testing.T) {
	// Contextual similarity says p0 covers p1 perfectly in subset "a"
	// (sim 1) but the global similarity claims they are unrelated. With
	// budget 1, PHOcus would pick either photo of subset a and score 1;
	// Greedy-NCS's surrogate sees no coverage and ranks by plain relevance
	// mass, picking p2 (the high-weight singleton subset), which truly
	// scores lower. The test pins the surrogate's behaviour.
	simA := par.NewDenseSim(2)
	simA.Set(0, 1, 1)
	inst := &par.Instance{
		Cost:   []float64{1, 1, 1},
		Budget: 1,
		Subsets: []par.Subset{
			{Name: "a", Weight: 2, Members: []par.PhotoID{0, 1}, Relevance: []float64{0.5, 0.5}, Sim: simA},
			{Name: "b", Weight: 1.2, Members: []par.PhotoID{2}, Relevance: []float64{1}, Sim: par.NewDenseSim(1)},
		},
	}
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	ncs := NewGreedyNCS(func(p1, p2 par.PhotoID) float64 {
		if p1 == p2 {
			return 1
		}
		return 0
	})
	sol, err := ncs.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Surrogate gains: p0/p1 = 2·0.5 = 1.0 each; p2 = 1.2. NCS picks p2.
	if len(sol.Photos) != 1 || sol.Photos[0] != 2 {
		t.Fatalf("Greedy-NCS selected %v, want [2]", sol.Photos)
	}
	if math.Abs(sol.Score-1.2) > 1e-9 {
		t.Errorf("true score = %g, want 1.2", sol.Score)
	}
	// PHOcus (true contextual sim) prefers a photo of subset a: score 2.
	var ph celf.Solver
	psol, err := ph.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if psol.Score <= sol.Score {
		t.Errorf("contextual solver (%g) should beat NCS (%g) here", psol.Score, sol.Score)
	}
}

// Property: all baselines produce feasible solutions whose reported score
// matches the true objective. PHOcus dominating every baseline on every
// instance is NOT a theorem (a surrogate greedy can luck into a better
// set), so dominance is asserted statistically over the whole run instead
// of per instance.
func TestBaselineProtocolQuick(t *testing.T) {
	var phWins, comparisons int
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := par.Random(rng, par.RandomConfig{Photos: 18, Subsets: 9, BudgetFrac: 0.3, RetainFrac: 0.05})
		global := func(p1, p2 par.PhotoID) float64 {
			if p1 == p2 {
				return 1
			}
			return 0.2
		}
		solvers := []par.Solver{
			&RandAdd{Seed: seed},
			&RandDelete{Seed: seed},
			NewGreedyNR(),
			NewGreedyNCS(global),
		}
		var ph celf.Solver
		psol, err := ph.Solve(inst)
		if err != nil {
			return false
		}
		for _, s := range solvers {
			sol, err := s.Solve(inst)
			if err != nil {
				return false
			}
			if !inst.Feasible(sol.Photos) {
				return false
			}
			if math.Abs(par.Score(inst, sol.Photos)-sol.Score) > 1e-9 {
				return false
			}
			comparisons++
			if psol.Score >= sol.Score-1e-9 {
				phWins++
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
	if comparisons == 0 || float64(phWins) < 0.85*float64(comparisons) {
		t.Errorf("PHOcus won only %d of %d baseline comparisons", phWins, comparisons)
	}
}

func TestNames(t *testing.T) {
	if (&RandAdd{}).Name() != "RAND-A" || (&RandDelete{}).Name() != "RAND-D" {
		t.Error("random baseline names wrong")
	}
	if NewGreedyNR().Name() != "Greedy-NR" || NewGreedyNCS(nil).Name() != "Greedy-NCS" {
		t.Error("greedy baseline names wrong")
	}
}
