package baselines

import (
	"testing"

	"phocus/internal/par"
	"phocus/internal/solvertest"
)

func TestRandAddContract(t *testing.T) {
	// RAND-A stops at the first photo that does not fit, so it does not
	// saturate even when everything would fit... except it does: with a
	// saturating budget every photo fits and the walk adds them all. Keep
	// the clause on.
	solvertest.Contract(t, func() par.Solver { return &RandAdd{Seed: 7} }, solvertest.Options{Saturates: true})
}

func TestRandDeleteContract(t *testing.T) {
	solvertest.Contract(t, func() par.Solver { return &RandDelete{Seed: 7} }, solvertest.Options{Saturates: true})
}

func TestGreedyNRContract(t *testing.T) {
	solvertest.Contract(t, func() par.Solver { return NewGreedyNR() }, solvertest.Options{Saturates: true})
}

func TestGreedyNCSContract(t *testing.T) {
	global := func(p1, p2 par.PhotoID) float64 {
		if p1 == p2 {
			return 1
		}
		return 0.3
	}
	solvertest.Contract(t, func() par.Solver { return NewGreedyNCS(global) }, solvertest.Options{Saturates: true})
}
