// Package baselines implements the four comparison algorithms of Section
// 5.2: the two random strategies (RAND-A, RAND-D) and the two iterative
// greedy strategies that select with an impoverished objective (Greedy-NR
// ignores similarity altogether; Greedy-NCS uses a single non-contextual
// similarity for all subsets). The greedy baselines SELECT with their
// surrogate objective but are always EVALUATED with the true objective —
// exactly the experimental protocol of the paper.
package baselines

import (
	"fmt"
	"math/rand"

	"phocus/internal/celf"
	"phocus/internal/par"
)

// RandAdd is RAND-A: starting from S0, repeatedly pick a uniformly random
// remaining photo and add it, stopping the first time the picked photo does
// not fit the budget (the paper's "stops when the budget limit is met").
type RandAdd struct {
	Seed int64
}

// Name implements par.Solver.
func (r *RandAdd) Name() string { return "RAND-A" }

// Solve implements par.Solver.
func (r *RandAdd) Solve(inst *par.Instance) (par.Solution, error) {
	rng := rand.New(rand.NewSource(r.Seed))
	e := par.NewEvaluator(inst)
	e.Seed()
	perm := rng.Perm(inst.NumPhotos())
	for _, p := range perm {
		id := par.PhotoID(p)
		if e.Contains(id) {
			continue
		}
		if !e.Fits(id) {
			break
		}
		e.Add(id)
	}
	return e.Solution(), nil
}

// RandDelete is RAND-D: starting from the full archive, repeatedly delete a
// uniformly random non-retained photo until the remainder fits the budget.
type RandDelete struct {
	Seed int64
}

// Name implements par.Solver.
func (r *RandDelete) Name() string { return "RAND-D" }

// Solve implements par.Solver.
func (r *RandDelete) Solve(inst *par.Instance) (par.Solution, error) {
	rng := rand.New(rand.NewSource(r.Seed))
	n := inst.NumPhotos()
	kept := make([]bool, n)
	cost := 0.0
	for p := 0; p < n; p++ {
		kept[p] = true
		cost += inst.Cost[p]
	}
	// Deletable photos in random order.
	var order []par.PhotoID
	for _, p := range rng.Perm(n) {
		if !inst.IsRetained(par.PhotoID(p)) {
			order = append(order, par.PhotoID(p))
		}
	}
	// Tolerate the float error accumulated by summing costs, consistently
	// with par.Instance.Feasible.
	slack := 1e-9 * (1 + inst.Budget)
	for _, p := range order {
		if cost <= inst.Budget+slack {
			break
		}
		kept[p] = false
		cost -= inst.Cost[p]
	}
	if cost > inst.Budget+slack {
		return par.Solution{}, fmt.Errorf("baselines: RAND-D cannot reach budget (retained set too large)")
	}
	var photos []par.PhotoID
	for p := 0; p < n; p++ {
		if kept[p] {
			photos = append(photos, par.PhotoID(p))
		}
	}
	return par.Solution{
		Photos: photos,
		Score:  par.ScoreFast(inst, photos),
		Cost:   cost,
	}, nil
}

// SurrogateGreedy selects photos by running the lazy greedy (UC variant, as
// the paper describes plain "iterative greedy" baselines) on a surrogate
// instance, then reports the selection scored under the TRUE objective.
type SurrogateGreedy struct {
	// BaselineName is the reported algorithm name.
	BaselineName string
	// Surrogate rewrites the instance the greedy selects with.
	Surrogate func(*par.Instance) (*par.Instance, error)
}

// Name implements par.Solver.
func (s *SurrogateGreedy) Name() string { return s.BaselineName }

// Solve implements par.Solver.
func (s *SurrogateGreedy) Solve(inst *par.Instance) (par.Solution, error) {
	sur, err := s.Surrogate(inst)
	if err != nil {
		return par.Solution{}, fmt.Errorf("baselines: building %s surrogate: %w", s.BaselineName, err)
	}
	sol, _, err := celf.LazyGreedy(sur, celf.UC)
	if err != nil {
		return par.Solution{}, err
	}
	sol.Score = par.ScoreFast(inst, sol.Photos)
	return sol, nil
}

// NewGreedyNR returns the Greedy-NR baseline: the surrogate sets
// SIM(q,p,p') = 1 for every pair within each subset, so the greedy behaves
// like weighted maximum coverage and never accounts for partial redundancy.
func NewGreedyNR() *SurrogateGreedy {
	return &SurrogateGreedy{
		BaselineName: "Greedy-NR",
		Surrogate: func(inst *par.Instance) (*par.Instance, error) {
			out := &par.Instance{
				Cost:     inst.Cost,
				Retained: inst.Retained,
				Budget:   inst.Budget,
				Subsets:  make([]par.Subset, len(inst.Subsets)),
			}
			for qi := range inst.Subsets {
				q := inst.Subsets[qi]
				q.Sim = par.UniformSim{N: len(q.Members)}
				out.Subsets[qi] = q
			}
			if err := out.Finalize(); err != nil {
				return nil, err
			}
			return out, nil
		},
	}
}

// NewGreedyNCS returns the Greedy-NCS baseline: the surrogate replaces
// every subset's contextual similarity with the single global (photo-level,
// context-free) similarity globalSim, which must be symmetric, in [0,1],
// and 1 for p == p'.
func NewGreedyNCS(globalSim func(p1, p2 par.PhotoID) float64) *SurrogateGreedy {
	return &SurrogateGreedy{
		BaselineName: "Greedy-NCS",
		Surrogate: func(inst *par.Instance) (*par.Instance, error) {
			out := &par.Instance{
				Cost:     inst.Cost,
				Retained: inst.Retained,
				Budget:   inst.Budget,
				Subsets:  make([]par.Subset, len(inst.Subsets)),
			}
			for qi := range inst.Subsets {
				q := inst.Subsets[qi]
				members := q.Members
				q.Sim = par.FuncSim{
					N: len(members),
					F: func(i, j int) float64 { return globalSim(members[i], members[j]) },
				}
				out.Subsets[qi] = q
			}
			if err := out.Finalize(); err != nil {
				return nil, err
			}
			return out, nil
		},
	}
}
