// Package mc implements the Maximum Coverage problem family that PAR's
// hardness and sparsification analyses lean on:
//
//   - classic Maximum Coverage (pick k sets to cover the most elements),
//     used in Theorem 3.4's reduction proving PAR is NP-hard to approximate
//     beyond 1−1/e;
//   - Budgeted Maximum Coverage of Khuller, Moss and Naor (weighted
//     elements, set costs, knapsack budget), used to compute the α of
//     Theorem 4.8's data-dependent sparsification bound;
//   - the reduction itself: every MC instance becomes a PAR instance whose
//     solutions translate back with identical value.
package mc

import (
	"fmt"
	"sort"

	"phocus/internal/par"
)

// Instance is a Budgeted Maximum Coverage instance: weighted elements,
// costed sets, and a budget. Classic MC is the special case of unit weights,
// unit costs and budget k.
type Instance struct {
	// ElementWeights holds one weight per element of the universe.
	ElementWeights []float64
	// Sets lists, for each set, the element indices it covers.
	Sets [][]int
	// SetCosts holds one cost per set.
	SetCosts []float64
	// Budget bounds the total cost of the chosen sets.
	Budget float64
}

// NewUniform builds a classic MC instance: ne unit-weight elements,
// unit-cost sets, and a cardinality budget of k.
func NewUniform(ne int, sets [][]int, k int) *Instance {
	in := &Instance{
		ElementWeights: make([]float64, ne),
		Sets:           sets,
		SetCosts:       make([]float64, len(sets)),
		Budget:         float64(k),
	}
	for i := range in.ElementWeights {
		in.ElementWeights[i] = 1
	}
	for i := range in.SetCosts {
		in.SetCosts[i] = 1
	}
	return in
}

// Validate checks structural consistency.
func (in *Instance) Validate() error {
	if len(in.Sets) != len(in.SetCosts) {
		return fmt.Errorf("mc: %d sets but %d costs", len(in.Sets), len(in.SetCosts))
	}
	for si, set := range in.Sets {
		for _, e := range set {
			if e < 0 || e >= len(in.ElementWeights) {
				return fmt.Errorf("mc: set %d covers element %d out of range", si, e)
			}
		}
	}
	for si, c := range in.SetCosts {
		if c <= 0 {
			return fmt.Errorf("mc: set %d has non-positive cost %g", si, c)
		}
	}
	if in.Budget < 0 {
		return fmt.Errorf("mc: negative budget")
	}
	return nil
}

// Coverage returns the total weight of elements covered by the chosen sets.
func (in *Instance) Coverage(chosen []int) float64 {
	covered := make([]bool, len(in.ElementWeights))
	var total float64
	for _, si := range chosen {
		for _, e := range in.Sets[si] {
			if !covered[e] {
				covered[e] = true
				total += in.ElementWeights[e]
			}
		}
	}
	return total
}

// TotalWeight returns the weight of the whole universe.
func (in *Instance) TotalWeight() float64 {
	var w float64
	for _, v := range in.ElementWeights {
		w += v
	}
	return w
}

// Solution is the result of a coverage solver.
type Solution struct {
	Sets     []int   // chosen set indices
	Coverage float64 // total covered weight
	Cost     float64 // total cost
}

// GreedyBudgeted runs the Khuller–Moss–Naor heuristic: the better of (a) the
// density greedy that repeatedly adds the feasible set with the highest
// marginal-coverage-per-cost, and (b) the best single feasible set. The
// combination guarantees a (1−1/e)/2-approximation; with uniform costs the
// density greedy alone is the classic (1−1/e) greedy.
func GreedyBudgeted(in *Instance) Solution {
	greedy := densityGreedy(in)
	single := bestSingle(in)
	if single.Coverage > greedy.Coverage {
		return single
	}
	return greedy
}

func densityGreedy(in *Instance) Solution {
	covered := make([]bool, len(in.ElementWeights))
	chosen := make([]bool, len(in.Sets))
	var sol Solution
	for {
		best, bestKey := -1, 0.0
		for si := range in.Sets {
			if chosen[si] || sol.Cost+in.SetCosts[si] > in.Budget {
				continue
			}
			var gain float64
			for _, e := range in.Sets[si] {
				if !covered[e] {
					gain += in.ElementWeights[e]
				}
			}
			if gain <= 0 {
				continue
			}
			key := gain / in.SetCosts[si]
			if best < 0 || key > bestKey {
				best, bestKey = si, key
			}
		}
		if best < 0 {
			return sol
		}
		chosen[best] = true
		sol.Sets = append(sol.Sets, best)
		sol.Cost += in.SetCosts[best]
		for _, e := range in.Sets[best] {
			if !covered[e] {
				covered[e] = true
				sol.Coverage += in.ElementWeights[e]
			}
		}
	}
}

func bestSingle(in *Instance) Solution {
	var sol Solution
	for si := range in.Sets {
		if in.SetCosts[si] > in.Budget {
			continue
		}
		if cov := in.Coverage([]int{si}); cov > sol.Coverage {
			sol = Solution{Sets: []int{si}, Coverage: cov, Cost: in.SetCosts[si]}
		}
	}
	return sol
}

// Exact solves the instance optimally by enumeration; exponential in the
// number of sets, intended for tests and for tiny bound computations.
func Exact(in *Instance) Solution {
	n := len(in.Sets)
	if n > 24 {
		panic(fmt.Sprintf("mc: Exact on %d sets would enumerate 2^%d subsets", n, n))
	}
	var best Solution
	for mask := 0; mask < 1<<n; mask++ {
		var sets []int
		var cost float64
		for si := 0; si < n; si++ {
			if mask&(1<<si) != 0 {
				sets = append(sets, si)
				cost += in.SetCosts[si]
			}
		}
		if cost > in.Budget {
			continue
		}
		if cov := in.Coverage(sets); cov > best.Coverage {
			best = Solution{Sets: sets, Coverage: cov, Cost: cost}
		}
	}
	return best
}

// ToPAR applies the reduction of Theorem 3.4: every set s becomes a
// unit-cost photo p_s; every element e becomes a pre-defined subset q_e of
// weight 1 containing the photos of the sets covering e, uniform relevance
// 1/|q_e|, and uniform intra-subset similarity 1. The budget is k. Solving
// the PAR instance with value v yields an MC cover of exactly v·|E'| where
// E' is the set of coverable elements — PhotosToSets translates solutions
// back. Elements covered by no set are dropped (they are uncoverable in
// both formulations). Element weights and set costs must be uniform (the
// reduction targets classic MC).
func ToPAR(in *Instance) (*par.Instance, error) {
	for _, w := range in.ElementWeights {
		if w != 1 {
			return nil, fmt.Errorf("mc: ToPAR requires unit element weights")
		}
	}
	for _, c := range in.SetCosts {
		if c != 1 {
			return nil, fmt.Errorf("mc: ToPAR requires unit set costs")
		}
	}
	// Invert: element -> sets covering it.
	coveredBy := make([][]par.PhotoID, len(in.ElementWeights))
	for si, set := range in.Sets {
		for _, e := range set {
			coveredBy[e] = append(coveredBy[e], par.PhotoID(si))
		}
	}
	inst := &par.Instance{
		Cost:   make([]float64, len(in.Sets)),
		Budget: in.Budget,
	}
	for i := range inst.Cost {
		inst.Cost[i] = 1
	}
	for e, photos := range coveredBy {
		if len(photos) == 0 {
			continue
		}
		members := make([]par.PhotoID, len(photos))
		copy(members, photos)
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		rel := make([]float64, len(members))
		for i := range rel {
			rel[i] = 1 / float64(len(members))
		}
		inst.Subsets = append(inst.Subsets, par.Subset{
			Name:      fmt.Sprintf("e%d", e),
			Weight:    1,
			Members:   members,
			Relevance: rel,
			Sim:       par.UniformSim{N: len(members)},
		})
	}
	if err := inst.Finalize(); err != nil {
		return nil, err
	}
	return inst, nil
}

// PhotosToSets translates a PAR solution of a ToPAR instance back to the MC
// instance's chosen sets (the identity on indices).
func PhotosToSets(photos []par.PhotoID) []int {
	sets := make([]int, len(photos))
	for i, p := range photos {
		sets[i] = int(p)
	}
	return sets
}
