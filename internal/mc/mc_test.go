package mc

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"phocus/internal/celf"
	"phocus/internal/par"
)

func randomMC(rng *rand.Rand, ne, ns int) *Instance {
	sets := make([][]int, ns)
	for si := range sets {
		size := 1 + rng.Intn(4)
		if size > ne {
			size = ne
		}
		perm := rng.Perm(ne)
		sets[si] = perm[:size]
	}
	return NewUniform(ne, sets, 1+rng.Intn(ns))
}

func TestValidate(t *testing.T) {
	in := NewUniform(3, [][]int{{0, 1}, {2}}, 1)
	if err := in.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := NewUniform(3, [][]int{{0, 9}}, 1)
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("Validate() = %v, want out-of-range error", err)
	}
	neg := NewUniform(3, [][]int{{0}}, 1)
	neg.SetCosts[0] = 0
	if err := neg.Validate(); err == nil || !strings.Contains(err.Error(), "non-positive") {
		t.Errorf("Validate() = %v, want non-positive cost error", err)
	}
}

func TestCoverage(t *testing.T) {
	in := NewUniform(4, [][]int{{0, 1}, {1, 2}, {3}}, 2)
	if got := in.Coverage([]int{0, 1}); got != 3 {
		t.Errorf("Coverage({0,1}) = %g, want 3 (element 1 counted once)", got)
	}
	if got := in.Coverage(nil); got != 0 {
		t.Errorf("Coverage(∅) = %g, want 0", got)
	}
	if got := in.TotalWeight(); got != 4 {
		t.Errorf("TotalWeight() = %g, want 4", got)
	}
}

func TestExactSmall(t *testing.T) {
	// Two disjoint pairs beat any overlapping choice.
	in := NewUniform(4, [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}}, 2)
	sol := Exact(in)
	if sol.Coverage != 4 {
		t.Errorf("Exact coverage = %g, want 4", sol.Coverage)
	}
}

// Property: the budgeted greedy achieves at least (1−1/e)/2 of the optimum,
// and with uniform costs at least 1−1/e.
func TestGreedyGuaranteeQuick(t *testing.T) {
	factor := 1 - 1/math.E
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomMC(rng, 2+rng.Intn(10), 2+rng.Intn(8))
		opt := Exact(in)
		got := GreedyBudgeted(in)
		if got.Cost > in.Budget {
			return false
		}
		// Verify the reported coverage is consistent.
		if math.Abs(in.Coverage(got.Sets)-got.Coverage) > 1e-12 {
			return false
		}
		return got.Coverage >= factor*opt.Coverage-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestGreedyBudgetedNonUniform(t *testing.T) {
	// A huge set that alone nearly fills the budget vs small efficient sets:
	// the single-set backstop must kick in when density greedy misfires.
	in := &Instance{
		ElementWeights: []float64{10, 1, 1},
		Sets:           [][]int{{0}, {1}, {2}},
		SetCosts:       []float64{5, 1, 1},
		Budget:         5,
	}
	sol := GreedyBudgeted(in)
	if sol.Coverage != 10 {
		t.Errorf("coverage = %g, want 10 (best single set)", sol.Coverage)
	}
}

func TestToPARRejectsWeighted(t *testing.T) {
	in := NewUniform(2, [][]int{{0}, {1}}, 1)
	in.ElementWeights[0] = 2
	if _, err := ToPAR(in); err == nil {
		t.Error("ToPAR accepted weighted elements")
	}
	in2 := NewUniform(2, [][]int{{0}, {1}}, 1)
	in2.SetCosts[1] = 2
	if _, err := ToPAR(in2); err == nil {
		t.Error("ToPAR accepted non-unit set costs")
	}
}

// Property (Theorem 3.4): the reduction preserves objective values exactly —
// for any choice of k sets, MC coverage equals the PAR score of the
// corresponding photos times 1 (each covered element contributes its subset
// weight 1), and solving PAR with CELF yields a cover at least (1−1/e) of
// the MC optimum (uniform costs make the greedy optimal-factor).
func TestReductionQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randomMC(rng, 2+rng.Intn(8), 2+rng.Intn(6))
		inst, err := ToPAR(in)
		if err != nil {
			return false
		}
		// Value preservation on a random feasible choice.
		k := int(in.Budget)
		perm := rng.Perm(len(in.Sets))
		if k > len(perm) {
			k = len(perm)
		}
		var photos []par.PhotoID
		for _, si := range perm[:k] {
			photos = append(photos, par.PhotoID(si))
		}
		if math.Abs(par.Score(inst, photos)-in.Coverage(PhotosToSets(photos))) > 1e-9 {
			return false
		}
		// Approximation transfer.
		var s celf.Solver
		sol, err := s.Solve(inst)
		if err != nil {
			return false
		}
		opt := Exact(in)
		back := in.Coverage(PhotosToSets(sol.Photos))
		return back >= (1-1/math.E)*opt.Coverage-1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestToPARDropsUncoverableElements(t *testing.T) {
	in := NewUniform(3, [][]int{{0}}, 1) // elements 1 and 2 uncoverable
	inst, err := ToPAR(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(inst.Subsets); got != 1 {
		t.Errorf("PAR instance has %d subsets, want 1", got)
	}
}

func TestExactPanicsOnLargeInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exact should panic on > 24 sets")
		}
	}()
	Exact(NewUniform(1, make([][]int, 25), 1))
}
