package sparsify

import (
	"math/rand"
	"reflect"
	"testing"

	"phocus/internal/par"
)

// subsetPairs flattens a sparsified instance into comparable neighbour rows.
func subsetPairs(t *testing.T, inst *par.Instance) [][][]par.Neighbor {
	t.Helper()
	var all [][][]par.Neighbor
	for qi := range inst.Subsets {
		nl, ok := inst.Subsets[qi].Sim.(par.NeighborLister)
		if !ok {
			t.Fatalf("subset %d similarity is not a NeighborLister", qi)
		}
		rows := make([][]par.Neighbor, inst.Subsets[qi].Sim.Len())
		for i := range rows {
			rows[i] = nl.Neighbors(i)
		}
		all = append(all, rows)
	}
	return all
}

// TestExactWorkersEquivalence: the fanned-out exact sparsifier must produce
// the same counters, observer events and similarity structure as the
// sequential path for every worker count.
func TestExactWorkersEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	inst := par.Random(rng, par.RandomConfig{Photos: 50, Subsets: 20, SimDensity: 0.7})
	var seqObs countingObserver
	seq, err := ExactWorkers(inst, 0.5, 1, &seqObs)
	if err != nil {
		t.Fatal(err)
	}
	seqRows := subsetPairs(t, seq.Instance)
	for _, workers := range []int{2, 8} {
		var obs countingObserver
		res, err := ExactWorkers(inst, 0.5, workers, &obs)
		if err != nil {
			t.Fatal(err)
		}
		if res.PairsBefore != seq.PairsBefore || res.PairsAfter != seq.PairsAfter {
			t.Errorf("workers=%d: pairs %d/%d, sequential %d/%d",
				workers, res.PairsAfter, res.PairsBefore, seq.PairsAfter, seq.PairsBefore)
		}
		if !reflect.DeepEqual(obs, seqObs) {
			t.Errorf("workers=%d: observer events diverge", workers)
		}
		if !reflect.DeepEqual(subsetPairs(t, res.Instance), seqRows) {
			t.Errorf("workers=%d: sparsified similarities diverge", workers)
		}
	}
}

// TestWithLSHWorkersEquivalence: with the same seed, the LSH sparsifier is
// byte-identical for every worker count — the hasher families are drawn
// before the fan-out, so the worker schedule cannot touch the randomness.
func TestWithLSHWorkersEquivalence(t *testing.T) {
	inst, vecs := randomEmbeddedInstance(rand.New(rand.NewSource(5)), 60, 6)
	run := func(workers int) (Result, countingObserver) {
		var obs countingObserver
		res, err := WithLSHWorkers(rand.New(rand.NewSource(99)), inst, vecs, 0.7, workers, &obs)
		if err != nil {
			t.Fatal(err)
		}
		return res, obs
	}
	seq, seqObs := run(1)
	seqRows := subsetPairs(t, seq.Instance)
	for _, workers := range []int{2, 8} {
		res, obs := run(workers)
		if res.PairsBefore != seq.PairsBefore || res.PairsAfter != seq.PairsAfter {
			t.Errorf("workers=%d: pairs %d/%d, sequential %d/%d",
				workers, res.PairsAfter, res.PairsBefore, seq.PairsAfter, seq.PairsBefore)
		}
		if !reflect.DeepEqual(obs, seqObs) {
			t.Errorf("workers=%d: observer events diverge", workers)
		}
		if !reflect.DeepEqual(subsetPairs(t, res.Instance), seqRows) {
			t.Errorf("workers=%d: sparsified similarities diverge", workers)
		}
	}
}

// TestWithLSHReportsPairsBefore is the regression test for the bug where the
// LSH path never set PairsBefore: on a dense clustered instance it must
// report PairsBefore ≥ PairsAfter > 0, so downstream sparsity-ratio metrics
// have a denominator.
func TestWithLSHReportsPairsBefore(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	inst, vecs := randomEmbeddedInstance(rng, 60, 6)
	res, err := WithLSH(rng, inst, vecs, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if res.PairsAfter <= 0 {
		t.Fatalf("PairsAfter = %d, want > 0 (clustered instance must keep pairs)", res.PairsAfter)
	}
	if res.PairsBefore < res.PairsAfter {
		t.Errorf("PairsBefore = %d < PairsAfter = %d", res.PairsBefore, res.PairsAfter)
	}
}

// TestWithLSHMixedDims: subsets alternating between embedding dimensions
// must each get a hasher of the right dimension (the per-dim cache must not
// hand a 16-dim family to a 32-dim subset or rebuild per subset).
func TestWithLSHMixedDims(t *testing.T) {
	rngA := rand.New(rand.NewSource(31))
	instA, vecsA := randomEmbeddedInstance(rngA, 40, 3) // dim 32
	// Shrink alternate subsets to a different dimension by truncating and
	// renormalizing their vectors; similarities inside the subset still come
	// from the instance's Sim, so only the LSH candidate stage sees the dims.
	for qi := 1; qi < len(vecsA); qi += 2 {
		for mi := range vecsA[qi] {
			v := append([]float64(nil), vecsA[qi][mi][:16]...)
			vecsA[qi][mi] = v
		}
	}
	res, err := WithLSH(rand.New(rand.NewSource(8)), instA, vecsA, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instance == nil || len(res.Instance.Subsets) != len(instA.Subsets) {
		t.Fatal("mixed-dim sparsification did not produce a full instance")
	}
}
