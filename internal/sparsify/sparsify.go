// Package sparsify implements the τ-sparsification preprocessing of Section
// 4.3: all contextual similarities below a threshold τ are rounded down to
// zero, so nearest-neighbour computations touch far fewer pairs. Two
// construction paths are provided — exact (enumerate all pairs, keep the
// ones ≥ τ) and LSH-based (SimHash candidate generation followed by
// verification, near-linear when subsets are large) — together with the
// data-dependent error bound of Theorem 4.8.
package sparsify

import (
	"fmt"
	"math/rand"
	"time"

	"phocus/internal/embed"
	"phocus/internal/gfl"
	"phocus/internal/lsh"
	"phocus/internal/mc"
	"phocus/internal/par"
	"phocus/internal/pool"
)

// Result reports a sparsification run: the rewritten instance plus how many
// positive off-diagonal similarity pairs survived.
//
// PairsBefore counts the pairs whose true similarity was found positive
// before thresholding. For Exact that is the full positive-pair count of the
// input; for WithLSH only LSH candidate pairs are ever verified, so
// PairsBefore is a candidate-count — a lower bound on the full pair count,
// not the full count itself (computing that would defeat the point of LSH).
// PairsAfter counts the pairs ≥ τ that were kept; PairsBefore ≥ PairsAfter
// on both paths.
type Result struct {
	Instance    *par.Instance
	PairsBefore int
	PairsAfter  int
	Elapsed     time.Duration
}

// subsetResult carries one subset's sparsification out of the worker pool;
// the sequential reduce that follows assembles them in subset order, so
// observer events, counters and the output instance are byte-identical for
// every worker count.
type subsetResult struct {
	sparse   *par.SparseSim
	before   int // pairs with positive true similarity
	examined int
	kept     int
}

// Observer receives per-subset sparsification events, in subset order — the
// instrumentation hook mirroring celf.Observer. examined is the number of
// pairs whose true similarity was checked against τ (all positive pairs for
// Exact, LSH candidate pairs for WithLSH); kept is how many survived.
type Observer interface {
	SubsetSparsified(name string, examined, kept int)
}

// Exact builds the τ-sparsified instance by enumerating every pair of every
// subset. Costs, retained set, budget, weights and relevances are shared
// with the input instance; only similarities are replaced (by SparseSim, so
// solvers automatically benefit from neighbour iteration).
func Exact(inst *par.Instance, tau float64) (Result, error) {
	return ExactObserved(inst, tau, nil)
}

// ExactObserved is Exact with an optional per-subset event observer.
func ExactObserved(inst *par.Instance, tau float64, obs Observer) (Result, error) {
	return ExactWorkers(inst, tau, 1, obs)
}

// ExactWorkers is ExactObserved with the per-subset pair enumeration fanned
// out over up to workers goroutines (≤ 0 means one per CPU). Each subset is
// sparsified independently into its own SparseSim and the results are
// reduced in subset order, so the output instance, the counters and the
// observer event stream are byte-identical for every worker count.
func ExactWorkers(inst *par.Instance, tau float64, workers int, obs Observer) (Result, error) {
	start := time.Now()
	res := Result{}
	out := &par.Instance{
		Cost:     inst.Cost,
		Retained: inst.Retained,
		Budget:   inst.Budget,
		Subsets:  make([]par.Subset, len(inst.Subsets)),
	}
	perSubset := make([]subsetResult, len(inst.Subsets))
	pool.ForEach(len(inst.Subsets), workers, func(qi int) {
		q := &inst.Subsets[qi]
		k := len(q.Members)
		sr := subsetResult{}
		// Bulk-build the sparse rows: pairs arrive in ascending order, so the
		// builder's sort-once Build is linear here, versus the O(deg²) sorted
		// inserts SparseSim.Add would pay per row.
		bld := par.NewSparseSimBuilder(k)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				s := q.Sim.Sim(i, j)
				if s > 0 {
					sr.before++
					sr.examined++
				}
				if s >= tau && s > 0 {
					bld.Add(i, j, s)
					sr.kept++
				}
			}
		}
		sr.sparse = bld.Build()
		perSubset[qi] = sr
	})
	for qi := range inst.Subsets {
		q := &inst.Subsets[qi]
		sr := &perSubset[qi]
		res.PairsBefore += sr.before
		res.PairsAfter += sr.kept
		if obs != nil {
			obs.SubsetSparsified(q.Name, sr.examined, sr.kept)
		}
		out.Subsets[qi] = par.Subset{
			Name: q.Name, Weight: q.Weight, Members: q.Members,
			Relevance: q.Relevance, Sim: sr.sparse,
		}
	}
	if err := out.Finalize(); err != nil {
		return Result{}, fmt.Errorf("sparsify: %w", err)
	}
	res.Instance = out
	res.Elapsed = time.Since(start)
	return res, nil
}

// WithLSH builds the τ-sparsified instance without computing all pairwise
// similarities: per subset, SimHash banding over the contextualized member
// embeddings proposes candidate pairs, and only candidates are verified
// against the true similarity. ctxVectors[qi][mi] must hold the
// contextualized embedding of subset qi's mi-th member. With a correctly
// tuned banding layout almost all pairs with similarity ≥ τ are recovered;
// missed pairs only lower similarities (never raise them), so the result is
// a valid — slightly more aggressive — sparsification.
func WithLSH(rng *rand.Rand, inst *par.Instance, ctxVectors [][]embed.Vector, tau float64) (Result, error) {
	return WithLSHObserved(rng, inst, ctxVectors, tau, nil)
}

// WithLSHObserved is WithLSH with an optional per-subset event observer.
func WithLSHObserved(rng *rand.Rand, inst *par.Instance, ctxVectors [][]embed.Vector, tau float64, obs Observer) (Result, error) {
	return WithLSHWorkers(rng, inst, ctxVectors, tau, 1, obs)
}

// WithLSHWorkers is WithLSHObserved with the per-subset candidate generation
// and verification fanned out over up to workers goroutines (≤ 0 means one
// per CPU). All randomness is consumed up front: one SimHash family is drawn
// per distinct embedding dimension, seeded from the caller's rng in the
// deterministic first-seen subset order, and shared read-only by every
// worker. The output instance, counters and observer event stream are
// therefore byte-identical for every worker count.
func WithLSHWorkers(rng *rand.Rand, inst *par.Instance, ctxVectors [][]embed.Vector, tau float64, workers int, obs Observer) (Result, error) {
	start := time.Now()
	if len(ctxVectors) != len(inst.Subsets) {
		return Result{}, fmt.Errorf("sparsify: %d vector groups for %d subsets", len(ctxVectors), len(inst.Subsets))
	}
	for qi := range inst.Subsets {
		if len(ctxVectors[qi]) != len(inst.Subsets[qi].Members) {
			return Result{}, fmt.Errorf("sparsify: subset %d has %d members but %d vectors",
				qi, len(inst.Subsets[qi].Members), len(ctxVectors[qi]))
		}
	}
	res := Result{}
	bands, rows := lsh.Tune(tau, 32, 16)
	out := &par.Instance{
		Cost:     inst.Cost,
		Retained: inst.Retained,
		Budget:   inst.Budget,
		Subsets:  make([]par.Subset, len(inst.Subsets)),
	}
	// Hyperplanes are drawn once per distinct dimension (no rebuild
	// thrashing when consecutive subsets alternate dims) in subset order, so
	// the families do not depend on the worker schedule.
	hashers := make(map[int]*lsh.SimHash)
	for qi := range inst.Subsets {
		if len(inst.Subsets[qi].Members) < 2 {
			continue
		}
		dim := len(ctxVectors[qi][0])
		if hashers[dim] == nil {
			hashers[dim] = lsh.New(rand.New(rand.NewSource(rng.Int63())), dim, bands, rows)
		}
	}
	// Divide the pool between the subset fan-out and the per-subset
	// signature hashing so a dataset with one huge subset still parallelizes.
	workers = pool.Resolve(workers)
	inner := 1
	if len(inst.Subsets) > 0 {
		inner = 1 + (workers-1)/len(inst.Subsets)
	}
	perSubset := make([]subsetResult, len(inst.Subsets))
	pool.ForEach(len(inst.Subsets), workers, func(qi int) {
		q := &inst.Subsets[qi]
		k := len(q.Members)
		sr := subsetResult{}
		bld := par.NewSparseSimBuilder(k)
		if k > 1 {
			hasher := hashers[len(ctxVectors[qi][0])]
			for _, pair := range hasher.CandidatePairsParallel(ctxVectors[qi], inner, nil) {
				sr.examined++
				s := q.Sim.Sim(pair.I, pair.J)
				if s > 0 {
					sr.before++
				}
				if s >= tau && s > 0 {
					bld.Add(pair.I, pair.J, s)
					sr.kept++
				}
			}
		}
		sr.sparse = bld.Build()
		perSubset[qi] = sr
	})
	for qi := range inst.Subsets {
		q := &inst.Subsets[qi]
		sr := &perSubset[qi]
		res.PairsBefore += sr.before
		res.PairsAfter += sr.kept
		if obs != nil {
			obs.SubsetSparsified(q.Name, sr.examined, sr.kept)
		}
		out.Subsets[qi] = par.Subset{
			Name: q.Name, Weight: q.Weight, Members: q.Members,
			Relevance: q.Relevance, Sim: sr.sparse,
		}
	}
	if err := out.Finalize(); err != nil {
		return Result{}, fmt.Errorf("sparsify: %w", err)
	}
	res.Instance = out
	res.Elapsed = time.Since(start)
	return res, nil
}

// BoundReport is the data-dependent guarantee of Theorem 4.8 for a
// τ-sparsified instance.
type BoundReport struct {
	// Alpha is the fraction α of the total right-node weight W_R covered by
	// a budget-feasible photo set whose τ-neighbourhoods the Budgeted
	// Maximum Coverage greedy found. Theorem 4.8 then guarantees
	// F(O_τ) ≥ OPT / (1 + 1/α).
	Alpha float64
	// Factor is the resulting guarantee α/(α+1) ∈ [0, 1).
	Factor float64
	// CoverPhotos is the number of photos in the covering set S.
	CoverPhotos int
}

// Bound computes a (conservative) instantiation of Theorem 4.8's
// data-dependent bound: it searches for the covering set S with Budgeted
// Maximum Coverage (itself an approximation), so the reported α is a lower
// bound on the best achievable α and the factor is a valid guarantee.
func Bound(inst *par.Instance, tau float64) BoundReport {
	g := gfl.FromPAR(inst).Sparsify(tau)
	wr := g.TotalRightWeight()
	if wr == 0 {
		return BoundReport{}
	}
	// Budgeted Max Coverage: elements are right nodes weighted w_R; each
	// photo covers its τ-neighbourhood; costs and budget come from PAR.
	cov := &mc.Instance{
		ElementWeights: make([]float64, len(g.Right)),
		Sets:           make([][]int, len(g.LeftWeights)),
		SetCosts:       g.LeftWeights,
		Budget:         g.Budget,
	}
	for ri, r := range g.Right {
		cov.ElementWeights[ri] = r.Weight
	}
	for p := range cov.Sets {
		edges := g.EdgesByPhoto[p]
		set := make([]int, 0, len(edges))
		for _, e := range edges {
			set = append(set, e.Right)
		}
		cov.Sets[p] = set
	}
	sol := mc.GreedyBudgeted(cov)
	alpha := sol.Coverage / wr
	return BoundReport{
		Alpha:       alpha,
		Factor:      alpha / (alpha + 1),
		CoverPhotos: len(sol.Sets),
	}
}
