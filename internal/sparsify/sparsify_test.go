package sparsify

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"phocus/internal/celf"
	"phocus/internal/embed"
	"phocus/internal/exact"
	"phocus/internal/par"
)

func TestExactFigure1(t *testing.T) {
	inst := par.Figure1Instance()
	res, err := Exact(inst, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1 has 7 positive pairs; 5 of them are ≥ 0.6 (the two 0.4/0.5
	// pairs drop).
	if res.PairsBefore != 7 {
		t.Errorf("PairsBefore = %d, want 7", res.PairsBefore)
	}
	if res.PairsAfter != 5 {
		t.Errorf("PairsAfter = %d, want 5", res.PairsAfter)
	}
	s := res.Instance.Subsets[0].Sim
	if got := s.Sim(1, 2); got != 0 {
		t.Errorf("sparsified SIM(p2,p3) = %g, want 0 (was 0.5 < τ)", got)
	}
	if got := s.Sim(0, 2); got != 0.8 {
		t.Errorf("sparsified SIM(p1,p3) = %g, want 0.8 kept", got)
	}
	if got := s.Sim(2, 2); got != 1 {
		t.Errorf("diagonal must stay 1, got %g", got)
	}
}

// Property: the sparsified objective never exceeds the original for any
// solution, and τ=0 preserves it exactly.
func TestSparsifiedScoreDominatedQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := par.Random(rng, par.RandomConfig{Photos: 12, Subsets: 6})
		res0, err := Exact(inst, 0)
		if err != nil {
			return false
		}
		resT, err := Exact(inst, 0.5)
		if err != nil {
			return false
		}
		var s []par.PhotoID
		for p := 0; p < 12; p++ {
			if rng.Intn(2) == 0 {
				s = append(s, par.PhotoID(p))
			}
		}
		orig := par.Score(inst, s)
		if math.Abs(par.Score(res0.Instance, s)-orig) > 1e-9 {
			return false
		}
		return par.Score(resT.Instance, s) <= orig+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestWithLSHMatchesExactOnCosineSim(t *testing.T) {
	// Build an instance whose SIM is plain contextual cosine so LSH's
	// candidate threshold matches the verification threshold.
	rng := rand.New(rand.NewSource(6))
	const dim = 48
	const n = 60
	vectors := make([]embed.Vector, n)
	// Half the photos sit in 10 tight clusters; the rest are random.
	for c := 0; c < 10; c++ {
		proto := embed.RandomUnit(rng, dim)
		for k := 0; k < 3; k++ {
			vectors[c*3+k] = embed.Perturb(rng, proto, 0.03)
		}
	}
	for p := 30; p < n; p++ {
		vectors[p] = embed.RandomUnit(rng, dim)
	}
	inst := &par.Instance{Cost: make([]float64, n)}
	for p := range inst.Cost {
		inst.Cost[p] = 1
	}
	inst.Budget = 10
	ctx := embed.UniformContext(dim)
	var ctxVectors [][]embed.Vector
	for qi := 0; qi < 6; qi++ {
		size := 10 + rng.Intn(10)
		perm := rng.Perm(n)[:size]
		members := make([]par.PhotoID, size)
		vs := make([]embed.Vector, size)
		rel := make([]float64, size)
		for i, p := range perm {
			members[i] = par.PhotoID(p)
			vs[i] = vectors[p]
			rel[i] = 1 / float64(size)
		}
		inst.Subsets = append(inst.Subsets, par.Subset{
			Name: "q", Weight: 1, Members: members, Relevance: rel,
			Sim: embed.ContextualSim(vs, ctx),
		})
		ctxVectors = append(ctxVectors, vs)
	}
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}

	const tau = 0.85
	exactRes, err := Exact(inst, tau)
	if err != nil {
		t.Fatal(err)
	}
	lshRes, err := WithLSH(rng, inst, ctxVectors, tau)
	if err != nil {
		t.Fatal(err)
	}
	if exactRes.PairsAfter == 0 {
		t.Fatal("setup produced no ≥τ pairs")
	}
	recall := float64(lshRes.PairsAfter) / float64(exactRes.PairsAfter)
	if recall < 0.85 {
		t.Errorf("LSH recovered %.0f%% of ≥τ pairs, want ≥ 85%%", recall*100)
	}
	if lshRes.PairsAfter > exactRes.PairsAfter {
		t.Errorf("LSH produced %d pairs, more than the %d true ≥τ pairs", lshRes.PairsAfter, exactRes.PairsAfter)
	}
	// LSH result is a valid sparsification: scores never exceed the exact
	// sparsification's.
	var sol []par.PhotoID
	for p := 0; p < n; p += 7 {
		sol = append(sol, par.PhotoID(p))
	}
	if par.Score(lshRes.Instance, sol) > par.Score(exactRes.Instance, sol)+1e-9 {
		t.Error("LSH sparsification scored above exact sparsification")
	}
}

func TestWithLSHShapeErrors(t *testing.T) {
	inst := par.Figure1Instance()
	rng := rand.New(rand.NewSource(1))
	if _, err := WithLSH(rng, inst, nil, 0.5); err == nil {
		t.Error("expected error for missing vector groups")
	}
	bad := make([][]embed.Vector, len(inst.Subsets))
	if _, err := WithLSH(rng, inst, bad, 0.5); err == nil {
		t.Error("expected error for wrong group sizes")
	}
}

// Theorem 4.8: solving the τ-sparsified instance loses at most a
// 1/(1+1/α) factor against the true optimum. Verify end to end on small
// instances with the exact solver.
func TestBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 15; trial++ {
		inst := par.Random(rng, par.RandomConfig{Photos: 9, Subsets: 5, BudgetFrac: 0.4})
		tau := 0.3 + 0.4*rng.Float64()
		rep := Bound(inst, tau)
		if rep.Alpha < 0 || rep.Alpha > 1+1e-9 {
			t.Fatalf("alpha = %g outside [0,1]", rep.Alpha)
		}
		if rep.Alpha == 0 {
			continue // bound is vacuous
		}
		res, err := Exact(inst, tau)
		if err != nil {
			t.Fatal(err)
		}
		var ex exact.Solver
		origOpt, err := ex.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		var ex2 exact.Solver
		tauOpt, err := ex2.Solve(res.Instance)
		if err != nil {
			t.Fatal(err)
		}
		// F(O_τ) under the ORIGINAL objective is what the theorem bounds;
		// evaluate the sparsified optimum's photos on the original instance.
		val := par.Score(inst, tauOpt.Photos)
		if val < rep.Factor*origOpt.Score-1e-9 {
			t.Errorf("trial %d: sparsified optimum %.4f below guaranteed %.4f·OPT(%.4f) at τ=%.2f (α=%.3f)",
				trial, val, rep.Factor, origOpt.Score, tau, rep.Alpha)
		}
	}
}

func TestBoundEmptyCoverage(t *testing.T) {
	// Budget too small to cover anything: α = 0, factor 0.
	inst := par.Figure1Instance()
	inst.Budget = 0.1
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	rep := Bound(inst, 0.5)
	if rep.Alpha != 0 || rep.Factor != 0 {
		t.Errorf("expected vacuous bound, got α=%g factor=%g", rep.Alpha, rep.Factor)
	}
}

// Sparsification should barely hurt the CELF solution quality on clustered
// data (Figure 5e's observation: ≤ 5% loss).
func TestSparsifiedSolveQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	inst := par.Random(rng, par.RandomConfig{Photos: 60, Subsets: 25, BudgetFrac: 0.3, SimDensity: 0.8})
	var s1 celf.Solver
	full, err := s1.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exact(inst, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	var s2 celf.Solver
	sparse, err := s2.Solve(res.Instance)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate both under the true objective.
	fullScore := par.Score(inst, full.Photos)
	sparseScore := par.Score(inst, sparse.Photos)
	if sparseScore < 0.85*fullScore {
		t.Errorf("sparsified solve lost %.0f%% quality (%.3f vs %.3f)",
			100*(1-sparseScore/fullScore), sparseScore, fullScore)
	}
}

// countingObserver records SubsetSparsified events.
type countingObserver struct {
	names    []string
	examined int
	kept     int
}

func (c *countingObserver) SubsetSparsified(name string, examined, kept int) {
	c.names = append(c.names, name)
	c.examined += examined
	c.kept += kept
}

// TestExactObserverEvents checks the instrumentation hook: one event per
// subset, with totals matching the Result counters.
func TestExactObserverEvents(t *testing.T) {
	inst := par.Figure1Instance()
	var obs countingObserver
	res, err := ExactObserved(inst, 0.6, &obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.names) != len(inst.Subsets) {
		t.Fatalf("got %d events for %d subsets", len(obs.names), len(inst.Subsets))
	}
	if obs.examined != res.PairsBefore {
		t.Errorf("examined = %d, want PairsBefore %d", obs.examined, res.PairsBefore)
	}
	if obs.kept != res.PairsAfter {
		t.Errorf("kept = %d, want PairsAfter %d", obs.kept, res.PairsAfter)
	}
}

// randomEmbeddedInstance builds an instance whose SIM is contextual cosine
// over random unit vectors (half clustered), returning the per-subset
// contextualized vectors WithLSH needs.
func randomEmbeddedInstance(rng *rand.Rand, n, subsets int) (*par.Instance, [][]embed.Vector) {
	const dim = 32
	vectors := make([]embed.Vector, n)
	for c := 0; c < n/6; c++ {
		proto := embed.RandomUnit(rng, dim)
		for k := 0; k < 3; k++ {
			vectors[c*3+k] = embed.Perturb(rng, proto, 0.03)
		}
	}
	for p := (n / 6) * 3; p < n; p++ {
		vectors[p] = embed.RandomUnit(rng, dim)
	}
	inst := &par.Instance{Cost: make([]float64, n), Budget: float64(n) / 4}
	for p := range inst.Cost {
		inst.Cost[p] = 1
	}
	ctx := embed.UniformContext(dim)
	var ctxVectors [][]embed.Vector
	for qi := 0; qi < subsets; qi++ {
		size := 8 + rng.Intn(8)
		perm := rng.Perm(n)[:size]
		members := make([]par.PhotoID, size)
		vs := make([]embed.Vector, size)
		rel := make([]float64, size)
		for i, p := range perm {
			members[i] = par.PhotoID(p)
			vs[i] = vectors[p]
			rel[i] = 1 / float64(size)
		}
		inst.Subsets = append(inst.Subsets, par.Subset{
			Name: fmt.Sprintf("q%d", qi), Weight: 1, Members: members,
			Relevance: rel, Sim: embed.ContextualSim(vs, ctx),
		})
		ctxVectors = append(ctxVectors, vs)
	}
	if err := inst.Finalize(); err != nil {
		panic(err)
	}
	return inst, ctxVectors
}

// TestWithLSHObserverEvents checks the hook on the LSH path: one event per
// subset, kept totals matching, and examined counting candidates (which may
// exceed kept but never the all-pairs count).
func TestWithLSHObserverEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst, vecs := randomEmbeddedInstance(rng, 40, 4)
	var obs countingObserver
	res, err := WithLSHObserved(rng, inst, vecs, 0.7, &obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.names) != len(inst.Subsets) {
		t.Fatalf("got %d events for %d subsets", len(obs.names), len(inst.Subsets))
	}
	if obs.kept != res.PairsAfter {
		t.Errorf("kept = %d, want PairsAfter %d", obs.kept, res.PairsAfter)
	}
	if obs.examined < obs.kept {
		t.Errorf("examined %d < kept %d", obs.examined, obs.kept)
	}
}
