package lsh

import (
	"math/rand"
	"reflect"
	"testing"

	"phocus/internal/embed"
)

// TestSignaturesMatchSequential: the parallel signature fan-out must return
// exactly what per-vector Signature computes, for every worker count.
func TestSignaturesMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := New(rng, 24, 8, 10)
	vectors := make([]embed.Vector, 50)
	for i := range vectors {
		vectors[i] = embed.RandomUnit(rng, 24)
	}
	want := make([][]uint64, len(vectors))
	for i, v := range vectors {
		want[i] = h.Signature(v)
	}
	for _, workers := range []int{1, 2, 8} {
		if got := h.Signatures(vectors, workers); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: signatures diverge from sequential", workers)
		}
	}
}

// bandLog records per-band observer events for comparison across runs.
type bandLog struct{ rows [][3]int }

func (l *bandLog) BandDone(band, buckets, pairs int) {
	l.rows = append(l.rows, [3]int{band, buckets, pairs})
}

// TestCandidatePairsParallelMatches: pair output and observer events are
// identical to the sequential path for every worker count.
func TestCandidatePairsParallelMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := New(rng, 16, 12, 6)
	vectors := make([]embed.Vector, 80)
	for i := range vectors {
		vectors[i] = embed.RandomUnit(rng, 16)
	}
	var seqLog bandLog
	want := h.CandidatePairsObserved(vectors, &seqLog)
	for _, workers := range []int{2, 8} {
		var log bandLog
		got := h.CandidatePairsParallel(vectors, workers, &log)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: candidate pairs diverge from sequential", workers)
		}
		if !reflect.DeepEqual(log, seqLog) {
			t.Errorf("workers=%d: band events diverge from sequential", workers)
		}
	}
}
