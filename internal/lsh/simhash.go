// Package lsh implements SimHash — random-hyperplane locality-sensitive
// hashing for cosine similarity (Charikar, STOC 2002) — with banding, as
// used by the paper's sparsification step (Section 4.3) to find (almost)
// all photo pairs with similarity at least τ in roughly linear time instead
// of computing all pairwise similarities.
//
// Each vector is hashed to bands·rows sign bits (one per random
// hyperplane). Two vectors collide in a band when all of that band's bits
// agree; the candidate pairs are those colliding in at least one band. The
// per-bit agreement probability of a pair with cosine similarity s is
// 1 − arccos(s)/π, so the candidate probability is the classic S-curve
// 1 − (1 − pᵖʳ)ᵇ and the (bands, rows) pair tunes where the curve jumps.
package lsh

import (
	"math"
	"math/rand"
	"sort"

	"phocus/internal/embed"
	"phocus/internal/pool"
)

// SimHash is a fixed family of random hyperplanes organized in bands.
type SimHash struct {
	planes []embed.Vector
	bands  int
	rows   int
}

// New draws a SimHash family for the given vector dimension with the given
// banding layout. rows must be at most 64 so a band's bits fit one word.
func New(rng *rand.Rand, dim, bands, rows int) *SimHash {
	if bands <= 0 || rows <= 0 || rows > 64 {
		panic("lsh: need bands ≥ 1 and 1 ≤ rows ≤ 64")
	}
	h := &SimHash{bands: bands, rows: rows}
	h.planes = make([]embed.Vector, bands*rows)
	for i := range h.planes {
		h.planes[i] = embed.RandomUnit(rng, dim)
	}
	return h
}

// Bands returns the number of bands.
func (h *SimHash) Bands() int { return h.bands }

// Rows returns the number of rows (bits) per band.
func (h *SimHash) Rows() int { return h.rows }

// Signature returns the banded bit signature of v: one word per band whose
// low Rows bits are the hyperplane signs.
func (h *SimHash) Signature(v embed.Vector) []uint64 {
	sig := make([]uint64, h.bands)
	for b := 0; b < h.bands; b++ {
		var word uint64
		for r := 0; r < h.rows; r++ {
			if embed.Dot(h.planes[b*h.rows+r], v) >= 0 {
				word |= 1 << uint(r)
			}
		}
		sig[b] = word
	}
	return sig
}

// Pair is an unordered candidate pair of vector indices with I < J.
type Pair struct{ I, J int }

// Observer receives per-band candidate-generation events, in band order —
// the instrumentation hook mirroring celf.Observer. buckets is the number
// of distinct band signatures and pairs the number of previously unseen
// candidate pairs the band contributed.
type Observer interface {
	BandDone(band, buckets, pairs int)
}

// Signatures computes the banded signature of every vector, fanning the
// per-vector hashing — the dominant cost of candidate generation, bands·rows
// dot products each — out over up to workers goroutines (≤ 0 means one per
// CPU). The hyperplane family is read-only, so concurrent hashing is safe,
// and sigs[i] depends only on vectors[i]: output is identical for every
// worker count.
func (h *SimHash) Signatures(vectors []embed.Vector, workers int) [][]uint64 {
	sigs := make([][]uint64, len(vectors))
	pool.ForEach(len(vectors), workers, func(i int) {
		sigs[i] = h.Signature(vectors[i])
	})
	return sigs
}

// CandidatePairs hashes all vectors and returns the deduplicated pairs that
// collide in at least one band, in deterministic (sorted) order.
func (h *SimHash) CandidatePairs(vectors []embed.Vector) []Pair {
	return h.CandidatePairsObserved(vectors, nil)
}

// CandidatePairsObserved is CandidatePairs with an optional per-band event
// observer.
func (h *SimHash) CandidatePairsObserved(vectors []embed.Vector, obs Observer) []Pair {
	return h.CandidatePairsParallel(vectors, 1, obs)
}

// CandidatePairsParallel is CandidatePairsObserved with the signature
// computation fanned out over workers goroutines; the banding pass that
// follows stays sequential (it is a hash-bucket scan, cheap relative to
// hashing). Pair output and observer events are identical for every worker
// count.
func (h *SimHash) CandidatePairsParallel(vectors []embed.Vector, workers int, obs Observer) []Pair {
	sigs := h.Signatures(vectors, workers)
	seen := make(map[Pair]struct{})
	buckets := make(map[uint64][]int)
	for b := 0; b < h.bands; b++ {
		clear(buckets)
		for i := range vectors {
			buckets[sigs[i][b]] = append(buckets[sigs[i][b]], i)
		}
		fresh := 0
		for _, members := range buckets {
			for x := 0; x < len(members); x++ {
				for y := x + 1; y < len(members); y++ {
					p := Pair{I: members[x], J: members[y]}
					if _, dup := seen[p]; !dup {
						seen[p] = struct{}{}
						fresh++
					}
				}
			}
		}
		if obs != nil {
			obs.BandDone(b, len(buckets), fresh)
		}
	}
	pairs := make([]Pair, 0, len(seen))
	for p := range seen {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].I != pairs[b].I {
			return pairs[a].I < pairs[b].I
		}
		return pairs[a].J < pairs[b].J
	})
	return pairs
}

// CollisionProbability returns the probability that a pair with cosine
// similarity sim becomes a candidate under the (bands, rows) layout:
// 1 − (1 − p^rows)^bands with p = 1 − arccos(sim)/π.
func CollisionProbability(sim float64, bands, rows int) float64 {
	if sim > 1 {
		sim = 1
	}
	if sim < -1 {
		sim = -1
	}
	p := 1 - math.Acos(sim)/math.Pi
	return 1 - math.Pow(1-math.Pow(p, float64(rows)), float64(bands))
}

// Tune picks a banding layout whose S-curve threshold sits near tau: it
// scans row counts 1..maxRows and band counts 1..maxBands and returns the
// layout minimizing |P(collide at tau) − 0.9| + |P(collide at tau·0.7) −
// 0.1|·0.5, i.e. high recall at the target similarity with candidate volume
// suppressed well below it.
func Tune(tau float64, maxBands, maxRows int) (bands, rows int) {
	bestScore := math.Inf(1)
	bands, rows = 1, 1
	for r := 1; r <= maxRows; r++ {
		for b := 1; b <= maxBands; b++ {
			at := CollisionProbability(tau, b, r)
			below := CollisionProbability(tau*0.7, b, r)
			score := math.Abs(at-0.9) + 0.5*math.Abs(below-0.1)
			if score < bestScore {
				bestScore = score
				bands, rows = b, r
			}
		}
	}
	return bands, rows
}
