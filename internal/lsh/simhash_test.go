package lsh

import (
	"math"
	"math/rand"
	"testing"

	"phocus/internal/embed"
)

func TestSignatureDeterministicAndSelfColliding(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := New(rng, 16, 8, 6)
	v := embed.RandomUnit(rng, 16)
	s1 := h.Signature(v)
	s2 := h.Signature(v)
	if len(s1) != 8 {
		t.Fatalf("signature has %d bands, want 8", len(s1))
	}
	for b := range s1 {
		if s1[b] != s2[b] {
			t.Fatal("Signature not deterministic")
		}
		if s1[b]>>6 != 0 {
			t.Fatalf("band %d uses more than rows bits: %b", b, s1[b])
		}
	}
}

func TestIdenticalVectorsAlwaysCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	h := New(rng, 8, 4, 8)
	v := embed.RandomUnit(rng, 8)
	pairs := h.CandidatePairs([]embed.Vector{v, embed.Clone(v), embed.RandomUnit(rng, 8)})
	found := false
	for _, p := range pairs {
		if p == (Pair{0, 1}) {
			found = true
		}
	}
	if !found {
		t.Error("identical vectors did not collide in any band")
	}
}

func TestCandidatePairsSortedAndDeduped(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := New(rng, 8, 16, 2) // many bands: plenty of duplicate collisions
	vs := make([]embed.Vector, 12)
	for i := range vs {
		vs[i] = embed.RandomUnit(rng, 8)
	}
	pairs := h.CandidatePairs(vs)
	for i, p := range pairs {
		if p.I >= p.J {
			t.Fatalf("pair %v not ordered", p)
		}
		if i > 0 {
			prev := pairs[i-1]
			if prev == p {
				t.Fatalf("duplicate pair %v", p)
			}
			if p.I < prev.I || (p.I == prev.I && p.J < prev.J) {
				t.Fatalf("pairs not sorted: %v after %v", p, prev)
			}
		}
	}
}

// High-similarity pairs must be recalled with high probability while random
// pairs stay mostly uncollided: the core LSH contract the sparsifier relies
// on.
func TestRecallAndFiltering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const dim = 64
	bands, rows := Tune(0.85, 32, 16)
	h := New(rng, dim, bands, rows)

	// 40 clusters of 3 near-duplicates (intra sim ≳ 0.9) plus 80 random
	// singletons.
	var vs []embed.Vector
	type pairKey struct{ i, j int }
	similar := map[pairKey]bool{}
	for c := 0; c < 40; c++ {
		proto := embed.RandomUnit(rng, dim)
		base := len(vs)
		for k := 0; k < 3; k++ {
			// Per-dim noise 0.03 over 64 dims keeps intra-cluster cosine
			// around 0.93, comfortably above the 0.85 threshold.
			vs = append(vs, embed.Perturb(rng, proto, 0.03))
		}
		for a := base; a < base+3; a++ {
			for b := a + 1; b < base+3; b++ {
				if embed.Cosine(vs[a], vs[b]) >= 0.85 {
					similar[pairKey{a, b}] = true
				}
			}
		}
	}
	for k := 0; k < 80; k++ {
		vs = append(vs, embed.RandomUnit(rng, dim))
	}

	pairs := h.CandidatePairs(vs)
	candidate := map[pairKey]bool{}
	for _, p := range pairs {
		candidate[pairKey{p.I, p.J}] = true
	}

	var recalled int
	for k := range similar {
		if candidate[k] {
			recalled++
		}
	}
	if len(similar) == 0 {
		t.Fatal("test setup produced no similar pairs")
	}
	recall := float64(recalled) / float64(len(similar))
	if recall < 0.9 {
		t.Errorf("recall of ≥0.85-similar pairs = %.2f, want ≥ 0.9", recall)
	}

	total := len(vs) * (len(vs) - 1) / 2
	if len(pairs) > total/3 {
		t.Errorf("candidate set has %d of %d pairs; LSH filtered almost nothing", len(pairs), total)
	}
}

func TestCollisionProbability(t *testing.T) {
	// Monotone in similarity.
	prev := -1.0
	for _, s := range []float64{0, 0.25, 0.5, 0.75, 0.9, 1} {
		p := CollisionProbability(s, 8, 8)
		if p < prev {
			t.Errorf("collision probability not monotone at sim %g", s)
		}
		prev = p
	}
	if p := CollisionProbability(1, 4, 4); math.Abs(p-1) > 1e-12 {
		t.Errorf("P(collide | sim=1) = %g, want 1", p)
	}
	// Orthogonal vectors: per-bit agreement 1/2.
	want := 1 - math.Pow(1-math.Pow(0.5, 4), 3)
	if p := CollisionProbability(0, 3, 4); math.Abs(p-want) > 1e-12 {
		t.Errorf("P(collide | sim=0) = %g, want %g", p, want)
	}
	// Out-of-range similarities are clamped rather than NaN.
	if p := CollisionProbability(1.2, 2, 2); math.IsNaN(p) {
		t.Error("CollisionProbability(1.2) is NaN")
	}
}

func TestTune(t *testing.T) {
	bands, rows := Tune(0.8, 32, 16)
	if bands < 1 || rows < 1 {
		t.Fatalf("Tune returned %d bands, %d rows", bands, rows)
	}
	at := CollisionProbability(0.8, bands, rows)
	below := CollisionProbability(0.5, bands, rows)
	if at < 0.7 {
		t.Errorf("tuned layout recalls only %.2f at the target similarity", at)
	}
	if below >= at {
		t.Errorf("tuned layout does not discriminate: P(0.5)=%.2f ≥ P(0.8)=%.2f", below, at)
	}
}

func TestNewPanicsOnBadLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, layout := range [][2]int{{0, 4}, {4, 0}, {4, 65}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) should panic", layout)
				}
			}()
			New(rng, 8, layout[0], layout[1])
		}()
	}
}

// bandRecorder records BandDone events.
type bandRecorder struct {
	bands []int
	pairs int
}

func (b *bandRecorder) BandDone(band, buckets, pairs int) {
	b.bands = append(b.bands, band)
	if buckets <= 0 {
		b.pairs = -1 << 30 // poison: every band has at least one bucket
	}
	b.pairs += pairs
}

// TestCandidatePairsObserved checks the instrumentation hook: one event per
// band in order, and fresh-pair counts summing to the deduplicated total.
func TestCandidatePairsObserved(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := New(rng, 16, 6, 4)
	vectors := make([]embed.Vector, 25)
	for i := range vectors {
		vectors[i] = embed.RandomUnit(rng, 16)
	}
	var rec bandRecorder
	pairs := h.CandidatePairsObserved(vectors, &rec)
	if len(rec.bands) != h.Bands() {
		t.Fatalf("got %d band events, want %d", len(rec.bands), h.Bands())
	}
	for i, b := range rec.bands {
		if b != i {
			t.Errorf("band event %d reported band %d, want in-order", i, b)
		}
	}
	if rec.pairs != len(pairs) {
		t.Errorf("fresh-pair events sum to %d, want %d deduplicated pairs", rec.pairs, len(pairs))
	}
	// The unobserved path returns the identical pair set.
	plain := h.CandidatePairs(vectors)
	if len(plain) != len(pairs) {
		t.Fatalf("observed %d pairs vs plain %d", len(pairs), len(plain))
	}
	for i := range plain {
		if plain[i] != pairs[i] {
			t.Fatalf("pair %d differs: %v vs %v", i, plain[i], pairs[i])
		}
	}
}
