package gfl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"phocus/internal/par"
)

// randomSolution draws a random photo subset (budget irrelevant to F/G).
func randomSolution(rng *rand.Rand, n int) []par.PhotoID {
	var s []par.PhotoID
	for p := 0; p < n; p++ {
		if rng.Intn(2) == 0 {
			s = append(s, par.PhotoID(p))
		}
	}
	return s
}

func TestFigure2Shape(t *testing.T) {
	inst := par.Figure1Instance()
	g := FromPAR(inst)
	// T_R = Σ |q| = 3 + 3 + 1 + 2 = 9 right nodes (Figure 2 shows them).
	if got := len(g.Right); got != 9 {
		t.Fatalf("|T_R| = %d, want 9", got)
	}
	// W_R = Σ W(q)·R(q,p) = Σ W(q) = 14 because relevance sums to 1.
	if got := g.TotalRightWeight(); math.Abs(got-14) > 1e-9 {
		t.Errorf("W_R = %g, want 14", got)
	}
	// Edge count: per subset, self edges |q| plus 2 per positive pair.
	// q1: 3 + 2·3 = 9; q2: 3 + 2·3 = 9; q3: 1; q4: 2 + 2·1 = 4. Total 23.
	if got := g.NumEdges(); got != 23 {
		t.Errorf("NumEdges = %d, want 23", got)
	}
	if g.Budget != inst.Budget {
		t.Errorf("budget %g, want %g", g.Budget, inst.Budget)
	}
}

// Property (Example 4.7): F over the GFL formulation equals G over the PAR
// instance for every photo subset.
func TestEquivalenceQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := par.Random(rng, par.RandomConfig{Photos: 12, Subsets: 6})
		g := FromPAR(inst)
		for trial := 0; trial < 5; trial++ {
			s := randomSolution(rng, 12)
			if math.Abs(g.Value(s)-par.Score(inst, s)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCost(t *testing.T) {
	inst := par.Figure1Instance()
	g := FromPAR(inst)
	if got := g.Cost([]par.PhotoID{0, 5, 1}); math.Abs(got-3.0) > 1e-9 {
		t.Errorf("Cost = %g, want 3.0", got)
	}
}

func TestSparsifyKeepsSelfEdges(t *testing.T) {
	inst := par.Figure1Instance()
	g := FromPAR(inst)
	s := g.Sparsify(2) // τ > 1 removes every cross edge
	// Only self edges remain: one per right node.
	if got := s.NumEdges(); got != 9 {
		t.Errorf("NumEdges after τ=2 sparsification = %d, want 9 self edges", got)
	}
	// Every photo still fully covers itself.
	all := []par.PhotoID{0, 1, 2, 3, 4, 5, 6}
	if got := s.Value(all); math.Abs(got-14) > 1e-9 {
		t.Errorf("Value(P) on fully sparsified graph = %g, want 14", got)
	}
}

func TestSparsifyThreshold(t *testing.T) {
	inst := par.Figure1Instance()
	g := FromPAR(inst)
	s := g.Sparsify(0.6)
	// Surviving cross edges: all pairs with SIM ≥ 0.6 — q1: (p1,p2)=0.7,
	// (p1,p3)=0.8; q2: (p4,p5)=0.7, (p5,p6)=0.7; q4: (p6,p7)=0.7. That is
	// 5 pairs × 2 directed edges + 9 self edges = 19.
	if got := s.NumEdges(); got != 19 {
		t.Errorf("NumEdges after τ=0.6 = %d, want 19", got)
	}
	// Dropped edge (p2,p3)=0.5 lowers the value of {p2} as a cover of q1.
	v := s.Value([]par.PhotoID{1})
	// q1 via p2: p1 gets 0.7, p2 gets 1, p3 gets 0 (edge dropped).
	want := 9 * (0.5*0.7 + 0.3*1 + 0.2*0)
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("Value({p2}) = %g, want %g", v, want)
	}
	// The unsparsified graph keeps the 0.5 edge.
	vFull := g.Value([]par.PhotoID{1})
	wantFull := 9 * (0.5*0.7 + 0.3*1 + 0.2*0.5)
	if math.Abs(vFull-wantFull) > 1e-9 {
		t.Errorf("full Value({p2}) = %g, want %g", vFull, wantFull)
	}
}

// Property: sparsification never increases F and τ=0 is the identity.
func TestSparsifyMonotoneQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := par.Random(rng, par.RandomConfig{Photos: 10, Subsets: 5})
		g := FromPAR(inst)
		s := randomSolution(rng, 10)
		v0 := g.Value(s)
		if math.Abs(g.Sparsify(0).Value(s)-v0) > 1e-12 {
			return false
		}
		prev := v0
		for _, tau := range []float64{0.25, 0.5, 0.75, 1.01} {
			v := g.Sparsify(tau).Value(s)
			if v > prev+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
