// Package gfl implements the Generalized Facility Location formulation of
// PAR from Section 4.3 of the paper (Figure 2), which the sparsification
// error bound (Theorem 4.8) is stated over.
//
// A GFL instance is a weighted bipartite graph: the left nodes T_L are the
// photos (node weight = storage cost), the right nodes T_R are the
// (subset, member) pairs (node weight = W(q)·R(q,p)), and an edge connects
// photo p1 to node (q, p2) with weight SIM(q, p1, p2) whenever both photos
// belong to q. The objective of a left subset S is
//
//	F(S) = Σ_{(q,p) ∈ T_R} w_R(q,p) · maxEdge(S, (q,p))
//
// subject to Σ_{p∈S} w_L(p) ≤ B. With all node weights 1 this is the
// classic (budgeted) Facility Location problem. FromPAR converts a PAR
// instance; Value(S) equals the PAR objective G(S) exactly, which the tests
// verify — it is the equivalence the paper's Example 4.7 asserts.
package gfl

import (
	"phocus/internal/par"
)

// RightNode is one element of T_R: the member Index-th photo of subset Q,
// carrying weight W(q)·R(q,p).
type RightNode struct {
	Subset int
	Index  int
	Photo  par.PhotoID // the member photo p of the pair (q, p)
	Weight float64
}

// Edge connects a left photo to a right node with the similarity weight.
type Edge struct {
	Photo  par.PhotoID
	Right  int // index into Graph.Right
	Weight float64
}

// Graph is the bipartite GFL instance.
type Graph struct {
	// LeftWeights holds w_L(p) = C(p) per photo.
	LeftWeights []float64
	// Right lists T_R.
	Right []RightNode
	// EdgesByPhoto indexes, for each photo, its incident edges.
	EdgesByPhoto [][]Edge
	// Budget bounds Σ w_L over the chosen left nodes.
	Budget float64
}

// FromPAR builds the GFL formulation of a finalized PAR instance. Only
// edges of positive weight are materialized (zero-weight edges never affect
// the max in F). Self-edges (p to (q,p)) always have weight 1.
func FromPAR(inst *par.Instance) *Graph {
	g := &Graph{
		LeftWeights:  inst.Cost,
		EdgesByPhoto: make([][]Edge, inst.NumPhotos()),
		Budget:       inst.Budget,
	}
	// Right nodes in subset-major order; remember each subset's offset.
	offsets := make([]int, len(inst.Subsets))
	for qi := range inst.Subsets {
		q := &inst.Subsets[qi]
		offsets[qi] = len(g.Right)
		for mi, p := range q.Members {
			g.Right = append(g.Right, RightNode{
				Subset: qi,
				Index:  mi,
				Photo:  p,
				Weight: q.Weight * q.Relevance[mi],
			})
		}
	}
	for qi := range inst.Subsets {
		q := &inst.Subsets[qi]
		for mi, p := range q.Members {
			if nl, ok := q.Sim.(par.NeighborLister); ok {
				for _, nb := range nl.Neighbors(mi) {
					g.EdgesByPhoto[p] = append(g.EdgesByPhoto[p], Edge{
						Photo:  p,
						Right:  offsets[qi] + nb.Index,
						Weight: nb.Sim,
					})
				}
				continue
			}
			for mj := range q.Members {
				if w := q.Sim.Sim(mi, mj); w > 0 {
					g.EdgesByPhoto[p] = append(g.EdgesByPhoto[p], Edge{
						Photo:  p,
						Right:  offsets[qi] + mj,
						Weight: w,
					})
				}
			}
		}
	}
	return g
}

// Value computes F(S) for a set of left nodes (photos).
func (g *Graph) Value(s []par.PhotoID) float64 {
	best := make([]float64, len(g.Right))
	for _, p := range s {
		for _, e := range g.EdgesByPhoto[p] {
			if e.Weight > best[e.Right] {
				best[e.Right] = e.Weight
			}
		}
	}
	var total float64
	for ri, b := range best {
		total += g.Right[ri].Weight * b
	}
	return total
}

// Cost returns Σ w_L over the chosen photos.
func (g *Graph) Cost(s []par.PhotoID) float64 {
	var total float64
	for _, p := range s {
		total += g.LeftWeights[p]
	}
	return total
}

// TotalRightWeight returns W_R = Σ_{(q,p)∈T_R} w_R(q,p), the constant of
// Theorem 4.8.
func (g *Graph) TotalRightWeight() float64 {
	var total float64
	for _, r := range g.Right {
		total += r.Weight
	}
	return total
}

// NumEdges returns the number of materialized (positive-weight) edges; the
// sparsification experiments report how τ shrinks it.
func (g *Graph) NumEdges() int {
	var n int
	for _, es := range g.EdgesByPhoto {
		n += len(es)
	}
	return n
}

// Sparsify returns a copy of the graph that keeps only edges of weight ≥ τ
// plus all self-edges (a photo always fully covers its own right nodes, as
// the paper's τ-sparsification keeps the diagonal intact).
func (g *Graph) Sparsify(tau float64) *Graph {
	out := &Graph{
		LeftWeights:  g.LeftWeights,
		Right:        g.Right,
		EdgesByPhoto: make([][]Edge, len(g.EdgesByPhoto)),
		Budget:       g.Budget,
	}
	for p, es := range g.EdgesByPhoto {
		for _, e := range es {
			if e.Weight >= tau || g.Right[e.Right].Photo == e.Photo {
				out.EdgesByPhoto[p] = append(out.EdgesByPhoto[p], e)
			}
		}
	}
	return out
}
