package fleet

import (
	"fmt"
	"testing"
)

// TestRingGoldenOwners pins concrete placements so any change to the hash,
// the point labels, or the search is caught as the fleet-wide remap it
// would be. These values must never change within ring v1: every process
// in a fleet relies on recomputing exactly them.
func TestRingGoldenOwners(t *testing.T) {
	r, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Golden values captured from the v1 implementation.
	want := map[string]int{
		"default":  0,
		"tenant-0": 2,
		"tenant-1": 0,
		"tenant-2": 1,
		"alice":    0,
		"bob":      2,
	}
	for tenant, w := range want {
		if got := r.Owner(tenant); got != w {
			t.Errorf("tenant %q: owner %d, want %d", tenant, got, w)
		}
	}
	r5, err := NewRing(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	for tenant, w := range map[string]int{"default": 0, "tenant-42": 0} {
		if got := r5.Owner(tenant); got != w {
			t.Errorf("n=5 tenant %q: owner %d, want %d", tenant, got, w)
		}
	}
	// Cross-process determinism: a freshly built identical ring (as a
	// router or another shard would build) agrees on every tenant.
	r2, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		tenant := fmt.Sprintf("tenant-%d", i)
		if a, b := r.Owner(tenant), r2.Owner(tenant); a != b {
			t.Fatalf("tenant %q: ring instances disagree (%d vs %d)", tenant, a, b)
		}
	}
}

// TestRingOwnersInRange checks every owner is a valid shard index across a
// spread of fleet sizes.
func TestRingOwnersInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16} {
		r, err := NewRing(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			if o := r.Owner(fmt.Sprintf("t%d", i)); o < 0 || o >= n {
				t.Fatalf("n=%d: owner %d out of range", n, o)
			}
		}
	}
}

// TestRingUniformity places 10k tenants on fleets of several sizes and
// bounds the skew: with 160 virtual nodes per shard, no shard should carry
// more than ~1.5x the mean nor less than half of it.
func TestRingUniformity(t *testing.T) {
	const tenants = 10000
	for _, n := range []int{2, 3, 5, 8} {
		r, err := NewRing(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, n)
		for i := 0; i < tenants; i++ {
			counts[r.Owner(fmt.Sprintf("tenant-%d", i))]++
		}
		mean := float64(tenants) / float64(n)
		for shard, c := range counts {
			if f := float64(c); f > 1.5*mean || f < 0.5*mean {
				t.Errorf("n=%d shard %d: %d tenants, mean %.0f (skew out of [0.5, 1.5]x)", n, shard, c, mean)
			}
		}
	}
}

// TestRingMinimalMovement resizes N -> N+1 and checks consistent hashing's
// defining property: only about K/(N+1) tenants move, and every tenant
// that moves lands on the NEW shard (an old->old move would mean the ring
// reshuffled rather than split).
func TestRingMinimalMovement(t *testing.T) {
	const tenants = 10000
	for _, n := range []int{2, 3, 4, 7} {
		before, err := NewRing(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		after, err := NewRing(n+1, 0)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for i := 0; i < tenants; i++ {
			tenant := fmt.Sprintf("tenant-%d", i)
			a, b := before.Owner(tenant), after.Owner(tenant)
			if a == b {
				continue
			}
			moved++
			if b != n {
				t.Fatalf("n=%d->%d: tenant %q moved shard %d -> %d, not to the new shard", n, n+1, tenant, a, b)
			}
		}
		// Expected movement is tenants/(n+1); allow 2x slack for hash noise.
		if bound := 2 * tenants / (n + 1); moved > bound {
			t.Errorf("n=%d->%d: %d tenants moved, want <= ~%d", n, n+1, moved, bound)
		}
		if moved == 0 {
			t.Errorf("n=%d->%d: no tenant moved; the new shard owns nothing", n, n+1)
		}
	}
}

// TestRingRejectsBadSizes covers the constructor's validation.
func TestRingRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := NewRing(n, 0); err == nil {
			t.Errorf("NewRing(%d) succeeded, want error", n)
		}
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r, err := NewRing(8, 0)
	if err != nil {
		b.Fatal(err)
	}
	tenants := make([]string, 256)
	for i := range tenants {
		tenants[i] = fmt.Sprintf("tenant-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owner(tenants[i%len(tenants)])
	}
}
