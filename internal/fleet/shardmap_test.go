package fleet

import (
	"strings"
	"testing"
)

func TestNewShardMap(t *testing.T) {
	m, err := NewShardMap(1, []string{"http://a:8080", "http://b:8080/", " http://c:8080 "})
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 3 {
		t.Fatalf("N() = %d, want 3", m.N())
	}
	if got := m.URL(1); got != "http://b:8080" {
		t.Errorf("URL(1) = %q, want trailing slash trimmed", got)
	}
	if got := m.URL(2); got != "http://c:8080" {
		t.Errorf("URL(2) = %q, want whitespace trimmed", got)
	}
	if len(m.Fingerprint()) != 12 {
		t.Errorf("fingerprint %q, want 12 hex chars", m.Fingerprint())
	}
	if got := m.HeaderValue(); got != "1/3@"+m.Fingerprint() {
		t.Errorf("HeaderValue() = %q", got)
	}
	router, err := NewShardMap(-1, m.URLs())
	if err != nil {
		t.Fatal(err)
	}
	if got := router.HeaderValue(); got != "fleet/3@"+m.Fingerprint() {
		t.Errorf("router HeaderValue() = %q", got)
	}
	// Same URL list => same fingerprint and same placement, regardless of Self.
	if router.Fingerprint() != m.Fingerprint() {
		t.Error("fingerprint differs between shard and router maps of the same fleet")
	}
	for _, tenant := range []string{"default", "alice", "tenant-99"} {
		if a, b := m.Owner(tenant), router.Owner(tenant); a != b {
			t.Errorf("tenant %q: shard map says %d, router map says %d", tenant, a, b)
		}
		if m.Owns(tenant) != (m.Owner(tenant) == 1) {
			t.Errorf("Owns(%q) inconsistent with Owner", tenant)
		}
		if router.Owns(tenant) {
			t.Errorf("router (Self=-1) claims to own %q", tenant)
		}
	}
}

func TestNewShardMapRejects(t *testing.T) {
	cases := []struct {
		name string
		self int
		urls []string
	}{
		{"empty", 0, nil},
		{"self out of range", 3, []string{"http://a", "http://b"}},
		{"self too negative", -2, []string{"http://a"}},
		{"relative URL", 0, []string{"a:8080"}},
		{"bad scheme", 0, []string{"ftp://a:8080"}},
		{"no host", 0, []string{"http://"}},
	}
	for _, tc := range cases {
		if _, err := NewShardMap(tc.self, tc.urls); err == nil {
			t.Errorf("%s: NewShardMap succeeded, want error", tc.name)
		}
	}
}

func TestFingerprintTracksTopology(t *testing.T) {
	a, _ := NewShardMap(0, []string{"http://a:1", "http://b:2"})
	b, _ := NewShardMap(0, []string{"http://b:2", "http://a:1"})
	c, _ := NewShardMap(0, []string{"http://a:1", "http://b:2", "http://c:3"})
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("reordered shard list kept the same fingerprint")
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("grown shard list kept the same fingerprint")
	}
}

func TestParseShardSpec(t *testing.T) {
	for _, tc := range []struct {
		spec    string
		self, n int
		ok      bool
	}{
		{"0/3", 0, 3, true},
		{"2/3", 2, 3, true},
		{"1", 1, 0, true},
		{"0", 0, 0, true},
		{"3/3", 0, 0, false},
		{"-1/3", 0, 0, false},
		{"a/3", 0, 0, false},
		{"1/0", 0, 0, false},
		{"", 0, 0, false},
		{"1/x", 0, 0, false},
	} {
		self, n, err := ParseShardSpec(tc.spec)
		if tc.ok != (err == nil) {
			t.Errorf("ParseShardSpec(%q): err=%v, want ok=%v", tc.spec, err, tc.ok)
			continue
		}
		if tc.ok && (self != tc.self || n != tc.n) {
			t.Errorf("ParseShardSpec(%q) = (%d, %d), want (%d, %d)", tc.spec, self, n, tc.self, tc.n)
		}
	}
}

func TestSplitPeers(t *testing.T) {
	urls, err := SplitPeers("http://a:1, http://b:2 ,http://c:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(urls) != 3 || urls[1] != "http://b:2" {
		t.Fatalf("SplitPeers = %v", urls)
	}
	for _, bad := range []string{"", "  ", "http://a,,http://b", "http://a,"} {
		if _, err := SplitPeers(bad); err == nil {
			t.Errorf("SplitPeers(%q) succeeded, want error", bad)
		}
	}
}

func TestParseShardMapFile(t *testing.T) {
	const file = `
# the phocus fleet
http://a:8080

0 is not an index here because the next lines use plain URLs
`
	if _, err := ParseShardMap(strings.NewReader(file)); err == nil {
		t.Error("malformed line accepted")
	}

	good := `# fleet
http://a:8080
http://b:8080/
http://c:8080
`
	urls, err := ParseShardMap(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(urls) != 3 {
		t.Fatalf("got %d urls, want 3", len(urls))
	}

	indexed := `0 http://a:8080
1 http://b:8080
2 http://c:8080
`
	urls, err = ParseShardMap(strings.NewReader(indexed))
	if err != nil {
		t.Fatal(err)
	}
	if len(urls) != 3 || urls[2] != "http://c:8080" {
		t.Fatalf("indexed form parsed to %v", urls)
	}

	outOfOrder := `0 http://a:8080
2 http://c:8080
`
	if _, err := ParseShardMap(strings.NewReader(outOfOrder)); err == nil {
		t.Error("out-of-order indices accepted; a hand-edit just renumbered the fleet")
	}

	if _, err := ParseShardMap(strings.NewReader("# only comments\n")); err == nil {
		t.Error("empty shard map accepted")
	}
}

// FuzzParseShardMap feeds arbitrary bytes through the shard-map parser: it
// must never panic, and whatever it accepts must round-trip into a valid
// ShardMap.
func FuzzParseShardMap(f *testing.F) {
	f.Add("http://a:8080\nhttp://b:8080\n")
	f.Add("# comment\n\n0 http://a:8080\n1 http://b:8080\n")
	f.Add("2 http://c\n")
	f.Add("ftp://nope\n")
	f.Add("0\n")
	f.Add(strings.Repeat("http://a:8080\n", 100))
	f.Fuzz(func(t *testing.T, input string) {
		urls, err := ParseShardMap(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(urls) == 0 {
			t.Fatal("accepted a shard map with no shards")
		}
		if _, err := NewShardMap(0, urls); err != nil {
			t.Fatalf("parser accepted %q but NewShardMap rejects: %v", input, err)
		}
	})
}

func TestValidTenant(t *testing.T) {
	for _, ok := range []string{"default", "a", "tenant-0", "A.B_c-9", strings.Repeat("x", 64)} {
		if !ValidTenant(ok) {
			t.Errorf("ValidTenant(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", "-lead", ".lead", "_lead", "has space", "sla/sh", "émoji", strings.Repeat("x", 65)} {
		if ValidTenant(bad) {
			t.Errorf("ValidTenant(%q) = true, want false", bad)
		}
	}
}
