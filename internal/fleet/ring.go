// Package fleet is the multi-tenant sharding layer: a consistent-hash ring
// that assigns tenants to phocus-server shards, the static shard map the
// fleet is configured from, per-tenant admission quotas, and the
// scatter-gather router that fronts N shards as one service.
//
// The design follows the single-node → sharded-fleet evolution of
// production photo systems (Gusev & Xu 2022): placement is tenant-scoped
// and static (a shard map file or -shard i/N + -peers flags), the ring is
// ketama-style so resizing the fleet moves only ~K/N tenants, and every
// fleet-wide read degrades to partial results instead of failing when a
// shard is down.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultTenant is the tenant assigned to requests (and replayed
// pre-tenancy WAL records) that do not name one.
const DefaultTenant = "default"

// DefaultReplicas is the virtual-node count per shard on the ring. 160
// points per shard (ketama's classic choice) keeps the max/mean shard load
// within ~15% at 10k tenants while the ring stays a few KB.
const DefaultReplicas = 160

// Ring is a ketama-style consistent-hash ring mapping tenant IDs to shard
// indices [0, N). Placement is a pure function of (tenant, N, replicas):
// every process that builds a ring with the same parameters computes the
// same owners, which is what lets the router, every shard, and the load
// generator agree on placement without coordination. Hashes come from
// sha256, so owners are stable across Go versions and architectures.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	hashes []uint64 // sorted point positions
	owners []int    // owners[i] = shard owning hashes[i]
	shards int
}

// NewRing builds the ring for n shards with the given virtual-node count
// per shard (replicas ≤ 0 = DefaultReplicas). n must be positive.
func NewRing(n, replicas int) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one shard, got %d", n)
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	type point struct {
		hash  uint64
		shard int
	}
	points := make([]point, 0, n*replicas)
	for shard := 0; shard < n; shard++ {
		for rep := 0; rep < replicas; rep++ {
			// The point label is versioned: changing it would silently remap
			// every tenant in the fleet, so it never changes within v1.
			label := fmt.Sprintf("phocus/ring/v1|shard=%d|replica=%d", shard, rep)
			points = append(points, point{hash: hash64(label), shard: shard})
		}
	}
	sort.Slice(points, func(a, b int) bool {
		if points[a].hash != points[b].hash {
			return points[a].hash < points[b].hash
		}
		// Ties (vanishingly rare with 64-bit hashes) break on the shard
		// index so the ring is still a deterministic function of (n, replicas).
		return points[a].shard < points[b].shard
	})
	r := &Ring{
		hashes: make([]uint64, len(points)),
		owners: make([]int, len(points)),
		shards: n,
	}
	for i, p := range points {
		r.hashes[i] = p.hash
		r.owners[i] = p.shard
	}
	return r, nil
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard index owning the tenant: the first ring point at
// or clockwise of the tenant's hash (wrapping past the top).
func (r *Ring) Owner(tenant string) int {
	h := hash64("phocus/tenant/v1|" + tenant)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.owners[i]
}

// hash64 is the ring's stable hash: the first 8 bytes of sha256, big-endian.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
