package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"phocus/internal/obs"
)

// Router fronts a fleet of phocus-server shards as one HTTP service.
// Tenant-keyed writes (POST /solve, POST /jobs, POST /instances/{fp}/delta)
// are forwarded verbatim to the tenant's owning shard — the response,
// including its X-Phocus-Shard header, streams back untouched, so a solve
// through the router is byte-identical to solving on the shard directly.
// Fleet-wide reads (GET /jobs, /slo, /stats) scatter to every shard under a
// per-shard timeout and gather what answered: a down shard degrades the
// result (flagged in the "fleet" envelope) instead of failing it. By-ID job
// operations fan out to all shards and relay the one shard that knows the
// ID.
type Router struct {
	shards  *ShardMap
	client  *http.Client
	timeout time.Duration
	reg     *obs.Registry
	logger  *slog.Logger
	labels  *LabelGuard
}

// RouterOptions configures NewRouter.
type RouterOptions struct {
	// Map is the fleet topology (required; Self is ignored — a router owns
	// no tenants).
	Map *ShardMap
	// Timeout bounds each shard's share of a scatter-gather read
	// (≤ 0 = 5s). Tenant-keyed forwards are NOT subject to it: a long solve
	// is bounded by the shard's own -solve-timeout, not the router.
	Timeout time.Duration
	// Client issues the upstream requests (nil = a default with sane
	// keep-alive limits).
	Client *http.Client
	// Metrics receives the phocus_router_* series (nil = private registry).
	Metrics *obs.Registry
	// Logger receives forward/scatter failures (nil = discard).
	Logger *slog.Logger
}

// NewRouter validates the options and builds the router.
func NewRouter(opts RouterOptions) (*Router, error) {
	if opts.Map == nil {
		return nil, fmt.Errorf("fleet: router needs a shard map")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 5 * time.Second
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Router{
		shards:  opts.Map,
		client:  opts.Client,
		timeout: opts.Timeout,
		reg:     opts.Metrics,
		logger:  opts.Logger,
		labels:  NewLabelGuard(0),
	}, nil
}

// Metrics returns the registry the router records into.
func (rt *Router) Metrics() *obs.Registry { return rt.reg }

// Handler builds the router's HTTP API. The surface mirrors
// phocus-server's, so clients point at the router without changes.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", rt.forwardTenant)
	mux.HandleFunc("POST /jobs", rt.forwardTenant)
	mux.HandleFunc("POST /instances/{fp}/delta", rt.forwardTenant)
	mux.HandleFunc("GET /jobs", rt.gatherJobs)
	mux.HandleFunc("GET /jobs/{id}", rt.anyShard)
	mux.HandleFunc("GET /jobs/{id}/result", rt.anyShard)
	mux.HandleFunc("GET /jobs/{id}/trace", rt.anyShard)
	mux.HandleFunc("DELETE /jobs/{id}", rt.anyShard)
	mux.HandleFunc("GET /slo", func(w http.ResponseWriter, r *http.Request) { rt.gatherWrapped(w, r, "/slo") })
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) { rt.gatherWrapped(w, r, "/stats") })
	// The router's own endpoints stamp the fleet identity; forwarded
	// responses instead relay the owning shard's header verbatim, which is
	// how a client learns where a tenant actually landed.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(ShardHeader, rt.shards.HeaderValue())
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(ShardHeader, rt.shards.HeaderValue())
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := rt.reg.WritePrometheus(w); err != nil {
			rt.logger.Error("write metrics", "err", err)
		}
	})
	return mux
}

// forwardTenant routes one tenant-keyed request to its owning shard and
// relays the response verbatim.
func (rt *Router) forwardTenant(w http.ResponseWriter, r *http.Request) {
	tenant, err := TenantFromRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	shard := rt.shards.Owner(tenant)
	rt.reg.Counter("phocus_router_forwarded_total",
		"shard", fmt.Sprint(shard), "tenant", rt.labels.Label(tenant)).Inc()

	out, err := http.NewRequestWithContext(r.Context(), r.Method,
		rt.shards.URL(shard)+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	copyHeader(out.Header, r.Header)
	// Pin the resolved tenant so the shard's ownership check sees exactly
	// what the router routed on, even when the client used the query param.
	out.Header.Set(TenantHeader, tenant)
	out.ContentLength = r.ContentLength

	resp, err := rt.client.Do(out)
	if err != nil {
		rt.shardError(shard, err)
		http.Error(w, fmt.Sprintf("shard %d unreachable: %v", shard, err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	relay(w, resp)
}

// anyShard fans a by-ID operation out to every shard and relays the one
// response that is not a 404 — job IDs are random 16-hex strings, so at
// most one shard knows any given ID. All-404 means the ID is truly unknown
// (404); a 404-everywhere answer with some shards unreachable is reported
// as 502, because the ID may well live on a shard that did not answer.
func (rt *Router) anyShard(w http.ResponseWriter, r *http.Request) {
	results := rt.scatter(r.Context(), r.Method, r.URL.RequestURI(), r.Header)
	var failed []int
	for _, res := range results {
		if res.err != nil {
			failed = append(failed, res.shard)
			continue
		}
		if res.resp.StatusCode != http.StatusNotFound {
			defer res.resp.Body.Close()
			relay(w, res.resp)
			// Drain the remaining bodies so connections go back to the pool.
			for _, other := range results {
				if other.resp != nil && other.resp != res.resp {
					drain(other.resp)
				}
			}
			return
		}
		drain(res.resp)
	}
	if len(failed) > 0 {
		rt.reg.Counter("phocus_router_scatter_partial_total").Inc()
		http.Error(w, fmt.Sprintf("not found on %d reachable shards; shards %v unreachable",
			len(results)-len(failed), failed), http.StatusBadGateway)
		return
	}
	http.Error(w, "no shard knows this ID", http.StatusNotFound)
}

// fleetMeta is the degradation envelope on every gathered response.
type fleetMeta struct {
	Shards      int    `json:"shards"`
	Responded   []int  `json:"responded"`
	Failed      []int  `json:"failed,omitempty"`
	Degraded    bool   `json:"degraded"`
	Fingerprint string `json:"map_fingerprint"`
}

// gatherJobs merges GET /jobs across the fleet: each shard is asked for
// the first offset+limit jobs (its own listing is submission-ordered), the
// union is re-sorted by submission time, and the requested page is sliced
// out of the merge. Totals are summed over the shards that answered; a
// shard that did not answer degrades the listing instead of failing it.
func (rt *Router) gatherJobs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	offset, err := gatherInt(q.Get("offset"), 0)
	if err != nil {
		http.Error(w, fmt.Sprintf("invalid offset %q: want a non-negative integer", q.Get("offset")), http.StatusBadRequest)
		return
	}
	limit, err := gatherInt(q.Get("limit"), 100)
	if err != nil {
		http.Error(w, fmt.Sprintf("invalid limit %q: want a non-negative integer", q.Get("limit")), http.StatusBadRequest)
		return
	}
	// Each shard must contribute its first offset+limit jobs for the merged
	// page to be exact.
	perShard := q
	perShard.Set("offset", "0")
	perShard.Set("limit", fmt.Sprint(offset+limit))
	results := rt.scatter(r.Context(), http.MethodGet, "/jobs?"+perShard.Encode(), r.Header)

	type shardJob struct {
		submittedAt string
		id          string
		doc         map[string]any
	}
	var merged []shardJob
	total := 0
	meta := rt.newMeta()
	for _, res := range results {
		doc, ok := rt.gatherJSON(res, &meta)
		if !ok {
			continue
		}
		var page struct {
			Total int               `json:"total"`
			Jobs  []json.RawMessage `json:"jobs"`
		}
		if err := json.Unmarshal(doc, &page); err != nil {
			rt.shardError(res.shard, err)
			meta.fail(res.shard)
			continue
		}
		total += page.Total
		for _, raw := range page.Jobs {
			var m map[string]any
			if err := json.Unmarshal(raw, &m); err != nil {
				continue
			}
			m["shard"] = res.shard
			sub, _ := m["submitted_at"].(string)
			id, _ := m["id"].(string)
			merged = append(merged, shardJob{submittedAt: sub, id: id, doc: m})
		}
	}
	meta.finish()
	// RFC 3339 timestamps sort lexically; the ID tie-break keeps the order
	// stable when two shards admitted jobs in the same instant.
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].submittedAt != merged[b].submittedAt {
			return merged[a].submittedAt < merged[b].submittedAt
		}
		return merged[a].id < merged[b].id
	})
	if offset > len(merged) {
		offset = len(merged)
	}
	end := offset + limit
	if end > len(merged) {
		end = len(merged)
	}
	page := make([]map[string]any, 0, end-offset)
	for _, sj := range merged[offset:end] {
		page = append(page, sj.doc)
	}
	rt.writeGathered(w, meta, map[string]any{
		"total":  total,
		"offset": offset,
		"count":  len(page),
		"jobs":   page,
		"fleet":  meta,
	})
}

// gatherWrapped scatters a read-only endpoint and wraps the per-shard
// documents unmerged: {"fleet": {...}, "shards": {"0": {...}, ...}}. For
// /slo the envelope also carries the worst per-shard status so dashboards
// need not dig.
func (rt *Router) gatherWrapped(w http.ResponseWriter, r *http.Request, path string) {
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	results := rt.scatter(r.Context(), http.MethodGet, path, r.Header)
	meta := rt.newMeta()
	shards := make(map[string]json.RawMessage, len(results))
	worst := ""
	for _, res := range results {
		doc, ok := rt.gatherJSON(res, &meta)
		if !ok {
			continue
		}
		shards[fmt.Sprint(res.shard)] = doc
		var status struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(doc, &status); err == nil {
			worst = worstStatus(worst, status.Status)
		}
	}
	meta.finish()
	out := map[string]any{"fleet": meta, "shards": shards}
	if worst != "" {
		out["status"] = worst
	}
	rt.writeGathered(w, meta, out)
}

// handleReadyz reports fleet readiness: 200 while at least one shard
// answers its own /readyz with 200 (degraded service beats no service);
// 503 once none does.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set(ShardHeader, rt.shards.HeaderValue())
	results := rt.scatter(r.Context(), http.MethodGet, "/readyz", nil)
	ready := 0
	for _, res := range results {
		if res.err == nil {
			if res.resp.StatusCode == http.StatusOK {
				ready++
			}
			drain(res.resp)
		}
	}
	if ready == 0 {
		http.Error(w, "no shard ready", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintf(w, "ok (%d/%d shards ready)\n", ready, rt.shards.N())
}

// shardResult is one shard's answer to a scatter.
type shardResult struct {
	shard int
	resp  *http.Response
	err   error
}

// scatter issues the request to every shard concurrently under the
// per-shard timeout and returns the results ordered by shard index.
func (rt *Router) scatter(ctx context.Context, method, pathQuery string, hdr http.Header) []shardResult {
	ctx, cancel := context.WithTimeout(ctx, rt.timeout)
	// cancel after all bodies are consumed; the results carry live bodies,
	// so the deferred cancel must not fire before callers read them. The
	// timeout itself still bounds every in-flight request.
	_ = cancel
	results := make([]shardResult, rt.shards.N())
	var wg sync.WaitGroup
	for i := 0; i < rt.shards.N(); i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, method, rt.shards.URL(shard)+pathQuery, nil)
			if err != nil {
				results[shard] = shardResult{shard: shard, err: err}
				return
			}
			if hdr != nil {
				copyHeader(req.Header, hdr)
			}
			resp, err := rt.client.Do(req)
			results[shard] = shardResult{shard: shard, resp: resp, err: err}
		}(i)
	}
	wg.Wait()
	return results
}

// gatherMeta accumulates the degradation envelope while a gather consumes
// shard results.
type gatherMeta struct {
	fleetMeta
	rt *Router
}

func (rt *Router) newMeta() gatherMeta {
	return gatherMeta{fleetMeta: fleetMeta{
		Shards:      rt.shards.N(),
		Responded:   []int{},
		Fingerprint: rt.shards.Fingerprint(),
	}, rt: rt}
}

func (m *gatherMeta) fail(shard int) {
	for _, f := range m.Failed {
		if f == shard {
			return
		}
	}
	m.Failed = append(m.Failed, shard)
}

func (m *gatherMeta) finish() {
	m.Degraded = len(m.Failed) > 0
	if m.Degraded {
		m.rt.reg.Counter("phocus_router_scatter_partial_total").Inc()
	}
}

// gatherJSON folds one scatter result into the meta and returns its body
// when the shard answered 200.
func (rt *Router) gatherJSON(res shardResult, meta *gatherMeta) (json.RawMessage, bool) {
	if res.err != nil {
		rt.shardError(res.shard, res.err)
		meta.fail(res.shard)
		return nil, false
	}
	defer res.resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(res.resp.Body, 64<<20))
	if err != nil || res.resp.StatusCode != http.StatusOK {
		if err == nil {
			err = fmt.Errorf("status %d", res.resp.StatusCode)
		}
		rt.shardError(res.shard, err)
		meta.fail(res.shard)
		return nil, false
	}
	meta.Responded = append(meta.Responded, res.shard)
	return body, true
}

// writeGathered emits a gathered document: 200 with the degradation
// envelope while any shard answered, 502 only when none did.
func (rt *Router) writeGathered(w http.ResponseWriter, meta gatherMeta, doc any) {
	w.Header().Set(ShardHeader, rt.shards.HeaderValue())
	w.Header().Set("Content-Type", "application/json")
	if len(meta.Responded) == 0 {
		w.WriteHeader(http.StatusBadGateway)
	}
	json.NewEncoder(w).Encode(doc)
}

// shardError counts and logs one upstream failure.
func (rt *Router) shardError(shard int, err error) {
	rt.reg.Counter("phocus_router_shard_errors_total", "shard", fmt.Sprint(shard)).Inc()
	rt.logger.Warn("shard error", "shard", shard, "err", err)
}

// relay copies an upstream response to the client verbatim.
func relay(w http.ResponseWriter, resp *http.Response) {
	copyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// drain discards a response body so its connection can be reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// hop-by-hop headers must not be forwarded (RFC 7230 §6.1).
var hopByHop = map[string]bool{
	"Connection": true, "Keep-Alive": true, "Proxy-Authenticate": true,
	"Proxy-Authorization": true, "Te": true, "Trailer": true,
	"Transfer-Encoding": true, "Upgrade": true,
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		if hopByHop[http.CanonicalHeaderKey(k)] {
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// gatherInt parses a non-negative integer query value ("" = def).
func gatherInt(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	var v int
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil || v < 0 || fmt.Sprint(v) != strings.TrimSpace(s) {
		return 0, fmt.Errorf("invalid int %q", s)
	}
	return v, nil
}

// worstStatus folds two SLO statuses (ok < warn < breach; "" = unknown).
func worstStatus(a, b string) string {
	rank := func(s string) int {
		switch s {
		case "breach":
			return 3
		case "warn":
			return 2
		case "ok":
			return 1
		}
		return 0
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}
