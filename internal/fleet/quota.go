package fleet

import (
	"math"
	"sync"
	"time"
)

// Quota is the per-tenant admission limiter: one token bucket per tenant,
// refilled at rate tokens/second up to burst. It layers on top of the
// shared solve semaphore/queue caps — those bound the *total* work a shard
// accepts, the quota bounds any *single* tenant's share of it, so one hot
// tenant saturating its bucket gets 429s while everyone else's latency
// stays inside the SLO.
//
// Buckets are created lazily on first sight of a tenant and the table is
// bounded: past maxTenants, idle (full) buckets are swept, and if every
// bucket is mid-use the new tenant is admitted unthrottled (fail open —
// admission control must never become a memory bomb or lock out the
// long tail).
//
// A nil *Quota admits everything, so callers need no enabled-check.
type Quota struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity
	max   int     // bucket-table bound

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // injectable clock for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewQuota builds a limiter admitting rate requests/second with the given
// burst per tenant. rate ≤ 0 disables limiting (returns nil); burst ≤ 0
// defaults to ceil(rate) so a tenant can always spend about one second of
// its rate at once.
func NewQuota(rate float64, burst int) *Quota {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if burst <= 0 {
		b = math.Ceil(rate)
	}
	return &Quota{
		rate:    rate,
		burst:   b,
		max:     16384,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// Allow spends one token from the tenant's bucket. When the bucket is
// empty it reports false plus how long until a token refills — the
// Retry-After hint for the 429.
func (q *Quota) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	if q == nil {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b, found := q.buckets[tenant]
	if !found {
		if len(q.buckets) >= q.max {
			q.sweepLocked(now)
		}
		if len(q.buckets) >= q.max {
			return true, 0 // table saturated with active tenants: fail open
		}
		b = &bucket{tokens: q.burst, last: now}
		q.buckets[tenant] = b
	}
	b.refill(now, q.rate, q.burst)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
}

// refill tops the bucket up for the time elapsed since the last touch.
func (b *bucket) refill(now time.Time, rate, burst float64) {
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens = math.Min(burst, b.tokens+elapsed*rate)
	}
	b.last = now
}

// sweepLocked evicts buckets that have refilled to full — tenants idle
// long enough that forgetting them loses nothing (a fresh bucket starts
// full anyway). Callers hold q.mu.
func (q *Quota) sweepLocked(now time.Time) {
	for t, b := range q.buckets {
		b.refill(now, q.rate, q.burst)
		if b.tokens >= q.burst {
			delete(q.buckets, t)
		}
	}
}

// Tenants returns how many tenant buckets are currently tracked.
func (q *Quota) Tenants() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}
