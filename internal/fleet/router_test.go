package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fleetHarness is a router in front of N stub shards.
type fleetHarness struct {
	router  *httptest.Server
	shards  []*httptest.Server
	hits    []atomic.Int64 // per-shard request count
	handler []http.Handler // swappable per-shard behavior
	m       *ShardMap
}

func newFleetHarness(t *testing.T, n int, mk func(shard int) http.Handler) *fleetHarness {
	t.Helper()
	h := &fleetHarness{hits: make([]atomic.Int64, n), handler: make([]http.Handler, n)}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		i := i
		h.handler[i] = mk(i)
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h.hits[i].Add(1)
			h.handler[i].ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		h.shards = append(h.shards, srv)
		urls[i] = srv.URL
	}
	m, err := NewShardMap(-1, urls)
	if err != nil {
		t.Fatal(err)
	}
	h.m = m
	rt, err := NewRouter(RouterOptions{Map: m, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	h.router = httptest.NewServer(rt.Handler())
	t.Cleanup(h.router.Close)
	return h
}

// echoShard answers every request with a JSON document describing what it
// received, so tests can assert on the forwarded request.
func echoShard(shard int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("X-Echo-Shard", fmt.Sprint(shard))
		w.Header().Set(ShardHeader, fmt.Sprintf("%d/3@stub", shard))
		json.NewEncoder(w).Encode(map[string]any{
			"shard":  shard,
			"method": r.Method,
			"path":   r.URL.RequestURI(),
			"tenant": r.Header.Get(TenantHeader),
			"body":   string(body),
		})
	})
}

func TestRouterForwardsToOwningShard(t *testing.T) {
	h := newFleetHarness(t, 3, echoShard)
	for _, tenant := range []string{"alice", "bob", "tenant-7", "default"} {
		want := h.m.Owner(tenant)
		req, _ := http.NewRequest("POST", h.router.URL+"/solve?algo=greedy", strings.NewReader(`{"x":1}`))
		req.Header.Set(TenantHeader, tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var echo struct {
			Shard  int    `json:"shard"`
			Path   string `json:"path"`
			Tenant string `json:"tenant"`
			Body   string `json:"body"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&echo); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if echo.Shard != want {
			t.Errorf("tenant %q: forwarded to shard %d, ring says %d", tenant, echo.Shard, want)
		}
		if echo.Tenant != tenant {
			t.Errorf("tenant %q: shard saw tenant header %q", tenant, echo.Tenant)
		}
		if echo.Path != "/solve?algo=greedy" {
			t.Errorf("path %q lost the query", echo.Path)
		}
		if echo.Body != `{"x":1}` {
			t.Errorf("body %q not relayed", echo.Body)
		}
		// The shard's own response headers pass through untouched.
		if got := resp.Header.Get(ShardHeader); got != fmt.Sprintf("%d/3@stub", want) {
			t.Errorf("shard header %q not relayed", got)
		}
	}
	// The tenant query-param fallback routes identically.
	resp, err := http.Post(h.router.URL+"/jobs?tenant=alice", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var echo struct {
		Shard  int    `json:"shard"`
		Tenant string `json:"tenant"`
	}
	json.NewDecoder(resp.Body).Decode(&echo)
	resp.Body.Close()
	if echo.Shard != h.m.Owner("alice") || echo.Tenant != "alice" {
		t.Errorf("query-param tenant: shard %d tenant %q", echo.Shard, echo.Tenant)
	}
}

func TestRouterRejectsBadTenant(t *testing.T) {
	h := newFleetHarness(t, 2, echoShard)
	req, _ := http.NewRequest("POST", h.router.URL+"/solve", strings.NewReader("{}"))
	req.Header.Set(TenantHeader, "no spaces allowed")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	for i := range h.hits {
		if h.hits[i].Load() != 0 {
			t.Error("bad tenant still reached a shard")
		}
	}
}

func TestRouterRelaysErrorStatus(t *testing.T) {
	h := newFleetHarness(t, 2, func(shard int) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "wrong shard", http.StatusMisdirectedRequest)
		})
	})
	resp, err := http.Post(h.router.URL+"/solve?tenant=alice", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("status %d, want 421 relayed", resp.StatusCode)
	}
}

func TestRouterShardDown(t *testing.T) {
	h := newFleetHarness(t, 3, echoShard)
	// Find a tenant owned by shard 1, then kill shard 1.
	tenant := ""
	for i := 0; i < 1000; i++ {
		c := fmt.Sprintf("tenant-%d", i)
		if h.m.Owner(c) == 1 {
			tenant = c
			break
		}
	}
	if tenant == "" {
		t.Fatal("no tenant maps to shard 1")
	}
	h.shards[1].Close()
	resp, err := http.Post(h.router.URL+"/solve?tenant="+tenant, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 when the owning shard is down", resp.StatusCode)
	}
}

// jobsShard serves a canned GET /jobs page.
func jobsShard(shard int, jobs []map[string]any) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/jobs" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"total": len(jobs), "jobs": jobs})
	})
}

func TestRouterGatherJobsMergesAndDegrades(t *testing.T) {
	pages := [][]map[string]any{
		{{"id": "aaa", "submitted_at": "2026-08-08T10:00:01Z"}, {"id": "ccc", "submitted_at": "2026-08-08T10:00:03Z"}},
		{{"id": "bbb", "submitted_at": "2026-08-08T10:00:02Z"}},
		{{"id": "ddd", "submitted_at": "2026-08-08T10:00:04Z"}},
	}
	h := newFleetHarness(t, 3, func(shard int) http.Handler { return jobsShard(shard, pages[shard]) })

	resp, err := http.Get(h.router.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Total int `json:"total"`
		Count int `json:"count"`
		Jobs  []struct {
			ID    string `json:"id"`
			Shard int    `json:"shard"`
		} `json:"jobs"`
		Fleet struct {
			Shards    int   `json:"shards"`
			Responded []int `json:"responded"`
			Failed    []int `json:"failed"`
			Degraded  bool  `json:"degraded"`
		} `json:"fleet"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if doc.Total != 4 || doc.Count != 4 {
		t.Fatalf("total=%d count=%d, want 4/4", doc.Total, doc.Count)
	}
	for i, want := range []string{"aaa", "bbb", "ccc", "ddd"} {
		if doc.Jobs[i].ID != want {
			t.Fatalf("merged order %v, want chronological by submitted_at", doc.Jobs)
		}
	}
	if doc.Jobs[1].Shard != 1 {
		t.Errorf("job bbb tagged shard %d, want 1", doc.Jobs[1].Shard)
	}
	if doc.Fleet.Degraded || len(doc.Fleet.Responded) != 3 {
		t.Errorf("healthy fleet reported %+v", doc.Fleet)
	}

	// One shard down: the listing degrades, it does not fail.
	h.shards[2].Close()
	resp, err = http.Get(h.router.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded status %d, want 200", resp.StatusCode)
	}
	if doc.Total != 3 || !doc.Fleet.Degraded || len(doc.Fleet.Failed) != 1 || doc.Fleet.Failed[0] != 2 {
		t.Errorf("degraded doc: total=%d fleet=%+v", doc.Total, doc.Fleet)
	}
}

func TestRouterGatherJobsPagination(t *testing.T) {
	pages := [][]map[string]any{
		{{"id": "a1", "submitted_at": "2026-08-08T10:00:01Z"}, {"id": "a3", "submitted_at": "2026-08-08T10:00:03Z"}},
		{{"id": "a2", "submitted_at": "2026-08-08T10:00:02Z"}, {"id": "a4", "submitted_at": "2026-08-08T10:00:04Z"}},
	}
	h := newFleetHarness(t, 2, func(shard int) http.Handler { return jobsShard(shard, pages[shard]) })
	resp, err := http.Get(h.router.URL + "/jobs?offset=1&limit=2")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Offset int `json:"offset"`
		Jobs   []struct {
			ID string `json:"id"`
		} `json:"jobs"`
	}
	json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if len(doc.Jobs) != 2 || doc.Jobs[0].ID != "a2" || doc.Jobs[1].ID != "a3" {
		t.Fatalf("page at offset=1 limit=2: %+v", doc.Jobs)
	}

	if resp, err = http.Get(h.router.URL + "/jobs?offset=-1"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative offset: status %d, want 400", resp.StatusCode)
	}
}

func TestRouterGatherWrappedWorstStatus(t *testing.T) {
	statuses := []string{"ok", "breach", "warn"}
	h := newFleetHarness(t, 3, func(shard int) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			json.NewEncoder(w).Encode(map[string]any{"status": statuses[shard]})
		})
	})
	resp, err := http.Get(h.router.URL + "/slo")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Status string                     `json:"status"`
		Shards map[string]json.RawMessage `json:"shards"`
		Fleet  struct {
			Degraded bool `json:"degraded"`
		} `json:"fleet"`
	}
	json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if doc.Status != "breach" {
		t.Errorf("fleet status %q, want worst-of = breach", doc.Status)
	}
	if len(doc.Shards) != 3 {
		t.Errorf("gathered %d shard docs, want 3", len(doc.Shards))
	}
	if got := resp.Header.Get(ShardHeader); !strings.HasPrefix(got, "fleet/3@") {
		t.Errorf("scatter response shard header %q", got)
	}
}

func TestRouterAnyShard(t *testing.T) {
	h := newFleetHarness(t, 3, func(shard int) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if shard == 1 && strings.HasPrefix(r.URL.Path, "/jobs/deadbeef") {
				json.NewEncoder(w).Encode(map[string]any{"id": "deadbeef", "shard": shard})
				return
			}
			http.NotFound(w, r)
		})
	})
	resp, err := http.Get(h.router.URL + "/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Shard int `json:"shard"`
	}
	json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || doc.Shard != 1 {
		t.Fatalf("status %d shard %d, want 200 from shard 1", resp.StatusCode, doc.Shard)
	}

	// Unknown everywhere: a clean 404.
	if resp, err = http.Get(h.router.URL + "/jobs/0000000000000000"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ID: status %d, want 404", resp.StatusCode)
	}

	// Unknown on reachable shards with one shard down: 502, because the ID
	// may live on the unreachable shard.
	h.shards[2].Close()
	if resp, err = http.Get(h.router.URL + "/jobs/0000000000000000"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("partial 404: status %d, want 502", resp.StatusCode)
	}
}

func TestRouterReadyz(t *testing.T) {
	h := newFleetHarness(t, 2, func(shard int) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/readyz" && shard == 0 {
				fmt.Fprintln(w, "ok")
				return
			}
			http.Error(w, "warming", http.StatusServiceUnavailable)
		})
	})
	resp, err := http.Get(h.router.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("one shard ready: status %d, want 200", resp.StatusCode)
	}

	h.handler[0] = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "warming", http.StatusServiceUnavailable)
	})
	if resp, err = http.Get(h.router.URL + "/readyz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no shard ready: status %d, want 503", resp.StatusCode)
	}
}
