package fleet

import (
	"fmt"
	"testing"
	"time"
)

// fakeClock makes quota time deterministic.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestQuota(rate float64, burst int) (*Quota, *fakeClock) {
	q := NewQuota(rate, burst)
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	q.now = clk.now
	return q, clk
}

func TestQuotaNilAdmitsEverything(t *testing.T) {
	var q *Quota
	for i := 0; i < 1000; i++ {
		if ok, _ := q.Allow("anyone"); !ok {
			t.Fatal("nil quota throttled")
		}
	}
	if q.Tenants() != 0 {
		t.Error("nil quota tracks tenants")
	}
	if NewQuota(0, 10) != nil || NewQuota(-1, 10) != nil {
		t.Error("rate <= 0 should disable the quota (nil)")
	}
}

func TestQuotaBurstThenThrottle(t *testing.T) {
	q, _ := newTestQuota(10, 5)
	for i := 0; i < 5; i++ {
		if ok, _ := q.Allow("hot"); !ok {
			t.Fatalf("request %d within burst throttled", i)
		}
	}
	ok, retry := q.Allow("hot")
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v, want (0, 1s] at 10 rps", retry)
	}
}

func TestQuotaRefills(t *testing.T) {
	q, clk := newTestQuota(10, 5)
	for i := 0; i < 5; i++ {
		q.Allow("t")
	}
	if ok, _ := q.Allow("t"); ok {
		t.Fatal("bucket should be empty")
	}
	clk.advance(100 * time.Millisecond) // exactly one token at 10 rps
	if ok, _ := q.Allow("t"); !ok {
		t.Fatal("token did not refill")
	}
	if ok, _ := q.Allow("t"); ok {
		t.Fatal("second token appeared from nowhere")
	}
	clk.advance(time.Hour)
	for i := 0; i < 5; i++ { // refill caps at burst, not rate*3600
		if ok, _ := q.Allow("t"); !ok {
			t.Fatalf("post-idle request %d throttled", i)
		}
	}
	if ok, _ := q.Allow("t"); ok {
		t.Fatal("burst cap not enforced after idle refill")
	}
}

func TestQuotaTenantsIsolated(t *testing.T) {
	q, _ := newTestQuota(10, 2)
	q.Allow("hot")
	q.Allow("hot")
	if ok, _ := q.Allow("hot"); ok {
		t.Fatal("hot tenant should be throttled")
	}
	if ok, _ := q.Allow("cold"); !ok {
		t.Fatal("cold tenant throttled by hot tenant's bucket")
	}
	if q.Tenants() != 2 {
		t.Errorf("Tenants() = %d, want 2", q.Tenants())
	}
}

func TestQuotaDefaultBurst(t *testing.T) {
	q, _ := newTestQuota(2.5, 0)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := q.Allow("t"); ok {
			admitted++
		}
	}
	if admitted != 3 { // ceil(2.5) = 3
		t.Fatalf("admitted %d with default burst at rate 2.5, want 3", admitted)
	}
}

func TestQuotaTableBoundSweepsAndFailsOpen(t *testing.T) {
	q, clk := newTestQuota(10, 2)
	q.max = 8
	// Fill the table with tenants whose buckets stay below full.
	for i := 0; i < 8; i++ {
		q.Allow(fmt.Sprintf("t%d", i))
	}
	if q.Tenants() != 8 {
		t.Fatalf("Tenants() = %d, want 8", q.Tenants())
	}
	// Table full and nothing idle: the new tenant fails open (admitted,
	// untracked).
	if ok, _ := q.Allow("overflow"); !ok {
		t.Fatal("saturated table must fail open")
	}
	if q.Tenants() != 8 {
		t.Fatalf("overflow tenant was tracked; Tenants() = %d", q.Tenants())
	}
	// After everyone refills to full, a sweep makes room.
	clk.advance(time.Minute)
	if ok, _ := q.Allow("newcomer"); !ok {
		t.Fatal("newcomer throttled")
	}
	if q.Tenants() != 1 {
		t.Errorf("sweep kept %d buckets, want 1 (just the newcomer)", q.Tenants())
	}
}
