package fleet

import (
	"fmt"
	"net/http"
	"sync"
)

// TenantFromRequest resolves the request's tenant ID: the X-Phocus-Tenant
// header wins, the "tenant" query parameter is the fallback, and requests
// naming neither belong to DefaultTenant. Malformed IDs are an error (the
// server answers 400) rather than a silent fallback — a typoed tenant must
// not quietly land in the default tenant's shard and quota.
func TenantFromRequest(r *http.Request) (string, error) {
	t := r.Header.Get(TenantHeader)
	if t == "" {
		t = r.URL.Query().Get("tenant")
	}
	if t == "" {
		return DefaultTenant, nil
	}
	if !ValidTenant(t) {
		return "", fmt.Errorf("invalid tenant %q: want 1-64 chars of [A-Za-z0-9._-], not starting with a separator", t)
	}
	return t, nil
}

// LabelGuard bounds tenant-label cardinality on metrics: the first Cap
// distinct tenants keep their own label, every later one collapses into
// "other". Without it a client sweeping random tenant IDs would mint an
// unbounded number of phocus_tenant_* series.
type LabelGuard struct {
	mu   sync.Mutex
	cap  int
	seen map[string]struct{}
}

// OverflowLabel is the collapsed label of tenants beyond the guard's cap.
const OverflowLabel = "other"

// NewLabelGuard returns a guard admitting up to cap distinct labels
// (cap ≤ 0 = 1000).
func NewLabelGuard(cap int) *LabelGuard {
	if cap <= 0 {
		cap = 1000
	}
	return &LabelGuard{cap: cap, seen: make(map[string]struct{})}
}

// Label returns the metric label to use for the tenant: the tenant itself
// while the guard has room (or has seen it before), OverflowLabel beyond.
func (g *LabelGuard) Label(tenant string) string {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.seen[tenant]; ok {
		return tenant
	}
	if len(g.seen) >= g.cap {
		return OverflowLabel
	}
	g.seen[tenant] = struct{}{}
	return tenant
}
