package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// BenchmarkFleetRoutedSolve measures the router's forwarding overhead:
// tenant resolution, ring lookup, and the proxy hop to a stub shard that
// answers instantly. This is the per-request fleet tax on top of an actual
// solve; CI folds it into bench/history.jsonl as suite "fleet".
func BenchmarkFleetRoutedSolve(b *testing.B) {
	shard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"score":1,"selected":[0]}`)
	}))
	defer shard.Close()

	m, err := NewShardMap(-1, []string{shard.URL, shard.URL, shard.URL})
	if err != nil {
		b.Fatal(err)
	}
	rt, err := NewRouter(RouterOptions{Map: m, Timeout: 5 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	router := httptest.NewServer(rt.Handler())
	defer router.Close()

	body := `{"budget":10,"photos":[{"id":"p0","size":4,"value":7}]}`
	client := &http.Client{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, _ := http.NewRequest("POST", router.URL+"/solve", strings.NewReader(body))
		req.Header.Set(TenantHeader, fmt.Sprintf("tenant-%d", i%64))
		resp, err := client.Do(req)
		if err != nil {
			b.Fatal(err)
		}
		var doc struct {
			Score float64 `json:"score"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}
}
