package fleet

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/url"
	"os"
	"strconv"
	"strings"
)

// ShardHeader is the response header every shard (and the router) sets so
// misrouted requests are diagnosable from the client side: the value is
// "<self>/<N>@<map fingerprint>" ("fleet/<N>@<fp>" on router-originated
// scatter responses).
const ShardHeader = "X-Phocus-Shard"

// TenantHeader carries the tenant ID on requests. The query parameter
// "tenant" is the fallback for clients that cannot set headers.
const TenantHeader = "X-Phocus-Tenant"

// ShardMap is the fleet's static topology: the base URL of every shard,
// ordered by shard index, plus which index this process is (-1 for a
// router or an external client, which participate in placement but own no
// tenants). Placement comes from the embedded consistent-hash Ring, so two
// processes holding maps with the same shard count agree on every tenant's
// owner even if their URLs differ (e.g. shards dial each other on an
// internal network while the router uses public addresses).
type ShardMap struct {
	// Self is this process's shard index, or -1 for a non-shard.
	Self int
	urls []string
	ring *Ring
	fp   string
}

// NewShardMap validates the topology and builds the placement ring. urls
// are shard base URLs ordered by shard index; self must be -1 or a valid
// index.
func NewShardMap(self int, urls []string) (*ShardMap, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("fleet: shard map needs at least one shard")
	}
	if self < -1 || self >= len(urls) {
		return nil, fmt.Errorf("fleet: shard index %d out of range for %d shards", self, len(urls))
	}
	clean := make([]string, len(urls))
	for i, raw := range urls {
		u, err := normalizeShardURL(raw)
		if err != nil {
			return nil, fmt.Errorf("fleet: shard %d: %w", i, err)
		}
		clean[i] = u
	}
	ring, err := NewRing(len(clean), 0)
	if err != nil {
		return nil, err
	}
	// The fingerprint covers the ordered URL list, so any two processes
	// holding the same map compute the same value and a header mismatch
	// pinpoints a stale or divergent topology.
	h := sha256.New()
	for i, u := range clean {
		fmt.Fprintf(h, "%d=%s\n", i, u)
	}
	return &ShardMap{
		Self: self,
		urls: clean,
		ring: ring,
		fp:   hex.EncodeToString(h.Sum(nil))[:12],
	}, nil
}

// normalizeShardURL validates one shard base URL: absolute http(s), no
// trailing slash (so URL(i)+path concatenates cleanly).
func normalizeShardURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("invalid URL %q: %v", raw, err)
	}
	if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("invalid URL %q: want absolute http(s)://host[:port]", raw)
	}
	return raw, nil
}

// N returns the shard count.
func (m *ShardMap) N() int { return len(m.urls) }

// URL returns shard i's base URL (no trailing slash).
func (m *ShardMap) URL(i int) string { return m.urls[i] }

// URLs returns a copy of the ordered shard URL list.
func (m *ShardMap) URLs() []string { return append([]string(nil), m.urls...) }

// Fingerprint returns the 12-hex digest of the ordered shard URL list.
func (m *ShardMap) Fingerprint() string { return m.fp }

// Owner returns the shard index owning the tenant.
func (m *ShardMap) Owner(tenant string) int { return m.ring.Owner(tenant) }

// Owns reports whether this process is the tenant's owning shard.
func (m *ShardMap) Owns(tenant string) bool {
	return m.Self >= 0 && m.ring.Owner(tenant) == m.Self
}

// HeaderValue renders the ShardHeader value for this process:
// "<self>/<N>@<fp>", with "fleet" in place of the index for non-shards.
func (m *ShardMap) HeaderValue() string {
	if m.Self < 0 {
		return fmt.Sprintf("fleet/%d@%s", len(m.urls), m.fp)
	}
	return fmt.Sprintf("%d/%d@%s", m.Self, len(m.urls), m.fp)
}

// ParseShardSpec parses the -shard flag: "i/N" pins both this process's
// index and the expected fleet size; a bare "i" pins only the index (the
// size then comes from the shard map file). Returns n = 0 when the spec
// does not name a size.
func ParseShardSpec(spec string) (self, n int, err error) {
	idx, size, found := strings.Cut(spec, "/")
	self, err = strconv.Atoi(strings.TrimSpace(idx))
	if err != nil || self < 0 {
		return 0, 0, fmt.Errorf("fleet: invalid -shard %q: want \"i/N\" or \"i\" with i >= 0", spec)
	}
	if !found {
		return self, 0, nil
	}
	n, err = strconv.Atoi(strings.TrimSpace(size))
	if err != nil || n <= 0 || self >= n {
		return 0, 0, fmt.Errorf("fleet: invalid -shard %q: want \"i/N\" with 0 <= i < N", spec)
	}
	return self, n, nil
}

// SplitPeers parses the -peers flag: a comma-separated shard URL list
// ordered by shard index. Empty elements are rejected rather than skipped —
// a doubled comma almost certainly means a shard fell out of the list, and
// silently compacting it would renumber every shard after it.
func SplitPeers(csv string) ([]string, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, fmt.Errorf("fleet: empty -peers list")
	}
	parts := strings.Split(csv, ",")
	urls := make([]string, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("fleet: empty entry at position %d in -peers list", i)
		}
		urls[i] = p
	}
	return urls, nil
}

// ParseShardMap reads a shard map file: one shard base URL per line,
// ordered by shard index. Blank lines and #-comments are skipped. A line
// may carry an explicit "<index> <url>" prefix; when present the index
// must equal the line's position, which guards a hand-edited file against
// silently renumbering the fleet.
func ParseShardMap(r io.Reader) ([]string, error) {
	var urls []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if first, rest, found := strings.Cut(line, " "); found {
			idx, err := strconv.Atoi(first)
			if err != nil {
				return nil, fmt.Errorf("fleet: shard map line %d: %q is neither a URL nor \"<index> <url>\"", lineNo, line)
			}
			if idx != len(urls) {
				return nil, fmt.Errorf("fleet: shard map line %d: index %d out of order (expected %d)", lineNo, idx, len(urls))
			}
			line = strings.TrimSpace(rest)
		}
		if _, err := normalizeShardURL(line); err != nil {
			return nil, fmt.Errorf("fleet: shard map line %d: %v", lineNo, err)
		}
		urls = append(urls, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("fleet: read shard map: %w", err)
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("fleet: shard map names no shards")
	}
	return urls, nil
}

// LoadShardMap reads a shard map file from disk.
func LoadShardMap(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("fleet: open shard map: %w", err)
	}
	defer f.Close()
	return ParseShardMap(f)
}

// ValidTenant reports whether the tenant ID is well-formed: 1–64 chars of
// [A-Za-z0-9._-], not starting with a separator. The bound keeps tenant
// IDs safe as metric labels, log fields and hash inputs.
func ValidTenant(t string) bool {
	if len(t) == 0 || len(t) > 64 {
		return false
	}
	for i, c := range t {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		default:
			return false
		}
	}
	return true
}
