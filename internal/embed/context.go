package embed

import (
	"math"
	"math/rand"

	"phocus/internal/par"
)

// Context carries the per-subset information that contextualizes photo
// embeddings: the same two photos get a different similarity in different
// pre-defined subsets (an important novelty the paper highlights in
// Section 2). Contextualization follows the common "feature emphasis"
// scheme: each context owns a nonnegative per-dimension emphasis mask; a
// photo's contextual embedding is normalize(v ⊙ mask), so dimensions the
// context cares about dominate the cosine.
type Context struct {
	// Mask is the per-dimension emphasis; all-ones means no
	// contextualization.
	Mask Vector
	// NormalizeDistances enables the paper's per-context distance
	// normalization: all pairwise distances (1 − cosine) are divided by the
	// maximum distance within the context, stretching fine-grained contexts
	// so that small variations matter (Section 5.1's "trips to Paris"
	// discussion).
	NormalizeDistances bool
}

// UniformContext returns the no-op context for a given dimension.
func UniformContext(dim int) Context {
	mask := make(Vector, dim)
	for i := range mask {
		mask[i] = 1
	}
	return Context{Mask: mask}
}

// RandomContext draws a context that emphasizes a random fraction of the
// dimensions (strength ≥ 1) and de-emphasizes the rest (weight 1). Larger
// strength values make contexts more discriminating.
func RandomContext(rng *rand.Rand, dim int, frac, strength float64) Context {
	mask := make(Vector, dim)
	for i := range mask {
		if rng.Float64() < frac {
			mask[i] = strength
		} else {
			mask[i] = 1
		}
	}
	return Context{Mask: mask}
}

// RandomSignedContext is RandomContext with an additional random sign flip
// on flipFrac of the dimensions. Sign flips genuinely reshape the metric
// per context — two photos can be similar in one context and dissimilar in
// another — emulating the learned per-subset contextual embeddings of the
// paper (a positive mask alone leaves the contextual cosine strongly
// rank-correlated with the global cosine, which would make non-contextual
// baselines artificially competitive).
func RandomSignedContext(rng *rand.Rand, dim int, frac, strength, flipFrac float64) Context {
	ctx := RandomContext(rng, dim, frac, strength)
	for i := range ctx.Mask {
		if rng.Float64() < flipFrac {
			ctx.Mask[i] = -ctx.Mask[i]
		}
	}
	return ctx
}

// Apply returns the contextual embedding of v under the context.
func (c Context) Apply(v Vector) Vector {
	return Normalize(Hadamard(v, c.Mask))
}

// ContextualSim materializes a par.Similarity over the members of one
// subset from their raw embeddings and the subset's context. The pairwise
// similarities are precomputed into a DenseSim, so solver-side lookups are
// O(1). Use Sparsified (package sparsify) to get a sparse variant instead.
func ContextualSim(vectors []Vector, ctx Context) *par.DenseSim {
	k := len(vectors)
	ctxVecs := make([]Vector, k)
	for i, v := range vectors {
		ctxVecs[i] = ctx.Apply(Clone(v))
	}
	sim := par.NewDenseSim(k)
	if !ctx.NormalizeDistances {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				sim.Set(i, j, CosineSim01(ctxVecs[i], ctxVecs[j]))
			}
		}
		return sim
	}
	// Distance normalization: d(i,j) = 1 − cos01(i,j), divided by the
	// maximum in-context distance, then mapped back to similarity.
	dists := make([][]float64, k)
	maxDist := 0.0
	for i := 0; i < k; i++ {
		dists[i] = make([]float64, k)
		for j := i + 1; j < k; j++ {
			d := 1 - CosineSim01(ctxVecs[i], ctxVecs[j])
			dists[i][j] = d
			if d > maxDist {
				maxDist = d
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			s := 1.0
			if maxDist > 0 {
				s = 1 - dists[i][j]/maxDist
			}
			sim.Set(i, j, clamp01(s))
		}
	}
	return sim
}

// GlobalSim materializes the non-contextual similarity over members: plain
// cosine of the raw embeddings. It is the surrogate the Greedy-NCS baseline
// selects with.
func GlobalSim(vectors []Vector) *par.DenseSim {
	k := len(vectors)
	sim := par.NewDenseSim(k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			sim.Set(i, j, CosineSim01(vectors[i], vectors[j]))
		}
	}
	return sim
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	if math.IsNaN(x) {
		return 0
	}
	return x
}
