package embed

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDotNormCosine(t *testing.T) {
	a := Vector{3, 4}
	b := Vector{4, 3}
	if got := Dot(a, b); got != 24 {
		t.Errorf("Dot = %g, want 24", got)
	}
	if got := Norm(a); got != 5 {
		t.Errorf("Norm = %g, want 5", got)
	}
	if got := Cosine(a, b); math.Abs(got-24.0/25) > 1e-12 {
		t.Errorf("Cosine = %g, want 0.96", got)
	}
	if got := Cosine(Vector{0, 0}, a); got != 0 {
		t.Errorf("Cosine with zero vector = %g, want 0", got)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Dot":      func() { Dot(Vector{1}, Vector{1, 2}) },
		"Add":      func() { Add(Vector{1}, Vector{1, 2}) },
		"Hadamard": func() { Hadamard(Vector{1}, Vector{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on dimension mismatch", name)
				}
			}()
			f()
		}()
	}
}

func TestCosineSim01Clamps(t *testing.T) {
	a := Vector{1, 0}
	b := Vector{-1, 0}
	if got := CosineSim01(a, b); got != 0 {
		t.Errorf("anti-parallel CosineSim01 = %g, want 0", got)
	}
	if got := CosineSim01(a, a); got != 1 {
		t.Errorf("self CosineSim01 = %g, want 1", got)
	}
}

func TestNormalizeAndClone(t *testing.T) {
	a := Vector{3, 4}
	b := Clone(a)
	Normalize(a)
	if math.Abs(Norm(a)-1) > 1e-12 {
		t.Errorf("Norm after Normalize = %g, want 1", Norm(a))
	}
	if b[0] != 3 || b[1] != 4 {
		t.Error("Clone shares storage with original")
	}
	z := Vector{0, 0}
	Normalize(z)
	if z[0] != 0 || z[1] != 0 {
		t.Error("Normalize modified the zero vector")
	}
}

func TestArithmetic(t *testing.T) {
	a, b := Vector{1, 2}, Vector{3, 4}
	if got := Add(a, b); got[0] != 4 || got[1] != 6 {
		t.Errorf("Add = %v", got)
	}
	if got := Scale(a, 2); got[0] != 2 || got[1] != 4 {
		t.Errorf("Scale = %v", got)
	}
	if got := Hadamard(a, b); got[0] != 3 || got[1] != 8 {
		t.Errorf("Hadamard = %v", got)
	}
}

func TestRandomUnitAndPerturb(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := RandomUnit(rng, 16)
	if math.Abs(Norm(v)-1) > 1e-12 {
		t.Errorf("RandomUnit norm = %g", Norm(v))
	}
	p := Perturb(rng, v, 0.1)
	if math.Abs(Norm(p)-1) > 1e-12 {
		t.Errorf("Perturb norm = %g", Norm(p))
	}
	// Small noise keeps the perturbed point close to the original.
	if Cosine(v, p) < 0.8 {
		t.Errorf("Perturb(0.1) moved too far: cos = %g", Cosine(v, p))
	}
	// Perturbation must be deterministic given the rng state.
	rng2 := rand.New(rand.NewSource(1))
	v2 := RandomUnit(rng2, 16)
	if Cosine(v, v2) < 1-1e-12 {
		t.Error("RandomUnit not deterministic for a fixed seed")
	}
}

func TestUniformContextIsIdentityOnSphere(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ctx := UniformContext(8)
	v := RandomUnit(rng, 8)
	u := ctx.Apply(Clone(v))
	if Cosine(u, v) < 1-1e-12 {
		t.Errorf("uniform context rotated the vector: cos = %g", Cosine(u, v))
	}
}

func TestContextChangesSimilarity(t *testing.T) {
	// Two photos agree on dims {0,1} and disagree on dims {2,3}: a context
	// emphasizing the first pair sees them as similar, one emphasizing the
	// second pair as dissimilar.
	a := Normalize(Vector{1, 1, 1, 0})
	b := Normalize(Vector{1, 1, 0, 1})
	likeCtx := Context{Mask: Vector{10, 10, 1, 1}}
	diffCtx := Context{Mask: Vector{1, 1, 10, 10}}
	simLike := ContextualSim([]Vector{a, b}, likeCtx).Sim(0, 1)
	simDiff := ContextualSim([]Vector{a, b}, diffCtx).Sim(0, 1)
	if simLike <= simDiff {
		t.Errorf("contextualization had no effect: like=%g diff=%g", simLike, simDiff)
	}
	if simLike < 0.9 {
		t.Errorf("emphasizing shared dims should yield high sim, got %g", simLike)
	}
}

func TestDistanceNormalization(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	proto := RandomUnit(rng, 32)
	// A tight cluster: raw cosine similarities are all near 1.
	vs := []Vector{
		Perturb(rng, proto, 0.05),
		Perturb(rng, proto, 0.05),
		Perturb(rng, proto, 0.05),
	}
	plain := ContextualSim(vs, UniformContext(32))
	normed := ContextualSim(vs, Context{Mask: UniformContext(32).Mask, NormalizeDistances: true})
	// Normalization stretches the most distant pair to similarity 0.
	minNormed := 1.0
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if s := normed.Sim(i, j); s < minNormed {
				minNormed = s
			}
			if plain.Sim(i, j) < 0.9 {
				t.Fatalf("cluster not tight: plain sim %g", plain.Sim(i, j))
			}
		}
	}
	if minNormed > 1e-9 {
		t.Errorf("distance normalization should drive the farthest pair to 0, got %g", minNormed)
	}
}

func TestDistanceNormalizationDegenerate(t *testing.T) {
	// Identical vectors: max distance is 0; normalized similarity must be 1.
	v := Normalize(Vector{1, 2, 3})
	sim := ContextualSim([]Vector{Clone(v), Clone(v)}, Context{Mask: Vector{1, 1, 1}, NormalizeDistances: true})
	if got := sim.Sim(0, 1); got != 1 {
		t.Errorf("identical vectors normalized sim = %g, want 1", got)
	}
}

func TestGlobalSimMatchesCosine(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vs := []Vector{RandomUnit(rng, 8), RandomUnit(rng, 8), RandomUnit(rng, 8)}
	sim := GlobalSim(vs)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			if got, want := sim.Sim(i, j), CosineSim01(vs[i], vs[j]); math.Abs(got-want) > 1e-12 {
				t.Errorf("GlobalSim(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
}

// Property: contextual similarities are valid (in [0,1], symmetric by
// construction of DenseSim, 1 on the diagonal).
func TestContextualSimValidQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(6)
		vs := make([]Vector, k)
		for i := range vs {
			vs[i] = RandomUnit(rng, 12)
		}
		ctx := RandomContext(rng, 12, 0.3, 5)
		ctx.NormalizeDistances = rng.Intn(2) == 0
		sim := ContextualSim(vs, ctx)
		for i := 0; i < k; i++ {
			if sim.Sim(i, i) != 1 {
				return false
			}
			for j := 0; j < k; j++ {
				s := sim.Sim(i, j)
				if s < 0 || s > 1 || math.IsNaN(s) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
