// Package embed provides the vector-embedding substrate of PHOcus' Data
// Representation Module. The paper derives photo similarities from ResNet-50
// image embeddings compared with cosine similarity, contextualized per
// pre-defined subset (Section 5.1); this package implements the vector
// arithmetic, the contextualization, the per-context distance normalization
// the paper describes, and a deterministic synthetic embedder that stands in
// for the neural network (see DESIGN.md's substitution table).
package embed

import (
	"math"
	"math/rand"
)

// Vector is a dense embedding.
type Vector []float64

// Dot returns the inner product. Vectors must have equal length.
func Dot(a, b Vector) float64 {
	if len(a) != len(b) {
		panic("embed: dimension mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm.
func Norm(a Vector) float64 { return math.Sqrt(Dot(a, a)) }

// Cosine returns the cosine similarity of a and b, 0 if either is zero.
func Cosine(a, b Vector) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// CosineSim01 maps cosine similarity into [0,1] by clamping negatives to 0,
// the convention this repository uses for SIM scores (embeddings of related
// photos are non-negatively correlated by construction; an anti-correlated
// pair is simply "not similar").
func CosineSim01(a, b Vector) float64 {
	c := Cosine(a, b)
	if c < 0 {
		return 0
	}
	if c > 1 { // guard against rounding above 1
		return 1
	}
	return c
}

// Normalize scales a to unit norm in place and returns it. Zero vectors are
// left unchanged.
func Normalize(a Vector) Vector {
	n := Norm(a)
	if n == 0 {
		return a
	}
	for i := range a {
		a[i] /= n
	}
	return a
}

// Clone returns an independent copy.
func Clone(a Vector) Vector {
	b := make(Vector, len(a))
	copy(b, a)
	return b
}

// Add returns a + b.
func Add(a, b Vector) Vector {
	if len(a) != len(b) {
		panic("embed: dimension mismatch")
	}
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Scale returns s·a.
func Scale(a Vector, s float64) Vector {
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] * s
	}
	return out
}

// Hadamard returns the elementwise product a ⊙ b.
func Hadamard(a, b Vector) Vector {
	if len(a) != len(b) {
		panic("embed: dimension mismatch")
	}
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] * b[i]
	}
	return out
}

// RandomUnit draws a uniformly random unit vector of the given dimension.
func RandomUnit(rng *rand.Rand, dim int) Vector {
	v := make(Vector, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return Normalize(v)
}

// Perturb returns normalize(a + noise·g) where g is Gaussian: a point near a
// on the unit sphere. It models instance-level variation around a category
// prototype.
func Perturb(rng *rand.Rand, a Vector, noise float64) Vector {
	out := make(Vector, len(a))
	for i := range a {
		out[i] = a[i] + noise*rng.NormFloat64()
	}
	return Normalize(out)
}
