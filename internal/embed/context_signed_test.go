package embed

import (
	"math"
	"math/rand"
	"testing"
)

func TestRandomSignedContextFlipsSigns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ctx := RandomSignedContext(rng, 200, 0.3, 5, 0.5)
	neg := 0
	for _, w := range ctx.Mask {
		if w < 0 {
			neg++
		}
		if w == 0 {
			t.Fatal("zero mask weight")
		}
	}
	// With flipFrac 0.5 over 200 dims, the negative count concentrates
	// around 100.
	if neg < 60 || neg > 140 {
		t.Errorf("flipped %d of 200 dims, want ≈100", neg)
	}
}

func TestRandomSignedContextZeroFlip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ctx := RandomSignedContext(rng, 50, 0.3, 5, 0)
	for _, w := range ctx.Mask {
		if w < 0 {
			t.Fatal("flipFrac 0 produced a negative weight")
		}
	}
}

// Sign flips must decorrelate contextual similarity from the global cosine
// while keeping near-duplicates similar (self-sim stays 1; two essentially
// identical vectors stay close under any diagonal transform).
func TestSignedContextPreservesNearDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := RandomUnit(rng, 64)
	w := Perturb(rng, v, 0.01)
	ctx := RandomSignedContext(rng, 64, 0.4, 10, 0.3)
	cv, cw := ctx.Apply(Clone(v)), ctx.Apply(Clone(w))
	if got := Cosine(cv, cw); got < 0.9 {
		t.Errorf("near-duplicates dropped to contextual cosine %.3f", got)
	}
	if got := CosineSim01(cv, cv); math.Abs(got-1) > 1e-12 {
		t.Errorf("self contextual sim = %g", got)
	}
}
