// Package tagging is the automatic-tagging substrate of PHOcus' Data
// Representation Module (input mode 3 of Section 5.1): pre-defined subsets
// are derived from tags assigned automatically. Two tag sources are
// implemented, matching the paper's examples:
//
//   - visual tags: nearest-prototype classification over image embeddings
//     (the stand-in for "image tagging software" / label models);
//   - metadata groups: clustering photos by EXIF capture time and location
//     ("organized by features such as date, location").
package tagging

import (
	"math"
	"sort"

	"phocus/internal/embed"
	"phocus/internal/imagesim"
)

// Tag is one automatic label with a confidence in (0, 1].
type Tag struct {
	Name       string
	Confidence float64
}

// Tagger classifies photos against learned tag prototypes.
type Tagger struct {
	cfg    imagesim.EmbeddingConfig
	names  []string
	protos []embed.Vector
}

// New returns an empty tagger using the given embedding layout.
func New(cfg imagesim.EmbeddingConfig) *Tagger {
	return &Tagger{cfg: cfg}
}

// Learn adds (or, for a repeated name, replaces) a tag prototype as the
// normalized mean embedding of the example photos. Empty example lists are
// ignored.
func (t *Tagger) Learn(name string, examples []*imagesim.Photo) {
	if len(examples) == 0 {
		return
	}
	mean := make(embed.Vector, t.cfg.Dim())
	for _, p := range examples {
		v := imagesim.Embedding(p.Image, t.cfg)
		for i := range mean {
			mean[i] += v[i]
		}
	}
	embed.Normalize(mean)
	for i, n := range t.names {
		if n == name {
			t.protos[i] = mean
			return
		}
	}
	t.names = append(t.names, name)
	t.protos = append(t.protos, mean)
}

// Names returns the learned tag names in learning order.
func (t *Tagger) Names() []string { return t.names }

// Tag returns the tags whose prototype cosine similarity to the photo is at
// least minConf, strongest first, capped at maxTags (0 = no cap).
func (t *Tagger) Tag(p *imagesim.Photo, minConf float64, maxTags int) []Tag {
	v := imagesim.Embedding(p.Image, t.cfg)
	var tags []Tag
	for i, proto := range t.protos {
		if c := embed.CosineSim01(v, proto); c >= minConf {
			tags = append(tags, Tag{Name: t.names[i], Confidence: c})
		}
	}
	sort.Slice(tags, func(i, j int) bool {
		if tags[i].Confidence != tags[j].Confidence {
			return tags[i].Confidence > tags[j].Confidence
		}
		return tags[i].Name < tags[j].Name
	})
	if maxTags > 0 && len(tags) > maxTags {
		tags = tags[:maxTags]
	}
	return tags
}

// Group is a metadata-derived photo cluster.
type Group struct {
	Name   string
	Photos []*imagesim.Photo
}

// GroupByTime buckets photos into windows of the given length (seconds),
// producing one group per non-empty window ordered by time. It mirrors
// "albums by date" organization of personal archives.
func GroupByTime(photos []*imagesim.Photo, windowSeconds int64) []Group {
	if windowSeconds <= 0 || len(photos) == 0 {
		return nil
	}
	buckets := map[int64][]*imagesim.Photo{}
	for _, p := range photos {
		buckets[p.EXIF.UnixTime/windowSeconds] = append(buckets[p.EXIF.UnixTime/windowSeconds], p)
	}
	keys := make([]int64, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	groups := make([]Group, 0, len(keys))
	for _, k := range keys {
		groups = append(groups, Group{
			Name:   timeGroupName(k, windowSeconds),
			Photos: buckets[k],
		})
	}
	return groups
}

func timeGroupName(bucket, window int64) string {
	return "time:" + itoa(bucket*window)
}

// GroupByLocation clusters photos by greedy leader clustering on great-
// circle-free Euclidean lat/lon distance: each photo joins the first
// existing cluster whose leader is within radius degrees, else founds a new
// cluster. Deterministic given photo order.
func GroupByLocation(photos []*imagesim.Photo, radiusDegrees float64) []Group {
	if radiusDegrees <= 0 || len(photos) == 0 {
		return nil
	}
	type cluster struct {
		lat, lon float64
		photos   []*imagesim.Photo
	}
	var clusters []*cluster
	for _, p := range photos {
		placed := false
		for _, c := range clusters {
			dlat := p.EXIF.Latitude - c.lat
			dlon := p.EXIF.Longitude - c.lon
			if math.Hypot(dlat, dlon) <= radiusDegrees {
				c.photos = append(c.photos, p)
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, &cluster{lat: p.EXIF.Latitude, lon: p.EXIF.Longitude, photos: []*imagesim.Photo{p}})
		}
	}
	groups := make([]Group, len(clusters))
	for i, c := range clusters {
		groups[i] = Group{Name: "loc:" + itoa(int64(i)), Photos: c.photos}
	}
	return groups
}

// GroupBySimilarity clusters photos by visual similarity with greedy leader
// clustering over feature embeddings: each photo joins the first cluster
// whose leader's cosine similarity is at least minSim, else founds a new
// cluster. It is the stand-in for "organized by facial recognition" style
// automatic albums the paper mentions — same person/scene photos embed
// close together. Deterministic given photo order.
func GroupBySimilarity(photos []*imagesim.Photo, cfg imagesim.EmbeddingConfig, minSim float64) []Group {
	if len(photos) == 0 || minSim <= 0 || minSim > 1 {
		return nil
	}
	type cluster struct {
		leader embed.Vector
		photos []*imagesim.Photo
	}
	var clusters []*cluster
	for _, p := range photos {
		v := imagesim.Embedding(p.Image, cfg)
		placed := false
		for _, c := range clusters {
			if embed.CosineSim01(v, c.leader) >= minSim {
				c.photos = append(c.photos, p)
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, &cluster{leader: v, photos: []*imagesim.Photo{p}})
		}
	}
	groups := make([]Group, len(clusters))
	for i, c := range clusters {
		groups[i] = Group{Name: "visual:" + itoa(int64(i)), Photos: c.photos}
	}
	return groups
}

// itoa is a minimal integer formatter (avoids pulling fmt into the hot
// grouping path for large archives).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [21]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
