package tagging

import (
	"math/rand"
	"testing"

	"phocus/internal/imagesim"
)

func trainedTagger(t *testing.T, rng *rand.Rand, cats []*imagesim.CategoryModel) (*Tagger, imagesim.GenConfig) {
	t.Helper()
	cfg := imagesim.DefaultGenConfig()
	tagger := New(imagesim.DefaultEmbeddingConfig())
	for _, cat := range cats {
		var examples []*imagesim.Photo
		for k := 0; k < 8; k++ {
			examples = append(examples, cat.Generate(rng, k, cfg))
		}
		tagger.Learn(cat.Name, examples)
	}
	return tagger, cfg
}

func TestTaggerClassifiesHeldOutPhotos(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cats := []*imagesim.CategoryModel{
		imagesim.NewCategoryModel(rng, "bikes"),
		imagesim.NewCategoryModel(rng, "cats"),
		imagesim.NewCategoryModel(rng, "books"),
	}
	tagger, cfg := trainedTagger(t, rng, cats)
	correct, total := 0, 0
	for ci, cat := range cats {
		for k := 0; k < 10; k++ {
			p := cat.Generate(rng, 100+k, cfg)
			tags := tagger.Tag(p, 0, 1)
			if len(tags) != 1 {
				t.Fatalf("expected exactly one top tag, got %v", tags)
			}
			total++
			if tags[0].Name == cats[ci].Name {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.8 {
		t.Errorf("held-out tagging accuracy %.2f, want ≥ 0.8", acc)
	}
}

func TestTagConfidenceThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cats := []*imagesim.CategoryModel{
		imagesim.NewCategoryModel(rng, "a"),
		imagesim.NewCategoryModel(rng, "b"),
	}
	tagger, cfg := trainedTagger(t, rng, cats)
	p := cats[0].Generate(rng, 50, cfg)
	// An impossible threshold yields no tags.
	if tags := tagger.Tag(p, 1.01, 0); len(tags) != 0 {
		t.Errorf("threshold 1.01 returned %v", tags)
	}
	// Threshold 0 returns every learned tag, sorted by confidence.
	tags := tagger.Tag(p, 0, 0)
	if len(tags) != 2 {
		t.Fatalf("got %d tags, want 2", len(tags))
	}
	if tags[0].Confidence < tags[1].Confidence {
		t.Error("tags not sorted by confidence")
	}
}

func TestLearnReplacesPrototype(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	catA := imagesim.NewCategoryModel(rng, "x")
	catB := imagesim.NewCategoryModel(rng, "x") // same name, different look
	cfg := imagesim.DefaultGenConfig()
	tagger := New(imagesim.DefaultEmbeddingConfig())
	tagger.Learn("x", []*imagesim.Photo{catA.Generate(rng, 0, cfg)})
	tagger.Learn("x", []*imagesim.Photo{catB.Generate(rng, 1, cfg)})
	if got := len(tagger.Names()); got != 1 {
		t.Fatalf("tagger has %d names after relearning, want 1", got)
	}
	tagger.Learn("x", nil) // no-op
	if got := len(tagger.Names()); got != 1 {
		t.Fatalf("empty Learn changed tagger: %d names", got)
	}
}

func photoAt(id int, unix int64, lat, lon float64) *imagesim.Photo {
	return &imagesim.Photo{
		ID:    id,
		Image: imagesim.NewImage(2, 2),
		EXIF:  imagesim.EXIF{UnixTime: unix, Latitude: lat, Longitude: lon},
	}
}

func TestGroupByTime(t *testing.T) {
	photos := []*imagesim.Photo{
		photoAt(0, 1000, 0, 0),
		photoAt(1, 1500, 0, 0),
		photoAt(2, 5000, 0, 0),
	}
	groups := GroupByTime(photos, 2000)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	if len(groups[0].Photos) != 2 || len(groups[1].Photos) != 1 {
		t.Errorf("group sizes %d/%d, want 2/1", len(groups[0].Photos), len(groups[1].Photos))
	}
	if groups[0].Name != "time:0" || groups[1].Name != "time:4000" {
		t.Errorf("group names %q/%q", groups[0].Name, groups[1].Name)
	}
	if GroupByTime(photos, 0) != nil {
		t.Error("zero window should return nil")
	}
	if GroupByTime(nil, 100) != nil {
		t.Error("no photos should return nil")
	}
}

func TestGroupByLocation(t *testing.T) {
	photos := []*imagesim.Photo{
		photoAt(0, 0, 48.85, 2.35),  // Paris
		photoAt(1, 0, 48.86, 2.36),  // Paris
		photoAt(2, 0, 35.68, 139.7), // Tokyo
	}
	groups := GroupByLocation(photos, 1.0)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	if len(groups[0].Photos) != 2 {
		t.Errorf("first cluster has %d photos, want 2", len(groups[0].Photos))
	}
	if GroupByLocation(photos, 0) != nil {
		t.Error("zero radius should return nil")
	}
}

func TestItoa(t *testing.T) {
	cases := map[int64]string{0: "0", 7: "7", -42: "-42", 123456789: "123456789"}
	for v, want := range cases {
		if got := itoa(v); got != want {
			t.Errorf("itoa(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestGroupBySimilarity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := imagesim.DefaultGenConfig()
	ecfg := imagesim.DefaultEmbeddingConfig()
	catA := imagesim.NewCategoryModel(rng, "a")
	catB := imagesim.NewCategoryModel(rng, "b")
	var photos []*imagesim.Photo
	for k := 0; k < 5; k++ {
		ph := catA.Generate(rng, k, cfg)
		ph.Category = 0
		photos = append(photos, ph)
	}
	for k := 0; k < 5; k++ {
		ph := catB.Generate(rng, 10+k, cfg)
		ph.Category = 1
		photos = append(photos, ph)
	}
	groups := GroupBySimilarity(photos, ecfg, 0.5)
	if len(groups) < 2 {
		t.Fatalf("two visual categories collapsed into %d groups", len(groups))
	}
	// The two dominant groups must be category-pure.
	for _, g := range groups {
		if len(g.Photos) < 2 {
			continue
		}
		first := g.Photos[0].Category
		for _, p := range g.Photos {
			if p.Category != first {
				t.Errorf("group %s mixes categories", g.Name)
			}
		}
	}
	// Every photo lands in exactly one group.
	total := 0
	for _, g := range groups {
		total += len(g.Photos)
	}
	if total != len(photos) {
		t.Errorf("groups cover %d of %d photos", total, len(photos))
	}
	if GroupBySimilarity(photos, ecfg, 0) != nil || GroupBySimilarity(nil, ecfg, 0.5) != nil {
		t.Error("degenerate arguments should return nil")
	}
}
