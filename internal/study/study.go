// Package study simulates the paper's user study (Section 5.4): business
// analysts manually assembling landing-page photo selections are modeled as
// a heuristic that walks subsets in importance order picking top-relevance
// photos — deliberately without cross-subset similarity reasoning, which is
// exactly the capability the analysts reported lacking — plus a browsing
// time model; PHOcus runs the real solver plus a fixed review overhead. The
// package also implements the second part of the study: repeated preference
// judgments between two algorithms on ~100-photo sub-instances by a noisy
// expert with a "cannot decide" margin.
package study

import (
	"math/rand"
	"sort"
	"time"

	"phocus/internal/celf"
	"phocus/internal/par"
)

// Analyst models the manual workflow.
type Analyst struct {
	// SecondsPerPhotoView is the browsing cost of looking at one candidate
	// photo once. The default 1.0 s puts EC-scale datasets (≈37K photo
	// views) in the 6–14 h band the paper reports.
	SecondsPerPhotoView float64
	// SecondsPerDecision is the extra cost of each retained photo.
	SecondsPerDecision float64
}

// DefaultAnalyst returns the calibration used by the experiments.
func DefaultAnalyst() Analyst {
	return Analyst{SecondsPerPhotoView: 1.0, SecondsPerDecision: 20}
}

// Solve produces the analyst's selection and the modeled wall-clock effort.
// Strategy: subsets in descending importance, round-robin, each time taking
// the subset's highest-relevance photo not yet selected that fits the
// remaining budget; a photo already selected for another subset is reused
// for free (the analyst does notice exact re-occurrences — what they miss
// is partial visual redundancy, which requires the similarity model).
func (a Analyst) Solve(inst *par.Instance) (par.Solution, time.Duration) {
	// Browsing: every member of every subset is inspected once.
	var views int
	for qi := range inst.Subsets {
		views += len(inst.Subsets[qi].Members)
	}

	order := make([]int, len(inst.Subsets))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return inst.Subsets[order[i]].Weight > inst.Subsets[order[j]].Weight
	})

	// Per-subset members sorted by descending relevance.
	ranked := make([][]int, len(inst.Subsets))
	for qi := range inst.Subsets {
		q := &inst.Subsets[qi]
		idx := make([]int, len(q.Members))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool { return q.Relevance[idx[a]] > q.Relevance[idx[b]] })
		ranked[qi] = idx
	}

	e := par.NewEvaluator(inst)
	e.Seed()
	cursor := make([]int, len(inst.Subsets))
	decisions := 0
	for progress := true; progress; {
		progress = false
		for _, qi := range order {
			q := &inst.Subsets[qi]
			for cursor[qi] < len(ranked[qi]) {
				mi := ranked[qi][cursor[qi]]
				cursor[qi]++
				p := q.Members[mi]
				if e.Contains(p) {
					continue // already covered by another page: free reuse
				}
				if !e.Fits(p) {
					continue
				}
				e.Add(p)
				decisions++
				progress = true
				break
			}
		}
	}

	elapsed := time.Duration((a.SecondsPerPhotoView*float64(views) +
		a.SecondsPerDecision*float64(decisions)) * float64(time.Second))
	return e.Solution(), elapsed
}

// ComparisonResult is one Figure 5g/5h row.
type ComparisonResult struct {
	Name                         string
	PHOcusQuality, ManualQuality float64
	PHOcusTime, ManualTime       time.Duration
}

// ReviewOverhead is the fixed human final-touch time added on top of the
// PHOcus solve (the paper reports "less than 10 minutes" end to end).
const ReviewOverhead = 8 * time.Minute

// Compare runs PHOcus and the simulated analyst on the same instance.
func Compare(name string, inst *par.Instance, analyst Analyst) (ComparisonResult, error) {
	start := time.Now()
	var solver celf.Solver
	psol, err := solver.Solve(inst)
	if err != nil {
		return ComparisonResult{}, err
	}
	solveTime := time.Since(start)
	msol, manualTime := analyst.Solve(inst)
	return ComparisonResult{
		Name:          name,
		PHOcusQuality: psol.Score,
		ManualQuality: msol.Score,
		PHOcusTime:    solveTime + ReviewOverhead,
		ManualTime:    manualTime,
	}, nil
}

// JudgmentConfig configures the preference-judgment protocol.
type JudgmentConfig struct {
	// Iterations is the number of independent comparisons (paper: 50).
	Iterations int
	// SubsetPhotos is the size of each sampled sub-instance (paper: ~100).
	SubsetPhotos int
	// BudgetFrac is the sub-instance budget as a fraction of its total
	// cost (default 0.08; small budgets are where selection quality
	// differences show, cf. Section 5.3).
	BudgetFrac float64
	// NoisePct is the standard deviation of the expert's perception noise,
	// relative to the score scale (default 0.01, calibrated so the tie rate matches the ~20-25% the paper reports).
	NoisePct float64
	// TiePct is the relative score margin below which the expert clicks
	// "cannot decide" (default 0.015).
	TiePct float64
	// Seed drives sampling and noise.
	Seed int64
}

func (c *JudgmentConfig) fill() {
	if c.Iterations == 0 {
		c.Iterations = 50
	}
	if c.SubsetPhotos == 0 {
		c.SubsetPhotos = 100
	}
	if c.BudgetFrac == 0 {
		c.BudgetFrac = 0.08
	}
	if c.NoisePct == 0 {
		c.NoisePct = 0.01
	}
	if c.TiePct == 0 {
		c.TiePct = 0.015
	}
}

// JudgmentResult counts the expert's verdicts.
type JudgmentResult struct {
	APreferred, BPreferred, CannotDecide int
}

// SolverFactory builds a solver for one sampled sub-instance. origPhotos
// maps the sub-instance's dense photo IDs back to the parent instance's IDs
// so similarity side-information (e.g. Greedy-NCS's global similarity) can
// be remapped correctly. Factories that need no side information ignore
// both arguments.
type SolverFactory func(sub *par.Instance, origPhotos []par.PhotoID) par.Solver

// Fixed adapts a plain solver into a SolverFactory.
func Fixed(s par.Solver) SolverFactory {
	return func(*par.Instance, []par.PhotoID) par.Solver { return s }
}

// Judge runs the iterated expert comparison of two solvers on random
// sub-instances of the given instance (paper Section 5.4, second part:
// PHOcus vs Greedy-NCS, 50 iterations, ≈100 photos each).
func Judge(inst *par.Instance, a, b SolverFactory, cfg JudgmentConfig) (JudgmentResult, error) {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var res JudgmentResult
	for it := 0; it < cfg.Iterations; it++ {
		sub, orig := SubInstanceBySubsets(rng, inst, cfg.SubsetPhotos, cfg.BudgetFrac)
		if sub == nil {
			continue
		}
		solA, err := a(sub, orig).Solve(sub)
		if err != nil {
			return res, err
		}
		solB, err := b(sub, orig).Solve(sub)
		if err != nil {
			return res, err
		}
		qa := par.ScoreFast(sub, solA.Photos)
		qb := par.ScoreFast(sub, solB.Photos)
		scale := qa
		if qb > scale {
			scale = qb
		}
		if scale == 0 {
			res.CannotDecide++
			continue
		}
		qa += rng.NormFloat64() * cfg.NoisePct * scale
		qb += rng.NormFloat64() * cfg.NoisePct * scale
		switch {
		case qa-qb > cfg.TiePct*scale:
			res.APreferred++
		case qb-qa > cfg.TiePct*scale:
			res.BPreferred++
		default:
			res.CannotDecide++
		}
	}
	return res, nil
}

// SubInstance samples k photos and restricts the instance to them: subsets
// keep only sampled members (empty subsets drop), relevance renormalizes,
// similarities are index-remapped views of the original, and the budget is
// BudgetFrac of the sample's total cost. The second result maps the
// sub-instance's dense photo IDs back to the parent's. Returns nil if no
// subsets survive.
func SubInstance(rng *rand.Rand, inst *par.Instance, k int, budgetFrac float64) (*par.Instance, []par.PhotoID) {
	n := inst.NumPhotos()
	if k > n {
		k = n
	}
	perm := rng.Perm(n)[:k]
	photos := make([]par.PhotoID, k)
	for i, p := range perm {
		photos[i] = par.PhotoID(p)
	}
	return restrict(inst, photos, budgetFrac)
}

// SubInstanceBySubsets samples whole pre-defined subsets (in random order)
// until roughly targetPhotos distinct photos are collected, then restricts
// the instance to those photos. Unlike SubInstance's uniform photo
// sampling — which shreds large subsets to singletons and makes similarity
// irrelevant — this preserves intra-subset similarity structure, matching
// the coherent ~100-photo collections the paper's experts judged.
func SubInstanceBySubsets(rng *rand.Rand, inst *par.Instance, targetPhotos int, budgetFrac float64) (*par.Instance, []par.PhotoID) {
	if len(inst.Subsets) == 0 {
		return nil, nil
	}
	order := rng.Perm(len(inst.Subsets))
	chosen := map[par.PhotoID]bool{}
	var photos []par.PhotoID
	// Collect at least minSubsets subsets even once the photo target is
	// met: a single large subset has no cross-page sharing structure, and
	// the paper's task (landing pages with intersecting product sets) is
	// about exactly that structure.
	const minSubsets = 3
	for i, qi := range order {
		if len(photos) >= targetPhotos && i >= minSubsets {
			break
		}
		for _, p := range inst.Subsets[qi].Members {
			if !chosen[p] {
				chosen[p] = true
				photos = append(photos, p)
			}
		}
	}
	return restrict(inst, photos, budgetFrac)
}

// restrict builds the sub-instance over exactly the given photos.
func restrict(inst *par.Instance, photos []par.PhotoID, budgetFrac float64) (*par.Instance, []par.PhotoID) {
	oldToNew := make(map[par.PhotoID]par.PhotoID, len(photos))
	origPhotos := make([]par.PhotoID, len(photos))
	sub := &par.Instance{Cost: make([]float64, len(photos))}
	for newID, oldID := range photos {
		oldToNew[oldID] = par.PhotoID(newID)
		origPhotos[newID] = oldID
		sub.Cost[newID] = inst.Cost[oldID]
	}
	for qi := range inst.Subsets {
		q := &inst.Subsets[qi]
		var members []par.PhotoID
		var rel []float64
		var origIdx []int
		for mi, p := range q.Members {
			if newID, ok := oldToNew[p]; ok {
				members = append(members, newID)
				rel = append(rel, q.Relevance[mi])
				origIdx = append(origIdx, mi)
			}
		}
		if len(members) == 0 {
			continue
		}
		sub.Subsets = append(sub.Subsets, par.Subset{
			Name:      q.Name,
			Weight:    q.Weight,
			Members:   members,
			Relevance: rel,
			Sim:       remappedSim{orig: q.Sim, idx: origIdx},
		})
	}
	if len(sub.Subsets) == 0 {
		return nil, nil
	}
	sub.NormalizeRelevance()
	sub.Budget = budgetFrac * sub.TotalCost()
	if err := sub.Finalize(); err != nil {
		return nil, nil
	}
	return sub, origPhotos
}

// remappedSim exposes a subset of another similarity's members.
type remappedSim struct {
	orig par.Similarity
	idx  []int
}

// Len implements par.Similarity.
func (r remappedSim) Len() int { return len(r.idx) }

// Sim implements par.Similarity.
func (r remappedSim) Sim(i, j int) float64 { return r.orig.Sim(r.idx[i], r.idx[j]) }
