package study

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"phocus/internal/baselines"
	"phocus/internal/celf"
	"phocus/internal/dataset"
	"phocus/internal/par"
)

func studyDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.GeneratePublic(dataset.PublicSpec{Name: "study", NumPhotos: 400, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.SetBudget(ds.Instance.TotalCost() * 0.15); err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestAnalystSolveFeasible(t *testing.T) {
	ds := studyDataset(t)
	sol, elapsed := DefaultAnalyst().Solve(ds.Instance)
	if !ds.Instance.Feasible(sol.Photos) {
		t.Fatal("analyst produced infeasible selection")
	}
	if elapsed <= 0 {
		t.Fatal("analyst time not modeled")
	}
	if math.Abs(par.Score(ds.Instance, sol.Photos)-sol.Score) > 1e-9 {
		t.Error("analyst score inconsistent with reference")
	}
}

func TestAnalystTimeScalesWithViews(t *testing.T) {
	small, err := dataset.GeneratePublic(dataset.PublicSpec{Name: "s", NumPhotos: 100, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	big, err := dataset.GeneratePublic(dataset.PublicSpec{Name: "b", NumPhotos: 600, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	small.SetBudget(small.Instance.TotalCost() * 0.2)
	big.SetBudget(big.Instance.TotalCost() * 0.2)
	a := DefaultAnalyst()
	_, ts := a.Solve(small.Instance)
	_, tb := a.Solve(big.Instance)
	if tb <= ts {
		t.Errorf("analyst time did not grow with dataset: %v vs %v", ts, tb)
	}
}

// The headline Figure 5g/5h shapes: PHOcus beats the analyst on quality
// (the paper reports 15–25% higher; we require strictly higher) and is
// orders of magnitude faster.
func TestCompareShapes(t *testing.T) {
	ds := studyDataset(t)
	res, err := Compare("P-study", ds.Instance, DefaultAnalyst())
	if err != nil {
		t.Fatal(err)
	}
	if res.PHOcusQuality <= res.ManualQuality {
		t.Errorf("PHOcus quality %.4f not above manual %.4f", res.PHOcusQuality, res.ManualQuality)
	}
	// At this small test scale PHOcus' time is dominated by the fixed
	// review overhead, so only a modest ratio is expected here; the paper's
	// hours-vs-minutes gap is reproduced at EC scale by the bench harness.
	if res.ManualTime < 2*res.PHOcusTime {
		t.Errorf("manual time %v not above 2× PHOcus time %v", res.ManualTime, res.PHOcusTime)
	}
}

func TestSubInstance(t *testing.T) {
	ds := studyDataset(t)
	rng := rand.New(rand.NewSource(5))
	sub, orig := SubInstance(rng, ds.Instance, 80, 0.3)
	if sub == nil {
		t.Fatal("SubInstance returned nil")
	}
	if sub.NumPhotos() != 80 || len(orig) != 80 {
		t.Fatalf("sub-instance has %d photos, mapping %d", sub.NumPhotos(), len(orig))
	}
	// The mapping must preserve costs.
	for newID, oldID := range orig {
		if sub.Cost[newID] != ds.Instance.Cost[oldID] {
			t.Fatalf("cost mismatch through mapping at %d", newID)
		}
	}
	if len(sub.Subsets) == 0 || len(sub.Subsets) > len(ds.Instance.Subsets) {
		t.Fatalf("sub-instance has %d subsets", len(sub.Subsets))
	}
	// Relevance renormalized per subset.
	for qi := range sub.Subsets {
		var sum float64
		for _, r := range sub.Subsets[qi].Relevance {
			sum += r
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("subset %d relevance sums to %g", qi, sum)
		}
	}
	// Oversized k clamps to n.
	sub2, _ := SubInstance(rng, ds.Instance, 10_000, 0.3)
	if sub2 == nil || sub2.NumPhotos() != ds.Instance.NumPhotos() {
		t.Error("k > n not clamped")
	}
}

func TestRemappedSimAgreesWithOriginal(t *testing.T) {
	inst := par.Figure1Instance()
	rng := rand.New(rand.NewSource(6))
	sub, _ := SubInstance(rng, inst, 7, 1) // all photos, identity remap modulo order
	if sub == nil {
		t.Fatal("nil sub-instance")
	}
	// Total scores of the full sets must agree (same photos, same sims).
	all := make([]par.PhotoID, 7)
	for i := range all {
		all[i] = par.PhotoID(i)
	}
	if got, want := par.Score(sub, all), par.Score(inst, all); math.Abs(got-want) > 1e-9 {
		t.Errorf("remapped full score %g, want %g", got, want)
	}
}

func TestJudgePrefersPHOcus(t *testing.T) {
	ds := studyDataset(t)
	ncsFactory := func(sub *par.Instance, orig []par.PhotoID) par.Solver {
		return baselines.NewGreedyNCS(func(p1, p2 par.PhotoID) float64 {
			return ds.GlobalSim(orig[p1], orig[p2])
		})
	}
	res, err := Judge(ds.Instance, Fixed(&celf.Solver{}), ncsFactory, JudgmentConfig{
		Iterations: 30, SubsetPhotos: 80, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := res.APreferred + res.BPreferred + res.CannotDecide
	if total != 30 {
		t.Fatalf("verdicts sum to %d, want 30", total)
	}
	// The paper's shape: PHOcus preferred in a large majority, Greedy-NCS
	// rarely, with some ties (35/3/12-like splits).
	if res.APreferred <= res.BPreferred {
		t.Errorf("PHOcus preferred %d ≤ NCS %d", res.APreferred, res.BPreferred)
	}
	if res.APreferred < total/2 {
		t.Errorf("PHOcus preferred only %d of %d", res.APreferred, total)
	}
}

func TestJudgeSelfComparisonMostlyTies(t *testing.T) {
	ds := studyDataset(t)
	var a, b celf.Solver
	res, err := Judge(ds.Instance, Fixed(&a), Fixed(&b), JudgmentConfig{Iterations: 20, SubsetPhotos: 60, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.CannotDecide < 12 {
		t.Errorf("identical solvers: only %d/20 'cannot decide'", res.CannotDecide)
	}
}

func TestReviewOverheadConstant(t *testing.T) {
	if ReviewOverhead <= 0 || ReviewOverhead > 10*time.Minute {
		t.Errorf("ReviewOverhead %v outside the paper's <10 min claim", ReviewOverhead)
	}
}
