package study

import (
	"math/rand"
	"testing"

	"phocus/internal/dataset"
	"phocus/internal/par"
)

func TestSubInstanceBySubsetsPreservesStructure(t *testing.T) {
	ds, err := dataset.GenerateEC(dataset.ECSpec{
		Domain: "Fashion", NumProducts: 400, NumQueries: 25, TopK: 20, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	sub, orig := SubInstanceBySubsets(rng, ds.Instance, 100, 0.2)
	if sub == nil {
		t.Fatal("nil sub-instance")
	}
	if sub.NumPhotos() < 100 {
		t.Fatalf("collected only %d photos", sub.NumPhotos())
	}
	if len(orig) != sub.NumPhotos() {
		t.Fatalf("mapping has %d entries for %d photos", len(orig), sub.NumPhotos())
	}
	// Whole-subset sampling must keep at least one subset complete, so the
	// average surviving-subset size stays well above 1 (the failure mode of
	// uniform sampling).
	var totalMembers int
	maxSize := 0
	for _, q := range sub.Subsets {
		totalMembers += len(q.Members)
		if len(q.Members) > maxSize {
			maxSize = len(q.Members)
		}
	}
	avg := float64(totalMembers) / float64(len(sub.Subsets))
	if avg < 3 {
		t.Errorf("average subset size %.1f; subset structure shredded", avg)
	}
	if maxSize < 10 {
		t.Errorf("largest surviving subset has %d members", maxSize)
	}
	// Costs flow through the mapping.
	for newID, oldID := range orig {
		if sub.Cost[newID] != ds.Instance.Cost[oldID] {
			t.Fatalf("cost mismatch at %d", newID)
		}
	}
}

func TestSubInstanceBySubsetsEmptyInstance(t *testing.T) {
	inst := &par.Instance{Cost: []float64{1}, Budget: 1}
	rng := rand.New(rand.NewSource(1))
	if sub, _ := SubInstanceBySubsets(rng, inst, 10, 0.5); sub != nil {
		t.Error("expected nil for instance without subsets")
	}
}

func TestFixedFactory(t *testing.T) {
	inst := par.Figure1Instance()
	var want par.Solver = &stubSolver{}
	if got := Fixed(want)(inst, nil); got != want {
		t.Error("Fixed did not return the wrapped solver")
	}
}

type stubSolver struct{}

func (stubSolver) Name() string                              { return "stub" }
func (stubSolver) Solve(*par.Instance) (par.Solution, error) { return par.Solution{}, nil }
