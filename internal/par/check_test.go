package par

import (
	"math/rand"
	"strings"
	"testing"
)

func TestCheckSimilarityValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if err := CheckSimilarity(rng, Figure1Instance(), 100); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	inst := Random(rng, RandomConfig{Photos: 20, Subsets: 10})
	if err := CheckSimilarity(rng, inst, 200); err != nil {
		t.Fatalf("random instance rejected: %v", err)
	}
}

type badSim struct {
	n         int
	diag      float64
	asym      bool
	outOfBand bool
}

func (b badSim) Len() int { return b.n }
func (b badSim) Sim(i, j int) float64 {
	if i == j {
		return b.diag
	}
	if b.outOfBand {
		return 1.5
	}
	if b.asym && i < j {
		return 0.2
	}
	return 0.8
}

func badInstance(sim Similarity) *Instance {
	inst := &Instance{
		Cost:   []float64{1, 1, 1},
		Budget: 3,
		Subsets: []Subset{{
			Name: "q", Weight: 1,
			Members:   []PhotoID{0, 1, 2},
			Relevance: []float64{0.4, 0.3, 0.3},
			Sim:       sim,
		}},
	}
	if err := inst.Finalize(); err != nil {
		panic(err)
	}
	return inst
}

func TestCheckSimilarityCatches(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct {
		name, wantSub string
		sim           Similarity
	}{
		{"bad diagonal", "want 1", badSim{n: 3, diag: 0.9}},
		{"asymmetric", "asymmetric", badSim{n: 3, diag: 1, asym: true}},
		{"out of band", "outside [0,1]", badSim{n: 3, diag: 1, outOfBand: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := CheckSimilarity(rng, badInstance(tc.sim), 200)
			if err == nil {
				t.Fatalf("defect not caught")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestCheckSimilarityNeighborConsistency(t *testing.T) {
	// A SparseSim whose rows were corrupted after construction.
	s := NewSparseSim(3)
	s.Add(0, 1, 0.5)
	s.rows[0][1].Sim = 0.9 // corrupt one direction only
	rng := rand.New(rand.NewSource(3))
	err := CheckSimilarity(rng, badInstance(s), 400)
	if err == nil {
		t.Fatal("corrupted neighbour list not caught")
	}
}
