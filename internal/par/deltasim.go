package par

import "sort"

// DeltaSim overlays incremental membership changes onto an existing
// Similarity: members can be masked (a removed photo's similarities all
// become 0, so it can never again cover anyone) and new members can be
// appended with explicit similarity rows. It is the similarity-level mirror
// of the kernel's mutation overlay — the engine's ApplyDelta wraps a
// subset's base similarity in one of these, and a kernel recompiled from it
// (at compaction or snapshot time) reproduces exactly the entries the
// incremental kernel maintained.
//
// The diagonal stays 1 even for masked members: a removed photo remains a
// member slot of the subset (photo IDs are dense and stable), and the
// self-similarity convention of Similarity — and the snapshot codec's CSR
// validation — requires Sim(i, i) == 1.
type DeltaSim struct {
	inner  Similarity
	k0     int    // inner.Len(), the pre-delta member count
	masked []bool // by member index; true → all off-diagonal sims are 0
	// rows[m-k0] holds appended member m's similarities to earlier members
	// (base or previously appended), sorted ascending by index, self excluded.
	rows [][]Neighbor
}

// NewDeltaSim wraps inner with an initially empty overlay.
func NewDeltaSim(inner Similarity) *DeltaSim {
	return &DeltaSim{inner: inner, k0: inner.Len(), masked: make([]bool, inner.Len())}
}

// Len returns the current member count (base plus appended).
func (d *DeltaSim) Len() int { return d.k0 + len(d.rows) }

// MaskMember zeroes every off-diagonal similarity of member i.
func (d *DeltaSim) MaskMember(i int) { d.masked[i] = true }

// Masked reports whether member i is masked.
func (d *DeltaSim) Masked(i int) bool { return d.masked[i] }

// AppendMember adds one member whose similarities to earlier members are
// given by neighbors (ascending index, self excluded, sims in (0,1]).
// The slice is retained.
func (d *DeltaSim) AppendMember(neighbors []Neighbor) {
	m := d.Len()
	last := -1
	for _, nb := range neighbors {
		if nb.Index <= last || nb.Index >= m {
			panic("par: DeltaSim.AppendMember neighbors must be earlier members in ascending order")
		}
		if nb.Sim <= 0 || nb.Sim > 1 {
			panic("par: similarity out of (0,1]")
		}
		last = nb.Index
	}
	d.rows = append(d.rows, neighbors)
	d.masked = append(d.masked, false)
}

// Sim returns the overlaid similarity of members i and j.
func (d *DeltaSim) Sim(i, j int) float64 {
	if i == j {
		return 1
	}
	if d.masked[i] || d.masked[j] {
		return 0
	}
	if i < d.k0 && j < d.k0 {
		return d.inner.Sim(i, j)
	}
	hi, lo := i, j
	if hi < lo {
		hi, lo = lo, hi
	}
	row := d.rows[hi-d.k0]
	k := sort.Search(len(row), func(x int) bool { return row[x].Index >= lo })
	if k < len(row) && row[k].Index == lo {
		return row[k].Sim
	}
	return 0
}

// SizeBytes reports the retained overlay bytes plus whatever the inner
// similarity self-reports, for prepared-size accounting.
func (d *DeltaSim) SizeBytes() int64 {
	n := int64(len(d.masked))
	for _, row := range d.rows {
		n += 16 * int64(len(row))
	}
	if s, ok := d.inner.(interface{ SizeBytes() int64 }); ok {
		n += s.SizeBytes()
	}
	return n
}
