package par

import "fmt"

// This file gives the compiled Kernel an incremental-maintenance path: a
// mutation overlay that supports tombstoning the rows of removed members,
// appending rows for new members (and whole new subsets, and new photos) at
// the tail, and rewriting fused W·R products after a relevance
// renormalization — without recompiling the flat slabs. The staged engine's
// Prepared.ApplyDelta drives these operations; when the dead-entry fraction
// grows past its threshold the engine compacts by recompiling the kernel
// from the (also incrementally maintained) similarity structures, which
// drops the overlay and restores the canonical flat layout.
//
// Row numbering under an overlay. The rows compiled by CompileKernel keep
// their original ids ("base rows", dense in [0, baseRows)); every member
// appended afterwards gets the next id in sequence ("tail rows", ids
// baseRows, baseRows+1, ...), regardless of which subset it joined. Tail
// rows have no span in the base CSR arrays — their entries live in the
// overlay's per-row extra lists, as do entries appended to base rows (a base
// member gaining a new neighbour). The flat best array an Evaluator
// allocates is indexed by these row ids; its total length (base + tail)
// always equals the instance's total member count, so evaluator allocation
// is unchanged — only the row→(subset,member) correspondence differs from
// the canonical subset-major layout, which is why NewEvaluator skips the
// per-subset best views while an overlay is active (see Kernel.Canonical).
//
// Bit-identity. Overlay gains must equal what a freshly compiled kernel over
// the updated instance computes, bit for bit. Entry order within a row is
// ascending member index in both layouts: base entries were compiled
// ascending, and appended members always have higher member indices than
// every existing entry of the rows they extend, so extras appended in
// arrival order stay ascending. Tombstoned entries are zeroed (sim = 0,
// wr = 0) rather than spliced out: a zero-sim entry can never satisfy
// sim > best (best ≥ 0 always), so it contributes no term — the remaining
// summation order, and therefore the float result, is unchanged.
type kernOverlay struct {
	// subOff / baseLen freeze the compile-time subset layout: base subset q's
	// rows are subOff[q] .. subOff[q]+baseLen[q]-1.
	subOff  []int32
	baseLen []int32
	// baseRows / basePhotos freeze the compile-time row and photo counts.
	baseRows   int
	basePhotos int

	// tails[q] lists subset q's tail rows in member order (members beyond
	// baseLen[q] for base subsets; all members for appended subsets). len(tails)
	// tracks the current subset count.
	tails [][]int32
	// rowSub / rowMi map tail row id r (indexed r-baseRows) back to its
	// (subset, member index).
	rowSub []int32
	rowMi  []int32

	// extra holds appended entries per row (base or tail), in ascending member
	// order; extraN counts them across all rows.
	extra  map[int32][]kentry
	extraN int

	// tailOcc[p-basePhotos] lists the rows appended photos occupy, ascending by
	// subset; extraOcc lists the tail rows base photos gained by joining
	// appended subsets (base photos can only gain membership in new subsets, so
	// base occ followed by extraOcc stays subset-ascending).
	tailOcc  [][]int32
	extraOcc map[PhotoID][]int32

	// dead counts tombstoned entries (both directions of each dead pair), for
	// the live-fraction compaction heuristic; deadRow marks tombstoned rows
	// (their best values are meaningless — wr-0 mirror entries still raise
	// them — so coverage read-outs report 0 there, as a compiled kernel
	// over the updated instance would).
	dead    int
	deadRow map[int32]bool
}

// kentry is one overlay similarity entry, mirroring the parallel
// nbrIdx/nbrSim/nbrWR slabs.
type kentry struct {
	idx int32
	sim float64
	wr  float64
}

// Canonical reports whether the kernel is in its compiled flat layout: no
// mutation overlay, full-precision slabs, subset-major row order. Overlaid
// kernels compute identical gains but their row numbering no longer matches
// the order evaluator best views and the snapshot codec assume; tuned
// kernels (quantized and/or row-blocked, see kernelq.go / kernelblock.go)
// additionally drop or permute the f64 slabs, so neither may be serialized
// or mutated.
func (k *Kernel) Canonical() bool {
	return k.ov == nil && k.qmode == QuantNone && k.perm == nil
}

// TotalRows returns the number of (subset, member) rows including appended
// tail rows.
func (k *Kernel) TotalRows() int {
	if k.ov == nil {
		return k.Rows()
	}
	return k.ov.baseRows + len(k.ov.rowSub)
}

// OverlayEntries returns the number of similarity entries living in the
// mutation overlay's per-row extra lists (0 for a canonical kernel). The
// engine's compaction heuristic bounds it relative to the compiled slabs:
// overlay entries cost pointer-chasing through a map on every gain, so a
// large overlay hurts even with few dead entries.
func (k *Kernel) OverlayEntries() int {
	if k.ov == nil {
		return 0
	}
	return k.ov.extraN
}

// DeadEntries returns the number of tombstoned similarity entries.
func (k *Kernel) DeadEntries() int {
	if k.ov == nil {
		return 0
	}
	return k.ov.dead
}

// LiveFraction returns the fraction of stored similarity entries that are
// still live (1 for a canonical kernel). The engine compacts when it drops
// below its threshold.
func (k *Kernel) LiveFraction() float64 {
	if k.ov == nil {
		return 1
	}
	total := len(k.nbrIdx) + k.ov.extraN
	if total == 0 {
		return 1
	}
	return 1 - float64(k.ov.dead)/float64(total)
}

// ensureOverlay materializes the mutation overlay on first use. Tuned
// kernels are derived read-only artifacts — the engine drops them before
// mutating the canonical kernel and re-derives them at compaction — so a
// mutation reaching one is a bug, not a state to support.
func (k *Kernel) ensureOverlay() *kernOverlay {
	if k.qmode != QuantNone || k.perm != nil {
		panic("par: kernel mutation on a tuned (quantized/blocked) kernel")
	}
	if k.ov != nil {
		return k.ov
	}
	ov := &kernOverlay{
		subOff:     make([]int32, len(k.rowLen)),
		baseLen:    make([]int32, len(k.rowLen)),
		baseRows:   k.Rows(),
		basePhotos: k.photos,
		tails:      make([][]int32, len(k.rowLen)),
		extra:      map[int32][]kentry{},
		extraOcc:   map[PhotoID][]int32{},
		deadRow:    map[int32]bool{},
	}
	var off int32
	for qi, l := range k.rowLen {
		ov.subOff[qi] = off
		ov.baseLen[qi] = l
		off += l
	}
	k.ov = ov
	return ov
}

// RowOf returns the global row id of subset q's mi-th member under the
// current layout (canonical or overlay).
func (k *Kernel) RowOf(q, mi int) int32 {
	if k.ov == nil {
		var off int32
		for qi := 0; qi < q; qi++ {
			off += k.rowLen[qi]
		}
		if k.perm != nil {
			return k.perm[off+int32(mi)]
		}
		return off + int32(mi)
	}
	ov := k.ov
	if q < len(ov.subOff) && mi < int(ov.baseLen[q]) {
		return ov.subOff[q] + int32(mi)
	}
	if q < len(ov.subOff) {
		return ov.tails[q][mi-int(ov.baseLen[q])]
	}
	return ov.tails[q][mi]
}

// AppendSubset registers a new, initially empty subset at the end of the
// subset list; its members are added with AppendMemberRow.
func (k *Kernel) AppendSubset() {
	ov := k.ensureOverlay()
	k.rowLen = append(k.rowLen, 0)
	ov.tails = append(ov.tails, nil)
}

// AppendPhoto grows the photo count by one; the new photo occupies no rows
// until AppendMemberRow is called for it.
func (k *Kernel) AppendPhoto() {
	ov := k.ensureOverlay()
	k.photos++
	ov.tailOcc = append(ov.tailOcc, nil)
}

// AppendMemberRow appends photo p as the next member of subset q and records
// its similarity row: one entry per neighbour (earlier members of q only,
// ascending member index) plus the trailing self entry with sim 1. Fused W·R
// products are written as 0 — the caller renormalizes relevance for the
// whole batch and then calls RewriteWR, which fills them. Calls for one
// photo must arrive in ascending subset order so its occurrence list stays
// sorted (base photos may only join appended subsets, which always sort
// after their base occurrences).
func (k *Kernel) AppendMemberRow(q int, p PhotoID, neighbors []Neighbor) int32 {
	ov := k.ensureOverlay()
	if q >= len(k.rowLen) {
		panic("par: AppendMemberRow subset out of range")
	}
	if int(p) >= k.photos {
		panic("par: AppendMemberRow photo out of range")
	}
	row := int32(ov.baseRows + len(ov.rowSub))
	mi := int(k.rowLen[q])
	ov.rowSub = append(ov.rowSub, int32(q))
	ov.rowMi = append(ov.rowMi, int32(mi))
	ov.tails[q] = append(ov.tails[q], row)
	k.rowLen[q]++

	for _, nb := range neighbors {
		if nb.Index >= mi {
			panic("par: AppendMemberRow neighbour is not an earlier member")
		}
		nbRow := k.RowOf(q, nb.Index)
		ov.extra[row] = append(ov.extra[row], kentry{idx: nbRow, sim: nb.Sim})
		ov.extra[nbRow] = append(ov.extra[nbRow], kentry{idx: row, sim: nb.Sim})
		ov.extraN += 2
	}
	ov.extra[row] = append(ov.extra[row], kentry{idx: row, sim: 1})
	ov.extraN++

	if int(p) < ov.basePhotos {
		ov.extraOcc[p] = append(ov.extraOcc[p], row)
	} else {
		ov.tailOcc[int(p)-ov.basePhotos] = append(ov.tailOcc[int(p)-ov.basePhotos], row)
	}
	return row
}

// TombstoneRow zeroes every entry of subset q's mi-th member's row except
// the self entry, so the removed member can never again contribute gain as a
// cover candidate. The symmetric entries in its neighbours' rows are left in
// place: after the caller renormalizes (the removed member's relevance drops
// to 0) and calls RewriteWR, their W·R products are 0, so they contribute
// exactly +0.0 to any gain — bit-identical to their absence.
func (k *Kernel) TombstoneRow(q, mi int) {
	ov := k.ensureOverlay()
	r := k.RowOf(q, mi)
	zeroed := 0
	if int(r) < ov.baseRows {
		lo, hi := k.rowStart[r], k.rowStart[r+1]
		for t := lo; t < hi; t++ {
			if k.nbrIdx[t] != r && k.nbrSim[t] != 0 {
				k.nbrSim[t] = 0
				k.nbrWR[t] = 0
				zeroed++
			}
		}
	}
	ex := ov.extra[r]
	for t := range ex {
		if ex[t].idx != r && ex[t].sim != 0 {
			ex[t].sim = 0
			ex[t].wr = 0
			zeroed++
		}
	}
	// Each zeroed pair leaves a wr-0 mirror entry in the neighbour's row;
	// count both sides as dead for the compaction heuristic.
	ov.dead += 2 * zeroed
	ov.deadRow[r] = true
}

// RowDead reports whether subset q's mi-th member row was tombstoned.
func (k *Kernel) RowDead(q, mi int) bool {
	return k.ov != nil && k.ov.deadRow[k.RowOf(q, mi)]
}

// RewriteWR refreshes the fused W·R product of every live entry in subset
// q's rows after a relevance renormalization: wr = weight · rel[target
// member]. Tombstoned entries (sim 0) stay 0.
func (k *Kernel) RewriteWR(q int, weight float64, rel []float64) {
	ov := k.ensureOverlay()
	miOf := func(ix int32) int32 {
		if int(ix) < ov.baseRows {
			return ix - ov.subOff[q]
		}
		return ov.rowMi[int(ix)-ov.baseRows]
	}
	rewriteRow := func(r int32) {
		if int(r) < ov.baseRows {
			lo, hi := k.rowStart[r], k.rowStart[r+1]
			for t := lo; t < hi; t++ {
				if k.nbrSim[t] != 0 {
					k.nbrWR[t] = weight * rel[miOf(k.nbrIdx[t])]
				}
			}
		}
		ex := ov.extra[r]
		for t := range ex {
			if ex[t].sim != 0 {
				ex[t].wr = weight * rel[miOf(ex[t].idx)]
			}
		}
	}
	if q < len(ov.subOff) {
		for i := int32(0); i < ov.baseLen[q]; i++ {
			rewriteRow(ov.subOff[q] + i)
		}
	}
	for _, r := range ov.tails[q] {
		rewriteRow(r)
	}
}

// occRows invokes fn over every row photo p occupies, in subset order,
// under the overlay layout.
func (ov *kernOverlay) occRows(k *Kernel, p PhotoID, fn func(r int32)) {
	if int(p) < ov.basePhotos {
		for _, r := range k.occRow[k.occStart[p]:k.occStart[p+1]] {
			fn(r)
		}
		for _, r := range ov.extraOcc[p] {
			fn(r)
		}
		return
	}
	for _, r := range ov.tailOcc[int(p)-ov.basePhotos] {
		fn(r)
	}
}

// gain is Kernel.gain under an overlay.
func (ov *kernOverlay) gain(k *Kernel, best []float64, p PhotoID) float64 {
	var gain float64
	ov.occRows(k, p, func(r int32) {
		if int(r) < ov.baseRows {
			lo, hi := k.rowStart[r], k.rowStart[r+1]
			idx := k.nbrIdx[lo:hi]
			sim := k.nbrSim[lo:hi]
			wr := k.nbrWR[lo:hi]
			for t, ix := range idx {
				if d := sim[t] - best[ix]; d > 0 {
					gain += wr[t] * d
				}
			}
		}
		for _, e := range ov.extra[r] {
			if d := e.sim - best[e.idx]; d > 0 {
				gain += e.wr * d
			}
		}
	})
	return gain
}

// add is Kernel.add under an overlay.
func (ov *kernOverlay) add(k *Kernel, best []float64, p PhotoID) float64 {
	var gain float64
	ov.occRows(k, p, func(r int32) {
		if int(r) < ov.baseRows {
			lo, hi := k.rowStart[r], k.rowStart[r+1]
			idx := k.nbrIdx[lo:hi]
			sim := k.nbrSim[lo:hi]
			wr := k.nbrWR[lo:hi]
			for t, ix := range idx {
				if d := sim[t] - best[ix]; d > 0 {
					gain += wr[t] * d
					best[ix] = sim[t]
				}
			}
		}
		ex := ov.extra[r]
		for t := range ex {
			if d := ex[t].sim - best[ex[t].idx]; d > 0 {
				gain += ex[t].wr * d
				best[ex[t].idx] = ex[t].sim
			}
		}
	})
	return gain
}

// overlayBytes estimates the memory retained by the overlay, for prepared-
// size accounting.
func (ov *kernOverlay) overlayBytes() int64 {
	n := 4 * int64(len(ov.subOff)+len(ov.baseLen)+len(ov.rowSub)+len(ov.rowMi))
	for _, t := range ov.tails {
		n += 4 * int64(len(t))
	}
	// kentry is 24 bytes; charge map overhead at a flat 16 per row key.
	n += 24*int64(ov.extraN) + 16*int64(len(ov.extra))
	for _, o := range ov.tailOcc {
		n += 4 * int64(len(o))
	}
	for _, o := range ov.extraOcc {
		n += 4*int64(len(o)) + 16
	}
	return n
}

// validateOverlayOrder is a test hook: it checks that every row's entries
// are in ascending member order (the bit-identity invariant) and that
// occurrence lists are subset-ascending.
func (k *Kernel) validateOverlayOrder() error {
	ov := k.ov
	if ov == nil {
		return nil
	}
	miGlobal := func(ix int32) (sub, mi int32) {
		if int(ix) >= ov.baseRows {
			return ov.rowSub[int(ix)-ov.baseRows], ov.rowMi[int(ix)-ov.baseRows]
		}
		for q := len(ov.subOff) - 1; q >= 0; q-- {
			if ix >= ov.subOff[q] {
				return int32(q), ix - ov.subOff[q]
			}
		}
		return -1, -1
	}
	for r, ex := range ov.extra {
		last := int32(-1)
		if int(r) < ov.baseRows && k.rowStart[r] < k.rowStart[r+1] {
			_, last = miGlobal(k.nbrIdx[k.rowStart[r+1]-1])
		}
		for _, e := range ex {
			_, mi := miGlobal(e.idx)
			if mi <= last {
				return fmt.Errorf("par: row %d extras out of ascending member order", r)
			}
			last = mi
		}
	}
	return nil
}
