package par

import "phocus/internal/pool"

// Evaluator incrementally maintains the objective value of a growing
// solution. It is the workhorse shared by every solver: computing the
// marginal gain of a candidate photo touches only the subsets containing it,
// and within each subset only the members with positive similarity to it
// when the subset's Similarity implements NeighborLister.
//
// The evaluator tracks, for every (subset, member) pair, the similarity of
// the member's current nearest neighbour in the solution ("best" value,
// 0 while the solution contains no member of the subset). Adding photo p
// raises the best value of every member whose similarity to p exceeds it.
//
// When the instance has a compiled Kernel attached (see CompileKernel), the
// gain/add hot path runs the kernel's flat CSR scan instead of the jagged
// reference loops below; both paths read and write the same flat best
// storage and produce bit-identical results, so which one runs is invisible
// through the public API.
type Evaluator struct {
	inst *Instance
	kern *Kernel // inst.Kernel() at construction; nil → jagged reference path
	// flat holds one best slot per (subset, member) pair in kernel row order:
	// subsets in order, members in order within each. best[qi] is a view into
	// it, so the jagged reference path and the kernel share storage.
	flat  []float64
	best  [][]float64 // per subset, per member: SIM(q, p, NN(q,p,S))
	inSol []bool
	sol   []PhotoID
	cost  float64
	score float64

	// gainEvals counts Gain/Add calls, the unit of work the paper uses to
	// compare algorithm efficiency (Ω(B·n⁴) vs O(B·n)).
	gainEvals int64
}

// NewEvaluator returns an evaluator for the empty solution. The instance
// must be finalized. Retained photos (S0) are NOT pre-added; solvers add
// them explicitly so the gain accounting stays uniform — use Seed for that.
func NewEvaluator(inst *Instance) *Evaluator {
	rows := 0
	for qi := range inst.Subsets {
		rows += len(inst.Subsets[qi].Members)
	}
	e := &Evaluator{
		inst:  inst,
		kern:  inst.kern,
		flat:  make([]float64, rows),
		inSol: make([]bool, inst.NumPhotos()),
	}
	// Under a kernel mutation overlay (see kerneldelta.go) rows appended
	// after compile time sit at the tail of the flat array instead of inside
	// their subset's span, so the canonical subset-major views would lie;
	// leave them nil — the kernel hot path indexes flat directly and the
	// jagged reference path is unreachable while a kernel is attached.
	if e.kern == nil || e.kern.Canonical() {
		e.best = make([][]float64, len(inst.Subsets))
		off := 0
		for qi := range inst.Subsets {
			k := len(inst.Subsets[qi].Members)
			e.best[qi] = e.flat[off : off+k : off+k]
			off += k
		}
	}
	return e
}

// ResetFor rebinds the evaluator to inst and clears it back to the empty
// solution, reusing every buffer when shapes match — the allocation-free
// solve path resets one pooled evaluator per run instead of constructing a
// fresh one. inst must be finalized; when its shape differs from the
// evaluator's (row count, photo count, per-subset member counts, or kernel
// canonicality) the evaluator is rebuilt from scratch instead.
func (e *Evaluator) ResetFor(inst *Instance) {
	rows := 0
	for qi := range inst.Subsets {
		rows += len(inst.Subsets[qi].Members)
	}
	kern := inst.kern
	wantViews := kern == nil || kern.Canonical()
	if rows != len(e.flat) || inst.NumPhotos() != len(e.inSol) ||
		wantViews != (e.best != nil) ||
		(e.best != nil && len(e.best) != len(inst.Subsets)) {
		*e = *NewEvaluator(inst)
		return
	}
	if e.best != nil {
		for qi := range e.best {
			if len(e.best[qi]) != len(inst.Subsets[qi].Members) {
				*e = *NewEvaluator(inst)
				return
			}
		}
	}
	e.inst, e.kern = inst, kern
	clear(e.flat)
	clear(e.inSol)
	e.sol = e.sol[:0]
	e.cost, e.score, e.gainEvals = 0, 0, 0
}

// Seed adds all retained photos S0 to the solution and returns the score
// they contribute. Budget is not checked here: Instance.Finalize already
// guarantees C(S0) ≤ B.
func (e *Evaluator) Seed() float64 {
	var gained float64
	for _, p := range e.inst.Retained {
		if !e.inSol[p] {
			gained += e.Add(p)
		}
	}
	return gained
}

// Gain returns the marginal gain G(S ∪ {p}) − G(S) of adding p to the
// current solution, without modifying it. Adding a photo already in the
// solution gains 0.
func (e *Evaluator) Gain(p PhotoID) float64 {
	e.gainEvals++
	return e.gainOf(p)
}

// Gains computes the marginal gain of every photo in ps against the current
// solution, fanning the evaluations out over up to workers goroutines
// (workers ≤ 0 means one per CPU). Each evaluation follows the read-only
// Gain path — it touches the evaluator's state but never mutates it — so
// concurrent evaluations are safe as long as no Add/Seed runs concurrently.
// out[i] is exactly what Gain(ps[i]) would have returned sequentially: the
// per-photo summation order is unchanged, so results are bit-identical for
// every worker count. The gain-eval counter advances by len(ps) regardless
// of worker count.
func (e *Evaluator) Gains(ps []PhotoID, workers int) []float64 {
	out := make([]float64, len(ps))
	e.GainsInto(out, ps, workers)
	return out
}

// GainsInto is Gains writing into a caller-owned buffer, for hot loops
// (CELF's batched stale-entry recompute) that would otherwise allocate a
// fresh result slice per round. dst must have len(ps) slots; dst[i] receives
// exactly what Gain(ps[i]) would return. Evaluations are fanned out in
// chunks so a batch costs one closure dispatch per chunk rather than per
// photo.
func (e *Evaluator) GainsInto(dst []float64, ps []PhotoID, workers int) {
	if len(dst) != len(ps) {
		panic("par: GainsInto dst length does not match ps")
	}
	pool.ForEachChunk(len(ps), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = e.gainOf(ps[i])
		}
	})
	e.gainEvals += int64(len(ps))
}

// gainOf is the shared read-only gain computation behind Gain and Gains. It
// must not mutate any evaluator state: Gains calls it from multiple
// goroutines.
func (e *Evaluator) gainOf(p PhotoID) float64 {
	if e.inSol[p] {
		return 0
	}
	if e.kern != nil {
		return e.kern.gain(e.flat, p)
	}
	var gain float64
	for _, oc := range e.inst.Occurrences(p) {
		q := &e.inst.Subsets[oc.Subset]
		best := e.best[oc.Subset]
		if nl, ok := q.Sim.(NeighborLister); ok {
			for _, nb := range nl.Neighbors(oc.Index) {
				if d := nb.Sim - best[nb.Index]; d > 0 {
					gain += q.Weight * q.Relevance[nb.Index] * d
				}
			}
			continue
		}
		for mi := range q.Members {
			if d := q.Sim.Sim(mi, oc.Index) - best[mi]; d > 0 {
				gain += q.Weight * q.Relevance[mi] * d
			}
		}
	}
	return gain
}

// Add inserts p into the solution and returns the realized marginal gain.
// The caller is responsible for budget checks.
func (e *Evaluator) Add(p PhotoID) float64 {
	e.gainEvals++
	if e.inSol[p] {
		return 0
	}
	var gain float64
	if e.kern != nil {
		gain = e.kern.add(e.flat, p)
	} else {
		for _, oc := range e.inst.Occurrences(p) {
			q := &e.inst.Subsets[oc.Subset]
			best := e.best[oc.Subset]
			if nl, ok := q.Sim.(NeighborLister); ok {
				for _, nb := range nl.Neighbors(oc.Index) {
					if d := nb.Sim - best[nb.Index]; d > 0 {
						gain += q.Weight * q.Relevance[nb.Index] * d
						best[nb.Index] = nb.Sim
					}
				}
				continue
			}
			for mi := range q.Members {
				if s := q.Sim.Sim(mi, oc.Index); s > best[mi] {
					gain += q.Weight * q.Relevance[mi] * (s - best[mi])
					best[mi] = s
				}
			}
		}
	}
	e.inSol[p] = true
	e.sol = append(e.sol, p)
	e.cost += e.inst.Cost[p]
	e.score += gain
	return gain
}

// Contains reports whether p is in the current solution.
func (e *Evaluator) Contains(p PhotoID) bool { return e.inSol[p] }

// Score returns G(S) for the current solution.
func (e *Evaluator) Score() float64 { return e.score }

// Cost returns C(S) for the current solution.
func (e *Evaluator) Cost() float64 { return e.cost }

// Remaining returns the unused budget B − C(S).
func (e *Evaluator) Remaining() float64 { return e.inst.Budget - e.cost }

// Fits reports whether p can be added without exceeding the budget.
func (e *Evaluator) Fits(p PhotoID) bool {
	return e.cost+e.inst.Cost[p] <= e.inst.Budget+budgetSlack(e.inst.Budget)
}

// GainEvals returns the number of marginal-gain evaluations performed so
// far (Gain and Add calls combined).
func (e *Evaluator) GainEvals() int64 { return e.gainEvals }

// Solution returns a copy of the current solution as a Solution value.
func (e *Evaluator) Solution() Solution {
	photos := make([]PhotoID, len(e.sol))
	copy(photos, e.sol)
	return Solution{Photos: photos, Score: e.score, Cost: e.cost}
}

// SolutionView returns the current solution without copying the photo list.
// The returned Photos alias the evaluator's internal buffer: they are valid
// only until the next Add, Seed or ResetFor, and must not be modified. The
// allocation-free solve path reads through it and copies into caller-owned
// storage itself; everyone else wants Solution.
func (e *Evaluator) SolutionView() Solution {
	return Solution{Photos: e.sol, Score: e.score, Cost: e.cost}
}

// Clone returns an independent copy of the evaluator sharing the instance.
// Branch-and-bound and enumeration solvers use it to explore alternatives.
func (e *Evaluator) Clone() *Evaluator {
	c := &Evaluator{
		inst:      e.inst,
		kern:      e.kern,
		flat:      make([]float64, len(e.flat)),
		inSol:     make([]bool, len(e.inSol)),
		sol:       make([]PhotoID, len(e.sol)),
		cost:      e.cost,
		score:     e.score,
		gainEvals: e.gainEvals,
	}
	copy(c.flat, e.flat)
	if e.best != nil {
		c.best = make([][]float64, len(e.best))
		off := 0
		for qi := range e.best {
			k := len(e.best[qi])
			c.best[qi] = c.flat[off : off+k : off+k]
			off += k
		}
	}
	copy(c.inSol, e.inSol)
	copy(c.sol, e.sol)
	return c
}

// ScoreFast computes G(S) through the incremental evaluator: cost
// proportional to the solution's subset-row touches instead of Score's
// all-pairs scan, which matters on instances with large subsets. Score
// remains the independent reference implementation the evaluator (and
// therefore this function) is tested against.
func ScoreFast(inst *Instance, s []PhotoID) float64 {
	e := NewEvaluator(inst)
	for _, p := range s {
		e.Add(p)
	}
	return e.Score()
}

// CoverageVector computes, for every (subset, member) pair, the similarity
// of the member's nearest neighbour within the given photo set:
// out[qi][mi] = SIM(q, p_mi, NN(q, p_mi, S)), 0 where S covers nothing.
// It is the per-item decomposition of Score, used by serving simulations
// to value individual accesses.
func CoverageVector(inst *Instance, s []PhotoID) [][]float64 {
	e := NewEvaluator(inst)
	for _, p := range s {
		e.Add(p)
	}
	out := make([][]float64, len(inst.Subsets))
	if e.best != nil {
		for qi := range e.best {
			out[qi] = make([]float64, len(e.best[qi]))
			copy(out[qi], e.best[qi])
		}
		return out
	}
	// Non-canonical kernel: the flat array is indexed by overlay row ids, so
	// map each (subset, member) slot through the kernel's row lookup.
	for qi := range inst.Subsets {
		out[qi] = make([]float64, len(inst.Subsets[qi].Members))
		for mi := range out[qi] {
			// Tombstoned rows can carry stale best values raised through
			// wr-0 mirror entries; a removed member covers nothing.
			if e.kern.RowDead(qi, mi) {
				continue
			}
			out[qi][mi] = e.flat[e.kern.RowOf(qi, mi)]
		}
	}
	return out
}

// Score computes G(S) for an arbitrary solution from first principles: for
// every subset member it scans the whole subset for the nearest neighbour in
// S. It is the reference implementation the incremental evaluator is tested
// against, and the scorer used to evaluate baseline selections under the
// true objective.
func Score(inst *Instance, s []PhotoID) float64 {
	inSol := make([]bool, inst.NumPhotos())
	for _, p := range s {
		inSol[p] = true
	}
	var total float64
	for qi := range inst.Subsets {
		q := &inst.Subsets[qi]
		var qScore float64
		for mi := range q.Members {
			var best float64
			for mj, pj := range q.Members {
				if !inSol[pj] {
					continue
				}
				if sim := q.Sim.Sim(mi, mj); sim > best {
					best = sim
				}
			}
			qScore += q.Relevance[mi] * best
		}
		total += q.Weight * qScore
	}
	return total
}
