package par

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON checks the JSON loader never panics and only ever returns
// finalized, internally consistent instances.
func FuzzReadJSON(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteJSON(&valid, Figure1Instance()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add(`{}`)
	f.Add(`{"costs":[1],"budget":1,"subsets":[{"name":"q","weight":1,"members":[0],"relevance":[1],"sim":[]}]}`)
	f.Add(`{"costs":[1,2],"budget":-5,"subsets":[]}`)
	f.Add(`{"costs":[1,1],"budget":2,"subsets":[{"name":"q","weight":1,"members":[0,1],"relevance":[0.5,0.5],"sim":[{"i":0,"j":1,"s":2}]}]}`)
	f.Fuzz(func(t *testing.T, data string) {
		inst, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		// A successfully loaded instance must behave: scoring any prefix
		// solution must not panic and must be within the objective's range.
		n := inst.NumPhotos()
		sol := make([]PhotoID, 0, n)
		for p := 0; p < n && p < 8; p++ {
			sol = append(sol, PhotoID(p))
		}
		score := Score(inst, sol)
		if score < 0 || score > inst.TotalWeight()+1e-9 {
			t.Fatalf("score %g outside [0, %g]", score, inst.TotalWeight())
		}
		// Round-trip must stay loadable.
		var buf bytes.Buffer
		if err := WriteJSON(&buf, inst); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := ReadJSON(&buf); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
