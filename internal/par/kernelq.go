package par

import (
	"fmt"
	"math"
)

// QuantMode selects the storage precision of a derived solver kernel's
// similarity slabs (see KernelQ).
type QuantMode uint8

const (
	// QuantNone is the canonical layout: nbrSim/nbrWR as float64.
	QuantNone QuantMode = iota
	// QuantF32 stores nbrSim as float32 (nbrWR stays shared with the source
	// kernel at f64), halving the similarity stream without paying a
	// per-entry weight conversion in the gain scan.
	QuantF32
	// QuantFixed16 stores nbrSim as 16-bit fixed point over (0, 1] (scale
	// 1/65535) and nbrWR as float32. Experimental: a further 2× on the
	// similarity stream, with a coarser value grid and therefore a higher
	// chance of the tie audit rejecting the instance.
	QuantFixed16
)

// String returns the flag spelling of the mode.
func (m QuantMode) String() string {
	switch m {
	case QuantNone:
		return "f64"
	case QuantF32:
		return "f32"
	case QuantFixed16:
		return "fixed16"
	default:
		return fmt.Sprintf("QuantMode(%d)", int(m))
	}
}

// ParseQuantMode parses the -quantize flag spellings: "" or "f64" (off),
// "f32", and "fixed16".
func ParseQuantMode(s string) (QuantMode, error) {
	switch s {
	case "", "f64", "off":
		return QuantNone, nil
	case "f32":
		return QuantF32, nil
	case "fixed16":
		return QuantFixed16, nil
	}
	return QuantNone, fmt.Errorf("par: unknown quantization mode %q: want f64, f32 or fixed16", s)
}

// fix16Inv dequantizes a QuantFixed16 similarity: sim ≈ u · fix16Inv.
const fix16Inv = 1.0 / 65535

// quantFix16 quantizes a similarity in (0, 1] onto the 16-bit grid. Rounding
// is monotone non-decreasing, which is what the tie audit relies on: two
// distinct f64 similarities can collapse onto one grid point but can never
// swap order.
func quantFix16(s float64) uint16 {
	if s >= 1 {
		return math.MaxUint16
	}
	if s <= 0 {
		return 0
	}
	return uint16(math.Round(s * 65535))
}

// KernelQ derives a quantized twin of a canonical (or row-blocked) kernel:
// the integer slabs (row starts, neighbour indices, occurrence spans) are
// shared with the source, the similarity value slabs are re-stored at the
// mode's precision, and the f64 slabs are dropped — the point is footprint
// and bandwidth, and the canonical kernel survives separately for exact
// rescoring.
//
// The derivation is gated by an epsilon-tie audit against the one
// qualitative failure quantization can introduce. Both quantizers are
// monotone, so for every slot the best array holds Q(max of the f64 sims
// written so far) no matter how the solve interleaves updates — even when
// two distinct f64 similarities collapse onto one grid point, the second
// write is a value-level no-op and the only effect is a skipped gain
// contribution smaller than one grid cell, the same class as ordinary
// rounding. Collisions between stored values therefore cannot change the
// coverage structure, only perturb gain magnitudes within grid error. The
// irreducible hazard is a similarity tying with the ZERO sentinel: a
// positive value that quantizes to 0 is indistinguishable from "no edge",
// so a photo's sole coverage of a slot silently vanishes instead of
// rounding. When the audit finds one, KernelQ returns (nil, false) and the
// caller stays on f64 for this instance. Because gain magnitudes feed the
// CELF priority queue, the engine additionally pins selection identity with
// a differential gate over the bench corpus rather than per-instance.
func KernelQ(k *Kernel, mode QuantMode) (*Kernel, bool) {
	if mode == QuantNone {
		return nil, false
	}
	if k.ov != nil {
		panic("par: KernelQ on a kernel with a mutation overlay")
	}
	if k.qmode != QuantNone {
		panic("par: KernelQ on an already-quantized kernel")
	}
	if !quantTieFree(k, mode) {
		return nil, false
	}
	q := &Kernel{
		photos:   k.photos,
		rowLen:   k.rowLen,
		rowStart: k.rowStart,
		nbrIdx:   k.nbrIdx,
		occStart: k.occStart,
		occRow:   k.occRow,
		perm:     k.perm,
		iperm:    k.iperm,
		qmode:    mode,
	}
	switch mode {
	case QuantF32:
		// Keep the weight·relevance slab shared at f64: the hot loop is
		// port-bound rather than bandwidth-bound at bench scale, so
		// skipping the per-entry float32→float64 conversion buys more than
		// halving the wr stream would, and sharing the slab costs nothing.
		q.nbrWR = k.nbrWR
		q.simF32 = make([]float32, len(k.nbrSim))
		for i, s := range k.nbrSim {
			q.simF32[i] = float32(s)
		}
	case QuantFixed16:
		q.wrF32 = make([]float32, len(k.nbrWR))
		for i, w := range k.nbrWR {
			q.wrF32[i] = float32(w)
		}
		q.simFix = make([]uint16, len(k.nbrSim))
		for i, s := range k.nbrSim {
			q.simFix[i] = quantFix16(s)
		}
	}
	return q, true
}

// quantTieFree runs the epsilon-tie audit: one pass over the stored
// similarities, rejecting the mode if any positive value quantizes to zero
// and thereby ties with the best array's initial sentinel (see KernelQ for
// why same-slot collisions between stored values need no audit). O(E), paid
// once per Tune/compaction.
func quantTieFree(k *Kernel, mode QuantMode) bool {
	for _, s := range k.nbrSim {
		if s > 0 && quantZero(s, mode) {
			return false
		}
	}
	return true
}

func quantZero(s float64, mode QuantMode) bool {
	switch mode {
	case QuantF32:
		return float32(s) == 0
	case QuantFixed16:
		return quantFix16(s) == 0
	}
	return false
}

// gainF32 / addF32 / gainFix16 / addFix16 mirror the canonical f64 loops in
// kernel.go entry for entry; only the value loads change. Accumulation stays
// in float64, and the best array stores dequantized values, so comparisons
// between stored entries are exact comparisons of quantized grid points.

func (k *Kernel) gainF32(best []float64, p PhotoID) float64 {
	var gain float64
	for _, r := range k.occRow[k.occStart[p]:k.occStart[p+1]] {
		lo, hi := k.rowStart[r], k.rowStart[r+1]
		idx := k.nbrIdx[lo:hi]
		sim := k.simF32[lo:hi]
		wr := k.nbrWR[lo:hi]
		for t, ix := range idx {
			// Branchless like the canonical loop in kernel.go.
			gain += wr[t] * max(float64(sim[t])-best[ix], 0)
		}
	}
	return gain
}

func (k *Kernel) addF32(best []float64, p PhotoID) float64 {
	var gain float64
	for _, r := range k.occRow[k.occStart[p]:k.occStart[p+1]] {
		lo, hi := k.rowStart[r], k.rowStart[r+1]
		idx := k.nbrIdx[lo:hi]
		sim := k.simF32[lo:hi]
		wr := k.nbrWR[lo:hi]
		for t, ix := range idx {
			s := float64(sim[t])
			if d := s - best[ix]; d > 0 {
				gain += wr[t] * d
				best[ix] = s
			}
		}
	}
	return gain
}

func (k *Kernel) gainFix16(best []float64, p PhotoID) float64 {
	var gain float64
	for _, r := range k.occRow[k.occStart[p]:k.occStart[p+1]] {
		lo, hi := k.rowStart[r], k.rowStart[r+1]
		idx := k.nbrIdx[lo:hi]
		sim := k.simFix[lo:hi]
		wr := k.wrF32[lo:hi]
		for t, ix := range idx {
			gain += float64(wr[t]) * max(float64(sim[t])*fix16Inv-best[ix], 0)
		}
	}
	return gain
}

func (k *Kernel) addFix16(best []float64, p PhotoID) float64 {
	var gain float64
	for _, r := range k.occRow[k.occStart[p]:k.occStart[p+1]] {
		lo, hi := k.rowStart[r], k.rowStart[r+1]
		idx := k.nbrIdx[lo:hi]
		sim := k.simFix[lo:hi]
		wr := k.wrF32[lo:hi]
		for t, ix := range idx {
			s := float64(sim[t]) * fix16Inv
			if d := s - best[ix]; d > 0 {
				gain += float64(wr[t]) * d
				best[ix] = s
			}
		}
	}
	return gain
}
