package par

import "sort"

// Similarity is the contextualized similarity function of a single
// pre-defined subset. Indices are positions within the subset's Members
// slice, not global photo IDs: Sim(i, j) is the similarity between the i-th
// and j-th members of the subset in this subset's context.
//
// Implementations must be symmetric, return values in [0,1], and return 1
// for i == j.
type Similarity interface {
	// Sim returns the contextual similarity of members i and j.
	Sim(i, j int) float64
	// Len returns the number of members the similarity is defined over.
	Len() int
}

// NeighborLister is an optional extension of Similarity. Implementations
// expose, for each member, the list of members with strictly positive
// similarity to it. Solvers use it to restrict marginal-gain computations to
// actual neighbours, which is what makes τ-sparsification pay off.
//
// Neighbors(i) must include i itself (with similarity 1) and must be
// consistent with Sim: every pair absent from the list has Sim == 0.
type NeighborLister interface {
	Similarity
	Neighbors(i int) []Neighbor
}

// Neighbor is one entry of a sparse similarity row.
type Neighbor struct {
	Index int     // member index within the subset
	Sim   float64 // similarity, in (0, 1]
}

// DenseSim is a dense symmetric similarity matrix over k members. The zero
// value is unusable; construct with NewDenseSim. Only the upper triangle is
// stored.
type DenseSim struct {
	n    int
	vals []float64 // upper triangle, row-major, excluding diagonal
}

// NewDenseSim returns a DenseSim over n members with all off-diagonal
// similarities 0.
func NewDenseSim(n int) *DenseSim {
	if n < 0 {
		panic("par: NewDenseSim with negative size")
	}
	return &DenseSim{n: n, vals: make([]float64, n*(n-1)/2)}
}

func (d *DenseSim) idx(i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Offset of row i in the packed upper triangle, plus column offset.
	return i*(2*d.n-i-1)/2 + (j - i - 1)
}

// Len returns the number of members.
func (d *DenseSim) Len() int { return d.n }

// Sim returns the stored similarity (1 on the diagonal).
func (d *DenseSim) Sim(i, j int) float64 {
	if i == j {
		return 1
	}
	return d.vals[d.idx(i, j)]
}

// Set stores the similarity for the (unordered) pair {i, j}. Setting the
// diagonal or a value outside [0,1] panics: both indicate a bug in the
// caller's construction code, not a recoverable condition.
func (d *DenseSim) Set(i, j int, sim float64) {
	if i == j {
		panic("par: DenseSim.Set on diagonal")
	}
	if sim < 0 || sim > 1 {
		panic("par: similarity out of [0,1]")
	}
	d.vals[d.idx(i, j)] = sim
}

// SparseSim stores, for each member, only the neighbours with positive
// similarity. It is the natural representation after τ-sparsification.
// Rows are kept sorted by neighbour index, so point lookups cost O(log deg)
// instead of a linear scan — the Sim path matters for solvers running on
// subsets whose Similarity does not go through NeighborLister.
type SparseSim struct {
	rows [][]Neighbor
}

// NewSparseSim returns a SparseSim over n members where every member's only
// neighbour is itself.
func NewSparseSim(n int) *SparseSim {
	rows := make([][]Neighbor, n)
	for i := range rows {
		rows[i] = []Neighbor{{Index: i, Sim: 1}}
	}
	return &SparseSim{rows: rows}
}

// Len returns the number of members.
func (s *SparseSim) Len() int { return len(s.rows) }

// Sim returns the similarity of members i and j (0 if not neighbours) by
// binary search over the sorted row.
func (s *SparseSim) Sim(i, j int) float64 {
	if i == j {
		return 1
	}
	row := s.rows[i]
	k := sort.Search(len(row), func(x int) bool { return row[x].Index >= j })
	if k < len(row) && row[k].Index == j {
		return row[k].Sim
	}
	return 0
}

// Contains reports whether the pair {i, j} has a stored positive similarity
// (true for i == j). Loaders use it to reject duplicate pairs in untrusted
// input with an error instead of Add's panic.
func (s *SparseSim) Contains(i, j int) bool {
	return s.Sim(i, j) != 0
}

// Neighbors returns the positive-similarity row of member i, sorted by
// neighbour index. The returned slice is owned by the SparseSim and must not
// be modified.
func (s *SparseSim) Neighbors(i int) []Neighbor { return s.rows[i] }

// Add records similarity sim for the unordered pair {i, j} in both rows,
// keeping the rows sorted. Re-adding a pair panics like the other
// construction errors: a duplicate entry would silently double-count the
// neighbour in every gain computation.
func (s *SparseSim) Add(i, j int, sim float64) {
	if i == j {
		panic("par: SparseSim.Add on diagonal")
	}
	if sim <= 0 || sim > 1 {
		panic("par: similarity out of (0,1]")
	}
	s.insert(i, j, sim)
	s.insert(j, i, sim)
}

// AppendMembers grows the similarity by n new members, each initially
// neighbouring only itself — the incremental-maintenance mirror of
// NewSparseSim's seeding. New pairs are recorded with Add.
func (s *SparseSim) AppendMembers(n int) {
	for i := 0; i < n; i++ {
		s.rows = append(s.rows, []Neighbor{{Index: len(s.rows), Sim: 1}})
	}
}

// RemovePair deletes the unordered pair {i, j} from both rows, returning the
// stored similarity and whether the pair was present. Removing the diagonal
// panics like Add's construction errors. Absent pairs are a no-op (false):
// delta maintenance removes a member's pairs by enumerating one row while
// mutating both, so idempotence matters more than strictness here.
func (s *SparseSim) RemovePair(i, j int) (float64, bool) {
	if i == j {
		panic("par: SparseSim.RemovePair on diagonal")
	}
	sim, ok := s.removeHalf(i, j)
	if !ok {
		return 0, false
	}
	s.removeHalf(j, i)
	return sim, true
}

// removeHalf deletes {Index: j} from row i if present.
func (s *SparseSim) removeHalf(i, j int) (float64, bool) {
	row := s.rows[i]
	k := sort.Search(len(row), func(x int) bool { return row[x].Index >= j })
	if k >= len(row) || row[k].Index != j {
		return 0, false
	}
	sim := row[k].Sim
	s.rows[i] = append(row[:k], row[k+1:]...)
	return sim, true
}

// insert places {Index: j, Sim: sim} into row i at its sorted position.
func (s *SparseSim) insert(i, j int, sim float64) {
	row := s.rows[i]
	k := sort.Search(len(row), func(x int) bool { return row[x].Index >= j })
	if k < len(row) && row[k].Index == j {
		panic("par: SparseSim.Add of duplicate pair")
	}
	row = append(row, Neighbor{})
	copy(row[k+1:], row[k:])
	row[k] = Neighbor{Index: j, Sim: sim}
	s.rows[i] = row
}

// SparseSimBuilder constructs a SparseSim by appending pairs and sorting
// each row once at Build time. SparseSim.Add keeps rows sorted per insert,
// which costs O(deg) copies per pair — O(deg²) per row — and dominates exact
// sparsification of dense subsets; the builder makes bulk construction
// O(deg log deg) per row. Use Add for incremental post-Build maintenance;
// use the builder whenever all pairs are known up front.
type SparseSimBuilder struct {
	rows [][]Neighbor
}

// NewSparseSimBuilder returns a builder over n members, each seeded with its
// self-neighbour (similarity 1), matching NewSparseSim.
func NewSparseSimBuilder(n int) *SparseSimBuilder {
	rows := make([][]Neighbor, n)
	for i := range rows {
		rows[i] = []Neighbor{{Index: i, Sim: 1}}
	}
	return &SparseSimBuilder{rows: rows}
}

// Add records similarity sim for the unordered pair {i, j} in both rows.
// Argument validation matches SparseSim.Add; duplicate detection is
// deferred to Build, where the sorted rows make it a linear scan.
func (b *SparseSimBuilder) Add(i, j int, sim float64) {
	if i == j {
		panic("par: SparseSimBuilder.Add on diagonal")
	}
	if sim <= 0 || sim > 1 {
		panic("par: similarity out of (0,1]")
	}
	b.rows[i] = append(b.rows[i], Neighbor{Index: j, Sim: sim})
	b.rows[j] = append(b.rows[j], Neighbor{Index: i, Sim: sim})
}

// Build sorts every row by neighbour index and hands the rows over to a
// SparseSim; the builder must not be used afterwards. A pair added twice
// panics here with SparseSim.Add's duplicate message: a duplicate entry
// would silently double-count the neighbour in every gain computation.
func (b *SparseSimBuilder) Build() *SparseSim {
	for _, row := range b.rows {
		// Sparsification emits pairs in ascending order, so rows arrive
		// nearly or fully sorted; checking first skips the sort entirely.
		if !sort.SliceIsSorted(row, func(x, y int) bool { return row[x].Index < row[y].Index }) {
			sort.Slice(row, func(x, y int) bool { return row[x].Index < row[y].Index })
		}
		for t := 1; t < len(row); t++ {
			if row[t].Index == row[t-1].Index {
				panic("par: SparseSim.Add of duplicate pair")
			}
		}
	}
	s := &SparseSim{rows: b.rows}
	b.rows = nil
	return s
}

// FuncSim adapts an arbitrary function to the Similarity interface. It is
// convenient in tests and for instances whose similarity is computed on the
// fly (for example from embeddings).
type FuncSim struct {
	N int
	F func(i, j int) float64
}

// Len returns the number of members.
func (f FuncSim) Len() int { return f.N }

// Sim evaluates the wrapped function, short-circuiting the diagonal.
func (f FuncSim) Sim(i, j int) float64 {
	if i == j {
		return 1
	}
	return f.F(i, j)
}

// UniformSim is the degenerate similarity in which every pair of members of
// the subset has similarity 1. It is the surrogate used by the Greedy-NR
// baseline and by the Maximum Coverage reduction of Theorem 3.4.
type UniformSim struct{ N int }

// Len returns the number of members.
func (u UniformSim) Len() int { return u.N }

// Sim returns 1 for every pair.
func (u UniformSim) Sim(i, j int) float64 { return 1 }

// IdentitySim is the degenerate similarity in which distinct members have
// similarity 0: a photo only ever covers itself. Together with UniformSim it
// brackets every real similarity structure, which several property tests use.
type IdentitySim struct{ N int }

// Len returns the number of members.
func (d IdentitySim) Len() int { return d.N }

// Sim returns 1 on the diagonal and 0 elsewhere.
func (d IdentitySim) Sim(i, j int) float64 {
	if i == j {
		return 1
	}
	return 0
}

// Neighbors returns the single self-neighbour of i.
func (d IdentitySim) Neighbors(i int) []Neighbor {
	return []Neighbor{{Index: i, Sim: 1}}
}
