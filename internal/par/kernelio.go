package par

import "fmt"

// KernelSlabs exposes a compiled kernel's flat arrays for serialization.
// The slices are the kernel's own backing arrays, not copies; callers must
// treat them as read-only. The field meanings are documented on Kernel.
type KernelSlabs struct {
	Photos   int
	RowLen   []int32
	RowStart []int64
	NbrIdx   []int32
	NbrSim   []float64
	NbrWR    []float64
	OccStart []int32
	OccRow   []int32
}

// Slabs returns views of the kernel's arrays for serialization. The kernel
// must be canonical: an active mutation overlay keeps state outside these
// slabs, so serializing it would silently drop appended rows — callers
// recompile (compact) first.
func (k *Kernel) Slabs() KernelSlabs {
	if !k.Canonical() {
		panic("par: Kernel.Slabs on a non-canonical kernel; compact first")
	}
	return KernelSlabs{
		Photos:   k.photos,
		RowLen:   k.rowLen,
		RowStart: k.rowStart,
		NbrIdx:   k.nbrIdx,
		NbrSim:   k.nbrSim,
		NbrWR:    k.nbrWR,
		OccStart: k.occStart,
		OccRow:   k.occRow,
	}
}

// KernelFromSlabs reassembles a Kernel from previously exported slabs
// without copying them — the slices become the kernel's backing arrays, so
// views into a loaded snapshot region turn into a usable kernel in O(rows)
// validation time and zero allocation beyond the struct.
//
// Because the slabs may come from untrusted bytes (a snapshot file that
// passed its checksums but was written by a different build, or a fuzzer),
// every structural invariant the gain/add hot path relies on is checked
// here: monotone row offsets covering the entry arrays exactly, equal-length
// parallel entry arrays, neighbour rows within range, per-subset lengths
// summing to the row count, and an occurrence index covering occRow exactly
// with in-range rows. Violations return typed errors; a kernel this
// constructor accepts can never index out of bounds.
func KernelFromSlabs(s KernelSlabs) (*Kernel, error) {
	if s.Photos < 0 {
		return nil, fmt.Errorf("par: kernel slabs: negative photo count %d", s.Photos)
	}
	rows := len(s.RowStart) - 1
	if rows < 0 {
		return nil, fmt.Errorf("par: kernel slabs: rowStart must hold at least one offset")
	}
	entries := len(s.NbrIdx)
	if len(s.NbrSim) != entries || len(s.NbrWR) != entries {
		return nil, fmt.Errorf("par: kernel slabs: entry arrays disagree: %d idx, %d sim, %d wr",
			entries, len(s.NbrSim), len(s.NbrWR))
	}
	if s.RowStart[0] != 0 || s.RowStart[rows] != int64(entries) {
		return nil, fmt.Errorf("par: kernel slabs: rowStart spans [%d,%d], want [0,%d]",
			s.RowStart[0], s.RowStart[rows], entries)
	}
	for r := 0; r < rows; r++ {
		if s.RowStart[r] > s.RowStart[r+1] {
			return nil, fmt.Errorf("par: kernel slabs: rowStart not monotone at row %d", r)
		}
	}
	for t, ix := range s.NbrIdx {
		if ix < 0 || int(ix) >= rows {
			return nil, fmt.Errorf("par: kernel slabs: entry %d targets row %d of %d", t, ix, rows)
		}
	}
	var sum int64
	for qi, l := range s.RowLen {
		if l < 0 {
			return nil, fmt.Errorf("par: kernel slabs: subset %d has negative length %d", qi, l)
		}
		sum += int64(l)
	}
	if sum != int64(rows) {
		return nil, fmt.Errorf("par: kernel slabs: subset lengths sum to %d, want %d rows", sum, rows)
	}
	if len(s.OccStart) != s.Photos+1 {
		return nil, fmt.Errorf("par: kernel slabs: occStart holds %d offsets, want photos+1 = %d",
			len(s.OccStart), s.Photos+1)
	}
	if s.Photos > 0 {
		if s.OccStart[0] != 0 || int(s.OccStart[s.Photos]) != len(s.OccRow) {
			return nil, fmt.Errorf("par: kernel slabs: occStart spans [%d,%d], want [0,%d]",
				s.OccStart[0], s.OccStart[s.Photos], len(s.OccRow))
		}
		for p := 0; p < s.Photos; p++ {
			if s.OccStart[p] > s.OccStart[p+1] {
				return nil, fmt.Errorf("par: kernel slabs: occStart not monotone at photo %d", p)
			}
		}
	} else if len(s.OccRow) != 0 {
		return nil, fmt.Errorf("par: kernel slabs: %d occurrence rows with zero photos", len(s.OccRow))
	}
	for t, r := range s.OccRow {
		if r < 0 || int(r) >= rows {
			return nil, fmt.Errorf("par: kernel slabs: occurrence %d targets row %d of %d", t, r, rows)
		}
	}
	return &Kernel{
		photos:   s.Photos,
		rowLen:   s.RowLen,
		rowStart: s.RowStart,
		nbrIdx:   s.NbrIdx,
		nbrSim:   s.NbrSim,
		nbrWR:    s.NbrWR,
		occStart: s.OccStart,
		occRow:   s.OccRow,
	}, nil
}
