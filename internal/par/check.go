package par

import (
	"fmt"
	"math"
	"math/rand"
)

// CheckSimilarity verifies by sampling that every subset's similarity
// behaves like the model requires — values in [0,1], symmetry, and 1 on
// the diagonal. Finalize cannot afford to enumerate all pairs of large
// subsets, so this check is separate; dataset generators and instance
// loaders run it in tests, and callers integrating external similarity
// sources should run it once per ingestion. samplesPerSubset bounds the
// random pairs checked per subset (the full diagonal is always checked).
func CheckSimilarity(rng *rand.Rand, inst *Instance, samplesPerSubset int) error {
	for qi := range inst.Subsets {
		q := &inst.Subsets[qi]
		k := len(q.Members)
		for i := 0; i < k; i++ {
			if got := q.Sim.Sim(i, i); got != 1 {
				return fmt.Errorf("par: subset %d (%q): SIM(p,p) = %g at member %d, want 1", qi, q.Name, got, i)
			}
		}
		if k < 2 {
			continue
		}
		for s := 0; s < samplesPerSubset; s++ {
			i := rng.Intn(k)
			j := rng.Intn(k)
			if i == j {
				continue
			}
			a := q.Sim.Sim(i, j)
			if a < 0 || a > 1 || math.IsNaN(a) {
				return fmt.Errorf("par: subset %d (%q): SIM(%d,%d) = %g outside [0,1]", qi, q.Name, i, j, a)
			}
			if b := q.Sim.Sim(j, i); math.Abs(a-b) > 1e-9 {
				return fmt.Errorf("par: subset %d (%q): SIM(%d,%d)=%g but SIM(%d,%d)=%g (asymmetric)",
					qi, q.Name, i, j, a, j, i, b)
			}
		}
		// Neighbour lists, when provided, must agree with Sim.
		if nl, ok := q.Sim.(NeighborLister); ok {
			for s := 0; s < samplesPerSubset/4+1; s++ {
				i := rng.Intn(k)
				for _, nb := range nl.Neighbors(i) {
					if got := q.Sim.Sim(i, nb.Index); math.Abs(got-nb.Sim) > 1e-9 {
						return fmt.Errorf("par: subset %d (%q): neighbour list says SIM(%d,%d)=%g, Sim says %g",
							qi, q.Name, i, nb.Index, nb.Sim, got)
					}
				}
			}
		}
	}
	return nil
}
