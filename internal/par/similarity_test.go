package par

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseSimIndexing(t *testing.T) {
	const n = 6
	d := NewDenseSim(n)
	// Fill every pair with a distinct value and read it back both ways.
	val := 0.01
	want := map[[2]int]float64{}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d.Set(i, j, val)
			want[[2]int{i, j}] = val
			val += 0.01
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			got := d.Sim(i, j)
			switch {
			case i == j:
				if got != 1 {
					t.Errorf("Sim(%d,%d) = %g, want 1 on diagonal", i, j, got)
				}
			case i < j:
				if got != want[[2]int{i, j}] {
					t.Errorf("Sim(%d,%d) = %g, want %g", i, j, got, want[[2]int{i, j}])
				}
			default:
				if got != d.Sim(j, i) {
					t.Errorf("Sim(%d,%d) = %g, not symmetric with Sim(%d,%d) = %g",
						i, j, got, j, i, d.Sim(j, i))
				}
			}
		}
	}
}

func TestDenseSimPanics(t *testing.T) {
	d := NewDenseSim(3)
	assertPanics(t, "diagonal", func() { d.Set(1, 1, 0.5) })
	assertPanics(t, "negative", func() { d.Set(0, 1, -0.1) })
	assertPanics(t, "above one", func() { d.Set(0, 1, 1.1) })
	assertPanics(t, "negative size", func() { NewDenseSim(-1) })
}

func TestSparseSim(t *testing.T) {
	s := NewSparseSim(4)
	s.Add(0, 2, 0.8)
	s.Add(1, 3, 0.3)
	if got := s.Sim(0, 2); got != 0.8 {
		t.Errorf("Sim(0,2) = %g, want 0.8", got)
	}
	if got := s.Sim(2, 0); got != 0.8 {
		t.Errorf("Sim(2,0) = %g, want 0.8 (symmetric)", got)
	}
	if got := s.Sim(0, 1); got != 0 {
		t.Errorf("Sim(0,1) = %g, want 0", got)
	}
	if got := s.Sim(3, 3); got != 1 {
		t.Errorf("Sim(3,3) = %g, want 1", got)
	}
	nb := s.Neighbors(0)
	if len(nb) != 2 || nb[0] != (Neighbor{0, 1}) || nb[1] != (Neighbor{2, 0.8}) {
		t.Errorf("Neighbors(0) = %v, want [{0 1} {2 0.8}]", nb)
	}
	assertPanics(t, "diagonal", func() { s.Add(1, 1, 0.5) })
	assertPanics(t, "zero sim", func() { s.Add(0, 1, 0) })
}

// TestSparseSimBuilderMatchesAdd: bulk building produces the exact
// structure incremental Add does — same rows, same sorted order — for
// random pair sets, including pairs added in descending order (forcing the
// builder's sort path).
func TestSparseSimBuilderMatchesAdd(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		type pair struct {
			i, j int
			sim  float64
		}
		var pairs []pair
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					pairs = append(pairs, pair{i, j, 0.01 + 0.99*rng.Float64()})
				}
			}
		}
		// Shuffle so the builder sees unsorted input on some rows.
		rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })

		incr := NewSparseSim(n)
		bld := NewSparseSimBuilder(n)
		for _, p := range pairs {
			incr.Add(p.i, p.j, p.sim)
			bld.Add(p.i, p.j, p.sim)
		}
		bulk := bld.Build()
		if bulk.Len() != incr.Len() {
			t.Fatalf("seed %d: Len %d != %d", seed, bulk.Len(), incr.Len())
		}
		for i := 0; i < n; i++ {
			a, b := incr.Neighbors(i), bulk.Neighbors(i)
			if len(a) != len(b) {
				t.Fatalf("seed %d: Neighbors(%d) lengths %d != %d", seed, i, len(a), len(b))
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("seed %d: Neighbors(%d)[%d] = %v (builder) vs %v (Add)", seed, i, k, b[k], a[k])
				}
			}
		}
	}
}

func TestSparseSimBuilderPanics(t *testing.T) {
	assertPanics(t, "diagonal", func() { NewSparseSimBuilder(3).Add(1, 1, 0.5) })
	assertPanics(t, "zero sim", func() { NewSparseSimBuilder(3).Add(0, 1, 0) })
	assertPanics(t, "above one", func() { NewSparseSimBuilder(3).Add(0, 1, 1.5) })
	assertPanics(t, "duplicate pair", func() {
		b := NewSparseSimBuilder(3)
		b.Add(0, 1, 0.5)
		b.Add(1, 0, 0.6)
		b.Build()
	})
}

func TestUniformAndIdentitySim(t *testing.T) {
	u := UniformSim{N: 5}
	if u.Sim(0, 4) != 1 || u.Sim(2, 2) != 1 {
		t.Error("UniformSim should return 1 everywhere")
	}
	id := IdentitySim{N: 5}
	if id.Sim(0, 4) != 0 || id.Sim(2, 2) != 1 {
		t.Error("IdentitySim should be 1 only on the diagonal")
	}
	if nb := id.Neighbors(3); len(nb) != 1 || nb[0] != (Neighbor{3, 1}) {
		t.Errorf("IdentitySim.Neighbors(3) = %v, want [{3 1}]", nb)
	}
}

func TestFuncSim(t *testing.T) {
	f := FuncSim{N: 3, F: func(i, j int) float64 { return 0.25 }}
	if f.Sim(1, 1) != 1 {
		t.Error("FuncSim must short-circuit the diagonal to 1")
	}
	if f.Sim(0, 2) != 0.25 {
		t.Error("FuncSim must delegate off-diagonal pairs")
	}
	if f.Len() != 3 {
		t.Error("FuncSim.Len mismatch")
	}
}

// Property: SparseSim built from a DenseSim by copying positive pairs agrees
// with the DenseSim everywhere.
func TestSparseDenseAgreementQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		d := NewDenseSim(n)
		s := NewSparseSim(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					v := rng.Float64()
					if v == 0 {
						continue
					}
					d.Set(i, j, v)
					s.Add(i, j, v)
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d.Sim(i, j) != s.Sim(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
