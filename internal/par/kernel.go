package par

import "fmt"

// Kernel is the compiled gain kernel: the entire marginal-gain/add hot path
// of an instance flattened into contiguous arrays at compile time, so that
// Evaluator.Gain and Evaluator.Add become branch-light scans over parallel
// slices with zero interface dispatch and zero multiplications beyond the
// fused-weight product.
//
// Layout. Every (subset, member) pair is one global row; rows are numbered
// in subset order, member order (row = Σ_{q'<q} |q'| + member index), the
// same order the Evaluator lays its flat best array out in. The similarity
// structure of all subsets is stored as one CSR matrix across those rows:
//
//	rowStart[r] .. rowStart[r+1]  span of row r's entries in the three
//	                              parallel entry arrays
//	nbrIdx[t]                     the neighbour's GLOBAL row (already offset
//	                              by its subset), i.e. an index into the
//	                              evaluator's flat best array
//	nbrSim[t]                     SIM(q, member, neighbour), in (0, 1]
//	nbrWR[t]                      W(q)·R(q, neighbour), fused at compile time
//
// Entry order within a row matches the reference evaluator's iteration
// order exactly — a NeighborLister's listed order, ascending member index
// for dense similarities — and W·R is folded left-associatively the way the
// reference path multiplies, so kernel gains are bit-identical to the
// jagged path and solver selections are unchanged.
//
// Per-photo occurrences are resolved to row spans too: occRow[occStart[p]
// .. occStart[p+1]] lists, in Occurrences(p) order, the global row of every
// (subset, member) slot photo p occupies.
//
// A Kernel is immutable after CompileKernel and safe for concurrent use by
// any number of evaluators; it holds no per-solution state (the flat best
// array lives in the Evaluator).
type Kernel struct {
	photos   int     // NumPhotos of the compiled instance
	rowLen   []int32 // per-subset member counts, for attach-time validation
	rowStart []int64
	nbrIdx   []int32
	nbrSim   []float64
	nbrWR    []float64
	occStart []int32
	occRow   []int32

	// ov is the incremental-maintenance overlay (see kerneldelta.go); nil for
	// a canonical compiled kernel. While an overlay is active the kernel is
	// NOT immutable — the engine serializes mutation against concurrent reads.
	ov *kernOverlay

	// Tuned-kernel fields (see kernelq.go / kernelblock.go). A tuned kernel
	// is a derived solver-only twin of a canonical kernel: it may store the
	// similarity slabs at reduced precision (qmode + simF32/wrF32/simFix —
	// the f64 slabs are dropped) and/or permute row storage order (perm /
	// iperm). Tuned kernels are immutable, never serialized, and never carry
	// a mutation overlay; the canonical f64 kernel always survives alongside
	// for rescoring, snapshots and delta maintenance.
	qmode  QuantMode
	simF32 []float32
	wrF32  []float32
	simFix []uint16
	perm   []int32 // canonical row → physical row; nil = identity
	iperm  []int32 // physical row → canonical row
}

// CompileKernel flattens the instance's gain hot path into a Kernel. The
// instance must be finalized (the occurrence index is part of the layout).
// Compilation costs one pass over the similarity structure — O(pairs) for
// NeighborLister similarities, O(Σ k²) Sim calls otherwise — and is meant to
// run once per prepared instance, amortized across every solve against it.
func CompileKernel(inst *Instance) *Kernel {
	if inst.occ == nil {
		panic("par: CompileKernel before Finalize")
	}
	nSub := len(inst.Subsets)
	subOff := make([]int32, nSub)
	rows := 0
	k := &Kernel{photos: inst.NumPhotos(), rowLen: make([]int32, nSub)}
	for qi := range inst.Subsets {
		members := len(inst.Subsets[qi].Members)
		subOff[qi] = int32(rows)
		k.rowLen[qi] = int32(members)
		rows += members
	}
	if rows > 1<<31-2 {
		panic("par: CompileKernel instance exceeds 2^31 similarity rows")
	}

	k.rowStart = append(make([]int64, 0, rows+1), 0)
	for qi := range inst.Subsets {
		q := &inst.Subsets[qi]
		off := subOff[qi]
		if nl, ok := q.Sim.(NeighborLister); ok {
			for i := range q.Members {
				for _, nb := range nl.Neighbors(i) {
					k.nbrIdx = append(k.nbrIdx, off+int32(nb.Index))
					k.nbrSim = append(k.nbrSim, nb.Sim)
					k.nbrWR = append(k.nbrWR, q.Weight*q.Relevance[nb.Index])
				}
				k.rowStart = append(k.rowStart, int64(len(k.nbrIdx)))
			}
			continue
		}
		members := len(q.Members)
		for i := 0; i < members; i++ {
			for mi := 0; mi < members; mi++ {
				// Zero-similarity entries can never satisfy sim > best
				// (best ≥ 0 always), so dropping them changes no sum.
				if s := q.Sim.Sim(mi, i); s > 0 {
					k.nbrIdx = append(k.nbrIdx, off+int32(mi))
					k.nbrSim = append(k.nbrSim, s)
					k.nbrWR = append(k.nbrWR, q.Weight*q.Relevance[mi])
				}
			}
			k.rowStart = append(k.rowStart, int64(len(k.nbrIdx)))
		}
	}

	n := inst.NumPhotos()
	k.occStart = make([]int32, n+1)
	for p := 0; p < n; p++ {
		k.occStart[p] = int32(len(k.occRow))
		for _, oc := range inst.occ[p] {
			k.occRow = append(k.occRow, subOff[oc.Subset]+int32(oc.Index))
		}
	}
	k.occStart[n] = int32(len(k.occRow))
	return k
}

// gain computes the marginal gain of adding p against the flat best array,
// without mutating it. It mirrors Evaluator.gainOf's reference path term for
// term; see the layout invariants on Kernel for why results are
// bit-identical.
func (k *Kernel) gain(best []float64, p PhotoID) float64 {
	if k.ov != nil {
		return k.ov.gain(k, best, p)
	}
	switch k.qmode {
	case QuantF32:
		return k.gainF32(best, p)
	case QuantFixed16:
		return k.gainFix16(best, p)
	}
	var gain float64
	for _, r := range k.occRow[k.occStart[p]:k.occStart[p+1]] {
		lo, hi := k.rowStart[r], k.rowStart[r+1]
		idx := k.nbrIdx[lo:hi]
		sim := k.nbrSim[lo:hi]
		wr := k.nbrWR[lo:hi]
		for t, ix := range idx {
			// Branchless clamp: covered slots contribute wr·(+0), which
			// leaves the accumulator bit-identical to the skipping form,
			// and the data-dependent branch (≈coin-flip on real archives,
			// so a mispredict per entry) disappears from the hot loop.
			gain += wr[t] * max(sim[t]-best[ix], 0)
		}
	}
	return gain
}

// add is gain with the best-value updates applied: adding p raises the best
// value of every slot whose similarity to p exceeds it.
func (k *Kernel) add(best []float64, p PhotoID) float64 {
	if k.ov != nil {
		return k.ov.add(k, best, p)
	}
	switch k.qmode {
	case QuantF32:
		return k.addF32(best, p)
	case QuantFixed16:
		return k.addFix16(best, p)
	}
	var gain float64
	for _, r := range k.occRow[k.occStart[p]:k.occStart[p+1]] {
		lo, hi := k.rowStart[r], k.rowStart[r+1]
		idx := k.nbrIdx[lo:hi]
		sim := k.nbrSim[lo:hi]
		wr := k.nbrWR[lo:hi]
		for t, ix := range idx {
			if d := sim[t] - best[ix]; d > 0 {
				gain += wr[t] * d
				best[ix] = sim[t]
			}
		}
	}
	return gain
}

// Rows returns the number of (subset, member) rows the kernel spans.
func (k *Kernel) Rows() int { return len(k.rowStart) - 1 }

// Entries returns the number of stored similarity entries (including
// overlay-appended ones).
func (k *Kernel) Entries() int {
	n := len(k.nbrIdx)
	if k.ov != nil {
		n += k.ov.extraN
	}
	return n
}

// SizeBytes returns the memory retained by the kernel's arrays; prepared-
// instance caches count it against their byte bounds.
func (k *Kernel) SizeBytes() int64 {
	n := 4*int64(len(k.nbrIdx)) + 8*int64(len(k.nbrSim)) + 8*int64(len(k.nbrWR)) +
		8*int64(len(k.rowStart)) + 4*int64(len(k.occStart)) + 4*int64(len(k.occRow)) +
		4*int64(len(k.rowLen)) +
		4*int64(len(k.simF32)) + 4*int64(len(k.wrF32)) + 2*int64(len(k.simFix)) +
		4*int64(len(k.perm)) + 4*int64(len(k.iperm))
	if k.ov != nil {
		n += k.ov.overlayBytes()
	}
	return n
}

// Quantization returns the storage precision of the kernel's similarity
// slabs (QuantNone for a canonical f64 kernel).
func (k *Kernel) Quantization() QuantMode { return k.qmode }

// Blocked reports whether the kernel's rows were reordered by BlockRows.
func (k *Kernel) Blocked() bool { return k.perm != nil }

// AttachKernel attaches a compiled kernel to the instance: evaluators
// created from it afterwards run the kernel hot path instead of the jagged
// reference path. The kernel must have been compiled from this instance or
// from another finalized view sharing the same Subsets and photo count (the
// staged engine compiles once per prepared instance and attaches to every
// budgeted view). Finalize detaches any kernel, since a structural mutation
// invalidates the compiled layout.
func (in *Instance) AttachKernel(k *Kernel) error {
	if in.occ == nil {
		return fmt.Errorf("par: AttachKernel before Finalize")
	}
	if k.photos != in.NumPhotos() {
		return fmt.Errorf("par: kernel compiled for %d photos, instance has %d", k.photos, in.NumPhotos())
	}
	if len(k.rowLen) != len(in.Subsets) {
		return fmt.Errorf("par: kernel compiled for %d subsets, instance has %d", len(k.rowLen), len(in.Subsets))
	}
	for qi := range in.Subsets {
		if int(k.rowLen[qi]) != len(in.Subsets[qi].Members) {
			return fmt.Errorf("par: kernel subset %d has %d members, instance has %d",
				qi, k.rowLen[qi], len(in.Subsets[qi].Members))
		}
	}
	in.kern = k
	return nil
}

// Kernel returns the attached compiled kernel, or nil when evaluators run
// the jagged reference path.
func (in *Instance) Kernel() *Kernel { return in.kern }
