package par

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

func TestSparseSimDuplicateAddPanics(t *testing.T) {
	s := NewSparseSim(4)
	s.Add(1, 2, 0.5)
	assertPanics(t, "re-add same order", func() { s.Add(1, 2, 0.7) })
	assertPanics(t, "re-add swapped", func() { s.Add(2, 1, 0.7) })
	// The original value must survive the rejected re-adds.
	if got := s.Sim(1, 2); got != 0.5 {
		t.Errorf("Sim(1,2) = %g after rejected re-adds, want 0.5", got)
	}
}

func TestSparseSimContains(t *testing.T) {
	s := NewSparseSim(5)
	s.Add(0, 3, 0.9)
	for _, tc := range []struct {
		i, j int
		want bool
	}{
		{0, 3, true}, {3, 0, true}, {0, 1, false}, {2, 4, false},
	} {
		if got := s.Contains(tc.i, tc.j); got != tc.want {
			t.Errorf("Contains(%d,%d) = %v, want %v", tc.i, tc.j, got, tc.want)
		}
	}
}

// TestSparseSimRowsSorted: neighbour rows stay sorted by index no matter the
// insertion order, and binary-search lookups agree with a reference map.
func TestSparseSimRowsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const k = 30
	s := NewSparseSim(k)
	ref := map[[2]int]float64{}
	var pairs [][2]int
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
	for _, pr := range pairs {
		if rng.Float64() < 0.4 {
			continue
		}
		sim := 0.1 + 0.9*rng.Float64()
		s.Add(pr[0], pr[1], sim)
		ref[pr] = sim
	}
	for i := 0; i < k; i++ {
		row := s.Neighbors(i)
		for x := 1; x < len(row); x++ {
			if row[x-1].Index >= row[x].Index {
				t.Fatalf("row %d not strictly sorted: %v", i, row)
			}
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			want := ref[[2]int{i, j}]
			if w, ok := ref[[2]int{j, i}]; ok {
				want = w
			}
			if got := s.Sim(i, j); got != want {
				t.Fatalf("Sim(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
}

// TestGainsMatchesGain: the batched read-only path must return exactly the
// values sequential Gain reports, and bump the eval counter by the batch size.
func TestGainsMatchesGain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := Random(rng, RandomConfig{Photos: 40, Subsets: 16, BudgetFrac: 0.4})
	seq := NewEvaluator(inst)
	batch := NewEvaluator(inst)
	for _, e := range []*Evaluator{seq, batch} {
		e.Seed()
		for _, p := range []PhotoID{2, 11, 29} {
			if e.Fits(p) {
				e.Add(p)
			}
		}
	}
	var photos []PhotoID
	for p := 0; p < inst.NumPhotos(); p++ {
		if !seq.Contains(PhotoID(p)) {
			photos = append(photos, PhotoID(p))
		}
	}
	want := make([]float64, len(photos))
	for i, p := range photos {
		want[i] = seq.Gain(p)
	}
	before := batch.GainEvals()
	got := batch.Gains(photos, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Gains[%d] (photo %d) = %g, want %g", i, photos[i], got[i], want[i])
		}
	}
	if d := batch.GainEvals() - before; d != int64(len(photos)) {
		t.Errorf("GainEvals grew by %d, want %d", d, len(photos))
	}
}

// TestReadJSONRejectsDuplicatePair: duplicate input pairs are an error for
// untrusted wire data, not a panic.
func TestReadJSONRejectsDuplicatePair(t *testing.T) {
	const body = `{
		"costs": [1, 1, 1],
		"budget": 3,
		"subsets": [{
			"name": "q0", "weight": 1,
			"members": [0, 1, 2], "relevance": [0.5, 0.3, 0.2],
			"sim": [{"i":0,"j":1,"s":0.5}, {"i":1,"j":0,"s":0.6}]
		}]
	}`
	_, err := ReadJSON(strings.NewReader(body))
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err = %v, want duplicate-pair error", err)
	}
}

// TestReadBinaryRejectsDuplicatePair: same guarantee on the binary format.
func TestReadBinaryRejectsDuplicatePair(t *testing.T) {
	var buf bytes.Buffer
	w := func(v any) { binary.Write(&buf, binary.LittleEndian, v) }
	buf.WriteString("PAR1")
	w(float64(3))  // budget
	w(uint32(3))   // photos
	w(float64(1))  // costs
	w(float64(1))
	w(float64(1))
	w(uint32(0)) // retained
	w(uint32(1)) // subsets
	w(uint16(2))
	buf.WriteString("q0")
	w(float64(1)) // weight
	w(uint32(3))  // members
	w(uint32(0))
	w(uint32(1))
	w(uint32(2))
	w(float64(0.5)) // relevance
	w(float64(0.3))
	w(float64(0.2))
	w(uint32(2)) // pairs: (0,1) twice, order swapped
	w(uint32(0))
	w(uint32(1))
	w(float64(0.5))
	w(uint32(1))
	w(uint32(0))
	w(float64(0.6))
	_, err := ReadBinary(&buf)
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err = %v, want duplicate-pair error", err)
	}
}
