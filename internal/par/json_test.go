package par

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	inst := Figure1Instance()
	inst.Retained = []PhotoID{5}
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, inst); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.NumPhotos() != inst.NumPhotos() || len(got.Subsets) != len(inst.Subsets) {
		t.Fatalf("round trip changed shape: %d photos / %d subsets", got.NumPhotos(), len(got.Subsets))
	}
	if got.Budget != inst.Budget {
		t.Errorf("budget = %g, want %g", got.Budget, inst.Budget)
	}
	if len(got.Retained) != 1 || got.Retained[0] != 5 {
		t.Errorf("retained = %v, want [5]", got.Retained)
	}
	// Objective values of arbitrary solutions must be preserved exactly.
	sols := [][]PhotoID{{0}, {0, 5}, {1, 2, 3}, {0, 1, 2, 3, 4, 5, 6}}
	for _, s := range sols {
		a, b := Score(inst, s), Score(got, s)
		if math.Abs(a-b) > 1e-12 {
			t.Errorf("Score(%v): original %g, round-tripped %g", s, a, b)
		}
	}
}

func TestJSONRoundTripRandomSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := Random(rng, RandomConfig{Photos: 20, Subsets: 10})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, inst); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	for trial := 0; trial < 20; trial++ {
		s := randomSolution(rng, 20)
		if math.Abs(Score(inst, s)-Score(got, s)) > 1e-9 {
			t.Fatalf("score mismatch for %v", s)
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []struct {
		name, in, wantSub string
	}{
		{"garbage", "{", "decoding"},
		{"pair out of range", `{"costs":[1,1],"budget":2,"subsets":[{"name":"q","weight":1,"members":[0,1],"relevance":[0.5,0.5],"sim":[{"i":0,"j":9,"s":0.5}]}]}`, "out of range"},
		{"bad sim value", `{"costs":[1,1],"budget":2,"subsets":[{"name":"q","weight":1,"members":[0,1],"relevance":[0.5,0.5],"sim":[{"i":0,"j":1,"s":1.5}]}]}`, "out of (0,1]"},
		{"invalid instance", `{"costs":[1,1],"budget":2,"subsets":[{"name":"q","weight":-1,"members":[0],"relevance":[1],"sim":[]}]}`, "invalid weight"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadJSON(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("ReadJSON succeeded, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestReadJSONSkipsDiagonal(t *testing.T) {
	in := `{"costs":[1,1],"budget":2,"subsets":[{"name":"q","weight":1,"members":[0,1],"relevance":[0.5,0.5],"sim":[{"i":1,"j":1,"s":0.4},{"i":0,"j":1,"s":0.6}]}]}`
	inst, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := inst.Subsets[0].Sim.Sim(1, 1); got != 1 {
		t.Errorf("diagonal sim = %g, want 1 (explicit diagonal entries ignored)", got)
	}
	if got := inst.Subsets[0].Sim.Sim(0, 1); got != 0.6 {
		t.Errorf("Sim(0,1) = %g, want 0.6", got)
	}
}
