// Package par defines the Photo Archive Reduction (PAR) problem model from
// "Efficiently Archiving Photos under Storage Constraints" (EDBT 2023).
//
// A PAR instance is the tuple ⟨P, S0, Q, C, W, R, SIM, B⟩:
//
//   - P is a set of photos, identified here by dense integer IDs 0..n-1.
//   - S0 ⊆ P is the set of photos that must be retained (policy requirements).
//   - Q is a collection of pre-defined subsets of P (landing pages, albums,
//     query results, ...), each with a positive importance weight W(q) and a
//     relevance score R(q,p) for every member p ∈ q, normalized so that the
//     relevance scores within each subset sum to 1.
//   - C(p) is the storage cost of photo p in bytes.
//   - SIM(q, p, p') ∈ [0,1] is a contextualized similarity: the similarity of
//     two photos with respect to subset q. SIM(q,p,p) = 1, and SIM is 0 when
//     either photo is outside q.
//   - B is the storage budget in bytes.
//
// The objective of a solution S with S0 ⊆ S ⊆ P and C(S) ≤ B is
//
//	G(S) = Σ_{q∈Q} W(q) · Σ_{p∈q} R(q,p) · SIM(q, p, NN(q,p,S))
//
// where NN(q,p,S) is the member of S ∩ q most similar to p in context q (the
// contribution is 0 when S ∩ q is empty). G is nonnegative, monotone and
// submodular (Lemma 4.5 of the paper), which the solver packages rely on.
//
// The package provides the instance representation, validation, exact
// objective evaluation, and an incremental Evaluator used by every solver in
// this repository to compute marginal gains in time proportional to the
// neighbourhood of the added photo.
package par
