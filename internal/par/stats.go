package par

import (
	"fmt"
	"sort"
	"strings"
)

// InstanceStats summarizes an instance's shape — the numbers an operator
// wants to see before solving (and the ones Table 2 reports).
type InstanceStats struct {
	Photos       int
	Subsets      int
	Retained     int
	TotalBytes   float64
	Budget       float64
	BudgetFrac   float64 // Budget / TotalBytes
	MeanCost     float64
	MedianCost   float64
	MinSubset    int // smallest subset size
	MedianSubset int
	MaxSubset    int
	// MeanMemberships is the average number of subsets containing a photo
	// that appears in at least one subset.
	MeanMemberships float64
	// OrphanPhotos counts photos in no subset (they can never add value).
	OrphanPhotos int
}

// Stats computes the summary. The instance must be finalized.
func Stats(inst *Instance) InstanceStats {
	s := InstanceStats{
		Photos:     inst.NumPhotos(),
		Subsets:    len(inst.Subsets),
		Retained:   len(inst.Retained),
		TotalBytes: inst.TotalCost(),
		Budget:     inst.Budget,
	}
	if s.TotalBytes > 0 {
		s.BudgetFrac = s.Budget / s.TotalBytes
	}
	costs := append([]float64(nil), inst.Cost...)
	sort.Float64s(costs)
	s.MeanCost = s.TotalBytes / float64(len(costs))
	s.MedianCost = costs[len(costs)/2]

	sizes := make([]int, 0, len(inst.Subsets))
	for qi := range inst.Subsets {
		sizes = append(sizes, len(inst.Subsets[qi].Members))
	}
	sort.Ints(sizes)
	if len(sizes) > 0 {
		s.MinSubset = sizes[0]
		s.MedianSubset = sizes[len(sizes)/2]
		s.MaxSubset = sizes[len(sizes)-1]
	}

	var memberships, covered int
	for p := 0; p < inst.NumPhotos(); p++ {
		if n := len(inst.Occurrences(PhotoID(p))); n > 0 {
			covered++
			memberships += n
		} else {
			s.OrphanPhotos++
		}
	}
	if covered > 0 {
		s.MeanMemberships = float64(memberships) / float64(covered)
	}
	return s
}

// String renders the stats as an aligned multi-line block.
func (s InstanceStats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "photos:       %d (%d retained, %d in no subset)\n", s.Photos, s.Retained, s.OrphanPhotos)
	fmt.Fprintf(&sb, "subsets:      %d (sizes min/median/max %d/%d/%d, %.1f per photo)\n",
		s.Subsets, s.MinSubset, s.MedianSubset, s.MaxSubset, s.MeanMemberships)
	fmt.Fprintf(&sb, "total size:   %.1f MB (mean %.2f MB, median %.2f MB per photo)\n",
		s.TotalBytes/1e6, s.MeanCost/1e6, s.MedianCost/1e6)
	fmt.Fprintf(&sb, "budget:       %.1f MB (%.1f%% of total)", s.Budget/1e6, 100*s.BudgetFrac)
	return sb.String()
}
