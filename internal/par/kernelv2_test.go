package par

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// blockedTwin returns a finalized view of inst with a row-blocked kernel
// attached (sharing all instance data with the canonical twin).
func blockedTwin(t testing.TB, inst *Instance) *Instance {
	t.Helper()
	twin := &Instance{
		Cost:     inst.Cost,
		Retained: inst.Retained,
		Budget:   inst.Budget,
		Subsets:  inst.Subsets,
	}
	if err := twin.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if err := twin.AttachKernel(CompileKernel(twin).BlockRows()); err != nil {
		t.Fatalf("AttachKernel: %v", err)
	}
	return twin
}

// TestBlockRowsDifferential pins BlockRows' core contract: the permutation
// is pure row-storage relabeling, so every Seed/Gain/Add/Gains result is
// bit-identical (==) to the unblocked kernel's — same floats summed in the
// same order, just from permuted addresses.
func TestBlockRowsDifferential(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		inst := Random(rng, RandomConfig{
			Photos:     30,
			Subsets:    8,
			MaxSubset:  10,
			RetainFrac: 0.1,
			SimDensity: 0.6,
		})
		flat := kernelTwin(t, inst)
		blocked := blockedTwin(t, inst)
		if !blocked.Kernel().Blocked() {
			t.Fatal("blocked kernel does not report Blocked")
		}

		ref := NewEvaluator(flat)
		blk := NewEvaluator(blocked)
		if g1, g2 := ref.Seed(), blk.Seed(); g1 != g2 {
			t.Fatalf("trial %d: Seed %v (flat) != %v (blocked)", trial, g1, g2)
		}
		all := make([]PhotoID, inst.NumPhotos())
		for p := range all {
			all[p] = PhotoID(p)
		}
		for step := 0; step < 12; step++ {
			g1 := ref.Gains(all, 1)
			g2 := blk.Gains(all, 1)
			for i := range g1 {
				if g1[i] != g2[i] {
					t.Fatalf("trial %d step %d: Gains[%d] %v (flat) != %v (blocked)", trial, step, i, g1[i], g2[i])
				}
			}
			p := PhotoID(rng.Intn(inst.NumPhotos()))
			if g1, g2 := ref.Add(p), blk.Add(p); g1 != g2 {
				t.Fatalf("trial %d step %d: Add(%d) %v (flat) != %v (blocked)", trial, step, p, g1, g2)
			}
			if s1, s2 := ref.Score(), blk.Score(); s1 != s2 {
				t.Fatalf("trial %d step %d: Score %v (flat) != %v (blocked)", trial, step, s1, s2)
			}
		}

		// CoverageVector reads best storage through RowOf, which must map
		// through the permutation.
		sol := []PhotoID{1, 4, 9, 13}
		a := CoverageVector(flat, sol)
		b := CoverageVector(blocked, sol)
		for qi := range a {
			for mi := range a[qi] {
				if a[qi][mi] != b[qi][mi] {
					t.Fatalf("trial %d: coverage[%d][%d] %v (flat) != %v (blocked)", trial, qi, mi, a[qi][mi], b[qi][mi])
				}
			}
		}
	}
}

// quantTwin derives a quantized (optionally blocked) kernel twin, reporting
// whether the tie audit admitted the instance.
func quantTwin(t testing.TB, inst *Instance, mode QuantMode, blocked bool) (*Instance, bool) {
	t.Helper()
	twin := &Instance{
		Cost:     inst.Cost,
		Retained: inst.Retained,
		Budget:   inst.Budget,
		Subsets:  inst.Subsets,
	}
	if err := twin.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	k := CompileKernel(twin)
	if blocked {
		k = k.BlockRows()
	}
	q, ok := KernelQ(k, mode)
	if !ok {
		return nil, false
	}
	if err := twin.AttachKernel(q); err != nil {
		t.Fatalf("AttachKernel: %v", err)
	}
	return twin, true
}

// TestKernelQGreedySelectionIdentity drives the same greedy argmax loop over
// the f64 kernel and its quantized twins and requires identical photo picks
// at every step: gain magnitudes shift within quantization error, but on the
// random corpus the gaps between candidates dwarf the grid, so any selection
// flip here is a real ordering bug (a non-monotone quantizer or an audit
// escape), not noise.
func TestKernelQGreedySelectionIdentity(t *testing.T) {
	modes := []struct {
		name    string
		mode    QuantMode
		blocked bool
	}{
		{"f32", QuantF32, false},
		{"fixed16", QuantFixed16, false},
		{"f32-blocked", QuantF32, true},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			admitted := 0
			for trial := 0; trial < 15; trial++ {
				rng := rand.New(rand.NewSource(int64(5000 + trial)))
				inst := Random(rng, RandomConfig{
					Photos:     40,
					Subsets:    10,
					MaxSubset:  12,
					SimDensity: 0.5,
				})
				flat := kernelTwin(t, inst)
				qtwin, ok := quantTwin(t, inst, m.mode, m.blocked)
				if !ok {
					continue // the audit rejected this instance; fine, gated below
				}
				admitted++
				if got := qtwin.Kernel().Quantization(); got != m.mode {
					t.Fatalf("trial %d: Quantization = %v, want %v", trial, got, m.mode)
				}
				if qtwin.Kernel().Blocked() != m.blocked {
					t.Fatalf("trial %d: Blocked = %v, want %v", trial, qtwin.Kernel().Blocked(), m.blocked)
				}

				ref := NewEvaluator(flat)
				qe := NewEvaluator(qtwin)
				ref.Seed()
				qe.Seed()
				all := make([]PhotoID, inst.NumPhotos())
				for p := range all {
					all[p] = PhotoID(p)
				}
				for step := 0; step < 10; step++ {
					argmax := func(e *Evaluator) PhotoID {
						gains := e.Gains(all, 1)
						best, bestG := PhotoID(-1), math.Inf(-1)
						for i, g := range gains {
							if !e.Contains(all[i]) && g > bestG {
								best, bestG = all[i], g
							}
						}
						return best
					}
					pf, pq := argmax(ref), argmax(qe)
					if pf != pq {
						t.Fatalf("trial %d step %d: argmax diverged: %d (f64) vs %d (%s)", trial, step, pf, pq, m.name)
					}
					if pf < 0 {
						break
					}
					gf, gq := ref.Add(pf), qe.Add(pq)
					// Quantized gains stay within grid error of the exact ones.
					tol := 1e-5 * (1 + math.Abs(gf))
					if m.mode == QuantFixed16 {
						tol = 1e-3 * (1 + math.Abs(gf))
					}
					if math.Abs(gf-gq) > tol {
						t.Fatalf("trial %d step %d: Add(%d) gain %v (f64) vs %v (%s), tol %v",
							trial, step, pf, gf, gq, m.name, tol)
					}
				}
			}
			if admitted == 0 {
				t.Fatal("tie audit rejected every trial; corpus or audit is broken")
			}
		})
	}
}

// tieInstance builds a single-subset instance whose member-0 row receives
// two distinct similarities a and b — the collision probe the tie audit must
// catch when a and b land on the same quantized grid point.
func tieInstance(t *testing.T, a, b float64) *Instance {
	t.Helper()
	bld := NewSparseSimBuilder(3)
	bld.Add(0, 1, a)
	bld.Add(0, 2, b)
	inst := &Instance{
		Cost: []float64{1, 1, 1},
		Subsets: []Subset{{
			Name:      "tie",
			Weight:    1,
			Members:   []PhotoID{0, 1, 2},
			Relevance: []float64{0.5, 0.25, 0.25},
			Sim:       bld.Build(),
		}},
		Budget: 3,
	}
	if err := inst.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return inst
}

// TestKernelQTieAudit pins the audit's rejection surface: a positive
// similarity collapsing onto the zero sentinel rejects the mode (the
// coverage edge would vanish), while same-slot collisions between stored
// values are admitted — the quantizers are monotone, so a collision only
// merges an update step and the error stays within one grid cell (KernelQ
// documents the argument; the collision cases below also verify the claim
// differentially).
func TestKernelQTieAudit(t *testing.T) {
	cases := []struct {
		name string
		a, b float64
		mode QuantMode
		want bool
	}{
		// 0.5 and 0.5+1e-6 collapse onto one fixed16 grid point
		// (cell ≈ 1.5e-5) but stay distinct in f32 (ulp(0.5) ≈ 6e-8).
		{"fixed16-collision-admitted", 0.5, 0.5 + 1e-6, QuantFixed16, true},
		{"f32-keeps-fixed16-collision-distinct", 0.5, 0.5 + 1e-6, QuantF32, true},
		{"f32-collision-admitted", 0.5, 0.5 + 1e-12, QuantF32, true},
		{"distinct-admitted", 0.3, 0.7, QuantFixed16, true},
		// Positive similarities that quantize to zero tie with the best
		// array's initial state: the edge disappears, so fall back.
		{"fixed16-zero-collapse", 1e-9, 0.7, QuantFixed16, false},
		{"f32-zero-collapse", 1e-46, 0.7, QuantF32, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inst := tieInstance(t, tc.a, tc.b)
			k := CompileKernel(inst)
			q, ok := KernelQ(k, tc.mode)
			if ok != tc.want {
				t.Fatalf("KernelQ(a=%v, b=%v, %v) admitted=%v, want %v", tc.a, tc.b, tc.mode, ok, tc.want)
			}
			if !ok {
				return
			}
			if q.Quantization() != tc.mode {
				t.Fatalf("admitted kernel reports %v, want %v", q.Quantization(), tc.mode)
			}

			// Differential leg: even on the crafted collision instance, the
			// greedy trace over the quantized twin picks the same photos and
			// ends within one grid cell of the exact score.
			flat := kernelTwin(t, inst)
			qtwin, ok := quantTwin(t, inst, tc.mode, false)
			if !ok {
				t.Fatal("quantTwin rejected an instance KernelQ admitted")
			}
			ref, qe := NewEvaluator(flat), NewEvaluator(qtwin)
			ref.Seed()
			qe.Seed()
			for _, p := range []PhotoID{1, 2, 0} {
				gf, gq := ref.Add(p), qe.Add(p)
				cell := 1e-6
				if tc.mode == QuantFixed16 {
					cell = 1.0 / 65535
				}
				if math.Abs(gf-gq) > cell {
					t.Fatalf("Add(%d): gain %v (f64) vs %v (%v) differs beyond one cell", p, gf, gq, tc.mode)
				}
			}
			if sf, sq := ref.Score(), qe.Score(); math.Abs(sf-sq) > 1.0/65535 {
				t.Fatalf("final score %v (f64) vs %v (%v)", sf, sq, tc.mode)
			}
		})
	}
}

// TestKernelTuningOrderPanics pins the derivation-order contract: block
// first, then quantize; neither derivation composes with itself or runs on
// an overlay-bearing kernel.
func TestKernelTuningOrderPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := Random(rng, RandomConfig{Photos: 15, Subsets: 4})
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	k := CompileKernel(inst)
	q, ok := KernelQ(k, QuantF32)
	if !ok {
		t.Fatal("KernelQ rejected a random instance the greedy test admits")
	}
	mustPanic("BlockRows after KernelQ", func() { q.BlockRows() })
	mustPanic("KernelQ twice", func() { KernelQ(q, QuantF32) })
	b := CompileKernel(inst).BlockRows()
	mustPanic("BlockRows twice", func() { b.BlockRows() })
	mustPanic("Slabs on quantized", func() { q.Slabs() })
	mustPanic("Slabs on blocked", func() { b.Slabs() })
}

// TestParseQuantMode covers the flag spellings and the error path.
func TestParseQuantMode(t *testing.T) {
	for in, want := range map[string]QuantMode{
		"": QuantNone, "f64": QuantNone, "off": QuantNone,
		"f32": QuantF32, "fixed16": QuantFixed16,
	} {
		got, err := ParseQuantMode(in)
		if err != nil || got != want {
			t.Fatalf("ParseQuantMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseQuantMode("int8"); err == nil {
		t.Fatal("ParseQuantMode(\"int8\") did not fail")
	}
	for _, m := range []QuantMode{QuantNone, QuantF32, QuantFixed16, QuantMode(9)} {
		if m.String() == "" {
			t.Fatalf("QuantMode(%d).String() empty", m)
		}
	}
	_ = fmt.Sprint(QuantF32) // Stringer wired
}
