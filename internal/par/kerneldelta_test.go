package par

import (
	"math/rand"
	"testing"
)

// deltaTestInstance builds a small dense-similarity instance for overlay
// tests: nPhotos photos spread over subsets of varying size.
func deltaTestInstance(t *testing.T, seed int64) *Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const n = 9
	cost := make([]float64, n)
	for i := range cost {
		cost[i] = 1 + rng.Float64()*4
	}
	mk := func(members []PhotoID) Subset {
		k := len(members)
		sim := NewDenseSim(k)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if rng.Float64() < 0.7 {
					sim.Set(i, j, 0.05+0.95*rng.Float64())
				}
			}
		}
		rel := make([]float64, k)
		var sum float64
		for i := range rel {
			rel[i] = 0.2 + rng.Float64()
			sum += rel[i]
		}
		for i := range rel {
			rel[i] /= sum
		}
		return Subset{Name: "q", Weight: 0.5 + rng.Float64(), Members: members, Relevance: rel, Sim: sim}
	}
	inst := &Instance{
		Cost: cost,
		Subsets: []Subset{
			mk([]PhotoID{0, 1, 2, 3, 4}),
			mk([]PhotoID{2, 3, 5, 6}),
			mk([]PhotoID{0, 4, 7, 8}),
		},
	}
	inst.Budget = inst.TotalCost()
	if err := inst.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return inst
}

// renorm zeroes nothing but rescales rel to sum 1 in place.
func renorm(rel []float64) {
	var sum float64
	for _, r := range rel {
		sum += r
	}
	for i := range rel {
		rel[i] /= sum
	}
}

// TestKernelOverlayBitIdentical drives the full overlay vocabulary —
// tombstone a removed photo, append a new photo into an existing subset,
// append a whole new subset mixing an existing and the new photo — and
// requires every gain and every add along a greedy trajectory to be
// bit-identical to a kernel freshly compiled over the equivalent updated
// instance.
func TestKernelOverlayBitIdentical(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		inst := deltaTestInstance(t, seed)
		kern := CompileKernel(inst)

		// --- remove photo 2 (member of subsets 0 and 1) ---------------------
		for qi := range inst.Subsets {
			q := &inst.Subsets[qi]
			for mi, p := range q.Members {
				if p != 2 {
					continue
				}
				ds := NewDeltaSim(q.Sim)
				ds.MaskMember(mi)
				q.Sim = ds
				q.Relevance[mi] = 0
				kern.TombstoneRow(qi, mi)
			}
		}

		// --- add photo 9 to subset 1 with two neighbours --------------------
		inst.Cost = append(inst.Cost, 2.5)
		kern.AppendPhoto()
		{
			q := &inst.Subsets[1]
			// Neighbours must be live members: index 0 of subset 1 is the
			// removed photo 2, so pair with members 1 and 2 instead (the
			// engine's delta validation enforces exactly this).
			nbrs := []Neighbor{{Index: 1, Sim: 0.9}, {Index: 2, Sim: 0.4}}
			if ds, ok := q.Sim.(*DeltaSim); ok {
				ds.AppendMember(nbrs)
			} else {
				ds := NewDeltaSim(q.Sim)
				ds.AppendMember(nbrs)
				q.Sim = ds
			}
			q.Members = append(q.Members, 9)
			q.Relevance = append(q.Relevance, 0.3)
			kern.AppendMemberRow(1, 9, nbrs)
		}

		// --- new subset over existing photo 1 and new photo 9 ---------------
		{
			ss := NewSparseSim(2)
			ss.Add(0, 1, 0.6)
			inst.Subsets = append(inst.Subsets, Subset{
				Name: "new", Weight: 0.8,
				Members:   []PhotoID{1, 9},
				Relevance: []float64{0.5, 0.5},
				Sim:       ss,
			})
			kern.AppendSubset()
			kern.AppendMemberRow(3, 1, nil)
			kern.AppendMemberRow(3, 9, []Neighbor{{Index: 0, Sim: 0.6}})
		}

		// --- renormalize + rewrite fused weights ----------------------------
		for qi := range inst.Subsets {
			q := &inst.Subsets[qi]
			renorm(q.Relevance)
			kern.RewriteWR(qi, q.Weight, q.Relevance)
		}
		inst.Budget = inst.TotalCost()
		if err := inst.Finalize(); err != nil {
			t.Fatalf("seed %d: re-Finalize: %v", seed, err)
		}
		if err := kern.validateOverlayOrder(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if kern.Canonical() {
			t.Fatalf("seed %d: kernel should be non-canonical after mutations", seed)
		}
		if lf := kern.LiveFraction(); lf >= 1 || lf <= 0 {
			t.Fatalf("seed %d: LiveFraction = %v, want in (0,1)", seed, lf)
		}

		// Overlay view vs freshly compiled reference over the same instance.
		over := &Instance{Cost: inst.Cost, Budget: inst.Budget, Subsets: inst.Subsets}
		if err := over.Finalize(); err != nil {
			t.Fatalf("seed %d: overlay view Finalize: %v", seed, err)
		}
		if err := over.AttachKernel(kern); err != nil {
			t.Fatalf("seed %d: AttachKernel(overlay): %v", seed, err)
		}
		ref := &Instance{Cost: inst.Cost, Budget: inst.Budget, Subsets: inst.Subsets}
		if err := ref.Finalize(); err != nil {
			t.Fatalf("seed %d: ref view Finalize: %v", seed, err)
		}
		if err := ref.AttachKernel(CompileKernel(ref)); err != nil {
			t.Fatalf("seed %d: AttachKernel(ref): %v", seed, err)
		}

		eo, er := NewEvaluator(over), NewEvaluator(ref)
		if eo.best != nil {
			t.Fatalf("seed %d: evaluator built subset-major views over a non-canonical kernel", seed)
		}
		n := over.NumPhotos()
		// Greedy trajectory: at each step compare every photo's gain bit for
		// bit, then add the best by the reference's ordering.
		for step := 0; step < 5; step++ {
			bestP, bestG := PhotoID(-1), -1.0
			for p := 0; p < n; p++ {
				go_, gr := eo.Gain(PhotoID(p)), er.Gain(PhotoID(p))
				if go_ != gr {
					t.Fatalf("seed %d step %d: Gain(%d) overlay %v != compiled %v", seed, step, p, go_, gr)
				}
				if !er.Contains(PhotoID(p)) && gr > bestG {
					bestP, bestG = PhotoID(p), gr
				}
			}
			if bestP < 0 {
				break
			}
			if ao, ar := eo.Add(bestP), er.Add(bestP); ao != ar {
				t.Fatalf("seed %d step %d: Add(%d) overlay %v != compiled %v", seed, step, bestP, ao, ar)
			}
		}
		if eo.Score() != er.Score() {
			t.Fatalf("seed %d: final score overlay %v != compiled %v", seed, eo.Score(), er.Score())
		}

		// A removed photo must never gain: its row is tombstoned and every
		// symmetric entry carries W·R = 0 after the rewrite.
		if g := NewEvaluator(over).Gain(2); g != 0 {
			t.Fatalf("seed %d: removed photo still gains %v", seed, g)
		}

		// CoverageVector must agree between the overlay row mapping and the
		// canonical layout.
		sol := er.Solution().Photos
		co, cr := CoverageVector(over, sol), CoverageVector(ref, sol)
		for qi := range cr {
			for mi := range cr[qi] {
				if co[qi][mi] != cr[qi][mi] {
					t.Fatalf("seed %d: CoverageVector[%d][%d] overlay %v != compiled %v",
						seed, qi, mi, co[qi][mi], cr[qi][mi])
				}
			}
		}

		// Clone of an overlay evaluator must stay consistent.
		cl := eo.Clone()
		if cl.Score() != eo.Score() || cl.Gain(PhotoID(n-1)) != er.Gain(PhotoID(n-1)) {
			t.Fatalf("seed %d: overlay evaluator clone diverged", seed)
		}
	}
}

// TestDeltaSim checks the overlay similarity in isolation: masking,
// appended rows, symmetry, and the diagonal convention.
func TestDeltaSim(t *testing.T) {
	base := NewDenseSim(3)
	base.Set(0, 1, 0.8)
	base.Set(1, 2, 0.5)
	d := NewDeltaSim(base)
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	if got := d.Sim(0, 1); got != 0.8 {
		t.Fatalf("Sim(0,1) = %v, want 0.8", got)
	}
	d.MaskMember(1)
	if d.Sim(0, 1) != 0 || d.Sim(2, 1) != 0 {
		t.Fatal("masked member still similar to others")
	}
	if d.Sim(1, 1) != 1 {
		t.Fatal("diagonal must stay 1 even when masked")
	}
	d.AppendMember([]Neighbor{{Index: 0, Sim: 0.7}, {Index: 2, Sim: 0.2}})
	if d.Len() != 4 {
		t.Fatalf("Len = %d after append, want 4", d.Len())
	}
	if d.Sim(3, 0) != 0.7 || d.Sim(0, 3) != 0.7 || d.Sim(3, 2) != 0.2 {
		t.Fatal("appended row not symmetric")
	}
	if d.Sim(3, 1) != 0 {
		t.Fatal("absent appended pair should be 0")
	}
	d.AppendMember([]Neighbor{{Index: 3, Sim: 0.9}})
	if d.Sim(4, 3) != 0.9 || d.Sim(3, 4) != 0.9 {
		t.Fatal("pair between two appended members broken")
	}
	d.MaskMember(3)
	if d.Sim(4, 3) != 0 || d.Sim(3, 0) != 0 {
		t.Fatal("masking an appended member did not zero its pairs")
	}
}

// TestSparseSimDeltaHelpers covers AppendMembers and RemovePair.
func TestSparseSimDeltaHelpers(t *testing.T) {
	s := NewSparseSim(3)
	s.Add(0, 1, 0.4)
	s.Add(1, 2, 0.6)
	s.AppendMembers(2)
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
	if s.Sim(3, 3) != 1 || s.Sim(4, 4) != 1 {
		t.Fatal("appended members must self-neighbour")
	}
	s.Add(1, 3, 0.9)
	if s.Sim(3, 1) != 0.9 {
		t.Fatal("Add after AppendMembers broken")
	}
	if sim, ok := s.RemovePair(0, 1); !ok || sim != 0.4 {
		t.Fatalf("RemovePair(0,1) = %v,%v, want 0.4,true", sim, ok)
	}
	if s.Sim(0, 1) != 0 || s.Sim(1, 0) != 0 {
		t.Fatal("pair not removed from both rows")
	}
	if _, ok := s.RemovePair(0, 1); ok {
		t.Fatal("second RemovePair should report absent")
	}
	if s.Sim(1, 2) != 0.6 || s.Sim(1, 3) != 0.9 {
		t.Fatal("unrelated pairs disturbed")
	}
}
