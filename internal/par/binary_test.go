package par

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	inst := Figure1Instance()
	inst.Retained = []PhotoID{5}
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, inst); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if got.NumPhotos() != 7 || len(got.Subsets) != 4 || got.Budget != inst.Budget {
		t.Fatalf("shape changed: %d photos, %d subsets, budget %g",
			got.NumPhotos(), len(got.Subsets), got.Budget)
	}
	if got.Subsets[0].Name != "Bikes" {
		t.Errorf("subset name %q", got.Subsets[0].Name)
	}
	for _, s := range [][]PhotoID{{0}, {0, 5}, {1, 2, 3}, {0, 1, 2, 3, 4, 5, 6}} {
		if math.Abs(Score(inst, s)-Score(got, s)) > 1e-12 {
			t.Errorf("Score(%v) changed through round trip", s)
		}
	}
}

func TestBinaryRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := Random(rng, RandomConfig{Photos: 40, Subsets: 20, RetainFrac: 0.1})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, inst); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		s := randomSolution(rng, 40)
		if math.Abs(Score(inst, s)-Score(got, s)) > 1e-9 {
			t.Fatalf("score mismatch for %v", s)
		}
	}
	if len(got.Retained) != len(inst.Retained) {
		t.Errorf("retained count %d, want %d", len(got.Retained), len(inst.Retained))
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	inst := Random(rng, RandomConfig{Photos: 200, Subsets: 100})
	var jbuf, bbuf bytes.Buffer
	if err := WriteJSON(&jbuf, inst); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bbuf, inst); err != nil {
		t.Fatal(err)
	}
	if bbuf.Len() >= jbuf.Len() {
		t.Errorf("binary (%d B) not smaller than JSON (%d B)", bbuf.Len(), jbuf.Len())
	}
}

func TestReadBinaryErrors(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, Figure1Instance()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()
	cases := []struct {
		name    string
		data    []byte
		wantSub string
	}{
		{"empty", nil, "magic"},
		{"bad magic", []byte("NOPE1234"), "bad magic"},
		{"truncated header", valid[:6], "truncated"},
		{"truncated body", valid[:len(valid)/2], "truncated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadBinary(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("ReadBinary succeeded, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestReadBinaryRejectsCorruptCounts(t *testing.T) {
	// Header with an implausible photo count must fail fast instead of
	// allocating gigabytes.
	var buf bytes.Buffer
	buf.Write(binaryMagic[:])
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 240, 63}) // budget 1.0
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})    // numPhotos max u32
	if _, err := ReadBinary(&buf); err == nil || !strings.Contains(err.Error(), "implausible") {
		t.Errorf("err = %v, want implausible count rejection", err)
	}
}

// FuzzReadBinary ensures arbitrary bytes never panic or over-allocate.
func FuzzReadBinary(f *testing.F) {
	var valid bytes.Buffer
	if err := WriteBinary(&valid, Figure1Instance()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("PAR1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Loaded instances must be usable.
		var sol []PhotoID
		for p := 0; p < inst.NumPhotos() && p < 4; p++ {
			sol = append(sol, PhotoID(p))
		}
		if s := Score(inst, sol); s < 0 || math.IsNaN(s) {
			t.Fatalf("invalid score %g from loaded instance", s)
		}
	})
}
