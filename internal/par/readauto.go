package par

import (
	"bufio"
	"bytes"
	"io"
)

// ReadAuto loads an instance in either supported format, sniffing the
// binary magic ("PAR1") and falling back to JSON.
func ReadAuto(r io.Reader) (*Instance, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err == nil && bytes.Equal(head, binaryMagic[:]) {
		return ReadBinary(br)
	}
	return ReadJSON(br)
}
