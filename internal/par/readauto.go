package par

import (
	"bufio"
	"bytes"
	"io"
)

// ReadAuto loads an instance in either supported format, sniffing the
// binary magic ("PAR1") and falling back to JSON.
func ReadAuto(r io.Reader) (*Instance, error) {
	inst, _, err := ReadAutoVectors(r)
	return inst, err
}

// ReadAutoVectors is ReadAuto returning the optional per-subset context
// vectors. The binary format never carries vectors, so it always yields a
// nil vector slice.
func ReadAutoVectors(r io.Reader) (*Instance, [][][]float64, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err == nil && bytes.Equal(head, binaryMagic[:]) {
		inst, err := ReadBinary(br)
		return inst, nil, err
	}
	return ReadJSONVectors(br)
}
