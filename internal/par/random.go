package par

import (
	"fmt"
	"math/rand"
)

// RandomConfig controls Random, the lightweight synthetic-instance generator
// used by property tests and micro-benchmarks throughout the repository.
// (The full dataset generators that mirror the paper's Table 2 live in
// internal/dataset; this one trades realism for speed and coverage of edge
// shapes.)
type RandomConfig struct {
	Photos      int     // number of photos n (required, > 0)
	Subsets     int     // number of pre-defined subsets (required, > 0)
	MaxSubset   int     // maximum subset size (default 8)
	MinCost     float64 // minimum photo cost (default 0.5)
	MaxCost     float64 // maximum photo cost (default 2.5)
	BudgetFrac  float64 // budget as a fraction of total cost (default 0.3)
	RetainFrac  float64 // fraction of photos forced into S0 (default 0)
	SimDensity  float64 // probability an off-diagonal pair has positive sim (default 0.5)
	UniformCost bool    // if set, every photo costs 1
}

func (c *RandomConfig) fill() {
	if c.MaxSubset == 0 {
		c.MaxSubset = 8
	}
	if c.MinCost == 0 {
		c.MinCost = 0.5
	}
	if c.MaxCost == 0 {
		c.MaxCost = 2.5
	}
	if c.BudgetFrac == 0 {
		c.BudgetFrac = 0.3
	}
	if c.SimDensity == 0 {
		c.SimDensity = 0.5
	}
}

// Random generates a valid, finalized instance from the config using the
// given source of randomness. It panics on a config that cannot produce a
// valid instance, since it is only called with literal configs.
func Random(rng *rand.Rand, cfg RandomConfig) *Instance {
	cfg.fill()
	if cfg.Photos <= 0 || cfg.Subsets <= 0 {
		panic("par: Random requires Photos > 0 and Subsets > 0")
	}
	inst := &Instance{Cost: make([]float64, cfg.Photos)}
	for p := range inst.Cost {
		if cfg.UniformCost {
			inst.Cost[p] = 1
		} else {
			inst.Cost[p] = cfg.MinCost + rng.Float64()*(cfg.MaxCost-cfg.MinCost)
		}
	}
	inst.Budget = cfg.BudgetFrac * inst.TotalCost()

	for qi := 0; qi < cfg.Subsets; qi++ {
		size := 1 + rng.Intn(cfg.MaxSubset)
		if size > cfg.Photos {
			size = cfg.Photos
		}
		members := randomSample(rng, cfg.Photos, size)
		rel := make([]float64, size)
		var sum float64
		for i := range rel {
			rel[i] = 0.05 + rng.Float64()
			sum += rel[i]
		}
		for i := range rel {
			rel[i] /= sum
		}
		sim := NewDenseSim(size)
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if rng.Float64() < cfg.SimDensity {
					sim.Set(i, j, rng.Float64())
				}
			}
		}
		inst.Subsets = append(inst.Subsets, Subset{
			Name:      fmt.Sprintf("q%d", qi),
			Weight:    0.1 + 10*rng.Float64(),
			Members:   members,
			Relevance: rel,
			Sim:       sim,
		})
	}

	if cfg.RetainFrac > 0 {
		var retained []PhotoID
		var cost float64
		for p := 0; p < cfg.Photos; p++ {
			if rng.Float64() < cfg.RetainFrac {
				c := inst.Cost[p]
				if cost+c > inst.Budget {
					continue // keep S0 feasible
				}
				cost += c
				retained = append(retained, PhotoID(p))
			}
		}
		inst.Retained = retained
	}

	if err := inst.Finalize(); err != nil {
		panic("par: Random produced invalid instance: " + err.Error())
	}
	return inst
}

// randomSample returns k distinct values from [0, n) in random order.
func randomSample(rng *rand.Rand, n, k int) []PhotoID {
	perm := rng.Perm(n)
	out := make([]PhotoID, k)
	for i := 0; i < k; i++ {
		out[i] = PhotoID(perm[i])
	}
	return out
}
