package par_test

import (
	"fmt"

	"phocus/internal/par"
)

// ExampleScore evaluates the paper's worked example: keeping p1, p6 and p2
// of the Figure 1 archive scores 13.25 of the attainable 14.
func ExampleScore() {
	inst := par.Figure1Instance()
	kept := []par.PhotoID{0, 5, 1} // p1, p6, p2
	fmt.Printf("G(S) = %.2f of %.0f\n", par.Score(inst, kept), inst.TotalWeight())
	// Output:
	// G(S) = 13.25 of 14
}

// ExampleEvaluator shows incremental marginal gains — the δ_p values of
// Figure 3.
func ExampleEvaluator() {
	inst := par.Figure1Instance()
	e := par.NewEvaluator(inst)
	fmt.Printf("δ_p1 = %.2f\n", e.Gain(0))
	e.Add(0)
	fmt.Printf("δ_p2 after selecting p1 = %.2f\n", e.Gain(1))
	// Output:
	// δ_p1 = 7.83
	// δ_p2 after selecting p1 = 0.81
}
