package par

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary wire format: a compact little-endian encoding for large instances
// where the JSON form (which spells out every pair in text) is impractical.
// Layout:
//
//	magic "PAR1" | budget f64 | numPhotos u32 | costs f64...
//	| numRetained u32 | retained u32...
//	| numSubsets u32 | per subset:
//	    nameLen u16 | name | weight f64 | numMembers u32
//	    | members u32... | relevance f64...
//	    | numPairs u32 | (i u32, j u32, sim f64)...
//
// Similarities are serialized sparsely like the JSON format; loading
// produces SparseSim similarities.

var binaryMagic = [4]byte{'P', 'A', 'R', '1'}

// WriteBinary serializes the instance in the binary format.
func WriteBinary(w io.Writer, inst *Instance) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	writeF64 := func(v float64) { binary.Write(bw, binary.LittleEndian, v) }
	writeU32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	writeU16 := func(v uint16) { binary.Write(bw, binary.LittleEndian, v) }

	writeF64(inst.Budget)
	writeU32(uint32(len(inst.Cost)))
	for _, c := range inst.Cost {
		writeF64(c)
	}
	writeU32(uint32(len(inst.Retained)))
	for _, p := range inst.Retained {
		writeU32(uint32(p))
	}
	writeU32(uint32(len(inst.Subsets)))
	for qi := range inst.Subsets {
		q := &inst.Subsets[qi]
		if len(q.Name) > math.MaxUint16 {
			return fmt.Errorf("par: subset %d name too long (%d bytes)", qi, len(q.Name))
		}
		writeU16(uint16(len(q.Name)))
		if _, err := bw.WriteString(q.Name); err != nil {
			return err
		}
		writeF64(q.Weight)
		writeU32(uint32(len(q.Members)))
		for _, p := range q.Members {
			writeU32(uint32(p))
		}
		for _, r := range q.Relevance {
			writeF64(r)
		}
		pairs := collectPairs(q.Sim)
		writeU32(uint32(len(pairs)))
		for _, pr := range pairs {
			writeU32(uint32(pr.i))
			writeU32(uint32(pr.j))
			writeF64(pr.sim)
		}
	}
	return bw.Flush()
}

type simPair struct {
	i, j int
	sim  float64
}

// collectPairs enumerates the positive off-diagonal pairs of a similarity,
// using neighbour lists when available.
func collectPairs(s Similarity) []simPair {
	var pairs []simPair
	k := s.Len()
	if nl, ok := s.(NeighborLister); ok {
		for i := 0; i < k; i++ {
			for _, nb := range nl.Neighbors(i) {
				if nb.Index > i {
					pairs = append(pairs, simPair{i: i, j: nb.Index, sim: nb.Sim})
				}
			}
		}
		return pairs
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if v := s.Sim(i, j); v > 0 {
				pairs = append(pairs, simPair{i: i, j: j, sim: v})
			}
		}
	}
	return pairs
}

// ReadBinary parses an instance written by WriteBinary and finalizes it.
func ReadBinary(r io.Reader) (*Instance, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("par: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("par: bad magic %q", magic)
	}
	var firstErr error
	readF64 := func() float64 {
		var v float64
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	readU32 := func() uint32 {
		var v uint32
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}
	readU16 := func() uint16 {
		var v uint16
		if err := binary.Read(br, binary.LittleEndian, &v); err != nil && firstErr == nil {
			firstErr = err
		}
		return v
	}

	inst := &Instance{Budget: readF64()}
	n := int(readU32())
	if firstErr != nil {
		return nil, fmt.Errorf("par: truncated header: %w", firstErr)
	}
	const maxEntities = 1 << 28 // guards allocations against corrupt counts
	if n > maxEntities {
		return nil, fmt.Errorf("par: implausible photo count %d", n)
	}
	inst.Cost = make([]float64, n)
	for i := range inst.Cost {
		inst.Cost[i] = readF64()
	}
	nr := int(readU32())
	if nr > n {
		return nil, fmt.Errorf("par: retained count %d exceeds photos %d", nr, n)
	}
	inst.Retained = make([]PhotoID, nr)
	for i := range inst.Retained {
		inst.Retained[i] = PhotoID(readU32())
	}
	ns := int(readU32())
	if firstErr != nil {
		return nil, fmt.Errorf("par: truncated: %w", firstErr)
	}
	if ns > maxEntities {
		return nil, fmt.Errorf("par: implausible subset count %d", ns)
	}
	for qi := 0; qi < ns; qi++ {
		nameLen := int(readU16())
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, fmt.Errorf("par: subset %d name: %w", qi, err)
		}
		q := Subset{Name: string(nameBuf), Weight: readF64()}
		k := int(readU32())
		if firstErr != nil {
			return nil, fmt.Errorf("par: truncated subset %d: %w", qi, firstErr)
		}
		if k > maxEntities {
			return nil, fmt.Errorf("par: implausible member count %d", k)
		}
		q.Members = make([]PhotoID, k)
		for i := range q.Members {
			q.Members[i] = PhotoID(readU32())
		}
		q.Relevance = make([]float64, k)
		for i := range q.Relevance {
			q.Relevance[i] = readF64()
		}
		np := int(readU32())
		if firstErr != nil {
			return nil, fmt.Errorf("par: truncated subset %d: %w", qi, firstErr)
		}
		if np > maxEntities {
			return nil, fmt.Errorf("par: implausible pair count %d", np)
		}
		sim := NewSparseSim(k)
		for e := 0; e < np; e++ {
			i := int(readU32())
			j := int(readU32())
			v := readF64()
			if firstErr != nil {
				return nil, fmt.Errorf("par: truncated pairs of subset %d: %w", qi, firstErr)
			}
			if i < 0 || i >= k || j < 0 || j >= k || i == j {
				return nil, fmt.Errorf("par: subset %d pair (%d,%d) invalid", qi, i, j)
			}
			if v <= 0 || v > 1 || math.IsNaN(v) {
				return nil, fmt.Errorf("par: subset %d pair similarity %g out of (0,1]", qi, v)
			}
			if sim.Contains(i, j) {
				return nil, fmt.Errorf("par: subset %d pair (%d,%d) given twice", qi, i, j)
			}
			sim.Add(i, j, v)
		}
		q.Sim = sim
		inst.Subsets = append(inst.Subsets, q)
	}
	if firstErr != nil {
		return nil, fmt.Errorf("par: truncated: %w", firstErr)
	}
	if err := inst.Finalize(); err != nil {
		return nil, err
	}
	return inst, nil
}
