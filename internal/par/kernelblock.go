package par

import "math/bits"

// BlockRows derives a row-permuted twin of a canonical kernel: rows are
// regrouped into degree buckets (bucket = ⌈log₂(entries+1)⌉, heaviest bucket
// first, original row order within a bucket) and the CSR slabs are rebuilt
// in that physical order. The hot gain scan touches a photo's occurrence
// rows plus every row its entries target; after blocking, the heavy rows —
// the ones nearly every candidate's scan lands in — sit in one dense prefix
// of the best array instead of being strided across subsets, so the
// PQ-recompute sweep's working set collapses onto a few hot pages.
//
// The permutation is a pure relabeling of row storage: neighbour indices and
// occurrence rows are remapped through it, per-row entry order and the
// occurrence LIST order are preserved, so every gain is the same float
// summation in the same order — bit-identical to the unblocked kernel.
// Selections need no inverse mapping on output (solutions are photo IDs;
// rows are internal), but RowOf maps through the permutation so diagnostic
// paths like CoverageVector stay correct.
//
// Blocking composes with quantization as block-then-quantize: BlockRows
// rejects an already-quantized kernel (its f64 slabs are gone), while
// KernelQ carries a blocked kernel's permutation through.
func (k *Kernel) BlockRows() *Kernel {
	if k.ov != nil {
		panic("par: BlockRows on a kernel with a mutation overlay")
	}
	if k.qmode != QuantNone {
		panic("par: BlockRows after quantization; block first, then quantize")
	}
	if k.perm != nil {
		panic("par: BlockRows on an already-blocked kernel")
	}
	rows := k.Rows()

	// Bucket rows by log2 of their entry count and lay buckets out heaviest
	// first; within a bucket, rows keep their canonical order (stable), so
	// the permutation is deterministic.
	const buckets = 33 // bits.Len32 of any int32 count
	var bucketOff [buckets + 1]int32
	deg := make([]int32, rows)
	for r := 0; r < rows; r++ {
		deg[r] = int32(k.rowStart[r+1] - k.rowStart[r])
		bucketOff[bits.Len32(uint32(deg[r]))]++
	}
	var off int32
	for b := buckets - 1; b >= 0; b-- {
		n := bucketOff[b]
		bucketOff[b] = off
		off += n
	}
	perm := make([]int32, rows)
	iperm := make([]int32, rows)
	for r := 0; r < rows; r++ {
		b := bits.Len32(uint32(deg[r]))
		phys := bucketOff[b]
		bucketOff[b]++
		perm[r] = phys
		iperm[phys] = int32(r)
	}

	nb := &Kernel{
		photos:   k.photos,
		rowLen:   k.rowLen,
		occStart: k.occStart,
		perm:     perm,
		iperm:    iperm,
	}
	nb.rowStart = make([]int64, rows+1)
	nb.nbrIdx = make([]int32, len(k.nbrIdx))
	nb.nbrSim = make([]float64, len(k.nbrSim))
	nb.nbrWR = make([]float64, len(k.nbrWR))
	var pos int64
	for phys := 0; phys < rows; phys++ {
		r := iperm[phys]
		nb.rowStart[phys] = pos
		for t := k.rowStart[r]; t < k.rowStart[r+1]; t++ {
			nb.nbrIdx[pos] = perm[k.nbrIdx[t]]
			nb.nbrSim[pos] = k.nbrSim[t]
			nb.nbrWR[pos] = k.nbrWR[t]
			pos++
		}
	}
	nb.rowStart[rows] = pos
	nb.occRow = make([]int32, len(k.occRow))
	for i, r := range k.occRow {
		nb.occRow[i] = perm[r]
	}
	return nb
}
