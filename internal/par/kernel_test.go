package par

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// simVariants rewrites every subset's similarity to a different
// implementation over the same members, so the kernel differential runs
// against each Similarity the repository ships. The dense variant keeps the
// generator's DenseSim; sparse rebuilds the same positive pairs into a
// SparseSim (a NeighborLister); fn hides the dense matrix behind FuncSim
// (no NeighborLister, forces the full-scan compile path); uniform and
// identity are the degenerate extremes.
var simVariants = map[string]func(k int, dense Similarity) Similarity{
	"dense": func(k int, dense Similarity) Similarity { return dense },
	"sparse": func(k int, dense Similarity) Similarity {
		b := NewSparseSimBuilder(k)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if s := dense.Sim(i, j); s > 0 {
					b.Add(i, j, s)
				}
			}
		}
		return b.Build()
	},
	"fn":       func(k int, dense Similarity) Similarity { return FuncSim{N: k, F: dense.Sim} },
	"uniform":  func(k int, dense Similarity) Similarity { return UniformSim{N: k} },
	"identity": func(k int, dense Similarity) Similarity { return IdentitySim{N: k} },
}

// withSims returns a finalized copy of inst whose subset similarities are
// rewritten through the variant function.
func withSims(t testing.TB, inst *Instance, variant func(k int, dense Similarity) Similarity) *Instance {
	out := &Instance{
		Cost:     inst.Cost,
		Retained: inst.Retained,
		Budget:   inst.Budget,
		Subsets:  make([]Subset, len(inst.Subsets)),
	}
	for qi := range inst.Subsets {
		q := inst.Subsets[qi]
		q.Sim = variant(len(q.Members), q.Sim)
		out.Subsets[qi] = q
	}
	if err := out.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	return out
}

// kernelTwin returns a finalized view of inst with a freshly compiled
// kernel attached, sharing all instance data.
func kernelTwin(t testing.TB, inst *Instance) *Instance {
	twin := &Instance{
		Cost:     inst.Cost,
		Retained: inst.Retained,
		Budget:   inst.Budget,
		Subsets:  inst.Subsets,
	}
	if err := twin.Finalize(); err != nil {
		t.Fatalf("Finalize: %v", err)
	}
	if err := twin.AttachKernel(CompileKernel(twin)); err != nil {
		t.Fatalf("AttachKernel: %v", err)
	}
	return twin
}

// TestKernelDifferential drives the jagged reference evaluator and the
// compiled kernel through identical Seed/Gain/Gains/Add/Clone sequences on
// random instances across every similarity implementation and asserts
// bit-identical (==, not within-tolerance) results: selection invariance
// for every solver follows from this.
func TestKernelDifferential(t *testing.T) {
	for name, variant := range simVariants {
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 20; trial++ {
				rng := rand.New(rand.NewSource(int64(1000 + trial)))
				base := Random(rng, RandomConfig{
					Photos:     30,
					Subsets:    8,
					MaxSubset:  10,
					RetainFrac: 0.1,
					SimDensity: 0.6,
				})
				inst := withSims(t, base, variant)
				twin := kernelTwin(t, inst)
				if twin.Kernel() == nil {
					t.Fatal("kernelTwin produced no kernel")
				}

				ref := NewEvaluator(inst)
				ker := NewEvaluator(twin)
				if g1, g2 := ref.Seed(), ker.Seed(); g1 != g2 {
					t.Fatalf("trial %d: Seed %v (jagged) != %v (kernel)", trial, g1, g2)
				}

				all := make([]PhotoID, inst.NumPhotos())
				for p := range all {
					all[p] = PhotoID(p)
				}
				checkGains := func(step string) {
					t.Helper()
					for _, workers := range []int{1, 2, 8} {
						g1 := ref.Gains(all, workers)
						g2 := ker.Gains(all, workers)
						for i := range g1 {
							if g1[i] != g2[i] {
								t.Fatalf("trial %d %s workers=%d: Gains[%d] %v (jagged) != %v (kernel)",
									trial, step, workers, i, g1[i], g2[i])
							}
						}
					}
				}
				checkGains("after seed")

				for step := 0; step < 12; step++ {
					p := PhotoID(rng.Intn(inst.NumPhotos()))
					if g1, g2 := ref.Gain(p), ker.Gain(p); g1 != g2 {
						t.Fatalf("trial %d step %d: Gain(%d) %v (jagged) != %v (kernel)", trial, step, p, g1, g2)
					}
					if g1, g2 := ref.Add(p), ker.Add(p); g1 != g2 {
						t.Fatalf("trial %d step %d: Add(%d) %v (jagged) != %v (kernel)", trial, step, p, g1, g2)
					}
					if s1, s2 := ref.Score(), ker.Score(); s1 != s2 {
						t.Fatalf("trial %d step %d: Score %v (jagged) != %v (kernel)", trial, step, s1, s2)
					}
				}
				checkGains("after adds")

				// Clones must stay on their evaluator's path and agree too.
				ref, ker = ref.Clone(), ker.Clone()
				p := PhotoID(rng.Intn(inst.NumPhotos()))
				if g1, g2 := ref.Add(p), ker.Add(p); g1 != g2 {
					t.Fatalf("trial %d: post-Clone Add(%d) %v (jagged) != %v (kernel)", trial, p, g1, g2)
				}
				checkGains("after clone")
				if s1, s2 := ref.Score(), ker.Score(); s1 != s2 {
					t.Fatalf("trial %d: post-Clone Score %v != %v", trial, s1, s2)
				}
			}
		})
	}
}

// TestKernelScoreMatchesReference checks the kernel's incremental score
// against the first-principles Score on solutions built by Add, within
// floating-point tolerance (Score sums in a different order, so exact
// equality is not expected here — the bit-exact contract is vs the jagged
// evaluator, covered above).
func TestKernelScoreMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		inst := Random(rng, RandomConfig{Photos: 25, Subsets: 6, SimDensity: 0.5})
		twin := kernelTwin(t, inst)
		e := NewEvaluator(twin)
		var sol []PhotoID
		for i := 0; i < 10; i++ {
			p := PhotoID(rng.Intn(inst.NumPhotos()))
			if !e.Contains(p) {
				sol = append(sol, p)
			}
			e.Add(p)
		}
		want := Score(inst, sol)
		if math.Abs(e.Score()-want) > floatTol {
			t.Fatalf("trial %d: kernel score %v, reference Score %v", trial, e.Score(), want)
		}
	}
}

// TestCoverageVectorKernelInvariant pins that CoverageVector — which reads
// the evaluator's best storage directly — is unchanged by kernel attachment.
func TestCoverageVectorKernelInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := Random(rng, RandomConfig{Photos: 20, Subsets: 5})
	twin := kernelTwin(t, inst)
	sol := []PhotoID{1, 4, 9, 13}
	a := CoverageVector(inst, sol)
	b := CoverageVector(twin, sol)
	for qi := range a {
		for mi := range a[qi] {
			if a[qi][mi] != b[qi][mi] {
				t.Fatalf("coverage[%d][%d]: %v (jagged) != %v (kernel)", qi, mi, a[qi][mi], b[qi][mi])
			}
		}
	}
}

func TestCompileKernelPanicsBeforeFinalize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CompileKernel on unfinalized instance did not panic")
		}
	}()
	CompileKernel(&Instance{Cost: []float64{1}})
}

func TestAttachKernelValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := Random(rng, RandomConfig{Photos: 15, Subsets: 4})
	other := Random(rng, RandomConfig{Photos: 16, Subsets: 4})
	k := CompileKernel(inst)

	if err := other.AttachKernel(k); err == nil {
		t.Fatal("attaching a kernel compiled for a different photo count succeeded")
	}
	unfinalized := &Instance{Cost: inst.Cost, Budget: inst.Budget, Subsets: inst.Subsets}
	if err := unfinalized.AttachKernel(k); err == nil {
		t.Fatal("attaching to an unfinalized instance succeeded")
	}
	if err := inst.AttachKernel(k); err != nil {
		t.Fatalf("self-attach failed: %v", err)
	}
	if inst.Kernel() != k {
		t.Fatal("Kernel() does not return the attached kernel")
	}
	// Finalize invalidates the compiled layout and must detach.
	if err := inst.Finalize(); err != nil {
		t.Fatalf("re-Finalize: %v", err)
	}
	if inst.Kernel() != nil {
		t.Fatal("Finalize did not detach the kernel")
	}
}

func TestKernelSizeBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := Random(rng, RandomConfig{Photos: 40, Subsets: 10})
	k := CompileKernel(inst)
	if k.SizeBytes() <= 0 {
		t.Fatalf("SizeBytes = %d, want > 0", k.SizeBytes())
	}
	if k.Rows() <= 0 || k.Entries() <= 0 {
		t.Fatalf("Rows = %d, Entries = %d, want > 0", k.Rows(), k.Entries())
	}
	// Entries dominate; each carries one int32 + two float64.
	if min := 20 * int64(k.Entries()); k.SizeBytes() < min {
		t.Fatalf("SizeBytes = %d, want ≥ %d for %d entries", k.SizeBytes(), min, k.Entries())
	}
}

// FuzzKernelVsReference fuzzes instance shape and solution, comparing the
// kernel evaluator's incremental score against the first-principles Score.
func FuzzKernelVsReference(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(3), uint8(5))
	f.Add(int64(42), uint8(30), uint8(8), uint8(12))
	f.Add(int64(-7), uint8(2), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, photos, subsets, picks uint8) {
		if photos == 0 || subsets == 0 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		inst := Random(rng, RandomConfig{
			Photos:     int(photos),
			Subsets:    int(subsets),
			SimDensity: 0.4,
		})
		twin := kernelTwin(t, inst)
		e := NewEvaluator(twin)
		seen := map[PhotoID]bool{}
		var sol []PhotoID
		for i := 0; i < int(picks); i++ {
			p := PhotoID(rng.Intn(inst.NumPhotos()))
			if !seen[p] {
				seen[p] = true
				sol = append(sol, p)
			}
			e.Add(p)
		}
		want := Score(inst, sol)
		tol := floatTol * (1 + math.Abs(want))
		if diff := math.Abs(e.Score() - want); diff > tol {
			t.Fatalf("kernel score %v, reference Score %v (diff %v)", e.Score(), want, diff)
		}
	})
}

// BenchmarkKernelCompile measures CompileKernel itself — the cost Prepare
// amortizes across solves.
func BenchmarkKernelCompile(b *testing.B) {
	for _, photos := range []int{100, 1000} {
		b.Run(fmt.Sprintf("photos=%d", photos), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			inst := Random(rng, RandomConfig{Photos: photos, Subsets: photos / 5, MaxSubset: 16})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := CompileKernel(inst)
				if k.Rows() == 0 {
					b.Fatal("empty kernel")
				}
			}
		})
	}
}
