package par

import (
	"fmt"
	"sort"
)

// CSRSim is a read-only NeighborLister over flat CSR slabs: one shared
// neighbour array for a whole group of subsets plus a per-subset window of
// absolute row offsets into it. It is the similarity representation of
// loaded prepared snapshots — the slabs are views straight into the mapped
// file region, so constructing a CSRSim copies nothing and allocates only
// the two slice headers.
//
// rowStart holds k+1 absolute offsets into nbrs; row i of the subset is
// nbrs[rowStart[i]:rowStart[i+1]], sorted ascending by neighbour index and
// including the self-neighbour (similarity 1), exactly like SparseSim rows.
// Because offsets are absolute, many CSRSims can window one shared slab
// without any per-subset re-basing.
type CSRSim struct {
	rowStart []int64
	nbrs     []Neighbor
}

// NewCSRSim wraps the given slabs without copying. It validates the CSR
// invariants the rest of the solver stack assumes — monotone offsets in
// range, rows sorted by neighbour index without duplicates, neighbour
// indices within the subset, similarities in (0,1], self-neighbour present
// with similarity 1 — and returns a typed error on any violation, so
// untrusted snapshot bytes can never build a CSRSim that panics later.
func NewCSRSim(rowStart []int64, nbrs []Neighbor) (*CSRSim, error) {
	if len(rowStart) < 1 {
		return nil, fmt.Errorf("par: CSRSim needs at least one row offset")
	}
	k := len(rowStart) - 1
	for i := 0; i < k; i++ {
		lo, hi := rowStart[i], rowStart[i+1]
		if lo < 0 || hi < lo || hi > int64(len(nbrs)) {
			return nil, fmt.Errorf("par: CSRSim row %d spans [%d,%d) outside %d entries", i, lo, hi, len(nbrs))
		}
		self := false
		for t := lo; t < hi; t++ {
			nb := nbrs[t]
			if nb.Index < 0 || nb.Index >= k {
				return nil, fmt.Errorf("par: CSRSim row %d neighbour index %d out of [0,%d)", i, nb.Index, k)
			}
			if t > lo && nbrs[t-1].Index >= nb.Index {
				return nil, fmt.Errorf("par: CSRSim row %d not sorted at entry %d", i, t-lo)
			}
			if nb.Index == i {
				if nb.Sim != 1 {
					return nil, fmt.Errorf("par: CSRSim row %d self-similarity %g, want 1", i, nb.Sim)
				}
				self = true
			} else if !(nb.Sim > 0 && nb.Sim <= 1) {
				return nil, fmt.Errorf("par: CSRSim row %d similarity %g out of (0,1]", i, nb.Sim)
			}
		}
		if !self {
			return nil, fmt.Errorf("par: CSRSim row %d is missing its self-neighbour", i)
		}
	}
	return &CSRSim{rowStart: rowStart, nbrs: nbrs}, nil
}

// Len returns the number of members.
func (c *CSRSim) Len() int { return len(c.rowStart) - 1 }

// Neighbors returns the positive-similarity row of member i as a view into
// the shared slab; it must not be modified.
func (c *CSRSim) Neighbors(i int) []Neighbor {
	return c.nbrs[c.rowStart[i]:c.rowStart[i+1]]
}

// Sim returns the similarity of members i and j (0 if not neighbours) by
// binary search over the sorted row.
func (c *CSRSim) Sim(i, j int) float64 {
	if i == j {
		return 1
	}
	row := c.Neighbors(i)
	k := sort.Search(len(row), func(x int) bool { return row[x].Index >= j })
	if k < len(row) && row[k].Index == j {
		return row[k].Sim
	}
	return 0
}

// SizeBytes returns the memory retained by the similarity's own arrays.
// CSRSim views a shared slab it does not own, so it contributes nothing
// beyond its headers; the owning region is accounted once by the holder.
func (c *CSRSim) SizeBytes() int64 { return 0 }

// SizeBytes returns the memory retained by the packed upper triangle.
func (d *DenseSim) SizeBytes() int64 { return 8 * int64(len(d.vals)) }

// SizeBytes returns the memory retained by the sparse rows (16 bytes per
// stored neighbour plus one slice header per row).
func (s *SparseSim) SizeBytes() int64 {
	n := 24 * int64(len(s.rows)) // slice headers
	for _, row := range s.rows {
		n += 16 * int64(len(row))
	}
	return n
}
