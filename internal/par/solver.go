package par

// Solver is implemented by every algorithm in this repository that produces
// a feasible PAR solution: the CELF lazy-greedy solver, the Sviridenko
// partial-enumeration solver, the exact branch-and-bound solver, and the
// four baselines. The instance must be finalized.
type Solver interface {
	// Solve returns a feasible solution for the instance.
	Solve(inst *Instance) (Solution, error)
	// Name identifies the algorithm in reports ("PHOcus", "RAND-A", ...).
	Name() string
}
