package par

import "context"

// Solver is implemented by every algorithm in this repository that produces
// a feasible PAR solution: the CELF lazy-greedy solver, the Sviridenko
// partial-enumeration solver, the exact branch-and-bound solver, and the
// four baselines. The instance must be finalized.
type Solver interface {
	// Solve returns a feasible solution for the instance.
	Solve(inst *Instance) (Solution, error)
	// Name identifies the algorithm in reports ("PHOcus", "RAND-A", ...).
	Name() string
}

// ContextSolver is a Solver with cooperative cancellation: SolveContext
// checks ctx.Err() at bounded intervals inside its main loop (per CELF
// recompute batch, per Sviridenko enumeration step, per branch-and-bound
// node) and returns the context's error promptly once the context is done.
// Plain Solve remains the compatibility path, equivalent to SolveContext
// with context.Background().
type ContextSolver interface {
	Solver
	// SolveContext is Solve with cooperative cancellation.
	SolveContext(ctx context.Context, inst *Instance) (Solution, error)
}
