package par

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const floatTol = 1e-9

// Figure 3's initial marginal gains (recomputed from Figure 1's inputs; see
// Figure1Instance doc for the two third-decimal discrepancies in the paper's
// rendering).
var figure3InitialGains = []float64{7.83, 6.75, 6.75, 0.70, 0.82, 4.61, 0.79}

func TestFigure3InitialGains(t *testing.T) {
	inst := Figure1Instance()
	e := NewEvaluator(inst)
	for p, want := range figure3InitialGains {
		got := e.Gain(PhotoID(p))
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("initial gain of p%d = %.4f, want %.4f", p+1, got, want)
		}
	}
}

func TestFigure3RecomputedGains(t *testing.T) {
	inst := Figure1Instance()
	e := NewEvaluator(inst)

	// Step 1: p1 is selected (highest initial gain).
	if gain := e.Add(0); math.Abs(gain-7.83) > floatTol {
		t.Fatalf("Add(p1) gain = %.4f, want 7.83", gain)
	}

	// Step 2 recomputations from Figure 3: δ_{p3} = 0.36, δ_{p2} = 0.81,
	// δ_{p6} unchanged at 4.61; p6 is selected.
	if got := e.Gain(2); math.Abs(got-0.36) > floatTol {
		t.Errorf("gain of p3 after {p1} = %.4f, want 0.36", got)
	}
	if got := e.Gain(1); math.Abs(got-0.81) > floatTol {
		t.Errorf("gain of p2 after {p1} = %.4f, want 0.81", got)
	}
	if got := e.Gain(5); math.Abs(got-4.61) > floatTol {
		t.Errorf("gain of p6 after {p1} = %.4f, want 4.61", got)
	}
	if gain := e.Add(5); math.Abs(gain-4.61) > floatTol {
		t.Fatalf("Add(p6) gain = %.4f, want 4.61", gain)
	}

	// Step 3: δ_{p5} recomputes. Figure 3 prints 0.12 = R(q2,p5)·(1−0.7),
	// which neglects that p5 also improves p4's nearest neighbour from 0.4
	// to 0.7 (worth R(q2,p4)·0.3 = 0.09). The model's value is 0.21; either
	// way p2 at 0.81 remains the best and is selected.
	if got := e.Gain(4); math.Abs(got-0.21) > floatTol {
		t.Errorf("gain of p5 after {p1,p6} = %.4f, want 0.21", got)
	}
	if got := e.Gain(1); math.Abs(got-0.81) > floatTol {
		t.Errorf("gain of p2 after {p1,p6} = %.4f, want 0.81", got)
	}
	if gain := e.Add(1); math.Abs(gain-0.81) > floatTol {
		t.Fatalf("Add(p2) gain = %.4f, want 0.81", gain)
	}

	wantScore := 7.83 + 4.61 + 0.81
	if got := e.Score(); math.Abs(got-wantScore) > floatTol {
		t.Errorf("Score() = %.4f, want %.4f", got, wantScore)
	}
	if got := Score(inst, []PhotoID{0, 5, 1}); math.Abs(got-wantScore) > floatTol {
		t.Errorf("reference Score = %.4f, want %.4f", got, wantScore)
	}
	if got := e.Cost(); math.Abs(got-(1.2+1.1+0.7)) > floatTol {
		t.Errorf("Cost() = %.4f, want 3.0", got)
	}
}

func TestEvaluatorAddIdempotent(t *testing.T) {
	inst := Figure1Instance()
	e := NewEvaluator(inst)
	e.Add(0)
	if gain := e.Add(0); gain != 0 {
		t.Errorf("second Add of same photo gained %g, want 0", gain)
	}
	if gain := e.Gain(0); gain != 0 {
		t.Errorf("Gain of photo already in solution = %g, want 0", gain)
	}
	if got := len(e.Solution().Photos); got != 1 {
		t.Errorf("solution has %d photos, want 1", got)
	}
}

func TestEvaluatorSeed(t *testing.T) {
	inst := Figure1Instance()
	inst.Retained = []PhotoID{5, 6}
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	e := NewEvaluator(inst)
	gained := e.Seed()
	want := Score(inst, []PhotoID{5, 6})
	if math.Abs(gained-want) > floatTol {
		t.Errorf("Seed() = %.4f, want %.4f", gained, want)
	}
	if !e.Contains(5) || !e.Contains(6) {
		t.Error("Seed did not add retained photos")
	}
	if math.Abs(e.Cost()-(1.1+1.3)) > floatTol {
		t.Errorf("Cost after Seed = %g, want 2.4", e.Cost())
	}
}

func TestEvaluatorFitsAndRemaining(t *testing.T) {
	inst := Figure1Instance()
	inst.Budget = 2.0
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	e := NewEvaluator(inst)
	if !e.Fits(0) { // 1.2 ≤ 2.0
		t.Error("p1 should fit in empty solution")
	}
	e.Add(0)
	if e.Fits(2) { // 1.2 + 2.1 > 2.0
		t.Error("p3 should not fit after p1")
	}
	if !e.Fits(1) { // 1.2 + 0.7 ≤ 2.0
		t.Error("p2 should fit after p1")
	}
	if got := e.Remaining(); math.Abs(got-0.8) > floatTol {
		t.Errorf("Remaining() = %g, want 0.8", got)
	}
}

func TestEvaluatorClone(t *testing.T) {
	inst := Figure1Instance()
	e := NewEvaluator(inst)
	e.Add(0)
	c := e.Clone()
	c.Add(5)
	if e.Contains(5) {
		t.Error("mutating clone affected original")
	}
	if math.Abs(c.Score()-(7.83+4.61)) > floatTol {
		t.Errorf("clone score = %g, want 12.44", c.Score())
	}
	if math.Abs(e.Score()-7.83) > floatTol {
		t.Errorf("original score = %g, want 7.83", e.Score())
	}
}

func TestGainEvalsCounter(t *testing.T) {
	inst := Figure1Instance()
	e := NewEvaluator(inst)
	e.Gain(0)
	e.Gain(1)
	e.Add(0)
	if got := e.GainEvals(); got != 3 {
		t.Errorf("GainEvals() = %d, want 3", got)
	}
}

// randomSolution draws a random subset of photos (ignoring budget; Score and
// the evaluator are defined for any subset).
func randomSolution(rng *rand.Rand, n int) []PhotoID {
	var s []PhotoID
	for p := 0; p < n; p++ {
		if rng.Intn(2) == 0 {
			s = append(s, PhotoID(p))
		}
	}
	return s
}

// Property: the incremental evaluator agrees with the from-scratch Score for
// random instances and random insertion orders.
func TestEvaluatorMatchesReferenceQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := Random(rng, RandomConfig{Photos: 12, Subsets: 6})
		sol := randomSolution(rng, 12)
		e := NewEvaluator(inst)
		var incr float64
		for _, p := range sol {
			incr += e.Add(p)
		}
		ref := Score(inst, sol)
		return math.Abs(incr-ref) < 1e-9 && math.Abs(e.Score()-ref) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: G is monotone — adding any photo never decreases the score
// (Lemma 4.5).
func TestMonotonicityQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := Random(rng, RandomConfig{Photos: 10, Subsets: 5})
		e := NewEvaluator(inst)
		for _, p := range randomSolution(rng, 10) {
			e.Add(p)
		}
		for p := 0; p < 10; p++ {
			if e.Gain(PhotoID(p)) < -floatTol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: G is submodular — the marginal gain of a photo with respect to a
// set S is at least its gain with respect to any superset T ⊇ S (Lemma 4.5).
func TestSubmodularityQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := Random(rng, RandomConfig{Photos: 10, Subsets: 5})
		small := NewEvaluator(inst)
		large := NewEvaluator(inst)
		s := randomSolution(rng, 10)
		for _, p := range s {
			small.Add(p)
			large.Add(p)
		}
		// Extend T beyond S with extra random photos.
		for p := 0; p < 10; p++ {
			if rng.Intn(3) == 0 {
				large.Add(PhotoID(p))
			}
		}
		for p := 0; p < 10; p++ {
			if large.Contains(PhotoID(p)) {
				continue
			}
			if small.Gain(PhotoID(p)) < large.Gain(PhotoID(p))-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the score only depends on the set, not the insertion order.
func TestOrderInvarianceQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := Random(rng, RandomConfig{Photos: 12, Subsets: 6})
		sol := randomSolution(rng, 12)
		e1 := NewEvaluator(inst)
		for _, p := range sol {
			e1.Add(p)
		}
		e2 := NewEvaluator(inst)
		for i := len(sol) - 1; i >= 0; i-- {
			e2.Add(sol[i])
		}
		return math.Abs(e1.Score()-e2.Score()) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: evaluators honour NeighborLister-based sparse similarities the
// same way they honour dense ones.
func TestEvaluatorSparseVsDenseQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := Random(rng, RandomConfig{Photos: 10, Subsets: 4})
		// Build a twin instance with SparseSim copies of every DenseSim.
		twin := &Instance{Cost: inst.Cost, Budget: inst.Budget}
		for _, q := range inst.Subsets {
			k := len(q.Members)
			sp := NewSparseSim(k)
			for i := 0; i < k; i++ {
				for j := i + 1; j < k; j++ {
					if v := q.Sim.Sim(i, j); v > 0 {
						sp.Add(i, j, v)
					}
				}
			}
			twin.Subsets = append(twin.Subsets, Subset{
				Name: q.Name, Weight: q.Weight, Members: q.Members,
				Relevance: q.Relevance, Sim: sp,
			})
		}
		if err := twin.Finalize(); err != nil {
			return false
		}
		sol := randomSolution(rng, 10)
		e1, e2 := NewEvaluator(inst), NewEvaluator(twin)
		for _, p := range sol {
			e1.Add(p)
			e2.Add(p)
		}
		if math.Abs(e1.Score()-e2.Score()) > 1e-9 {
			return false
		}
		for p := 0; p < 10; p++ {
			if math.Abs(e1.Gain(PhotoID(p))-e2.Gain(PhotoID(p))) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCoverageVector(t *testing.T) {
	inst := Figure1Instance()
	cov := CoverageVector(inst, []PhotoID{0, 5}) // p1, p6
	// Bikes: p1 covers itself 1, p2 at 0.7, p3 at 0.8.
	want0 := []float64{1, 0.7, 0.8}
	for i, w := range want0 {
		if math.Abs(cov[0][i]-w) > 1e-12 {
			t.Errorf("coverage[Bikes][%d] = %g, want %g", i, cov[0][i], w)
		}
	}
	// Cats: p4 via p6 0.4, p5 via p6 0.7, p6 itself 1.
	want1 := []float64{0.4, 0.7, 1}
	for i, w := range want1 {
		if math.Abs(cov[1][i]-w) > 1e-12 {
			t.Errorf("coverage[Cats][%d] = %g, want %g", i, cov[1][i], w)
		}
	}
	// Empty solution: all zeros.
	empty := CoverageVector(inst, nil)
	for qi := range empty {
		for mi := range empty[qi] {
			if empty[qi][mi] != 0 {
				t.Fatalf("empty coverage[%d][%d] = %g", qi, mi, empty[qi][mi])
			}
		}
	}
	// Consistency with Score: Σ W·R·coverage == Score.
	var sum float64
	for qi := range inst.Subsets {
		q := &inst.Subsets[qi]
		for mi := range q.Members {
			sum += q.Weight * q.Relevance[mi] * cov[qi][mi]
		}
	}
	if ref := Score(inst, []PhotoID{0, 5}); math.Abs(sum-ref) > 1e-9 {
		t.Errorf("coverage sum %g != Score %g", sum, ref)
	}
}

// Property: ScoreFast agrees with the reference Score everywhere.
func TestScoreFastMatchesReferenceQuick(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := Random(rng, RandomConfig{Photos: 14, Subsets: 7})
		s := randomSolution(rng, 14)
		return math.Abs(Score(inst, s)-ScoreFast(inst, s)) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
