package par

// Figure1Instance builds the running example of the paper (Figure 1): seven
// photos, four pre-defined subsets derived from the natural-language queries
// "Bikes", "Cats", "Bookshelf" and "Books", with the costs, weights,
// relevance scores and pairwise similarities printed in the figure. Costs
// are in megabytes to match the figure's labels; Budget is likewise in MB
// and defaults to the total cost (8.1 MB) so every photo fits — callers
// lower it to exercise selection.
//
// The instance is the ground truth for the step-by-step trace of Algorithm 2
// in Figure 3 (δ_{p1}=7.83, δ_{p2}=6.75, δ_{p3}=6.75, δ_{p4}=0.70,
// δ_{p5}=0.82, δ_{p6}=4.61, δ_{p7}=0.79, then selections p1, p6, p2, ...).
// Three of the figure's printed values differ from the arithmetic of its own
// inputs: 6.74 for p2 and 0.78 for p7 are off in the third decimal, and the
// step-3 recomputation of δ_{p5} is printed as 0.12 where the model gives
// 0.21 (the figure neglects p5 improving p4's nearest neighbour). None of
// them change the selection order; the tests in this repository assert the
// recomputed values.
func Figure1Instance() *Instance {
	// Photos p1..p7 map to IDs 0..6.
	inst := &Instance{
		Cost:   []float64{1.2, 0.7, 2.1, 0.9, 0.8, 1.1, 1.3},
		Budget: 8.1,
		Subsets: []Subset{
			{
				Name:      "Bikes",
				Weight:    9,
				Members:   []PhotoID{0, 1, 2}, // p1, p2, p3
				Relevance: []float64{0.5, 0.3, 0.2},
			},
			{
				Name:      "Cats",
				Weight:    1,
				Members:   []PhotoID{3, 4, 5}, // p4, p5, p6
				Relevance: []float64{0.3, 0.4, 0.3},
			},
			{
				Name:      "Bookshelf",
				Weight:    3,
				Members:   []PhotoID{5}, // p6
				Relevance: []float64{1},
			},
			{
				Name:      "Books",
				Weight:    1,
				Members:   []PhotoID{5, 6}, // p6, p7
				Relevance: []float64{0.7, 0.3},
			},
		},
	}
	bikes := NewDenseSim(3)
	bikes.Set(0, 1, 0.7) // SIM(q1, p1, p2)
	bikes.Set(0, 2, 0.8) // SIM(q1, p1, p3)
	bikes.Set(1, 2, 0.5) // SIM(q1, p2, p3)
	inst.Subsets[0].Sim = bikes

	cats := NewDenseSim(3)
	cats.Set(0, 1, 0.7) // SIM(q2, p4, p5)
	cats.Set(0, 2, 0.4) // SIM(q2, p4, p6)
	cats.Set(1, 2, 0.7) // SIM(q2, p5, p6)
	inst.Subsets[1].Sim = cats

	inst.Subsets[2].Sim = NewDenseSim(1)

	books := NewDenseSim(2)
	books.Set(0, 1, 0.7) // SIM(q4, p6, p7)
	inst.Subsets[3].Sim = books

	if err := inst.Finalize(); err != nil {
		panic("par: Figure1Instance is invalid: " + err.Error())
	}
	return inst
}
