package par

import (
	"fmt"
	"math"
)

// PhotoID identifies a photo by its dense index in an Instance.
type PhotoID int32

// Subset is one pre-defined subset q ∈ Q: an importance weight, the member
// photos, their relevance scores, and the contextualized similarity.
type Subset struct {
	// Name is a human-readable label ("Bikes", a landing-page title, a query).
	Name string
	// Weight is W(q) > 0, the relative importance of the subset.
	Weight float64
	// Members lists the photos in q by ID.
	Members []PhotoID
	// Relevance holds R(q, p) for each member, aligned with Members.
	// Validate checks that the scores are nonnegative and sum to 1.
	Relevance []float64
	// Sim is the contextual similarity over member indices.
	Sim Similarity
}

// Instance is a complete PAR input ⟨P, S0, Q, C, W, R, SIM, B⟩. Construct it
// by filling the exported fields, then call Finalize before handing it to a
// solver.
type Instance struct {
	// Cost holds C(p) in bytes for each photo; len(Cost) is n = |P|.
	Cost []float64
	// Retained is S0, the photos that every solution must contain.
	Retained []PhotoID
	// Subsets is Q together with W, R and SIM.
	Subsets []Subset
	// Budget is B, the bound on the total cost of the solution, in bytes.
	Budget float64

	// occ maps each photo to its occurrences across subsets; built by
	// Finalize.
	occ [][]Occurrence
	// kern is the attached compiled gain kernel, nil unless AttachKernel was
	// called after the most recent Finalize.
	kern *Kernel
	// retainedSet marks membership in S0; built by Finalize.
	retainedSet []bool
	// retainedCost is C(S0); built by Finalize.
	retainedCost float64
}

// Occurrence records that a photo is the Index-th member of subset Q.
type Occurrence struct {
	Subset int // index into Instance.Subsets
	Index  int // index into Subset.Members
}

// NumPhotos returns n = |P|.
func (in *Instance) NumPhotos() int { return len(in.Cost) }

// TotalCost returns C(P), the cost of keeping every photo.
func (in *Instance) TotalCost() float64 {
	var sum float64
	for _, c := range in.Cost {
		sum += c
	}
	return sum
}

// TotalWeight returns Σ_q W(q), the maximum attainable objective value
// (reached by any solution containing at least one perfect representative
// for every member of every subset, e.g. S = P).
func (in *Instance) TotalWeight() float64 {
	var sum float64
	for i := range in.Subsets {
		sum += in.Subsets[i].Weight
	}
	return sum
}

// RetainedCost returns C(S0). Finalize must have been called.
func (in *Instance) RetainedCost() float64 { return in.retainedCost }

// IsRetained reports whether p ∈ S0. Finalize must have been called.
func (in *Instance) IsRetained(p PhotoID) bool { return in.retainedSet[p] }

// Occurrences returns the subsets containing p and p's member index in each.
// Finalize must have been called. The returned slice is owned by the
// instance and must not be modified.
func (in *Instance) Occurrences(p PhotoID) []Occurrence { return in.occ[p] }

// Finalize validates the instance and builds the photo→subset occurrence
// index required by Evaluator. It must be called once after construction and
// again after any structural mutation.
func (in *Instance) Finalize() error {
	if err := in.validate(); err != nil {
		return err
	}
	// A structural mutation invalidates any compiled kernel's layout; callers
	// re-attach via AttachKernel after a successful Finalize.
	in.kern = nil
	n := in.NumPhotos()
	in.occ = make([][]Occurrence, n)
	for qi := range in.Subsets {
		q := &in.Subsets[qi]
		for mi, p := range q.Members {
			in.occ[p] = append(in.occ[p], Occurrence{Subset: qi, Index: mi})
		}
	}
	in.retainedSet = make([]bool, n)
	in.retainedCost = 0
	for _, p := range in.Retained {
		if !in.retainedSet[p] {
			in.retainedSet[p] = true
			in.retainedCost += in.Cost[p]
		}
	}
	if in.retainedCost > in.Budget {
		return fmt.Errorf("par: retained set S0 costs %.0f bytes, exceeding budget %.0f", in.retainedCost, in.Budget)
	}
	return nil
}

// ViewInto initializes dst as a budget view over in's finalized state: the
// same photos, subsets, retained set and occurrence index, with Budget
// replaced. Finalize's validation and occurrence rebuild are both
// budget-independent, so a hot solve path can stamp out per-run views
// without re-running either (or allocating). The view shares in's internal
// index structures — it must not outlive a structural mutation of in — and
// the kernel is cleared exactly as Finalize would; callers attach one
// explicitly.
func (in *Instance) ViewInto(dst *Instance, budget float64) error {
	if in.occ == nil {
		return fmt.Errorf("par: ViewInto before Finalize")
	}
	if in.retainedCost > budget {
		return fmt.Errorf("par: retained set S0 costs %.0f bytes, exceeding budget %.0f", in.retainedCost, budget)
	}
	*dst = *in
	dst.Budget = budget
	dst.kern = nil
	return nil
}

// relevanceTolerance is the permitted deviation of a subset's relevance sum
// from 1, absorbing accumulated floating-point error from normalization.
const relevanceTolerance = 1e-6

func (in *Instance) validate() error {
	n := in.NumPhotos()
	if n == 0 {
		return fmt.Errorf("par: instance has no photos")
	}
	if in.Budget < 0 {
		return fmt.Errorf("par: negative budget %g", in.Budget)
	}
	for p, c := range in.Cost {
		if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("par: photo %d has invalid cost %g", p, c)
		}
	}
	for _, p := range in.Retained {
		if p < 0 || int(p) >= n {
			return fmt.Errorf("par: retained photo %d out of range [0,%d)", p, n)
		}
	}
	for qi := range in.Subsets {
		q := &in.Subsets[qi]
		if q.Weight <= 0 || math.IsNaN(q.Weight) || math.IsInf(q.Weight, 0) {
			return fmt.Errorf("par: subset %d (%q) has invalid weight %g", qi, q.Name, q.Weight)
		}
		if len(q.Members) == 0 {
			return fmt.Errorf("par: subset %d (%q) is empty", qi, q.Name)
		}
		if len(q.Relevance) != len(q.Members) {
			return fmt.Errorf("par: subset %d (%q) has %d members but %d relevance scores",
				qi, q.Name, len(q.Members), len(q.Relevance))
		}
		if q.Sim == nil {
			return fmt.Errorf("par: subset %d (%q) has nil similarity", qi, q.Name)
		}
		if q.Sim.Len() != len(q.Members) {
			return fmt.Errorf("par: subset %d (%q) has %d members but similarity over %d",
				qi, q.Name, len(q.Members), q.Sim.Len())
		}
		seen := make(map[PhotoID]bool, len(q.Members))
		var relSum float64
		for mi, p := range q.Members {
			if p < 0 || int(p) >= n {
				return fmt.Errorf("par: subset %d (%q) member %d out of range", qi, q.Name, p)
			}
			if seen[p] {
				return fmt.Errorf("par: subset %d (%q) contains photo %d twice", qi, q.Name, p)
			}
			seen[p] = true
			r := q.Relevance[mi]
			if r < 0 || math.IsNaN(r) {
				return fmt.Errorf("par: subset %d (%q) has invalid relevance %g for photo %d", qi, q.Name, r, p)
			}
			relSum += r
		}
		if math.Abs(relSum-1) > relevanceTolerance {
			return fmt.Errorf("par: subset %d (%q) relevance sums to %g, want 1", qi, q.Name, relSum)
		}
	}
	return nil
}

// NormalizeRelevance rescales each subset's relevance scores to sum to 1, as
// the model requires. Subsets whose scores sum to 0 get uniform relevance.
// Call it before Finalize when scores come from an unnormalized source (a
// search engine, label confidences, manual tags).
func (in *Instance) NormalizeRelevance() {
	for qi := range in.Subsets {
		q := &in.Subsets[qi]
		var sum float64
		for _, r := range q.Relevance {
			sum += r
		}
		if sum <= 0 {
			u := 1 / float64(len(q.Relevance))
			for i := range q.Relevance {
				q.Relevance[i] = u
			}
			continue
		}
		for i := range q.Relevance {
			q.Relevance[i] /= sum
		}
	}
}

// Solution is the output of a PAR solver: the retained photos with their
// objective value and total cost.
type Solution struct {
	Photos []PhotoID
	Score  float64
	Cost   float64
}

// Feasible reports whether s satisfies the instance's constraints:
// C(s) ≤ B, S0 ⊆ s, and no duplicate or out-of-range photos.
func (in *Instance) Feasible(s []PhotoID) bool {
	return in.FeasibleBuf(s, make([]bool, in.NumPhotos()))
}

// FeasibleBuf is Feasible with a caller-owned duplicate-marker buffer
// (cleared on entry) so hot paths can check feasibility without allocating;
// a buffer shorter than NumPhotos is replaced by a fresh one.
func (in *Instance) FeasibleBuf(s []PhotoID, seen []bool) bool {
	n := in.NumPhotos()
	if len(seen) < n {
		seen = make([]bool, n)
	}
	seen = seen[:n]
	clear(seen)
	var cost float64
	for _, p := range s {
		if p < 0 || int(p) >= n || seen[p] {
			return false
		}
		seen[p] = true
		cost += in.Cost[p]
	}
	if cost > in.Budget+budgetSlack(in.Budget) {
		return false
	}
	for _, p := range in.Retained {
		if !seen[p] {
			return false
		}
	}
	return true
}

// budgetSlack returns the tolerance used when comparing accumulated float
// costs against the budget, proportional to the budget's magnitude.
func budgetSlack(budget float64) float64 { return 1e-9 * (1 + math.Abs(budget)) }
