package par

import (
	"math"
	"strings"
	"testing"
)

func validInstance() *Instance {
	sim := NewDenseSim(2)
	sim.Set(0, 1, 0.5)
	return &Instance{
		Cost:   []float64{1, 2, 3},
		Budget: 4,
		Subsets: []Subset{
			{Name: "q", Weight: 1, Members: []PhotoID{0, 2}, Relevance: []float64{0.4, 0.6}, Sim: sim},
		},
	}
}

func TestFinalizeValid(t *testing.T) {
	inst := validInstance()
	if err := inst.Finalize(); err != nil {
		t.Fatalf("Finalize() = %v, want nil", err)
	}
	if got := inst.NumPhotos(); got != 3 {
		t.Errorf("NumPhotos() = %d, want 3", got)
	}
	if got := inst.TotalCost(); got != 6 {
		t.Errorf("TotalCost() = %g, want 6", got)
	}
	if got := inst.TotalWeight(); got != 1 {
		t.Errorf("TotalWeight() = %g, want 1", got)
	}
}

func TestFinalizeOccurrences(t *testing.T) {
	inst := validInstance()
	sim := NewDenseSim(2)
	sim.Set(0, 1, 0.9)
	inst.Subsets = append(inst.Subsets, Subset{
		Name: "q2", Weight: 2, Members: []PhotoID{2, 1}, Relevance: []float64{0.5, 0.5}, Sim: sim,
	})
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	occ2 := inst.Occurrences(2)
	if len(occ2) != 2 {
		t.Fatalf("photo 2 has %d occurrences, want 2", len(occ2))
	}
	if occ2[0] != (Occurrence{Subset: 0, Index: 1}) {
		t.Errorf("first occurrence of photo 2 = %+v, want {0 1}", occ2[0])
	}
	if occ2[1] != (Occurrence{Subset: 1, Index: 0}) {
		t.Errorf("second occurrence of photo 2 = %+v, want {1 0}", occ2[1])
	}
	if got := inst.Occurrences(0); len(got) != 1 {
		t.Errorf("photo 0 has %d occurrences, want 1", len(got))
	}
}

func TestFinalizeErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Instance)
		wantSub string
	}{
		{"no photos", func(in *Instance) { in.Cost = nil }, "no photos"},
		{"negative budget", func(in *Instance) { in.Budget = -1 }, "negative budget"},
		{"zero cost", func(in *Instance) { in.Cost[1] = 0 }, "invalid cost"},
		{"nan cost", func(in *Instance) { in.Cost[0] = math.NaN() }, "invalid cost"},
		{"retained out of range", func(in *Instance) { in.Retained = []PhotoID{9} }, "out of range"},
		{"retained negative", func(in *Instance) { in.Retained = []PhotoID{-1} }, "out of range"},
		{"zero weight", func(in *Instance) { in.Subsets[0].Weight = 0 }, "invalid weight"},
		{"empty subset", func(in *Instance) {
			in.Subsets[0].Members = nil
			in.Subsets[0].Relevance = nil
			in.Subsets[0].Sim = NewDenseSim(0)
		}, "is empty"},
		{"relevance length mismatch", func(in *Instance) { in.Subsets[0].Relevance = []float64{1} }, "relevance scores"},
		{"nil sim", func(in *Instance) { in.Subsets[0].Sim = nil }, "nil similarity"},
		{"sim size mismatch", func(in *Instance) { in.Subsets[0].Sim = NewDenseSim(5) }, "similarity over"},
		{"member out of range", func(in *Instance) { in.Subsets[0].Members[0] = 7 }, "out of range"},
		{"duplicate member", func(in *Instance) { in.Subsets[0].Members[1] = 0 }, "twice"},
		{"negative relevance", func(in *Instance) { in.Subsets[0].Relevance = []float64{-0.2, 1.2} }, "invalid relevance"},
		{"relevance not normalized", func(in *Instance) { in.Subsets[0].Relevance = []float64{0.4, 0.4} }, "sums to"},
		{"retained exceeds budget", func(in *Instance) {
			in.Retained = []PhotoID{1, 2}
			in.Budget = 4
		}, "exceeding budget"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inst := validInstance()
			tc.mutate(inst)
			err := inst.Finalize()
			if err == nil {
				t.Fatalf("Finalize() = nil, want error containing %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("Finalize() error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestRetainedBookkeeping(t *testing.T) {
	inst := validInstance()
	inst.Retained = []PhotoID{0, 2, 0} // duplicate must not double-count cost
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := inst.RetainedCost(); got != 4 {
		t.Errorf("RetainedCost() = %g, want 4", got)
	}
	if !inst.IsRetained(0) || !inst.IsRetained(2) || inst.IsRetained(1) {
		t.Errorf("IsRetained flags wrong: 0=%v 1=%v 2=%v",
			inst.IsRetained(0), inst.IsRetained(1), inst.IsRetained(2))
	}
}

func TestNormalizeRelevance(t *testing.T) {
	inst := validInstance()
	inst.Subsets[0].Relevance = []float64{2, 6}
	inst.NormalizeRelevance()
	if got := inst.Subsets[0].Relevance; got[0] != 0.25 || got[1] != 0.75 {
		t.Errorf("normalized relevance = %v, want [0.25 0.75]", got)
	}

	inst.Subsets[0].Relevance = []float64{0, 0}
	inst.NormalizeRelevance()
	if got := inst.Subsets[0].Relevance; got[0] != 0.5 || got[1] != 0.5 {
		t.Errorf("zero-sum relevance normalized to %v, want uniform [0.5 0.5]", got)
	}
}

func TestFeasible(t *testing.T) {
	inst := validInstance()
	inst.Retained = []PhotoID{0}
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		s    []PhotoID
		want bool
	}{
		{"retained only", []PhotoID{0}, true},
		{"within budget", []PhotoID{0, 2}, true},
		{"missing retained", []PhotoID{2}, false},
		{"over budget", []PhotoID{0, 1, 2}, false},
		{"duplicate", []PhotoID{0, 0}, false},
		{"out of range", []PhotoID{0, 5}, false},
	}
	for _, tc := range cases {
		if got := inst.Feasible(tc.s); got != tc.want {
			t.Errorf("%s: Feasible(%v) = %v, want %v", tc.name, tc.s, got, tc.want)
		}
	}
}

func TestFigure1InstanceShape(t *testing.T) {
	inst := Figure1Instance()
	if got := inst.NumPhotos(); got != 7 {
		t.Fatalf("NumPhotos() = %d, want 7", got)
	}
	if got := len(inst.Subsets); got != 4 {
		t.Fatalf("len(Subsets) = %d, want 4", got)
	}
	if got := inst.TotalCost(); math.Abs(got-8.1) > 1e-9 {
		t.Errorf("TotalCost() = %g, want 8.1", got)
	}
	// Full archive achieves the maximum score Σ W(q) = 14.
	all := make([]PhotoID, 7)
	for i := range all {
		all[i] = PhotoID(i)
	}
	if got := Score(inst, all); math.Abs(got-14) > 1e-9 {
		t.Errorf("Score(P) = %g, want 14", got)
	}
}
