package par

import (
	"encoding/json"
	"fmt"
	"io"
)

// The JSON wire format is how instances travel between the data generator,
// the CLI and the HTTP server. Similarities are serialized sparsely as
// (i, j, sim) triples over member indices, with the diagonal implied.

type instanceJSON struct {
	Costs    []float64    `json:"costs"`
	Retained []PhotoID    `json:"retained,omitempty"`
	Budget   float64      `json:"budget"`
	Subsets  []subsetJSON `json:"subsets"`
}

type subsetJSON struct {
	Name      string     `json:"name"`
	Weight    float64    `json:"weight"`
	Members   []PhotoID  `json:"members"`
	Relevance []float64  `json:"relevance"`
	Sim       []pairJSON `json:"sim"`
}

type pairJSON struct {
	I   int     `json:"i"`
	J   int     `json:"j"`
	Sim float64 `json:"s"`
}

// WriteJSON serializes the instance. Subset similarities are enumerated
// pairwise, so this is intended for instances of CLI scale, not for the
// largest benchmark datasets.
func WriteJSON(w io.Writer, inst *Instance) error {
	out := instanceJSON{
		Costs:    inst.Cost,
		Retained: inst.Retained,
		Budget:   inst.Budget,
		Subsets:  make([]subsetJSON, len(inst.Subsets)),
	}
	for qi := range inst.Subsets {
		q := &inst.Subsets[qi]
		sj := subsetJSON{
			Name:      q.Name,
			Weight:    q.Weight,
			Members:   q.Members,
			Relevance: q.Relevance,
		}
		k := len(q.Members)
		if nl, ok := q.Sim.(NeighborLister); ok {
			for i := 0; i < k; i++ {
				for _, nb := range nl.Neighbors(i) {
					if nb.Index > i { // emit each pair once
						sj.Sim = append(sj.Sim, pairJSON{I: i, J: nb.Index, Sim: nb.Sim})
					}
				}
			}
		} else {
			for i := 0; i < k; i++ {
				for j := i + 1; j < k; j++ {
					if s := q.Sim.Sim(i, j); s > 0 {
						sj.Sim = append(sj.Sim, pairJSON{I: i, J: j, Sim: s})
					}
				}
			}
		}
		out.Subsets[qi] = sj
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// ReadJSON parses an instance previously produced by WriteJSON (or written
// by hand) and finalizes it. Sparse similarities are loaded into SparseSim.
func ReadJSON(r io.Reader) (*Instance, error) {
	var in instanceJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("par: decoding instance: %w", err)
	}
	inst := &Instance{
		Cost:     in.Costs,
		Retained: in.Retained,
		Budget:   in.Budget,
		Subsets:  make([]Subset, len(in.Subsets)),
	}
	for qi, sj := range in.Subsets {
		k := len(sj.Members)
		sim := NewSparseSim(k)
		for _, p := range sj.Sim {
			if p.I < 0 || p.I >= k || p.J < 0 || p.J >= k {
				return nil, fmt.Errorf("par: subset %d similarity pair (%d,%d) out of range", qi, p.I, p.J)
			}
			if p.I == p.J {
				continue // diagonal is implicit
			}
			if p.Sim <= 0 || p.Sim > 1 {
				return nil, fmt.Errorf("par: subset %d similarity %g out of (0,1]", qi, p.Sim)
			}
			if sim.Contains(p.I, p.J) {
				return nil, fmt.Errorf("par: subset %d similarity pair (%d,%d) given twice", qi, p.I, p.J)
			}
			sim.Add(p.I, p.J, p.Sim)
		}
		inst.Subsets[qi] = Subset{
			Name:      sj.Name,
			Weight:    sj.Weight,
			Members:   sj.Members,
			Relevance: sj.Relevance,
			Sim:       sim,
		}
	}
	if err := inst.Finalize(); err != nil {
		return nil, err
	}
	return inst, nil
}
