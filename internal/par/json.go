package par

import (
	"encoding/json"
	"fmt"
	"io"
)

// The JSON wire format is how instances travel between the data generator,
// the CLI and the HTTP server. Similarities are serialized sparsely as
// (i, j, sim) triples over member indices, with the diagonal implied.

type instanceJSON struct {
	Costs    []float64    `json:"costs"`
	Retained []PhotoID    `json:"retained,omitempty"`
	Budget   float64      `json:"budget"`
	Subsets  []subsetJSON `json:"subsets"`
}

type subsetJSON struct {
	Name      string     `json:"name"`
	Weight    float64    `json:"weight"`
	Members   []PhotoID  `json:"members"`
	Relevance []float64  `json:"relevance"`
	Sim       []pairJSON `json:"sim"`
	// Vectors optionally carries one context-embedding vector per member
	// (same order), enabling LSH sparsification on the receiving side.
	Vectors [][]float64 `json:"vectors,omitempty"`
}

type pairJSON struct {
	I   int     `json:"i"`
	J   int     `json:"j"`
	Sim float64 `json:"s"`
}

// WriteJSON serializes the instance. Subset similarities are enumerated
// pairwise, so this is intended for instances of CLI scale, not for the
// largest benchmark datasets.
func WriteJSON(w io.Writer, inst *Instance) error {
	return WriteJSONVectors(w, inst, nil)
}

// WriteJSONVectors is WriteJSON with optional per-subset context vectors
// (one vector per member, subset order matching inst.Subsets), so receivers
// can run LSH sparsification. A nil vectors slice writes the plain format.
func WriteJSONVectors(w io.Writer, inst *Instance, vectors [][][]float64) error {
	if vectors != nil && len(vectors) != len(inst.Subsets) {
		return fmt.Errorf("par: %d vector groups for %d subsets", len(vectors), len(inst.Subsets))
	}
	out := instanceJSON{
		Costs:    inst.Cost,
		Retained: inst.Retained,
		Budget:   inst.Budget,
		Subsets:  make([]subsetJSON, len(inst.Subsets)),
	}
	for qi := range inst.Subsets {
		q := &inst.Subsets[qi]
		sj := subsetJSON{
			Name:      q.Name,
			Weight:    q.Weight,
			Members:   q.Members,
			Relevance: q.Relevance,
		}
		k := len(q.Members)
		if nl, ok := q.Sim.(NeighborLister); ok {
			for i := 0; i < k; i++ {
				for _, nb := range nl.Neighbors(i) {
					if nb.Index > i { // emit each pair once
						sj.Sim = append(sj.Sim, pairJSON{I: i, J: nb.Index, Sim: nb.Sim})
					}
				}
			}
		} else {
			for i := 0; i < k; i++ {
				for j := i + 1; j < k; j++ {
					if s := q.Sim.Sim(i, j); s > 0 {
						sj.Sim = append(sj.Sim, pairJSON{I: i, J: j, Sim: s})
					}
				}
			}
		}
		if vectors != nil {
			if len(vectors[qi]) != k {
				return fmt.Errorf("par: subset %d has %d vectors for %d members", qi, len(vectors[qi]), k)
			}
			sj.Vectors = vectors[qi]
		}
		out.Subsets[qi] = sj
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// ReadJSON parses an instance previously produced by WriteJSON (or written
// by hand) and finalizes it. Sparse similarities are loaded into SparseSim.
func ReadJSON(r io.Reader) (*Instance, error) {
	inst, _, err := ReadJSONVectors(r)
	return inst, err
}

// ReadJSONVectors is ReadJSON returning the optional per-subset context
// vectors alongside the instance. vectors is nil when no subset carried
// any; otherwise it has one (possibly nil) group per subset, validated to
// hold one vector per member with a uniform positive dimension.
func ReadJSONVectors(r io.Reader) (*Instance, [][][]float64, error) {
	var in instanceJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, nil, fmt.Errorf("par: decoding instance: %w", err)
	}
	inst := &Instance{
		Cost:     in.Costs,
		Retained: in.Retained,
		Budget:   in.Budget,
		Subsets:  make([]Subset, len(in.Subsets)),
	}
	var vectors [][][]float64
	for qi, sj := range in.Subsets {
		k := len(sj.Members)
		sim := NewSparseSim(k)
		for _, p := range sj.Sim {
			if p.I < 0 || p.I >= k || p.J < 0 || p.J >= k {
				return nil, nil, fmt.Errorf("par: subset %d similarity pair (%d,%d) out of range", qi, p.I, p.J)
			}
			if p.I == p.J {
				continue // diagonal is implicit
			}
			if p.Sim <= 0 || p.Sim > 1 {
				return nil, nil, fmt.Errorf("par: subset %d similarity %g out of (0,1]", qi, p.Sim)
			}
			if sim.Contains(p.I, p.J) {
				return nil, nil, fmt.Errorf("par: subset %d similarity pair (%d,%d) given twice", qi, p.I, p.J)
			}
			sim.Add(p.I, p.J, p.Sim)
		}
		inst.Subsets[qi] = Subset{
			Name:      sj.Name,
			Weight:    sj.Weight,
			Members:   sj.Members,
			Relevance: sj.Relevance,
			Sim:       sim,
		}
		if len(sj.Vectors) > 0 {
			if len(sj.Vectors) != k {
				return nil, nil, fmt.Errorf("par: subset %d has %d vectors for %d members", qi, len(sj.Vectors), k)
			}
			dim := len(sj.Vectors[0])
			if dim == 0 {
				return nil, nil, fmt.Errorf("par: subset %d has an empty context vector", qi)
			}
			for vi, v := range sj.Vectors {
				if len(v) != dim {
					return nil, nil, fmt.Errorf("par: subset %d vector %d has dimension %d, want %d", qi, vi, len(v), dim)
				}
			}
			if vectors == nil {
				vectors = make([][][]float64, len(in.Subsets))
			}
			vectors[qi] = sj.Vectors
		}
	}
	if vectors != nil {
		for qi := range vectors {
			if vectors[qi] == nil {
				return nil, nil, fmt.Errorf("par: subset %d is missing context vectors (all subsets need them or none)", qi)
			}
		}
	}
	if err := inst.Finalize(); err != nil {
		return nil, nil, err
	}
	return inst, vectors, nil
}
