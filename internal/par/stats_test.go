package par

import (
	"math"
	"strings"
	"testing"
)

func TestStatsFigure1(t *testing.T) {
	inst := Figure1Instance()
	inst.Retained = []PhotoID{5}
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	s := Stats(inst)
	if s.Photos != 7 || s.Subsets != 4 || s.Retained != 1 {
		t.Errorf("shape: %+v", s)
	}
	if math.Abs(s.TotalBytes-8.1) > 1e-9 {
		t.Errorf("total %g", s.TotalBytes)
	}
	if s.MinSubset != 1 || s.MaxSubset != 3 || s.MedianSubset != 3 {
		t.Errorf("subset sizes %d/%d/%d", s.MinSubset, s.MedianSubset, s.MaxSubset)
	}
	// Memberships: p1..p5,p7 in 1 subset; p6 in 3 → (6·1+3)/7.
	if math.Abs(s.MeanMemberships-9.0/7) > 1e-9 {
		t.Errorf("mean memberships %g, want %g", s.MeanMemberships, 9.0/7)
	}
	if s.OrphanPhotos != 0 {
		t.Errorf("orphans %d", s.OrphanPhotos)
	}
	if out := s.String(); !strings.Contains(out, "photos:       7") {
		t.Errorf("String():\n%s", out)
	}
}

func TestStatsOrphans(t *testing.T) {
	sim := NewDenseSim(1)
	inst := &Instance{
		Cost:   []float64{1, 2, 4},
		Budget: 7,
		Subsets: []Subset{
			{Name: "q", Weight: 1, Members: []PhotoID{1}, Relevance: []float64{1}, Sim: sim},
		},
	}
	if err := inst.Finalize(); err != nil {
		t.Fatal(err)
	}
	s := Stats(inst)
	if s.OrphanPhotos != 2 {
		t.Errorf("orphans %d, want 2", s.OrphanPhotos)
	}
	if s.MedianCost != 2 || s.MeanCost != 7.0/3 {
		t.Errorf("costs mean %g median %g", s.MeanCost, s.MedianCost)
	}
	if s.BudgetFrac != 1 {
		t.Errorf("budget frac %g", s.BudgetFrac)
	}
}
