// Package jobs turns solves into first-class asynchronous jobs with a
// durable lifecycle: a write-ahead-logged Store that survives crashes, a
// bounded Queue with admission control, and a Service that drains the queue
// onto a worker pool with per-job deadlines, capped-backoff retries and
// graceful shutdown. phocus-server mounts it behind POST /jobs so large
// solves no longer hold an HTTP connection open and bursts get backpressure
// (429) instead of unbounded queueing.
//
// The state machine is
//
//	queued → running → done
//	                 → failed    (after retries are exhausted)
//	                 → canceled  (DELETE /jobs/{id} or pre-run cancel)
//	        running → queued     (crash replay or shutdown checkpoint)
//
// done, failed and canceled are terminal. A job found running in the WAL on
// restart was interrupted by a crash and is re-queued exactly once during
// replay; a job still running at graceful shutdown is checkpointed back to
// queued so the next boot resumes it.
package jobs

import (
	"errors"
	"fmt"
	"time"
)

// State is a job lifecycle state.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final (no further transitions).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Valid reports whether s is one of the five lifecycle states.
func (s State) Valid() bool {
	switch s {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// Job is one unit of asynchronous work: an opaque payload plus its
// lifecycle bookkeeping. The jobs package never interprets Params or Body —
// the Runner the Service is configured with does.
type Job struct {
	// ID is the job's unique identifier (assigned by the Service).
	ID string `json:"id"`
	// Tenant is the owning tenant. It is omitempty for WAL back-compat:
	// pre-tenancy v1 records carry no tenant and replay assigns them
	// fleet.DefaultTenant, so an upgraded shard keeps serving its old jobs.
	Tenant string `json:"tenant,omitempty"`
	// Seq orders jobs by submission (monotonic across restarts); listings
	// and queue replay use it.
	Seq uint64 `json:"seq"`
	// Params is the submitter's opaque parameter string (phocus-server
	// stores the raw solve query string here).
	Params string `json:"params,omitempty"`
	// Body is the opaque payload (the instance JSON). It is dropped from
	// the record once the job reaches a terminal state so snapshots stay
	// proportional to in-flight work, not history.
	Body []byte `json:"body,omitempty"`
	// BodyBytes is len(Body) at submission; it keeps byte accounting valid
	// after Body is dropped.
	BodyBytes int64 `json:"body_bytes"`

	State State `json:"state"`
	// Attempts counts Runner invocations (retries included).
	Attempts int `json:"attempts,omitempty"`
	// Error is the final error chain of a failed job (or the cancel cause).
	Error string `json:"error,omitempty"`
	// Result is the Runner's output for a done job.
	Result []byte `json:"result,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
	// NotBefore, when set, defers execution: the job sits in state queued
	// (outside the runnable queue) until the deadline passes. Deferral
	// survives restarts — replay re-arms a future deadline and immediately
	// requeues a past-due one. Recurring work (phocus-server's retention
	// jobs) is built on it: each run schedules its successor with SubmitAt.
	NotBefore time.Time `json:"not_before,omitempty"`
}

// Deferred reports whether the job is still waiting out its NotBefore
// deadline (relative to now).
func (j *Job) Deferred(now time.Time) bool {
	return j.State == StateQueued && !j.NotBefore.IsZero() && j.NotBefore.After(now)
}

// Wait returns how long the job sat queued before its (last) start; zero
// until it has started.
func (j *Job) Wait() time.Duration {
	if j.StartedAt.IsZero() {
		return 0
	}
	return j.StartedAt.Sub(j.SubmittedAt)
}

// Run returns the wall-clock of the (last) run; zero until the job has
// finished.
func (j *Job) Run() time.Duration {
	if j.StartedAt.IsZero() || j.FinishedAt.IsZero() {
		return 0
	}
	return j.FinishedAt.Sub(j.StartedAt)
}

// Sentinel errors of the subsystem. The server maps ErrQueueFull to 429
// with Retry-After, ErrDraining to 503, ErrNotFound to 404 and ErrTerminal
// to 409.
var (
	// ErrQueueFull rejects a submission that would exceed the queue's depth
	// or byte bound (admission control — the caller should back off).
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining rejects intake while the service shuts down.
	ErrDraining = errors.New("jobs: service draining")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrTerminal rejects an operation (cancel) on an already-finished job.
	ErrTerminal = errors.New("jobs: job already terminal")
	// ErrCanceled is the cancellation cause recorded when DELETE /jobs/{id}
	// stops a job.
	ErrCanceled = errors.New("jobs: canceled by request")
)

// QueueFullError is the concrete ErrQueueFull carrying the bound that was
// hit, so 429 responses can say which limit to back off from.
type QueueFullError struct {
	Depth    int   // queued jobs at rejection time
	MaxDepth int   // configured depth bound (0 = unbounded)
	Bytes    int64 // queued payload bytes at rejection time
	MaxBytes int64 // configured byte bound (0 = unbounded)
}

// Error implements error.
func (e *QueueFullError) Error() string {
	if e.MaxBytes > 0 && e.Bytes >= e.MaxBytes {
		return fmt.Sprintf("jobs: queue full (%d bytes queued, byte cap %d)", e.Bytes, e.MaxBytes)
	}
	return fmt.Sprintf("jobs: queue full (%d jobs queued, depth cap %d)", e.Depth, e.MaxDepth)
}

// Is makes errors.Is(err, ErrQueueFull) match.
func (e *QueueFullError) Is(target error) bool { return target == ErrQueueFull }

// transientError marks an error as retryable.
type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Transient() bool { return true }

// MarkTransient wraps err so IsTransient reports true: the scheduler will
// retry the job with backoff instead of failing it outright. A nil err
// returns nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything in its chain) is marked
// retryable — either wrapped by MarkTransient or implementing
// interface{ Transient() bool }.
func IsTransient(err error) bool {
	for err != nil {
		if t, ok := err.(interface{ Transient() bool }); ok && t.Transient() {
			return true
		}
		err = errors.Unwrap(err)
	}
	return false
}
