package jobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newTestService builds a Service over runner with test-friendly defaults
// (fast backoff, fsync off) and tears it down with the test. Overrides go
// through mutate.
func newTestService(t *testing.T, runner Runner, mutate func(*Config)) *Service {
	t.Helper()
	cfg := Config{
		Workers:     2,
		BackoffBase: time.Millisecond,
		BackoffCap:  4 * time.Millisecond,
		Seed:        1,
		Store:       StoreOptions{NoSync: true},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, _, err := NewService(cfg, runner)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, s *Service, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var last Job
	for time.Now().Before(deadline) {
		j, _, err := s.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		last = j
		if j.State == want {
			return j
		}
		if j.State.Terminal() {
			t.Fatalf("job %s reached %s (err %q), want %s", id, j.State, j.Error, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached %s (stuck at %s, attempts %d, err %q)",
		id, want, last.State, last.Attempts, last.Error)
	return Job{}
}

func TestServiceRunsJobToDone(t *testing.T) {
	s := newTestService(t, func(ctx context.Context, j Job) ([]byte, error) {
		return []byte(`{"echo":"` + j.Params + `"}`), nil
	}, nil)
	j, err := s.Submit("algo=celf", []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued || j.ID == "" {
		t.Fatalf("submitted job %+v", j)
	}
	done := waitState(t, s, j.ID, StateDone)
	if string(done.Result) != `{"echo":"algo=celf"}` {
		t.Errorf("result %q", done.Result)
	}
	if done.Attempts != 1 {
		t.Errorf("attempts %d, want 1", done.Attempts)
	}
	if done.FinishedAt.Before(done.StartedAt) || done.StartedAt.Before(done.SubmittedAt) {
		t.Errorf("timing order broken: %+v", done)
	}
	reg := s.Metrics()
	if got := reg.Counter("phocus_jobs_enqueued_total").Value(); got != 1 {
		t.Errorf("enqueued counter %d", got)
	}
	if got := reg.Counter("phocus_jobs_completed_total").Value(); got != 1 {
		t.Errorf("completed counter %d", got)
	}
}

// TestServiceRetriesTransient: MarkTransient failures retry with backoff
// until success; the attempt count and retry counter record the journey.
func TestServiceRetriesTransient(t *testing.T) {
	var calls atomic.Int64
	s := newTestService(t, func(ctx context.Context, j Job) ([]byte, error) {
		if calls.Add(1) < 3 {
			return nil, MarkTransient(errors.New("flaky backend"))
		}
		return []byte("ok"), nil
	}, nil)
	j, err := s.Submit("", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, j.ID, StateDone)
	if done.Attempts != 3 {
		t.Errorf("attempts %d, want 3", done.Attempts)
	}
	if got := s.Metrics().Counter("phocus_jobs_retried_total").Value(); got != 2 {
		t.Errorf("retried counter %d, want 2", got)
	}
}

// TestServiceTransientExhaustion: retries stop at MaxAttempts and the job
// fails with the last error preserved.
func TestServiceTransientExhaustion(t *testing.T) {
	var calls atomic.Int64
	s := newTestService(t, func(ctx context.Context, j Job) ([]byte, error) {
		calls.Add(1)
		return nil, MarkTransient(errors.New("still down"))
	}, func(c *Config) { c.MaxAttempts = 2 })
	j, _ := s.Submit("", []byte("x"))
	failed := waitState(t, s, j.ID, StateFailed)
	if failed.Attempts != 2 || calls.Load() != 2 {
		t.Errorf("attempts %d / calls %d, want 2/2", failed.Attempts, calls.Load())
	}
	if !strings.Contains(failed.Error, "still down") {
		t.Errorf("error %q lost the chain", failed.Error)
	}
	if got := s.Metrics().Counter("phocus_jobs_failed_total").Value(); got != 1 {
		t.Errorf("failed counter %d", got)
	}
}

// TestServicePermanentFailureNoRetry: an unmarked error fails immediately.
func TestServicePermanentFailureNoRetry(t *testing.T) {
	var calls atomic.Int64
	s := newTestService(t, func(ctx context.Context, j Job) ([]byte, error) {
		calls.Add(1)
		return nil, errors.New("bad instance")
	}, nil)
	j, _ := s.Submit("", []byte("x"))
	failed := waitState(t, s, j.ID, StateFailed)
	if failed.Attempts != 1 || calls.Load() != 1 {
		t.Errorf("permanent failure retried: attempts %d calls %d", failed.Attempts, calls.Load())
	}
}

// blockingRunner returns a runner that signals each start on started and
// blocks until its context is canceled (returning the context error).
func blockingRunner(started chan<- string) Runner {
	return func(ctx context.Context, j Job) ([]byte, error) {
		started <- j.ID
		<-ctx.Done()
		return nil, ctx.Err()
	}
}

// TestServiceCancelQueued: DELETE on a still-queued job cancels it without
// it ever running.
func TestServiceCancelQueued(t *testing.T) {
	started := make(chan string, 4)
	s := newTestService(t, blockingRunner(started), func(c *Config) { c.Workers = 1 })
	blocker, _ := s.Submit("", []byte("x"))
	<-started // the single worker is now occupied
	victim, err := s.Submit("", []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Cancel(victim.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled || got.Error != ErrCanceled.Error() {
		t.Fatalf("canceled job %+v", got)
	}
	// Cancel of a terminal job is a typed conflict.
	if _, err := s.Cancel(victim.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("second cancel: %v, want ErrTerminal", err)
	}
	if _, err := s.Cancel("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown: %v, want ErrNotFound", err)
	}
	// Unblock the worker; the canceled job must never start.
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, s, blocker.ID, StateCanceled)
	select {
	case id := <-started:
		t.Fatalf("job %s ran after cancellation", id)
	case <-time.After(50 * time.Millisecond):
	}
	if got := s.Metrics().Counter("phocus_jobs_canceled_total").Value(); got != 2 {
		t.Errorf("canceled counter %d, want 2", got)
	}
}

// TestServiceCancelRunning: DELETE on a running job propagates through the
// job context and lands in state canceled.
func TestServiceCancelRunning(t *testing.T) {
	started := make(chan string, 1)
	s := newTestService(t, blockingRunner(started), nil)
	j, _ := s.Submit("", []byte("x"))
	<-started
	if _, err := s.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	done := waitState(t, s, j.ID, StateCanceled)
	if done.Error != ErrCanceled.Error() {
		t.Errorf("cancel cause %q", done.Error)
	}
}

// TestServiceJobTimeout: the per-job deadline spans the whole execution
// and expires into state failed with the deadline error.
func TestServiceJobTimeout(t *testing.T) {
	started := make(chan string, 1)
	s := newTestService(t, blockingRunner(started), func(c *Config) {
		c.JobTimeout = 20 * time.Millisecond
	})
	j, _ := s.Submit("", []byte("x"))
	<-started
	failed := waitState(t, s, j.ID, StateFailed)
	if !strings.Contains(failed.Error, context.DeadlineExceeded.Error()) {
		t.Errorf("timeout error %q", failed.Error)
	}
}

// TestServiceQueuePosition: queued jobs report their 0-based position and
// running/terminal jobs report -1.
func TestServiceQueuePosition(t *testing.T) {
	started := make(chan string, 1)
	s := newTestService(t, blockingRunner(started), func(c *Config) { c.Workers = 1 })
	blocker, _ := s.Submit("", []byte("x"))
	<-started
	a, _ := s.Submit("", []byte("a"))
	b, _ := s.Submit("", []byte("b"))
	if _, pos, _ := s.Get(a.ID); pos != 0 {
		t.Errorf("position(a) = %d, want 0", pos)
	}
	if _, pos, _ := s.Get(b.ID); pos != 1 {
		t.Errorf("position(b) = %d, want 1", pos)
	}
	if _, pos, _ := s.Get(blocker.ID); pos != -1 {
		t.Errorf("position(running) = %d, want -1", pos)
	}
	s.Cancel(blocker.ID)
	s.Cancel(a.ID)
	s.Cancel(b.ID)
}

// TestServiceBurstAdmission is the acceptance scenario: 100 jobs against a
// 2-worker scheduler with queue depth 32 — every admitted job reaches a
// terminal state, the rest are rejected with ErrQueueFull, and nothing is
// lost or run twice.
func TestServiceBurstAdmission(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	s := newTestService(t, func(ctx context.Context, j Job) ([]byte, error) {
		<-gate
		runs.Add(1)
		return []byte("ok"), nil
	}, func(c *Config) {
		c.Workers = 2
		c.QueueDepth = 32
	})

	var admitted []string
	rejected := 0
	for i := 0; i < 100; i++ {
		j, err := s.Submit("", []byte(fmt.Sprintf(`{"n":%d}`, i)))
		switch {
		case err == nil:
			admitted = append(admitted, j.ID)
		case errors.Is(err, ErrQueueFull):
			rejected++
		default:
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if len(admitted)+rejected != 100 {
		t.Fatalf("admitted %d + rejected %d != 100", len(admitted), rejected)
	}
	if rejected == 0 {
		t.Fatal("burst never hit admission control")
	}
	// With 2 gated workers and depth 32 at most 34 jobs fit at once.
	if len(admitted) > 34 {
		t.Fatalf("admitted %d jobs past a depth-32 queue with 2 workers", len(admitted))
	}
	close(gate)
	for _, id := range admitted {
		waitState(t, s, id, StateDone)
	}
	if got := runs.Load(); got != int64(len(admitted)) {
		t.Fatalf("runner ran %d times for %d admitted jobs", got, len(admitted))
	}
	reg := s.Metrics()
	if got := reg.Counter("phocus_jobs_rejected_total").Value(); got != int64(rejected) {
		t.Errorf("rejected counter %d, want %d", got, rejected)
	}
	if got := reg.Counter("phocus_jobs_completed_total").Value(); got != int64(len(admitted)) {
		t.Errorf("completed counter %d, want %d", got, len(admitted))
	}
}

// TestServiceCrashRecovery is the durability acceptance scenario: SIGKILL
// (simulated by Terminate) mid-burst loses zero admitted jobs — queued jobs
// replay, the running job re-queues exactly once, and a restarted service
// runs everything to done.
func TestServiceCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	started := make(chan string, 8)
	s, _, err := NewService(Config{
		Dir: dir, Workers: 1, Seed: 1, Store: StoreOptions{NoSync: true},
	}, blockingRunner(started))
	if err != nil {
		t.Fatal(err)
	}

	var ids []string
	for i := 0; i < 5; i++ {
		j, err := s.Submit("", []byte(fmt.Sprintf(`{"n":%d}`, i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	<-started // one job is mid-run, four are queued
	s.Terminate()

	s2, replay, err := NewService(Config{
		Dir: dir, Workers: 2, Seed: 1, Store: StoreOptions{NoSync: true},
	}, func(ctx context.Context, j Job) ([]byte, error) {
		return []byte(`"recovered"`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Close(ctx)
	}()
	if replay.Jobs != 5 || replay.Queued != 5 || replay.Requeued != 1 {
		t.Fatalf("replay %+v, want 5 jobs / 5 queued / 1 requeued", replay)
	}
	for _, id := range ids {
		done := waitState(t, s2, id, StateDone)
		if string(done.Result) != `"recovered"` {
			t.Errorf("job %s result %q", id, done.Result)
		}
	}
	if got := s2.Metrics().Counter("phocus_jobs_requeued_total").Value(); got != 1 {
		t.Errorf("requeued counter %d, want 1", got)
	}
}

// TestServiceDrainCheckpoint: a job still running when the drain deadline
// expires is checkpointed back to queued — durably — and a restart resumes
// it instead of losing it.
func TestServiceDrainCheckpoint(t *testing.T) {
	dir := t.TempDir()
	started := make(chan string, 1)
	s, _, err := NewService(Config{
		Dir: dir, Workers: 1, Seed: 1, Store: StoreOptions{NoSync: true},
	}, blockingRunner(started))
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit("", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if !s.Ready() {
	} else {
		t.Error("service still ready after Close")
	}

	s2, replay, err := NewService(Config{
		Dir: dir, Workers: 1, Seed: 1, Store: StoreOptions{NoSync: true},
	}, func(ctx context.Context, j Job) ([]byte, error) {
		return []byte("done after restart"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		cctx, ccancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer ccancel()
		s2.Close(cctx)
	}()
	if replay.Queued != 1 || replay.Requeued != 0 {
		t.Fatalf("replay %+v, want 1 queued via graceful checkpoint (not crash requeue)", replay)
	}
	done := waitState(t, s2, j.ID, StateDone)
	if string(done.Result) != "done after restart" {
		t.Errorf("result %q", done.Result)
	}
}

// TestServiceSubmitWhileDraining: intake stops the moment drain begins.
func TestServiceSubmitWhileDraining(t *testing.T) {
	s := newTestService(t, func(ctx context.Context, j Job) ([]byte, error) {
		return nil, nil
	}, nil)
	s.BeginDrain()
	if s.Ready() {
		t.Error("ready while draining")
	}
	if _, err := s.Submit("", []byte("x")); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}
}

func TestServiceList(t *testing.T) {
	gate := make(chan struct{})
	s := newTestService(t, func(ctx context.Context, j Job) ([]byte, error) {
		<-gate
		return nil, nil
	}, func(c *Config) { c.Workers = 1 })
	defer close(gate)
	var ids []string
	for i := 0; i < 5; i++ {
		j, err := s.Submit("", []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	page, total := s.List(1, 2)
	if total != 5 || len(page) != 2 {
		t.Fatalf("list(1,2) = %d jobs of %d", len(page), total)
	}
	if page[0].ID != ids[1] || page[1].ID != ids[2] {
		t.Errorf("page order %s,%s want %s,%s", page[0].ID, page[1].ID, ids[1], ids[2])
	}
	if page[0].Body != nil {
		t.Error("listing leaked the payload")
	}
	if _, total := s.List(99, 10); total != 5 {
		t.Errorf("offset past the end: total %d", total)
	}
}

// TestBackoffDeterministic: the jittered schedule is reproducible for a
// seed and every delay stays inside [0.5, 1.5)× the capped exponential.
func TestBackoffDeterministic(t *testing.T) {
	mk := func(seed int64) []time.Duration {
		s, _, err := NewService(Config{
			Workers: 1, Seed: seed,
			BackoffBase: 100 * time.Millisecond, BackoffCap: 5 * time.Second,
		}, func(ctx context.Context, j Job) ([]byte, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close(context.Background())
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = s.backoff(i + 1)
		}
		return out
	}
	a, b := mk(7), mk(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	base, cap := 100*time.Millisecond, 5*time.Second
	for i, d := range a {
		ideal := base << i
		if ideal > cap {
			ideal = cap
		}
		lo, hi := ideal/2, ideal+ideal/2
		if d < lo || d >= hi {
			t.Errorf("attempt %d delay %v outside [%v, %v)", i+1, d, lo, hi)
		}
	}
	c := mk(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter")
	}
}
