package jobs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// submitN pushes n queued jobs through the store and returns their IDs.
func submitN(t *testing.T, s *Store, n int) []string {
	t.Helper()
	ids := make([]string, n)
	for i := range ids {
		ids[i] = newJobID()
		j := &Job{ID: ids[i], State: StateQueued, Body: []byte("{}"), BodyBytes: 2, SubmittedAt: time.Now()}
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, stats, err := Open(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Jobs != 0 {
		t.Fatalf("fresh store replayed %d jobs", stats.Jobs)
	}
	ids := submitN(t, s, 2)

	// First job runs to done with a result payload.
	if _, err := s.Update(&jobUpdate{ID: ids[0], State: StateRunning, Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(&jobUpdate{ID: ids[0], State: StateDone, Result: []byte(`{"score":1}`)}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, stats, err := Open(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if stats.Jobs != 2 || stats.Queued != 1 || stats.Requeued != 0 || stats.Corrupt != 0 {
		t.Fatalf("replay stats %+v, want 2 jobs / 1 queued / 0 requeued / 0 corrupt", stats)
	}
	done, ok := s2.Get(ids[0])
	if !ok || done.State != StateDone {
		t.Fatalf("done job after reopen: %+v", done)
	}
	if string(done.Result) != `{"score":1}` {
		t.Errorf("result %q lost across reopen", done.Result)
	}
	if done.Body != nil {
		t.Errorf("terminal job still carries its payload (%d bytes)", len(done.Body))
	}
	queued, ok := s2.Get(ids[1])
	if !ok || queued.State != StateQueued {
		t.Fatalf("queued job after reopen: %+v", queued)
	}
	if string(queued.Body) != "{}" {
		t.Errorf("queued job payload %q, want it preserved", queued.Body)
	}
}

// TestStoreCrashRequeueExactlyOnce covers the crash-recovery criterion: a
// job found running in the WAL is re-queued during replay, and — because
// Open compacts immediately — a second crash cannot requeue it again.
func TestStoreCrashRequeueExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ids := submitN(t, s, 1)
	if _, err := s.Update(&jobUpdate{ID: ids[0], State: StateRunning, Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	s.Abandon() // crash: no final snapshot, no checkpoint record

	s2, stats, err := Open(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requeued != 1 || stats.Queued != 1 {
		t.Fatalf("first recovery stats %+v, want 1 requeued", stats)
	}
	j, _ := s2.Get(ids[0])
	if j.State != StateQueued || !j.StartedAt.IsZero() {
		t.Fatalf("recovered job %+v, want queued with StartedAt cleared", j)
	}
	s2.Abandon() // crash again before the job runs

	_, stats, err = Open(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requeued != 0 || stats.Queued != 1 {
		t.Fatalf("second recovery stats %+v, want 0 requeued (exactly-once)", stats)
	}
}

// TestStoreCorruptWALTail: a torn final append and garbage lines are
// skipped and counted; every intact record still replays.
func TestStoreCorruptWALTail(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ids := submitN(t, s, 3)
	s.Abandon()

	// Simulate a crash mid-append: garbage, a structurally unknown record,
	// and a torn final line with no newline.
	wal := filepath.Join(dir, "wal.jsonl")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("not json at all\n")
	f.WriteString(`{"t":"mystery"}` + "\n")
	f.WriteString(`{"t":"submit","job":{"id":"torn`)
	f.Close()

	s2, stats, err := Open(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if stats.Corrupt != 3 {
		t.Errorf("corrupt count %d, want 3", stats.Corrupt)
	}
	if stats.Jobs != 3 || stats.Queued != 3 {
		t.Errorf("replay stats %+v, want the 3 intact jobs", stats)
	}
	for _, id := range ids {
		if j, ok := s2.Get(id); !ok || j.State != StateQueued {
			t.Errorf("job %s lost to corruption: %+v", id, j)
		}
	}
}

// TestStoreSnapshotCompaction: after SnapshotEvery appends the WAL is
// truncated into a snapshot and replay still sees every job.
func TestStoreSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, StoreOptions{NoSync: true, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	ids := submitN(t, s, 6) // crosses the compaction threshold
	fi, err := os.Stat(filepath.Join(dir, "wal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	// 6 appends with a compaction at 4: at most 2 records remain in the WAL.
	if fi.Size() == 0 {
		t.Log("wal fully compacted")
	}
	if _, err := os.Stat(filepath.Join(dir, "snapshot.json")); err != nil {
		t.Fatalf("no snapshot after crossing SnapshotEvery: %v", err)
	}
	s.Abandon()

	s2, stats, err := Open(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if stats.Jobs != 6 {
		t.Fatalf("replayed %d jobs across snapshot+wal, want 6", stats.Jobs)
	}
	list := s2.List()
	for i, j := range list {
		if j.ID != ids[i] {
			t.Fatalf("submission order lost: pos %d has %s, want %s", i, j.ID, ids[i])
		}
	}
}

// TestStorePruneTerminal: finished jobs beyond MaxTerminal are dropped,
// oldest first; live jobs are never pruned.
func TestStorePruneTerminal(t *testing.T) {
	s, _, err := Open("", StoreOptions{MaxTerminal: 2})
	if err != nil {
		t.Fatal(err)
	}
	ids := submitN(t, s, 5)
	for _, id := range ids[:4] {
		if _, err := s.Update(&jobUpdate{ID: id, State: StateDone}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 3 { // 2 retained terminal + 1 still queued
		t.Fatalf("len %d after prune, want 3", s.Len())
	}
	if _, ok := s.Get(ids[0]); ok {
		t.Error("oldest terminal job survived pruning")
	}
	if _, ok := s.Get(ids[4]); !ok {
		t.Error("queued job was pruned")
	}
}

func TestStoreMemoryOnly(t *testing.T) {
	s, stats, err := Open("", StoreOptions{})
	if err != nil || stats.Jobs != 0 {
		t.Fatalf("memory store: %v %+v", err, stats)
	}
	ids := submitN(t, s, 1)
	if _, err := s.Update(&jobUpdate{ID: ids[0], State: StateDone}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreUpdateUnknownID(t *testing.T) {
	s, _, _ := Open("", StoreOptions{})
	if _, err := s.Update(&jobUpdate{ID: "ghost", State: StateDone}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err %v, want ErrNotFound", err)
	}
}

// TestStoreTempFileSweep covers the crash window inside compact: the process
// dies after writing snapshot.json.tmp but before the rename installs it.
// The orphaned temp file must be swept (and counted) on the next Open, the
// installed snapshot must win, and no state may be lost.
func TestStoreTempFileSweep(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ids := submitN(t, s, 2)
	if _, err := s.Update(&jobUpdate{ID: ids[0], State: StateRunning, Attempts: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Update(&jobUpdate{ID: ids[0], State: StateDone, Result: []byte(`{"ok":true}`)}); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash mid-compact: the temp write landed, the rename did
	// not. The temp deliberately holds garbage — if replay ever read it
	// instead of sweeping it, loadSnapshot would fail loudly.
	tmp := s.snapPath() + ".tmp"
	if err := os.WriteFile(tmp, []byte("{torn half-written snaps"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A second orphan from an older crash, with a different base name.
	stray := filepath.Join(dir, "wal.jsonl.tmp")
	if err := os.WriteFile(stray, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Abandon()

	s2, stats, err := Open(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if stats.TempSwept != 2 {
		t.Fatalf("replay stats %+v, want 2 temp files swept", stats)
	}
	if stats.Jobs != 2 || stats.Queued != 1 {
		t.Fatalf("replay stats %+v, want both jobs recovered with 1 queued", stats)
	}
	for _, orphan := range []string{tmp, stray} {
		if _, err := os.Stat(orphan); !os.IsNotExist(err) {
			t.Errorf("orphan %s still present after replay", orphan)
		}
	}
	j, ok := s2.Get(ids[0])
	if !ok || j.State != StateDone || string(j.Result) != `{"ok":true}` {
		t.Fatalf("done job after sweep: %+v", j)
	}

	// A clean reopen sweeps nothing: compact's own temp never outlives the
	// rename on the non-crash path.
	s2.Close()
	_, stats, err = Open(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TempSwept != 0 {
		t.Fatalf("clean reopen swept %d temp files, want 0", stats.TempSwept)
	}
}
