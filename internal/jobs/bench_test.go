package jobs

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"
)

// benchThroughput pushes b.N jobs through a scheduler with a trivial
// runner and reports jobs/sec plus the p50/p95 queue wait — the numbers CI
// publishes as BENCH_jobs.json. The runner is free, so the measurement
// isolates the jobs machinery itself (queue, WAL, scheduler handoff).
func benchThroughput(b *testing.B, dir string) {
	s, _, err := NewService(Config{
		Dir:     dir,
		Workers: 4,
		Seed:    1,
		Store:   StoreOptions{NoSync: true, MaxTerminal: -1},
	}, func(ctx context.Context, j Job) ([]byte, error) {
		return []byte("{}"), nil
	})
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Close(ctx)
	}()
	payload := []byte(`{"bench":true}`)

	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(fmt.Sprintf("n=%d", i), payload); err != nil {
			b.Fatal(err)
		}
	}
	done := s.Metrics().Counter("phocus_jobs_completed_total")
	for done.Value() < int64(b.N) {
		time.Sleep(100 * time.Microsecond)
	}
	elapsed := time.Since(start)
	b.StopTimer()

	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "jobs/sec")
	jobs, _ := s.List(0, b.N)
	waits := make([]float64, 0, len(jobs))
	for i := range jobs {
		waits = append(waits, jobs[i].Wait().Seconds()*1000)
	}
	sort.Float64s(waits)
	if len(waits) > 0 {
		b.ReportMetric(waits[len(waits)/2], "wait-p50-ms")
		b.ReportMetric(waits[len(waits)*95/100], "wait-p95-ms")
	}
}

// BenchmarkJobsThroughput measures the memory-only scheduler.
func BenchmarkJobsThroughput(b *testing.B) {
	benchThroughput(b, "")
}

// BenchmarkJobsThroughputWAL measures the durable path: every submit and
// transition appends to the write-ahead log (fsync off, as a CI disk's
// sync latency would swamp the comparison).
func BenchmarkJobsThroughputWAL(b *testing.B) {
	benchThroughput(b, b.TempDir())
}
