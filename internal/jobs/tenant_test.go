package jobs

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"phocus/internal/fleet"
)

// TestStoreReplayAssignsDefaultTenant replays a hand-written pre-tenancy
// (v1) WAL — records with no tenant field at all — and checks every
// recovered job lands in the default tenant. This is the upgrade path: a
// shard restarted onto the tenancy-aware binary must keep serving its old
// jobs.
func TestStoreReplayAssignsDefaultTenant(t *testing.T) {
	dir := t.TempDir()
	v1 := `{"t":"submit","job":{"id":"aaaaaaaaaaaaaaaa","seq":1,"params":"algo=greedy","body":"e30=","body_bytes":2,"state":"queued","submitted_at":"2026-01-01T00:00:00Z"}}
{"t":"submit","job":{"id":"bbbbbbbbbbbbbbbb","seq":2,"params":"","body":"e30=","body_bytes":2,"state":"queued","submitted_at":"2026-01-01T00:00:01Z"}}
{"t":"update","up":{"id":"aaaaaaaaaaaaaaaa","state":"running","attempts":1,"at":"2026-01-01T00:00:02Z"}}
{"t":"update","up":{"id":"aaaaaaaaaaaaaaaa","state":"done","result":"e30=","at":"2026-01-01T00:00:03Z"}}
`
	if err := os.WriteFile(filepath.Join(dir, "wal.jsonl"), []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	s, stats, err := Open(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if stats.Jobs != 2 || stats.Corrupt != 0 {
		t.Fatalf("replay stats %+v, want 2 clean jobs", stats)
	}
	for _, id := range []string{"aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb"} {
		j, ok := s.Get(id)
		if !ok {
			t.Fatalf("job %s lost in replay", id)
		}
		if j.Tenant != fleet.DefaultTenant {
			t.Errorf("job %s: tenant %q, want %q", id, j.Tenant, fleet.DefaultTenant)
		}
	}
	// The adopted tenant is durable: the post-replay compact snapshots it,
	// so the next boot replays tenant-tagged records.
	s.Close()
	s2, _, err := Open(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if j, _ := s2.Get("aaaaaaaaaaaaaaaa"); j.Tenant != fleet.DefaultTenant {
		t.Errorf("second replay: tenant %q", j.Tenant)
	}
}

func TestSubmitTenantThreadsThrough(t *testing.T) {
	runner := func(ctx context.Context, job Job) ([]byte, error) { return []byte("{}"), nil }
	s, _, err := NewService(Config{Workers: 1, Store: StoreOptions{NoSync: true}}, runner)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	ja, err := s.SubmitTenant("alice", "algo=greedy", []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if ja.Tenant != "alice" {
		t.Fatalf("submitted tenant %q", ja.Tenant)
	}
	jb, err := s.Submit("", []byte("{}"))
	if err != nil {
		t.Fatal(err)
	}
	if jb.Tenant != fleet.DefaultTenant {
		t.Fatalf("legacy Submit tenant %q, want default", jb.Tenant)
	}
	jc, err := s.SubmitTenantAt("carol", "", []byte("{}"), time.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if jc.Tenant != "carol" {
		t.Fatalf("deferred tenant %q", jc.Tenant)
	}

	aliceJobs, aliceTotal := s.ListTenant("alice", 0, 0)
	if aliceTotal != 1 || len(aliceJobs) != 1 || aliceJobs[0].ID != ja.ID {
		t.Fatalf("ListTenant(alice) = %d jobs, total %d", len(aliceJobs), aliceTotal)
	}
	defJobs, defTotal := s.ListTenant("", 0, 0)
	if defTotal != 1 || defJobs[0].ID != jb.ID {
		t.Fatalf("ListTenant(default) total %d", defTotal)
	}
	_, allTotal := s.List(0, 0)
	if allTotal != 3 {
		t.Fatalf("List total %d, want 3 across tenants", allTotal)
	}
	if _, total := s.ListTenant("nobody", 0, 0); total != 0 {
		t.Fatalf("unknown tenant total %d", total)
	}
}
