package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(0, 0)
	for i := 0; i < 3; i++ {
		if err := q.Push(fmt.Sprintf("j%d", i), 10); err != nil {
			t.Fatal(err)
		}
	}
	if q.Depth() != 3 || q.Bytes() != 30 {
		t.Fatalf("depth %d bytes %d, want 3/30", q.Depth(), q.Bytes())
	}
	for i := 0; i < 3; i++ {
		id, err := q.Pop(context.Background())
		if err != nil || id != fmt.Sprintf("j%d", i) {
			t.Fatalf("pop %d = %q, %v", i, id, err)
		}
	}
	if q.Depth() != 0 || q.Bytes() != 0 {
		t.Fatalf("drained queue depth %d bytes %d", q.Depth(), q.Bytes())
	}
}

func TestQueueDepthCap(t *testing.T) {
	q := NewQueue(2, 0)
	q.Push("a", 1)
	q.Push("b", 1)
	err := q.Push("c", 1)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-depth push err %v, want ErrQueueFull", err)
	}
	var full *QueueFullError
	if !errors.As(err, &full) || full.Depth != 2 || full.MaxDepth != 2 {
		t.Fatalf("QueueFullError %+v, want depth 2/2", full)
	}
}

func TestQueueByteCap(t *testing.T) {
	q := NewQueue(0, 100)
	q.Push("a", 60)
	err := q.Push("b", 50)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-bytes push err %v, want ErrQueueFull", err)
	}
	var full *QueueFullError
	if !errors.As(err, &full) || full.MaxBytes != 100 {
		t.Fatalf("QueueFullError %+v, want byte cap 100", full)
	}
	// A payload that fits is still admitted after the rejection.
	if err := q.Push("c", 40); err != nil {
		t.Fatalf("fitting push rejected: %v", err)
	}
}

// TestQueueRequeueBypassesCaps: a recovered or checkpointed job re-enters
// even when the queue is at its bound.
func TestQueueRequeueBypassesCaps(t *testing.T) {
	q := NewQueue(1, 10)
	q.Push("a", 10)
	if err := q.Requeue("recovered", 1000); err != nil {
		t.Fatalf("requeue rejected by caps: %v", err)
	}
	if q.Depth() != 2 {
		t.Fatalf("depth %d, want 2", q.Depth())
	}
}

func TestQueueRemoveAndPosition(t *testing.T) {
	q := NewQueue(0, 0)
	q.Push("a", 1)
	q.Push("b", 2)
	q.Push("c", 3)
	if pos := q.Position("c"); pos != 2 {
		t.Fatalf("position(c) = %d, want 2", pos)
	}
	if !q.Remove("b") {
		t.Fatal("remove(b) = false")
	}
	if q.Remove("b") {
		t.Fatal("second remove(b) = true")
	}
	if pos := q.Position("c"); pos != 1 {
		t.Fatalf("position(c) after remove = %d, want 1", pos)
	}
	if q.Bytes() != 4 {
		t.Fatalf("bytes %d after remove, want 4", q.Bytes())
	}
	if pos := q.Position("ghost"); pos != -1 {
		t.Fatalf("position(ghost) = %d, want -1", pos)
	}
}

func TestQueuePopBlocksUntilPush(t *testing.T) {
	q := NewQueue(0, 0)
	got := make(chan string, 1)
	go func() {
		id, _ := q.Pop(context.Background())
		got <- id
	}()
	time.Sleep(10 * time.Millisecond) // let the popper block
	q.Push("late", 1)
	select {
	case id := <-got:
		if id != "late" {
			t.Fatalf("pop woke with %q", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop never woke after push")
	}
}

func TestQueuePopContextCancel(t *testing.T) {
	q := NewQueue(0, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := q.Pop(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("pop on canceled ctx: %v", err)
	}
}

// TestQueueCloseStopsHandout: a closed queue returns ErrQueueClosed from
// both Push and Pop — even while items remain (shutdown checkpoints them
// instead of running them) — and Drain returns exactly those items.
func TestQueueCloseStopsHandout(t *testing.T) {
	q := NewQueue(0, 0)
	q.Push("a", 1)
	q.Push("b", 1)

	blocked := make(chan error, 1)
	empty := NewQueue(0, 0)
	go func() {
		_, err := empty.Pop(context.Background())
		blocked <- err
	}()
	time.Sleep(10 * time.Millisecond)
	empty.Close()
	select {
	case err := <-blocked:
		if !errors.Is(err, ErrQueueClosed) {
			t.Fatalf("blocked pop woke with %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not wake the blocked popper")
	}

	q.Close()
	q.Close() // idempotent
	if _, err := q.Pop(context.Background()); !errors.Is(err, ErrQueueClosed) {
		t.Fatal("pop after close handed out work")
	}
	if err := q.Push("c", 1); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("push after close: %v", err)
	}
	if err := q.Requeue("c", 1); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("requeue after close: %v", err)
	}
	ids := q.Drain()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Fatalf("drain = %v, want [a b]", ids)
	}
	if q.Depth() != 0 {
		t.Fatalf("depth %d after drain", q.Depth())
	}
}

// TestQueueConcurrent hammers push/pop from many goroutines (run with
// -race); every pushed ID must be popped exactly once.
func TestQueueConcurrent(t *testing.T) {
	q := NewQueue(0, 0)
	const pushers, perPusher = 8, 50
	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPusher; i++ {
				if err := q.Push(fmt.Sprintf("p%d-%d", p, i), 1); err != nil {
					t.Error(err)
				}
			}
		}(p)
	}
	popped := make(chan string, pushers*perPusher)
	var poppers sync.WaitGroup
	for w := 0; w < 4; w++ {
		poppers.Add(1)
		go func() {
			defer poppers.Done()
			for {
				id, err := q.Pop(context.Background())
				if err != nil {
					return
				}
				popped <- id
			}
		}()
	}
	wg.Wait()
	// Wait for the poppers to drain, then close to release them.
	deadline := time.Now().Add(5 * time.Second)
	for q.Depth() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	q.Close()
	poppers.Wait()
	close(popped)
	seen := map[string]bool{}
	for id := range popped {
		if seen[id] {
			t.Fatalf("id %s popped twice", id)
		}
		seen[id] = true
	}
	if len(seen) != pushers*perPusher {
		t.Fatalf("popped %d unique ids, want %d", len(seen), pushers*perPusher)
	}
}
