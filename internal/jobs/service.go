package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	mrand "math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"phocus/internal/fleet"
	"phocus/internal/obs"
	"phocus/internal/pool"
)

// Runner executes one job attempt: it interprets the job's Params and Body
// and returns the result payload. A Runner must honor ctx cancellation
// promptly (phocus-server's runner routes it into par.ContextSolver, so a
// cancel stops the solve mid-run). Errors wrapped with MarkTransient are
// retried with backoff; all others fail the job.
type Runner func(ctx context.Context, job Job) ([]byte, error)

// Config tunes a Service.
type Config struct {
	// Dir is the durable data directory ("" = memory-only, no crash
	// recovery).
	Dir string
	// Workers is the scheduler's worker-pool size (≤ 0 = one per CPU).
	Workers int
	// QueueDepth / QueueBytes bound the queue (≤ 0 = unbounded).
	QueueDepth int
	QueueBytes int64
	// MaxAttempts bounds Runner invocations per job, retries included
	// (0 = default 3).
	MaxAttempts int
	// BackoffBase / BackoffCap shape the capped exponential retry backoff
	// (defaults 100ms / 5s); each delay gets ±50% deterministic jitter from
	// Seed.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// JobTimeout, when positive, deadlines each job's whole execution
	// (all attempts); an expired job fails with the deadline error.
	JobTimeout time.Duration
	// Seed drives the backoff jitter.
	Seed int64
	// Metrics receives the phocus_jobs_* series (nil = a private registry).
	Metrics *obs.Registry
	// SLO, when set, receives the job-wait sliding-window series
	// (obs.SLOJobWait) so wait-time objectives see async pressure live.
	SLO *obs.SLOTracker
	// Trace, when set, receives per-job lifecycle span timelines (enqueue,
	// queue-wait, run attempts, retries, drain checkpoints) keyed by job
	// ID, alongside whatever spans the Runner itself records.
	Trace *obs.TraceStore
	// Logger receives job lifecycle events (nil = discard).
	Logger *slog.Logger
	// Store tunes WAL durability.
	Store StoreOptions
}

// Service is the async job subsystem: a durable Store, a bounded Queue and
// a worker-pool scheduler, glued together behind the submit/status/cancel
// API phocus-server mounts under /jobs. All methods are safe for concurrent
// use.
type Service struct {
	cfg    Config
	reg    *obs.Registry
	logger *slog.Logger
	runner Runner

	// mu guards the store (every read and mutation), the cancels and timers
	// maps and the killed flag. The queue and sem have their own
	// synchronization.
	mu      sync.Mutex
	store   *Store
	cancels map[string]context.CancelCauseFunc
	// timers holds the deferral timer of every SubmitAt job still waiting
	// out its NotBefore deadline; firing moves the job into the runnable
	// queue. An entry's absence after SubmitAt means the job was canceled
	// or the service stopped (the job then stays queued in the WAL and the
	// next boot re-arms it).
	timers map[string]*time.Timer
	killed bool

	queue *Queue
	// sem is the shared solve-capacity semaphore: scheduler workers hold a
	// slot per running job and the server's synchronous /solve path
	// acquires from the same Sem (shared admission).
	sem *pool.Sem

	rngMu sync.Mutex
	rng   *mrand.Rand

	popCtx    context.Context
	popCancel context.CancelFunc
	wg        sync.WaitGroup

	running  atomic.Int64
	ready    atomic.Bool
	draining atomic.Bool
}

// errDraining is the cancel cause of a shutdown checkpoint; errKilled the
// cause of Terminate (crash simulation).
var errKilled = errors.New("jobs: terminated")

// NewService opens (and replays) the store under cfg.Dir, re-queues
// recovered jobs, and starts the scheduler. It returns the service together
// with the replay accounting.
func NewService(cfg Config, runner Runner) (*Service, ReplayStats, error) {
	if runner == nil {
		return nil, ReplayStats{}, errors.New("jobs: nil Runner")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 100 * time.Millisecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 5 * time.Second
	}
	store, replay, err := Open(cfg.Dir, cfg.Store)
	if err != nil {
		return nil, replay, err
	}
	s := &Service{
		cfg:     cfg,
		reg:     cfg.Metrics,
		logger:  cfg.Logger,
		runner:  runner,
		store:   store,
		cancels: make(map[string]context.CancelCauseFunc),
		timers:  make(map[string]*time.Timer),
		queue:   NewQueue(cfg.QueueDepth, cfg.QueueBytes),
		sem:     pool.NewSem(cfg.Workers),
		rng:     mrand.New(mrand.NewSource(cfg.Seed)),
	}
	s.popCtx, s.popCancel = context.WithCancel(context.Background())

	obs.RecordJobWALCorrupt(s.reg, int64(replay.Corrupt))
	obs.RecordJobRequeued(s.reg, int64(replay.Requeued))
	obs.RecordJobTempSwept(s.reg, int64(replay.TempSwept))
	// Recovered jobs were admitted before the crash; Requeue bypasses the
	// caps so a tighter restart configuration cannot drop them. A deferred
	// job whose NotBefore is still ahead re-arms its timer instead; one
	// that came due while the process was down requeues immediately.
	now := time.Now()
	s.mu.Lock() // a re-armed timer may fire into fireTimer immediately
	for _, j := range store.List() {
		if j.State != StateQueued {
			continue
		}
		if j.Deferred(now) {
			s.armTimer(j.ID, j.NotBefore.Sub(now), j.BodyBytes)
			continue
		}
		if err := s.queue.Requeue(j.ID, j.BodyBytes); err != nil {
			s.mu.Unlock()
			return nil, replay, err
		}
	}
	deferred := len(s.timers)
	s.mu.Unlock()
	obs.SetJobQueueGauges(s.reg, s.queue.Depth(), s.queue.Bytes())
	obs.SetJobsDeferred(s.reg, deferred)

	workers := s.sem.Cap()
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	s.ready.Store(true)
	if replay.Jobs > 0 || replay.Corrupt > 0 {
		s.logger.Info("jobs replayed", "jobs", replay.Jobs, "queued", replay.Queued,
			"requeued", replay.Requeued, "corrupt", replay.Corrupt)
	}
	return s, replay, nil
}

// newJobID returns a fresh 16-hex-character job ID.
func newJobID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "rand-err"
	}
	return hex.EncodeToString(buf[:])
}

// Sem exposes the shared solve-capacity semaphore so the server's
// synchronous path shares admission with the scheduler.
func (s *Service) Sem() *pool.Sem { return s.sem }

// QueueDepthCap returns the configured queue depth bound (0 = unbounded);
// the server uses it to bound the synchronous wait line symmetrically.
func (s *Service) QueueDepthCap() int { return s.cfg.QueueDepth }

// Ready reports whether the service is accepting work: WAL replay has
// finished and shutdown has not begun. /readyz keys off it.
func (s *Service) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// Submit admits a new job for the default tenant; see SubmitTenant.
func (s *Service) Submit(params string, body []byte) (Job, error) {
	return s.SubmitTenant(fleet.DefaultTenant, params, body)
}

// SubmitTenant admits a new job owned by the given tenant: admission
// control first (ErrQueueFull →  429), then the WAL submit record, then the
// queue. The returned Job is the accepted snapshot (state queued).
func (s *Service) SubmitTenant(tenant, params string, body []byte) (Job, error) {
	if !s.Ready() {
		return Job{}, ErrDraining
	}
	if tenant == "" {
		tenant = fleet.DefaultTenant
	}
	job := &Job{
		ID:          newJobID(),
		Tenant:      tenant,
		Params:      params,
		Body:        body,
		BodyBytes:   int64(len(body)),
		State:       StateQueued,
		SubmittedAt: time.Now(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed {
		return Job{}, ErrDraining
	}
	// Push before the WAL write reserves the slot atomically under mu; a
	// worker popping the ID blocks on mu until the store insert lands.
	if err := s.queue.Push(job.ID, job.BodyBytes); err != nil {
		obs.RecordJobRejected(s.reg)
		if errors.Is(err, ErrQueueClosed) {
			return Job{}, ErrDraining
		}
		return Job{}, err
	}
	if err := s.store.Submit(job); err != nil {
		s.queue.Remove(job.ID)
		return Job{}, err
	}
	obs.RecordJobEnqueued(s.reg, s.queue.Depth(), s.queue.Bytes())
	s.cfg.Trace.Add(job.ID, obs.SpanRecord{
		Name: "enqueue", Start: job.SubmittedAt,
		Attrs: map[string]string{
			"depth": strconv.Itoa(s.queue.Depth()),
			"bytes": strconv.FormatInt(job.BodyBytes, 10),
		},
	})
	s.logger.Info("job enqueued", "job_id", job.ID, "bytes", job.BodyBytes, "depth", s.queue.Depth())
	return *job, nil
}

// SubmitAt admits a deferred job for the default tenant; see
// SubmitTenantAt.
func (s *Service) SubmitAt(params string, body []byte, at time.Time) (Job, error) {
	return s.SubmitTenantAt(fleet.DefaultTenant, params, body, at)
}

// SubmitTenantAt admits a tenant-owned job that must not run before the
// given time: it lands durably in the WAL (state queued, NotBefore set) but
// enters the runnable queue only when the deadline passes. A zero or past
// deadline degrades to a plain SubmitTenant. Deferred jobs bypass the queue
// caps when they fire — they were admitted at submit time, like a requeue —
// and survive restarts: replay re-arms pending deadlines and requeues
// past-due ones.
func (s *Service) SubmitTenantAt(tenant, params string, body []byte, at time.Time) (Job, error) {
	if at.IsZero() || !at.After(time.Now()) {
		return s.SubmitTenant(tenant, params, body)
	}
	if !s.Ready() {
		return Job{}, ErrDraining
	}
	if tenant == "" {
		tenant = fleet.DefaultTenant
	}
	job := &Job{
		ID:          newJobID(),
		Tenant:      tenant,
		Params:      params,
		Body:        body,
		BodyBytes:   int64(len(body)),
		State:       StateQueued,
		SubmittedAt: time.Now(),
		NotBefore:   at,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed {
		return Job{}, ErrDraining
	}
	if err := s.store.Submit(job); err != nil {
		return Job{}, err
	}
	s.armTimer(job.ID, time.Until(at), job.BodyBytes)
	obs.RecordJobDeferred(s.reg, len(s.timers))
	s.cfg.Trace.Add(job.ID, obs.SpanRecord{
		Name: "defer", Start: job.SubmittedAt,
		Attrs: map[string]string{"not_before": at.Format(time.RFC3339)},
	})
	s.logger.Info("job deferred", "job_id", job.ID, "not_before", at, "bytes", job.BodyBytes)
	return *job, nil
}

// armTimer schedules the deferral timer that moves a job into the runnable
// queue. Callers hold s.mu.
func (s *Service) armTimer(id string, d time.Duration, bytes int64) {
	if d < 0 {
		d = 0
	}
	s.timers[id] = time.AfterFunc(d, func() { s.fireTimer(id, bytes) })
}

// fireTimer is a deferral timer's payload: requeue the job unless it was
// canceled or the service stopped in the meantime (it then stays queued in
// the WAL for the next boot to pick up).
func (s *Service) fireTimer(id string, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.timers[id]; !ok {
		return // canceled or stopped while the timer was in flight
	}
	delete(s.timers, id)
	obs.SetJobsDeferred(s.reg, len(s.timers))
	if s.killed {
		return
	}
	j, ok := s.store.Get(id)
	if !ok || j.State != StateQueued {
		return
	}
	if err := s.queue.Requeue(id, bytes); err != nil {
		// Queue closed by shutdown: the job stays queued durably.
		return
	}
	obs.RecordJobEnqueued(s.reg, s.queue.Depth(), s.queue.Bytes())
	s.logger.Info("deferred job released", "job_id", id, "depth", s.queue.Depth())
}

// stopTimersLocked stops and forgets every pending deferral timer (shutdown
// and crash simulation); the jobs stay queued in the WAL. Callers hold s.mu.
func (s *Service) stopTimersLocked() {
	for id, t := range s.timers {
		t.Stop()
		delete(s.timers, id)
	}
}

// Get returns the job and, when it is still queued, its 0-based queue
// position (-1 otherwise).
func (s *Service) Get(id string) (Job, int, error) {
	s.mu.Lock()
	j, ok := s.store.Get(id)
	s.mu.Unlock()
	if !ok {
		return Job{}, -1, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	pos := -1
	if j.State == StateQueued {
		pos = s.queue.Position(id)
	}
	return j, pos, nil
}

// List returns up to limit jobs starting at offset (submission order),
// along with the total count. limit ≤ 0 means a default page of 100.
func (s *Service) List(offset, limit int) ([]Job, int) {
	if limit <= 0 {
		limit = 100
	}
	s.mu.Lock()
	all := s.store.List()
	s.mu.Unlock()
	total := len(all)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	end := offset + limit
	if end > total {
		end = total
	}
	return all[offset:end], total
}

// ListTenant returns up to limit of the tenant's jobs starting at offset
// (submission order within the tenant), along with the tenant's total. An
// empty tenant matches DefaultTenant (pre-tenancy records were assigned it
// at replay). limit ≤ 0 means a default page of 100.
func (s *Service) ListTenant(tenant string, offset, limit int) ([]Job, int) {
	if tenant == "" {
		tenant = fleet.DefaultTenant
	}
	if limit <= 0 {
		limit = 100
	}
	s.mu.Lock()
	all := s.store.List()
	s.mu.Unlock()
	mine := all[:0:0]
	for _, j := range all {
		if j.Tenant == tenant {
			mine = append(mine, j)
		}
	}
	total := len(mine)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	end := offset + limit
	if end > total {
		end = total
	}
	return mine[offset:end], total
}

// Counts returns the number of retained jobs per lifecycle state.
func (s *Service) Counts() map[State]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	counts := make(map[State]int, 5)
	for _, j := range s.store.List() {
		counts[j.State]++
	}
	return counts
}

// Cancel stops a job: a queued job is removed from the queue and marked
// canceled immediately; a running job has its context canceled (with cause
// ErrCanceled) and reaches state canceled when the solver unwinds. Terminal
// jobs return ErrTerminal.
func (s *Service) Cancel(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.store.Get(id)
	if !ok {
		return Job{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	switch {
	case j.State.Terminal():
		return j, ErrTerminal
	case j.State == StateQueued:
		if t, ok := s.timers[id]; ok {
			t.Stop()
			delete(s.timers, id)
			obs.SetJobsDeferred(s.reg, len(s.timers))
		}
		s.queue.Remove(id)
		obs.SetJobQueueGauges(s.reg, s.queue.Depth(), s.queue.Bytes())
		up, err := s.update(&jobUpdate{ID: id, State: StateCanceled, Error: ErrCanceled.Error()})
		if err != nil {
			return Job{}, err
		}
		obs.RecordJobDone(s.reg, string(StateCanceled), 0)
		s.logger.Info("job canceled", "job_id", id, "phase", "queued")
		return up, nil
	default: // running: the worker owns the terminal transition
		if cancel, ok := s.cancels[id]; ok {
			cancel(ErrCanceled)
		}
		s.logger.Info("job cancel requested", "job_id", id, "phase", "running")
		return j, nil
	}
}

// update applies a store update unless the service was Terminated (crash
// simulation freezes all writes, like a dead process). Callers hold s.mu.
func (s *Service) update(up *jobUpdate) (Job, error) {
	if s.killed {
		return Job{}, errKilled
	}
	return s.store.Update(up)
}

// worker drains the queue until it closes.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		id, err := s.queue.Pop(s.popCtx)
		if err != nil {
			return
		}
		if err := s.sem.Acquire(s.popCtx); err != nil {
			// Shutdown raced the pop; the job stays queued in the store and
			// the next boot re-queues it.
			return
		}
		s.runJob(id)
		s.sem.Release()
	}
}

// runJob executes one job through its full attempt loop.
func (s *Service) runJob(id string) {
	s.mu.Lock()
	j, ok := s.store.Get(id)
	if !ok || j.State != StateQueued {
		// Canceled (or lost to a failed submit) between pop and start.
		s.mu.Unlock()
		return
	}
	attempts := j.Attempts + 1
	j, err := s.update(&jobUpdate{ID: id, State: StateRunning, Attempts: attempts})
	if err != nil {
		s.mu.Unlock()
		s.logger.Error("job start", "job_id", id, "err", err)
		return
	}
	jctx, cancel := context.WithCancelCause(context.Background())
	s.cancels[id] = cancel
	obs.SetJobQueueGauges(s.reg, s.queue.Depth(), s.queue.Bytes())
	s.mu.Unlock()

	obs.RecordJobStart(s.reg, j.Wait())
	if s.cfg.SLO != nil {
		s.cfg.SLO.Latency(obs.SLOJobWait).Observe(j.Wait().Seconds())
	}
	// The queue-wait stage ended the moment the job started; record it as a
	// synthetic span so the job's trace timeline covers submit → start.
	s.cfg.Trace.Add(id, obs.SpanRecord{
		Name: "queue-wait", Start: j.SubmittedAt,
		DurationMS: float64(j.Wait().Microseconds()) / 1000,
	})
	obs.SetJobsRunning(s.reg, s.running.Add(1))
	s.logger.Info("job running", "job_id", id, "attempt", attempts, "wait", j.Wait().Round(time.Millisecond))

	// Job attempts run under the same obs plumbing as a synchronous request:
	// the job ID doubles as the request ID, spans the Runner starts land in
	// the shared trace store, and every span log line carries the job ID.
	jctx = obs.WithRequestID(jctx, id)
	jctx = obs.WithLogger(jctx, s.logger.With("job_id", id))
	if s.cfg.Trace != nil {
		jctx = obs.WithTraceStore(jctx, s.cfg.Trace)
	}

	runCtx := jctx
	var timeoutCancel context.CancelFunc
	if s.cfg.JobTimeout > 0 {
		runCtx, timeoutCancel = context.WithTimeout(jctx, s.cfg.JobTimeout)
	}

	var result []byte
	var runErr error
	for {
		attemptCtx, attemptSpan := obs.StartSpan(runCtx, "run")
		result, runErr = s.runner(attemptCtx, j)
		if runErr != nil {
			attemptSpan.End("attempt", attempts, "err", runErr.Error())
		} else {
			attemptSpan.End("attempt", attempts)
		}
		if runErr == nil || runCtx.Err() != nil {
			break
		}
		if !IsTransient(runErr) || attempts >= s.cfg.MaxAttempts {
			break
		}
		delay := s.backoff(attempts)
		obs.RecordJobRetried(s.reg)
		s.cfg.Trace.Add(id, obs.SpanRecord{
			Name: "retry", Start: time.Now(),
			DurationMS: float64(delay.Microseconds()) / 1000,
			Attrs: map[string]string{
				"attempt": strconv.Itoa(attempts),
				"err":     runErr.Error(),
			},
		})
		s.logger.Warn("job retrying", "job_id", id, "attempt", attempts, "delay", delay, "err", runErr)
		select {
		case <-runCtx.Done():
		case <-time.After(delay):
		}
		if runCtx.Err() != nil {
			break
		}
		attempts++
		s.mu.Lock()
		if _, err := s.update(&jobUpdate{ID: id, State: StateRunning, Attempts: attempts}); err != nil {
			s.mu.Unlock()
			break
		}
		s.mu.Unlock()
	}
	if timeoutCancel != nil {
		timeoutCancel()
	}

	s.mu.Lock()
	delete(s.cancels, id)
	up := &jobUpdate{ID: id, Attempts: attempts}
	switch {
	case runErr == nil:
		up.State = StateDone
		up.Result = result
	case errors.Is(context.Cause(jctx), ErrCanceled):
		up.State = StateCanceled
		up.Error = ErrCanceled.Error()
	case errors.Is(context.Cause(jctx), ErrDraining):
		// Shutdown checkpoint: back to queued, durably, so the next boot
		// resumes the job instead of losing it.
		up.State = StateQueued
	default:
		// Deadline expiry and exhausted retries land here; the error chain
		// is preserved verbatim for GET /jobs/{id}.
		up.State = StateFailed
		up.Error = runErr.Error()
	}
	final, err := s.update(up)
	s.mu.Unlock()
	cancel(nil)
	obs.SetJobsRunning(s.reg, s.running.Add(-1))
	if err != nil {
		if !errors.Is(err, errKilled) {
			s.logger.Error("job finalize", "job_id", id, "err", err)
		}
		return
	}
	switch up.State {
	case StateQueued:
		obs.RecordJobRequeued(s.reg, 1)
		s.cfg.Trace.Add(id, obs.SpanRecord{
			Name: "drain-checkpoint", Start: time.Now(),
			Attrs: map[string]string{"attempt": strconv.Itoa(attempts)},
		})
		s.logger.Info("job checkpointed", "job_id", id, "attempt", attempts)
	default:
		obs.RecordJobDone(s.reg, string(up.State), final.Run())
		s.logger.Info("job finished", "job_id", id, "state", up.State,
			"attempts", attempts, "run", final.Run().Round(time.Millisecond), "err", up.Error)
	}
}

// backoff returns the capped exponential delay for a retry after the given
// attempt number, with ±50% deterministic jitter.
func (s *Service) backoff(attempt int) time.Duration {
	d := float64(s.cfg.BackoffBase) * math.Pow(2, float64(attempt-1))
	if cap := float64(s.cfg.BackoffCap); d > cap {
		d = cap
	}
	s.rngMu.Lock()
	jitter := 0.5 + s.rng.Float64() // uniform in [0.5, 1.5)
	s.rngMu.Unlock()
	return time.Duration(d * jitter)
}

// BeginDrain flips the service out of ready (Submit → ErrDraining, /readyz
// → 503) without stopping running jobs; Close implies it. Safe to call more
// than once.
func (s *Service) BeginDrain() { s.draining.Store(true) }

// Close shuts the service down gracefully: intake stops, workers finish
// their running jobs until ctx expires, any job still running then is
// canceled with cause ErrDraining and checkpointed back to queued, and the
// store flushes a final snapshot. Jobs still queued simply stay queued in
// the WAL for the next boot.
func (s *Service) Close(ctx context.Context) error {
	s.BeginDrain()
	s.mu.Lock()
	s.stopTimersLocked()
	s.mu.Unlock()
	s.queue.Close()
	s.popCancel()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for id, cancel := range s.cancels {
			s.logger.Warn("job drain deadline, checkpointing", "job_id", id)
			cancel(ErrDraining)
		}
		s.mu.Unlock()
		<-done
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed {
		return nil
	}
	obs.SetJobQueueGauges(s.reg, 0, 0)
	return s.store.Close()
}

// Terminate simulates a crash (SIGKILL) in-process: every store write from
// this moment fails silently, file handles close without a final snapshot
// or checkpoint records, and workers are cut loose. The on-disk WAL stays
// exactly as the last acknowledged append left it, so a subsequent
// NewService on the same directory exercises true crash recovery.
// Test-only by intent.
func (s *Service) Terminate() {
	s.mu.Lock()
	s.killed = true
	s.store.Abandon()
	s.stopTimersLocked()
	for _, cancel := range s.cancels {
		cancel(errKilled)
	}
	s.mu.Unlock()
	s.draining.Store(true)
	s.queue.Close()
	s.popCancel()
	s.wg.Wait()
}

// Metrics returns the registry the service records into.
func (s *Service) Metrics() *obs.Registry { return s.reg }
