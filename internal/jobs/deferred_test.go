package jobs

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestSubmitAtRunsAfterDeadline(t *testing.T) {
	ran := make(chan time.Time, 1)
	s := newTestService(t, func(ctx context.Context, j Job) ([]byte, error) {
		ran <- time.Now()
		return []byte("{}"), nil
	}, nil)
	at := time.Now().Add(40 * time.Millisecond)
	j, err := s.SubmitAt("kind=retention", []byte("{}"), at)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued || !j.NotBefore.Equal(at) {
		t.Fatalf("deferred job %+v", j)
	}
	got, _, err := s.Get(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Deferred(time.Now()) {
		t.Fatalf("job not deferred: %+v", got)
	}
	waitState(t, s, j.ID, StateDone)
	started := <-ran
	if started.Before(at) {
		t.Errorf("job ran %v before its NotBefore deadline", at.Sub(started))
	}
}

func TestSubmitAtPastDeadlineRunsImmediately(t *testing.T) {
	s := newTestService(t, func(ctx context.Context, j Job) ([]byte, error) {
		return []byte("{}"), nil
	}, nil)
	j, err := s.SubmitAt("", []byte("{}"), time.Now().Add(-time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !j.NotBefore.IsZero() {
		t.Errorf("past deadline should degrade to plain Submit, got NotBefore %v", j.NotBefore)
	}
	waitState(t, s, j.ID, StateDone)
}

func TestCancelDeferredJob(t *testing.T) {
	ran := make(chan struct{}, 1)
	s := newTestService(t, func(ctx context.Context, j Job) ([]byte, error) {
		ran <- struct{}{}
		return []byte("{}"), nil
	}, nil)
	j, err := s.SubmitAt("", []byte("{}"), time.Now().Add(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	canceled, err := s.Cancel(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if canceled.State != StateCanceled {
		t.Fatalf("state %s, want canceled", canceled.State)
	}
	select {
	case <-ran:
		t.Fatal("canceled deferred job still ran")
	case <-time.After(120 * time.Millisecond):
	}
	s.mu.Lock()
	pending := len(s.timers)
	s.mu.Unlock()
	if pending != 0 {
		t.Errorf("%d timers still armed after cancel", pending)
	}
}

// TestDeferredSurvivesRestart covers both replay halves: a deadline still
// ahead is re-armed (the job stays deferred, then runs), and one that came
// due while the process was down is requeued immediately on boot.
func TestDeferredSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	runner := func(ctx context.Context, j Job) ([]byte, error) {
		select {
		case <-block:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return []byte("{}"), nil
	}
	s1, _, err := NewService(Config{Dir: dir, Workers: 1, Store: StoreOptions{NoSync: true}}, runner)
	if err != nil {
		t.Fatal(err)
	}
	future, err := s1.SubmitAt("later", []byte("{}"), time.Now().Add(250*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	pastDue, err := s1.SubmitAt("soon", []byte("{}"), time.Now().Add(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	s1.Terminate() // crash: both jobs sit queued in the WAL with their deadlines

	time.Sleep(40 * time.Millisecond) // pastDue's deadline lapses while "down"
	close(block)
	s2, replay, err := NewService(Config{Dir: dir, Workers: 1, Store: StoreOptions{NoSync: true}}, runner)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s2.Close(ctx)
	})
	if replay.Queued != 2 {
		t.Fatalf("replayed %d queued jobs, want 2", replay.Queued)
	}
	waitState(t, s2, pastDue.ID, StateDone)
	waitState(t, s2, future.ID, StateDone)
	j, _, err := s2.Get(future.ID)
	if err != nil {
		t.Fatal(err)
	}
	if j.StartedAt.Before(j.NotBefore) {
		t.Errorf("re-armed job started %v before its deadline", j.NotBefore.Sub(j.StartedAt))
	}
}

func TestSubmitAtWhileDrainingRejected(t *testing.T) {
	s := newTestService(t, func(ctx context.Context, j Job) ([]byte, error) {
		return []byte("{}"), nil
	}, nil)
	s.BeginDrain()
	if _, err := s.SubmitAt("", []byte("{}"), time.Now().Add(time.Hour)); !errors.Is(err, ErrDraining) {
		t.Fatalf("err %v, want ErrDraining", err)
	}
}
