package jobs

import (
	"context"
	"errors"
	"sync"
)

// ErrQueueClosed is returned by Pop once the queue has been closed and
// drained — the worker loop's exit signal.
var ErrQueueClosed = errors.New("jobs: queue closed")

// Queue is a bounded FIFO of job IDs with admission control: Push rejects
// with a *QueueFullError (errors.Is ErrQueueFull) once either the depth cap
// or the total payload-byte cap would be exceeded. Requeue bypasses the
// caps — a job re-entering the queue (crash replay, shutdown checkpoint,
// retry) was already admitted once and must not be lost to a full queue.
// All methods are safe for concurrent use.
type Queue struct {
	mu       sync.Mutex
	maxDepth int
	maxBytes int64
	items    []queueItem
	bytes    int64
	closed   bool
	// signal wakes one blocked Pop per Push (capacity 1: a pending wakeup
	// is never needed twice, poppers re-check the slice under the lock).
	signal chan struct{}
}

type queueItem struct {
	id    string
	bytes int64
}

// NewQueue returns an empty queue bounded by maxDepth jobs and maxBytes
// summed payload bytes; bounds ≤ 0 are unbounded.
func NewQueue(maxDepth int, maxBytes int64) *Queue {
	return &Queue{maxDepth: maxDepth, maxBytes: maxBytes, signal: make(chan struct{}, 1)}
}

// Push admits a job at the tail, or rejects with *QueueFullError when a
// bound would be exceeded, or ErrQueueClosed after Close.
func (q *Queue) Push(id string, bytes int64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if (q.maxDepth > 0 && len(q.items) >= q.maxDepth) ||
		(q.maxBytes > 0 && q.bytes+bytes > q.maxBytes) {
		return &QueueFullError{Depth: len(q.items), MaxDepth: q.maxDepth, Bytes: q.bytes, MaxBytes: q.maxBytes}
	}
	q.push(queueItem{id: id, bytes: bytes})
	return nil
}

// Requeue re-admits a previously admitted job at the tail regardless of the
// bounds (admission control applies once, at first submission).
func (q *Queue) Requeue(id string, bytes int64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	q.push(queueItem{id: id, bytes: bytes})
	return nil
}

// push appends and wakes one waiter; callers hold q.mu.
func (q *Queue) push(it queueItem) {
	q.items = append(q.items, it)
	q.bytes += it.bytes
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

// Pop removes and returns the head job ID, blocking until one is
// available, ctx is done, or the queue is closed (ErrQueueClosed). A closed
// queue stops handing out work even while items remain — shutdown
// checkpoints them instead of running them.
func (q *Queue) Pop(ctx context.Context) (string, error) {
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return "", ErrQueueClosed
		}
		if len(q.items) > 0 {
			it := q.items[0]
			q.items = q.items[1:]
			q.bytes -= it.bytes
			if len(q.items) > 0 {
				// More work remains: keep the wakeup chain alive for the
				// next blocked popper.
				select {
				case q.signal <- struct{}{}:
				default:
				}
			}
			q.mu.Unlock()
			return it.id, nil
		}
		q.mu.Unlock()
		select {
		case <-q.signal:
		case <-ctx.Done():
			return "", ctx.Err()
		}
	}
}

// Remove deletes a queued job by ID (a cancel landing before the job
// starts), reporting whether it was present.
func (q *Queue) Remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, it := range q.items {
		if it.id == id {
			q.items = append(q.items[:i], q.items[i+1:]...)
			q.bytes -= it.bytes
			return true
		}
	}
	return false
}

// Position returns how many jobs sit ahead of id (0 = next to run), or -1
// when id is not queued.
func (q *Queue) Position(id string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, it := range q.items {
		if it.id == id {
			return i
		}
	}
	return -1
}

// Depth returns the number of queued jobs.
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// Bytes returns the summed payload bytes of the queued jobs.
func (q *Queue) Bytes() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.bytes
}

// Close stops intake and work handout: blocked and future Push/Pop calls
// return ErrQueueClosed. Items still queued stay put for Drain to
// checkpoint. Every push's signal send holds the queue mutex, and Close
// sets closed under the same mutex first, so no send can race the close.
func (q *Queue) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	close(q.signal) // wakes every blocked popper
}

// Drain empties the queue and returns the IDs that never ran (shutdown
// checkpointing); the queue must already be closed.
func (q *Queue) Drain() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	ids := make([]string, len(q.items))
	for i, it := range q.items {
		ids[i] = it.id
	}
	q.items = nil
	q.bytes = 0
	return ids
}
