package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"phocus/internal/fleet"
)

// Store is the durable job table: an in-memory map of jobs backed by an
// append-only JSONL write-ahead log plus a periodic snapshot, both under one
// data directory. Every mutation appends one WAL record before it is
// acknowledged; on startup the snapshot is loaded and the WAL replayed on
// top, so queued and running jobs survive a crash (running jobs are
// re-queued, exactly once, during replay). A Store opened with an empty
// directory is memory-only — same API, no durability.
//
// WAL format (see DESIGN.md §7): one JSON object per line, either
//
//	{"t":"submit","job":{...full job record...}}
//	{"t":"update","up":{"id":...,"state":...,"attempts":...,"error":...,"result":...,"at":...}}
//
// A corrupt line — a torn tail from a crash mid-append, or any line that
// does not parse — is skipped and counted (ReplayStats.Corrupt, surfaced as
// phocus_jobs_wal_corrupt_total); replay continues with the next line.
type Store struct {
	// Store methods are called under the Service mutex (or sequentially in
	// tests); the Store itself adds no locking.
	dir       string
	wal       *os.File
	sync      bool
	snapEvery int
	appends   int

	jobs    map[string]*Job
	nextSeq uint64

	maxTerminal int
}

// StoreOptions tunes durability behaviour.
type StoreOptions struct {
	// NoSync skips the fsync after each WAL append (benchmarks only; a
	// crash may then lose the last few acknowledged records).
	NoSync bool
	// SnapshotEvery compacts the WAL into a snapshot after this many
	// appends (0 = default 1024).
	SnapshotEvery int
	// MaxTerminal bounds how many finished jobs are retained for status
	// queries; the oldest are pruned beyond it (0 = default 4096, < 0 =
	// unlimited).
	MaxTerminal int
}

// ReplayStats reports what Open recovered from disk.
type ReplayStats struct {
	// Jobs is the total number of jobs recovered (all states).
	Jobs int
	// Queued counts jobs recovered in state queued (requeued included).
	Queued int
	// Requeued counts jobs found running in the log — interrupted by the
	// crash — and moved back to queued during replay.
	Requeued int
	// Corrupt counts skipped WAL records (torn tail or garbage lines).
	Corrupt int
	// TempSwept counts orphaned snapshot temp files — a crash between
	// compact's temp-write and rename — deleted during replay.
	TempSwept int
}

// walRecord is one WAL line.
type walRecord struct {
	T   string     `json:"t"`
	Job *Job       `json:"job,omitempty"`
	Up  *jobUpdate `json:"up,omitempty"`
}

// jobUpdate is the mutation half of the WAL vocabulary: a state transition
// with its payload. Zero fields mean "leave unchanged".
type jobUpdate struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Attempts int    `json:"attempts,omitempty"`
	Error    string `json:"error,omitempty"`
	// Result is the runner's opaque output — arbitrary bytes, so it rides
	// the WAL base64-encoded rather than as raw JSON.
	Result []byte    `json:"result,omitempty"`
	At     time.Time `json:"at"`
}

// snapshot is the periodic full-state checkpoint; the WAL is truncated
// after it lands.
type snapshot struct {
	NextSeq uint64 `json:"next_seq"`
	Jobs    []*Job `json:"jobs"`
}

func (s *Store) walPath() string  { return filepath.Join(s.dir, "wal.jsonl") }
func (s *Store) snapPath() string { return filepath.Join(s.dir, "snapshot.json") }

// Open loads (or initializes) the store under dir and returns it with the
// replay accounting. An empty dir yields a memory-only store. Jobs found in
// state running were interrupted by a crash and are re-queued exactly once;
// the post-replay state is immediately compacted into a fresh snapshot so a
// second crash cannot requeue them again.
func Open(dir string, opts StoreOptions) (*Store, ReplayStats, error) {
	s := &Store{
		dir:         dir,
		sync:        !opts.NoSync,
		snapEvery:   opts.SnapshotEvery,
		jobs:        make(map[string]*Job),
		nextSeq:     1,
		maxTerminal: opts.MaxTerminal,
	}
	if s.snapEvery <= 0 {
		s.snapEvery = 1024
	}
	if s.maxTerminal == 0 {
		s.maxTerminal = 4096
	}
	var stats ReplayStats
	if dir == "" {
		return s, stats, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, stats, fmt.Errorf("jobs: create data dir: %w", err)
	}
	stats.TempSwept = s.sweepTemp()
	if err := s.loadSnapshot(); err != nil {
		return nil, stats, err
	}
	corrupt, err := s.replayWAL()
	if err != nil {
		return nil, stats, err
	}
	stats.Corrupt = corrupt
	for _, j := range s.jobs {
		if j.Tenant == "" {
			// Pre-tenancy (v1) record: adopt it into the default tenant so an
			// upgraded shard keeps serving its old jobs under the new model.
			j.Tenant = fleet.DefaultTenant
		}
		if j.State == StateRunning {
			j.State = StateQueued
			j.StartedAt = time.Time{}
			stats.Requeued++
		}
		if j.State == StateQueued {
			stats.Queued++
		}
	}
	s.prune()
	stats.Jobs = len(s.jobs)
	// Compact immediately: the requeues above become durable and the next
	// boot replays a clean snapshot instead of the whole history.
	if err := s.compact(); err != nil {
		return nil, stats, err
	}
	return s, stats, nil
}

// sweepTemp deletes orphaned *.tmp files in the data directory. A crash
// between compact's temp-write and rename leaves snapshot.json.tmp behind;
// the rename never happened, so the temp was never authoritative state —
// without the sweep each such crash would strand one more file forever.
func (s *Store) sweepTemp() int {
	matches, err := filepath.Glob(filepath.Join(s.dir, "*.tmp"))
	if err != nil {
		return 0
	}
	swept := 0
	for _, m := range matches {
		if os.Remove(m) == nil {
			swept++
		}
	}
	return swept
}

// loadSnapshot reads snapshot.json if present.
func (s *Store) loadSnapshot() error {
	data, err := os.ReadFile(s.snapPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("jobs: read snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		// A torn snapshot write means the rename never happened on any
		// supported platform; a parse failure here is disk corruption and
		// deserves a loud stop, not silent data loss.
		return fmt.Errorf("jobs: corrupt snapshot %s: %w", s.snapPath(), err)
	}
	for _, j := range snap.Jobs {
		s.jobs[j.ID] = j
	}
	if snap.NextSeq > s.nextSeq {
		s.nextSeq = snap.NextSeq
	}
	return nil
}

// replayWAL applies wal.jsonl on top of the snapshot, skipping (and
// counting) records that do not parse.
func (s *Store) replayWAL() (corrupt int, err error) {
	f, err := os.Open(s.walPath())
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("jobs: open wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		line, err := r.ReadBytes('\n')
		// A final line without a trailing newline is a torn append; try to
		// parse it anyway (it may just predate crash-interrupted fsync).
		if len(line) > 0 {
			var rec walRecord
			if uerr := json.Unmarshal(line, &rec); uerr != nil || !s.apply(&rec) {
				corrupt++
			}
		}
		if err == io.EOF {
			return corrupt, nil
		}
		if err != nil {
			return corrupt, fmt.Errorf("jobs: read wal: %w", err)
		}
	}
}

// apply folds one WAL record into the job map; both replay and the live
// write path go through it so disk state and memory state cannot drift.
// It reports false for records it does not recognize.
func (s *Store) apply(rec *walRecord) bool {
	switch rec.T {
	case "submit":
		if rec.Job == nil || rec.Job.ID == "" {
			return false
		}
		if _, ok := s.jobs[rec.Job.ID]; ok {
			return true // duplicate replay after a snapshot race; first wins
		}
		j := *rec.Job
		s.jobs[j.ID] = &j
		if j.Seq >= s.nextSeq {
			s.nextSeq = j.Seq + 1
		}
		return true
	case "update":
		up := rec.Up
		if up == nil || up.ID == "" || !up.State.Valid() {
			return false
		}
		j, ok := s.jobs[up.ID]
		if !ok {
			// The job this updates was pruned or its submit record was
			// lost; the record is well-formed, so it is not corruption.
			return true
		}
		j.State = up.State
		if up.Attempts > 0 {
			j.Attempts = up.Attempts
		}
		j.Error = up.Error
		switch {
		case up.State == StateRunning:
			j.StartedAt = up.At
		case up.State == StateQueued: // checkpoint/requeue
			j.StartedAt = time.Time{}
			j.FinishedAt = time.Time{}
		case up.State.Terminal():
			j.FinishedAt = up.At
			j.Result = up.Result
			j.Body = nil // history does not need the payload
		}
		return true
	}
	return false
}

// append writes one record to the WAL (fsynced unless NoSync). Compaction
// is NOT triggered here: the record being appended has not been applied to
// the job map yet, so compacting now would snapshot state without it and
// then truncate its WAL line — losing the mutation. Callers invoke
// maybeCompact after applying.
func (s *Store) append(rec *walRecord) error {
	if s.dir == "" {
		return nil
	}
	if s.wal == nil {
		f, err := os.OpenFile(s.walPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("jobs: open wal: %w", err)
		}
		s.wal = f
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: encode wal record: %w", err)
	}
	data = append(data, '\n')
	if _, err := s.wal.Write(data); err != nil {
		return fmt.Errorf("jobs: append wal: %w", err)
	}
	if s.sync {
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("jobs: sync wal: %w", err)
		}
	}
	s.appends++
	return nil
}

// maybeCompact folds the WAL into a snapshot once enough appends piled up.
func (s *Store) maybeCompact() error {
	if s.dir == "" || s.appends < s.snapEvery {
		return nil
	}
	return s.compact()
}

// compact checkpoints the full job table into snapshot.json (write-temp +
// rename) and truncates the WAL.
func (s *Store) compact() error {
	if s.dir == "" {
		return nil
	}
	snap := snapshot{NextSeq: s.nextSeq, Jobs: s.sortedJobs()}
	data, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("jobs: encode snapshot: %w", err)
	}
	tmp := s.snapPath() + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("jobs: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, s.snapPath()); err != nil {
		return fmt.Errorf("jobs: install snapshot: %w", err)
	}
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
	if err := os.Truncate(s.walPath(), 0); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("jobs: truncate wal: %w", err)
	}
	s.appends = 0
	return nil
}

// sortedJobs returns the jobs ordered by submission sequence.
func (s *Store) sortedJobs() []*Job {
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// prune drops the oldest terminal jobs beyond the retention bound.
func (s *Store) prune() {
	if s.maxTerminal < 0 {
		return
	}
	var terminal []*Job
	for _, j := range s.jobs {
		if j.State.Terminal() {
			terminal = append(terminal, j)
		}
	}
	if len(terminal) <= s.maxTerminal {
		return
	}
	sort.Slice(terminal, func(a, b int) bool { return terminal[a].Seq < terminal[b].Seq })
	for _, j := range terminal[:len(terminal)-s.maxTerminal] {
		delete(s.jobs, j.ID)
	}
}

// Submit assigns the job its sequence number, logs it and inserts it into
// the table. The job must arrive in state queued with a non-empty ID.
func (s *Store) Submit(j *Job) error {
	if j.ID == "" || j.State != StateQueued {
		return fmt.Errorf("jobs: bad submission %+v", j)
	}
	if _, ok := s.jobs[j.ID]; ok {
		return fmt.Errorf("jobs: duplicate job ID %q", j.ID)
	}
	j.Seq = s.nextSeq
	cp := *j
	if err := s.append(&walRecord{T: "submit", Job: &cp}); err != nil {
		return err
	}
	s.nextSeq++
	s.jobs[cp.ID] = &cp
	return s.maybeCompact()
}

// Update logs a state transition and applies it, returning the job's new
// value. Unknown IDs return ErrNotFound.
func (s *Store) Update(up *jobUpdate) (Job, error) {
	if _, ok := s.jobs[up.ID]; !ok {
		return Job{}, fmt.Errorf("%w: %q", ErrNotFound, up.ID)
	}
	if up.At.IsZero() {
		up.At = time.Now()
	}
	if err := s.append(&walRecord{T: "update", Up: up}); err != nil {
		return Job{}, err
	}
	s.apply(&walRecord{T: "update", Up: up})
	j := *s.jobs[up.ID]
	if up.State.Terminal() {
		s.prune()
	}
	return j, s.maybeCompact()
}

// Get returns a copy of the job (Body and Result share backing arrays and
// must be treated read-only).
func (s *Store) Get(id string) (Job, bool) {
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// List returns copies of all jobs ordered by submission, with the payload
// and result stripped (fetch them per job via Get).
func (s *Store) List() []Job {
	sorted := s.sortedJobs()
	out := make([]Job, len(sorted))
	for i, j := range sorted {
		out[i] = *j
		out[i].Body = nil
		out[i].Result = nil
	}
	return out
}

// Len returns the number of retained jobs (all states).
func (s *Store) Len() int { return len(s.jobs) }

// Close flushes a final snapshot and releases the WAL handle.
func (s *Store) Close() error {
	if s.dir == "" {
		return nil
	}
	err := s.compact()
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
	return err
}

// Abandon releases file handles WITHOUT a final snapshot or checkpoint —
// the on-disk state stays exactly as the last append left it, as a crash
// would. Crash-recovery tests use it to simulate SIGKILL in-process.
func (s *Store) Abandon() {
	if s.wal != nil {
		s.wal.Close()
		s.wal = nil
	}
}
