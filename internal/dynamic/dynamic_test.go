package dynamic

import (
	"context"
	"math/rand"
	"testing"

	"phocus/internal/celf"
	"phocus/internal/par"
	"phocus/internal/phocus"
)

func stream(rng *rand.Rand, inst *par.Instance) []par.PhotoID {
	var order []par.PhotoID
	for _, p := range rng.Perm(inst.NumPhotos()) {
		if !inst.IsRetained(par.PhotoID(p)) {
			order = append(order, par.PhotoID(p))
		}
	}
	return order
}

// coverageSeed returns the shortest prefix of order that (together with the
// retained set) gives at least one subset a positive-relevance member, which
// is what NewFeeder needs to build a preparable seed instance.
func coverageSeed(inst *par.Instance, order []par.PhotoID) []par.PhotoID {
	hasMass := func(p par.PhotoID) bool {
		for _, oc := range inst.Occurrences(p) {
			if inst.Subsets[oc.Subset].Relevance[oc.Index] > 0 {
				return true
			}
		}
		return false
	}
	for _, p := range inst.Retained {
		if hasMass(p) {
			return nil
		}
	}
	var seed []par.PhotoID
	for _, p := range order {
		seed = append(seed, p)
		if hasMass(p) {
			break
		}
	}
	return seed
}

// start prepares the engine over the seed and returns the maintainer plus
// the arrivals still to stream (the order minus the seed prefix).
func start(t *testing.T, inst *par.Instance, order []par.PhotoID, opts Options) (*Maintainer, *Feeder, []par.PhotoID) {
	t.Helper()
	seed := coverageSeed(inst, order)
	f, ds, err := NewFeeder(inst, seed)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := phocus.Prepare(context.Background(), ds, phocus.PrepareOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(prep, inst.Budget, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range f.SeedIDs() {
		if _, err := m.Consider(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	return m, f, order[len(seed):]
}

func TestArrivalVerdicts(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(1))
	inst := par.Random(rng, par.RandomConfig{Photos: 40, Subsets: 20, BudgetFrac: 0.2})
	m, f, rest := start(t, inst, stream(rng, inst), Options{})
	for _, p := range rest {
		d, err := f.Reveal(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Arrive(ctx, d); err != nil {
			t.Fatal(err)
		}
		sol := m.Solution()
		if !inst.Feasible(f.Orig(sol.Photos)) {
			t.Fatalf("infeasible after arrival %d", p)
		}
	}
	st := m.Stats()
	if st.Arrivals != 40 || st.Admitted == 0 || st.Rejected == 0 {
		t.Errorf("verdict mix: %+v", st)
	}
	if st.Swapped == 0 {
		t.Error("tight budget stream produced no swaps")
	}
}

func TestArriveErrors(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(8))
	inst := par.Random(rng, par.RandomConfig{Photos: 12, Subsets: 6, BudgetFrac: 0.5})
	order := stream(rng, inst)
	m, f, rest := start(t, inst, order, Options{})
	if _, err := f.Reveal(99); err == nil {
		t.Error("out-of-range reveal accepted")
	}
	if _, err := f.Reveal(order[0]); err == nil {
		t.Error("duplicate reveal accepted")
	}
	if _, err := m.Arrive(ctx, &phocus.Delta{}); err == nil {
		t.Error("empty delta accepted")
	}
	if _, err := m.Arrive(ctx, &phocus.Delta{
		Add:    []phocus.DeltaPhoto{{Cost: 1}},
		Remove: []par.PhotoID{0},
	}); err == nil {
		t.Error("delta with removals accepted")
	}
	d, err := f.Reveal(rest[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Arrive(ctx, d); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Consider(ctx, par.PhotoID(m.Prepared().NumPhotos())); err == nil {
		t.Error("out-of-range Consider accepted")
	}
}

func TestRetainedSurviveAllSwaps(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(2))
	inst := par.Random(rng, par.RandomConfig{Photos: 30, Subsets: 15, BudgetFrac: 0.25, RetainFrac: 0.1})
	m, f, rest := start(t, inst, stream(rng, inst), Options{})
	for _, p := range rest {
		d, err := f.Reveal(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Arrive(ctx, d); err != nil {
			t.Fatal(err)
		}
		have := map[par.PhotoID]bool{}
		for _, kept := range f.Orig(m.Solution().Photos) {
			have[kept] = true
		}
		for _, r := range inst.Retained {
			if !have[r] {
				t.Fatalf("retained photo %d evicted", r)
			}
		}
	}
}

// The maintained solution must track the full re-solve closely: once every
// photo has arrived, the engine instance's relevance distribution equals the
// complete instance's, so the incremental score is directly comparable to
// solving the complete instance from scratch.
func TestMaintainedQuality(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		inst := par.Random(rng, par.RandomConfig{Photos: 50, Subsets: 25, BudgetFrac: 0.2})
		m, f, rest := start(t, inst, stream(rng, inst), Options{})
		for _, p := range rest {
			d, err := f.Reveal(p)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := m.Arrive(ctx, d); err != nil {
				t.Fatal(err)
			}
		}
		var solver celf.Solver
		oracle, err := solver.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Solution().Score; got < 0.75*oracle.Score {
			t.Errorf("trial %d: maintained %.4f below 75%% of oracle %.4f", trial, got, oracle.Score)
		}
	}
}

func TestPeriodicResolveRestoresOracleQuality(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(4))
	inst := par.Random(rng, par.RandomConfig{Photos: 60, Subsets: 30, BudgetFrac: 0.2})
	order := stream(rng, inst)
	incremental, fi, restI := start(t, inst, order, Options{})
	periodic, fp, restP := start(t, inst, order, Options{ResolveEvery: 15})
	for i := range restI {
		di, err := fi.Reveal(restI[i])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := incremental.Arrive(ctx, di); err != nil {
			t.Fatal(err)
		}
		dp, err := fp.Reveal(restP[i])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := periodic.Arrive(ctx, dp); err != nil {
			t.Fatal(err)
		}
	}
	if periodic.Stats().Resolves == 0 {
		t.Fatal("ResolveEvery never triggered")
	}
	// A final explicit resolve gives the oracle answer on the whole stream.
	if err := periodic.Resolve(ctx); err != nil {
		t.Fatal(err)
	}
	var solver celf.Solver
	oracle, err := solver.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	// The engine instance accumulated its relevances incrementally, so allow
	// a relative float tolerance against the directly normalized oracle.
	tol := 1e-9 * (1 + oracle.Score)
	if got := periodic.Solution().Score; got < oracle.Score-tol {
		t.Errorf("post-resolve score %.6f below oracle %.6f", got, oracle.Score)
	}
	if periodic.Solution().Score+tol < incremental.Solution().Score {
		t.Errorf("periodic re-solving (%.4f) lost to pure incremental (%.4f)",
			periodic.Solution().Score, incremental.Solution().Score)
	}
}

func TestDriftTrigger(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(5))
	inst := par.Random(rng, par.RandomConfig{Photos: 50, Subsets: 25, BudgetFrac: 0.15})
	m, f, rest := start(t, inst, stream(rng, inst), Options{ResolveEvery: 10, DriftFactor: 0.95})
	for _, p := range rest {
		d, err := f.Reveal(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Arrive(ctx, d); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().Resolves == 0 {
		t.Error("no resolves despite periodic + drift policy")
	}
}

// TestStaleAdmissionGainEviction is the regression for the eviction rule:
// the maintainer must rank eviction candidates by their CURRENT marginal
// value, not the gain recorded when they were admitted. Photo a is admitted
// with a large gain, then photo b arrives and covers a's entire
// contribution; when newcomer e needs room, a (current marginal ≈ 0, stale
// admission gain 5) must be the one evicted. The old admission-density
// heuristic evicted c (stale density 4 < a's stale 5), found the swap
// unprofitable and rejected e.
func TestStaleAdmissionGainEviction(t *testing.T) {
	ctx := context.Background()
	one := par.FuncSim{N: 2, F: func(i, j int) float64 { return 1 }}
	full := &par.Instance{
		Cost:   []float64{1, 1, 1, 1}, // a, b, c, e
		Budget: 3,
		Subsets: []par.Subset{
			{Name: "A", Weight: 5, Members: []par.PhotoID{0, 1}, Relevance: []float64{0.5, 0.5}, Sim: one},
			{Name: "F", Weight: 6, Members: []par.PhotoID{1}, Relevance: []float64{1}, Sim: par.FuncSim{N: 1}},
			{Name: "G", Weight: 4, Members: []par.PhotoID{2}, Relevance: []float64{1}, Sim: par.FuncSim{N: 1}},
			{Name: "E", Weight: 3, Members: []par.PhotoID{3}, Relevance: []float64{1}, Sim: par.FuncSim{N: 1}},
		},
	}
	if err := full.Finalize(); err != nil {
		t.Fatal(err)
	}
	order := []par.PhotoID{0, 1, 2, 3}
	m, f, rest := start(t, full, order, Options{})
	if got := m.Stats().Admitted; got != 1 { // a admitted from the seed
		t.Fatalf("seed admissions = %d, want 1", got)
	}
	verdicts := make([]Verdict, 0, 3)
	for _, p := range rest {
		d, err := f.Reveal(p)
		if err != nil {
			t.Fatal(err)
		}
		v, err := m.Arrive(ctx, d)
		if err != nil {
			t.Fatal(err)
		}
		verdicts = append(verdicts, v)
	}
	if verdicts[0] != Admitted || verdicts[1] != Admitted {
		t.Fatalf("b, c verdicts = %v, %v, want admitted", verdicts[0], verdicts[1])
	}
	if verdicts[2] != Swapped {
		t.Fatalf("e verdict = %v, want swapped (stale-gain eviction regression)", verdicts[2])
	}
	kept := map[par.PhotoID]bool{}
	for _, p := range f.Orig(m.Solution().Photos) {
		kept[p] = true
	}
	if kept[0] || !kept[1] || !kept[2] || !kept[3] {
		t.Fatalf("kept %v, want b, c, e with a evicted", f.Orig(m.Solution().Photos))
	}
	if got, want := m.Score(), 5.0+6+4+3; got < want-1e-9 {
		t.Fatalf("post-swap score %.4f, want %.4f", got, want)
	}
}

// TestResetAfterRemoval drives out-of-band removal churn through the
// Prepared directly and checks Reset drops the husk from the selection
// while keeping the rest feasible.
func TestResetAfterRemoval(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(6))
	inst := par.Random(rng, par.RandomConfig{Photos: 30, Subsets: 15, BudgetFrac: 0.4, SimDensity: 0.6})
	m, f, rest := start(t, inst, stream(rng, inst), Options{})
	for _, p := range rest {
		d, err := f.Reveal(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Arrive(ctx, d); err != nil {
			t.Fatal(err)
		}
	}

	// Pick a selected, non-retained photo whose subsets all keep another
	// live positive-relevance member once it is gone.
	var victim par.PhotoID = -1
	for _, p := range m.Solution().Photos {
		if m.view.IsRetained(p) {
			continue
		}
		ok := true
		for _, oc := range m.view.Occurrences(p) {
			q := &m.view.Subsets[oc.Subset]
			others := 0
			for mi, mem := range q.Members {
				if mem != p && q.Relevance[mi] > 0 {
					others++
				}
			}
			if q.Relevance[oc.Index] > 0 && others == 0 {
				ok = false
				break
			}
		}
		if ok {
			victim = p
			break
		}
	}
	if victim < 0 {
		t.Skip("no safely removable selected photo in this instance")
	}
	if _, err := m.Prepared().ApplyDelta(ctx, &phocus.Delta{Remove: []par.PhotoID{victim}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	sol := m.Solution()
	for _, p := range sol.Photos {
		if p == victim {
			t.Fatal("husked photo survived Reset")
		}
	}
	if sol.Cost > m.view.Budget+1e-9 {
		t.Fatalf("post-Reset cost %.4f over budget %.4f", sol.Cost, m.view.Budget)
	}
}
