package dynamic

import (
	"math/rand"
	"testing"

	"phocus/internal/celf"
	"phocus/internal/par"
)

func stream(rng *rand.Rand, inst *par.Instance) []par.PhotoID {
	var order []par.PhotoID
	for _, p := range rng.Perm(inst.NumPhotos()) {
		if !inst.IsRetained(par.PhotoID(p)) {
			order = append(order, par.PhotoID(p))
		}
	}
	return order
}

func TestArrivalVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst := par.Random(rng, par.RandomConfig{Photos: 40, Subsets: 20, BudgetFrac: 0.2})
	m := New(inst, Options{})
	var admitted, rejected, swapped int
	for _, p := range stream(rng, inst) {
		v, err := m.Arrive(p)
		if err != nil {
			t.Fatal(err)
		}
		switch v {
		case Admitted:
			admitted++
		case Rejected:
			rejected++
		case Swapped:
			swapped++
		}
		sol := m.Solution()
		if !inst.Feasible(sol.Photos) {
			t.Fatalf("infeasible after arrival %d", p)
		}
	}
	st := m.Stats()
	if st.Arrivals != 40 || admitted == 0 || rejected == 0 {
		t.Errorf("verdict mix: admitted=%d rejected=%d swapped=%d stats=%+v",
			admitted, rejected, swapped, st)
	}
	if swapped == 0 {
		t.Error("tight budget stream produced no swaps")
	}
}

func TestArriveErrors(t *testing.T) {
	inst := par.Figure1Instance()
	m := New(inst, Options{})
	if _, err := m.Arrive(99); err == nil {
		t.Error("out-of-range arrival accepted")
	}
	if _, err := m.Arrive(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Arrive(0); err == nil {
		t.Error("duplicate arrival accepted")
	}
}

func TestRetainedSurviveAllSwaps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst := par.Random(rng, par.RandomConfig{Photos: 30, Subsets: 15, BudgetFrac: 0.25, RetainFrac: 0.1})
	m := New(inst, Options{})
	for _, p := range stream(rng, inst) {
		if _, err := m.Arrive(p); err != nil {
			t.Fatal(err)
		}
		sol := m.Solution()
		have := map[par.PhotoID]bool{}
		for _, kept := range sol.Photos {
			have[kept] = true
		}
		for _, r := range inst.Retained {
			if !have[r] {
				t.Fatalf("retained photo %d evicted", r)
			}
		}
	}
}

// The maintained solution must track the full re-solve closely: the final
// incremental score stays within a modest factor of solving the complete
// instance from scratch.
func TestMaintainedQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		inst := par.Random(rng, par.RandomConfig{Photos: 50, Subsets: 25, BudgetFrac: 0.2})
		m := New(inst, Options{})
		for _, p := range stream(rng, inst) {
			if _, err := m.Arrive(p); err != nil {
				t.Fatal(err)
			}
		}
		var solver celf.Solver
		oracle, err := solver.Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Solution().Score; got < 0.75*oracle.Score {
			t.Errorf("trial %d: maintained %.4f below 75%% of oracle %.4f", trial, got, oracle.Score)
		}
	}
}

func TestPeriodicResolveRestoresOracleQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst := par.Random(rng, par.RandomConfig{Photos: 60, Subsets: 30, BudgetFrac: 0.2})
	incremental := New(inst, Options{})
	periodic := New(inst, Options{ResolveEvery: 15})
	order := stream(rng, inst)
	for _, p := range order {
		if _, err := incremental.Arrive(p); err != nil {
			t.Fatal(err)
		}
		if _, err := periodic.Arrive(p); err != nil {
			t.Fatal(err)
		}
	}
	if periodic.Stats().Resolves == 0 {
		t.Fatal("ResolveEvery never triggered")
	}
	// A final explicit resolve gives the oracle answer on the whole stream.
	if err := periodic.Resolve(); err != nil {
		t.Fatal(err)
	}
	var solver celf.Solver
	oracle, err := solver.Solve(inst)
	if err != nil {
		t.Fatal(err)
	}
	if got := periodic.Solution().Score; got < oracle.Score-1e-9 {
		t.Errorf("post-resolve score %.4f below oracle %.4f", got, oracle.Score)
	}
	if periodic.Solution().Score+1e-9 < incremental.Solution().Score {
		t.Errorf("periodic re-solving (%.4f) lost to pure incremental (%.4f)",
			periodic.Solution().Score, incremental.Solution().Score)
	}
}

func TestDriftTrigger(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := par.Random(rng, par.RandomConfig{Photos: 50, Subsets: 25, BudgetFrac: 0.15})
	m := New(inst, Options{ResolveEvery: 10, DriftFactor: 0.95})
	for _, p := range stream(rng, inst) {
		if _, err := m.Arrive(p); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().Resolves == 0 {
		t.Error("no resolves despite periodic + drift policy")
	}
}

func TestVerdictString(t *testing.T) {
	want := map[Verdict]string{Rejected: "rejected", Admitted: "admitted", Swapped: "swapped", Resolved: "resolved"}
	for v, s := range want {
		if v.String() != s {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), s)
		}
	}
	if Verdict(9).String() != "Verdict(9)" {
		t.Error("unknown verdict string")
	}
}
