// Package dynamic maintains a near-optimal retained set while the archive
// grows — the operational loop around the paper's one-shot optimization.
// New photos keep arriving (new products, new uploads); re-running the full
// solver on every arrival is wasteful, so the Maintainer applies a cheap
// per-arrival swap rule and escalates to a full CELF re-solve only when the
// accumulated drift suggests the incremental decisions have degraded.
//
// The maintainer is built on the staged engine's delta path: it owns a
// *phocus.Prepared and grows it one phocus.Delta at a time through
// Prepared.ApplyDelta, so the instance, its sparsified structure and the
// compiled gain kernels stay warm across arrivals. Every gain the arrival
// rule evaluates runs on the compiled kernel (through Prepared.View), and a
// drift re-solve is simply Prepared.Run — there is no second solve path to
// keep in sync. The older simulation-only model (full instance up front,
// photos "revealed" one at a time) survives as the Feeder in feeder.go,
// which replays a complete instance as a delta stream.
//
// Per-arrival rule: apply the delta, then compute the arrival's marginal
// gain w.r.t. the current retained set. If it fits the leftover budget,
// keep it. Otherwise evict the retained photos with the smallest CURRENT
// marginal value per byte — re-evaluated against the present solution, not
// the gain recorded at their own admission, which submodularity makes a
// stale upper bound — until the arrival fits, and keep the swap only if the
// objective improves. Every ResolveEvery arrivals, or when the incremental
// score falls below DriftFactor × the last full-solve score, Prepared.Run
// resets the state.
package dynamic

import (
	"context"
	"fmt"
	"sort"
	"time"

	"phocus/internal/par"
	"phocus/internal/phocus"
)

// Options tunes the maintainer.
type Options struct {
	// ResolveEvery forces a full re-solve after this many arrivals
	// (0 = never force; default 0).
	ResolveEvery int
	// DriftFactor triggers a re-solve when the maintained score drops
	// below DriftFactor times the score a full solve achieved at the last
	// checkpoint (default 0 = disabled).
	DriftFactor float64
	// Workers bounds the re-solve's parallelism (≤ 0 means one per CPU).
	Workers int
}

// Verdict describes what happened to one arrival.
type Verdict int

const (
	// Rejected: the arrival is archived immediately.
	Rejected Verdict = iota
	// Admitted: the arrival joined the retained set within budget.
	Admitted
	// Swapped: the arrival replaced one or more retained photos.
	Swapped
	// Resolved: the arrival triggered a full re-solve.
	Resolved
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Rejected:
		return "rejected"
	case Admitted:
		return "admitted"
	case Swapped:
		return "swapped"
	case Resolved:
		return "resolved"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Stats counts maintainer activity.
type Stats struct {
	Arrivals, Admitted, Rejected, Swapped, Resolves int
	ResolveTime                                     time.Duration
}

// Maintainer holds the evolving retained set over a delta-maintained
// Prepared. It is not safe for concurrent use.
type Maintainer struct {
	prep   *phocus.Prepared
	budget float64
	opts   Options

	// view/eval are rebuilt after every delta: ApplyDelta renormalizes
	// relevance and extends the kernels in place, so anything derived from
	// the previous instance state is stale.
	view *par.Instance
	eval *par.Evaluator

	sinceResolve     int
	lastResolveScore float64
	stats            Stats
}

// New returns a maintainer over the Prepared with an empty selection (S0
// aside). The budget is the retained-set bound B every decision honours;
// 0 means the instance's full cost (nothing ever needs archiving).
func New(prep *phocus.Prepared, budget float64, opts Options) (*Maintainer, error) {
	m := &Maintainer{prep: prep, budget: budget, opts: opts}
	if err := m.refresh(nil); err != nil {
		return nil, err
	}
	return m, nil
}

// refresh rebuilds the budgeted view and the evaluator, re-adding kept (S0
// is seeded first; duplicates are skipped). The selection is a set, so the
// re-add order does not affect the resulting score.
func (m *Maintainer) refresh(kept []par.PhotoID) error {
	view, err := m.prep.View(m.budget)
	if err != nil {
		return err
	}
	eval := par.NewEvaluator(view)
	eval.Seed()
	for _, p := range kept {
		if !eval.Contains(p) {
			eval.Add(p)
		}
	}
	m.view, m.eval = view, eval
	return nil
}

// Solution returns the current retained set (engine photo IDs).
func (m *Maintainer) Solution() par.Solution { return m.eval.Solution() }

// Score returns the current objective value.
func (m *Maintainer) Score() float64 { return m.eval.Score() }

// Stats returns a copy of the activity counters.
func (m *Maintainer) Stats() Stats { return m.stats }

// Prepared returns the underlying delta-maintained engine instance.
func (m *Maintainer) Prepared() *phocus.Prepared { return m.prep }

// Arrive applies a one-photo growth delta to the Prepared and decides the
// newcomer's fate. The delta must add exactly one photo (its memberships and
// any newly opened subsets ride along) and remove none — removal churn goes
// through Prepared.ApplyDelta directly, followed by Reset.
func (m *Maintainer) Arrive(ctx context.Context, d *phocus.Delta) (Verdict, error) {
	if d == nil || len(d.Add) != 1 || len(d.Remove) != 0 {
		return Rejected, fmt.Errorf("dynamic: Arrive wants exactly one added photo and no removals")
	}
	id := par.PhotoID(m.prep.NumPhotos()) // the engine ID ApplyDelta assigns
	kept := m.eval.Solution().Photos
	if _, err := m.prep.ApplyDelta(ctx, d); err != nil {
		return Rejected, err
	}
	if err := m.refresh(kept); err != nil {
		return Rejected, err
	}
	return m.Consider(ctx, id)
}

// Consider runs the arrival decision for a photo already present in the
// instance but not in the selection — the path for seed photos that were
// never streamed through Arrive, and the second half of Arrive itself.
func (m *Maintainer) Consider(ctx context.Context, id par.PhotoID) (Verdict, error) {
	if id < 0 || int(id) >= m.view.NumPhotos() {
		return Rejected, fmt.Errorf("dynamic: photo %d out of range", id)
	}
	if m.eval.Contains(id) {
		return Rejected, fmt.Errorf("dynamic: photo %d already retained", id)
	}
	m.stats.Arrivals++
	m.sinceResolve++

	if m.shouldResolve() {
		if err := m.resolve(ctx); err != nil {
			return Rejected, err
		}
		return Resolved, nil
	}

	gain := m.eval.Gain(id)
	if m.eval.Fits(id) {
		if gain <= 0 {
			m.stats.Rejected++
			return Rejected, nil
		}
		m.eval.Add(id)
		m.stats.Admitted++
		return Admitted, nil
	}

	// Swap attempt: free room by evicting the photos whose CURRENT marginal
	// value per byte is smallest. The marginal is re-evaluated here — the
	// kernel-backed evaluator makes score(S \ {r}) cheap enough — because a
	// gain recorded at admission time is only an upper bound on what the
	// photo contributes today (later admissions may cover it completely).
	current := m.eval.Solution()
	type cand struct {
		id      par.PhotoID
		density float64
	}
	var cands []cand
	for _, r := range current.Photos {
		if m.view.IsRetained(r) {
			continue // S0 is not evictable
		}
		without := par.NewEvaluator(m.view)
		without.Seed()
		for _, o := range current.Photos {
			if o != r && !without.Contains(o) {
				without.Add(o)
			}
		}
		loss := current.Score - without.Score()
		cands = append(cands, cand{id: r, density: loss / m.view.Cost[r]})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].density < cands[j].density })

	needed := m.view.Cost[id] - (m.view.Budget - current.Cost)
	var evict []par.PhotoID
	var freed float64
	for _, c := range cands {
		if freed >= needed {
			break
		}
		evict = append(evict, c.id)
		freed += m.view.Cost[c.id]
	}
	if freed < needed {
		m.stats.Rejected++
		return Rejected, nil
	}
	evictSet := make(map[par.PhotoID]bool, len(evict))
	for _, r := range evict {
		evictSet[r] = true
	}
	trial := par.NewEvaluator(m.view)
	trial.Seed()
	for _, r := range current.Photos {
		if !evictSet[r] && !trial.Contains(r) {
			trial.Add(r)
		}
	}
	if !trial.Fits(id) {
		m.stats.Rejected++
		return Rejected, nil
	}
	trial.Add(id)
	if trial.Score() <= current.Score {
		m.stats.Rejected++
		return Rejected, nil
	}
	m.eval = trial
	m.stats.Swapped++
	return Swapped, nil
}

// Reset rebuilds the maintainer's state after out-of-band churn on the
// Prepared (removals, batch deltas applied directly). Photos in the current
// selection that no longer exist or were husked are dropped.
func (m *Maintainer) Reset() error {
	kept := m.eval.Solution().Photos
	if err := m.refresh(nil); err != nil {
		return err
	}
	for _, p := range kept {
		if int(p) < m.view.NumPhotos() && !m.eval.Contains(p) && m.eval.Fits(p) && m.eval.Gain(p) > 0 {
			m.eval.Add(p)
		}
	}
	return nil
}

// shouldResolve applies the escalation policy.
func (m *Maintainer) shouldResolve() bool {
	if m.opts.ResolveEvery > 0 && m.sinceResolve >= m.opts.ResolveEvery {
		return true
	}
	if m.opts.DriftFactor > 0 && m.lastResolveScore > 0 {
		return m.eval.Score() < m.opts.DriftFactor*m.lastResolveScore
	}
	return false
}

// Resolve forces a full re-solve: one Prepared.Run over the current
// delta-maintained instance, on the compiled kernels.
func (m *Maintainer) Resolve(ctx context.Context) error { return m.resolve(ctx) }

func (m *Maintainer) resolve(ctx context.Context) error {
	start := time.Now()
	res, err := m.prep.Run(ctx, phocus.RunOptions{
		Budget:    m.budget,
		Algorithm: phocus.AlgoCELF,
		SkipBound: true,
		Workers:   m.opts.Workers,
	})
	if err != nil {
		return err
	}
	if err := m.refresh(res.Solution.Photos); err != nil {
		return err
	}
	m.sinceResolve = 0
	m.lastResolveScore = m.eval.Score()
	m.stats.Resolves++
	m.stats.ResolveTime += time.Since(start)
	return nil
}
