// Package dynamic maintains a near-optimal retained set while the archive
// grows — the operational loop around the paper's one-shot optimization.
// New photos keep arriving (new products, new uploads); re-running the full
// solver on every arrival is wasteful, so the Maintainer applies a cheap
// per-arrival swap rule and escalates to a full CELF re-solve only when the
// accumulated drift suggests the incremental decisions have degraded.
//
// The simulation model: the complete instance (all photos that will ever
// exist, with their subset memberships) is built up front, and photos are
// revealed to the maintainer one at a time. The maintainer only ever reads
// revealed photos, so its decisions are exactly those of an online system.
//
// Per-arrival rule: compute the arrival's marginal gain w.r.t. the current
// retained set. If it fits the leftover budget, keep it. Otherwise evict
// the lowest-density retained photos (by gain recorded at their own
// admission — a heuristic; submodularity only makes those records upper
// bounds) until the arrival fits, and keep the swap only if it improves
// the objective. Every ResolveEvery arrivals, or when the incremental
// score falls below DriftFactor × the last full-solve score trajectory, a
// full re-solve over all revealed photos resets the state.
package dynamic

import (
	"fmt"
	"sort"
	"time"

	"phocus/internal/celf"
	"phocus/internal/par"
)

// Options tunes the maintainer.
type Options struct {
	// ResolveEvery forces a full re-solve after this many arrivals
	// (0 = never force; default 0).
	ResolveEvery int
	// DriftFactor triggers a re-solve when the maintained score drops
	// below DriftFactor times the score a full solve achieved at the last
	// checkpoint, scaled by revealed growth (default 0 = disabled).
	DriftFactor float64
}

// Verdict describes what happened to one arrival.
type Verdict int

const (
	// Rejected: the arrival is archived immediately.
	Rejected Verdict = iota
	// Admitted: the arrival joined the retained set within budget.
	Admitted
	// Swapped: the arrival replaced one or more retained photos.
	Swapped
	// Resolved: the arrival triggered a full re-solve.
	Resolved
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Rejected:
		return "rejected"
	case Admitted:
		return "admitted"
	case Swapped:
		return "swapped"
	case Resolved:
		return "resolved"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Stats counts maintainer activity.
type Stats struct {
	Arrivals, Admitted, Rejected, Swapped, Resolves int
	ResolveTime                                     time.Duration
}

// Maintainer holds the evolving retained set.
type Maintainer struct {
	inst     *par.Instance
	opts     Options
	revealed []bool
	eval     *par.Evaluator
	// admissionDensity records gain/cost at admission time per retained
	// photo; the eviction heuristic targets the smallest.
	admissionDensity map[par.PhotoID]float64
	sinceResolve     int
	lastResolveScore float64
	stats            Stats
}

// New returns a maintainer over the (finalized) full instance with nothing
// revealed. Retained photos (S0) are treated as revealed and always kept.
func New(inst *par.Instance, opts Options) *Maintainer {
	m := &Maintainer{
		inst:             inst,
		opts:             opts,
		revealed:         make([]bool, inst.NumPhotos()),
		eval:             par.NewEvaluator(inst),
		admissionDensity: make(map[par.PhotoID]float64),
	}
	m.eval.Seed()
	for _, p := range inst.Retained {
		m.revealed[p] = true
	}
	return m
}

// Solution returns the current retained set.
func (m *Maintainer) Solution() par.Solution { return m.eval.Solution() }

// Stats returns a copy of the activity counters.
func (m *Maintainer) Stats() Stats { return m.stats }

// Arrive reveals photo p and decides its fate.
func (m *Maintainer) Arrive(p par.PhotoID) (Verdict, error) {
	if p < 0 || int(p) >= m.inst.NumPhotos() {
		return Rejected, fmt.Errorf("dynamic: photo %d out of range", p)
	}
	if m.revealed[p] {
		return Rejected, fmt.Errorf("dynamic: photo %d already arrived", p)
	}
	m.revealed[p] = true
	m.stats.Arrivals++
	m.sinceResolve++

	if m.shouldResolve() {
		if err := m.resolve(); err != nil {
			return Rejected, err
		}
		return Resolved, nil
	}

	gain := m.eval.Gain(p)
	if m.eval.Fits(p) {
		if gain <= 0 {
			m.stats.Rejected++
			return Rejected, nil
		}
		m.admissionDensity[p] = gain / m.inst.Cost[p]
		m.eval.Add(p)
		m.stats.Admitted++
		return Admitted, nil
	}

	// Swap attempt: free room by evicting the lowest admission-density
	// photos, then keep the swap only if the objective improved.
	current := m.eval.Solution()
	kept := make([]par.PhotoID, len(current.Photos))
	copy(kept, current.Photos)
	sort.Slice(kept, func(i, j int) bool {
		return m.admissionDensity[kept[i]] < m.admissionDensity[kept[j]]
	})
	needed := m.inst.Cost[p] - (m.inst.Budget - current.Cost)
	var evict []par.PhotoID
	var freed float64
	for _, r := range kept {
		if freed >= needed {
			break
		}
		if m.inst.IsRetained(r) {
			continue // S0 is not evictable
		}
		evict = append(evict, r)
		freed += m.inst.Cost[r]
	}
	if freed < needed {
		m.stats.Rejected++
		return Rejected, nil
	}
	evictSet := make(map[par.PhotoID]bool, len(evict))
	for _, r := range evict {
		evictSet[r] = true
	}
	trial := par.NewEvaluator(m.inst)
	for _, r := range current.Photos {
		if !evictSet[r] {
			trial.Add(r)
		}
	}
	trialGain := trial.Gain(p)
	trial.Add(p)
	if trial.Score() <= current.Score {
		m.stats.Rejected++
		return Rejected, nil
	}
	for _, r := range evict {
		delete(m.admissionDensity, r)
	}
	m.admissionDensity[p] = trialGain / m.inst.Cost[p]
	m.eval = trial
	m.stats.Swapped++
	return Swapped, nil
}

// shouldResolve applies the escalation policy.
func (m *Maintainer) shouldResolve() bool {
	if m.opts.ResolveEvery > 0 && m.sinceResolve >= m.opts.ResolveEvery {
		return true
	}
	if m.opts.DriftFactor > 0 && m.lastResolveScore > 0 {
		return m.eval.Score() < m.opts.DriftFactor*m.lastResolveScore
	}
	return false
}

// Resolve forces a full CELF re-solve over the revealed photos.
func (m *Maintainer) Resolve() error { return m.resolve() }

func (m *Maintainer) resolve() error {
	start := time.Now()
	sub := m.revealedInstance()
	var solver celf.Solver
	sol, err := solver.Solve(sub)
	if err != nil {
		return err
	}
	// Rebuild the evaluator over the FULL instance with the chosen photos
	// (IDs coincide: revealedInstance preserves photo IDs).
	eval := par.NewEvaluator(m.inst)
	m.admissionDensity = make(map[par.PhotoID]float64, len(sol.Photos))
	for _, p := range sol.Photos {
		g := eval.Gain(p)
		eval.Add(p)
		m.admissionDensity[p] = g / m.inst.Cost[p]
	}
	m.eval = eval
	m.sinceResolve = 0
	m.lastResolveScore = eval.Score()
	m.stats.Resolves++
	m.stats.ResolveTime += time.Since(start)
	return nil
}

// revealedInstance restricts the full instance to revealed photos while
// keeping photo IDs stable: subset memberships are trimmed to revealed
// members, and unrevealed photos are additionally made unaffordable (cost
// above the budget) so no solver can select them.
func (m *Maintainer) revealedInstance() *par.Instance {
	cost := make([]float64, m.inst.NumPhotos())
	copy(cost, m.inst.Cost)
	for p := range cost {
		if !m.revealed[p] {
			cost[p] = m.inst.Budget * 10 // can never fit
		}
	}
	sub := &par.Instance{
		Cost:     cost,
		Retained: m.inst.Retained,
		Budget:   m.inst.Budget,
	}
	for qi := range m.inst.Subsets {
		q := &m.inst.Subsets[qi]
		var members []par.PhotoID
		var rel []float64
		var idx []int
		for mi, p := range q.Members {
			if m.revealed[p] {
				members = append(members, p)
				rel = append(rel, q.Relevance[mi])
				idx = append(idx, mi)
			}
		}
		if len(members) == 0 {
			continue
		}
		sub.Subsets = append(sub.Subsets, par.Subset{
			Name:      q.Name,
			Weight:    q.Weight,
			Members:   members,
			Relevance: rel,
			Sim:       remapSim{orig: q.Sim, idx: idx},
		})
	}
	sub.NormalizeRelevance()
	if err := sub.Finalize(); err != nil {
		// The restriction of a valid instance is valid by construction;
		// a failure here is a programming error.
		panic("dynamic: revealed restriction invalid: " + err.Error())
	}
	return sub
}

// remapSim views a subset of another similarity's members.
type remapSim struct {
	orig par.Similarity
	idx  []int
}

// Len implements par.Similarity.
func (r remapSim) Len() int { return len(r.idx) }

// Sim implements par.Similarity.
func (r remapSim) Sim(i, j int) float64 { return r.orig.Sim(r.idx[i], r.idx[j]) }
