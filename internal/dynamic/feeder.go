// The Feeder replays a complete instance as an arrival stream — the
// simulation model the pre-delta maintainer hard-coded (full instance built
// up front, photos revealed one at a time), reconstructed as a driver on
// top of the engine's delta path. It owns the mapping between the original
// instance's photo/subset numbering and the engine's dense arrival-order
// numbering, and converts each reveal into the phocus.Delta the maintainer
// applies: memberships into already-revealed subsets carry the original
// relevance re-based onto the current normalized scale (so the revealed
// engine instance's relevance distribution always matches the original
// restricted to revealed members), similarities are read off the original
// structure for live revealed members, and a membership whose subset has no
// revealed members yet opens the subset via NewSubsets instead.

package dynamic

import (
	"fmt"
	"sort"

	"phocus/internal/dataset"
	"phocus/internal/par"
	"phocus/internal/phocus"
)

// Feeder converts a finalized complete instance into a seed dataset plus a
// stream of one-photo deltas. Zero-relevance memberships are dropped (the
// delta wire format requires positive mass; they contribute nothing to the
// objective's relevance side).
type Feeder struct {
	full     *par.Instance
	revealed []bool
	toEngine []int         // original photo -> engine ID, -1 unrevealed
	toOrig   []par.PhotoID // engine ID -> original photo
	subEng   []int         // original subset -> engine subset, -1 unrevealed
	engSubs  int
	seedLen  int       // engine IDs below this came from the seed
	relSum   []float64 // per original subset: Σ original relevance revealed
}

// NewFeeder builds the feeder and the seed dataset over the union of the
// instance's retained photos and the given seed photos (in that order,
// deduplicated — engine IDs follow it). The seed must give at least one
// subset a revealed member with positive relevance, since an instance with
// no subsets cannot be prepared. full must be finalized.
func NewFeeder(full *par.Instance, seed []par.PhotoID) (*Feeder, *dataset.Dataset, error) {
	n := full.NumPhotos()
	f := &Feeder{
		full:     full,
		revealed: make([]bool, n),
		toEngine: make([]int, n),
		subEng:   make([]int, len(full.Subsets)),
		relSum:   make([]float64, len(full.Subsets)),
	}
	for i := range f.toEngine {
		f.toEngine[i] = -1
	}
	for i := range f.subEng {
		f.subEng[i] = -1
	}
	reveal := func(p par.PhotoID) error {
		if p < 0 || int(p) >= n {
			return fmt.Errorf("dynamic: seed photo %d out of range", p)
		}
		if !f.revealed[p] {
			f.revealed[p] = true
			f.toEngine[p] = len(f.toOrig)
			f.toOrig = append(f.toOrig, p)
		}
		return nil
	}
	for _, p := range full.Retained {
		if err := reveal(p); err != nil {
			return nil, nil, err
		}
	}
	for _, p := range seed {
		if err := reveal(p); err != nil {
			return nil, nil, err
		}
	}
	if len(f.toOrig) == 0 {
		return nil, nil, fmt.Errorf("dynamic: empty seed")
	}

	inst := &par.Instance{Cost: make([]float64, len(f.toOrig))}
	for e, p := range f.toOrig {
		inst.Cost[e] = full.Cost[p]
	}
	for _, p := range full.Retained {
		inst.Retained = append(inst.Retained, par.PhotoID(f.toEngine[p]))
	}
	for qi := range full.Subsets {
		q := &full.Subsets[qi]
		var idx []int
		var members []par.PhotoID
		var rel []float64
		for mi, p := range q.Members {
			if f.revealed[p] && q.Relevance[mi] > 0 {
				idx = append(idx, mi)
				members = append(members, par.PhotoID(f.toEngine[p]))
				rel = append(rel, q.Relevance[mi])
				f.relSum[qi] += q.Relevance[mi]
			}
		}
		if len(members) == 0 {
			continue
		}
		for i := range rel {
			rel[i] /= f.relSum[qi]
		}
		f.subEng[qi] = f.engSubs
		f.engSubs++
		inst.Subsets = append(inst.Subsets, par.Subset{
			Name:      q.Name,
			Weight:    q.Weight,
			Members:   members,
			Relevance: rel,
			Sim:       remapSim{orig: q.Sim, idx: idx},
		})
	}
	if f.engSubs == 0 {
		return nil, nil, fmt.Errorf("dynamic: seed covers no subset with positive relevance")
	}
	inst.Budget = inst.TotalCost()
	f.seedLen = len(f.toOrig)
	return f, &dataset.Dataset{Instance: inst}, nil
}

// Reveal marks the photo revealed and returns the one-photo delta that
// brings the engine instance in sync. The delta MUST then be applied (the
// feeder's bookkeeping assumes it): hand it to Maintainer.Arrive or
// Prepared.ApplyDelta.
func (f *Feeder) Reveal(p par.PhotoID) (*phocus.Delta, error) {
	if p < 0 || int(p) >= f.full.NumPhotos() {
		return nil, fmt.Errorf("dynamic: photo %d out of range", p)
	}
	if f.revealed[p] {
		return nil, fmt.Errorf("dynamic: photo %d already arrived", p)
	}
	f.revealed[p] = true
	engineID := par.PhotoID(len(f.toOrig))
	f.toEngine[p] = int(engineID)
	f.toOrig = append(f.toOrig, p)

	ap := phocus.DeltaPhoto{Cost: f.full.Cost[p]}
	d := &phocus.Delta{}
	for _, oc := range f.full.Occurrences(p) {
		q := &f.full.Subsets[oc.Subset]
		r := q.Relevance[oc.Index]
		if r <= 0 {
			continue
		}
		if eq := f.subEng[oc.Subset]; eq >= 0 {
			mem := phocus.DeltaMembership{Subset: eq, Relevance: r / f.relSum[oc.Subset]}
			for mj, other := range q.Members {
				if mj == oc.Index || !f.revealed[other] || f.toEngine[other] < 0 ||
					par.PhotoID(f.toEngine[other]) == engineID || q.Relevance[mj] <= 0 {
					continue
				}
				if s := q.Sim.Sim(oc.Index, mj); s > 0 {
					mem.Neighbors = append(mem.Neighbors, phocus.DeltaNeighbor{
						Photo: par.PhotoID(f.toEngine[other]), Sim: s,
					})
				}
			}
			ap.Memberships = append(ap.Memberships, mem)
		} else {
			f.subEng[oc.Subset] = f.engSubs
			f.engSubs++
			d.NewSubsets = append(d.NewSubsets, phocus.DeltaSubset{
				Name:    q.Name,
				Weight:  q.Weight,
				Members: []phocus.DeltaSubsetMember{{Photo: engineID, Relevance: r}},
			})
		}
		f.relSum[oc.Subset] += r
	}
	// Memberships must arrive in ascending engine-subset order; subsets were
	// opened in reveal order, which need not follow the original numbering.
	sort.Slice(ap.Memberships, func(i, j int) bool {
		return ap.Memberships[i].Subset < ap.Memberships[j].Subset
	})
	d.Add = []phocus.DeltaPhoto{ap}
	return d, nil
}

// EngineID returns the engine photo ID of an original photo, or -1 if it
// has not been revealed.
func (f *Feeder) EngineID(p par.PhotoID) par.PhotoID {
	if p < 0 || int(p) >= len(f.toEngine) {
		return -1
	}
	return par.PhotoID(f.toEngine[p])
}

// Orig maps engine photo IDs back to the original numbering.
func (f *Feeder) Orig(ids []par.PhotoID) []par.PhotoID {
	out := make([]par.PhotoID, len(ids))
	for i, id := range ids {
		out[i] = f.toOrig[id]
	}
	return out
}

// SeedIDs returns the engine IDs of the seed photos that are not retained —
// the ones a driver should still run through Maintainer.Consider so every
// photo gets an admission decision.
func (f *Feeder) SeedIDs() []par.PhotoID {
	var out []par.PhotoID
	for e, p := range f.toOrig[:f.seedLen] {
		if !f.full.IsRetained(p) {
			out = append(out, par.PhotoID(e))
		}
	}
	return out
}

// remapSim views a subset of another similarity's members.
type remapSim struct {
	orig par.Similarity
	idx  []int
}

// Len implements par.Similarity.
func (r remapSim) Len() int { return len(r.idx) }

// Sim implements par.Similarity.
func (r remapSim) Sim(i, j int) float64 { return r.orig.Sim(r.idx[i], r.idx[j]) }
