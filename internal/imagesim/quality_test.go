package imagesim

import (
	"math/rand"
	"testing"
)

func fill(im *Image, p RGB) {
	for i := range im.Pixels {
		im.Pixels[i] = p
	}
}

func TestQualityScoreRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		m := NewCategoryModel(rng, "q")
		ph := m.Generate(rng, trial, DefaultGenConfig())
		q := QualityScore(ph.Image)
		if q < 0 || q > 1 {
			t.Fatalf("quality %g outside [0,1]", q)
		}
	}
}

func TestQualityScoreDegenerates(t *testing.T) {
	black := NewImage(16, 16)
	if q := QualityScore(black); q > 0.1 {
		t.Errorf("all-black image quality = %g, want near 0", q)
	}
	white := NewImage(16, 16)
	fill(white, RGB{255, 255, 255})
	if q := QualityScore(white); q > 0.1 {
		t.Errorf("blown-out image quality = %g, want near 0", q)
	}
}

func TestQualityScoreOrdering(t *testing.T) {
	// A mid-gray image with strong structure beats a flat mid-gray one.
	flat := NewImage(16, 16)
	fill(flat, RGB{128, 128, 128})

	structured := NewImage(16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			if (x/2+y/2)%2 == 0 {
				structured.Set(x, y, RGB{64, 64, 64})
			} else {
				structured.Set(x, y, RGB{192, 192, 192})
			}
		}
	}
	qf, qs := QualityScore(flat), QualityScore(structured)
	if qs <= qf {
		t.Errorf("structured image (%g) should outscore flat (%g)", qs, qf)
	}
	if qs < 0.6 {
		t.Errorf("well-exposed structured image quality = %g, want high", qs)
	}
}

func TestQualityScoreTinyImage(t *testing.T) {
	// 2×2 images have no interior pixels for the sharpness pass; the score
	// must still be defined.
	im := NewImage(2, 2)
	fill(im, RGB{128, 128, 128})
	if q := QualityScore(im); q < 0 || q > 1 {
		t.Errorf("tiny image quality %g outside [0,1]", q)
	}
}
