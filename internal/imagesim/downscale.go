package imagesim

// Downscale returns the image reduced by an integer factor using box
// filtering (each output pixel averages a factor×factor block). It is the
// pixel-level ground truth behind the compression extension: a downscaled
// photo costs less under the size model and drifts away from the original
// in feature space, and both effects can be measured instead of assumed.
func Downscale(im *Image, factor int) *Image {
	if factor <= 1 {
		clone := NewImage(im.Width, im.Height)
		copy(clone.Pixels, im.Pixels)
		return clone
	}
	w := im.Width / factor
	h := im.Height / factor
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	out := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var r, g, b, n float64
			for dy := 0; dy < factor; dy++ {
				for dx := 0; dx < factor; dx++ {
					sx := x*factor + dx
					sy := y*factor + dy
					if sx >= im.Width || sy >= im.Height {
						continue
					}
					p := im.At(sx, sy)
					r += float64(p.R)
					g += float64(p.G)
					b += float64(p.B)
					n++
				}
			}
			out.Set(x, y, RGB{
				R: clampByte(r / n),
				G: clampByte(g / n),
				B: clampByte(b / n),
			})
		}
	}
	return out
}

// Upscale returns the image enlarged by an integer factor using nearest-
// neighbour replication. Comparing a photo with its down-then-up-scaled
// round trip in the SAME feature space is how compression fidelity is
// measured (feature layouts are resolution-dependent, so the round trip
// restores comparability).
func Upscale(im *Image, factor int) *Image {
	if factor <= 1 {
		clone := NewImage(im.Width, im.Height)
		copy(clone.Pixels, im.Pixels)
		return clone
	}
	out := NewImage(im.Width*factor, im.Height*factor)
	for y := 0; y < out.Height; y++ {
		for x := 0; x < out.Width; x++ {
			out.Set(x, y, im.At(x/factor, y/factor))
		}
	}
	return out
}
