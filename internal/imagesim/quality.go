package imagesim

import "math"

// QualityScore rates a photo's visual quality in [0, 1]. Section 5.1 of the
// paper computes relevance "based both on the quality of the image (using
// [an] ML model ...) and the relevance score of the product"; this is the
// classical-feature stand-in for that quality model. Three ingredients,
// each mapped to [0, 1] and averaged:
//
//   - exposure: mean luminance near mid-gray scores high, crushed blacks or
//     blown highlights score low;
//   - contrast: luminance standard deviation, saturating at ~64 levels;
//   - sharpness: mean gradient magnitude, saturating at ~32 levels/pixel.
func QualityScore(im *Image) float64 {
	n := float64(len(im.Pixels))
	var sum, sumSq float64
	for _, p := range im.Pixels {
		l := p.Luminance()
		sum += l
		sumSq += l * l
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	std := math.Sqrt(variance)

	// Exposure: triangular score peaking at mid-gray (127.5).
	exposure := 1 - math.Abs(mean-127.5)/127.5

	// Contrast: saturating ramp.
	contrast := std / 64
	if contrast > 1 {
		contrast = 1
	}

	// Sharpness: mean central-difference gradient magnitude.
	var grad float64
	var cnt float64
	for y := 1; y < im.Height-1; y++ {
		for x := 1; x < im.Width-1; x++ {
			gx := im.At(x+1, y).Luminance() - im.At(x-1, y).Luminance()
			gy := im.At(x, y+1).Luminance() - im.At(x, y-1).Luminance()
			grad += math.Hypot(gx, gy)
			cnt++
		}
	}
	sharpness := 0.0
	if cnt > 0 {
		sharpness = grad / cnt / 32
		if sharpness > 1 {
			sharpness = 1
		}
	}
	return (exposure + contrast + sharpness) / 3
}
