package imagesim

import (
	"fmt"
	"math"
	"math/rand"
)

// CategoryModel is a generative model for one visual category ("Bikes",
// "Running Shoes", ...): a base color palette, a texture frequency, and a
// characteristic shape. Photos drawn from the same category share palette
// and structure and therefore land close in feature space; distinct
// categories are far apart.
type CategoryModel struct {
	Name string
	// base color in [0,255] per channel
	baseR, baseG, baseB float64
	// texture parameters
	freqX, freqY float64
	phase        float64
	// shape: ellipse center/radii in relative coordinates
	shapeCX, shapeCY, shapeRX, shapeRY float64
	shapeR, shapeG, shapeB             float64
}

// NewCategoryModel draws a random category model.
func NewCategoryModel(rng *rand.Rand, name string) *CategoryModel {
	return &CategoryModel{
		Name:    name,
		baseR:   40 + 175*rng.Float64(),
		baseG:   40 + 175*rng.Float64(),
		baseB:   40 + 175*rng.Float64(),
		freqX:   1 + 5*rng.Float64(),
		freqY:   1 + 5*rng.Float64(),
		phase:   2 * math.Pi * rng.Float64(),
		shapeCX: 0.3 + 0.4*rng.Float64(),
		shapeCY: 0.3 + 0.4*rng.Float64(),
		shapeRX: 0.1 + 0.25*rng.Float64(),
		shapeRY: 0.1 + 0.25*rng.Float64(),
		shapeR:  40 + 175*rng.Float64(),
		shapeG:  40 + 175*rng.Float64(),
		shapeB:  40 + 175*rng.Float64(),
	}
}

// GenConfig controls photo generation.
type GenConfig struct {
	Width, Height int
	// Noise is the per-pixel Gaussian noise amplitude (0-255 scale);
	// it controls intra-category visual spread.
	Noise float64
	// Cameras is the pool of camera strings for EXIF.
	Cameras []string
}

// DefaultGenConfig renders 32×32 photos with moderate noise.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Width: 32, Height: 32, Noise: 14,
		Cameras: []string{"NX-100", "AlphaPro 7", "PixelSnap", "M50 Mark II"},
	}
}

// Generate draws one photo from the category: the category's texture and
// shape plus instance-level jitter (shift, scale, noise) so photos of the
// same category are similar but not identical.
func (m *CategoryModel) Generate(rng *rand.Rand, id int, cfg GenConfig) *Photo {
	im := NewImage(cfg.Width, cfg.Height)
	jx := 0.1 * rng.NormFloat64()
	jy := 0.1 * rng.NormFloat64()
	jscale := 1 + 0.15*rng.NormFloat64()
	for y := 0; y < cfg.Height; y++ {
		for x := 0; x < cfg.Width; x++ {
			u := float64(x) / float64(cfg.Width)
			v := float64(y) / float64(cfg.Height)
			tex := 30 * math.Sin(2*math.Pi*(m.freqX*u+m.freqY*v)+m.phase)
			r := m.baseR + tex
			g := m.baseG + tex
			b := m.baseB + tex
			dx := (u - m.shapeCX - jx) / (m.shapeRX * jscale)
			dy := (v - m.shapeCY - jy) / (m.shapeRY * jscale)
			if dx*dx+dy*dy <= 1 {
				r, g, b = m.shapeR, m.shapeG, m.shapeB
			}
			r += cfg.Noise * rng.NormFloat64()
			g += cfg.Noise * rng.NormFloat64()
			b += cfg.Noise * rng.NormFloat64()
			im.Set(x, y, RGB{clampByte(r), clampByte(g), clampByte(b)})
		}
	}
	ph := &Photo{
		ID:    id,
		Image: im,
		EXIF: EXIF{
			UnixTime:  1_600_000_000 + rng.Int63n(100_000_000),
			Latitude:  -60 + 120*rng.Float64(),
			Longitude: -180 + 360*rng.Float64(),
			Camera:    cfg.Cameras[rng.Intn(len(cfg.Cameras))],
		},
	}
	ph.SizeBytes = EstimateJPEGSize(im)
	return ph
}

// EstimateJPEGSize models a photo's storage cost from its information
// content: a fixed header plus bytes proportional to pixel count times the
// luminance entropy (JPEG spends more bits on busier images). For 32×32
// synthetic photos the range is scaled up to the 0.5–2.5 MB regime of the
// paper's datasets, as if the raster were a thumbnail of a full-resolution
// photo.
func EstimateJPEGSize(im *Image) float64 {
	const (
		header        = 20_000.0  // bytes
		bytesPerPxBit = 250.0     // thumbnail pixel × entropy bit → full-res bytes
		floor         = 300_000.0 // no photo below 0.3 MB
	)
	entropy := LuminanceEntropy(im)
	size := header + bytesPerPxBit*entropy*float64(len(im.Pixels))
	if size < floor {
		size = floor
	}
	return size
}

func clampByte(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// Collection generates count photos spread over the categories in
// round-robin-free random proportion given by weights (nil for uniform).
// It is a convenience for tests and the tagging substrate; the dataset
// package drives Generate directly with its own label machinery.
func Collection(rng *rand.Rand, cats []*CategoryModel, count int, weights []float64, cfg GenConfig) ([]*Photo, error) {
	if len(cats) == 0 {
		return nil, fmt.Errorf("imagesim: no categories")
	}
	if weights != nil && len(weights) != len(cats) {
		return nil, fmt.Errorf("imagesim: %d weights for %d categories", len(weights), len(cats))
	}
	cum := make([]float64, len(cats))
	total := 0.0
	for i := range cats {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		if w < 0 {
			return nil, fmt.Errorf("imagesim: negative weight")
		}
		total += w
		cum[i] = total
	}
	if total == 0 {
		return nil, fmt.Errorf("imagesim: zero total weight")
	}
	photos := make([]*Photo, count)
	for i := range photos {
		r := rng.Float64() * total
		ci := 0
		for ci < len(cum)-1 && r > cum[ci] {
			ci++
		}
		photos[i] = cats[ci].Generate(rng, i, cfg)
		photos[i].Category = ci
	}
	return photos, nil
}
