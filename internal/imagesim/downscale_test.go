package imagesim

import (
	"math/rand"
	"testing"

	"phocus/internal/embed"
)

func TestDownscaleDimensions(t *testing.T) {
	im := NewImage(32, 32)
	small := Downscale(im, 4)
	if small.Width != 8 || small.Height != 8 {
		t.Fatalf("downscaled to %dx%d, want 8x8", small.Width, small.Height)
	}
	// Factor 1 and below clone.
	same := Downscale(im, 1)
	if same.Width != 32 || same == im {
		t.Error("factor 1 should clone, not alias")
	}
	// Degenerate factor larger than the image collapses to 1x1.
	tiny := Downscale(im, 64)
	if tiny.Width != 1 || tiny.Height != 1 {
		t.Fatalf("over-downscale gave %dx%d", tiny.Width, tiny.Height)
	}
}

func TestDownscaleAverages(t *testing.T) {
	im := NewImage(2, 2)
	im.Set(0, 0, RGB{0, 0, 0})
	im.Set(1, 0, RGB{100, 100, 100})
	im.Set(0, 1, RGB{100, 100, 100})
	im.Set(1, 1, RGB{200, 200, 200})
	small := Downscale(im, 2)
	if got := small.At(0, 0); got != (RGB{100, 100, 100}) {
		t.Errorf("box average = %v, want {100 100 100}", got)
	}
}

func TestUpscaleReplicates(t *testing.T) {
	im := NewImage(2, 1)
	im.Set(0, 0, RGB{10, 10, 10})
	im.Set(1, 0, RGB{20, 20, 20})
	big := Upscale(im, 3)
	if big.Width != 6 || big.Height != 3 {
		t.Fatalf("upscaled to %dx%d", big.Width, big.Height)
	}
	if big.At(2, 2) != (RGB{10, 10, 10}) || big.At(3, 0) != (RGB{20, 20, 20}) {
		t.Error("nearest-neighbour replication wrong")
	}
	if same := Upscale(im, 1); same.Width != 2 || same == im {
		t.Error("factor 1 should clone, not alias")
	}
}

// Downscaling must shrink the size model's estimate and keep the round trip
// recognizable in feature space — the two quantities CalibrateLevel uses.
func TestDownscaleSizeAndFidelity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewCategoryModel(rng, "cal")
	cfg := DefaultGenConfig()
	ecfg := DefaultEmbeddingConfig()
	ph := m.Generate(rng, 0, cfg)
	small := Downscale(ph.Image, 2)
	if EstimateJPEGSize(small) >= EstimateJPEGSize(ph.Image) {
		t.Error("downscaled image not cheaper under the size model")
	}
	restored := Upscale(small, 2)
	fidelity := embed.CosineSim01(Embedding(ph.Image, ecfg), Embedding(restored, ecfg))
	if fidelity < 0.6 {
		t.Errorf("2x round-trip fidelity %.3f implausibly low", fidelity)
	}
	if fidelity >= 1 {
		t.Errorf("2x round-trip fidelity %.3f lost nothing; downscale is a no-op", fidelity)
	}
}
