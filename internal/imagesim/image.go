// Package imagesim is the synthetic photo substrate standing in for the
// paper's real image collections (Open Images and the XYZ product archive).
// It generates raster images from category models, extracts the classical
// features the paper's Data Representation Module relies on — color
// histograms, gradient-orientation descriptors in the spirit of SIFT visual
// words, EXIF-like metadata — and models each photo's storage cost with an
// entropy-based JPEG size estimate. Downstream, internal/dataset composes
// these pieces into PAR instances and internal/tagging uses the features
// for automatic subset derivation.
package imagesim

import "fmt"

// RGB is one 8-bit pixel.
type RGB struct {
	R, G, B uint8
}

// Image is a dense raster.
type Image struct {
	Width, Height int
	Pixels        []RGB // row-major
}

// NewImage allocates a black image.
func NewImage(width, height int) *Image {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("imagesim: invalid dimensions %dx%d", width, height))
	}
	return &Image{Width: width, Height: height, Pixels: make([]RGB, width*height)}
}

// At returns the pixel at (x, y).
func (im *Image) At(x, y int) RGB { return im.Pixels[y*im.Width+x] }

// Set writes the pixel at (x, y).
func (im *Image) Set(x, y int, p RGB) { im.Pixels[y*im.Width+x] = p }

// Luminance returns the Rec. 601 luma of a pixel in [0, 255].
func (p RGB) Luminance() float64 {
	return 0.299*float64(p.R) + 0.587*float64(p.G) + 0.114*float64(p.B)
}

// EXIF is the metadata block attached to a photo. The attributes mirror the
// ones the paper mentions reading for similarity features (Section 5.1):
// capture time, location and camera.
type EXIF struct {
	// UnixTime is the capture timestamp in seconds.
	UnixTime int64
	// Latitude and Longitude locate the capture.
	Latitude, Longitude float64
	// Camera is the camera model string.
	Camera string
}

// Photo couples an image with its metadata and storage cost.
type Photo struct {
	ID        int
	Image     *Image
	EXIF      EXIF
	SizeBytes float64
	// Category is the index of the generating category model; generators
	// record it so dataset builders can derive labels, and tagging
	// evaluates against it as ground truth.
	Category int
}
