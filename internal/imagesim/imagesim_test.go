package imagesim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"phocus/internal/embed"
)

func TestImageBasics(t *testing.T) {
	im := NewImage(4, 3)
	if len(im.Pixels) != 12 {
		t.Fatalf("pixel buffer %d, want 12", len(im.Pixels))
	}
	im.Set(3, 2, RGB{R: 10, G: 20, B: 30})
	if got := im.At(3, 2); got != (RGB{10, 20, 30}) {
		t.Errorf("At(3,2) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewImage(0,1) should panic")
		}
	}()
	NewImage(0, 1)
}

func TestLuminance(t *testing.T) {
	if got := (RGB{255, 255, 255}).Luminance(); math.Abs(got-255) > 1e-9 {
		t.Errorf("white luminance = %g", got)
	}
	if got := (RGB{}).Luminance(); got != 0 {
		t.Errorf("black luminance = %g", got)
	}
}

func TestColorHistogramNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewCategoryModel(rng, "cat")
	ph := m.Generate(rng, 0, DefaultGenConfig())
	h := ColorHistogram(ph.Image, 8)
	if len(h) != 24 {
		t.Fatalf("histogram length %d, want 24", len(h))
	}
	var sum float64
	for _, v := range h {
		if v < 0 {
			t.Fatal("negative histogram bin")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 { // normalized over all channels jointly
		t.Errorf("histogram sums to %g, want 1", sum)
	}
}

func TestGradientDescriptor(t *testing.T) {
	// A vertical edge produces horizontal gradients only.
	im := NewImage(16, 16)
	for y := 0; y < 16; y++ {
		for x := 8; x < 16; x++ {
			im.Set(x, y, RGB{255, 255, 255})
		}
	}
	d := GradientDescriptor(im, 2, 8)
	if len(d) != 32 {
		t.Fatalf("descriptor length %d, want 32", len(d))
	}
	var norm float64
	for _, v := range d {
		norm += v * v
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("descriptor norm² = %g, want 1", norm)
	}
	// Orientation bins for gx>0, gy=0: theta = atan2(0, +) + π = π → bin
	// orientBins/2. All mass should be there.
	var onAxis float64
	for cell := 0; cell < 4; cell++ {
		onAxis += d[cell*8+4] * d[cell*8+4]
	}
	if onAxis < 0.99 {
		t.Errorf("vertical edge mass on expected orientation = %g, want ≈1", onAxis)
	}
}

func TestGradientDescriptorFlatImage(t *testing.T) {
	im := NewImage(8, 8)
	d := GradientDescriptor(im, 2, 4)
	for _, v := range d {
		if v != 0 {
			t.Fatal("flat image must yield zero descriptor")
		}
	}
}

func TestEntropyBounds(t *testing.T) {
	flat := NewImage(8, 8)
	if got := LuminanceEntropy(flat); got != 0 {
		t.Errorf("flat image entropy = %g, want 0", got)
	}
	rng := rand.New(rand.NewSource(2))
	noisy := NewImage(16, 16)
	for i := range noisy.Pixels {
		noisy.Pixels[i] = RGB{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))}
	}
	h := LuminanceEntropy(noisy)
	if h <= 4 || h > 8 {
		t.Errorf("noisy image entropy = %g, want in (4, 8]", h)
	}
}

func TestJPEGSizeModel(t *testing.T) {
	flat := NewImage(32, 32)
	rng := rand.New(rand.NewSource(3))
	noisy := NewImage(32, 32)
	for i := range noisy.Pixels {
		noisy.Pixels[i] = RGB{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))}
	}
	sFlat, sNoisy := EstimateJPEGSize(flat), EstimateJPEGSize(noisy)
	if sFlat >= sNoisy {
		t.Errorf("flat image (%.0f B) should be smaller than noisy (%.0f B)", sFlat, sNoisy)
	}
	if sFlat < 300_000 {
		t.Errorf("size floor violated: %.0f", sFlat)
	}
	if sNoisy > 3_000_000 {
		t.Errorf("noisy 32×32 size %.0f B implausibly large", sNoisy)
	}
}

func TestEmbeddingConfig(t *testing.T) {
	cfg := DefaultEmbeddingConfig()
	if cfg.Dim() != 3*8+4*4*8 {
		t.Errorf("Dim() = %d, want 152", cfg.Dim())
	}
}

// Intra-category embeddings must be much more similar than inter-category
// ones: the property the whole similarity pipeline rests on.
func TestCategorySeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := DefaultGenConfig()
	ecfg := DefaultEmbeddingConfig()
	catA := NewCategoryModel(rng, "A")
	catB := NewCategoryModel(rng, "B")
	var intra, inter []float64
	for trial := 0; trial < 10; trial++ {
		a1 := Embedding(catA.Generate(rng, 0, cfg).Image, ecfg)
		a2 := Embedding(catA.Generate(rng, 1, cfg).Image, ecfg)
		b1 := Embedding(catB.Generate(rng, 2, cfg).Image, ecfg)
		intra = append(intra, embed.Cosine(a1, a2))
		inter = append(inter, embed.Cosine(a1, b1))
	}
	if mean(intra) <= mean(inter)+0.05 {
		t.Errorf("intra-category cosine %.3f not separated from inter %.3f", mean(intra), mean(inter))
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	m := NewCategoryModel(rand.New(rand.NewSource(5)), "X")
	p1 := m.Generate(rand.New(rand.NewSource(6)), 0, cfg)
	p2 := m.Generate(rand.New(rand.NewSource(6)), 0, cfg)
	if p1.SizeBytes != p2.SizeBytes || p1.EXIF != p2.EXIF {
		t.Error("Generate not deterministic for fixed seed")
	}
	for i := range p1.Image.Pixels {
		if p1.Image.Pixels[i] != p2.Image.Pixels[i] {
			t.Fatal("pixels differ for fixed seed")
		}
	}
}

func TestCollection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cats := []*CategoryModel{
		NewCategoryModel(rng, "a"),
		NewCategoryModel(rng, "b"),
	}
	photos, err := Collection(rng, cats, 50, []float64{9, 1}, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(photos) != 50 {
		t.Fatalf("generated %d photos", len(photos))
	}
	counts := map[int]int{}
	for i, p := range photos {
		if p.ID != i {
			t.Fatalf("photo %d has ID %d", i, p.ID)
		}
		counts[p.Category]++
	}
	if counts[0] <= counts[1] {
		t.Errorf("weighted sampling ignored weights: %v", counts)
	}
}

func TestCollectionErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	if _, err := Collection(rng, nil, 5, nil, DefaultGenConfig()); err == nil {
		t.Error("expected error for no categories")
	}
	cats := []*CategoryModel{NewCategoryModel(rng, "a")}
	if _, err := Collection(rng, cats, 5, []float64{1, 2}, DefaultGenConfig()); err == nil {
		t.Error("expected error for weight length mismatch")
	}
	if _, err := Collection(rng, cats, 5, []float64{-1}, DefaultGenConfig()); err == nil {
		t.Error("expected error for negative weight")
	}
	if _, err := Collection(rng, cats, 5, []float64{0}, DefaultGenConfig()); err == nil {
		t.Error("expected error for zero total weight")
	}
}

// Property: every generated photo has valid size and embedding.
func TestGenerateValidQuick(t *testing.T) {
	cfg := DefaultGenConfig()
	ecfg := DefaultEmbeddingConfig()
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewCategoryModel(rng, "q")
		ph := m.Generate(rng, 0, cfg)
		if ph.SizeBytes <= 0 || math.IsNaN(ph.SizeBytes) {
			return false
		}
		v := Embedding(ph.Image, ecfg)
		if len(v) != ecfg.Dim() {
			return false
		}
		return math.Abs(embed.Norm(v)-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
