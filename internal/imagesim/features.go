package imagesim

import (
	"math"

	"phocus/internal/embed"
)

// ColorHistogram computes a normalized per-channel color histogram with the
// given number of bins per channel (3·bins values summing to 1).
func ColorHistogram(im *Image, bins int) []float64 {
	h := make([]float64, 3*bins)
	scale := float64(bins) / 256
	for _, p := range im.Pixels {
		h[binIndex(p.R, scale, bins)]++
		h[bins+binIndex(p.G, scale, bins)]++
		h[2*bins+binIndex(p.B, scale, bins)]++
	}
	total := float64(3 * len(im.Pixels))
	for i := range h {
		h[i] /= total
	}
	return h
}

func binIndex(v uint8, scale float64, bins int) int {
	b := int(float64(v) * scale)
	if b >= bins {
		b = bins - 1
	}
	return b
}

// GradientDescriptor computes a SIFT-flavoured descriptor: the image is
// divided into grid×grid cells and each cell accumulates a histogram of
// gradient orientations (orientBins bins) weighted by gradient magnitude.
// The concatenated histograms are L2-normalized. Length: grid²·orientBins.
func GradientDescriptor(im *Image, grid, orientBins int) []float64 {
	desc := make([]float64, grid*grid*orientBins)
	cellW := float64(im.Width) / float64(grid)
	cellH := float64(im.Height) / float64(grid)
	for y := 1; y < im.Height-1; y++ {
		for x := 1; x < im.Width-1; x++ {
			gx := im.At(x+1, y).Luminance() - im.At(x-1, y).Luminance()
			gy := im.At(x, y+1).Luminance() - im.At(x, y-1).Luminance()
			mag := math.Hypot(gx, gy)
			if mag == 0 {
				continue
			}
			theta := math.Atan2(gy, gx) + math.Pi // [0, 2π]
			ob := int(theta / (2 * math.Pi) * float64(orientBins))
			if ob >= orientBins {
				ob = orientBins - 1
			}
			cx := int(float64(x) / cellW)
			cy := int(float64(y) / cellH)
			if cx >= grid {
				cx = grid - 1
			}
			if cy >= grid {
				cy = grid - 1
			}
			desc[(cy*grid+cx)*orientBins+ob] += mag
		}
	}
	var norm float64
	for _, v := range desc {
		norm += v * v
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for i := range desc {
			desc[i] /= norm
		}
	}
	return desc
}

// LuminanceEntropy returns the Shannon entropy (bits) of the 256-bin
// luminance histogram, a proxy for how compressible the image is.
func LuminanceEntropy(im *Image) float64 {
	var hist [256]float64
	for _, p := range im.Pixels {
		hist[int(p.Luminance())]++
	}
	total := float64(len(im.Pixels))
	var h float64
	for _, c := range hist {
		if c == 0 {
			continue
		}
		pr := c / total
		h -= pr * math.Log2(pr)
	}
	return h
}

// EmbeddingConfig fixes the feature layout of Embedding. The default (zero
// value is invalid; use DefaultEmbeddingConfig) yields 8·3 + 4·4·8 = 152
// dimensions.
type EmbeddingConfig struct {
	ColorBins  int // histogram bins per channel
	Grid       int // gradient descriptor grid
	OrientBins int // gradient orientation bins
}

// DefaultEmbeddingConfig is the layout used by the dataset generators.
func DefaultEmbeddingConfig() EmbeddingConfig {
	return EmbeddingConfig{ColorBins: 8, Grid: 4, OrientBins: 8}
}

// Dim returns the embedding dimension of the config.
func (c EmbeddingConfig) Dim() int { return 3*c.ColorBins + c.Grid*c.Grid*c.OrientBins }

// Embedding computes the photo's feature embedding: concatenated color
// histogram and gradient descriptor, each centered around its own mean and
// then jointly L2-normalized. It is the synthetic stand-in for the paper's
// ResNet-50 embedding — what matters to PAR is that visually similar
// photos land nearby under cosine similarity. Centering matters: raw
// histograms are non-negative, which compresses all cosines into a narrow
// high band; subtracting each block's mean spreads unrelated photos toward
// zero (and below) while near-duplicates stay close to 1, matching the
// geometry of learned embeddings.
func Embedding(im *Image, cfg EmbeddingConfig) embed.Vector {
	v := make(embed.Vector, 0, cfg.Dim())
	v = append(v, centered(ColorHistogram(im, cfg.ColorBins))...)
	v = append(v, centered(GradientDescriptor(im, cfg.Grid, cfg.OrientBins))...)
	return embed.Normalize(v)
}

// centered subtracts the block's mean in place and returns it.
func centered(block []float64) []float64 {
	var mean float64
	for _, x := range block {
		mean += x
	}
	mean /= float64(len(block))
	for i := range block {
		block[i] -= mean
	}
	return block
}
