// Package solvertest is the shared conformance suite for par.Solver
// implementations. Every solver package runs Contract against its solver,
// so the invariants below are enforced uniformly:
//
//  1. feasibility — C(S) ≤ B, S0 ⊆ S, no duplicates — on a spread of random
//     instances (tight and generous budgets, with and without retention);
//  2. score consistency — the reported score equals par.Score of the
//     reported photos;
//  3. determinism — solving the same instance twice gives the same result;
//  4. saturation (optional) — with a budget covering the whole archive the
//     solver retains everything of value, reaching Σ W(q).
package solvertest

import (
	"math"
	"math/rand"
	"testing"

	"phocus/internal/par"
)

// Options selects optional contract clauses.
type Options struct {
	// Saturates asserts clause 4. Leave false for solvers that legitimately
	// skip zero-density photos (e.g. threshold-based streaming).
	Saturates bool
	// Trials is the number of random instances (default 25).
	Trials int
}

// Factory builds a fresh solver per call (some solvers carry per-run state
// like LastStats; a factory keeps runs independent).
type Factory func() par.Solver

// Contract runs the conformance suite.
func Contract(t *testing.T, mk Factory, opts Options) {
	t.Helper()
	trials := opts.Trials
	if trials == 0 {
		trials = 25
	}
	rng := rand.New(rand.NewSource(20_240_601))

	t.Run("feasibility+consistency", func(t *testing.T) {
		for trial := 0; trial < trials; trial++ {
			cfg := par.RandomConfig{
				Photos:     8 + rng.Intn(25),
				Subsets:    4 + rng.Intn(12),
				BudgetFrac: 0.1 + 0.8*rng.Float64(),
			}
			if trial%3 == 0 {
				cfg.RetainFrac = 0.1
			}
			if trial%4 == 0 {
				cfg.UniformCost = true
			}
			inst := par.Random(rng, cfg)
			sol, err := mk().Solve(inst)
			if err != nil {
				t.Fatalf("trial %d: Solve: %v", trial, err)
			}
			if !inst.Feasible(sol.Photos) {
				t.Fatalf("trial %d: infeasible solution %v (budget %.3f)", trial, sol.Photos, inst.Budget)
			}
			if got := par.Score(inst, sol.Photos); math.Abs(got-sol.Score) > 1e-9 {
				t.Fatalf("trial %d: reported score %.6f, true %.6f", trial, sol.Score, got)
			}
			var cost float64
			for _, p := range sol.Photos {
				cost += inst.Cost[p]
			}
			if math.Abs(cost-sol.Cost) > 1e-9 {
				t.Fatalf("trial %d: reported cost %.6f, true %.6f", trial, sol.Cost, cost)
			}
		}
	})

	t.Run("determinism", func(t *testing.T) {
		inst := par.Random(rng, par.RandomConfig{Photos: 20, Subsets: 10, BudgetFrac: 0.3})
		a, err := mk().Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		b, err := mk().Solve(inst)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Score-b.Score) > 1e-12 || len(a.Photos) != len(b.Photos) {
			t.Fatalf("non-deterministic: %.6f/%d photos vs %.6f/%d photos",
				a.Score, len(a.Photos), b.Score, len(b.Photos))
		}
		for i := range a.Photos {
			if a.Photos[i] != b.Photos[i] {
				t.Fatalf("non-deterministic selection order: %v vs %v", a.Photos, b.Photos)
			}
		}
	})

	if opts.Saturates {
		t.Run("saturation", func(t *testing.T) {
			inst := par.Random(rng, par.RandomConfig{Photos: 15, Subsets: 8, BudgetFrac: 1})
			inst.Budget = inst.TotalCost() * 1.001 // strictly everything fits
			if err := inst.Finalize(); err != nil {
				t.Fatal(err)
			}
			sol, err := mk().Solve(inst)
			if err != nil {
				t.Fatal(err)
			}
			if want := inst.TotalWeight(); math.Abs(sol.Score-want) > 1e-9 {
				t.Fatalf("saturating budget scored %.6f, want Σ W = %.6f", sol.Score, want)
			}
		})
	}

	t.Run("name", func(t *testing.T) {
		if mk().Name() == "" {
			t.Fatal("empty solver name")
		}
	})
}
