package solvertest

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"phocus/internal/par"
)

// CountdownContext is a context whose Err() flips to context.Canceled after
// it has been polled n times — a deterministic way to cancel a solver
// mid-run without goroutines or timing. Solvers cancel cooperatively by
// polling Err() at bounded intervals, so the poll count doubles as a measure
// of how promptly they stop.
type CountdownContext struct {
	context.Context
	mu    sync.Mutex
	calls int
	n     int
}

// NewCountdownContext returns a context that reports context.Canceled from
// its n+1-th Err() call onward.
func NewCountdownContext(n int) *CountdownContext {
	return &CountdownContext{Context: context.Background(), n: n}
}

// Err implements context.Context.
func (c *CountdownContext) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.n {
		return context.Canceled
	}
	return nil
}

// Calls returns how many times Err has been polled.
func (c *CountdownContext) Calls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// ContextFactory builds a fresh par.ContextSolver per call.
type ContextFactory func() par.ContextSolver

// ContextContract is the conformance suite for cooperative cancellation:
//
//  1. a context canceled before the call fails immediately with
//     context.Canceled;
//  2. a context canceled mid-solve stops the solver within a few polls of
//     the trigger (it must not drain its remaining work first);
//  3. an inert context leaves the result identical to plain Solve.
func ContextContract(t *testing.T, mk ContextFactory) {
	t.Helper()
	rng := rand.New(rand.NewSource(20_240_602))
	inst := par.Random(rng, par.RandomConfig{Photos: 24, Subsets: 10, BudgetFrac: 0.3})

	t.Run("pre-canceled", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := mk().SolveContext(ctx, inst); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})

	t.Run("mid-solve", func(t *testing.T) {
		for _, n := range []int{1, 3, 8} {
			ctx := NewCountdownContext(n)
			if _, err := mk().SolveContext(ctx, inst); !errors.Is(err, context.Canceled) {
				t.Fatalf("countdown %d: err = %v, want context.Canceled", n, err)
			}
			// A prompt stop polls at most a few more times on the way out
			// (concurrent sub-procedures may each observe the cancellation
			// once); a large overshoot means work continued after cancel.
			if calls := ctx.Calls(); calls > n+4 {
				t.Fatalf("countdown %d: ctx polled %d times — solver kept working after cancel", n, calls)
			}
		}
	})

	t.Run("inert-context", func(t *testing.T) {
		small := par.Random(rng, par.RandomConfig{Photos: 14, Subsets: 7, BudgetFrac: 0.3})
		plain, err := mk().Solve(small)
		if err != nil {
			t.Fatal(err)
		}
		withCtx, err := mk().SolveContext(context.Background(), small)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(plain.Score-withCtx.Score) > 1e-12 || len(plain.Photos) != len(withCtx.Photos) {
			t.Fatalf("SolveContext diverged from Solve: %.6f/%d vs %.6f/%d",
				withCtx.Score, len(withCtx.Photos), plain.Score, len(plain.Photos))
		}
		for i := range plain.Photos {
			if plain.Photos[i] != withCtx.Photos[i] {
				t.Fatalf("selection diverged: %v vs %v", withCtx.Photos, plain.Photos)
			}
		}
	})
}
